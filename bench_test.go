// Benchmarks regenerating the paper's evaluation, one benchmark family per
// table or figure (see DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for recorded shapes). Sizes are laptop-scale; run
// `cmd/adlbench` / `cmd/ssbbench` for the full report generators.
package jsonpark_test

import (
	"fmt"
	"testing"

	"jsonpark/internal/adl"
	"jsonpark/internal/core"
	"jsonpark/internal/engine"
	"jsonpark/internal/hepdata"
	"jsonpark/internal/iterplan"
	"jsonpark/internal/jsoniq"
	"jsonpark/internal/runtime"
	"jsonpark/internal/snowpark"
	"jsonpark/internal/ssb"
	"jsonpark/internal/variant"
)

const benchEvents = 4000 // ADL events for the fixed-size benchmarks

func setupADL(b *testing.B, events int) (*snowpark.Session, []variant.Value) {
	b.Helper()
	eng := engine.New()
	docs, err := hepdata.Load(eng, "adl", 42, events)
	if err != nil {
		b.Fatal(err)
	}
	return snowpark.NewSession(eng), docs
}

// BenchmarkTable2IteratorCensus regenerates Table II: the iterator count of
// each ADL query, reported as metrics.
func BenchmarkTable2IteratorCensus(b *testing.B) {
	for _, q := range adl.Queries() {
		q := q
		b.Run(q.ID, func(b *testing.B) {
			var c iterplan.CensusResult
			for i := 0; i < b.N; i++ {
				expr, err := jsoniq.Parse(q.JSONiq)
				if err != nil {
					b.Fatal(err)
				}
				it, err := iterplan.Build(jsoniq.Rewrite(expr))
				if err != nil {
					b.Fatal(err)
				}
				c = iterplan.Census(it)
			}
			b.ReportMetric(float64(c.FLWOR), "flwor-iters")
			b.ReportMetric(float64(c.Other), "other-iters")
			b.ReportMetric(float64(c.Total()), "total-iters")
		})
	}
}

// BenchmarkFig6TranslationTime measures JSONiq→SQL translation per query.
func BenchmarkFig6TranslationTime(b *testing.B) {
	sess, _ := setupADL(b, 16)
	for _, q := range adl.Queries() {
		q := q
		b.Run(q.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Translate(sess, q.JSONiq, core.Options{Strategy: q.Strategy}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7CompileTime measures engine compilation of the generated and
// handwritten SQL.
func BenchmarkFig7CompileTime(b *testing.B) {
	sess, _ := setupADL(b, 16)
	for _, q := range adl.Queries() {
		res, err := core.Translate(sess, q.JSONiq, core.Options{Strategy: q.Strategy})
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range []struct{ name, sql string }{
			{"generated", res.SQL}, {"handwritten", q.SQL},
		} {
			v := v
			b.Run(q.ID+"/"+v.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := sess.Engine().Prepare(v.sql); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig8ExecutionTime measures end-to-end engine time of the
// generated vs handwritten SQL on loaded data.
func BenchmarkFig8ExecutionTime(b *testing.B) {
	sess, _ := setupADL(b, benchEvents)
	for _, q := range adl.Queries() {
		res, err := core.Translate(sess, q.JSONiq, core.Options{Strategy: q.Strategy})
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range []struct{ name, sql string }{
			{"generated", res.SQL}, {"handwritten", q.SQL},
		} {
			v := v
			b.Run(q.ID+"/"+v.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := sess.Engine().Query(v.sql); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig9EndToEnd compares the four systems per query (smaller data:
// the interpreted baselines are orders of magnitude slower).
func BenchmarkFig9EndToEnd(b *testing.B) {
	const events = 1000
	sess, docs := setupADL(b, events)
	rtSpark := runtime.New(runtime.ProfileRumbleSpark)
	rtSpark.LoadCollection("adl", docs)
	rtAst := runtime.New(runtime.ProfileAsterix)
	rtAst.LoadCollection("adl", docs)
	systems := []struct {
		name string
		run  func(q adl.Query) error
	}{
		{"rumbledb-spark", func(q adl.Query) error { _, err := adl.RunInterpreted(rtSpark, q); return err }},
		{"asterixdb", func(q adl.Query) error { _, err := adl.RunInterpreted(rtAst, q); return err }},
		{"generated", func(q adl.Query) error { _, _, err := adl.RunTranslated(sess, q, nil); return err }},
		{"handwritten", func(q adl.Query) error { _, _, err := adl.RunHandwritten(sess.Engine(), q); return err }},
	}
	for _, q := range adl.Queries() {
		q := q
		for _, sys := range systems {
			sys := sys
			b.Run(q.ID+"/"+sys.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := sys.run(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkScannedBytes reports the §V-E measurement as metrics: bytes
// scanned by the generated vs handwritten queries.
func BenchmarkScannedBytes(b *testing.B) {
	sess, _ := setupADL(b, benchEvents)
	for _, q := range adl.Queries() {
		q := q
		b.Run(q.ID, func(b *testing.B) {
			var gen, hand int64
			for i := 0; i < b.N; i++ {
				_, g, err := adl.RunTranslated(sess, q, nil)
				if err != nil {
					b.Fatal(err)
				}
				_, h, err := adl.RunHandwritten(sess.Engine(), q)
				if err != nil {
					b.Fatal(err)
				}
				gen, hand = g.Metrics.BytesScanned, h.Metrics.BytesScanned
			}
			b.ReportMetric(float64(gen), "generated-bytes")
			b.ReportMetric(float64(hand), "handwritten-bytes")
			b.ReportMetric(float64(gen)/float64(hand), "ratio")
		})
	}
}

// BenchmarkFig10Scalability sweeps dataset sizes for the two SQL paths
// (the full four-system sweep with cutoffs lives in cmd/adlbench -fig10).
func BenchmarkFig10Scalability(b *testing.B) {
	for _, events := range []int{500, 2000, 8000} {
		sess, _ := setupADL(b, events)
		for _, id := range []string{"q1", "q5", "q6", "q8"} {
			q, _ := adl.ByID(id)
			res, err := core.Translate(sess, q.JSONiq, core.Options{Strategy: q.Strategy})
			if err != nil {
				b.Fatal(err)
			}
			for _, v := range []struct{ name, sql string }{
				{"generated", res.SQL}, {"handwritten", q.SQL},
			} {
				v := v
				b.Run(fmt.Sprintf("%s/%s/events=%d", id, v.name, events), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, err := sess.Engine().Query(v.sql); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

func setupSSB(b *testing.B, sf float64) *snowpark.Session {
	b.Helper()
	eng := engine.New()
	tabs := ssb.Generate(7, ssb.SizesForScaleFactor(sf))
	if err := tabs.Load(eng); err != nil {
		b.Fatal(err)
	}
	return snowpark.NewSession(eng)
}

// BenchmarkFig11aSSB measures all thirteen SSB queries, generated vs
// handwritten, at one scale factor.
func BenchmarkFig11aSSB(b *testing.B) {
	sess := setupSSB(b, 1)
	for _, q := range ssb.Queries() {
		q := q
		sql, err := ssb.TranslateSQL(sess, q)
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range []struct{ name, sql string }{
			{"generated", sql}, {"handwritten", q.SQL},
		} {
			v := v
			b.Run(q.ID+"/"+v.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := sess.Engine().Query(v.sql); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig11bSSBScaling sweeps scale factors for one query per flight.
func BenchmarkFig11bSSBScaling(b *testing.B) {
	for _, sf := range []float64{0.5, 1, 2} {
		sess := setupSSB(b, sf)
		for _, id := range ssb.Fig11bQueries {
			q, _ := ssb.ByID(id)
			sql, err := ssb.TranslateSQL(sess, q)
			if err != nil {
				b.Fatal(err)
			}
			for _, v := range []struct{ name, sql string }{
				{"generated", sql}, {"handwritten", q.SQL},
			} {
				v := v
				b.Run(fmt.Sprintf("%s/%s/sf=%g", id, v.name, sf), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, err := sess.Engine().Query(v.sql); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkAblationElimination compares the two nested-query strategies
// (§IV-C) on the ADL queries that contain nested queries.
func BenchmarkAblationElimination(b *testing.B) {
	sess, _ := setupADL(b, benchEvents)
	strategies := []struct {
		name  string
		strat core.Strategy
	}{
		{"keep-flag", core.StrategyKeepFlag},
		{"join", core.StrategyJoin},
	}
	for _, id := range []string{"q4", "q5", "q6", "q7", "q8"} {
		q, _ := adl.ByID(id)
		for _, s := range strategies {
			s := s
			res, err := core.Translate(sess, q.JSONiq, core.Options{Strategy: s.strat})
			if err != nil {
				b.Fatal(err)
			}
			b.Run(id+"/"+s.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := sess.Engine().Query(res.SQL); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
