// Package jsonpark is an embedded analytical engine that executes JSONiq —
// a query language designed for nested data — by translating each query
// into a single native SQL query over a columnar, micro-partitioned storage
// engine, through a lazy data-frame API.
//
// It is a from-scratch reproduction of "Addressing the Nested Data
// Processing Gap: JSONiq Queries on Snowflake Through Snowpark" (ICDE 2024):
// the JSONiq frontend lowers a query to an expression tree and an iterator
// tree; the translator maps FLWOR iterators to DataFrame operations and
// non-FLWOR iterators to Column expressions; nested queries re-aggregate via
// row-ID injection, LATERAL FLATTEN and ARRAY_AGG, with both published
// strategies against erroneous object elimination (a KEEP flag column, or a
// copy + left outer join). An interpreted back-end executes the same
// iterator tree directly and stands in for the paper's DSQL baselines.
//
// Quick start:
//
//	w := jsonpark.Open()
//	w.CreateCollection("orders", []string{"id", "items"})
//	w.LoadJSON("orders", `{"id": 1, "items": [{"sku": "a", "qty": 2}]}`)
//	res, err := w.Query(`
//	    for $o in collection("orders")
//	    for $i in $o.items[]
//	    return {"id": $o.id, "sku": $i.sku}`)
package jsonpark

import (
	"fmt"

	"jsonpark/internal/core"
	"jsonpark/internal/engine"
	"jsonpark/internal/jsoniq"
	"jsonpark/internal/runtime"
	"jsonpark/internal/snowpark"
	"jsonpark/internal/variant"
)

// Value is the dynamically typed value model (the VARIANT analogue): null,
// boolean, integer, double, string, array or object.
type Value = variant.Value

// Result is a completed query with column names, rows and execution metrics.
type Result = engine.Result

// Metrics reports per-query compile time, execution time, bytes scanned and
// partition-pruning counts.
type Metrics = engine.Metrics

// Strategy selects the nested-query object-elimination handling.
type Strategy = core.Strategy

// Strategies: the flag-column approach (default), the JOIN-based approach,
// and the automatic per-query chooser (the paper's §IV-E future work).
const (
	StrategyKeepFlag = core.StrategyKeepFlag
	StrategyJoin     = core.StrategyJoin
	StrategyAuto     = core.StrategyAuto
)

// ParseJSON decodes one JSON document into a Value.
func ParseJSON(data string) (Value, error) { return variant.ParseJSON([]byte(data)) }

// Warehouse is one embedded database: a catalog of collections plus the
// translation and execution pipeline.
type Warehouse struct {
	eng  *engine.Engine
	sess *snowpark.Session
	docs map[string][]Value
}

// Open creates an empty in-memory warehouse.
func Open() *Warehouse {
	eng := engine.New()
	return &Warehouse{
		eng:  eng,
		sess: snowpark.NewSession(eng),
		docs: make(map[string][]Value),
	}
}

// CreateCollection registers a collection staged with one column per listed
// top-level field (the multi-column VARIANT staging of the paper's §III-C).
func (w *Warehouse) CreateCollection(name string, columns []string) error {
	_, err := w.eng.Catalog().CreateTable(name, columns)
	return err
}

// LoadObject appends one object; each staged column takes the same-named
// top-level field (missing fields become NULL).
func (w *Warehouse) LoadObject(collection string, v Value) error {
	t, err := w.eng.Catalog().Table(collection)
	if err != nil {
		return err
	}
	if err := t.AppendObject(v); err != nil {
		return err
	}
	w.docs[collection] = append(w.docs[collection], v)
	return nil
}

// LoadJSON appends one JSON document.
func (w *Warehouse) LoadJSON(collection, doc string) error {
	v, err := ParseJSON(doc)
	if err != nil {
		return err
	}
	return w.LoadObject(collection, v)
}

// QueryOption customizes translation.
type QueryOption func(*core.Options)

// WithStrategy selects the nested-query elimination strategy.
func WithStrategy(s Strategy) QueryOption {
	return func(o *core.Options) { o.Strategy = s }
}

// Translate compiles a JSONiq query to its single native SQL string without
// executing it.
func (w *Warehouse) Translate(jsoniqSrc string, opts ...QueryOption) (string, error) {
	var o core.Options
	for _, fn := range opts {
		fn(&o)
	}
	res, err := core.Translate(w.sess, jsoniqSrc, o)
	if err != nil {
		return "", err
	}
	return res.SQL, nil
}

// Query translates and executes a JSONiq query. The result has one column,
// "result", holding the returned items.
func (w *Warehouse) Query(jsoniqSrc string, opts ...QueryOption) (*Result, error) {
	var o core.Options
	for _, fn := range opts {
		fn(&o)
	}
	res, err := core.Translate(w.sess, jsoniqSrc, o)
	if err != nil {
		return nil, err
	}
	return res.DataFrame.Collect()
}

// QueryItems is Query returning the bare result items.
func (w *Warehouse) QueryItems(jsoniqSrc string, opts ...QueryOption) ([]Value, error) {
	res, err := w.Query(jsoniqSrc, opts...)
	if err != nil {
		return nil, err
	}
	items := make([]Value, len(res.Rows))
	for i, row := range res.Rows {
		if len(row) != 1 {
			return nil, fmt.Errorf("jsonpark: unexpected row arity %d", len(row))
		}
		items[i] = row[0]
	}
	return items, nil
}

// SQL executes a raw SQL query against the engine directly.
func (w *Warehouse) SQL(sql string) (*Result, error) { return w.eng.Query(sql) }

// ExplainSQL renders the optimized plan of a SQL query.
func (w *Warehouse) ExplainSQL(sql string) (string, error) { return w.eng.Explain(sql) }

// QueryInterpreted executes the JSONiq query on the interpreted iterator
// back-end (the DSQL-engine baseline) over the same loaded documents.
func (w *Warehouse) QueryInterpreted(jsoniqSrc string) ([]Value, error) {
	expr, err := jsoniq.Parse(jsoniqSrc)
	if err != nil {
		return nil, err
	}
	rt := runtime.New(runtime.ProfileDefault)
	for name, docs := range w.docs {
		rt.LoadCollection(name, docs)
	}
	return rt.Run(jsoniq.Rewrite(expr))
}

// Engine exposes the underlying SQL engine (advanced use: catalog access,
// custom staging, metrics inspection).
func (w *Warehouse) Engine() *engine.Engine { return w.eng }

// Session exposes the data-frame session for programmatic query building
// with the snowpark-style API.
func (w *Warehouse) Session() *snowpark.Session { return w.sess }
