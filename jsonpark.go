// Package jsonpark is an embedded analytical engine that executes JSONiq —
// a query language designed for nested data — by translating each query
// into a single native SQL query over a columnar, micro-partitioned storage
// engine, through a lazy data-frame API.
//
// It is a from-scratch reproduction of "Addressing the Nested Data
// Processing Gap: JSONiq Queries on Snowflake Through Snowpark" (ICDE 2024):
// the JSONiq frontend lowers a query to an expression tree and an iterator
// tree; the translator maps FLWOR iterators to DataFrame operations and
// non-FLWOR iterators to Column expressions; nested queries re-aggregate via
// row-ID injection, LATERAL FLATTEN and ARRAY_AGG, with both published
// strategies against erroneous object elimination (a KEEP flag column, or a
// copy + left outer join). An interpreted back-end executes the same
// iterator tree directly and stands in for the paper's DSQL baselines.
//
// Quick start:
//
//	w := jsonpark.Open()
//	w.CreateCollection("orders", []string{"id", "items"})
//	w.LoadJSON("orders", `{"id": 1, "items": [{"sku": "a", "qty": 2}]}`)
//	res, err := w.Query(`
//	    for $o in collection("orders")
//	    for $i in $o.items[]
//	    return {"id": $o.id, "sku": $i.sku}`)
package jsonpark

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"jsonpark/internal/core"
	"jsonpark/internal/engine"
	"jsonpark/internal/iterplan"
	"jsonpark/internal/jsoniq"
	"jsonpark/internal/obsv"
	"jsonpark/internal/obsv/qlog"
	"jsonpark/internal/runtime"
	"jsonpark/internal/snowpark"
	"jsonpark/internal/variant"
)

// Value is the dynamically typed value model (the VARIANT analogue): null,
// boolean, integer, double, string, array or object.
type Value = variant.Value

// Result is a completed query with column names, rows and execution metrics.
type Result = engine.Result

// Metrics reports per-query compile time, execution time, bytes scanned and
// partition-pruning counts.
type Metrics = engine.Metrics

// Strategy selects the nested-query object-elimination handling.
type Strategy = core.Strategy

// Strategies: the flag-column approach (default), the JOIN-based approach,
// and the automatic per-query chooser (the paper's §IV-E future work).
const (
	StrategyKeepFlag = core.StrategyKeepFlag
	StrategyJoin     = core.StrategyJoin
	StrategyAuto     = core.StrategyAuto
)

// ParseJSON decodes one JSON document into a Value.
func ParseJSON(data string) (Value, error) { return variant.ParseJSON([]byte(data)) }

// Warehouse is one embedded database: a catalog of collections plus the
// translation and execution pipeline.
type Warehouse struct {
	eng  *engine.Engine
	sess *snowpark.Session
	obs  *obsv.Observer
	docs map[string][]Value
	// slowThresh/slowOn arm slow-query capture (WithSlowQueryMillis):
	// queries at or above the threshold retain their full span tree and
	// EXPLAIN ANALYZE snapshot in the observer's slow ring.
	slowThresh time.Duration
	slowOn     bool
}

// OpenOption configures a Warehouse.
type OpenOption func(*openConfig)

type openConfig struct {
	batchSize     int
	parallelism   int
	mergeParts    int
	memLimit      int64
	planCheck     bool
	slowMS        int64
	traceOut      io.Writer
	dataDir          string
	typedOff         bool
	planCacheSize    int
	resultCacheSize  int
	resultCacheBytes int64
	governor         *engine.Governor
}

// WithBatchSize sets the rows-per-batch of the vectorized executor (default
// 1024). Mostly useful for testing and benchmarking batch-size sensitivity.
func WithBatchSize(n int) OpenOption {
	return func(c *openConfig) { c.batchSize = n }
}

// WithParallelism caps the worker pools of every parallel operator: morsel
// table scans and the pipeline-breaker phases (partitioned hash
// aggregation, hash-join build, sort-run sorting). Default: the number of
// CPUs; 1 forces fully sequential execution. Results are byte-identical at
// any setting.
func WithParallelism(n int) OpenOption {
	return func(c *openConfig) { c.parallelism = n }
}

// WithMergePartitions sets the number of disjoint hash partitions the
// parallel aggregate's thread-local tables split into for the merge phase
// (default: the parallelism).
func WithMergePartitions(n int) OpenOption {
	return func(c *openConfig) { c.mergeParts = n }
}

// WithMemLimit caps the bytes of retained state the pipeline breakers
// (hash aggregation, join build, sort) may hold per query. Crossing the
// limit never fails the query: the charging operator spills to temp-file
// runs and the output stays byte-identical to the unlimited run. Values
// <= 0 (the default) disable accounting.
func WithMemLimit(bytes int64) OpenOption {
	return func(c *openConfig) { c.memLimit = bytes }
}

// WithPlanCheck enables the engine's planck debug pass: every prepared
// plan is cross-checked (unordered-exchange eligibility, selection-vector
// contracts) and every operator validates the batches it emits. Intended
// for tests and debugging.
func WithPlanCheck(on bool) OpenOption {
	return func(c *openConfig) { c.planCheck = on }
}

// WithSlowQueryMillis arms slow-query capture (the -slow-query-ms flag):
// queries whose end-to-end wall time reaches ms milliseconds retain their
// full span tree plus an EXPLAIN ANALYZE snapshot in the observer's slow
// ring (Observer().Slow, served at GET /debug/slow). ms == 0 captures every
// query; negative (the default) disables capture. Arming capture forces
// per-operator metering on for every traced query, so it carries the same
// overhead as WithAnalyze.
func WithSlowQueryMillis(ms int64) OpenOption {
	return func(c *openConfig) { c.slowMS = ms }
}

// WithTraceExport streams every finished query trace to w as one JSON line
// (the -trace-out flag), so span trees survive process exit for offline
// analysis. Writes are serialized; w is not closed by the warehouse.
func WithTraceExport(w io.Writer) OpenOption {
	return func(c *openConfig) { c.traceOut = w }
}

// WithDataDir makes the warehouse persistent (the -data-dir flag): sealed
// micro-partitions are written under dir (one subdirectory per collection,
// one file per partition: typed column arrays, zone maps, and a versioned
// header), and collections already on disk are rediscovered on first
// access. Reopening is lazy and two-phase — partition headers (schema +
// zone maps) load at open, so pruning works before any data is read; data
// sections stream in on first scan. Rows still buffered in a collection's
// open partition are not on disk until Flush (or the partition seals on
// its own). Empty dir (the default) keeps everything in memory.
func WithDataDir(dir string) OpenOption {
	return func(c *openConfig) { c.dataDir = dir }
}

// WithTypedColumns toggles typed shredding at partition seal (on by
// default): leaf columns whose non-null values are uniformly one scalar
// kind are stored as typed arrays (int64/float64/string/bool plus a null
// bitmap, dictionary-encoded low-cardinality strings) that the expression
// kernels scan without per-row variant dispatch. Query results are
// byte-identical either way; false keeps every column in the variant
// encoding.
func WithTypedColumns(on bool) OpenOption {
	return func(c *openConfig) { c.typedOff = !on }
}

// WithPlanCacheSize bounds the engine's prepared-plan cache (the
// -plan-cache-size flag): repeated queries skip the compile pipeline
// (parse/plan/optimize/physicalize) and pay only the per-run bind cost.
// n > 0 caps resident entries, 0 (the default) keeps the engine default,
// n < 0 disables caching. The cache invalidates itself whenever the catalog
// changes — collection create/drop, Flush, partition seal.
func WithPlanCacheSize(n int) OpenOption {
	return func(c *openConfig) { c.planCacheSize = n }
}

// WithResultCacheSize enables the partition-versioned result cache (the
// -result-cache-size flag): a repeated query whose pinned partition sets are
// unchanged returns its rows without executing, byte-identical to a cold
// run. Invalidation is exact — appending to a collection (the seal bumps the
// partition-set version), DDL, or a data-dir change evicts precisely the
// cached results that read the mutated collection. n <= 0 (the default)
// keeps the cache off.
func WithResultCacheSize(n int) OpenOption {
	return func(c *openConfig) { c.resultCacheSize = n }
}

// WithResultCacheBytes bounds the result cache's resident row bytes (the
// -result-cache-bytes flag; default 64 MiB when the cache is enabled).
// Results larger than the budget are never cached; smaller ones evict LRU
// entries until they fit.
func WithResultCacheBytes(n int64) OpenOption {
	return func(c *openConfig) { c.resultCacheBytes = n }
}

// Governor is the server-wide resource governor: one shared memory pool all
// queries draw from plus a per-tenant admission gate. Create with
// NewGovernor and attach via WithGovernor; one governor may serve several
// warehouses.
type Governor = engine.Governor

// GovernorConfig sizes a Governor (see engine.GovernorConfig).
type GovernorConfig = engine.GovernorConfig

// AdmissionError reports a request the governor shed; the server maps it to
// HTTP 429 with a Retry-After header.
type AdmissionError = engine.AdmissionError

// NewGovernor builds a resource governor with the given pool size and
// admission limits.
func NewGovernor(cfg GovernorConfig) *Governor { return engine.NewGovernor(cfg) }

// WithGovernor attaches a resource governor (the -global-mem-limit /
// -tenant-slots flags): every query's memory accountant draws from the
// governor's shared pool — pool pressure triggers spills exactly like
// WithMemLimit — and servers gate request admission through it.
func WithGovernor(g *Governor) OpenOption {
	return func(c *openConfig) { c.governor = g }
}

// ParseByteSize parses a human byte-size string — "67108864", "64KiB",
// "512MiB", "1GiB", "2kb", "10m" — into bytes. Suffixes are binary
// (KiB/K/k = 1024) and case-insensitive; the "iB"/"b" tail is optional.
func ParseByteSize(s string) (int64, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("jsonpark: empty byte size")
	}
	i := len(t)
	for i > 0 {
		c := t[i-1]
		if c >= '0' && c <= '9' || c == '.' {
			break
		}
		i--
	}
	num, suffix := t[:i], strings.ToLower(strings.TrimSpace(t[i:]))
	mult := int64(1)
	switch strings.TrimSuffix(strings.TrimSuffix(suffix, "ib"), "b") {
	case "":
		if suffix == "ib" { // bare "ib" is not a unit
			return 0, fmt.Errorf("jsonpark: bad byte size %q", s)
		}
	case "k":
		mult = 1 << 10
	case "m":
		mult = 1 << 20
	case "g":
		mult = 1 << 30
	case "t":
		mult = 1 << 40
	default:
		return 0, fmt.Errorf("jsonpark: bad byte size %q", s)
	}
	f, err := strconv.ParseFloat(num, 64)
	if err != nil || f < 0 {
		return 0, fmt.Errorf("jsonpark: bad byte size %q", s)
	}
	return int64(f * float64(mult)), nil
}

// Open creates an empty in-memory warehouse.
func Open(opts ...OpenOption) *Warehouse {
	c := openConfig{slowMS: -1}
	for _, fn := range opts {
		fn(&c)
	}
	eng := engine.New(
		engine.WithBatchSize(c.batchSize),
		engine.WithParallelism(c.parallelism),
		engine.WithMergePartitions(c.mergeParts),
		engine.WithMemLimit(c.memLimit),
		engine.WithPlanCheck(c.planCheck),
		engine.WithTypedColumns(!c.typedOff),
		engine.WithDataDir(c.dataDir),
		engine.WithPlanCacheSize(c.planCacheSize),
		engine.WithResultCacheSize(c.resultCacheSize),
		engine.WithResultCacheBytes(c.resultCacheBytes),
		engine.WithGovernor(c.governor),
	)
	w := &Warehouse{
		eng:  eng,
		sess: snowpark.NewSession(eng),
		obs:  obsv.NewObserver(),
		docs: make(map[string][]Value),
	}
	w.obs.RegisterPlanCacheStats(eng.PlanCacheStats)
	w.obs.RegisterResultCacheStats(eng.ResultCacheStats)
	if g := eng.Governor(); g != nil {
		w.obs.RegisterGovernorStats(func() obsv.GovernorStats {
			s := g.Snapshot()
			return obsv.GovernorStats{
				MemUsedBytes:  s.MemUsedBytes,
				MemLimitBytes: s.MemLimitBytes,
				Active:        int64(s.Active),
				Waiting:       int64(s.Waiting),
				AdmittedTotal: s.AdmittedTotal,
				ShedTotal:     s.ShedTotal,
			}
		})
	}
	w.slowThresh, w.slowOn = obsv.Threshold(c.slowMS)
	if c.traceOut != nil {
		sink := c.traceOut
		enc := json.NewEncoder(sink)
		w.obs.Tracer.SetExporter(func(td *obsv.TraceData) {
			// Encode errors are swallowed: the exporter must never take a
			// query down with it (sink may be a closing file at shutdown).
			_ = enc.Encode(td)
		})
	}
	return w
}

// CreateCollection registers a collection staged with one column per listed
// top-level field (the multi-column VARIANT staging of the paper's §III-C).
func (w *Warehouse) CreateCollection(name string, columns []string) error {
	_, err := w.eng.Catalog().CreateTable(name, columns)
	return err
}

// LoadObject appends one object; each staged column takes the same-named
// top-level field (missing fields become NULL).
func (w *Warehouse) LoadObject(collection string, v Value) error {
	t, err := w.eng.Catalog().Table(collection)
	if err != nil {
		return err
	}
	if err := t.AppendObject(v); err != nil {
		return err
	}
	w.docs[collection] = append(w.docs[collection], v)
	return nil
}

// LoadJSON appends one JSON document.
func (w *Warehouse) LoadJSON(collection, doc string) error {
	v, err := ParseJSON(doc)
	if err != nil {
		return err
	}
	return w.LoadObject(collection, v)
}

// QueryOption customizes translation and execution.
type QueryOption func(*queryConfig)

type queryConfig struct {
	opts    core.Options
	analyze bool
	ctx     context.Context
}

// WithStrategy selects the nested-query elimination strategy.
func WithStrategy(s Strategy) QueryOption {
	return func(c *queryConfig) { c.opts.Strategy = s }
}

// WithAnalyze enables per-operator execution metering (EXPLAIN ANALYZE):
// the QueryReport's Plan carries rows in/out, wall time and scan accounting
// for every operator. Costs two clock reads per operator per row, so it is
// off by default.
func WithAnalyze() QueryOption {
	return func(c *queryConfig) { c.analyze = true }
}

// WithContext executes the query under ctx: a cancel or deadline aborts
// execution promptly — every operator and parallel worker polls it — and
// the returned error satisfies errors.Is(err, context.Canceled) or
// context.DeadlineExceeded. Cancelled queries count under the
// jsonpark_queries_cancelled_total metric rather than as errors.
func WithContext(ctx context.Context) QueryOption {
	return func(c *queryConfig) { c.ctx = ctx }
}

// Translate compiles a JSONiq query to its single native SQL string without
// executing it.
func (w *Warehouse) Translate(jsoniqSrc string, opts ...QueryOption) (string, error) {
	var c queryConfig
	for _, fn := range opts {
		fn(&c)
	}
	res, err := core.Translate(w.sess, jsoniqSrc, c.opts)
	if err != nil {
		return "", err
	}
	return res.SQL, nil
}

// QueryReport is one fully observed query: the result plus everything the
// lifecycle recorded — trace ID, generated SQL, resolved strategy, iterator
// census, the span tree, and (with WithAnalyze) the annotated plan.
type QueryReport struct {
	TraceID  string
	Query    string
	SQL      string
	Strategy string
	Census   iterplan.CensusResult
	Result   *Result
	// Plan is the per-operator stats tree; nil unless WithAnalyze was given
	// or slow-query capture is armed on the warehouse.
	Plan *engine.PlanStats
	// Trace is the finished span tree covering every lowering stage.
	Trace *obsv.TraceData
	// Slow marks a query that met the warehouse's slow-query threshold and
	// was captured in the observer's slow ring; callers log it at warn.
	Slow bool
}

// RenderAnalyze formats the annotated plan tree (EXPLAIN ANALYZE output);
// empty when the query ran without WithAnalyze.
func (r *QueryReport) RenderAnalyze() string {
	if r.Plan == nil {
		return ""
	}
	return r.Plan.Render()
}

// QueryLogRecord flattens the report into a structured query-log record:
// trace ID, fingerprint, per-phase timings and execution metrics. Nil-safe —
// a nil receiver (query failed before a report existed) yields a record
// carrying only status and error.
func (r *QueryReport) QueryLogRecord(status string, err error) qlog.QueryRecord {
	rec := qlog.QueryRecord{Status: status}
	if err != nil {
		rec.Error = err.Error()
	}
	if r == nil {
		return rec
	}
	rec.TraceID = r.TraceID
	rec.Query = r.Query
	rec.Strategy = r.Strategy
	rec.Slow = r.Slow
	if r.SQL != "" {
		rec.Fingerprint = qlog.Fingerprint(r.SQL, r.Strategy)
	}
	if r.Trace != nil {
		ph := obsv.Phases(r.Trace)
		rec.ParseUS = ph.Parse.Microseconds()
		rec.PlanUS = ph.Plan.Microseconds()
		rec.SQLGenUS = ph.SQLGen.Microseconds()
		rec.ExecUS = ph.Exec.Microseconds()
		rec.TotalUS = r.Trace.DurUS
	}
	if r.Result != nil {
		m := r.Result.Metrics
		rec.CacheHit = m.PlanCacheHit
		rec.ResultCacheHit = m.ResultCacheHit
		rec.Rows = m.RowsReturned
		rec.BytesScanned = m.BytesScanned
		rec.MemPeakBytes = m.MemPeakBytes
		rec.SpillBytes = m.SpillBytes
		rec.Spills = m.Spills
		rec.ParallelBreakers = int64(m.ParallelBreakers)
		rec.TypedCols = m.TypedCols
		rec.FallbackCols = m.FallbackCols
		rec.DiskReads = m.DiskReads
	}
	return rec
}

// Query translates and executes a JSONiq query. The result has one column,
// "result", holding the returned items.
func (w *Warehouse) Query(jsoniqSrc string, opts ...QueryOption) (*Result, error) {
	rep, err := w.QueryTraced(jsoniqSrc, opts...)
	if err != nil {
		return nil, err
	}
	return rep.Result, nil
}

// QueryTraced runs a query with full lifecycle observability: a trace is
// recorded into the warehouse observer's ring buffer (span per stage), the
// standard metrics are updated, and the report carries trace ID, SQL,
// census and — with WithAnalyze — the per-operator plan statistics.
func (w *Warehouse) QueryTraced(jsoniqSrc string, opts ...QueryOption) (*QueryReport, error) {
	var c queryConfig
	for _, fn := range opts {
		fn(&c)
	}
	// Slow-query capture needs the EXPLAIN ANALYZE snapshot, so arming it
	// forces per-operator metering on for every traced query.
	if w.slowOn {
		c.analyze = true
	}
	tr := w.obs.Tracer.Start("query")
	tr.SetAttr("query", jsoniqSrc)
	c.opts.Span = tr.Root

	slow := false
	finish := func(res *Result, plan *engine.PlanStats, err error) *obsv.TraceData {
		tr.SetError(err)
		td := tr.Finish()
		if w.slowOn && td.Duration() >= w.slowThresh {
			slow = true
			sq := obsv.SlowQuery{Trace: td}
			if plan != nil {
				sq.Plan = plan
			}
			w.obs.Slow.Record(sq)
		}
		ob := obsv.QueryObservation{
			Trace:   td,
			Errored: err != nil,
			Cancelled: err != nil &&
				(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)),
		}
		if res != nil {
			ob.BytesScanned = res.Metrics.BytesScanned
			ob.RowsReturned = res.Metrics.RowsReturned
			ob.PartitionsTotal = int64(res.Metrics.PartitionsTotal)
			ob.PartitionsPruned = int64(res.Metrics.PartitionsPruned)
			ob.ParallelBreakers = int64(res.Metrics.ParallelBreakers)
			ob.SpillBytes = res.Metrics.SpillBytes
			ob.TypedCols = res.Metrics.TypedCols
			ob.FallbackCols = res.Metrics.FallbackCols
			ob.DiskReads = res.Metrics.DiskReads
		}
		w.obs.ObserveQuery(ob)
		return td
	}

	tres, err := core.Translate(w.sess, jsoniqSrc, c.opts)
	if err != nil {
		td := finish(nil, nil, err)
		// Failed queries still return a partial report (trace identity and
		// span tree) alongside the error, so callers can log them fully.
		return &QueryReport{TraceID: tr.ID, Query: jsoniqSrc, Trace: td, Slow: slow}, err
	}
	tr.SetAttr("sql", tres.SQL)
	tr.SetAttr("strategy", tres.Strategy.String())
	qctx := c.ctx
	if qctx == nil {
		qctx = context.Background()
	}
	result, plan, err := tres.DataFrame.CollectOpts(qctx, snowpark.CollectOptions{
		Span:    tr.Root,
		Analyze: c.analyze,
		TraceID: tr.ID,
	})
	if err != nil {
		td := finish(nil, nil, err)
		return &QueryReport{
			TraceID:  tr.ID,
			Query:    jsoniqSrc,
			SQL:      tres.SQL,
			Strategy: tres.Strategy.String(),
			Census:   tres.Census,
			Trace:    td,
			Slow:     slow,
		}, err
	}
	tr.SetAttr("rows", fmt.Sprint(result.Metrics.RowsReturned))
	td := finish(result, plan, nil)
	return &QueryReport{
		TraceID:  tr.ID,
		Query:    jsoniqSrc,
		SQL:      tres.SQL,
		Strategy: tres.Strategy.String(),
		Census:   tres.Census,
		Result:   result,
		Plan:     plan,
		Trace:    td,
		Slow:     slow,
	}, nil
}

// QueryItems is Query returning the bare result items.
func (w *Warehouse) QueryItems(jsoniqSrc string, opts ...QueryOption) ([]Value, error) {
	res, err := w.Query(jsoniqSrc, opts...)
	if err != nil {
		return nil, err
	}
	items := make([]Value, len(res.Rows))
	for i, row := range res.Rows {
		if len(row) != 1 {
			return nil, fmt.Errorf("jsonpark: unexpected row arity %d", len(row))
		}
		items[i] = row[0]
	}
	return items, nil
}

// CreateView registers an incrementally maintained materialized view over a
// JSONiq query: the query is translated to SQL once, and each ViewResult
// call refreshes the view by scanning only the micro-partitions sealed since
// the previous refresh, delta-merging accumulator state so the rows stay
// byte-identical to re-running the full query. Only queries whose plan is a
// mergeable aggregation (COUNT/MIN/MAX/ARRAY_AGG-family over a stateless
// single-collection pipeline, optionally under stateless
// project/sort/limit/filter operators) are accepted; anything else errors at
// registration.
func (w *Warehouse) CreateView(name, jsoniqSrc string, opts ...QueryOption) error {
	sql, err := w.Translate(jsoniqSrc, opts...)
	if err != nil {
		return err
	}
	return w.eng.CreateView(name, sql)
}

// CreateSQLView is CreateView over raw SQL text, skipping JSONiq translation.
func (w *Warehouse) CreateSQLView(name, sql string) error {
	return w.eng.CreateView(name, sql)
}

// ViewResult incrementally refreshes the named view and returns its rows.
func (w *Warehouse) ViewResult(ctx context.Context, name string) (*Result, error) {
	return w.eng.QueryView(ctx, name)
}

// DropView removes a materialized view, reporting whether it existed.
func (w *Warehouse) DropView(name string) bool { return w.eng.DropView(name) }

// ViewInfo describes one registered materialized view.
type ViewInfo = engine.ViewInfo

// ListViews describes every registered materialized view in name order.
func (w *Warehouse) ListViews() []ViewInfo { return w.eng.ViewInfos() }

// Flush seals every collection's buffered rows into micro-partitions and —
// when the warehouse has a data directory — waits for them to reach disk.
// Call it before a planned shutdown so a reopened warehouse sees every
// loaded row; a warehouse without WithDataDir just seals in memory.
func (w *Warehouse) Flush() error { return w.eng.Catalog().Flush() }

// SQL executes a raw SQL query against the engine directly.
func (w *Warehouse) SQL(sql string) (*Result, error) { return w.eng.Query(sql) }

// SQLCtx is SQL under a cancellation context.
func (w *Warehouse) SQLCtx(ctx context.Context, sql string) (*Result, error) {
	return w.eng.QueryCtx(ctx, sql)
}

// ExplainSQL renders the optimized plan of a SQL query.
func (w *Warehouse) ExplainSQL(sql string) (string, error) { return w.eng.Explain(sql) }

// QueryInterpreted executes the JSONiq query on the interpreted iterator
// back-end (the DSQL-engine baseline) over the same loaded documents.
func (w *Warehouse) QueryInterpreted(jsoniqSrc string) ([]Value, error) {
	expr, err := jsoniq.Parse(jsoniqSrc)
	if err != nil {
		return nil, err
	}
	rt := runtime.New(runtime.ProfileDefault)
	for name, docs := range w.docs {
		rt.LoadCollection(name, docs)
	}
	return rt.Run(jsoniq.Rewrite(expr))
}

// Engine exposes the underlying SQL engine (advanced use: catalog access,
// custom staging, metrics inspection).
func (w *Warehouse) Engine() *engine.Engine { return w.eng }

// Governor returns the attached resource governor, nil when the warehouse
// runs ungoverned.
func (w *Warehouse) Governor() *Governor { return w.eng.Governor() }

// Observer exposes the warehouse's observability substrate: the metrics
// registry (Prometheus exposition) and the recent-query trace ring.
func (w *Warehouse) Observer() *obsv.Observer { return w.obs }

// Session exposes the data-frame session for programmatic query building
// with the snowpark-style API.
func (w *Warehouse) Session() *snowpark.Session { return w.sess }
