package jsonpark_test

import (
	"fmt"
	"log"

	"jsonpark"
)

// Example shows the end-to-end flow: stage nested JSON, translate a JSONiq
// query to a single SQL string, and execute it.
func Example() {
	w := jsonpark.Open()
	if err := w.CreateCollection("orders", []string{"id", "items"}); err != nil {
		log.Fatal(err)
	}
	docs := []string{
		`{"id": 1, "items": [{"sku": "apple", "qty": 2}, {"sku": "pear", "qty": 1}]}`,
		`{"id": 2, "items": []}`,
	}
	for _, d := range docs {
		if err := w.LoadJSON("orders", d); err != nil {
			log.Fatal(err)
		}
	}
	items, err := w.QueryItems(`
		for $o in collection("orders")
		for $i in $o.items[]
		where $i.qty gt 1
		return {"order": $o.id, "sku": $i.sku}`)
	if err != nil {
		log.Fatal(err)
	}
	for _, it := range items {
		fmt.Println(it.JSON())
	}
	// Output:
	// {"order":1,"sku":"apple"}
}

// ExampleWarehouse_Query_nested demonstrates the nested-query semantics of
// §IV-B/C: order 2 has no items but still appears with an empty result.
func ExampleWarehouse_Query_nested() {
	w := jsonpark.Open()
	_ = w.CreateCollection("orders", []string{"id", "items"})
	_ = w.LoadJSON("orders", `{"id": 1, "items": [{"qty": 5}]}`)
	_ = w.LoadJSON("orders", `{"id": 2, "items": []}`)
	items, err := w.QueryItems(`
		for $o in collection("orders")
		let $big := (for $i in $o.items[] where $i.qty gt 1 return $i.qty)
		order by $o.id
		return {"id": $o.id, "big": $big}`,
		jsonpark.WithStrategy(jsonpark.StrategyAuto))
	if err != nil {
		log.Fatal(err)
	}
	for _, it := range items {
		fmt.Println(it.JSON())
	}
	// Output:
	// {"id":1,"big":[5]}
	// {"id":2,"big":[]}
}

// ExampleWarehouse_Translate shows that a JSONiq query becomes one native
// SQL query.
func ExampleWarehouse_Translate() {
	w := jsonpark.Open()
	_ = w.CreateCollection("t", []string{"a"})
	sql, err := w.Translate(`for $x in collection("t") where $x.a gt 1 return $x.a`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sql[:6])
	// Output:
	// SELECT
}
