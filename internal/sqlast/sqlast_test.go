package sqlast

import (
	"strings"
	"testing"

	"jsonpark/internal/variant"
)

func TestRenderLiterals(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{L(variant.Null), "NULL"},
		{L(variant.Bool(true)), "TRUE"},
		{L(variant.Bool(false)), "FALSE"},
		{L(variant.Int(42)), "42"},
		{L(variant.Float(2.5)), "2.5"},
		{L(variant.Float(40)), "40.0"},
		{L(variant.String("it's")), "'it''s'"},
		{L(variant.Array(variant.Int(1), variant.Int(2))), "ARRAY_CONSTRUCT(1, 2)"},
		{L(variant.ObjectFromPairs("a", variant.Int(1))), "OBJECT_CONSTRUCT('a', 1)"},
	}
	for _, c := range cases {
		if got := RenderExpr(c.e); got != c.want {
			t.Errorf("RenderExpr = %q, want %q", got, c.want)
		}
	}
}

func TestRenderIdentQuoting(t *testing.T) {
	if got := RenderExpr(C(`weird"name`)); got != `"weird""name"` {
		t.Errorf("quoted ident = %q", got)
	}
	if got := RenderExpr(&ColRef{Table: "f", Name: "VALUE"}); got != `"f".VALUE` {
		t.Errorf("qualified ref = %q", got)
	}
}

func TestRenderOperatorsParenthesized(t *testing.T) {
	e := B("AND", B(">", C("a"), L(variant.Int(1))), &Unary{Op: "NOT", Operand: C("b")})
	got := RenderExpr(e)
	want := `(("a" > 1) AND (NOT "b"))`
	if got != want {
		t.Errorf("render = %q, want %q", got, want)
	}
}

func TestRenderSelectClauses(t *testing.T) {
	q := &Select{
		Items:   []SelectItem{{Expr: C("a"), Alias: "x"}, {Star: true}},
		From:    &TableRef{Name: "t"},
		Where:   B("=", C("a"), L(variant.Int(1))),
		GroupBy: []Expr{C("a")},
		Having:  B(">", F("COUNT", &Star{}), L(variant.Int(2))),
		OrderBy: []OrderItem{{Expr: C("x"), Desc: true}},
		Limit:   IntP(3),
	}
	got := Render(q)
	for _, frag := range []string{"SELECT ", `"a" AS "x"`, "*", `FROM "t"`,
		"WHERE", "GROUP BY", "HAVING", "ORDER BY", "DESC", "LIMIT 3"} {
		if !strings.Contains(got, frag) {
			t.Errorf("rendered SQL missing %q:\n%s", frag, got)
		}
	}
}

func TestRenderFlattenAndJoin(t *testing.T) {
	q := &Select{
		Items: []SelectItem{{Star: true}},
		From: &Join{
			Kind: "LEFT OUTER",
			Left: &Flatten{
				Source: &TableRef{Name: "t"},
				Input:  C("arr"),
				Outer:  true,
				Alias:  "f",
			},
			Right: &SubqueryRef{Query: &Select{Items: []SelectItem{{Star: true}}, From: &TableRef{Name: "u"}}, Alias: "s"},
			On:    B("=", C("id"), C("uid")),
		},
	}
	got := Render(q)
	for _, frag := range []string{"LATERAL FLATTEN(INPUT => \"arr\", OUTER => TRUE) AS \"f\"",
		"LEFT OUTER JOIN", `AS "s"`, "ON"} {
		if !strings.Contains(got, frag) {
			t.Errorf("missing %q in:\n%s", frag, got)
		}
	}
}

func TestRenderSetOp(t *testing.T) {
	q := &SetOp{
		Op:    "UNION ALL",
		Left:  &Select{Items: []SelectItem{{Expr: C("a")}}, From: &TableRef{Name: "x"}},
		Right: &Select{Items: []SelectItem{{Expr: C("a")}}, From: &TableRef{Name: "y"}},
	}
	got := Render(q)
	if !strings.Contains(got, ") UNION ALL (") {
		t.Errorf("set op render = %s", got)
	}
}

func TestRenderWithinGroup(t *testing.T) {
	e := &FuncCall{Name: "ARRAY_AGG", Args: []Expr{C("v")},
		WithinOrder: []OrderItem{{Expr: C("k")}, {Expr: C("j"), Desc: true}}}
	got := RenderExpr(e)
	want := `ARRAY_AGG("v") WITHIN GROUP (ORDER BY "k" ASC, "j" DESC)`
	if got != want {
		t.Errorf("render = %q", got)
	}
}

func TestRenderCaseAndCast(t *testing.T) {
	e := &CaseWhen{
		Whens: []WhenClause{{Cond: &IsNull{Operand: C("v")}, Result: L(variant.Int(0))}},
		Else:  &Cast{Operand: C("v"), Type: "double"},
	}
	got := RenderExpr(e)
	want := `CASE WHEN ("v" IS NULL) THEN 0 ELSE ("v" :: DOUBLE) END`
	if got != want {
		t.Errorf("render = %q", got)
	}
}
