// Package sqlast defines the abstract syntax tree of the SQL dialect emitted
// by the Snowpark layer and consumed by the engine, together with a
// deterministic textual renderer. The dialect is the subset of Snowflake SQL
// the paper's translation relies on: nested SELECTs, LATERAL FLATTEN with
// OUTER, INNER/LEFT OUTER/CROSS joins, GROUP BY with ARRAY_AGG/ANY_VALUE,
// ORDER BY, LIMIT, UNION ALL, CASE, `::` casts and scalar function calls.
package sqlast

import (
	"fmt"
	"strconv"
	"strings"

	"jsonpark/internal/variant"
)

// Expr is a scalar SQL expression.
type Expr interface{ exprNode() }

// Lit is a literal value.
type Lit struct{ Value variant.Value }

// ColRef references a column, optionally qualified by a FLATTEN alias
// (e.g. "f".VALUE).
type ColRef struct {
	Table string // optional qualifier
	Name  string
}

// Star is `*` in a select list or COUNT(*).
type Star struct{}

// FuncCall invokes a scalar or aggregate function. Distinct applies to
// aggregates (COUNT(DISTINCT x)); WithinOrder carries the
// `WITHIN GROUP (ORDER BY ...)` clause of ordered ARRAY_AGG.
type FuncCall struct {
	Name        string
	Args        []Expr
	Distinct    bool
	WithinOrder []OrderItem
}

// Binary applies a binary operator: + - * / % = <> < <= > >= AND OR ||.
type Binary struct {
	Op    string
	Left  Expr
	Right Expr
}

// Unary applies - or NOT.
type Unary struct {
	Op      string
	Operand Expr
}

// IsNull is `expr IS [NOT] NULL`.
type IsNull struct {
	Operand Expr
	Negate  bool
}

// CaseWhen is a searched CASE expression.
type CaseWhen struct {
	Whens []WhenClause
	Else  Expr // may be nil → NULL
}

// WhenClause is one WHEN cond THEN result arm.
type WhenClause struct {
	Cond   Expr
	Result Expr
}

// Cast renders as `expr :: TYPE`.
type Cast struct {
	Operand Expr
	Type    string
}

func (*Lit) exprNode()      {}
func (*ColRef) exprNode()   {}
func (*Star) exprNode()     {}
func (*FuncCall) exprNode() {}
func (*Binary) exprNode()   {}
func (*Unary) exprNode()    {}
func (*IsNull) exprNode()   {}
func (*CaseWhen) exprNode() {}
func (*Cast) exprNode()     {}

// Query is a full query: a Select or a set operation over queries.
type Query interface{ queryNode() }

// Select is one SELECT block.
type Select struct {
	Items   []SelectItem
	From    FromItem // may be nil for constant selects
	Where   Expr
	GroupBy []Expr
	Having  Expr
	OrderBy []OrderItem
	Limit   *int64
}

// SetOp is `left UNION ALL right`.
type SetOp struct {
	Op    string // only "UNION ALL"
	Left  Query
	Right Query
}

func (*Select) queryNode() {}
func (*SetOp) queryNode()  {}

// SelectItem is one projection: `*`, or expr [AS alias].
type SelectItem struct {
	Star  bool
	Expr  Expr
	Alias string
}

// OrderItem is one ordering criterion.
type OrderItem struct {
	Expr Expr
	Desc bool
	// NullsLast forces NULL ordering; the engine defaults to NULLs first
	// ascending / last descending, matching the variant total order.
}

// FromItem is a table expression.
type FromItem interface{ fromNode() }

// TableRef names a stored table.
type TableRef struct {
	Name  string
	Alias string
}

// SubqueryRef is a parenthesized query with an optional alias.
type SubqueryRef struct {
	Query Query
	Alias string
}

// Join combines two from-items. Kind is INNER, LEFT OUTER or CROSS.
type Join struct {
	Kind  string
	Left  FromItem
	Right FromItem
	On    Expr // nil for CROSS
}

// Flatten is `<src>, LATERAL FLATTEN(INPUT => expr, OUTER => bool) AS alias`:
// for each source row it unboxes the array-valued Input into one output row
// per element, exposing alias.VALUE and alias.INDEX. With OUTER => TRUE a
// source row with an empty or non-array input still emits one row with NULL
// VALUE/INDEX (§IV-C1 of the paper).
type Flatten struct {
	Source FromItem
	Input  Expr
	Outer  bool
	Alias  string
}

func (*TableRef) fromNode()    {}
func (*SubqueryRef) fromNode() {}
func (*Join) fromNode()        {}
func (*Flatten) fromNode()     {}

// Render produces the SQL text of a query. The output round-trips through
// sqlparse.Parse.
func Render(q Query) string {
	var b strings.Builder
	renderQuery(&b, q)
	return b.String()
}

// RenderExpr produces the SQL text of one expression.
func RenderExpr(e Expr) string {
	var b strings.Builder
	renderExpr(&b, e)
	return b.String()
}

func renderQuery(b *strings.Builder, q Query) {
	switch x := q.(type) {
	case *Select:
		renderSelect(b, x)
	case *SetOp:
		b.WriteByte('(')
		renderQuery(b, x.Left)
		b.WriteString(") ")
		b.WriteString(x.Op)
		b.WriteString(" (")
		renderQuery(b, x.Right)
		b.WriteByte(')')
	default:
		panic(fmt.Sprintf("sqlast: unknown query node %T", q))
	}
}

func renderSelect(b *strings.Builder, s *Select) {
	b.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if it.Star {
			b.WriteByte('*')
			continue
		}
		renderExpr(b, it.Expr)
		if it.Alias != "" {
			b.WriteString(" AS ")
			writeIdent(b, it.Alias)
		}
	}
	if s.From != nil {
		b.WriteString(" FROM ")
		renderFrom(b, s.From)
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		renderExpr(b, s.Where)
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			renderExpr(b, e)
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		renderExpr(b, s.Having)
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		renderOrderItems(b, s.OrderBy)
	}
	if s.Limit != nil {
		b.WriteString(" LIMIT ")
		b.WriteString(strconv.FormatInt(*s.Limit, 10))
	}
}

func renderOrderItems(b *strings.Builder, items []OrderItem) {
	for i, o := range items {
		if i > 0 {
			b.WriteString(", ")
		}
		renderExpr(b, o.Expr)
		if o.Desc {
			b.WriteString(" DESC")
		} else {
			b.WriteString(" ASC")
		}
	}
}

func renderFrom(b *strings.Builder, f FromItem) {
	switch x := f.(type) {
	case *TableRef:
		writeIdent(b, x.Name)
		if x.Alias != "" {
			b.WriteString(" AS ")
			writeIdent(b, x.Alias)
		}
	case *SubqueryRef:
		b.WriteByte('(')
		renderQuery(b, x.Query)
		b.WriteByte(')')
		if x.Alias != "" {
			b.WriteString(" AS ")
			writeIdent(b, x.Alias)
		}
	case *Join:
		renderFrom(b, x.Left)
		switch x.Kind {
		case "CROSS":
			b.WriteString(" CROSS JOIN ")
		case "LEFT OUTER":
			b.WriteString(" LEFT OUTER JOIN ")
		default:
			b.WriteString(" INNER JOIN ")
		}
		renderFrom(b, x.Right)
		if x.On != nil {
			b.WriteString(" ON ")
			renderExpr(b, x.On)
		}
	case *Flatten:
		renderFrom(b, x.Source)
		b.WriteString(", LATERAL FLATTEN(INPUT => ")
		renderExpr(b, x.Input)
		if x.Outer {
			b.WriteString(", OUTER => TRUE")
		}
		b.WriteString(") AS ")
		writeIdent(b, x.Alias)
	default:
		panic(fmt.Sprintf("sqlast: unknown from node %T", f))
	}
}

// binaryPrec orders operators for minimal-parenthesis rendering; we render
// conservatively with parens around every binary expression instead, which
// keeps the renderer and parser trivially consistent.
func renderExpr(b *strings.Builder, e Expr) {
	switch x := e.(type) {
	case *Lit:
		renderLit(b, x.Value)
	case *ColRef:
		if x.Table != "" {
			writeIdent(b, x.Table)
			b.WriteByte('.')
			b.WriteString(x.Name) // VALUE / INDEX pseudo-columns
			return
		}
		writeIdent(b, x.Name)
	case *Star:
		b.WriteByte('*')
	case *FuncCall:
		b.WriteString(strings.ToUpper(x.Name))
		b.WriteByte('(')
		if x.Distinct {
			b.WriteString("DISTINCT ")
		}
		for i, a := range x.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			renderExpr(b, a)
		}
		b.WriteByte(')')
		if len(x.WithinOrder) > 0 {
			b.WriteString(" WITHIN GROUP (ORDER BY ")
			renderOrderItems(b, x.WithinOrder)
			b.WriteByte(')')
		}
	case *Binary:
		b.WriteByte('(')
		renderExpr(b, x.Left)
		b.WriteByte(' ')
		b.WriteString(x.Op)
		b.WriteByte(' ')
		renderExpr(b, x.Right)
		b.WriteByte(')')
	case *Unary:
		b.WriteByte('(')
		b.WriteString(x.Op)
		b.WriteByte(' ')
		renderExpr(b, x.Operand)
		b.WriteByte(')')
	case *IsNull:
		b.WriteByte('(')
		renderExpr(b, x.Operand)
		if x.Negate {
			b.WriteString(" IS NOT NULL")
		} else {
			b.WriteString(" IS NULL")
		}
		b.WriteByte(')')
	case *CaseWhen:
		b.WriteString("CASE")
		for _, w := range x.Whens {
			b.WriteString(" WHEN ")
			renderExpr(b, w.Cond)
			b.WriteString(" THEN ")
			renderExpr(b, w.Result)
		}
		if x.Else != nil {
			b.WriteString(" ELSE ")
			renderExpr(b, x.Else)
		}
		b.WriteString(" END")
	case *Cast:
		b.WriteByte('(')
		renderExpr(b, x.Operand)
		b.WriteString(" :: ")
		b.WriteString(strings.ToUpper(x.Type))
		b.WriteByte(')')
	default:
		panic(fmt.Sprintf("sqlast: unknown expr node %T", e))
	}
}

func renderLit(b *strings.Builder, v variant.Value) {
	switch v.Kind() {
	case variant.KindNull:
		b.WriteString("NULL")
	case variant.KindBool:
		if v.AsBool() {
			b.WriteString("TRUE")
		} else {
			b.WriteString("FALSE")
		}
	case variant.KindInt:
		b.WriteString(strconv.FormatInt(v.AsInt(), 10))
	case variant.KindFloat:
		s := strconv.FormatFloat(v.AsFloat(), 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		b.WriteString(s)
	case variant.KindString:
		b.WriteByte('\'')
		b.WriteString(strings.ReplaceAll(v.AsString(), "'", "''"))
		b.WriteByte('\'')
	case variant.KindArray:
		// Array literals render via ARRAY_CONSTRUCT for parse round-tripping.
		b.WriteString("ARRAY_CONSTRUCT(")
		for i, e := range v.AsArray() {
			if i > 0 {
				b.WriteString(", ")
			}
			renderLit(b, e)
		}
		b.WriteByte(')')
	case variant.KindObject:
		b.WriteString("OBJECT_CONSTRUCT(")
		o := v.AsObject()
		for i, k := range o.Keys() {
			if i > 0 {
				b.WriteString(", ")
			}
			renderLit(b, variant.String(k))
			b.WriteString(", ")
			renderLit(b, o.ValueAt(i))
		}
		b.WriteByte(')')
	}
}

func writeIdent(b *strings.Builder, name string) {
	b.WriteByte('"')
	b.WriteString(strings.ReplaceAll(name, `"`, `""`))
	b.WriteByte('"')
}

// Helper constructors used heavily by the Snowpark layer and tests.

// L wraps a variant value as a literal expression.
func L(v variant.Value) *Lit { return &Lit{Value: v} }

// C references an unqualified column.
func C(name string) *ColRef { return &ColRef{Name: name} }

// F builds a function call.
func F(name string, args ...Expr) *FuncCall { return &FuncCall{Name: name, Args: args} }

// B builds a binary expression.
func B(op string, l, r Expr) *Binary { return &Binary{Op: op, Left: l, Right: r} }

// IntP returns a pointer to v, for Select.Limit.
func IntP(v int64) *int64 { return &v }
