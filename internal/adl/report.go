package adl

import (
	"fmt"
	"io"
	"math"
	"time"

	"jsonpark/internal/bench"
	"jsonpark/internal/core"
	"jsonpark/internal/engine"
	"jsonpark/internal/hepdata"
	"jsonpark/internal/iterplan"
	"jsonpark/internal/jsoniq"
	"jsonpark/internal/runtime"
	"jsonpark/internal/snowpark"
	"jsonpark/internal/variant"
)

// ReportConfig parameterizes the figure/table regeneration.
type ReportConfig struct {
	Seed    int64
	Events  int // dataset size for the fixed-size experiments ("SF1")
	Warmups int
	Runs    int
	Cutoff  time.Duration
	// ScalePowers are the scale factors of the Fig 10 sweep expressed as
	// powers of two relative to Events (the paper uses 2^-16 … 2^6).
	ScalePowers []int
	Out         io.Writer
	// Recorder, when non-nil, accumulates every data point in machine-
	// readable form alongside the text tables (adlbench -json).
	Recorder *bench.Recorder
	// BatchSize and Parallelism configure the vectorized executor; zero
	// values take the engine defaults (1024 rows, NumCPU workers).
	BatchSize   int
	Parallelism int
	// MemLimit caps the pipeline breakers' retained bytes per query;
	// overflow spills to disk with byte-identical results. 0 = unlimited.
	MemLimit int64
	// Repeat, when > 0, selects the hot-query repeat experiment (adlbench
	// -repeat N): each query is issued N times against a plan-cached engine
	// and an uncached one, measuring how the cache amortizes compile time.
	Repeat int
}

// DefaultConfig returns laptop-scale defaults.
func DefaultConfig(out io.Writer) ReportConfig {
	return ReportConfig{
		Seed:        42,
		Events:      20000,
		Warmups:     1,
		Runs:        3,
		Cutoff:      15 * time.Second,
		ScalePowers: []int{-7, -6, -5, -4, -3, -2, -1, 0},
		Out:         out,
	}
}

// Setup loads one dataset into a fresh engine and returns the session plus
// the documents (for the interpreted baselines).
func Setup(seed int64, events int) (*snowpark.Session, []variant.Value, error) {
	return SetupOpts(seed, events, 0, 0)
}

// SetupOpts is Setup with explicit executor settings; zero values take the
// engine defaults.
func SetupOpts(seed int64, events, batchSize, parallelism int) (*snowpark.Session, []variant.Value, error) {
	return SetupMemOpts(seed, events, batchSize, parallelism, 0)
}

// SetupMemOpts is SetupOpts with a pipeline-breaker memory budget
// (0 = unlimited; overflow spills to disk, results stay byte-identical).
// The prepared-plan cache is pinned off so the compile-time figures keep
// measuring real compilation on every run; ReportRepeat compares cached vs
// uncached engines explicitly.
func SetupMemOpts(seed int64, events, batchSize, parallelism int, memLimit int64) (*snowpark.Session, []variant.Value, error) {
	eng := engine.New(
		engine.WithBatchSize(batchSize),
		engine.WithParallelism(parallelism),
		engine.WithMemLimit(memLimit),
		engine.WithPlanCacheSize(-1),
	)
	docs, err := hepdata.Load(eng, "adl", seed, events)
	if err != nil {
		return nil, nil, err
	}
	return snowpark.NewSession(eng), docs, nil
}

// ReportRepeat measures the serving fast path (adlbench -repeat N): every
// query runs N times end-to-end (Prepare + Run) on a plan-cached engine and
// on an uncached engine over the same data, reporting per-iteration time,
// the amortized speedup, and the cold first iteration that paid the
// compile. Results are checked identical between the two engines before
// timing.
func ReportRepeat(cfg ReportConfig) error {
	repeat := cfg.Repeat
	if repeat <= 0 {
		repeat = 50
	}
	mk := func(cacheSize int) (*engine.Engine, error) {
		eng := engine.New(
			engine.WithBatchSize(cfg.BatchSize),
			engine.WithParallelism(cfg.Parallelism),
			engine.WithMemLimit(cfg.MemLimit),
			engine.WithPlanCacheSize(cacheSize),
		)
		if _, err := hepdata.Load(eng, "adl", cfg.Seed, cfg.Events); err != nil {
			return nil, err
		}
		return eng, nil
	}
	cached, err := mk(0)
	if err != nil {
		return err
	}
	uncached, err := mk(-1)
	if err != nil {
		return err
	}
	sess := snowpark.NewSession(cached)
	t := bench.NewTable(
		fmt.Sprintf("Hot-query repeat (%d events × %d runs): plan cache on vs off", cfg.Events, repeat),
		"Query", "Uncached/iter", "Cached/iter", "Cold first", "Speedup")
	for _, q := range Queries() {
		res, err := core.Translate(sess, q.JSONiq, core.Options{Strategy: q.Strategy})
		if err != nil {
			return err
		}
		warmC, err := cached.Query(res.SQL)
		if err != nil {
			return err
		}
		warmU, err := uncached.Query(res.SQL)
		if err != nil {
			return err
		}
		if fmt.Sprint(warmC.Rows) != fmt.Sprint(warmU.Rows) {
			return fmt.Errorf("%s: cached results diverge from uncached", q.ID)
		}
		cold := warmC.Metrics.Total()
		runTotal := func(eng *engine.Engine) (time.Duration, error) {
			start := time.Now()
			for i := 0; i < repeat; i++ {
				if _, err := eng.Query(res.SQL); err != nil {
					return 0, err
				}
			}
			return time.Since(start), nil
		}
		uTotal, err := runTotal(uncached)
		if err != nil {
			return err
		}
		cTotal, err := runTotal(cached)
		if err != nil {
			return err
		}
		uIter := uTotal / time.Duration(repeat)
		cIter := cTotal / time.Duration(repeat)
		speedup := float64(uTotal) / float64(cTotal)
		cfg.Recorder.Add(bench.Record{Experiment: "repeat", Query: q.ID, System: "uncached", MeanMicros: uIter.Microseconds(), Runs: repeat})
		cfg.Recorder.Add(bench.Record{Experiment: "repeat", Query: q.ID, System: "cached", MeanMicros: cIter.Microseconds(), Runs: repeat, Scale: speedup})
		t.AddRow(q.ID, bench.FormatDuration(uIter), bench.FormatDuration(cIter),
			bench.FormatDuration(cold), fmt.Sprintf("%.2fx", speedup))
	}
	hits, misses, _, _ := cached.PlanCacheStats()
	t.Render(cfg.Out)
	fmt.Fprintf(cfg.Out, "plan cache: %d hits, %d misses\n\n", hits, misses)
	return nil
}

// ReportTable2 regenerates Table II: the per-query iterator census.
func ReportTable2(cfg ReportConfig) error {
	t := bench.NewTable("Table II analogue: runtime iterators per ADL query",
		"Type", "Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7", "Q8")
	var flwor, other, total []string
	for _, q := range Queries() {
		expr, err := jsoniq.Parse(q.JSONiq)
		if err != nil {
			return err
		}
		it, err := iterplan.Build(jsoniq.Rewrite(expr))
		if err != nil {
			return err
		}
		c := iterplan.Census(it)
		flwor = append(flwor, fmt.Sprint(c.FLWOR))
		other = append(other, fmt.Sprint(c.Other))
		total = append(total, fmt.Sprint(c.Total()))
	}
	t.AddRow(append([]string{"FLWOR Iterators"}, flwor...)...)
	t.AddRow(append([]string{"Other Iterators"}, other...)...)
	t.AddRow(append([]string{"Total Iterators"}, total...)...)
	t.Render(cfg.Out)
	return nil
}

// ReportFig6 regenerates Figure 6: JSONiq→SQL translation time per query
// (data independent; only the table schema is consulted).
func ReportFig6(cfg ReportConfig) error {
	sess, _, err := SetupMemOpts(cfg.Seed, 16, cfg.BatchSize, cfg.Parallelism, cfg.MemLimit)
	if err != nil {
		return err
	}
	t := bench.NewTable("Fig 6 analogue: query translation time (JSONiq to SQL)",
		"Query", "Translation")
	runs := cfg.Runs * 20
	if runs < 20 {
		runs = 20
	}
	for _, q := range Queries() {
		q := q
		m, err := bench.Measure(cfg.Warmups*5, runs, func() error {
			_, err := core.Translate(sess, q.JSONiq, core.Options{Strategy: q.Strategy})
			return err
		})
		if err != nil {
			return err
		}
		cfg.Recorder.AddMeasurement("fig6", q.ID, "translate", m)
		t.AddRow(q.ID, bench.FormatDuration(m.Mean))
	}
	t.Render(cfg.Out)
	return nil
}

// ReportFig7 regenerates Figure 7: SQL compilation time in the engine,
// automatically generated vs handwritten.
func ReportFig7(cfg ReportConfig) error {
	sess, _, err := SetupMemOpts(cfg.Seed, 64, cfg.BatchSize, cfg.Parallelism, cfg.MemLimit)
	if err != nil {
		return err
	}
	t := bench.NewTable("Fig 7 analogue: engine compilation time",
		"Query", "Generated", "Handwritten")
	for _, q := range Queries() {
		res, err := core.Translate(sess, q.JSONiq, core.Options{Strategy: q.Strategy})
		if err != nil {
			return err
		}
		gen, err := measureCompile(sess.Engine(), res.SQL, cfg)
		if err != nil {
			return err
		}
		hand, err := measureCompile(sess.Engine(), q.SQL, cfg)
		if err != nil {
			return err
		}
		cfg.Recorder.Add(bench.Record{Experiment: "fig7", Query: q.ID, System: "generated", MeanMicros: gen.Microseconds()})
		cfg.Recorder.Add(bench.Record{Experiment: "fig7", Query: q.ID, System: "handwritten", MeanMicros: hand.Microseconds()})
		t.AddRow(q.ID, bench.FormatDuration(gen), bench.FormatDuration(hand))
	}
	t.Render(cfg.Out)
	return nil
}

func measureCompile(eng *engine.Engine, sql string, cfg ReportConfig) (time.Duration, error) {
	runs := cfg.Runs * 5
	if runs < 5 {
		runs = 5
	}
	m, err := bench.Measure(cfg.Warmups, runs, func() error {
		_, err := eng.Prepare(sql)
		return err
	})
	return m.Mean, err
}

// ReportFig8 regenerates Figure 8: execution time at the configured dataset
// size, generated vs handwritten (compile excluded).
func ReportFig8(cfg ReportConfig) error {
	sess, _, err := SetupMemOpts(cfg.Seed, cfg.Events, cfg.BatchSize, cfg.Parallelism, cfg.MemLimit)
	if err != nil {
		return err
	}
	t := bench.NewTable(
		fmt.Sprintf("Fig 8 analogue: execution time (%d events)", cfg.Events),
		"Query", "Generated", "Handwritten")
	for _, q := range Queries() {
		res, err := core.Translate(sess, q.JSONiq, core.Options{Strategy: q.Strategy})
		if err != nil {
			return err
		}
		gen, genM, err := measureExec(sess.Engine(), res.SQL, cfg)
		if err != nil {
			return err
		}
		hand, handM, err := measureExec(sess.Engine(), q.SQL, cfg)
		if err != nil {
			return err
		}
		cfg.Recorder.Add(memFields(bench.Record{Experiment: "fig8", Query: q.ID, System: "generated", MeanMicros: gen.Microseconds()}, genM))
		cfg.Recorder.Add(memFields(bench.Record{Experiment: "fig8", Query: q.ID, System: "handwritten", MeanMicros: hand.Microseconds()}, handM))
		t.AddRow(q.ID, bench.FormatDuration(gen), bench.FormatDuration(hand))
	}
	t.Render(cfg.Out)
	return nil
}

func measureExec(eng *engine.Engine, sql string, cfg ReportConfig) (time.Duration, engine.Metrics, error) {
	var execTotal time.Duration
	var last engine.Metrics
	m, err := bench.Measure(cfg.Warmups, cfg.Runs, func() error {
		res, err := eng.Query(sql)
		if err != nil {
			return err
		}
		execTotal += res.Metrics.ExecTime
		last = res.Metrics
		return nil
	})
	if err != nil {
		return 0, last, err
	}
	_ = m
	return execTotal / time.Duration(cfg.Runs+cfg.Warmups), last, nil
}

// memFields copies a run's memory-governance metrics into the record so
// the -json output carries peak/spill data alongside the timings.
func memFields(rec bench.Record, m engine.Metrics) bench.Record {
	rec.MemPeakBytes = m.MemPeakBytes
	rec.MemLimitBytes = m.MemLimitBytes
	rec.Spills = m.Spills
	rec.SpillBytes = m.SpillBytes
	return rec
}

// systemRunners builds the four evaluated systems for one dataset.
func systemRunners(sess *snowpark.Session, docs []variant.Value) map[string]func(q Query) error {
	rtSpark := runtime.New(runtime.ProfileRumbleSpark)
	rtSpark.LoadCollection("adl", docs)
	rtAst := runtime.New(runtime.ProfileAsterix)
	rtAst.LoadCollection("adl", docs)
	return map[string]func(q Query) error{
		"Generated": func(q Query) error {
			_, _, err := RunTranslated(sess, q, nil)
			return err
		},
		"Handwritten": func(q Query) error {
			_, _, err := RunHandwritten(sess.Engine(), q)
			return err
		},
		"RumbleDB+Spark": func(q Query) error {
			_, err := RunInterpreted(rtSpark, q)
			return err
		},
		"AsterixDB": func(q Query) error {
			_, err := RunInterpreted(rtAst, q)
			return err
		},
	}
}

var systemOrder = []string{"RumbleDB+Spark", "AsterixDB", "Generated", "Handwritten"}

// ReportFig9 regenerates Figure 9: end-to-end time per query across the
// four systems, with the cutoff applied to the DSQL baselines.
func ReportFig9(cfg ReportConfig) error {
	sess, docs, err := SetupMemOpts(cfg.Seed, cfg.Events, cfg.BatchSize, cfg.Parallelism, cfg.MemLimit)
	if err != nil {
		return err
	}
	runners := systemRunners(sess, docs)
	t := bench.NewTable(
		fmt.Sprintf("Fig 9 analogue: end-to-end time (%d events, cutoff %s)", cfg.Events, cfg.Cutoff),
		append([]string{"Query"}, systemOrder...)...)
	for _, q := range Queries() {
		row := []string{q.ID}
		for _, sys := range systemOrder {
			m, err := bench.MeasureWithCutoff(cfg.Warmups, cfg.Runs, cfg.Cutoff, func() error {
				return runners[sys](q)
			})
			if err != nil {
				return fmt.Errorf("%s on %s: %w", q.ID, sys, err)
			}
			cfg.Recorder.AddMeasurement("fig9", q.ID, sys, m)
			cell := bench.FormatDuration(m.Mean)
			if m.TimedOut {
				cell = ">" + bench.FormatDuration(cfg.Cutoff)
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	t.Render(cfg.Out)
	return nil
}

// ReportScanned regenerates the §V-E measurement: bytes scanned per query,
// generated vs handwritten.
func ReportScanned(cfg ReportConfig) error {
	sess, _, err := SetupMemOpts(cfg.Seed, cfg.Events, cfg.BatchSize, cfg.Parallelism, cfg.MemLimit)
	if err != nil {
		return err
	}
	t := bench.NewTable(
		fmt.Sprintf("Scanned bytes (§V-E analogue, %d events)", cfg.Events),
		"Query", "Generated", "Handwritten", "Ratio")
	for _, q := range Queries() {
		_, gen, err := RunTranslated(sess, q, nil)
		if err != nil {
			return err
		}
		_, hand, err := RunHandwritten(sess.Engine(), q)
		if err != nil {
			return err
		}
		ratio := float64(gen.Metrics.BytesScanned) / float64(hand.Metrics.BytesScanned)
		cfg.Recorder.Add(memFields(bench.Record{Experiment: "scanned", Query: q.ID, System: "generated", BytesScanned: gen.Metrics.BytesScanned}, gen.Metrics))
		cfg.Recorder.Add(memFields(bench.Record{Experiment: "scanned", Query: q.ID, System: "handwritten", BytesScanned: hand.Metrics.BytesScanned}, hand.Metrics))
		t.AddRow(q.ID, bench.FormatBytes(gen.Metrics.BytesScanned),
			bench.FormatBytes(hand.Metrics.BytesScanned), fmt.Sprintf("%.2fx", ratio))
	}
	t.Render(cfg.Out)
	return nil
}

// ReportFig10 regenerates Figure 10: end-to-end time versus scale factor
// for every query and system, with cutoff.
func ReportFig10(cfg ReportConfig) error {
	for _, q := range Queries() {
		set := bench.NewSeriesSet(
			fmt.Sprintf("Fig 10 analogue (%s): total time vs scale factor (SF1 = %d events)", q.ID, cfg.Events),
			"SF(2^k)")
		series := map[string]*bench.Series{}
		for _, sys := range systemOrder {
			series[sys] = set.Add(sys)
		}
		// Baselines stop being measured at larger scales once they time out.
		dead := map[string]bool{}
		for _, p := range cfg.ScalePowers {
			events := int(math.Round(float64(cfg.Events) * math.Pow(2, float64(p))))
			if events < 8 {
				events = 8
			}
			sess, docs, err := SetupMemOpts(cfg.Seed, events, cfg.BatchSize, cfg.Parallelism, cfg.MemLimit)
			if err != nil {
				return err
			}
			runners := systemRunners(sess, docs)
			for _, sys := range systemOrder {
				if dead[sys] {
					series[sys].Points[float64(p)] = "cutoff"
					continue
				}
				m, err := bench.MeasureWithCutoff(0, 1, cfg.Cutoff, func() error {
					return runners[sys](q)
				})
				if err != nil {
					return fmt.Errorf("%s on %s at 2^%d: %w", q.ID, sys, p, err)
				}
				cfg.Recorder.Add(bench.Record{
					Experiment: "fig10", Query: q.ID, System: sys, Scale: float64(p),
					MeanMicros: m.Mean.Microseconds(), Runs: m.Runs, TimedOut: m.TimedOut,
				})
				if m.TimedOut {
					series[sys].Points[float64(p)] = "cutoff"
					dead[sys] = true
				} else {
					series[sys].Points[float64(p)] = bench.FormatDuration(m.Mean)
				}
			}
		}
		set.Render(cfg.Out)
	}
	return nil
}

// ReportAblation regenerates the §IV-C strategy comparison: KEEP-flag vs
// JOIN-based nested-query handling on the queries with nested queries.
func ReportAblation(cfg ReportConfig) error {
	sess, _, err := SetupMemOpts(cfg.Seed, cfg.Events, cfg.BatchSize, cfg.Parallelism, cfg.MemLimit)
	if err != nil {
		return err
	}
	t := bench.NewTable(
		fmt.Sprintf("Ablation (§IV-C): nested-query strategy, %d events", cfg.Events),
		"Query", "KeepFlag", "Join", "Auto", "AutoPick", "KeepBytes", "JoinBytes")
	keep := core.StrategyKeepFlag
	join := core.StrategyJoin
	auto := core.StrategyAuto
	for _, q := range Queries() {
		if q.ID == "q1" || q.ID == "q2" || q.ID == "q3" {
			continue // no nested queries
		}
		var keepBytes, joinBytes int64
		var keepM, joinM engine.Metrics
		mk, err := bench.Measure(cfg.Warmups, cfg.Runs, func() error {
			_, res, err := RunTranslated(sess, q, &keep)
			if res != nil {
				keepBytes = res.Metrics.BytesScanned
				keepM = res.Metrics
			}
			return err
		})
		if err != nil {
			return err
		}
		mj, err := bench.Measure(cfg.Warmups, cfg.Runs, func() error {
			_, res, err := RunTranslated(sess, q, &join)
			if res != nil {
				joinBytes = res.Metrics.BytesScanned
				joinM = res.Metrics
			}
			return err
		})
		if err != nil {
			return err
		}
		ma, err := bench.Measure(cfg.Warmups, cfg.Runs, func() error {
			_, _, err := RunTranslated(sess, q, &auto)
			return err
		})
		if err != nil {
			return err
		}
		expr, err := jsoniq.Parse(q.JSONiq)
		if err != nil {
			return err
		}
		pick := core.ChooseStrategy(core.StrategyAuto, jsoniq.Rewrite(expr))
		cfg.Recorder.Add(memFields(bench.Record{Experiment: "ablation", Query: q.ID, System: "keep-flag", MeanMicros: mk.Mean.Microseconds(), Runs: mk.Runs, BytesScanned: keepBytes}, keepM))
		cfg.Recorder.Add(memFields(bench.Record{Experiment: "ablation", Query: q.ID, System: "join", MeanMicros: mj.Mean.Microseconds(), Runs: mj.Runs, BytesScanned: joinBytes}, joinM))
		cfg.Recorder.Add(bench.Record{Experiment: "ablation", Query: q.ID, System: "auto:" + pick.String(), MeanMicros: ma.Mean.Microseconds(), Runs: ma.Runs})
		t.AddRow(q.ID, bench.FormatDuration(mk.Mean), bench.FormatDuration(mj.Mean),
			bench.FormatDuration(ma.Mean), pick.String(),
			bench.FormatBytes(keepBytes), bench.FormatBytes(joinBytes))
	}
	t.Render(cfg.Out)
	return nil
}
