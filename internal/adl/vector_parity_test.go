package adl

import (
	"strings"
	"testing"

	"jsonpark/internal/engine"
)

const parityEvents = 400

func renderResult(res *engine.Result) string {
	var b strings.Builder
	for _, row := range res.Rows {
		for _, v := range row {
			b.WriteString(v.JSON())
			b.WriteByte('\t')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestADLBatchSizeParity runs every ADL query — translated (per-query
// strategy) and handwritten — under several executor configurations and
// requires the raw result rows to be byte-identical to the batch-size-1
// sequential reference, which reproduces the row-at-a-time executor's
// behaviour exactly.
func TestADLBatchSizeParity(t *testing.T) {
	configs := []struct {
		name                   string
		batchSize, parallelism int
		memLimit               int64
	}{
		{"bs1-seq", 1, 1, 0},
		{"bs1024-seq", 1024, 1, 0},
		{"bs1-par4", 1, 4, 0},
		{"bs1024-par4", 1024, 4, 0},
		{"bs1024-par", 1024, 0, 0}, // 0 = NumCPU workers
		// Governed rows: the 64KiB breaker budget forces the benchmark
		// queries to spill, and spilled results must stay byte-identical.
		{"bs1024-seq-64k", 1024, 1, 64 * 1024},
		{"bs1024-par4-64k", 1024, 4, 64 * 1024},
	}
	type ref struct{ translated, handwritten string }
	var want map[string]ref
	for _, cfg := range configs {
		sess, _, err := SetupMemOpts(42, parityEvents, cfg.batchSize, cfg.parallelism, cfg.memLimit)
		if err != nil {
			t.Fatal(err)
		}
		var spills int64
		got := make(map[string]ref)
		for _, q := range Queries() {
			_, tres, err := RunTranslated(sess, q, nil)
			if err != nil {
				t.Fatalf("%s [%s]: %v", q.ID, cfg.name, err)
			}
			_, hres, err := RunHandwritten(sess.Engine(), q)
			if err != nil {
				t.Fatalf("%s [%s]: %v", q.ID, cfg.name, err)
			}
			spills += tres.Metrics.Spills + hres.Metrics.Spills
			got[q.ID] = ref{renderResult(tres), renderResult(hres)}
		}
		if cfg.memLimit > 0 && spills == 0 {
			t.Errorf("[%s] no ADL query spilled under the %d-byte budget", cfg.name, cfg.memLimit)
		}
		if cfg.memLimit == 0 && spills != 0 {
			t.Errorf("[%s] unlimited run reported %d spills", cfg.name, spills)
		}
		if want == nil {
			want = got
			continue
		}
		for _, q := range Queries() {
			if got[q.ID].translated != want[q.ID].translated {
				t.Errorf("%s translated: %s diverges from %s", q.ID, cfg.name, configs[0].name)
			}
			if got[q.ID].handwritten != want[q.ID].handwritten {
				t.Errorf("%s handwritten: %s diverges from %s", q.ID, cfg.name, configs[0].name)
			}
		}
	}
}
