// Package adl contains the IRIS HEP ADL benchmark workload (§II-C of the
// paper): the eight reference queries expressed in JSONiq, their
// handwritten-SQL counterparts in the engine dialect (written in the
// flatten/re-aggregate style of the benchmark's relational implementations,
// including the UNION ALL formulation of Q8 the paper discusses in §V-D),
// and helpers to execute and compare all back-ends.
//
// Every query ends in a histogram: `group by bin / order by bin /
// return {bin, count}`. Bin width is 5 GeV throughout.
package adl

import "jsonpark/internal/core"

// BinWidth is the histogram bin width in GeV.
const BinWidth = 5.0

// Query is one benchmark query in both languages.
type Query struct {
	ID          string
	Description string
	JSONiq      string
	SQL         string
	// Strategy is the nested-query elimination strategy the paper selects
	// for this query (§V-A): JOIN-based for Q6, flag-column otherwise.
	Strategy core.Strategy
}

// Queries returns the eight ADL queries in order.
func Queries() []Query {
	return []Query{
		{ID: "q1", Description: "MET histogram", JSONiq: q1JSONiq, SQL: q1SQL},
		{ID: "q2", Description: "jet pT histogram", JSONiq: q2JSONiq, SQL: q2SQL},
		{ID: "q3", Description: "pT of jets with |eta| < 1", JSONiq: q3JSONiq, SQL: q3SQL},
		{ID: "q4", Description: "MET of events with >= 2 jets with pT > 40", JSONiq: q4JSONiq, SQL: q4SQL},
		{ID: "q5", Description: "MET of events with an opposite-charge dimuon with 60 < m < 120", JSONiq: q5JSONiq, SQL: q5SQL},
		{ID: "q6", Description: "pT of the trijet system with mass closest to 172.5", JSONiq: q6JSONiq, SQL: q6SQL, Strategy: core.StrategyJoin},
		{ID: "q7", Description: "scalar sum of pT of jets (pT > 30) isolated from light leptons (pT > 10)", JSONiq: q7JSONiq, SQL: q7SQL},
		{ID: "q8", Description: "transverse mass of MET and leading lepton outside the best SFOS pair", JSONiq: q8JSONiq, SQL: q8SQL},
	}
}

// ByID returns one query.
func ByID(id string) (Query, bool) {
	for _, q := range Queries() {
		if q.ID == id {
			return q, true
		}
	}
	return Query{}, false
}

const q1JSONiq = `
for $e in collection("adl")
group by $bin := floor($e.MET.pt div 5.0) * 5.0
order by $bin
return {"bin": $bin, "count": count($e)}
`

const q2JSONiq = `
for $e in collection("adl")
for $j in $e.Jet[]
group by $bin := floor($j.pt div 5.0) * 5.0
order by $bin
return {"bin": $bin, "count": count($j)}
`

const q3JSONiq = `
for $e in collection("adl")
for $j in $e.Jet[]
where abs($j.eta) lt 1
group by $bin := floor($j.pt div 5.0) * 5.0
order by $bin
return {"bin": $bin, "count": count($j)}
`

const q4JSONiq = `
for $e in collection("adl")
where count(
  for $j in $e.Jet[]
  where $j.pt gt 40
  return $j
) ge 2
group by $bin := floor($e.MET.pt div 5.0) * 5.0
order by $bin
return {"bin": $bin, "count": count($e)}
`

const q5JSONiq = `
for $e in collection("adl")
where exists(
  for $i in 1 to size($e.Muon)
  for $j in 1 to size($e.Muon)
  where $i lt $j
  let $m1 := $e.Muon[[$i]]
  let $m2 := $e.Muon[[$j]]
  where $m1.charge * $m2.charge lt 0
  let $mass := sqrt(2 * $m1.pt * $m2.pt * (cosh($m1.eta - $m2.eta) - cos($m1.phi - $m2.phi)))
  where $mass gt 60 and $mass lt 120
  return 1
)
group by $bin := floor($e.MET.pt div 5.0) * 5.0
order by $bin
return {"bin": $bin, "count": count($e)}
`

const q6JSONiq = `
for $e in collection("adl")
where size($e.Jet) ge 3
let $best := (
  for $i in 1 to size($e.Jet)
  for $j in 1 to size($e.Jet)
  for $k in 1 to size($e.Jet)
  where $i lt $j and $j lt $k
  let $j1 := $e.Jet[[$i]]
  let $j2 := $e.Jet[[$j]]
  let $j3 := $e.Jet[[$k]]
  let $px := $j1.pt * cos($j1.phi) + $j2.pt * cos($j2.phi) + $j3.pt * cos($j3.phi)
  let $py := $j1.pt * sin($j1.phi) + $j2.pt * sin($j2.phi) + $j3.pt * sin($j3.phi)
  let $pz := $j1.pt * sinh($j1.eta) + $j2.pt * sinh($j2.eta) + $j3.pt * sinh($j3.eta)
  let $en := sqrt($j1.pt * $j1.pt + ($j1.pt * sinh($j1.eta)) * ($j1.pt * sinh($j1.eta)) + $j1.mass * $j1.mass)
           + sqrt($j2.pt * $j2.pt + ($j2.pt * sinh($j2.eta)) * ($j2.pt * sinh($j2.eta)) + $j2.mass * $j2.mass)
           + sqrt($j3.pt * $j3.pt + ($j3.pt * sinh($j3.eta)) * ($j3.pt * sinh($j3.eta)) + $j3.mass * $j3.mass)
  let $mass := sqrt($en * $en - $px * $px - $py * $py - $pz * $pz)
  let $tpt := sqrt($px * $px + $py * $py)
  let $mb := max([$j1.btag, $j2.btag, $j3.btag])
  order by abs($mass - 172.5)
  return {"pt": $tpt, "maxbtag": $mb}
)[[1]]
group by $bin := floor($best.pt div 5.0) * 5.0
order by $bin
return {"bin": $bin, "count": count($e)}
`

const q7JSONiq = `
for $e in collection("adl")
let $s := sum(
  for $j in $e.Jet[]
  where $j.pt gt 30
  where empty(
    for $m in $e.Muon[]
    where $m.pt gt 10
    let $dphi := atan2(sin($j.phi - $m.phi), cos($j.phi - $m.phi))
    where sqrt(($j.eta - $m.eta) * ($j.eta - $m.eta) + $dphi * $dphi) lt 0.4
    return 1
  )
  where empty(
    for $l in $e.Electron[]
    where $l.pt gt 10
    let $dphi := atan2(sin($j.phi - $l.phi), cos($j.phi - $l.phi))
    where sqrt(($j.eta - $l.eta) * ($j.eta - $l.eta) + $dphi * $dphi) lt 0.4
    return 1
  )
  return $j.pt
)
group by $bin := floor($s div 5.0) * 5.0
order by $bin
return {"bin": $bin, "count": count($e)}
`

const q8JSONiq = `
for $e in collection("adl")
let $mu := (for $m in $e.Muon[]
            return {"pt": $m.pt, "eta": $m.eta, "phi": $m.phi, "charge": $m.charge, "flavor": 1})
let $el := (for $l in $e.Electron[]
            return {"pt": $l.pt, "eta": $l.eta, "phi": $l.phi, "charge": $l.charge, "flavor": 2})
let $leptons := concat($mu, $el)
where size($leptons) ge 3
let $best := (
  for $i in 1 to size($leptons)
  for $j in 1 to size($leptons)
  where $i lt $j
  let $l1 := $leptons[[$i]]
  let $l2 := $leptons[[$j]]
  where $l1.flavor eq $l2.flavor and $l1.charge * $l2.charge lt 0
  let $mass := sqrt(2 * $l1.pt * $l2.pt * (cosh($l1.eta - $l2.eta) - cos($l1.phi - $l2.phi)))
  order by abs($mass - 91.2)
  return {"i": $i, "j": $j}
)[[1]]
where exists($best)
let $other := (
  for $k in 1 to size($leptons)
  where $k ne $best.i and $k ne $best.j
  order by $leptons[[$k]].pt descending
  return $leptons[[$k]]
)[[1]]
let $mt := sqrt(2 * $other.pt * $e.MET.pt * (1 - cos($e.MET.phi - $other.phi)))
group by $bin := floor($mt div 5.0) * 5.0
order by $bin
return {"bin": $bin, "count": count($e)}
`
