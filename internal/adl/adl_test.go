package adl

import (
	"jsonpark/internal/jsoniq"
	"testing"

	"jsonpark/internal/core"
	"jsonpark/internal/engine"
	"jsonpark/internal/hepdata"
	"jsonpark/internal/runtime"
	"jsonpark/internal/snowpark"
	"jsonpark/internal/variant"
)

const testEvents = 600

func testSetup(t *testing.T) (*snowpark.Session, *runtime.Engine) {
	t.Helper()
	eng := engine.New()
	docs, err := hepdata.Load(eng, "adl", 42, testEvents)
	if err != nil {
		t.Fatal(err)
	}
	rt := runtime.New(runtime.ProfileDefault)
	rt.LoadCollection("adl", docs)
	return snowpark.NewSession(eng), rt
}

// TestAllBackendsAgree is the central differential test: for every ADL
// query, the automatic translation (both elimination strategies), the
// handwritten SQL reference and the interpreted runtime must produce the
// same histogram on the same data.
func TestAllBackendsAgree(t *testing.T) {
	sess, rt := testSetup(t)
	for _, q := range Queries() {
		q := q
		t.Run(q.ID, func(t *testing.T) {
			want, err := RunInterpreted(rt, q)
			if err != nil {
				t.Fatal(err)
			}
			if want.TotalCount() == 0 {
				t.Fatalf("query %s matches no events at all; test data too sparse", q.ID)
			}
			hand, _, err := RunHandwritten(sess.Engine(), q)
			if err != nil {
				t.Fatal(err)
			}
			if !hand.Equal(want) {
				t.Errorf("handwritten mismatch\nhand: %v\nwant: %v", hand, want)
			}
			for _, strat := range []core.Strategy{core.StrategyKeepFlag, core.StrategyJoin} {
				strat := strat
				got, _, err := RunTranslated(sess, q, &strat)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Errorf("translated (%v) mismatch\ngot:  %v\nwant: %v", strat, got, want)
				}
			}
		})
	}
}

func TestInterpretedProfilesAgreeOnADL(t *testing.T) {
	_, rt := testSetup(t)
	docs := hepdata.Events(42, 120)
	rtSpark := runtime.New(runtime.ProfileRumbleSpark)
	rtSpark.LoadCollection("adl", docs)
	rtAst := runtime.New(runtime.ProfileAsterix)
	rtAst.LoadCollection("adl", docs)
	rtDef := runtime.New(runtime.ProfileDefault)
	rtDef.LoadCollection("adl", docs)
	_ = rt
	for _, q := range Queries() {
		want, err := RunInterpreted(rtDef, q)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		for name, e := range map[string]*runtime.Engine{"spark": rtSpark, "asterix": rtAst} {
			got, err := RunInterpreted(e, q)
			if err != nil {
				t.Fatalf("%s/%s: %v", q.ID, name, err)
			}
			if !got.Equal(want) {
				t.Errorf("%s/%s: %v != %v", q.ID, name, got, want)
			}
		}
	}
}

// TestScannedBytesQ6JoinRescans checks the §V-E observation: the JOIN-based
// translation of Q6 roughly doubles the scanned bytes versus handwritten.
func TestScannedBytesQ6JoinRescans(t *testing.T) {
	sess, _ := testSetup(t)
	q, _ := ByID("q6")
	join := core.StrategyJoin
	_, tRes, err := RunTranslated(sess, q, &join)
	if err != nil {
		t.Fatal(err)
	}
	_, hRes, err := RunHandwritten(sess.Engine(), q)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(tRes.Metrics.BytesScanned) / float64(hRes.Metrics.BytesScanned)
	if ratio < 1.3 {
		t.Errorf("JOIN strategy should scan noticeably more than handwritten, ratio = %.2f", ratio)
	}
	if ratio > 4 {
		t.Errorf("JOIN strategy scan ratio implausibly high: %.2f", ratio)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := hepdata.Events(7, 50)
	b := hepdata.Events(7, 50)
	for i := range a {
		if !variant.Equal(a[i], b[i]) {
			t.Fatalf("event %d differs between runs", i)
		}
	}
	c := hepdata.Events(8, 50)
	same := 0
	for i := range a {
		if variant.Equal(a[i], c[i]) {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical data")
	}
}

func TestGeneratorStructure(t *testing.T) {
	docs := hepdata.Events(1, 500)
	emptyMuon, multiJet := 0, 0
	for _, d := range docs {
		if d.Field("EVENT").Kind() != variant.KindInt {
			t.Fatal("EVENT must be an integer")
		}
		if d.Field("MET").Field("pt").Kind() != variant.KindFloat {
			t.Fatal("MET.pt must be a double")
		}
		if d.Field("Muon").Len() == 0 {
			emptyMuon++
		}
		if d.Field("Jet").Len() >= 3 {
			multiJet++
		}
		for _, m := range d.Field("Muon").AsArray() {
			ch := m.Field("charge").AsInt()
			if ch != 1 && ch != -1 {
				t.Fatalf("bad charge %d", ch)
			}
		}
	}
	if emptyMuon == 0 {
		t.Error("generator must produce events with empty Muon arrays (exercises §IV-C)")
	}
	if multiJet == 0 {
		t.Error("generator must produce events with >= 3 jets (exercises Q6)")
	}
}

func TestEventsForScaleFactor(t *testing.T) {
	if hepdata.EventsForScaleFactor(1) != hepdata.EventsPerSF {
		t.Error("SF1 wrong")
	}
	if got := hepdata.EventsForScaleFactor(0.0000001); got != 8 {
		t.Errorf("tiny SF = %d, want floor 8", got)
	}
	if got := hepdata.EventsForScaleFactor(0.5); got != hepdata.EventsPerSF/2 {
		t.Errorf("SF0.5 = %d", got)
	}
}

func TestQueryLookup(t *testing.T) {
	if len(Queries()) != 8 {
		t.Fatal("expected 8 queries")
	}
	q, ok := ByID("q6")
	if !ok || q.Strategy != core.StrategyJoin {
		t.Error("q6 must default to the JOIN strategy (§V-A)")
	}
	if _, ok := ByID("q99"); ok {
		t.Error("unknown id should not resolve")
	}
}

func TestStrategyAutoSelectionOnADLQueries(t *testing.T) {
	// The automatic optimizer must pick JOIN for q4–q7 and KEEP for q8,
	// matching the per-query winners measured in the ablation.
	want := map[string]core.Strategy{
		"q4": core.StrategyJoin, "q5": core.StrategyJoin,
		"q6": core.StrategyJoin, "q7": core.StrategyJoin,
		"q8": core.StrategyKeepFlag,
	}
	for id, expect := range want {
		q, _ := ByID(id)
		expr, err := jsoniq.Parse(q.JSONiq)
		if err != nil {
			t.Fatal(err)
		}
		if got := core.ChooseStrategy(core.StrategyAuto, jsoniq.Rewrite(expr)); got != expect {
			t.Errorf("%s auto strategy = %v, want %v", id, got, expect)
		}
	}
}

func TestStrategyAutoResultsCorrect(t *testing.T) {
	sess, rt := testSetup(t)
	auto := core.StrategyAuto
	for _, id := range []string{"q5", "q8"} {
		q, _ := ByID(id)
		want, err := RunInterpreted(rt, q)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := RunTranslated(sess, q, &auto)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("%s auto strategy mismatch:\ngot %v\nwant %v", id, got, want)
		}
	}
}

// TestBackendsAgreeAcrossSeeds re-runs the differential check on several
// independently generated datasets, catching data-shape-dependent bugs
// (e.g. partitions where every array is empty, or no event passes a
// filter).
func TestBackendsAgreeAcrossSeeds(t *testing.T) {
	for _, seed := range []int64{1, 99, 2026} {
		eng := engine.New()
		docs, err := hepdata.Load(eng, "adl", seed, 250)
		if err != nil {
			t.Fatal(err)
		}
		rt := runtime.New(runtime.ProfileDefault)
		rt.LoadCollection("adl", docs)
		sess := snowpark.NewSession(eng)
		for _, id := range []string{"q4", "q5", "q7", "q8"} {
			q, _ := ByID(id)
			want, err := RunInterpreted(rt, q)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, id, err)
			}
			for _, strat := range []core.Strategy{core.StrategyKeepFlag, core.StrategyJoin} {
				strat := strat
				got, _, err := RunTranslated(sess, q, &strat)
				if err != nil {
					t.Fatalf("seed %d %s (%v): %v", seed, id, strat, err)
				}
				if !got.Equal(want) {
					t.Errorf("seed %d %s (%v): %v != %v", seed, id, strat, got, want)
				}
			}
		}
	}
}
