package adl

import (
	"fmt"
	"testing"

	"jsonpark/internal/engine"
	"jsonpark/internal/hepdata"
	"jsonpark/internal/snowpark"
)

// BenchmarkADLTypedVsVariant runs the scan-heavy ADL queries (q1–q4: flat
// MET scans and jet flatten/filter histograms) single-threaded against typed
// shredded chunks and the variant-only v1 layout. The nested event columns
// (Jet, Muon, …) stay variant in both modes — they are arrays — so the
// delta measures the typed kernels on the scalar columns (MET.pt after
// shredding, event counters) plus the typed zone-map seal path; q5 rides
// along as a fallback-heavy control that should not regress.
func BenchmarkADLTypedVsVariant(b *testing.B) {
	const events = 2000
	ids := []string{"q1", "q2", "q3", "q4", "q5"}
	for _, mode := range []struct {
		name  string
		typed bool
	}{{"typed", true}, {"variant", false}} {
		opts := []engine.Option{engine.WithParallelism(1)}
		if !mode.typed {
			opts = append(opts, engine.WithTypedColumns(false))
		}
		eng := engine.New(opts...)
		if _, err := hepdata.Load(eng, "adl", 42, events); err != nil {
			b.Fatal(err)
		}
		sess := snowpark.NewSession(eng)
		for _, id := range ids {
			q, ok := ByID(id)
			if !ok {
				b.Fatalf("unknown query %s", id)
			}
			b.Run(fmt.Sprintf("%s/mode=%s", id, mode.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := RunTranslated(sess, q, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
