package adl

import (
	"testing"
	"time"

	"jsonpark/internal/core"
	"jsonpark/internal/engine"
)

// TestMetricsAccuracy pins the observability invariants on every ADL query:
// scans always report bytes, the analyzed plan's root row count equals the
// result row count with rows_in flowing consistently through the tree, and
// the operators' self times partition a window no larger than the measured
// execution time.
func TestMetricsAccuracy(t *testing.T) {
	sess, _ := testSetup(t)
	for _, q := range Queries() {
		q := q
		t.Run(q.ID, func(t *testing.T) {
			tres, err := core.Translate(sess, q.JSONiq, core.Options{Strategy: q.Strategy})
			if err != nil {
				t.Fatal(err)
			}
			res, plan, err := sess.Engine().QueryAnalyze(tres.SQL)
			if err != nil {
				t.Fatal(err)
			}
			if res.Metrics.BytesScanned <= 0 {
				t.Errorf("BytesScanned = %d", res.Metrics.BytesScanned)
			}
			if res.Metrics.PartitionsTotal <= 0 {
				t.Errorf("PartitionsTotal = %d", res.Metrics.PartitionsTotal)
			}
			if plan == nil {
				t.Fatal("nil plan")
			}
			if plan.RowsOut != int64(len(res.Rows)) {
				t.Errorf("root rows_out=%d, result rows=%d", plan.RowsOut, len(res.Rows))
			}
			var selfSum time.Duration
			var planBytes int64
			plan.Walk(func(depth int, n *engine.PlanStats) {
				selfSum += n.SelfTime()
				planBytes += n.BytesScanned
				var childSum int64
				for _, c := range n.Children {
					childSum += c.RowsOut
				}
				if n.RowsIn != childSum {
					t.Errorf("%s: rows_in=%d, sum(children)=%d", n.Op, n.RowsIn, childSum)
				}
			})
			// µs truncation per operator only loses time, never invents it.
			if selfSum > res.Metrics.ExecTime+time.Millisecond {
				t.Errorf("sum(self)=%v exceeds ExecTime=%v", selfSum, res.Metrics.ExecTime)
			}
			if planBytes != res.Metrics.BytesScanned {
				t.Errorf("plan bytes=%d, metrics bytes=%d", planBytes, res.Metrics.BytesScanned)
			}
		})
	}
}
