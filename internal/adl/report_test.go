package adl

import (
	"jsonpark/internal/iterplan"
	"jsonpark/internal/jsoniq"
	"strings"
	"testing"
	"time"
)

// tinyConfig keeps report smoke tests fast.
func tinyConfig(sb *strings.Builder) ReportConfig {
	return ReportConfig{
		Seed:        3,
		Events:      150,
		Warmups:     0,
		Runs:        1,
		Cutoff:      30 * time.Second,
		ScalePowers: []int{-1, 0},
		Out:         sb,
	}
}

func TestReportsProduceTables(t *testing.T) {
	cases := []struct {
		name string
		run  func(ReportConfig) error
		want []string
	}{
		{"table2", ReportTable2, []string{"FLWOR Iterators", "Q8"}},
		{"fig6", ReportFig6, []string{"Translation", "q8"}},
		{"fig7", ReportFig7, []string{"Generated", "Handwritten"}},
		{"fig8", ReportFig8, []string{"Generated", "Handwritten", "q6"}},
		{"scanned", ReportScanned, []string{"Ratio", "q6"}},
		{"ablation", ReportAblation, []string{"KeepFlag", "Join", "q5"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			var sb strings.Builder
			if err := c.run(tinyConfig(&sb)); err != nil {
				t.Fatal(err)
			}
			out := sb.String()
			for _, frag := range c.want {
				if !strings.Contains(out, frag) {
					t.Errorf("missing %q in output:\n%s", frag, out)
				}
			}
		})
	}
}

func TestReportFig9IncludesAllSystems(t *testing.T) {
	var sb strings.Builder
	cfg := tinyConfig(&sb)
	if err := ReportFig9(cfg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, sys := range []string{"RumbleDB+Spark", "AsterixDB", "Generated", "Handwritten"} {
		if !strings.Contains(out, sys) {
			t.Errorf("missing system %q:\n%s", sys, out)
		}
	}
}

func TestReportFig10SweepsScaleFactors(t *testing.T) {
	var sb strings.Builder
	cfg := tinyConfig(&sb)
	if err := ReportFig10(cfg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "Fig 10 analogue") != 8 {
		t.Errorf("expected one plot per query:\n%s", out)
	}
	if !strings.Contains(out, "-1") || !strings.Contains(out, "0") {
		t.Errorf("missing scale factor rows:\n%s", out)
	}
}

func TestTable2ShapeMatchesPaper(t *testing.T) {
	// The paper's Table II shape: totals grow from Q1 to Q8 overall, Q6 and
	// Q8 dominate, and FLWOR iterators are a small fraction of the total.
	totals := map[string]int{}
	for _, q := range Queries() {
		expr, err := jsoniq.Parse(q.JSONiq)
		if err != nil {
			t.Fatal(err)
		}
		it, err := iterplan.Build(jsoniq.Rewrite(expr))
		if err != nil {
			t.Fatal(err)
		}
		c := iterplan.Census(it)
		totals[q.ID] = c.Total()
		if c.FLWOR*2 >= c.Total() {
			t.Errorf("%s: FLWOR iterators (%d) should be a minority of %d", q.ID, c.FLWOR, c.Total())
		}
	}
	if totals["q1"] >= totals["q5"] || totals["q5"] >= totals["q6"] {
		t.Errorf("totals not growing: %v", totals)
	}
	if totals["q6"] < 2*totals["q4"] || totals["q8"] < 2*totals["q4"] {
		t.Errorf("q6/q8 should dominate: %v", totals)
	}
}
