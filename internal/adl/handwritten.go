package adl

// Handwritten SQL references. Q1–Q5 follow the straightforward flatten +
// group style; Q6 enumerates trijets with three lateral flattens; Q7 uses
// the four-unboxing / two-reaggregation + BOOLAND_AGG formulation the paper
// credits with beating the automatic translation (§V-D); Q8 uses the
// UNION ALL two-table formulation the paper credits with LOSING to the
// automatic translation at scale (§V-D, §V-F). Events are keyed by their
// unique "EVENT" id rather than injected row IDs.

const q1SQL = `
SELECT FLOOR(GET("MET", 'pt') / 5.0) * 5.0 AS "bin", COUNT(*) AS "count"
FROM "adl"
GROUP BY FLOOR(GET("MET", 'pt') / 5.0) * 5.0
ORDER BY "bin" ASC
`

const q2SQL = `
SELECT FLOOR(GET("j".VALUE, 'pt') / 5.0) * 5.0 AS "bin", COUNT(*) AS "count"
FROM "adl", LATERAL FLATTEN(INPUT => "Jet") AS "j"
GROUP BY FLOOR(GET("j".VALUE, 'pt') / 5.0) * 5.0
ORDER BY "bin" ASC
`

const q3SQL = `
SELECT FLOOR(GET("j".VALUE, 'pt') / 5.0) * 5.0 AS "bin", COUNT(*) AS "count"
FROM "adl", LATERAL FLATTEN(INPUT => "Jet") AS "j"
WHERE ABS(GET("j".VALUE, 'eta')) < 1
GROUP BY FLOOR(GET("j".VALUE, 'pt') / 5.0) * 5.0
ORDER BY "bin" ASC
`

const q4SQL = `
SELECT FLOOR("met" / 5.0) * 5.0 AS "bin", COUNT(*) AS "count"
FROM (
  SELECT ANY_VALUE(GET("MET", 'pt')) AS "met"
  FROM "adl", LATERAL FLATTEN(INPUT => "Jet") AS "j"
  WHERE GET("j".VALUE, 'pt') > 40
  GROUP BY "EVENT"
  HAVING COUNT(*) >= 2
)
GROUP BY FLOOR("met" / 5.0) * 5.0
ORDER BY "bin" ASC
`

const q5SQL = `
SELECT FLOOR("met" / 5.0) * 5.0 AS "bin", COUNT(*) AS "count"
FROM (
  SELECT ANY_VALUE(GET("MET", 'pt')) AS "met"
  FROM "adl",
    LATERAL FLATTEN(INPUT => "Muon") AS "m1",
    LATERAL FLATTEN(INPUT => "Muon") AS "m2"
  WHERE "m1".INDEX < "m2".INDEX
    AND GET("m1".VALUE, 'charge') * GET("m2".VALUE, 'charge') < 0
    AND SQRT(2 * GET("m1".VALUE, 'pt') * GET("m2".VALUE, 'pt') * (COSH(GET("m1".VALUE, 'eta') - GET("m2".VALUE, 'eta')) - COS(GET("m1".VALUE, 'phi') - GET("m2".VALUE, 'phi')))) > 60
    AND SQRT(2 * GET("m1".VALUE, 'pt') * GET("m2".VALUE, 'pt') * (COSH(GET("m1".VALUE, 'eta') - GET("m2".VALUE, 'eta')) - COS(GET("m1".VALUE, 'phi') - GET("m2".VALUE, 'phi')))) < 120
  GROUP BY "EVENT"
)
GROUP BY FLOOR("met" / 5.0) * 5.0
ORDER BY "bin" ASC
`

const q6SQL = `
SELECT FLOOR(GET("best", 'pt') / 5.0) * 5.0 AS "bin", COUNT(*) AS "count"
FROM (
  SELECT GET(ARRAY_AGG(OBJECT_CONSTRUCT('pt', "tpt", 'maxbtag', "mb")) WITHIN GROUP (ORDER BY "dm" ASC), 0) AS "best"
  FROM (
    SELECT "ev",
      SQRT(("px1" + "px2" + "px3") * ("px1" + "px2" + "px3") + ("py1" + "py2" + "py3") * ("py1" + "py2" + "py3")) AS "tpt",
      GREATEST("b1", "b2", "b3") AS "mb",
      ABS(SQRT(("e1" + "e2" + "e3") * ("e1" + "e2" + "e3") - ("px1" + "px2" + "px3") * ("px1" + "px2" + "px3") - ("py1" + "py2" + "py3") * ("py1" + "py2" + "py3") - ("pz1" + "pz2" + "pz3") * ("pz1" + "pz2" + "pz3")) - 172.5) AS "dm"
    FROM (
      SELECT "EVENT" AS "ev",
        GET("j1".VALUE, 'pt') * COS(GET("j1".VALUE, 'phi')) AS "px1",
        GET("j1".VALUE, 'pt') * SIN(GET("j1".VALUE, 'phi')) AS "py1",
        GET("j1".VALUE, 'pt') * SINH(GET("j1".VALUE, 'eta')) AS "pz1",
        SQRT(GET("j1".VALUE, 'pt') * GET("j1".VALUE, 'pt') + (GET("j1".VALUE, 'pt') * SINH(GET("j1".VALUE, 'eta'))) * (GET("j1".VALUE, 'pt') * SINH(GET("j1".VALUE, 'eta'))) + GET("j1".VALUE, 'mass') * GET("j1".VALUE, 'mass')) AS "e1",
        GET("j1".VALUE, 'btag') AS "b1",
        GET("j2".VALUE, 'pt') * COS(GET("j2".VALUE, 'phi')) AS "px2",
        GET("j2".VALUE, 'pt') * SIN(GET("j2".VALUE, 'phi')) AS "py2",
        GET("j2".VALUE, 'pt') * SINH(GET("j2".VALUE, 'eta')) AS "pz2",
        SQRT(GET("j2".VALUE, 'pt') * GET("j2".VALUE, 'pt') + (GET("j2".VALUE, 'pt') * SINH(GET("j2".VALUE, 'eta'))) * (GET("j2".VALUE, 'pt') * SINH(GET("j2".VALUE, 'eta'))) + GET("j2".VALUE, 'mass') * GET("j2".VALUE, 'mass')) AS "e2",
        GET("j2".VALUE, 'btag') AS "b2",
        GET("j3".VALUE, 'pt') * COS(GET("j3".VALUE, 'phi')) AS "px3",
        GET("j3".VALUE, 'pt') * SIN(GET("j3".VALUE, 'phi')) AS "py3",
        GET("j3".VALUE, 'pt') * SINH(GET("j3".VALUE, 'eta')) AS "pz3",
        SQRT(GET("j3".VALUE, 'pt') * GET("j3".VALUE, 'pt') + (GET("j3".VALUE, 'pt') * SINH(GET("j3".VALUE, 'eta'))) * (GET("j3".VALUE, 'pt') * SINH(GET("j3".VALUE, 'eta'))) + GET("j3".VALUE, 'mass') * GET("j3".VALUE, 'mass')) AS "e3",
        GET("j3".VALUE, 'btag') AS "b3"
      FROM "adl",
        LATERAL FLATTEN(INPUT => "Jet") AS "j1",
        LATERAL FLATTEN(INPUT => "Jet") AS "j2",
        LATERAL FLATTEN(INPUT => "Jet") AS "j3"
      WHERE "j1".INDEX < "j2".INDEX AND "j2".INDEX < "j3".INDEX
    )
  )
  GROUP BY "ev"
)
GROUP BY FLOOR(GET("best", 'pt') / 5.0) * 5.0
ORDER BY "bin" ASC
`

const q7SQL = `
SELECT FLOOR("s" / 5.0) * 5.0 AS "bin", COUNT(*) AS "count"
FROM (
  SELECT COALESCE(SUM(CASE WHEN "jok" AND "okm" AND "oke" THEN "jpt" END), 0) AS "s"
  FROM (
    SELECT ANY_VALUE("ev") AS "ev2", ANY_VALUE("jok") AS "jok", ANY_VALUE("jpt") AS "jpt",
      BOOLAND_AGG(CASE WHEN "m".VALUE IS NULL OR GET("m".VALUE, 'pt') <= 10 THEN TRUE ELSE SQRT(("jeta" - GET("m".VALUE, 'eta')) * ("jeta" - GET("m".VALUE, 'eta')) + ATAN2(SIN("jphi" - GET("m".VALUE, 'phi')), COS("jphi" - GET("m".VALUE, 'phi'))) * ATAN2(SIN("jphi" - GET("m".VALUE, 'phi')), COS("jphi" - GET("m".VALUE, 'phi')))) >= 0.4 END) AS "okm",
      BOOLAND_AGG(CASE WHEN "el".VALUE IS NULL OR GET("el".VALUE, 'pt') <= 10 THEN TRUE ELSE SQRT(("jeta" - GET("el".VALUE, 'eta')) * ("jeta" - GET("el".VALUE, 'eta')) + ATAN2(SIN("jphi" - GET("el".VALUE, 'phi')), COS("jphi" - GET("el".VALUE, 'phi'))) * ATAN2(SIN("jphi" - GET("el".VALUE, 'phi')), COS("jphi" - GET("el".VALUE, 'phi')))) >= 0.4 END) AS "oke"
    FROM (
      SELECT "EVENT" AS "ev", SEQ8() AS "jid", "Muon" AS "mu", "Electron" AS "ele",
        "j".VALUE IS NOT NULL AND GET("j".VALUE, 'pt') > 30 AS "jok",
        GET("j".VALUE, 'pt') AS "jpt", GET("j".VALUE, 'eta') AS "jeta", GET("j".VALUE, 'phi') AS "jphi"
      FROM "adl", LATERAL FLATTEN(INPUT => "Jet", OUTER => TRUE) AS "j"
    ),
    LATERAL FLATTEN(INPUT => "mu", OUTER => TRUE) AS "m",
    LATERAL FLATTEN(INPUT => "ele", OUTER => TRUE) AS "el"
    GROUP BY "jid"
  )
  GROUP BY "ev2"
)
GROUP BY FLOOR("s" / 5.0) * 5.0
ORDER BY "bin" ASC
`

const q8SQL = `
SELECT FLOOR("mt" / 5.0) * 5.0 AS "bin", COUNT(*) AS "count"
FROM (
  SELECT SQRT(2 * GET("other", 'pt') * "metpt2" * (1 - COS("metphi2" - GET("other", 'phi')))) AS "mt"
  FROM (
    SELECT "rid3", ANY_VALUE("metpt") AS "metpt2", ANY_VALUE("metphi") AS "metphi2",
      GET(ARRAY_AGG(CASE WHEN "l3".INDEX + 1 <> GET("best", 'i') AND "l3".INDEX + 1 <> GET("best", 'j') THEN "l3".VALUE END) WITHIN GROUP (ORDER BY GET("l3".VALUE, 'pt') DESC), 0) AS "other"
    FROM (
      SELECT "rid2" AS "rid3", ANY_VALUE("leps") AS "leps", ANY_VALUE("metpt") AS "metpt", ANY_VALUE("metphi") AS "metphi",
        GET(ARRAY_AGG(OBJECT_CONSTRUCT('i', "l1".INDEX + 1, 'j', "l2".INDEX + 1)) WITHIN GROUP (ORDER BY ABS(SQRT(2 * GET("l1".VALUE, 'pt') * GET("l2".VALUE, 'pt') * (COSH(GET("l1".VALUE, 'eta') - GET("l2".VALUE, 'eta')) - COS(GET("l1".VALUE, 'phi') - GET("l2".VALUE, 'phi')))) - 91.2) ASC), 0) AS "best"
      FROM (
        SELECT "rid" AS "rid2", ANY_VALUE("metpt") AS "metpt", ANY_VALUE("metphi") AS "metphi", ARRAY_AGG("lep") AS "leps"
        FROM (
          (SELECT "EVENT" AS "rid", GET("MET", 'pt') AS "metpt", GET("MET", 'phi') AS "metphi",
             OBJECT_CONSTRUCT('pt', GET("m".VALUE, 'pt'), 'eta', GET("m".VALUE, 'eta'), 'phi', GET("m".VALUE, 'phi'), 'charge', GET("m".VALUE, 'charge'), 'flavor', 1) AS "lep"
           FROM "adl", LATERAL FLATTEN(INPUT => "Muon") AS "m")
          UNION ALL
          (SELECT "EVENT" AS "rid", GET("MET", 'pt') AS "metpt", GET("MET", 'phi') AS "metphi",
             OBJECT_CONSTRUCT('pt', GET("e".VALUE, 'pt'), 'eta', GET("e".VALUE, 'eta'), 'phi', GET("e".VALUE, 'phi'), 'charge', GET("e".VALUE, 'charge'), 'flavor', 2) AS "lep"
           FROM "adl", LATERAL FLATTEN(INPUT => "Electron") AS "e")
        )
        GROUP BY "rid"
        HAVING COUNT(*) >= 3
      ),
      LATERAL FLATTEN(INPUT => "leps") AS "l1",
      LATERAL FLATTEN(INPUT => "leps") AS "l2"
      WHERE "l1".INDEX < "l2".INDEX
        AND GET("l1".VALUE, 'flavor') = GET("l2".VALUE, 'flavor')
        AND GET("l1".VALUE, 'charge') * GET("l2".VALUE, 'charge') < 0
      GROUP BY "rid2"
    ),
    LATERAL FLATTEN(INPUT => "leps") AS "l3"
    GROUP BY "rid3"
  )
)
GROUP BY FLOOR("mt" / 5.0) * 5.0
ORDER BY "bin" ASC
`
