package adl

import (
	"fmt"
	"sort"

	"jsonpark/internal/core"
	"jsonpark/internal/engine"
	"jsonpark/internal/jsoniq"
	"jsonpark/internal/runtime"
	"jsonpark/internal/snowpark"
	"jsonpark/internal/variant"
)

// HistBin is one histogram bucket.
type HistBin struct {
	Bin   float64
	Count int64
}

// Histogram is a canonical, bin-sorted query result used to check that all
// back-ends agree.
type Histogram []HistBin

// String renders the histogram compactly.
func (h Histogram) String() string {
	s := ""
	for _, b := range h {
		s += fmt.Sprintf("[%g:%d]", b.Bin, b.Count)
	}
	return s
}

// Equal compares two histograms exactly.
func (h Histogram) Equal(o Histogram) bool {
	if len(h) != len(o) {
		return false
	}
	for i := range h {
		if h[i] != o[i] {
			return false
		}
	}
	return true
}

// TotalCount sums the bucket counts.
func (h Histogram) TotalCount() int64 {
	var n int64
	for _, b := range h {
		n += b.Count
	}
	return n
}

func (h Histogram) sortBins() {
	sort.Slice(h, func(i, j int) bool { return h[i].Bin < h[j].Bin })
}

// HistogramFromItems canonicalizes {bin, count} objects (translated and
// interpreted back-ends).
func HistogramFromItems(items []variant.Value) (Histogram, error) {
	out := make(Histogram, 0, len(items))
	for _, it := range items {
		bin := it.Field("bin")
		cnt := it.Field("count")
		if bin.IsNull() && cnt.IsNull() {
			return nil, fmt.Errorf("adl: item %s is not a histogram bucket", it)
		}
		out = append(out, HistBin{Bin: bin.AsFloat(), Count: cnt.AsInt()})
	}
	out.sortBins()
	return out, nil
}

// HistogramFromRows canonicalizes (bin, count) relational rows (handwritten
// back-end).
func HistogramFromRows(rows [][]variant.Value) (Histogram, error) {
	out := make(Histogram, 0, len(rows))
	for _, r := range rows {
		if len(r) != 2 {
			return nil, fmt.Errorf("adl: expected 2 columns, got %d", len(r))
		}
		out = append(out, HistBin{Bin: r[0].AsFloat(), Count: r[1].AsInt()})
	}
	out.sortBins()
	return out, nil
}

// RunTranslated translates the query (using its per-query strategy unless
// overridden) and executes it, returning the histogram and engine metrics.
func RunTranslated(sess *snowpark.Session, q Query, strategy *core.Strategy) (Histogram, *engine.Result, error) {
	strat := q.Strategy
	if strategy != nil {
		strat = *strategy
	}
	res, err := core.Translate(sess, q.JSONiq, core.Options{Strategy: strat})
	if err != nil {
		return nil, nil, fmt.Errorf("adl %s: translate: %w", q.ID, err)
	}
	out, err := res.DataFrame.Collect()
	if err != nil {
		return nil, nil, fmt.Errorf("adl %s: execute: %w", q.ID, err)
	}
	items := make([]variant.Value, len(out.Rows))
	for i, r := range out.Rows {
		items[i] = r[0]
	}
	h, err := HistogramFromItems(items)
	if err != nil {
		return nil, nil, fmt.Errorf("adl %s: %w", q.ID, err)
	}
	return h, out, nil
}

// RunHandwritten executes the handwritten SQL reference.
func RunHandwritten(eng *engine.Engine, q Query) (Histogram, *engine.Result, error) {
	out, err := eng.Query(q.SQL)
	if err != nil {
		return nil, nil, fmt.Errorf("adl %s: handwritten: %w", q.ID, err)
	}
	h, err := HistogramFromRows(out.Rows)
	if err != nil {
		return nil, nil, fmt.Errorf("adl %s: %w", q.ID, err)
	}
	return h, out, nil
}

// RunInterpreted executes the reference JSONiq on an interpreted baseline.
func RunInterpreted(rt *runtime.Engine, q Query) (Histogram, error) {
	expr, err := jsoniq.Parse(q.JSONiq)
	if err != nil {
		return nil, fmt.Errorf("adl %s: parse: %w", q.ID, err)
	}
	items, err := rt.Run(jsoniq.Rewrite(expr))
	if err != nil {
		return nil, fmt.Errorf("adl %s: interpret: %w", q.ID, err)
	}
	h, err := HistogramFromItems(items)
	if err != nil {
		return nil, fmt.Errorf("adl %s: %w", q.ID, err)
	}
	return h, nil
}
