package adl

import (
	"testing"

	"jsonpark/internal/engine"
	"jsonpark/internal/hepdata"
	"jsonpark/internal/snowpark"
)

// TestADLStorageParity runs every ADL query across the storage dimension:
// variant-only chunks (the v1 layout, the oracle), typed shredded chunks
// (typed kernels live), and typed chunks persisted to disk and reloaded
// into a fresh engine (header zone maps + cold data loads). All three must
// render byte-identical rows for both the translated and handwritten
// pipelines.
func TestADLStorageParity(t *testing.T) {
	mkSession := func(opts ...engine.Option) *snowpark.Session {
		eng := engine.New(opts...)
		if _, err := hepdata.Load(eng, "adl", 42, parityEvents); err != nil {
			t.Fatal(err)
		}
		return snowpark.NewSession(eng)
	}
	reload := func() *snowpark.Session {
		dir := t.TempDir()
		eng := engine.New(engine.WithDataDir(dir), engine.WithParallelism(1))
		if _, err := hepdata.Load(eng, "adl", 42, parityEvents); err != nil {
			t.Fatal(err)
		}
		if err := eng.Catalog().Flush(); err != nil {
			t.Fatal(err)
		}
		// A fresh engine over the same directory: partition headers load at
		// catalog access, data sections stream in cold during the first scan.
		return snowpark.NewSession(engine.New(engine.WithDataDir(dir), engine.WithParallelism(1)))
	}

	cells := []struct {
		name string
		sess *snowpark.Session
	}{
		{"variant-only", mkSession(engine.WithTypedColumns(false), engine.WithParallelism(1))},
		{"typed", mkSession(engine.WithParallelism(1))},
		{"typed-par4", mkSession(engine.WithParallelism(4))},
		{"typed-persist-reload", reload()},
	}

	type ref struct{ translated, handwritten string }
	var want map[string]ref
	for _, cell := range cells {
		got := make(map[string]ref)
		for _, q := range Queries() {
			_, tres, err := RunTranslated(cell.sess, q, nil)
			if err != nil {
				t.Fatalf("%s [%s]: %v", q.ID, cell.name, err)
			}
			_, hres, err := RunHandwritten(cell.sess.Engine(), q)
			if err != nil {
				t.Fatalf("%s [%s]: %v", q.ID, cell.name, err)
			}
			got[q.ID] = ref{renderResult(tres), renderResult(hres)}
		}
		if want == nil {
			want = got // variant-only is the oracle
			continue
		}
		for _, q := range Queries() {
			if got[q.ID].translated != want[q.ID].translated {
				t.Errorf("%s translated: %s diverges from variant-only", q.ID, cell.name)
			}
			if got[q.ID].handwritten != want[q.ID].handwritten {
				t.Errorf("%s handwritten: %s diverges from variant-only", q.ID, cell.name)
			}
		}
	}
}
