package storage

import (
	"fmt"
	"os"
	"sync"
	"testing"
)

func TestSpillRunRoundTrip(t *testing.T) {
	w, err := NewRunWriter("test")
	if err != nil {
		t.Fatal(err)
	}
	var offs []int64
	var recs [][]byte
	for i := 0; i < 100; i++ {
		rec := []byte(fmt.Sprintf("record-%03d-%s", i, string(make([]byte, i))))
		off, err := w.WriteRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
		recs = append(recs, rec)
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	if run.Records() != 100 {
		t.Fatalf("records = %d", run.Records())
	}
	if run.Bytes() <= 0 {
		t.Fatalf("bytes = %d", run.Bytes())
	}

	// Sequential scan.
	rr := run.NewReader()
	for i := range recs {
		got, err := rr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(recs[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if got, err := rr.Next(); err != nil || got != nil {
		t.Fatalf("expected clean EOF, got %v %v", got, err)
	}

	// Random access and concurrent independent readers.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(offs); i += 4 {
				got, err := run.ReadRecordAt(offs[i])
				if err != nil {
					t.Errorf("ReadRecordAt(%d): %v", offs[i], err)
					return
				}
				if string(got) != string(recs[i]) {
					t.Errorf("record %d mismatch via offset", i)
					return
				}
			}
			r := run.NewReader()
			for i := 0; i < 10; i++ {
				if _, err := r.Next(); err != nil {
					t.Errorf("concurrent reader: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestSpillRunCloseRemovesFile(t *testing.T) {
	w, err := NewRunWriter("rm")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteRecord([]byte("x")); err != nil {
		t.Fatal(err)
	}
	name := w.f.Name()
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(name); err != nil {
		t.Fatalf("spill file missing before close: %v", err)
	}
	run.Close()
	run.Close() // idempotent
	if _, err := os.Stat(name); !os.IsNotExist(err) {
		t.Fatalf("spill file not removed: %v", err)
	}
}

func TestSpillRunAbort(t *testing.T) {
	w, err := NewRunWriter("abort")
	if err != nil {
		t.Fatal(err)
	}
	name := w.f.Name()
	if _, err := w.WriteRecord([]byte("partial")); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	if _, err := os.Stat(name); !os.IsNotExist(err) {
		t.Fatalf("aborted spill file not removed: %v", err)
	}
}
