package storage

import (
	"fmt"
	"testing"

	"jsonpark/internal/variant"
	"jsonpark/internal/vector"
)

// sealOne builds a single sealed partition from rows of one column.
func sealOne(t *testing.T, typed bool, vals ...variant.Value) *Partition {
	t.Helper()
	tab := NewTable("t", []string{"c"})
	tab.SetTypedShredding(typed)
	for _, v := range vals {
		if err := tab.Append([]variant.Value{v}); err != nil {
			t.Fatal(err)
		}
	}
	parts := tab.Partitions()
	if len(parts) != 1 {
		t.Fatalf("got %d partitions, want 1", len(parts))
	}
	return parts[0]
}

func TestTypedEncodingDetection(t *testing.T) {
	cases := []struct {
		name string
		vals []variant.Value
		want vector.TypedKind
		none bool
	}{
		{name: "ints", vals: []variant.Value{variant.Int(1), variant.Int(2)}, want: vector.TypedInt64},
		{name: "ints with null", vals: []variant.Value{variant.Int(1), variant.Null, variant.Int(3)}, want: vector.TypedInt64},
		{name: "floats", vals: []variant.Value{variant.Float(1.5), variant.Float(2.5)}, want: vector.TypedFloat64},
		{name: "bools", vals: []variant.Value{variant.Bool(true), variant.Bool(false)}, want: vector.TypedBool},
		{name: "strings", vals: []variant.Value{variant.String("aaaa"), variant.String("bbbb")}, want: vector.TypedString},
		{name: "int float mix stays variant", vals: []variant.Value{variant.Int(1), variant.Float(1)}, none: true},
		{name: "int string mix stays variant", vals: []variant.Value{variant.Int(1), variant.String("x")}, none: true},
		{name: "all null stays variant", vals: []variant.Value{variant.Null, variant.Null}, none: true},
		{name: "objects stay variant", vals: []variant.Value{variant.ObjectFromPairs("a", variant.Int(1))}, none: true},
		{name: "arrays stay variant", vals: []variant.Value{variant.Array(variant.Int(1))}, none: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := sealOne(t, true, tc.vals...)
			typed := p.Column(0).Typed()
			if tc.none {
				if typed != nil {
					t.Fatalf("expected variant fallback, got typed kind %v", typed.Kind())
				}
				return
			}
			if typed == nil {
				t.Fatal("expected a typed chunk, got variant fallback")
			}
			if typed.Kind() != tc.want || typed.Len() != len(tc.vals) {
				t.Fatalf("typed kind=%v len=%d, want kind=%v len=%d", typed.Kind(), typed.Len(), tc.want, len(tc.vals))
			}
			// Materialization round-trips bit-exactly.
			got := p.Column(0).Values()
			for i := range tc.vals {
				if !variant.BinaryEqual(got[i], tc.vals[i]) {
					t.Errorf("row %d: materialized %s, want %s", i, got[i].JSON(), tc.vals[i].JSON())
				}
			}
		})
	}
}

func TestTypedShreddingDisabled(t *testing.T) {
	p := sealOne(t, false, variant.Int(1), variant.Int(2))
	if p.Column(0).Typed() != nil {
		t.Fatal("typed encoding built while disabled")
	}
	if st := p.Column(0).PathStat(""); st == nil || st.Min.AsInt() != 1 || st.Max.AsInt() != 2 {
		t.Fatalf("variant-mode zone map wrong: %+v", st)
	}
}

func TestCatalogTypedShreddingKnob(t *testing.T) {
	c := NewCatalog()
	c.SetTypedShredding(false)
	tab, err := c.CreateTable("t", []string{"c"})
	if err != nil {
		t.Fatal(err)
	}
	tab.Append([]variant.Value{variant.Int(1)})
	if tab.Partitions()[0].Column(0).Typed() != nil {
		t.Fatal("catalog knob did not propagate to the table")
	}
}

func TestTypedDictionaryEncoding(t *testing.T) {
	var vals []variant.Value
	for i := 0; i < 100; i++ {
		vals = append(vals, variant.String(fmt.Sprintf("tag%d", i%4)))
	}
	p := sealOne(t, true, vals...)
	typed := p.Column(0).Typed()
	if typed == nil || typed.Codes() == nil {
		t.Fatal("low-cardinality strings should dictionary-encode")
	}
	if len(typed.Dict()) != 4 {
		t.Fatalf("dict size = %d, want 4", len(typed.Dict()))
	}
	for i := range vals {
		if typed.StringAt(i) != vals[i].AsString() {
			t.Fatalf("row %d: %q != %q", i, typed.StringAt(i), vals[i].AsString())
		}
	}

	// High-cardinality strings stay plain.
	var uniq []variant.Value
	for i := 0; i < 40; i++ {
		uniq = append(uniq, variant.String(fmt.Sprintf("id-%04d", i)))
	}
	p = sealOne(t, true, uniq...)
	typed = p.Column(0).Typed()
	if typed == nil || typed.Strs() == nil {
		t.Fatal("unique strings should use the plain encoding")
	}
}

func TestTypedZoneMapsMatchVariantShred(t *testing.T) {
	mk := func() []variant.Value {
		var vals []variant.Value
		for i := 0; i < 50; i++ {
			if i%7 == 0 {
				vals = append(vals, variant.Null)
			} else {
				vals = append(vals, variant.Int(int64(i*3-40)))
			}
		}
		return vals
	}
	typedSt := sealOne(t, true, mk()...).Column(0).PathStat("")
	varSt := sealOne(t, false, mk()...).Column(0).PathStat("")
	if typedSt == nil || varSt == nil {
		t.Fatal("missing root stats")
	}
	if !variant.BinaryEqual(typedSt.Min, varSt.Min) || !variant.BinaryEqual(typedSt.Max, varSt.Max) ||
		typedSt.NonNull != varSt.NonNull || typedSt.NullCount != varSt.NullCount || typedSt.Bytes != varSt.Bytes {
		t.Fatalf("typed stats %+v != variant stats %+v", typedSt, varSt)
	}
}

func TestTypedNullBitmap(t *testing.T) {
	p := sealOne(t, true, variant.Int(1), variant.Null, variant.Int(3), variant.Null)
	typed := p.Column(0).Typed()
	if typed == nil || !typed.HasNulls() {
		t.Fatal("expected a typed chunk with nulls")
	}
	wantNull := []bool{false, true, false, true}
	for i, w := range wantNull {
		if typed.Null(i) != w {
			t.Errorf("Null(%d) = %v, want %v", i, typed.Null(i), w)
		}
	}
	st := p.Column(0).PathStat("")
	if st.NullCount != 2 || st.NonNull != 2 {
		t.Fatalf("stats = %+v", st)
	}
}
