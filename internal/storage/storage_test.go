package storage

import (
	"fmt"
	"testing"
	"testing/quick"

	"jsonpark/internal/variant"
)

func TestCatalogCreateAndLookup(t *testing.T) {
	c := NewCatalog()
	if _, err := c.CreateTable("t", []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable("t", []string{"a"}); err == nil {
		t.Error("duplicate create should fail")
	}
	tab, err := c.Table("t")
	if err != nil || tab.Name != "t" {
		t.Fatalf("Table = %v, %v", tab, err)
	}
	if _, err := c.Table("missing"); err == nil {
		t.Error("missing table should fail")
	}
	c.DropTable("t")
	if _, err := c.Table("t"); err == nil {
		t.Error("dropped table should be gone")
	}
}

func TestAppendAndScanRoundTrip(t *testing.T) {
	tab := NewTable("t", []string{"id", "v"})
	for i := 0; i < 100; i++ {
		if err := tab.Append([]variant.Value{variant.Int(int64(i)), variant.Float(float64(i) / 2)}); err != nil {
			t.Fatal(err)
		}
	}
	if tab.NumRows() != 100 {
		t.Fatalf("NumRows = %d", tab.NumRows())
	}
	total := 0
	for _, p := range tab.Partitions() {
		vals := p.Column(0).Values()
		for range vals {
			total++
		}
	}
	if total != 100 {
		t.Fatalf("scanned %d rows", total)
	}
}

func TestAppendArityError(t *testing.T) {
	tab := NewTable("t", []string{"a", "b"})
	if err := tab.Append([]variant.Value{variant.Int(1)}); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestAppendObjectStagesByColumnName(t *testing.T) {
	tab := NewTable("adl", []string{"EVENT", "MET"})
	obj := variant.MustParseJSON(`{"EVENT": 7, "MET": {"pt": 12.5}, "extra": 1}`)
	if err := tab.AppendObject(obj); err != nil {
		t.Fatal(err)
	}
	p := tab.Partitions()[0]
	if p.Column(0).Values()[0].AsInt() != 7 {
		t.Error("EVENT column wrong")
	}
	if got := p.Column(1).Values()[0].Field("pt").AsFloat(); got != 12.5 {
		t.Errorf("MET.pt = %v", got)
	}
}

func TestPartitionSealingBySize(t *testing.T) {
	tab := NewTable("t", []string{"v"})
	tab.SetTargetPartitionBytes(256)
	for i := 0; i < 200; i++ {
		if err := tab.Append([]variant.Value{variant.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	parts := tab.Partitions()
	if len(parts) < 2 {
		t.Fatalf("expected multiple partitions, got %d", len(parts))
	}
	var rows int
	for _, p := range parts {
		rows += p.NumRows()
	}
	if rows != 200 {
		t.Fatalf("rows across partitions = %d", rows)
	}
}

func TestShreddedZoneMaps(t *testing.T) {
	tab := NewTable("adl", []string{"MET", "JET"})
	for i := 0; i < 10; i++ {
		met := variant.ObjectFromPairs("pt", variant.Float(float64(10+i)))
		jets := variant.Array(
			variant.ObjectFromPairs("pt", variant.Float(float64(i)), "eta", variant.Float(-1.5)),
			variant.ObjectFromPairs("pt", variant.Float(float64(i*10)), "eta", variant.Float(2.0)),
		)
		if err := tab.Append([]variant.Value{met, jets}); err != nil {
			t.Fatal(err)
		}
	}
	p := tab.Partitions()[0]
	st := p.Column(0).PathStat("pt")
	if st == nil {
		t.Fatal("no stats for MET.pt")
	}
	if st.Min.AsFloat() != 10 || st.Max.AsFloat() != 19 {
		t.Errorf("MET.pt zone map = [%v, %v]", st.Min, st.Max)
	}
	jst := p.Column(1).PathStat("[].pt")
	if jst == nil {
		t.Fatal("no stats for JET[].pt")
	}
	if jst.Min.AsFloat() != 0 || jst.Max.AsFloat() != 90 {
		t.Errorf("JET[].pt zone map = [%v, %v]", jst.Min, jst.Max)
	}
	if jst.NonNull != 20 {
		t.Errorf("JET[].pt count = %d", jst.NonNull)
	}
}

func TestZoneMapPruning(t *testing.T) {
	tab := NewTable("t", []string{"v"})
	tab.SetTargetPartitionBytes(1) // one row per partition
	for i := 0; i < 5; i++ {
		obj := variant.ObjectFromPairs("x", variant.Int(int64(i*100)))
		if err := tab.Append([]variant.Value{obj}); err != nil {
			t.Fatal(err)
		}
	}
	parts := tab.Partitions()
	if len(parts) != 5 {
		t.Fatalf("partitions = %d", len(parts))
	}
	pred := PrunePredicate{Column: "v", Path: "x", Op: PruneGt, Value: variant.Int(250)}
	var kept int
	for _, p := range parts {
		if p.MayMatch(0, pred) {
			kept++
		}
	}
	if kept != 2 { // 300, 400
		t.Errorf("kept %d partitions for x > 250, want 2", kept)
	}
	eq := PrunePredicate{Column: "v", Path: "x", Op: PruneEq, Value: variant.Int(100)}
	kept = 0
	for _, p := range parts {
		if p.MayMatch(0, eq) {
			kept++
		}
	}
	if kept != 1 {
		t.Errorf("kept %d partitions for x = 100, want 1", kept)
	}
}

func TestMayMatchMissingStatsIsConservative(t *testing.T) {
	tab := NewTable("t", []string{"v"})
	if err := tab.Append([]variant.Value{variant.ObjectFromPairs("x", variant.Int(1))}); err != nil {
		t.Fatal(err)
	}
	p := tab.Partitions()[0]
	// Unknown path: pruneable (only possible value is absent ⇒ NULL).
	pred := PrunePredicate{Column: "v", Path: "nope", Op: PruneEq, Value: variant.Int(1)}
	if p.MayMatch(0, pred) {
		t.Error("absent path should prune")
	}
	// Unknown column index: conservative true.
	if !p.MayMatch(99, pred) {
		t.Error("bad column index must not prune")
	}
}

func TestBytesAccounting(t *testing.T) {
	tab := NewTable("t", []string{"a", "b"})
	if err := tab.Append([]variant.Value{variant.Int(1), variant.String("xyz")}); err != nil {
		t.Fatal(err)
	}
	p := tab.Partitions()[0]
	if p.Column(0).Bytes() != 8 {
		t.Errorf("col a bytes = %d", p.Column(0).Bytes())
	}
	if p.Column(1).Bytes() != 11 {
		t.Errorf("col b bytes = %d", p.Column(1).Bytes())
	}
	if p.Bytes() != 19 {
		t.Errorf("partition bytes = %d", p.Bytes())
	}
	if tab.TotalBytes() != 19 {
		t.Errorf("total = %d", tab.TotalBytes())
	}
}

// Property: pruning never removes a partition that actually contains a
// matching row (soundness of zone maps).
func TestPruningSoundnessProperty(t *testing.T) {
	f := func(vals []int64, threshold int64) bool {
		if len(vals) == 0 {
			return true
		}
		tab := NewTable("t", []string{"v"})
		tab.SetTargetPartitionBytes(32) // several small partitions
		for _, x := range vals {
			if err := tab.Append([]variant.Value{variant.ObjectFromPairs("x", variant.Int(x))}); err != nil {
				return false
			}
		}
		pred := PrunePredicate{Column: "v", Path: "x", Op: PruneGt, Value: variant.Int(threshold)}
		for _, p := range tab.Partitions() {
			match := p.MayMatch(0, pred)
			// Check the ground truth within this partition.
			hasMatch := false
			for _, v := range p.Column(0).Values() {
				if v.Field("x").AsInt() > threshold {
					hasMatch = true
					break
				}
			}
			if hasMatch && !match {
				return false // unsound: pruned a matching partition
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionsSealOpenData(t *testing.T) {
	tab := NewTable("t", []string{"v"})
	for i := 0; i < 3; i++ {
		if err := tab.Append([]variant.Value{variant.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	// Without an explicit Seal the rows must still be visible.
	if got := tab.NumRows(); got != 3 {
		t.Fatalf("NumRows before seal = %d", got)
	}
	// Appending after the implicit seal opens a fresh partition.
	if err := tab.Append([]variant.Value{variant.Int(99)}); err != nil {
		t.Fatal(err)
	}
	if got := tab.NumRows(); got != 4 {
		t.Fatalf("NumRows after more appends = %d", got)
	}
}

func TestTableNamesSorted(t *testing.T) {
	c := NewCatalog()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if _, err := c.CreateTable(n, []string{"x"}); err != nil {
			t.Fatal(err)
		}
	}
	names := c.TableNames()
	want := []string{"alpha", "mid", "zeta"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Errorf("names = %v", names)
	}
}
