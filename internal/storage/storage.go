// Package storage implements the physical layer of the embedded engine,
// modeled on Snowflake's storage design (§II-B of the paper): tables are
// split into horizontal micro-partitions; within a partition data is stored
// per column; VARIANT values are transparently shredded into typed leaf-path
// subcolumns with per-path statistics (zone maps, null counts, byte sizes).
// The engine uses those statistics for partition pruning and for
// bytes-scanned accounting, and never requires a user-declared schema.
package storage

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"jsonpark/internal/variant"
	"jsonpark/internal/vector"
)

// DefaultPartitionBytes is the target uncompressed size of one
// micro-partition. Snowflake targets 50–500 MB; the embedded engine defaults
// to a laptop-scale 4 MiB so that multi-partition behaviour (pruning,
// per-partition zone maps) is exercised even on small datasets.
const DefaultPartitionBytes = 4 << 20

// Catalog is the collection of tables known to one engine instance.
type Catalog struct {
	mu       sync.RWMutex
	tables   map[string]*Table
	typedOff bool
	dataDir  string
	scanned  bool
	scanErr  error
	// version counts every change that could affect a compiled plan: table
	// create/drop, data-dir reattachment, and each partition seal (appends
	// only become plan-relevant once they seal — the scan re-reads the
	// partition list per run regardless). The engine's plan cache keys on it,
	// so Flush/reload invalidates cached plan templates.
	version atomic.Int64
	// onMutate, when set, is called after any data-affecting catalog change:
	// CreateTable / DropTable / SetDataDir (table name, or "" for a change
	// affecting every table) and every partition seal on an attached table.
	// The engine's result cache uses it to evict exactly the affected
	// entries. Stored atomically so seals (which fire under a table lock,
	// not the catalog lock) read it race-free.
	onMutate atomic.Pointer[func(table string)]
}

// SetMutationHook installs the catalog's change listener (see onMutate).
// Call it before concurrent use; the hook must not call back into the
// catalog or its tables.
func (c *Catalog) SetMutationHook(fn func(table string)) {
	if fn == nil {
		c.onMutate.Store(nil)
		return
	}
	c.onMutate.Store(&fn)
}

// notifyMutate fires the mutation hook, if any. table == "" means "every
// table may have changed" (data-dir reattachment).
func (c *Catalog) notifyMutate(table string) {
	if fn := c.onMutate.Load(); fn != nil {
		(*fn)(table)
	}
}

// tableVersionClock issues partition-set versions. It is process-global so a
// (table name, version) pair can never repeat across drop/recreate cycles or
// across catalogs sharing one result cache.
var tableVersionClock atomic.Int64

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Version returns the catalog's monotonically increasing schema/data
// version. It changes whenever a compiled plan could go stale: table
// create/drop, data-directory reattachment, or a partition seal on any
// attached table.
func (c *Catalog) Version() int64 { return c.version.Load() }

// SetTypedShredding toggles typed chunk encoding for tables created after the
// call (on by default). Off, every chunk keeps the variant representation —
// the reference storage mode for parity testing.
func (c *Catalog) SetTypedShredding(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.typedOff = !on
}

// CreateTable registers a new table with the given top-level column names.
// Column order is the staging order; every row holds one value per column.
func (c *Catalog) CreateTable(name string, columns []string) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensureScannedLocked(); err != nil {
		return nil, err
	}
	if _, exists := c.tables[name]; exists {
		return nil, fmt.Errorf("storage: table %q already exists", name)
	}
	t := NewTable(name, columns)
	t.typedOff = c.typedOff
	t.onSeal = func() { c.version.Add(1) }
	t.onChange = func() { c.notifyMutate(name) }
	if err := c.attachTableDirLocked(t); err != nil {
		return nil, err
	}
	c.tables[name] = t
	c.version.Add(1)
	c.notifyMutate(name)
	return t, nil
}

// DropTable removes a table if present, including its on-disk directory when
// the catalog is persistent.
func (c *Catalog) DropTable(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureScannedLocked()
	t, ok := c.tables[name]
	if !ok {
		return
	}
	delete(c.tables, name)
	c.version.Add(1)
	c.notifyMutate(name)
	if t.dir != "" {
		os.RemoveAll(t.dir)
	}
}

// Table returns the named table.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensureScannedLocked(); err != nil {
		return nil, err
	}
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("storage: table %q does not exist", name)
	}
	return t, nil
}

// TableNames lists the catalog's tables in sorted order.
func (c *Catalog) TableNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureScannedLocked()
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Flush seals and persists every table's open partition. In-memory catalogs
// treat it as Seal on all tables.
func (c *Catalog) Flush() error {
	for _, name := range c.TableNames() {
		t, err := c.Table(name)
		if err != nil {
			return err
		}
		if err := t.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Table is a stored table: an ordered list of sealed micro-partitions plus
// one open partition receiving appends.
type Table struct {
	Name    string
	Columns []string

	mu          sync.RWMutex
	partitions  []*Partition
	open        *Partition
	targetBytes int64
	colIndex    map[string]int
	typedOff    bool
	// onSeal, set when the table is attached to a catalog, bumps the
	// catalog version when a seal changes plan shape. Sealing only affects
	// compiled plans through the partition count crossing 1 → 2
	// (parallel-aggregation eligibility); scans re-read Partitions() every
	// run, so data visibility never needs an invalidation.
	onSeal func()
	// onChange, set when the table is attached to a catalog, fires on every
	// seal (after the version bump) so data-sensitive caches can evict
	// precisely. It runs under t.mu and must not call back into the table.
	onChange func()
	// version is the table's partition-set version: a fresh value from the
	// process-global clock at creation and after every seal. Readers pin a
	// (partitions, version) pair via Snapshot; a version match guarantees an
	// identical partition set, because sealed partitions are immutable and
	// the partition list is append-only.
	version int64

	// Persistence state: dir is the table's on-disk directory ("" for an
	// in-memory table), nextPart numbers the next partition file, and
	// persistErr latches the first write failure so appends surface it.
	dir        string
	nextPart   int
	persistErr error
}

// NewTable constructs a standalone table (outside any catalog); used by
// tests and loaders.
func NewTable(name string, columns []string) *Table {
	t := &Table{
		Name:        name,
		Columns:     append([]string(nil), columns...),
		targetBytes: DefaultPartitionBytes,
		colIndex:    make(map[string]int, len(columns)),
	}
	for i, c := range columns {
		t.colIndex[c] = i
	}
	t.open = newPartition(t.Columns)
	t.version = tableVersionClock.Add(1)
	return t
}

// SetTypedShredding toggles typed chunk encoding for partitions sealed after
// the call (on by default).
func (t *Table) SetTypedShredding(on bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.typedOff = !on
}

// SetTargetPartitionBytes overrides the micro-partition size target. It only
// affects subsequent appends.
func (t *Table) SetTargetPartitionBytes(n int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n > 0 {
		t.targetBytes = n
	}
}

// ColumnIndex returns the position of a column, or -1.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.colIndex[name]; ok {
		return i
	}
	return -1
}

// Append adds one row. The row must have exactly one value per column, in
// column order. The open partition is sealed when it reaches the size target.
func (t *Table) Append(row []variant.Value) error {
	if len(row) != len(t.Columns) {
		return fmt.Errorf("storage: table %q expects %d columns, got %d", t.Name, len(t.Columns), len(row))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.open.append(row)
	if t.open.bytes >= t.targetBytes {
		t.sealLocked()
	}
	return t.persistErr
}

// AppendObject adds one row from an object value: each table column is taken
// from the object's same-named field (missing fields become NULL). This is
// the schema-oblivious multi-column staging of §III-C.
func (t *Table) AppendObject(obj variant.Value) error {
	row := make([]variant.Value, len(t.Columns))
	for i, c := range t.Columns {
		row[i] = obj.Field(c)
	}
	return t.Append(row)
}

func (t *Table) sealLocked() {
	if t.open.rows == 0 {
		return
	}
	t.open.finalize(!t.typedOff)
	if t.dir != "" && t.persistErr == nil {
		t.persistErr = t.writePartitionLocked(t.open)
	}
	t.partitions = append(t.partitions, t.open)
	t.open = newPartition(t.Columns)
	// Every seal advances the partition-set version: the sealed rows are now
	// part of the pinned set any new Snapshot returns, so results computed
	// against the previous version are stale.
	t.version = tableVersionClock.Add(1)
	// Only the 1 → 2 partition transition can change a compiled plan's
	// shape (parallel-aggregation eligibility requires > 1 partition), so
	// only that seal invalidates cached plans. Single-partition tables
	// seal on their first scan; bumping there would evict every plan the
	// moment it first ran.
	if t.onSeal != nil && len(t.partitions) == 2 {
		t.onSeal()
	}
	if t.onChange != nil {
		t.onChange()
	}
}

// Seal closes the open partition so that all data is visible to scans with
// final statistics. Appending after Seal opens a new partition.
func (t *Table) Seal() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sealLocked()
}

// Flush seals the open partition and reports any persistence failure. A
// persistent table's tail rows are only on disk after Flush (or after an
// append crossed the partition size target).
func (t *Table) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sealLocked()
	return t.persistErr
}

// TableSnapshot is an MVCC read view of one table: an immutable partition
// list pinned at a point in time plus the partition-set version it
// corresponds to. Writers only ever add partitions, so a snapshot stays
// valid (and byte-stable) for as long as a reader holds it; the version
// identifies the set exactly — equal versions imply identical sets.
type TableSnapshot struct {
	Parts   []*Partition
	Version int64
}

// Snapshot seals any buffered rows and pins the current partition set.
// Readers bind their scans to the returned snapshot instead of re-reading
// the table, so one query observes a single consistent set even while
// concurrent appenders keep sealing new partitions. The fast path — no
// buffered rows — takes only the read lock, so concurrent readers do not
// serialize against each other.
func (t *Table) Snapshot() TableSnapshot {
	t.mu.RLock()
	if t.open.rows == 0 {
		parts := t.partitions[:len(t.partitions):len(t.partitions)]
		v := t.version
		t.mu.RUnlock()
		return TableSnapshot{Parts: parts, Version: v}
	}
	t.mu.RUnlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.open.rows > 0 {
		t.sealLocked()
	}
	return TableSnapshot{
		Parts:   t.partitions[:len(t.partitions):len(t.partitions)],
		Version: t.version,
	}
}

// Version returns the table's current partition-set version without sealing
// buffered rows (buffered rows advance the version at the next Snapshot).
func (t *Table) Version() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.version
}

// Partitions returns the sealed micro-partitions, sealing the open partition
// first so scans always observe every appended row. Callers must not mutate
// the result.
func (t *Table) Partitions() []*Partition {
	return t.Snapshot().Parts
}

// NumRows returns the total row count.
func (t *Table) NumRows() int64 {
	var n int64
	for _, p := range t.Partitions() {
		n += int64(p.rows)
	}
	return n
}

// TotalBytes returns the total uncompressed byte size across partitions.
func (t *Table) TotalBytes() int64 {
	var n int64
	for _, p := range t.Partitions() {
		n += p.bytes
	}
	return n
}

// Partition is one horizontal micro-partition holding columnar data and
// per-leaf-path statistics.
type Partition struct {
	columns []string
	chunks  []*ColumnChunk
	rows    int
	bytes   int64

	// Lazy disk loading: a partition reconstructed from a file header keeps
	// loadFn armed until the first scan pulls the data section in. In-memory
	// partitions have a nil loadFn.
	loadFn   func() error
	loadOnce sync.Once
	loadErr  error
}

// EnsureLoaded makes the partition's chunk data resident, reading the data
// section from disk on first call. It returns whether THIS call performed the
// disk read (for scan accounting) and any load error; in-memory partitions
// return (false, nil).
func (p *Partition) EnsureLoaded() (bool, error) {
	if p.loadFn == nil {
		return false, nil
	}
	read := false
	p.loadOnce.Do(func() {
		p.loadErr = p.loadFn()
		read = p.loadErr == nil
	})
	return read, p.loadErr
}

func newPartition(columns []string) *Partition {
	p := &Partition{columns: columns, chunks: make([]*ColumnChunk, len(columns))}
	for i := range p.chunks {
		p.chunks[i] = &ColumnChunk{stats: make(map[string]*PathStats)}
	}
	return p
}

func (p *Partition) append(row []variant.Value) {
	for i, v := range row {
		p.chunks[i].append(v)
		p.bytes += v.DeepSizeBytes()
	}
	p.rows++
}

// finalize runs once at seal time: it trims each chunk's over-allocated
// value slice to its final length, attempts the typed encoding (when enabled
// for the table), and computes the per-path statistics in one pass — typed
// chunks derive their root zone map straight from the typed array, variant
// chunks shred every value. Appends never pay for stats upkeep; sealed
// partitions are immutable so the work happens exactly once.
func (p *Partition) finalize(typed bool) {
	for _, cc := range p.chunks {
		cc.finalize(typed)
	}
}

// NumRows returns the partition's row count.
func (p *Partition) NumRows() int { return p.rows }

// Bytes returns the partition's total uncompressed size.
func (p *Partition) Bytes() int64 { return p.bytes }

// Column returns the chunk for column index i.
func (p *Partition) Column(i int) *ColumnChunk { return p.chunks[i] }

// ColumnChunk stores one column of one partition: the row-major values plus
// the shredded leaf-path statistics that make VARIANT data behave like
// relational columns for pruning and scan accounting.
type ColumnChunk struct {
	values []variant.Value
	typed  *vector.TypedCol
	bytes  int64
	stats  map[string]*PathStats
}

// PathStats is the zone map of one leaf path inside a column chunk:
// min/max over non-null scalar values, the null count, and the byte volume
// attributable to that path.
type PathStats struct {
	Min, Max  variant.Value
	NonNull   int
	NullCount int
	Bytes     int64
}

func (cc *ColumnChunk) append(v variant.Value) {
	cc.values = append(cc.values, v)
	cc.bytes += v.DeepSizeBytes()
}

// finalize trims the value slice to its final length (append growth can leave
// the capacity nearly double the length), builds the typed encoding when
// requested, and computes the chunk's path statistics.
func (cc *ColumnChunk) finalize(typed bool) {
	if typed {
		cc.typed = buildTyped(cc.values)
	}
	if cc.typed != nil {
		// The typed array supersedes the variant one: drop it so a typed
		// chunk costs one representation, and derive the zone map from the
		// typed values directly.
		cc.values = nil
		cc.rootStatsFromTyped(cc.typed)
		return
	}
	if cap(cc.values) > len(cc.values) {
		trimmed := make([]variant.Value, len(cc.values))
		copy(trimmed, cc.values)
		cc.values = trimmed
	}
	for _, v := range cc.values {
		cc.shred("", v)
	}
}

// shred records statistics for every leaf path of v. Array elements share
// the path of their array with an "[]" marker, matching Dremel-style
// repeated-field columns.
func (cc *ColumnChunk) shred(path string, v variant.Value) {
	switch v.Kind() {
	case variant.KindObject:
		o := v.AsObject()
		for i, k := range o.Keys() {
			sub := k
			if path != "" {
				sub = path + "." + k
			}
			cc.shred(sub, o.ValueAt(i))
		}
	case variant.KindArray:
		sub := path + "[]"
		for _, e := range v.AsArray() {
			cc.shred(sub, e)
		}
		if len(v.AsArray()) == 0 {
			cc.stat(sub).Bytes += 8
		}
	default:
		st := cc.stat(path)
		st.Bytes += v.DeepSizeBytes()
		if v.IsNull() {
			st.NullCount++
			return
		}
		if st.NonNull == 0 {
			st.Min, st.Max = v, v
		} else {
			if variant.Compare(v, st.Min) < 0 {
				st.Min = v
			}
			if variant.Compare(v, st.Max) > 0 {
				st.Max = v
			}
		}
		st.NonNull++
	}
}

func (cc *ColumnChunk) stat(path string) *PathStats {
	st, ok := cc.stats[path]
	if !ok {
		st = &PathStats{}
		cc.stats[path] = st
	}
	return st
}

// Values returns the chunk's row-major values. For a typed chunk the variant
// representation no longer exists, so each call materializes a fresh vector
// (no caching — sealed chunks are read concurrently); scans should use Typed
// first and fall back here. Callers must not mutate the result.
func (cc *ColumnChunk) Values() []variant.Value {
	if cc.values == nil && cc.typed != nil {
		return cc.typed.Materialize(make([]variant.Value, 0, cc.typed.Len()))
	}
	return cc.values
}

// Typed returns the chunk's typed encoding, or nil when the column stayed on
// the variant representation (mixed kinds, nested roots, or typed shredding
// disabled). Callers must not mutate the underlying arrays.
func (cc *ColumnChunk) Typed() *vector.TypedCol { return cc.typed }

// Bytes returns the chunk's uncompressed size.
func (cc *ColumnChunk) Bytes() int64 { return cc.bytes }

// PathStat returns the statistics for a leaf path ("" for a scalar column,
// "pt" for field pt, "[]" or "[].pt" inside arrays), or nil if the path
// never occurred.
func (cc *ColumnChunk) PathStat(path string) *PathStats { return cc.stats[path] }

// Paths lists the chunk's leaf paths in sorted order.
func (cc *ColumnChunk) Paths() []string {
	out := make([]string, 0, len(cc.stats))
	for p := range cc.stats {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// PruneOp is a comparison usable against zone maps.
type PruneOp int

// Prune operators.
const (
	PruneEq PruneOp = iota
	PruneLt
	PruneLe
	PruneGt
	PruneGe
)

// PrunePredicate describes one scan-level conjunct `column.path op literal`
// derived by the optimizer from a pushed-down filter.
type PrunePredicate struct {
	Column string
	Path   string // leaf path within the column ("" for scalar columns)
	Op     PruneOp
	Value  variant.Value
}

// MayMatch reports whether the partition could contain rows satisfying the
// predicate, based on the path's zone map. Missing statistics return true
// (cannot prune).
func (p *Partition) MayMatch(colIndex int, pred PrunePredicate) bool {
	if colIndex < 0 || colIndex >= len(p.chunks) {
		return true
	}
	st := p.chunks[colIndex].PathStat(pred.Path)
	if st == nil || st.NonNull == 0 {
		// The path never occurred (or held only NULLs) in this partition,
		// so every access yields NULL and the comparison can never be true:
		// the partition is safely pruneable.
		return false
	}
	min, max := st.Min, st.Max
	switch pred.Op {
	case PruneEq:
		return variant.Compare(pred.Value, min) >= 0 && variant.Compare(pred.Value, max) <= 0
	case PruneLt:
		return variant.Compare(min, pred.Value) < 0
	case PruneLe:
		return variant.Compare(min, pred.Value) <= 0
	case PruneGt:
		return variant.Compare(max, pred.Value) > 0
	case PruneGe:
		return variant.Compare(max, pred.Value) >= 0
	}
	return true
}
