package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Spill runs: the temp-file format backing the engine's memory-governed
// pipeline breakers. A run is an append-only sequence of length-prefixed
// opaque records (the engine encodes rows, sort keys and aggregate partial
// states into them with the exact variant codec). Writers are single-
// goroutine; a finished run supports any number of concurrent readers —
// sequential cursors and random record fetches both go through ReadAt, so
// the parallel aggregate's merge workers can scan one run simultaneously.

// maxSpillRecordBytes bounds one record's decoded size, guarding the reader
// against a corrupt length prefix allocating unbounded memory.
const maxSpillRecordBytes = 1 << 30

// RunWriter streams records into a new spill file.
type RunWriter struct {
	f     *os.File
	buf   *bufio.Writer
	off   int64
	n     int64
	fixed [binary.MaxVarintLen64]byte
}

// NewRunWriter creates a spill file in the OS temp directory. The file is
// unlinked by SpillRun.Close, never reused across processes.
func NewRunWriter(tag string) (*RunWriter, error) {
	f, err := os.CreateTemp("", "jsonpark-spill-"+tag+"-*.run")
	if err != nil {
		return nil, fmt.Errorf("storage: create spill run: %w", err)
	}
	return &RunWriter{f: f, buf: bufio.NewWriterSize(f, 1<<16)}, nil
}

// WriteRecord appends one record and returns its byte offset in the run,
// usable later with SpillRun.ReadRecordAt.
func (w *RunWriter) WriteRecord(rec []byte) (int64, error) {
	off := w.off
	n := binary.PutUvarint(w.fixed[:], uint64(len(rec)))
	if _, err := w.buf.Write(w.fixed[:n]); err != nil {
		return 0, err
	}
	if _, err := w.buf.Write(rec); err != nil {
		return 0, err
	}
	w.off += int64(n) + int64(len(rec))
	w.n++
	return off, nil
}

// Finish flushes buffered data and seals the run for reading. The writer
// must not be used afterwards.
func (w *RunWriter) Finish() (*SpillRun, error) {
	if err := w.buf.Flush(); err != nil {
		w.Abort()
		return nil, err
	}
	return &SpillRun{f: w.f, size: w.off, records: w.n}, nil
}

// Abort discards a half-written run, closing and removing the file.
func (w *RunWriter) Abort() {
	if w.f == nil {
		return
	}
	name := w.f.Name()
	_ = w.f.Close() // teardown: the file is removed regardless
	os.Remove(name)
	w.f = nil
}

// SpillRun is a sealed, readable spill file.
type SpillRun struct {
	f       *os.File
	size    int64
	records int64
}

// Bytes returns the on-disk size of the run.
func (r *SpillRun) Bytes() int64 { return r.size }

// Records returns the number of records written.
func (r *SpillRun) Records() int64 { return r.records }

// Close closes and removes the backing file. Safe to call more than once.
func (r *SpillRun) Close() {
	if r == nil || r.f == nil {
		return
	}
	name := r.f.Name()
	_ = r.f.Close() // teardown: the file is removed regardless
	os.Remove(name)
	r.f = nil
}

// ReadRecordAt fetches the single record starting at off (as returned by
// WriteRecord). Safe for concurrent use.
func (r *SpillRun) ReadRecordAt(off int64) ([]byte, error) {
	sr := io.NewSectionReader(r.f, off, r.size-off)
	br := bufio.NewReaderSize(sr, 4096)
	return readRecord(br)
}

// NewReader returns an independent sequential cursor over the run's records.
// Multiple readers may scan one run concurrently.
func (r *SpillRun) NewReader() *RunReader {
	sr := io.NewSectionReader(r.f, 0, r.size)
	return &RunReader{br: bufio.NewReaderSize(sr, 1<<16), remaining: r.records}
}

// RunReader iterates a run's records in write order.
type RunReader struct {
	br        *bufio.Reader
	remaining int64
}

// Next returns the next record, or (nil, nil) at end of run. The returned
// slice is freshly allocated and owned by the caller.
func (rr *RunReader) Next() ([]byte, error) {
	if rr.remaining <= 0 {
		return nil, nil
	}
	rec, err := readRecord(rr.br)
	if err != nil {
		return nil, err
	}
	rr.remaining--
	return rec, nil
}

func readRecord(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("storage: spill record length: %w", err)
	}
	if n > maxSpillRecordBytes {
		return nil, fmt.Errorf("storage: spill record of %d bytes exceeds limit", n)
	}
	rec := make([]byte, n)
	if _, err := io.ReadFull(br, rec); err != nil {
		return nil, fmt.Errorf("storage: spill record body: %w", err)
	}
	return rec, nil
}
