// Persistent micro-partitions. A table with a data directory writes every
// sealed partition to its own file and survives process restart: the catalog
// rediscovers tables lazily from disk, partition *headers* (row counts, byte
// sizes, per-path zone maps) load eagerly so pruning works without touching
// data, and chunk data streams in on first scan of each partition.
//
// On-disk layout under the data directory:
//
//	<dataDir>/<table>/MANIFEST          table header: magic, version, columns
//	<dataDir>/<table>/part-NNNNNN.jpp   one sealed partition per file
//
// Partition file format (all integers varint-encoded unless noted):
//
//	"JPKP" magic · version byte · headerLen · header · data
//
// The header holds rows, partition bytes, and per column: chunk bytes plus
// the full path-statistics map (min/max via variant.AppendBinary — the same
// exact codec the spill files use). The data section holds per column an
// encoding tag (variant, int64, float64, string, dict, bool), an optional
// null bitmap, and the flat values. Every read is bounds-checked; malformed
// files surface *CorruptError, never a panic.
package storage

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"jsonpark/internal/variant"
	"jsonpark/internal/vector"
)

const (
	manifestMagic  = "JPKT"
	partitionMagic = "JPKP"
	formatVersion  = 1

	manifestName = "MANIFEST"
	partPrefix   = "part-"
	partSuffix   = ".jpp"
)

// Chunk encoding tags in the partition file data section.
const (
	encVariant = 0
	encInt64   = 1
	encFloat64 = 2
	encString  = 3
	encDict    = 4
	encBool    = 5
)

// CorruptError reports a malformed or truncated on-disk table file. Decoders
// return it (wrapped) instead of panicking so a damaged data directory
// degrades into a query error.
type CorruptError struct {
	Path   string
	Detail string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("storage: corrupt file %s: %s", e.Path, e.Detail)
}

func corruptf(path, format string, args ...any) error {
	return &CorruptError{Path: path, Detail: fmt.Sprintf(format, args...)}
}

// SetDataDir attaches a data directory to the catalog. Existing on-disk
// tables are discovered lazily on first catalog access (so opening a
// warehouse stays error-free); tables created afterwards persist every sealed
// partition under the directory.
func (c *Catalog) SetDataDir(dir string) {
	c.mu.Lock()
	c.dataDir = dir
	c.scanned = false
	c.scanErr = nil
	c.version.Add(1)
	c.mu.Unlock()
	// Reattachment can swap in an arbitrary on-disk view; any cached result
	// for any table may now be stale.
	c.notifyMutate("")
}

// DataDir returns the catalog's data directory ("" when in-memory only).
func (c *Catalog) DataDir() string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.dataDir
}

// ensureScannedLocked discovers on-disk tables once per SetDataDir. The
// first error is sticky: the catalog keeps returning it rather than serving
// a partial view of the directory.
func (c *Catalog) ensureScannedLocked() error {
	if c.scanned || c.dataDir == "" {
		return c.scanErr
	}
	c.scanned = true
	entries, err := os.ReadDir(c.dataDir)
	if err != nil {
		if os.IsNotExist(err) {
			c.scanErr = os.MkdirAll(c.dataDir, 0o755)
		} else {
			c.scanErr = fmt.Errorf("storage: scanning data dir: %w", err)
		}
		return c.scanErr
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		if _, exists := c.tables[name]; exists {
			continue
		}
		dir := filepath.Join(c.dataDir, name)
		if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
			continue // not a table directory
		}
		t, err := openTableDir(dir, name)
		if err != nil {
			c.scanErr = err
			return c.scanErr
		}
		t.typedOff = c.typedOff
		t.onSeal = func() { c.version.Add(1) }
		t.onChange = func() { c.notifyMutate(name) }
		c.tables[name] = t
		c.version.Add(1)
	}
	if err := c.adoptTablesLocked(); err != nil {
		c.scanErr = err
	}
	return c.scanErr
}

// adoptTablesLocked attaches the data directory to tables that predate it:
// a table created while the catalog was in-memory (or before a later
// SetDataDir) has no directory, so partitions sealed by its appends — and
// anything Flush seals later — would silently never reach disk. Adoption
// writes the MANIFEST, persists every already-sealed partition, and leaves
// the table on the normal seal-to-disk path. A same-named on-disk directory
// is replaced: the in-memory table shadows it in every query, so it is the
// authoritative state.
func (c *Catalog) adoptTablesLocked() error {
	if c.dataDir == "" {
		return nil
	}
	for _, t := range c.tables {
		t.mu.Lock()
		err := c.adoptTableLocked(t)
		t.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// adoptTableLocked does the per-table work of adoptTablesLocked; the caller
// holds both the catalog lock and t.mu.
func (c *Catalog) adoptTableLocked(t *Table) error {
	if t.dir != "" {
		return nil
	}
	dir := filepath.Join(c.dataDir, t.Name)
	if err := os.RemoveAll(dir); err != nil {
		return fmt.Errorf("storage: replacing table dir: %w", err)
	}
	if err := c.attachTableDirLocked(t); err != nil {
		return err
	}
	for _, p := range t.partitions {
		if err := t.writePartitionLocked(p); err != nil {
			return err
		}
	}
	return nil
}

// attachTableDirLocked sets up the on-disk directory for a newly created
// table: the directory itself plus the MANIFEST naming the columns.
func (c *Catalog) attachTableDirLocked(t *Table) error {
	if c.dataDir == "" {
		return nil
	}
	dir := filepath.Join(c.dataDir, t.Name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("storage: creating table dir: %w", err)
	}
	buf := []byte(manifestMagic)
	buf = append(buf, formatVersion)
	buf = binary.AppendUvarint(buf, uint64(len(t.Columns)))
	for _, col := range t.Columns {
		buf = appendString(buf, col)
	}
	if err := atomicWrite(filepath.Join(dir, manifestName), buf); err != nil {
		return err
	}
	t.dir = dir
	return nil
}

// openTableDir reconstructs a table from its directory: columns from the
// MANIFEST, sealed partitions from their file headers (zone maps included),
// chunk data left on disk until first scan.
func openTableDir(dir, name string) (*Table, error) {
	mpath := filepath.Join(dir, manifestName)
	buf, err := os.ReadFile(mpath)
	if err != nil {
		return nil, fmt.Errorf("storage: reading manifest: %w", err)
	}
	r := &byteReader{path: mpath, buf: buf}
	if err := r.expectMagic(manifestMagic); err != nil {
		return nil, err
	}
	ncols, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	cols := make([]string, ncols)
	for i := range cols {
		if cols[i], err = r.string(); err != nil {
			return nil, err
		}
	}
	t := NewTable(name, cols)
	t.dir = dir

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: listing table dir: %w", err)
	}
	var parts []string
	for _, e := range entries {
		n := e.Name()
		if strings.HasPrefix(n, partPrefix) && strings.HasSuffix(n, partSuffix) {
			parts = append(parts, n)
		}
	}
	sort.Strings(parts)
	for _, pn := range parts {
		p, err := readPartitionHeader(filepath.Join(dir, pn), cols)
		if err != nil {
			return nil, err
		}
		t.partitions = append(t.partitions, p)
	}
	t.nextPart = len(parts)
	return t, nil
}

// writePartitionLocked persists one freshly sealed partition to the table's
// next numbered file (written to a temp name first, then renamed, so a crash
// never leaves a half partition behind).
func (t *Table) writePartitionLocked(p *Partition) error {
	path := filepath.Join(t.dir, fmt.Sprintf("%s%06d%s", partPrefix, t.nextPart, partSuffix))
	data := encodePartition(p)
	if err := atomicWrite(path, data); err != nil {
		return err
	}
	t.nextPart++
	return nil
}

func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("storage: writing %s: %w", filepath.Base(path), err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: committing %s: %w", filepath.Base(path), err)
	}
	return nil
}

// encodePartition serializes a sealed partition: header (stats for pruning)
// then data (chunk values).
func encodePartition(p *Partition) []byte {
	header := binary.AppendUvarint(nil, uint64(p.rows))
	header = binary.AppendUvarint(header, uint64(p.bytes))
	header = binary.AppendUvarint(header, uint64(len(p.chunks)))
	for _, cc := range p.chunks {
		header = binary.AppendUvarint(header, uint64(cc.bytes))
		header = appendStats(header, cc.stats)
	}

	var data []byte
	for _, cc := range p.chunks {
		data = appendChunkData(data, cc)
	}

	out := []byte(partitionMagic)
	out = append(out, formatVersion)
	out = binary.AppendUvarint(out, uint64(len(header)))
	out = append(out, header...)
	out = binary.AppendUvarint(out, uint64(len(data)))
	out = append(out, data...)
	return out
}

func appendStats(dst []byte, stats map[string]*PathStats) []byte {
	paths := make([]string, 0, len(stats))
	for p := range stats {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	dst = binary.AppendUvarint(dst, uint64(len(paths)))
	for _, path := range paths {
		st := stats[path]
		dst = appendString(dst, path)
		dst = binary.AppendUvarint(dst, uint64(st.NonNull))
		dst = binary.AppendUvarint(dst, uint64(st.NullCount))
		dst = binary.AppendUvarint(dst, uint64(st.Bytes))
		if st.NonNull > 0 {
			dst = st.Min.AppendBinary(dst)
			dst = st.Max.AppendBinary(dst)
		}
	}
	return dst
}

func appendChunkData(dst []byte, cc *ColumnChunk) []byte {
	if tc := cc.typed; tc != nil {
		n := tc.Len()
		switch {
		case tc.Kind() == vector.TypedInt64:
			dst = append(dst, encInt64)
			dst = appendNulls(dst, tc, n)
			for _, x := range tc.Ints() {
				dst = binary.LittleEndian.AppendUint64(dst, uint64(x))
			}
		case tc.Kind() == vector.TypedFloat64:
			dst = append(dst, encFloat64)
			dst = appendNulls(dst, tc, n)
			for _, x := range tc.Floats() {
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
			}
		case tc.Kind() == vector.TypedString && tc.Codes() != nil:
			dst = append(dst, encDict)
			dst = appendNulls(dst, tc, n)
			dict := tc.Dict()
			dst = binary.AppendUvarint(dst, uint64(len(dict)))
			for _, s := range dict {
				dst = appendString(dst, s)
			}
			for _, c := range tc.Codes() {
				dst = binary.LittleEndian.AppendUint32(dst, c)
			}
		case tc.Kind() == vector.TypedString:
			dst = append(dst, encString)
			dst = appendNulls(dst, tc, n)
			for _, s := range tc.Strs() {
				dst = appendString(dst, s)
			}
		case tc.Kind() == vector.TypedBool:
			dst = append(dst, encBool)
			dst = appendNulls(dst, tc, n)
			for _, b := range tc.Bools() {
				if b {
					dst = append(dst, 1)
				} else {
					dst = append(dst, 0)
				}
			}
		}
		return dst
	}
	dst = append(dst, encVariant)
	dst = binary.AppendUvarint(dst, uint64(len(cc.values)))
	for _, v := range cc.values {
		dst = v.AppendBinary(dst)
	}
	return dst
}

// appendNulls writes row count plus the null bitmap (flag byte, then the
// packed words when present).
func appendNulls(dst []byte, tc *vector.TypedCol, n int) []byte {
	dst = binary.AppendUvarint(dst, uint64(n))
	if !tc.HasNulls() {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	words := make([]uint64, vector.NullBitmapWords(n))
	for i := 0; i < n; i++ {
		if tc.Null(i) {
			vector.SetNullBit(words, i)
		}
	}
	for _, w := range words {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return dst
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// readPartitionHeader reads a partition file's header — enough for pruning
// and row accounting — and arms a lazy loader for the data section.
func readPartitionHeader(path string, cols []string) (*Partition, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("storage: reading partition: %w", err)
	}
	r := &byteReader{path: path, buf: buf}
	if err := r.expectMagic(partitionMagic); err != nil {
		return nil, err
	}
	headerLen, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	header, err := r.bytes(int(headerLen))
	if err != nil {
		return nil, err
	}
	hr := &byteReader{path: path, buf: header}
	p := newPartition(cols)
	rows, err := hr.uvarint()
	if err != nil {
		return nil, err
	}
	p.rows = int(rows)
	pbytes, err := hr.uvarint()
	if err != nil {
		return nil, err
	}
	p.bytes = int64(pbytes)
	ncols, err := hr.uvarint()
	if err != nil {
		return nil, err
	}
	if int(ncols) != len(cols) {
		return nil, corruptf(path, "partition has %d columns, table has %d", ncols, len(cols))
	}
	for _, cc := range p.chunks {
		cbytes, err := hr.uvarint()
		if err != nil {
			return nil, err
		}
		cc.bytes = int64(cbytes)
		if err := readStats(hr, cc.stats); err != nil {
			return nil, err
		}
	}
	dataLen, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	dataOff := r.off
	if len(buf)-dataOff < int(dataLen) {
		return nil, corruptf(path, "data section truncated: want %d bytes, have %d", dataLen, len(buf)-dataOff)
	}
	p.loadFn = func() error {
		return loadPartitionData(p, path, dataOff, int(dataLen))
	}
	return p, nil
}

func readStats(r *byteReader, stats map[string]*PathStats) error {
	n, err := r.uvarint()
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		path, err := r.string()
		if err != nil {
			return err
		}
		st := &PathStats{}
		nonNull, err := r.uvarint()
		if err != nil {
			return err
		}
		st.NonNull = int(nonNull)
		nullCount, err := r.uvarint()
		if err != nil {
			return err
		}
		st.NullCount = int(nullCount)
		b, err := r.uvarint()
		if err != nil {
			return err
		}
		st.Bytes = int64(b)
		if st.NonNull > 0 {
			if st.Min, err = r.value(); err != nil {
				return err
			}
			if st.Max, err = r.value(); err != nil {
				return err
			}
		}
		stats[path] = st
	}
	return nil
}

// loadPartitionData reads and decodes the data section, populating every
// chunk's values or typed array. Called at most once per partition through
// EnsureLoaded.
func loadPartitionData(p *Partition, path string, off, length int) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("storage: opening partition: %w", err)
	}
	defer func() { _ = f.Close() }() // read-only; ReadAt already surfaced any I/O error
	buf := make([]byte, length)
	if _, err := f.ReadAt(buf, int64(off)); err != nil {
		return corruptf(path, "data section truncated: %v", err)
	}
	r := &byteReader{path: path, buf: buf}
	for _, cc := range p.chunks {
		if err := readChunkData(r, cc); err != nil {
			return err
		}
	}
	return nil
}

func readChunkData(r *byteReader, cc *ColumnChunk) error {
	enc, err := r.byte()
	if err != nil {
		return err
	}
	if enc == encVariant {
		n, err := r.uvarint()
		if err != nil {
			return err
		}
		if n > uint64(len(r.buf)-r.off) {
			return corruptf(r.path, "variant chunk claims %d rows in %d bytes", n, len(r.buf)-r.off)
		}
		vals := make([]variant.Value, 0, n)
		for i := uint64(0); i < n; i++ {
			v, err := r.value()
			if err != nil {
				return err
			}
			vals = append(vals, v)
		}
		cc.values = vals
		return nil
	}

	n, err := r.uvarint()
	if err != nil {
		return err
	}
	if n > uint64(len(r.buf)-r.off) {
		return corruptf(r.path, "typed chunk claims %d rows in %d bytes", n, len(r.buf)-r.off)
	}
	rows := int(n)
	hasNulls, err := r.byte()
	if err != nil {
		return err
	}
	var nulls []uint64
	if hasNulls == 1 {
		words := vector.NullBitmapWords(rows)
		nulls = make([]uint64, words)
		for i := range nulls {
			b, err := r.bytes(8)
			if err != nil {
				return err
			}
			nulls[i] = binary.LittleEndian.Uint64(b)
		}
	} else if hasNulls != 0 {
		return corruptf(r.path, "bad null-bitmap flag 0x%02x", hasNulls)
	}

	switch enc {
	case encInt64:
		vals := make([]int64, rows)
		for i := range vals {
			b, err := r.bytes(8)
			if err != nil {
				return err
			}
			vals[i] = int64(binary.LittleEndian.Uint64(b))
		}
		cc.typed = vector.NewInt64Col(vals, nulls)
	case encFloat64:
		vals := make([]float64, rows)
		for i := range vals {
			b, err := r.bytes(8)
			if err != nil {
				return err
			}
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(b))
		}
		cc.typed = vector.NewFloat64Col(vals, nulls)
	case encString:
		vals := make([]string, rows)
		for i := range vals {
			s, err := r.string()
			if err != nil {
				return err
			}
			vals[i] = s
		}
		cc.typed = vector.NewStringCol(vals, nulls)
	case encDict:
		dlen, err := r.uvarint()
		if err != nil {
			return err
		}
		if dlen > uint64(len(r.buf)-r.off) {
			return corruptf(r.path, "dictionary claims %d entries in %d bytes", dlen, len(r.buf)-r.off)
		}
		dict := make([]string, dlen)
		for i := range dict {
			if dict[i], err = r.string(); err != nil {
				return err
			}
		}
		codes := make([]uint32, rows)
		for i := range codes {
			b, err := r.bytes(4)
			if err != nil {
				return err
			}
			codes[i] = binary.LittleEndian.Uint32(b)
			if uint64(codes[i]) >= dlen {
				return corruptf(r.path, "dictionary code %d out of range (dict size %d)", codes[i], dlen)
			}
		}
		cc.typed = vector.NewDictCol(dict, codes, nulls)
	case encBool:
		vals := make([]bool, rows)
		for i := range vals {
			b, err := r.byte()
			if err != nil {
				return err
			}
			vals[i] = b != 0
		}
		cc.typed = vector.NewBoolCol(vals, nulls)
	default:
		return corruptf(r.path, "unknown chunk encoding 0x%02x", enc)
	}
	return nil
}

// byteReader is a bounds-checked cursor over a file's bytes; every decoding
// failure becomes a CorruptError carrying the file path.
type byteReader struct {
	path string
	buf  []byte
	off  int
}

func (r *byteReader) expectMagic(magic string) error {
	b, err := r.bytes(len(magic) + 1)
	if err != nil {
		return err
	}
	if string(b[:len(magic)]) != magic {
		return corruptf(r.path, "bad magic %q", b[:len(magic)])
	}
	if b[len(magic)] != formatVersion {
		return corruptf(r.path, "unsupported format version %d (supported: %d)", b[len(magic)], formatVersion)
	}
	return nil
}

func (r *byteReader) bytes(n int) ([]byte, error) {
	if n < 0 || len(r.buf)-r.off < n {
		return nil, corruptf(r.path, "truncated: need %d bytes at offset %d, have %d", n, r.off, len(r.buf)-r.off)
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *byteReader) byte() (byte, error) {
	b, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *byteReader) uvarint() (uint64, error) {
	v, w := binary.Uvarint(r.buf[r.off:])
	if w <= 0 {
		return 0, corruptf(r.path, "bad varint at offset %d", r.off)
	}
	r.off += w
	return v, nil
}

func (r *byteReader) string() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	b, err := r.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *byteReader) value() (variant.Value, error) {
	v, rest, err := variant.DecodeBinary(r.buf[r.off:])
	if err != nil {
		return variant.Null, corruptf(r.path, "bad value at offset %d: %v", r.off, err)
	}
	r.off = len(r.buf) - len(rest)
	return v, nil
}
