package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"jsonpark/internal/variant"
)

func persistRows(t *testing.T, dir string, n int) {
	t.Helper()
	c := NewCatalog()
	c.SetDataDir(dir)
	tab, err := c.CreateTable("ev", []string{"id", "tag", "meta"})
	if err != nil {
		t.Fatal(err)
	}
	tab.SetTargetPartitionBytes(512)
	for i := 0; i < n; i++ {
		row := []variant.Value{
			variant.Int(int64(i)),
			variant.String(fmt.Sprintf("tag%d", i%3)),
			variant.ObjectFromPairs("pt", variant.Float(float64(i)*1.5), "q", variant.Int(int64(i%5))),
		}
		if err := tab.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestPersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	persistRows(t, dir, 100)

	// A fresh catalog (a "restarted process") rediscovers the table.
	c := NewCatalog()
	c.SetDataDir(dir)
	tab, err := c.Table("ev")
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.NumRows(); got != 100 {
		t.Fatalf("NumRows = %d, want 100", got)
	}
	parts := tab.Partitions()
	if len(parts) < 2 {
		t.Fatalf("want multiple partitions, got %d", len(parts))
	}

	// Zone maps work straight from headers, before any data load.
	st := parts[0].Column(0).PathStat("")
	if st == nil || st.NonNull == 0 {
		t.Fatal("header did not carry zone maps")
	}
	pred := PrunePredicate{Column: "id", Op: PruneGt, Value: variant.Int(1_000_000)}
	for _, p := range parts {
		if p.MayMatch(0, pred) {
			t.Fatal("zone map from header failed to prune")
		}
	}

	// Cold load streams the data back bit-exactly.
	rows := 0
	sawDict := false
	for pi, p := range parts {
		read, err := p.EnsureLoaded()
		if err != nil {
			t.Fatal(err)
		}
		if !read {
			t.Fatalf("partition %d: first EnsureLoaded did not read", pi)
		}
		if read2, _ := p.EnsureLoaded(); read2 {
			t.Fatalf("partition %d: second EnsureLoaded read again", pi)
		}
		ids := p.Column(0).Values()
		tags := p.Column(1).Values()
		metas := p.Column(2).Values()
		for i := range ids {
			want := variant.ObjectFromPairs(
				"pt", variant.Float(float64(rows)*1.5), "q", variant.Int(int64(rows%5)))
			if ids[i].AsInt() != int64(rows) ||
				tags[i].AsString() != fmt.Sprintf("tag%d", rows%3) ||
				!variant.BinaryEqual(metas[i], want) {
				t.Fatalf("row %d mismatch: id=%s tag=%s meta=%s", rows, ids[i].JSON(), tags[i].JSON(), metas[i].JSON())
			}
			rows++
		}
		// The typed encodings survive the round trip.
		if p.Column(0).Typed() == nil {
			t.Error("id column lost its typed encoding on disk")
		}
		if tc := p.Column(1).Typed(); tc == nil {
			t.Error("tag column lost its typed encoding on disk")
		} else if tc.Codes() != nil {
			sawDict = true
		}
		if p.Column(2).Typed() != nil {
			t.Error("object column must stay variant")
		}
	}
	if rows != 100 {
		t.Fatalf("reloaded %d rows, want 100", rows)
	}
	if !sawDict {
		t.Error("no partition reloaded the tag column dictionary-encoded")
	}
}

func TestPersistAppendAfterReload(t *testing.T) {
	dir := t.TempDir()
	persistRows(t, dir, 10)

	c := NewCatalog()
	c.SetDataDir(dir)
	tab, err := c.Table("ev")
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Append([]variant.Value{variant.Int(1000), variant.String("late"), variant.Null}); err != nil {
		t.Fatal(err)
	}
	if err := tab.Flush(); err != nil {
		t.Fatal(err)
	}

	c2 := NewCatalog()
	c2.SetDataDir(dir)
	tab2, err := c2.Table("ev")
	if err != nil {
		t.Fatal(err)
	}
	if got := tab2.NumRows(); got != 11 {
		t.Fatalf("NumRows after reload+append = %d, want 11", got)
	}
}

// TestPersistAdoptsInMemoryTables is the reopen-after-append regression: a
// table created before the catalog had a data directory seals partitions in
// memory; attaching the directory later must adopt them — manifest written,
// already-sealed partitions persisted — and partitions sealed by appends
// afterwards must reach disk too, so a restart loses nothing.
func TestPersistAdoptsInMemoryTables(t *testing.T) {
	dir := t.TempDir()
	c := NewCatalog()
	tab, err := c.CreateTable("ev", []string{"id", "tag", "meta"})
	if err != nil {
		t.Fatal(err)
	}
	row := func(i int) []variant.Value {
		return []variant.Value{
			variant.Int(int64(i)),
			variant.String(fmt.Sprintf("tag%d", i%3)),
			variant.ObjectFromPairs("q", variant.Int(int64(i%5))),
		}
	}
	// Phase 1: purely in-memory — two sealed partitions plus buffered rows.
	for i := 0; i < 30; i++ {
		if err := tab.Append(row(i)); err != nil {
			t.Fatal(err)
		}
		if i == 9 || i == 19 {
			tab.Seal()
		}
	}
	// Phase 2: attach the directory, keep appending; the seal at i==39 goes
	// through the normal seal-to-disk path.
	c.SetDataDir(dir)
	for i := 30; i < 50; i++ {
		if err := tab.Append(row(i)); err != nil {
			t.Fatal(err)
		}
		if i == 39 {
			tab.Seal()
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	// Restart: every row — sealed before the directory existed, sealed by an
	// append after, or buffered at Flush — must come back.
	c2 := NewCatalog()
	c2.SetDataDir(dir)
	tab2, err := c2.Table("ev")
	if err != nil {
		t.Fatal(err)
	}
	if got := tab2.NumRows(); got != 50 {
		t.Fatalf("NumRows after restart = %d, want 50", got)
	}
	if parts := tab2.Partitions(); len(parts) != 4 {
		t.Fatalf("partitions after restart = %d, want 4", len(parts))
	}
	seen := 0
	for _, p := range tab2.Partitions() {
		if _, err := p.EnsureLoaded(); err != nil {
			t.Fatal(err)
		}
		for _, v := range p.Column(0).Values() {
			if v.AsInt() != int64(seen) {
				t.Fatalf("row %d reloaded as id %d", seen, v.AsInt())
			}
			seen++
		}
	}
	if seen != 50 {
		t.Fatalf("reloaded %d rows, want 50", seen)
	}
}

func TestPersistDropTableRemovesDir(t *testing.T) {
	dir := t.TempDir()
	persistRows(t, dir, 5)
	c := NewCatalog()
	c.SetDataDir(dir)
	if _, err := c.Table("ev"); err != nil {
		t.Fatal(err)
	}
	c.DropTable("ev")
	if _, err := os.Stat(filepath.Join(dir, "ev")); !os.IsNotExist(err) {
		t.Fatalf("table dir still exists: %v", err)
	}
	if _, err := c.Table("ev"); err == nil {
		t.Fatal("dropped table still resolvable")
	}
}

// corruptPartitionFile mutates the first partition file of table "ev" in dir.
func corruptPartitionFile(t *testing.T, dir string, mutate func([]byte) []byte) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "ev", partPrefix+"*"+partSuffix))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no partition files: %v", err)
	}
	path := matches[0]
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(buf), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPersistCorruptionIsStructuredError(t *testing.T) {
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		// headerErr: the error should already surface when the catalog opens
		// the table (header damage); otherwise it surfaces at EnsureLoaded.
		headerErr bool
	}{
		{name: "bad magic", mutate: func(b []byte) []byte { b[0] = 'X'; return b }, headerErr: true},
		{name: "bad version", mutate: func(b []byte) []byte { b[4] = 99; return b }, headerErr: true},
		{name: "truncated header", mutate: func(b []byte) []byte { return b[:8] }, headerErr: true},
		{name: "truncated data", mutate: func(b []byte) []byte { return b[:len(b)-10] }, headerErr: true},
		{name: "garbage data section", mutate: func(b []byte) []byte {
			for i := len(b) - 20; i < len(b); i++ {
				b[i] = 0xFF
			}
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			persistRows(t, dir, 20)
			corruptPartitionFile(t, dir, tc.mutate)

			c := NewCatalog()
			c.SetDataDir(dir)
			tab, err := c.Table("ev")
			if tc.headerErr {
				if err == nil {
					t.Fatal("expected an open error for header corruption")
				}
				var ce *CorruptError
				if !errors.As(err, &ce) {
					t.Fatalf("error %v is not a *CorruptError", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("header-intact corruption failed at open: %v", err)
			}
			var loadErr error
			for _, p := range tab.Partitions() {
				if _, err := p.EnsureLoaded(); err != nil {
					loadErr = err
				}
			}
			if loadErr == nil {
				t.Fatal("expected a load error for data corruption")
			}
			var ce *CorruptError
			if !errors.As(loadErr, &ce) {
				t.Fatalf("error %v is not a *CorruptError", loadErr)
			}
		})
	}
}
