// Typed shredding (§II-B): at partition seal time each column chunk whose
// values are uniformly one scalar kind is re-encoded as a flat typed array —
// int64/float64/string/bool plus a null bitmap, with dictionary encoding for
// low-cardinality strings. Typed chunks hand the executor zero-copy
// vector.TypedCol views so expression kernels run monomorphic loops, and
// their zone maps fall out of one pass over the typed array. Columns mixing
// kinds (or holding arrays/objects at the root) keep the variant array, and
// every nested path keeps its shredded statistics either way.
package storage

import (
	"jsonpark/internal/variant"
	"jsonpark/internal/vector"
)

// dictMaxCard caps the dictionary size of a dictionary-encoded string chunk.
// Beyond it (or when the dictionary wouldn't actually dedup anything) the
// chunk stores plain per-row strings.
const dictMaxCard = 256

// buildTyped returns the typed encoding of a sealed chunk's values, or nil
// when the column is not uniformly one scalar kind (the variant fallback).
// Int and Float never mix — 1 and 1.0 render differently, so collapsing them
// into one array would not round-trip bit-exactly.
func buildTyped(values []variant.Value) *vector.TypedCol {
	kind := variant.KindNull
	nullCount := 0
	for _, v := range values {
		switch v.Kind() {
		case variant.KindNull:
			nullCount++
		case variant.KindInt, variant.KindFloat, variant.KindString, variant.KindBool:
			if kind == variant.KindNull {
				kind = v.Kind()
			} else if kind != v.Kind() {
				return nil
			}
		default:
			return nil
		}
	}
	if kind == variant.KindNull {
		return nil // empty or all-NULL: nothing to type
	}
	var nulls []uint64
	if nullCount > 0 {
		nulls = make([]uint64, vector.NullBitmapWords(len(values)))
		for i, v := range values {
			if v.IsNull() {
				vector.SetNullBit(nulls, i)
			}
		}
	}
	switch kind {
	case variant.KindInt:
		vals := make([]int64, len(values))
		for i, v := range values {
			if !v.IsNull() {
				vals[i] = v.AsInt()
			}
		}
		return vector.NewInt64Col(vals, nulls)
	case variant.KindFloat:
		vals := make([]float64, len(values))
		for i, v := range values {
			if !v.IsNull() {
				vals[i] = v.AsFloat()
			}
		}
		return vector.NewFloat64Col(vals, nulls)
	case variant.KindBool:
		vals := make([]bool, len(values))
		for i, v := range values {
			if !v.IsNull() {
				vals[i] = v.AsBool()
			}
		}
		return vector.NewBoolCol(vals, nulls)
	case variant.KindString:
		return buildStringTyped(values, nulls, nullCount)
	}
	return nil
}

// buildStringTyped picks between dictionary and plain string encoding:
// dictionary when the distinct count stays under dictMaxCard and actually
// deduplicates (every code saves a string header).
func buildStringTyped(values []variant.Value, nulls []uint64, nullCount int) *vector.TypedCol {
	codes := make([]uint32, len(values))
	index := make(map[string]uint32)
	var dict []string
	dictOK := true
	for i, v := range values {
		if v.IsNull() {
			continue
		}
		s := v.AsString()
		code, seen := index[s]
		if !seen {
			if len(dict) >= dictMaxCard {
				dictOK = false
				break
			}
			code = uint32(len(dict))
			index[s] = code
			dict = append(dict, s)
		}
		codes[i] = code
	}
	nonNull := len(values) - nullCount
	if dictOK && len(dict)*2 <= nonNull {
		return vector.NewDictCol(dict, codes, nulls)
	}
	vals := make([]string, len(values))
	for i, v := range values {
		if !v.IsNull() {
			vals[i] = v.AsString()
		}
	}
	return vector.NewStringCol(vals, nulls)
}

// rootStatsFromTyped fills the chunk's "" path statistics from its typed
// array — one pass, no variant boxing — replicating exactly what shred would
// record for a uniformly scalar column: per-value byte volume, null count,
// and min/max under variant.Compare's ordering (floats use strict <, so NaN
// never displaces an extremum, matching Compare's treatment).
func (cc *ColumnChunk) rootStatsFromTyped(tc *vector.TypedCol) {
	st := cc.stat("")
	n := tc.Len()
	switch tc.Kind() {
	case vector.TypedInt64:
		var min, max int64
		for i, x := range tc.Ints() {
			if tc.Null(i) {
				st.Bytes++
				st.NullCount++
				continue
			}
			st.Bytes += 8
			if st.NonNull == 0 {
				min, max = x, x
			} else {
				if x < min {
					min = x
				}
				if x > max {
					max = x
				}
			}
			st.NonNull++
		}
		if st.NonNull > 0 {
			st.Min, st.Max = variant.Int(min), variant.Int(max)
		}
	case vector.TypedFloat64:
		var min, max float64
		for i, x := range tc.Floats() {
			if tc.Null(i) {
				st.Bytes++
				st.NullCount++
				continue
			}
			st.Bytes += 8
			if st.NonNull == 0 {
				min, max = x, x
			} else {
				if x < min {
					min = x
				}
				if x > max {
					max = x
				}
			}
			st.NonNull++
		}
		if st.NonNull > 0 {
			st.Min, st.Max = variant.Float(min), variant.Float(max)
		}
	case vector.TypedString:
		var min, max string
		for i := 0; i < n; i++ {
			if tc.Null(i) {
				st.Bytes++
				st.NullCount++
				continue
			}
			s := tc.StringAt(i)
			st.Bytes += int64(8 + len(s))
			if st.NonNull == 0 {
				min, max = s, s
			} else {
				if s < min {
					min = s
				}
				if s > max {
					max = s
				}
			}
			st.NonNull++
		}
		if st.NonNull > 0 {
			st.Min, st.Max = variant.String(min), variant.String(max)
		}
	case vector.TypedBool:
		var min, max bool
		for i, x := range tc.Bools() {
			if tc.Null(i) {
				st.Bytes++
				st.NullCount++
				continue
			}
			st.Bytes++
			if st.NonNull == 0 {
				min, max = x, x
			} else {
				if !x {
					min = false
				}
				if x {
					max = true
				}
			}
			st.NonNull++
		}
		if st.NonNull > 0 {
			st.Min, st.Max = variant.Bool(min), variant.Bool(max)
		}
	}
}
