package core

import (
	"jsonpark/internal/jsoniq"
	"jsonpark/internal/runtime"
	"strings"
	"testing"

	"jsonpark/internal/variant"
)

func TestTranslateCountClause(t *testing.T) {
	// The count clause binds 1-based tuple positions (top level only).
	sess := newSession(t)
	res, err := Translate(sess, `for $e in collection("adl")
		order by $e.EVENT
		count $c
		return {"ev": $e.EVENT, "pos": $c}`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := res.DataFrame.Collect()
	if err != nil {
		t.Fatalf("%v\nSQL: %s", err, res.SQL)
	}
	for i, row := range out.Rows {
		o := row[0]
		if o.Field("pos").AsInt() != int64(i+1) {
			t.Errorf("row %d pos = %v", i, o.Field("pos"))
		}
	}
}

func TestTranslateCountClauseRejectedInNested(t *testing.T) {
	sess := newSession(t)
	_, err := Translate(sess, `for $e in collection("adl")
		let $x := (for $m in $e.Muon[] count $c return $c)
		return $x`, Options{})
	if err == nil || !strings.Contains(err.Error(), "count") {
		t.Errorf("expected count-in-nested error, got %v", err)
	}
}

func TestTranslateMultiKeyGroupBy(t *testing.T) {
	runBoth(t, `for $e in collection("adl")
		for $m in $e.Muon[]
		group by $q := $m.charge, $trig := $e.HLT.IsoMu24
		order by $q, $trig
		return {"q": $q, "trig": $trig, "n": count($m)}`)
}

func TestTranslateGroupByExistingVariable(t *testing.T) {
	runBoth(t, `for $e in collection("adl")
		let $trig := $e.HLT.IsoMu24
		group by $trig
		order by $trig
		return {"trig": $trig, "n": count($e)}`)
}

func TestTranslateDeepFieldChain(t *testing.T) {
	runBoth(t, `for $e in collection("adl") return $e.HLT.IsoMu24`)
}

func TestTranslateWhereBetweenLets(t *testing.T) {
	runBoth(t, `for $e in collection("adl")
		let $pt := $e.MET.pt
		where $pt gt 15
		let $double := $pt * 2
		return $double`)
}

func TestTranslateArrayCtorInReturn(t *testing.T) {
	runBoth(t, `for $e in collection("adl")
		return [$e.EVENT, [$e.MET.pt], {}]`)
}

func TestTranslatePositionVariables(t *testing.T) {
	runBoth(t, `for $e in collection("adl")
		for $m at $i in $e.Muon[]
		return {"ev": $e.EVENT, "i": $i, "pt": $m.pt}`)
}

func TestTranslateQ8MiniPattern(t *testing.T) {
	// concat + SFOS pair + exists over an object-valued positional lookup.
	runBoth(t, `for $e in collection("adl")
		let $mu := (for $m in $e.Muon[] return {"pt": $m.pt, "charge": $m.charge, "flavor": 1})
		let $leptons := concat($mu, $mu)
		where size($leptons) ge 2
		let $best := (
			for $i in 1 to size($leptons)
			where $leptons[[$i]].charge gt 0
			return {"i": $i}
		)[[1]]
		where exists($best)
		return {"ev": $e.EVENT, "first": $best.i}`)
}

func TestTranslateNestedAvgMin(t *testing.T) {
	runBoth(t, `for $e in collection("adl")
		return {"avg": avg(for $m in $e.Muon[] return $m.pt),
		        "min": min(for $m in $e.Muon[] return $m.pt)}`)
}

func TestTranslateIfWithNestedQueryInBranch(t *testing.T) {
	runBoth(t, `for $e in collection("adl")
		return if (exists($e.Muon[]))
		       then count(for $m in $e.Muon[] return $m)
		       else -1`)
}

func TestTranslateLiteralOnlyReturn(t *testing.T) {
	out := runBoth(t, `for $e in collection("adl") return 1`)
	if len(out) != 4 {
		t.Fatalf("items = %v", out)
	}
}

func TestTranslateStrategyProducesIdenticalResultsOnEdgeData(t *testing.T) {
	// Edge rows: all-empty arrays, single-element arrays, null fields.
	sess := newSession(t)
	eng := sess.Engine()
	tab, err := eng.Catalog().CreateTable("edge", []string{"id", "arr"})
	if err != nil {
		t.Fatal(err)
	}
	rows := []string{
		`{"id": 1, "arr": []}`,
		`{"id": 2, "arr": [{"v": 1}]}`,
		`{"id": 3}`,
		`{"id": 4, "arr": [{"v": -1}, {"v": 5}, {"v": null}]}`,
	}
	for _, r := range rows {
		if err := tab.AppendObject(variant.MustParseJSON(r)); err != nil {
			t.Fatal(err)
		}
	}
	src := `for $e in collection("edge")
		let $pos := (for $x in $e.arr[] where $x.v gt 0 return $x.v)
		order by $e.id
		return {"id": $e.id, "n": size($pos)}`
	var results [][]variant.Value
	for _, strat := range []Strategy{StrategyKeepFlag, StrategyJoin} {
		res, err := Translate(sess, src, Options{Strategy: strat})
		if err != nil {
			t.Fatal(err)
		}
		out, err := res.DataFrame.Collect()
		if err != nil {
			t.Fatalf("%v\nSQL: %s", err, res.SQL)
		}
		items := make([]variant.Value, len(out.Rows))
		for i, row := range out.Rows {
			items[i] = row[0]
		}
		results = append(results, items)
	}
	if len(results[0]) != 4 {
		t.Fatalf("rows = %v", results[0])
	}
	for i := range results[0] {
		if !variant.Equal(results[0][i], results[1][i]) {
			t.Errorf("strategies disagree at %d: %v vs %v", i, results[0][i], results[1][i])
		}
	}
	wantN := map[int64]int64{1: 0, 2: 1, 3: 0, 4: 1}
	for _, it := range results[0] {
		id := it.Field("id").AsInt()
		if it.Field("n").AsInt() != wantN[id] {
			t.Errorf("id %d n = %v, want %d", id, it.Field("n"), wantN[id])
		}
	}
}

func TestTranslatedSQLIsParsableText(t *testing.T) {
	// The contract of the paper: the translation is ONE SQL string, fully
	// parsable and executable with no side channel.
	sess := newSession(t)
	for _, src := range []string{
		`for $e in collection("adl") return $e.EVENT`,
		`for $e in collection("adl")
		 let $f := (for $m in $e.Muon[] order by $m.pt descending return $m.pt)
		 return {"top": $f[[1]]}`,
	} {
		res, err := Translate(sess, src, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if strings.Count(res.SQL, ";") != 0 {
			t.Errorf("translation is not a single statement: %s", res.SQL)
		}
		if _, err := sess.Engine().Query(res.SQL); err != nil {
			t.Errorf("engine rejected translated text: %v", err)
		}
	}
}

func TestTranslateUserDeclaredFunctions(t *testing.T) {
	// Prolog functions are inlined before translation (§III-A2 rewrites);
	// both back-ends must agree end to end.
	runBoth(t, `
		declare function local:dimuonMass($m1, $m2) {
			sqrt(2 * $m1.pt * $m2.pt * (cosh($m1.eta - $m2.eta) - cos($m1.phi - $m2.phi)))
		}
		for $e in collection("adl")
		let $masses := (
			for $i in 1 to size($e.Muon)
			for $j in 1 to size($e.Muon)
			where $i lt $j
			return local:dimuonMass($e.Muon[[$i]], $e.Muon[[$j]])
		)
		return {"ev": $e.EVENT, "n": size($masses), "max": max($masses)}`)
}

func TestStrategyAutoDecision(t *testing.T) {
	// Few nested queries → JOIN; deeply stacked nested queries → KEEP flag
	// (the §IV-E automatic optimizer, calibrated by the ablation in
	// EXPERIMENTS.md).
	shallow := jsoniq.MustParse(`for $e in collection("adl")
		let $f := (for $m in $e.Muon[] where $m.pt gt 1 return $m)
		return size($f)`)
	if got := ChooseStrategy(StrategyAuto, shallow); got != StrategyJoin {
		t.Errorf("shallow query strategy = %v, want join", got)
	}
	deep := jsoniq.MustParse(`for $e in collection("adl")
		let $a := (for $m in $e.Muon[] return $m)
		let $b := (for $m in $e.Jet[] return $m)
		let $c := (for $m in $e.Muon[] return $m.pt)
		let $d := (for $m in $e.Jet[] return $m.pt)
		return [size($a), size($b), size($c), size($d)]`)
	if got := ChooseStrategy(StrategyAuto, deep); got != StrategyKeepFlag {
		t.Errorf("deep query strategy = %v, want keep-flag", got)
	}
	// Explicit strategies pass through unchanged.
	if got := ChooseStrategy(StrategyJoin, deep); got != StrategyJoin {
		t.Errorf("explicit strategy overridden: %v", got)
	}
}

func TestStrategyAutoMatchesAblationOnADLShapes(t *testing.T) {
	// The auto rule must select JOIN for the Q6-like single-nested shape
	// and KEEP for the Q8-like many-nested shape, and produce correct
	// results either way.
	runBothWith(t, StrategyAuto, `for $e in collection("adl")
		let $f := (for $m in $e.Muon[] where $m.pt gt 10 return $m.pt)
		return {"ev": $e.EVENT, "n": size($f)}`)
}

// runBothWith is runBoth pinned to one strategy.
func runBothWith(t *testing.T, strat Strategy, src string) {
	t.Helper()
	interp := runtime.New(runtime.ProfileDefault)
	interp.LoadCollection("adl", adlDocs())
	want, err := interp.Run(jsoniq.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	sess := newSession(t)
	res, err := Translate(sess, src, Options{Strategy: strat})
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.DataFrame.Collect()
	if err != nil {
		t.Fatalf("%v\nSQL: %s", err, res.SQL)
	}
	items := make([]variant.Value, len(got.Rows))
	for i, row := range got.Rows {
		items[i] = row[0]
	}
	assertSameItems(t, src, items, want)
}
