// Package core implements the paper's primary contribution: translating
// JSONiq queries into a single native SQL query via the Snowpark-style
// DataFrame API (§III). The translator walks the iterator tree produced by
// the JSONiq frontend exactly once; FLWOR iterators manipulate DataFrame
// objects while non-FLWOR iterators compose Column objects (§III-B). Nested
// queries are handled by row-ID injection, LATERAL FLATTEN and
// re-aggregation (§IV-B), with both published strategies for the erroneous
// object elimination problem (§IV-C): the KEEP flag-column approach and the
// JOIN-based approach.
package core

import (
	"fmt"

	"jsonpark/internal/iterplan"
	"jsonpark/internal/jsoniq"
	"jsonpark/internal/obsv"
	"jsonpark/internal/snowpark"
)

// Strategy selects how nested queries avoid erroneous object elimination.
type Strategy int

// Strategies (§IV-C). The paper leaves the choice to the practitioner and
// names an automatic optimizer as future work (§IV-E); StrategyAuto
// implements that optimizer with the decision rule measured in this
// substrate's ablation (EXPERIMENTS.md): the JOIN-based approach wins
// unless nested queries stack deeply, where its repeated self-joins
// dominate and the flag-column approach takes over.
const (
	StrategyKeepFlag Strategy = iota
	StrategyJoin
	StrategyAuto
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyJoin:
		return "join"
	case StrategyAuto:
		return "auto"
	}
	return "keep-flag"
}

// autoNestedThreshold is the nested-query count at and above which
// StrategyAuto selects the flag-column approach.
const autoNestedThreshold = 4

// ChooseStrategy resolves StrategyAuto for a parsed query by counting the
// FLWOR expressions in expression position (each becomes one
// flatten/re-aggregate round trip). Explicit strategies pass through.
func ChooseStrategy(s Strategy, e jsoniq.Expr) Strategy {
	if s != StrategyAuto {
		return s
	}
	if countNestedQueries(e) >= autoNestedThreshold {
		return StrategyKeepFlag
	}
	return StrategyJoin
}

// countNestedQueries counts FLWOR expressions excluding the outermost one.
func countNestedQueries(e jsoniq.Expr) int {
	total := 0
	jsoniq.Walk(e, func(n jsoniq.Expr) bool {
		if _, ok := n.(*jsoniq.FLWOR); ok {
			total++
		}
		return true
	})
	if _, ok := e.(*jsoniq.FLWOR); ok && total > 0 {
		total--
	}
	return total
}

// Options configures one translation.
type Options struct {
	Strategy Strategy
	// Span, when non-nil, receives one child span per lowering stage
	// (jsoniq.lex/parse/rewrite, iterplan.build, core.translate,
	// snowpark.render) so translation-layer overheads are individually
	// timed, per the paper's §V breakdown.
	Span *obsv.Span
}

// Result is a completed translation.
type Result struct {
	// DataFrame lazily encapsulates the single translated SQL query.
	DataFrame *snowpark.DataFrame
	// SQL is the rendered query text.
	SQL string
	// Census counts the iterators the translation visited (Table II).
	Census iterplan.CensusResult
	// Strategy is the resolved nested-query strategy (Auto decided).
	Strategy Strategy
}

// Translate parses, rewrites and translates a JSONiq query into a single
// SQL query bound to the session's engine. Every translated query produces
// one column named "result" holding the returned items in row order.
func Translate(sess *snowpark.Session, src string, opts Options) (*Result, error) {
	sp := opts.Span
	expr, err := jsoniq.ParseTraced(src, sp)
	if err != nil {
		return nil, err
	}
	rwsp := sp.Child("jsoniq.rewrite")
	expr = jsoniq.Rewrite(expr)
	rwsp.End()
	bsp := sp.Child("iterplan.build")
	iters, err := iterplan.Build(expr)
	if err != nil {
		bsp.End()
		return nil, err
	}
	census := iterplan.Census(iters)
	bsp.SetAttr("iterators", census.Total())
	bsp.SetAttr("flwor-iterators", census.FLWOR)
	bsp.End()
	opts.Strategy = ChooseStrategy(opts.Strategy, expr)
	tsp := sp.Child("core.translate")
	tsp.SetAttr("strategy", opts.Strategy.String())
	df, err := TranslateExpr(sess, expr, opts)
	tsp.End()
	if err != nil {
		return nil, err
	}
	rsp := sp.Child("snowpark.render")
	sql := df.SQL()
	rsp.SetAttr("sql-bytes", len(sql))
	rsp.End()
	return &Result{
		DataFrame: df,
		SQL:       sql,
		Census:    census,
		Strategy:  opts.Strategy,
	}, nil
}

// TranslateExpr translates an already-parsed query.
func TranslateExpr(sess *snowpark.Session, expr jsoniq.Expr, opts Options) (*snowpark.DataFrame, error) {
	opts.Strategy = ChooseStrategy(opts.Strategy, expr)
	tr := &translator{sess: sess, opts: opts}
	return tr.translateTopLevel(expr)
}

// translator carries per-translation state: the session (for table schema
// resolution) and a counter for unique auxiliary column names ("#rid3",
// "#keep3", "#nq3", ...). '#' cannot occur in JSONiq variable names, so
// auxiliary columns never collide with user variables.
type translator struct {
	sess   *snowpark.Session
	opts   Options
	nextID int
	// tableVars maps a collection-bound variable to its table's column
	// names: field access on such variables resolves to the dedicated
	// passthrough column ("e.Jet") instead of GET on the assembled object,
	// preserving column-level prunability end to end (a translation-level
	// optimization in the spirit of §VII-A).
	tableVars map[string][]string
}

func (tr *translator) fresh(prefix string) string {
	id := tr.nextID
	tr.nextID++
	return fmt.Sprintf("#%s%d", prefix, id)
}

// translateTopLevel dispatches on the outermost expression form: a FLWOR
// expression, or an aggregate function applied to a FLWOR (e.g. the
// sum(for ...) shape of the SSB JSONiq queries).
func (tr *translator) translateTopLevel(e jsoniq.Expr) (*snowpark.DataFrame, error) {
	switch x := e.(type) {
	case *jsoniq.FLWOR:
		return tr.translateQuery(x)
	case *jsoniq.FunctionCall:
		if agg, ok := topLevelAggregates[x.Name]; ok && len(x.Args) == 1 {
			if inner, isFLWOR := x.Args[0].(*jsoniq.FLWOR); isFLWOR {
				df, err := tr.translateQuery(inner)
				if err != nil {
					return nil, err
				}
				col, err := applyGlobalAggregate(agg, snowpark.Col("result"))
				if err != nil {
					return nil, err
				}
				return df.Agg(col.As("result"))
			}
		}
	}
	return nil, fmt.Errorf("core: a translatable query must be a FLWOR expression or an aggregate over one, got %T", e)
}

// topLevelAggregates maps JSONiq aggregate names to SQL aggregates.
var topLevelAggregates = map[string]string{
	"count": "COUNT", "sum": "SUM", "avg": "AVG", "min": "MIN", "max": "MAX",
}

func applyGlobalAggregate(agg string, c snowpark.Column) (snowpark.Column, error) {
	switch agg {
	case "COUNT":
		return snowpark.Count(c), nil
	case "SUM":
		return snowpark.Coalesce(snowpark.Sum(c), snowpark.LitInt(0)), nil
	case "AVG":
		return snowpark.Avg(c), nil
	case "MIN":
		return snowpark.Min(c), nil
	case "MAX":
		return snowpark.Max(c), nil
	}
	return snowpark.Column{}, fmt.Errorf("core: unsupported global aggregate %q", agg)
}

// translateQuery translates a complete (outermost) FLWOR expression: the
// clauses thread a DataFrame left to right (§III-B2) and the return clause
// projects the final "result" column. A group by clause rewrites the
// remaining clauses and the return expression so that aggregate calls over
// non-grouping variables map to native SQL aggregates (aggregate detection).
func (tr *translator) translateQuery(f *jsoniq.FLWOR) (*snowpark.DataFrame, error) {
	ctx := &clauseContext{tr: tr}
	rest := append([]jsoniq.Clause(nil), f.Clauses...)
	ret := f.Return
	for len(rest) > 0 {
		c := rest[0]
		rest = rest[1:]
		if gb, ok := c.(*jsoniq.GroupByClause); ok {
			var err error
			rest, ret, err = ctx.applyGroupBy(gb, rest, ret)
			if err != nil {
				return nil, err
			}
			continue
		}
		if err := ctx.apply(c); err != nil {
			return nil, err
		}
	}
	if ctx.df == nil {
		return nil, fmt.Errorf("core: query must contain at least one for clause over a collection")
	}
	col, df, err := tr.expr(ctx.df, ret)
	if err != nil {
		return nil, err
	}
	return df.Select(col.As("result"))
}
