package core

import (
	"jsonpark/internal/jsoniq"
)

// groupAggRewriter performs aggregate detection after a group by clause:
// occurrences of count/sum/avg/min/max applied to a non-grouping variable
// (or a path rooted at one) are replaced by synthetic variables that the
// translation backs with native SQL aggregates, instead of materializing
// ARRAY_AGG arrays and re-aggregating them client-side.
type groupAggRewriter struct {
	tr          *translator
	nonGrouping map[string]bool
	// nonNull marks variables that can never be NULL (for-bound without
	// `allowing empty`); count() over them becomes COUNT(*), which keeps
	// the scan prunable instead of forcing the full object column.
	nonNull map[string]bool
	specs   []groupAggSpec
}

// groupAggSpec is one detected aggregate: the SQL aggregate name, the
// per-tuple argument expression, and the synthetic column name.
type groupAggSpec struct {
	agg  string
	arg  jsoniq.Expr // nil when star is set
	star bool        // COUNT(*)
	name string
}

var jsoniqAggregates = map[string]string{
	"count": "COUNT", "sum": "SUM", "avg": "AVG", "min": "MIN", "max": "MAX",
}

// rootVar returns the variable a pure path expression is rooted at, if any.
func rootVar(e jsoniq.Expr) (string, bool) {
	switch x := e.(type) {
	case *jsoniq.VarRef:
		return x.Name, true
	case *jsoniq.FieldAccess:
		return rootVar(x.Base)
	case *jsoniq.ArrayUnbox:
		return rootVar(x.Base)
	}
	return "", false
}

func (rw *groupAggRewriter) rewriteExpr(e jsoniq.Expr) (jsoniq.Expr, error) {
	switch x := e.(type) {
	case nil:
		return nil, nil
	case *jsoniq.Literal, *jsoniq.Collection:
		return e, nil
	case *jsoniq.VarRef:
		return e, nil
	case *jsoniq.FunctionCall:
		if agg, ok := jsoniqAggregates[x.Name]; ok && len(x.Args) == 1 {
			if v, rooted := rootVar(x.Args[0]); rooted && rw.nonGrouping[v] {
				spec := groupAggSpec{agg: agg, arg: x.Args[0]}
				if agg == "COUNT" {
					if vr, plain := x.Args[0].(*jsoniq.VarRef); plain && rw.nonNull[vr.Name] {
						spec.arg = nil
						spec.star = true
					}
				}
				// Identical aggregates (e.g. the same sum in both order by
				// and return) share one output column.
				key := spec.agg
				if spec.arg != nil {
					key += " " + jsoniq.Format(spec.arg)
				}
				for _, existing := range rw.specs {
					ek := existing.agg
					if existing.arg != nil {
						ek += " " + jsoniq.Format(existing.arg)
					}
					if ek == key {
						return &jsoniq.VarRef{Name: existing.name}, nil
					}
				}
				spec.name = rw.tr.fresh("gagg")
				rw.specs = append(rw.specs, spec)
				return &jsoniq.VarRef{Name: spec.name}, nil
			}
		}
		out := &jsoniq.FunctionCall{Name: x.Name}
		for _, a := range x.Args {
			na, err := rw.rewriteExpr(a)
			if err != nil {
				return nil, err
			}
			out.Args = append(out.Args, na)
		}
		return out, nil
	case *jsoniq.FieldAccess:
		base, err := rw.rewriteExpr(x.Base)
		if err != nil {
			return nil, err
		}
		return &jsoniq.FieldAccess{Base: base, Field: x.Field}, nil
	case *jsoniq.ArrayUnbox:
		base, err := rw.rewriteExpr(x.Base)
		if err != nil {
			return nil, err
		}
		return &jsoniq.ArrayUnbox{Base: base}, nil
	case *jsoniq.ArrayIndex:
		base, err := rw.rewriteExpr(x.Base)
		if err != nil {
			return nil, err
		}
		idx, err := rw.rewriteExpr(x.Index)
		if err != nil {
			return nil, err
		}
		return &jsoniq.ArrayIndex{Base: base, Index: idx}, nil
	case *jsoniq.ObjectCtor:
		out := &jsoniq.ObjectCtor{Keys: x.Keys}
		for _, v := range x.Values {
			nv, err := rw.rewriteExpr(v)
			if err != nil {
				return nil, err
			}
			out.Values = append(out.Values, nv)
		}
		return out, nil
	case *jsoniq.ArrayCtor:
		out := &jsoniq.ArrayCtor{}
		for _, v := range x.Items {
			nv, err := rw.rewriteExpr(v)
			if err != nil {
				return nil, err
			}
			out.Items = append(out.Items, nv)
		}
		return out, nil
	case *jsoniq.Binary:
		l, err := rw.rewriteExpr(x.Left)
		if err != nil {
			return nil, err
		}
		r, err := rw.rewriteExpr(x.Right)
		if err != nil {
			return nil, err
		}
		return &jsoniq.Binary{Op: x.Op, Left: l, Right: r}, nil
	case *jsoniq.Unary:
		o, err := rw.rewriteExpr(x.Operand)
		if err != nil {
			return nil, err
		}
		return &jsoniq.Unary{Op: x.Op, Operand: o}, nil
	case *jsoniq.If:
		cond, err := rw.rewriteExpr(x.Cond)
		if err != nil {
			return nil, err
		}
		then, err := rw.rewriteExpr(x.Then)
		if err != nil {
			return nil, err
		}
		els, err := rw.rewriteExpr(x.Else)
		if err != nil {
			return nil, err
		}
		return &jsoniq.If{Cond: cond, Then: then, Else: els}, nil
	case *jsoniq.FLWOR:
		// Nested FLWORs see the grouped bindings; aggregate calls inside
		// them operate on already-aggregated arrays, so only rewrite
		// occurrences that still refer to non-grouping variables directly.
		out := &jsoniq.FLWOR{}
		for _, c := range x.Clauses {
			nc, err := rw.rewriteClause(c)
			if err != nil {
				return nil, err
			}
			out.Clauses = append(out.Clauses, nc)
		}
		ret, err := rw.rewriteExpr(x.Return)
		if err != nil {
			return nil, err
		}
		out.Return = ret
		return out, nil
	}
	return e, nil
}

func (rw *groupAggRewriter) rewriteClause(c jsoniq.Clause) (jsoniq.Clause, error) {
	switch cl := c.(type) {
	case *jsoniq.ForClause:
		in, err := rw.rewriteExpr(cl.In)
		if err != nil {
			return nil, err
		}
		out := *cl
		out.In = in
		return &out, nil
	case *jsoniq.LetClause:
		e, err := rw.rewriteExpr(cl.Expr)
		if err != nil {
			return nil, err
		}
		out := *cl
		out.Expr = e
		return &out, nil
	case *jsoniq.WhereClause:
		e, err := rw.rewriteExpr(cl.Cond)
		if err != nil {
			return nil, err
		}
		out := *cl
		out.Cond = e
		return &out, nil
	case *jsoniq.GroupByClause:
		out := &jsoniq.GroupByClause{}
		for _, k := range cl.Keys {
			nk := k
			if k.Expr != nil {
				e, err := rw.rewriteExpr(k.Expr)
				if err != nil {
					return nil, err
				}
				nk.Expr = e
			}
			out.Keys = append(out.Keys, nk)
		}
		return out, nil
	case *jsoniq.OrderByClause:
		out := &jsoniq.OrderByClause{}
		for _, k := range cl.Keys {
			e, err := rw.rewriteExpr(k.Expr)
			if err != nil {
				return nil, err
			}
			out.Keys = append(out.Keys, jsoniq.OrderKey{Expr: e, Descending: k.Descending})
		}
		return out, nil
	}
	return c, nil
}
