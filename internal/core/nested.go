package core

import (
	"fmt"

	"jsonpark/internal/jsoniq"
	"jsonpark/internal/snowpark"
)

// aggKind selects how a nested query's returned items re-aggregate: into an
// array (the default JSONiq semantics of §IV-B), or directly through a SQL
// aggregate when the nested query feeds count/sum/avg/min/max/exists/empty.
type aggKind int

const (
	aggArray aggKind = iota
	aggCount
	aggSum
	aggAvg
	aggMin
	aggMax
)

// nestedQuery translates a FLWOR in expression position. The incoming
// DataFrame is passed into the nested query (§III-B2, Listing 3) and an
// updated DataFrame carrying the re-aggregated result column is returned.
func (tr *translator) nestedQuery(df *snowpark.DataFrame, f *jsoniq.FLWOR, kind aggKind) (snowpark.Column, *snowpark.DataFrame, error) {
	if df == nil {
		return snowpark.Column{}, nil, fmt.Errorf("core: nested query without an enclosing for clause")
	}
	if tr.opts.Strategy == StrategyJoin {
		return tr.nestedJoin(df, f, kind)
	}
	return tr.nestedKeep(df, f, kind)
}

// nestedKeep implements the flag column approach (§IV-C1): a KEEP column
// marks rows still eligible for the return clause; unboxing uses
// OUTER => TRUE flatten so objects with empty arrays survive; failing
// where predicates clear the flag instead of removing rows. Re-aggregation
// groups by an injected row ID, aggregating the guarded return expression
// and ANY_VALUE of every outer column.
func (tr *translator) nestedKeep(df *snowpark.DataFrame, f *jsoniq.FLWOR, kind aggKind) (snowpark.Column, *snowpark.DataFrame, error) {
	rid := tr.fresh("rid")
	keep := tr.fresh("keep")
	outerCols := df.Columns()
	df = df.WithColumn(rid, snowpark.Seq8())
	df = df.WithColumn(keep, snowpark.LitBool(true))

	// Each object's "representative" row — the one whose every flatten index
	// so far is 0 or NULL — always survives where filters, implementing the
	// §IV-C1 optimization of removing all failing rows bar one per object.
	representative := snowpark.LitBool(true)

	var orderSpecs []snowpark.OrderSpec
	for _, c := range f.Clauses {
		switch cl := c.(type) {
		case *jsoniq.ForClause:
			if _, ok := cl.In.(*jsoniq.Collection); ok {
				return snowpark.Column{}, nil, fmt.Errorf("core: nested queries over collections are not supported; hoist the collection into an outer for clause")
			}
			col, ndf, err := tr.expr(df, cl.In)
			if err != nil {
				return snowpark.Column{}, nil, err
			}
			alias := tr.fresh("f")
			df = ndf.Flatten(col, alias, true)
			df = df.WithColumn(cl.Var, snowpark.FlattenValue(alias))
			if cl.PosVar != "" {
				df = df.WithColumn(cl.PosVar, snowpark.FlattenIndex(alias).Add(snowpark.LitInt(1)))
			}
			df = df.WithColumn(keep,
				snowpark.Col(keep).And(snowpark.FlattenValue(alias).IsNotNull()))
			representative = representative.And(
				snowpark.FlattenIndex(alias).IsNull().
					Or(snowpark.FlattenIndex(alias).Eq(snowpark.LitInt(0))))
		case *jsoniq.LetClause:
			col, ndf, err := tr.expr(df, cl.Expr)
			if err != nil {
				return snowpark.Column{}, nil, err
			}
			df = ndf.WithColumn(cl.Var, col)
		case *jsoniq.WhereClause:
			col, ndf, err := tr.expr(df, cl.Cond)
			if err != nil {
				return snowpark.Column{}, nil, err
			}
			pass := snowpark.Iff(col, snowpark.LitBool(true), snowpark.LitBool(false))
			df = ndf.WithColumn(keep, snowpark.Col(keep).And(pass))
			// Failing rows are really removed, except each object's
			// representative, which preserves the row ID for re-aggregation.
			df = df.Where(snowpark.Col(keep).Or(representative))
		case *jsoniq.OrderByClause:
			for _, k := range cl.Keys {
				col, ndf, err := tr.expr(df, k.Expr)
				if err != nil {
					return snowpark.Column{}, nil, err
				}
				name := tr.fresh("ord")
				df = ndf.WithColumn(name, col)
				if k.Descending {
					orderSpecs = append(orderSpecs, snowpark.Desc(snowpark.Col(name)))
				} else {
					orderSpecs = append(orderSpecs, snowpark.Asc(snowpark.Col(name)))
				}
			}
		default:
			return snowpark.Column{}, nil, fmt.Errorf("core: %s clauses are not supported inside nested queries", c.Kind())
		}
	}

	retCol, df, err := tr.expr(df, f.Return)
	if err != nil {
		return snowpark.Column{}, nil, err
	}
	// Rows with KEEP = false contribute NULL, which the aggregates skip.
	guarded := snowpark.CaseWhen(snowpark.Col(keep), retCol).End()

	res := tr.fresh("nq")
	aggCol, err := nestedAggregate(kind, guarded, snowpark.CountIf(snowpark.Col(keep)), orderSpecs)
	if err != nil {
		return snowpark.Column{}, nil, err
	}
	aggs := make([]snowpark.Column, 0, len(outerCols)+1)
	for _, c := range outerCols {
		aggs = append(aggs, snowpark.AnyValue(colByName(c)).As(c))
	}
	aggs = append(aggs, aggCol.As(res))
	out, err := df.GroupBy(snowpark.Col(rid)).Agg(aggs...)
	if err != nil {
		return snowpark.Column{}, nil, err
	}
	return snowpark.Col(res), out, nil
}

// nestedJoin implements the JOIN-based approach (§IV-C2): the row-ID-stamped
// DataFrame is copied; the nested query freely eliminates rows (inner
// flatten, real where filters); its per-row-ID aggregate is joined back to
// the copy with a left outer join, and missing results are defaulted.
func (tr *translator) nestedJoin(df *snowpark.DataFrame, f *jsoniq.FLWOR, kind aggKind) (snowpark.Column, *snowpark.DataFrame, error) {
	rid := tr.fresh("rid")
	base := df.WithColumn(rid, snowpark.Seq8())
	inner := base

	var orderSpecs []snowpark.OrderSpec
	for _, c := range f.Clauses {
		switch cl := c.(type) {
		case *jsoniq.ForClause:
			if _, ok := cl.In.(*jsoniq.Collection); ok {
				return snowpark.Column{}, nil, fmt.Errorf("core: nested queries over collections are not supported; hoist the collection into an outer for clause")
			}
			col, ndf, err := tr.expr(inner, cl.In)
			if err != nil {
				return snowpark.Column{}, nil, err
			}
			alias := tr.fresh("f")
			inner = ndf.Flatten(col, alias, cl.AllowEmpty)
			inner = inner.WithColumn(cl.Var, snowpark.FlattenValue(alias))
			if cl.PosVar != "" {
				inner = inner.WithColumn(cl.PosVar, snowpark.FlattenIndex(alias).Add(snowpark.LitInt(1)))
			}
		case *jsoniq.LetClause:
			col, ndf, err := tr.expr(inner, cl.Expr)
			if err != nil {
				return snowpark.Column{}, nil, err
			}
			inner = ndf.WithColumn(cl.Var, col)
		case *jsoniq.WhereClause:
			col, ndf, err := tr.expr(inner, cl.Cond)
			if err != nil {
				return snowpark.Column{}, nil, err
			}
			inner = ndf.Where(col)
		case *jsoniq.OrderByClause:
			for _, k := range cl.Keys {
				col, ndf, err := tr.expr(inner, k.Expr)
				if err != nil {
					return snowpark.Column{}, nil, err
				}
				name := tr.fresh("ord")
				inner = ndf.WithColumn(name, col)
				if k.Descending {
					orderSpecs = append(orderSpecs, snowpark.Desc(snowpark.Col(name)))
				} else {
					orderSpecs = append(orderSpecs, snowpark.Asc(snowpark.Col(name)))
				}
			}
		default:
			return snowpark.Column{}, nil, fmt.Errorf("core: %s clauses are not supported inside nested queries", c.Kind())
		}
	}

	retCol, inner, err := tr.expr(inner, f.Return)
	if err != nil {
		return snowpark.Column{}, nil, err
	}
	res := tr.fresh("nq")
	aggCol, err := nestedAggregate(kind, retCol, snowpark.CountStar(), orderSpecs)
	if err != nil {
		return snowpark.Column{}, nil, err
	}
	grouped, err := inner.GroupBy(snowpark.Col(rid)).Agg(aggCol.As(res))
	if err != nil {
		return snowpark.Column{}, nil, err
	}
	ridR := tr.fresh("ridr")
	sel, err := grouped.Select(snowpark.Col(rid).As(ridR), snowpark.Col(res).As(res))
	if err != nil {
		return snowpark.Column{}, nil, err
	}
	joined, err := base.Join(sel, snowpark.Col(rid).Eq(snowpark.Col(ridR)), snowpark.JoinLeftOuter)
	if err != nil {
		return snowpark.Column{}, nil, err
	}
	// Objects eliminated inside the nested query resurface with NULL; apply
	// the empty-sequence default per aggregate kind.
	var filled snowpark.Column
	switch kind {
	case aggArray:
		filled = snowpark.Coalesce(snowpark.Col(res), snowpark.ArrayConstruct())
	case aggCount:
		filled = snowpark.Coalesce(snowpark.Col(res), snowpark.LitInt(0))
	default:
		filled = snowpark.Col(res)
	}
	joined = joined.WithColumn(res, filled)
	return snowpark.Col(res), joined, nil
}

// nestedAggregate builds the re-aggregation column. countCol is the
// strategy-specific row counter (COUNT_IF(keep) vs COUNT(*)).
func nestedAggregate(kind aggKind, value, countCol snowpark.Column, orderSpecs []snowpark.OrderSpec) (snowpark.Column, error) {
	switch kind {
	case aggArray:
		if len(orderSpecs) > 0 {
			return snowpark.ArrayAggOrdered(value, orderSpecs...), nil
		}
		return snowpark.ArrayAgg(value), nil
	case aggCount:
		return countCol, nil
	case aggSum:
		return snowpark.Sum(value), nil
	case aggAvg:
		return snowpark.Avg(value), nil
	case aggMin:
		return snowpark.Min(value), nil
	case aggMax:
		return snowpark.Max(value), nil
	}
	return snowpark.Column{}, fmt.Errorf("core: unknown aggregate kind %d", kind)
}
