package core

import (
	"sort"
	"strings"
	"testing"

	"jsonpark/internal/engine"
	"jsonpark/internal/jsoniq"
	"jsonpark/internal/runtime"
	"jsonpark/internal/snowpark"
	"jsonpark/internal/variant"
)

var adlRows = []string{
	`{"EVENT": 1, "MET": {"pt": 10.5}, "HLT": {"IsoMu24": true}, "Muon": [{"pt": 30.0, "eta": 0.5, "phi": 0.1, "charge": 1}, {"pt": 5.0, "eta": -1.5, "phi": 2.0, "charge": -1}], "Jet": [{"pt": 45.0, "eta": 0.9}, {"pt": 12.0, "eta": 2.2}]}`,
	`{"EVENT": 2, "MET": {"pt": 20.0}, "HLT": {"IsoMu24": false}, "Muon": [], "Jet": []}`,
	`{"EVENT": 3, "MET": {"pt": 35.5}, "HLT": {"IsoMu24": true}, "Muon": [{"pt": 50.0, "eta": 0.1, "phi": -1.0, "charge": -1}], "Jet": [{"pt": 60.0, "eta": -0.4}]}`,
	`{"EVENT": 4, "MET": {"pt": 40.0}, "HLT": {"IsoMu24": false}, "Muon": [{"pt": 8.0, "eta": 1.0, "phi": 0.0, "charge": 1}, {"pt": 9.0, "eta": 1.2, "phi": 0.5, "charge": 1}, {"pt": 60.0, "eta": -0.2, "phi": 1.5, "charge": -1}], "Jet": [{"pt": 41.0, "eta": 0.0}, {"pt": 42.0, "eta": 0.1}, {"pt": 7.0, "eta": -3.0}]}`,
}

func adlDocs() []variant.Value {
	docs := make([]variant.Value, len(adlRows))
	for i, r := range adlRows {
		docs[i] = variant.MustParseJSON(r)
	}
	return docs
}

func newSession(t *testing.T) *snowpark.Session {
	t.Helper()
	eng := engine.New()
	adl, err := eng.Catalog().CreateTable("adl", []string{"EVENT", "MET", "HLT", "Muon", "Jet"})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range adlDocs() {
		if err := adl.AppendObject(d); err != nil {
			t.Fatal(err)
		}
	}
	lo, err := eng.Catalog().CreateTable("lineorder", []string{"lo_orderdate", "lo_revenue", "lo_discount"})
	if err != nil {
		t.Fatal(err)
	}
	dates, err := eng.Catalog().CreateTable("date", []string{"d_datekey", "d_year"})
	if err != nil {
		t.Fatal(err)
	}
	loRows := [][]int64{{19940101, 100, 2}, {19940102, 200, 5}, {19950101, 300, 1}, {19940101, 400, 7}}
	for _, r := range loRows {
		if err := lo.Append([]variant.Value{variant.Int(r[0]), variant.Int(r[1]), variant.Int(r[2])}); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range [][]int64{{19940101, 1994}, {19940102, 1994}, {19950101, 1995}} {
		if err := dates.Append([]variant.Value{variant.Int(r[0]), variant.Int(r[1])}); err != nil {
			t.Fatal(err)
		}
	}
	return snowpark.NewSession(eng)
}

// runBoth executes the query through the translator (both strategies) and
// the interpreted runtime, requiring identical result multisets.
func runBoth(t *testing.T, src string) []variant.Value {
	t.Helper()
	interp := runtime.New(runtime.ProfileDefault)
	interp.LoadCollection("adl", adlDocs())
	want, err := interp.Run(jsoniq.MustParse(src))
	if err != nil {
		t.Fatalf("interpreted run: %v", err)
	}
	for _, strat := range []Strategy{StrategyKeepFlag, StrategyJoin} {
		sess := newSession(t)
		res, err := Translate(sess, src, Options{Strategy: strat})
		if err != nil {
			t.Fatalf("translate (%v): %v", strat, err)
		}
		got, err := res.DataFrame.Collect()
		if err != nil {
			t.Fatalf("collect (%v): %v\nSQL: %s", strat, err, res.SQL)
		}
		items := make([]variant.Value, len(got.Rows))
		for i, row := range got.Rows {
			items[i] = row[0]
		}
		assertSameItems(t, string(rune('0'+int(strat)))+":"+src, items, want)
	}
	return want
}

// assertSameItems compares two item multisets (order-insensitive, §IV-E).
func assertSameItems(t *testing.T, label string, got, want []variant.Value) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d items, want %d\ngot:  %v\nwant: %v", label, len(got), len(want), got, want)
	}
	g := make([]string, len(got))
	w := make([]string, len(want))
	for i := range got {
		g[i] = got[i].HashKey()
		w[i] = want[i].HashKey()
	}
	sort.Strings(g)
	sort.Strings(w)
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: multiset mismatch\ngot:  %v\nwant: %v", label, got, want)
		}
	}
}

func TestTranslateListing1(t *testing.T) {
	runBoth(t, `for $e in collection("adl")
		for $jet in $e.Jet[]
		where abs($jet.eta) lt 1
		return $jet.pt`)
}

func TestTranslateSimpleProjection(t *testing.T) {
	runBoth(t, `for $e in collection("adl") return $e.MET.pt`)
}

func TestTranslateWhereOnTopLevel(t *testing.T) {
	runBoth(t, `for $e in collection("adl") where $e.HLT.IsoMu24 return $e.EVENT`)
}

func TestTranslateNestedQueryListing4(t *testing.T) {
	// Listing 4: nested query in a let clause; empty arrays and all-fail
	// predicates must NOT eliminate parent objects (§IV-C).
	runBoth(t, `for $e in collection("adl")
		let $filtered := (
			for $m in $e.Muon[]
			where $m.pt gt 10
			return $m.pt
		)
		return {"ev": $e.EVENT, "n": size($filtered), "vals": $filtered}`)
}

func TestTranslateNestedQueryAllFailPredicate(t *testing.T) {
	// Every muon fails: all events must still appear with empty arrays.
	out := runBoth(t, `for $e in collection("adl")
		let $none := (for $m in $e.Muon[] where $m.pt gt 1000 return $m)
		return size($none)`)
	if len(out) != 4 {
		t.Fatalf("expected 4 items, got %v", out)
	}
	for _, v := range out {
		if v.AsInt() != 0 {
			t.Errorf("size = %v, want 0", v)
		}
	}
}

func TestTranslateAggregatesOverNested(t *testing.T) {
	runBoth(t, `for $e in collection("adl")
		return {"ev": $e.EVENT,
			"cnt": count(for $m in $e.Muon[] where $m.charge gt 0 return $m),
			"sum": sum(for $m in $e.Muon[] return $m.pt),
			"mx": max(for $m in $e.Muon[] return $m.pt)}`)
}

func TestTranslateExistsEmpty(t *testing.T) {
	runBoth(t, `for $e in collection("adl")
		where exists(for $m in $e.Muon[] where $m.pt gt 40 return $m)
		return $e.EVENT`)
	runBoth(t, `for $e in collection("adl")
		where empty($e.Muon[])
		return $e.EVENT`)
}

func TestTranslateGroupByHistogram(t *testing.T) {
	runBoth(t, `for $e in collection("adl")
		group by $bin := floor($e.MET.pt div 20.0)
		order by $bin
		return {"bin": $bin, "count": count($e)}`)
}

func TestTranslateGroupByAggregateDetection(t *testing.T) {
	sess := newSession(t)
	res, err := Translate(sess, `for $e in collection("adl")
		group by $bin := floor($e.MET.pt div 20.0)
		return {"bin": $bin, "count": count($e), "sum": sum($e.MET.pt)}`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate detection must avoid ARRAY_AGG of whole events.
	if strings.Contains(res.SQL, "ARRAY_AGG") {
		t.Errorf("expected native aggregates, found ARRAY_AGG:\n%s", res.SQL)
	}
	if !strings.Contains(res.SQL, "COUNT(") || !strings.Contains(res.SQL, "SUM(") {
		t.Errorf("expected COUNT and SUM in SQL:\n%s", res.SQL)
	}
}

func TestTranslateOrderByAndPositional(t *testing.T) {
	// Per-event argmin via ordered nested query + positional access (the Q6
	// pattern): highest-pt muon per event.
	runBoth(t, `for $e in collection("adl")
		where exists($e.Muon[])
		let $best := (for $m in $e.Muon[] order by $m.pt descending return $m.pt)[[1]]
		return {"ev": $e.EVENT, "best": $best}`)
}

func TestTranslateRangeFor(t *testing.T) {
	runBoth(t, `for $e in collection("adl")
		let $n := size($e.Muon)
		let $pairs := (
			for $i in 1 to $n
			for $j in 1 to $n
			where $i lt $j
			return $e.Muon[[$i]].pt + $e.Muon[[$j]].pt
		)
		return {"ev": $e.EVENT, "npairs": size($pairs)}`)
}

func TestTranslateJoinAcrossCollections(t *testing.T) {
	src := `for $l in collection("lineorder"), $d in collection("date")
		where $l.lo_orderdate eq $d.d_datekey and $d.d_year eq 1994
		return $l.lo_revenue`
	sess := newSession(t)
	res, err := Translate(sess, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.DataFrame.Collect()
	if err != nil {
		t.Fatalf("%v\nSQL: %s", err, res.SQL)
	}
	if len(got.Rows) != 3 {
		t.Fatalf("rows = %v", got.Rows)
	}
	// The optimizer must execute this as a hash join, not a nested loop.
	plan, err := sess.Engine().Explain(res.SQL)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "INNER Join keys=1") {
		t.Errorf("expected hash equi-join:\n%s", plan)
	}
}

func TestTranslateTopLevelAggregate(t *testing.T) {
	src := `sum(for $l in collection("lineorder")
		where $l.lo_discount ge 2 and $l.lo_discount le 5
		return $l.lo_revenue * $l.lo_discount)`
	sess := newSession(t)
	res, err := Translate(sess, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.DataFrame.Collect()
	if err != nil {
		t.Fatalf("%v\nSQL: %s", err, res.SQL)
	}
	if len(got.Rows) != 1 || got.Rows[0][0].AsInt() != 100*2+200*5 {
		t.Fatalf("sum = %v", got.Rows)
	}
}

func TestTranslateIfAndArithmetic(t *testing.T) {
	runBoth(t, `for $e in collection("adl")
		return if ($e.MET.pt gt 20) then $e.MET.pt * 2 else -$e.MET.pt`)
}

func TestTranslateObjectAndArrayConstructors(t *testing.T) {
	runBoth(t, `for $e in collection("adl")
		return {"id": $e.EVENT, "pair": [$e.MET.pt, $e.MET.pt + 1]}`)
}

func TestTranslateDeepNesting(t *testing.T) {
	// Nested query inside a nested query.
	runBoth(t, `for $e in collection("adl")
		let $perMuon := (
			for $m in $e.Muon[]
			return count(for $j in $e.Jet[] where $j.pt gt $m.pt return $j)
		)
		return {"ev": $e.EVENT, "c": $perMuon}`)
}

func TestTranslateMathFunctions(t *testing.T) {
	runBoth(t, `for $e in collection("adl")
		for $m in $e.Muon[]
		return sqrt($m.pt * $m.pt) + cos($m.phi) + sinh($m.eta)`)
}

func TestKeepFlagVsJoinSQLShapes(t *testing.T) {
	src := `for $e in collection("adl")
		let $f := (for $m in $e.Muon[] where $m.pt gt 10 return $m)
		return size($f)`
	sess := newSession(t)
	keep, err := Translate(sess, src, Options{Strategy: StrategyKeepFlag})
	if err != nil {
		t.Fatal(err)
	}
	join, err := Translate(sess, src, Options{Strategy: StrategyJoin})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(keep.SQL, "OUTER => TRUE") {
		t.Errorf("keep-flag SQL should use outer flatten:\n%s", keep.SQL)
	}
	if !strings.Contains(join.SQL, "LEFT OUTER JOIN") {
		t.Errorf("join SQL should contain a left outer join:\n%s", join.SQL)
	}
	if strings.Contains(join.SQL, "OUTER => TRUE") {
		t.Errorf("join strategy should flatten inner (proactive elimination):\n%s", join.SQL)
	}
}

func TestTranslationCensusPopulated(t *testing.T) {
	sess := newSession(t)
	res, err := Translate(sess, `for $e in collection("adl")
		for $jet in $e.Jet[]
		where abs($jet.eta) lt 1
		return $jet.pt`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Census
	if c.FLWOR != 3 { // for, for+where chained under return = 2 fors + where + return = 4? counted below
		// The query has clauses: for, for, where, return → 4 FLWOR iterators.
		if c.FLWOR != 4 {
			t.Errorf("FLWOR iterators = %d", c.FLWOR)
		}
	}
	if c.Other == 0 || c.Total() != c.FLWOR+c.Other {
		t.Errorf("census = %+v", c)
	}
}

func TestTranslateErrors(t *testing.T) {
	sess := newSession(t)
	bad := []string{
		`1 + 2`,                      // not a FLWOR
		`for $x in 1 to 3 return $x`, // first for must read a collection
		`for $e in collection("missing") return $e`,                                      // unknown table
		`for $e in collection("adl") return frobnicate($e)`,                              // unknown function
		`for $e in collection("adl") count $c group by $q := 1 return collection("adl")`, // collection in expr
	}
	for _, src := range bad {
		if _, err := Translate(sess, src, Options{}); err == nil {
			t.Errorf("Translate(%q) succeeded, want error", src)
		}
	}
}

func TestTranslateAllowingEmpty(t *testing.T) {
	runBoth(t, `for $e in collection("adl")
		for $m allowing empty in $e.Muon[]
		return $e.EVENT`)
}

func TestTranslateLetChain(t *testing.T) {
	runBoth(t, `for $e in collection("adl")
		let $a := $e.MET.pt
		let $b := $a * 2
		let $c := $b + $a
		return $c`)
}

func TestTranslateSumOverArrayValue(t *testing.T) {
	// sum over a let-bound array (synthetic FLWOR wrapping).
	runBoth(t, `for $e in collection("adl")
		let $pts := (for $m in $e.Muon[] return $m.pt)
		return sum($pts)`)
}
