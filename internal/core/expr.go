package core

import (
	"fmt"

	"jsonpark/internal/jsoniq"
	"jsonpark/internal/snowpark"
)

// expr translates a non-FLWOR expression into a Column, mirroring the
// processNativeSnowflake method of non-FLWOR iterators (§III-B1, Listing 2).
// Expressions hosting nested queries return an updated DataFrame alongside
// the Column (§IV-D); all other cases thread the incoming DataFrame through
// unchanged.
func (tr *translator) expr(df *snowpark.DataFrame, e jsoniq.Expr) (snowpark.Column, *snowpark.DataFrame, error) {
	switch x := e.(type) {
	case *jsoniq.Literal:
		return snowpark.Lit(x.Value), df, nil
	case *jsoniq.VarRef:
		return colByName(x.Name), df, nil
	case *jsoniq.Collection:
		return snowpark.Column{}, nil, fmt.Errorf("core: collection(%q) is only allowed in for clauses", x.Name)
	case *jsoniq.FieldAccess:
		if vr, ok := x.Base.(*jsoniq.VarRef); ok {
			if cols, known := tr.tableVars[vr.Name]; known {
				for _, c := range cols {
					if c == x.Field {
						return snowpark.Col(vr.Name + "." + x.Field), df, nil
					}
				}
			}
		}
		base, df2, err := tr.expr(df, x.Base)
		if err != nil {
			return snowpark.Column{}, nil, err
		}
		return base.SubField(x.Field), df2, nil
	case *jsoniq.ArrayUnbox:
		// In expression position the unboxed members behave as the array
		// value itself; iteration happens in for clauses and aggregates.
		return tr.expr(df, x.Base)
	case *jsoniq.ArrayIndex:
		base, df2, err := tr.expr(df, x.Base)
		if err != nil {
			return snowpark.Column{}, nil, err
		}
		idx, df3, err := tr.expr(df2, x.Index)
		if err != nil {
			return snowpark.Column{}, nil, err
		}
		// JSONiq positions are 1-based; GET is 0-based.
		return snowpark.Get(base, idx.Sub(snowpark.LitInt(1))), df3, nil
	case *jsoniq.ObjectCtor:
		pairs := make([]any, 0, 2*len(x.Keys))
		cur := df
		for i, k := range x.Keys {
			col, ndf, err := tr.expr(cur, x.Values[i])
			if err != nil {
				return snowpark.Column{}, nil, err
			}
			cur = ndf
			pairs = append(pairs, k, col)
		}
		return snowpark.ObjectConstruct(pairs...), cur, nil
	case *jsoniq.ArrayCtor:
		cols := make([]snowpark.Column, len(x.Items))
		cur := df
		for i, it := range x.Items {
			col, ndf, err := tr.expr(cur, it)
			if err != nil {
				return snowpark.Column{}, nil, err
			}
			cur = ndf
			cols[i] = col
		}
		return snowpark.ArrayConstruct(cols...), cur, nil
	case *jsoniq.Binary:
		return tr.binary(df, x)
	case *jsoniq.Unary:
		o, df2, err := tr.expr(df, x.Operand)
		if err != nil {
			return snowpark.Column{}, nil, err
		}
		if x.Op == "not" {
			return o.Not(), df2, nil
		}
		return o.Neg(), df2, nil
	case *jsoniq.If:
		cond, df2, err := tr.expr(df, x.Cond)
		if err != nil {
			return snowpark.Column{}, nil, err
		}
		then, df3, err := tr.expr(df2, x.Then)
		if err != nil {
			return snowpark.Column{}, nil, err
		}
		els, df4, err := tr.expr(df3, x.Else)
		if err != nil {
			return snowpark.Column{}, nil, err
		}
		return snowpark.Iff(cond, then, els), df4, nil
	case *jsoniq.FunctionCall:
		return tr.functionCall(df, x)
	case *jsoniq.FLWOR:
		// A nested query in expression position produces an array column
		// (transparent re-aggregation, §IV-B).
		return tr.nestedQuery(df, x, aggArray)
	}
	return snowpark.Column{}, nil, fmt.Errorf("core: cannot translate expression %T", e)
}

func (tr *translator) binary(df *snowpark.DataFrame, x *jsoniq.Binary) (snowpark.Column, *snowpark.DataFrame, error) {
	l, df2, err := tr.expr(df, x.Left)
	if err != nil {
		return snowpark.Column{}, nil, err
	}
	r, df3, err := tr.expr(df2, x.Right)
	if err != nil {
		return snowpark.Column{}, nil, err
	}
	switch x.Op {
	case jsoniq.OpAdd:
		return l.Add(r), df3, nil
	case jsoniq.OpSub:
		return l.Sub(r), df3, nil
	case jsoniq.OpMul:
		return l.Mul(r), df3, nil
	case jsoniq.OpDiv:
		return l.Div(r), df3, nil
	case jsoniq.OpIDiv:
		return snowpark.Call("TRUNC", l.Div(r)).Cast("NUMBER"), df3, nil
	case jsoniq.OpMod:
		return l.Mod(r), df3, nil
	case jsoniq.OpEq:
		return l.Eq(r), df3, nil
	case jsoniq.OpNe:
		return l.Ne(r), df3, nil
	case jsoniq.OpLt:
		return l.Lt(r), df3, nil
	case jsoniq.OpLe:
		return l.Le(r), df3, nil
	case jsoniq.OpGt:
		return l.Gt(r), df3, nil
	case jsoniq.OpGe:
		return l.Ge(r), df3, nil
	case jsoniq.OpAnd:
		return l.And(r), df3, nil
	case jsoniq.OpOr:
		return l.Or(r), df3, nil
	case jsoniq.OpConcat:
		return l.Concat(r), df3, nil
	case jsoniq.OpTo:
		// `a to b` is the inclusive integer range; ARRAY_RANGE is [lo, hi).
		return snowpark.ArrayRange(l, r.Add(snowpark.LitInt(1))), df3, nil
	}
	return snowpark.Column{}, nil, fmt.Errorf("core: unsupported operator %s", x.Op)
}

// scalarFunctions maps plain JSONiq builtins onto SQL scalar functions.
var scalarFunctions = map[string]string{
	"abs": "ABS", "sqrt": "SQRT", "exp": "EXP", "log": "LN",
	"floor": "FLOOR", "ceiling": "CEIL", "round": "ROUND",
	"sin": "SIN", "cos": "COS", "tan": "TAN",
	"asin": "ASIN", "acos": "ACOS", "atan": "ATAN", "atan2": "ATAN2",
	"sinh": "SINH", "cosh": "COSH", "tanh": "TANH",
	"pow": "POWER", "power": "POWER", "pi": "PI",
	"string": "TO_VARCHAR", "number": "TO_DOUBLE", "double": "TO_DOUBLE",
	"integer": "TO_NUMBER",
}

func (tr *translator) functionCall(df *snowpark.DataFrame, x *jsoniq.FunctionCall) (snowpark.Column, *snowpark.DataFrame, error) {
	if name, ok := scalarFunctions[x.Name]; ok {
		cols := make([]snowpark.Column, len(x.Args))
		cur := df
		for i, a := range x.Args {
			col, ndf, err := tr.expr(cur, a)
			if err != nil {
				return snowpark.Column{}, nil, err
			}
			cur = ndf
			cols[i] = col
		}
		return snowpark.Call(name, cols...), cur, nil
	}
	switch x.Name {
	case "not":
		if len(x.Args) != 1 {
			return snowpark.Column{}, nil, fmt.Errorf("core: not() takes one argument")
		}
		col, df2, err := tr.expr(df, x.Args[0])
		if err != nil {
			return snowpark.Column{}, nil, err
		}
		// JSONiq's effective boolean value treats NULL as false, so NOT must
		// map NULL to TRUE rather than propagate it.
		return snowpark.Iff(col, snowpark.LitBool(false), snowpark.LitBool(true)), df2, nil
	case "boolean":
		if len(x.Args) != 1 {
			return snowpark.Column{}, nil, fmt.Errorf("core: boolean() takes one argument")
		}
		col, df2, err := tr.expr(df, x.Args[0])
		if err != nil {
			return snowpark.Column{}, nil, err
		}
		return snowpark.Iff(col, snowpark.LitBool(true), snowpark.LitBool(false)), df2, nil
	case "concat":
		if len(x.Args) != 2 {
			return snowpark.Column{}, nil, fmt.Errorf("core: concat() takes two array arguments")
		}
		a, df2, err := tr.expr(df, x.Args[0])
		if err != nil {
			return snowpark.Column{}, nil, err
		}
		b, df3, err := tr.expr(df2, x.Args[1])
		if err != nil {
			return snowpark.Column{}, nil, err
		}
		return snowpark.ArrayCat(a, b), df3, nil
	case "size":
		if len(x.Args) != 1 {
			return snowpark.Column{}, nil, fmt.Errorf("core: size() takes one argument")
		}
		col, df2, err := tr.expr(df, x.Args[0])
		if err != nil {
			return snowpark.Column{}, nil, err
		}
		return snowpark.ArraySize(col), df2, nil
	case "head":
		if len(x.Args) != 1 {
			return snowpark.Column{}, nil, fmt.Errorf("core: head() takes one argument")
		}
		col, df2, err := tr.expr(df, x.Args[0])
		if err != nil {
			return snowpark.Column{}, nil, err
		}
		return snowpark.Get(col, snowpark.LitInt(0)), df2, nil
	case "count", "sum", "avg", "min", "max", "exists", "empty":
		return tr.aggregateCall(df, x)
	}
	return snowpark.Column{}, nil, fmt.Errorf("core: unknown function %s()", x.Name)
}

// aggregateCall translates aggregates over sequences. When the argument is a
// nested FLWOR, the re-aggregation of the nested query uses the native SQL
// aggregate directly; otherwise array-valued arguments are wrapped into a
// synthetic FLWOR so the same machinery applies. count()/exists()/empty()
// over plain arrays avoid the detour via ARRAY_SIZE.
func (tr *translator) aggregateCall(df *snowpark.DataFrame, x *jsoniq.FunctionCall) (snowpark.Column, *snowpark.DataFrame, error) {
	if len(x.Args) != 1 {
		return snowpark.Column{}, nil, fmt.Errorf("core: %s() takes one argument", x.Name)
	}
	arg := x.Args[0]
	kind := map[string]aggKind{
		"count": aggCount, "sum": aggSum, "avg": aggAvg,
		"min": aggMin, "max": aggMax, "exists": aggCount, "empty": aggCount,
	}[x.Name]

	if fl, ok := arg.(*jsoniq.FLWOR); ok {
		col, df2, err := tr.nestedQuery(df, fl, kind)
		if err != nil {
			return snowpark.Column{}, nil, err
		}
		return finishAggregate(x.Name, col), df2, nil
	}

	// Plain arguments: arrays count their members (ARRAY_SIZE), NULL is the
	// empty sequence, and any other item is a singleton.
	switch x.Name {
	case "count", "exists", "empty":
		col, df2, err := tr.expr(df, arg)
		if err != nil {
			return snowpark.Column{}, nil, err
		}
		n := snowpark.CaseWhen(col.IsNull(), snowpark.LitInt(0)).
			When(snowpark.Call("IS_ARRAY", col), snowpark.ArraySize(col)).
			Else(snowpark.LitInt(1))
		return finishAggregate(x.Name, n), df2, nil
	}

	// min/max/sum over a fixed-size array constructor compose scalar
	// functions directly instead of unboxing and re-aggregating.
	if ctor, ok := arg.(*jsoniq.ArrayCtor); ok && len(ctor.Items) > 0 {
		cols := make([]snowpark.Column, len(ctor.Items))
		cur := df
		for i, it := range ctor.Items {
			col, ndf, err := tr.expr(cur, it)
			if err != nil {
				return snowpark.Column{}, nil, err
			}
			cur = ndf
			cols[i] = col
		}
		switch x.Name {
		case "max":
			return snowpark.Greatest(cols...), cur, nil
		case "min":
			return snowpark.Least(cols...), cur, nil
		case "sum":
			acc := snowpark.Coalesce(cols[0], snowpark.LitInt(0))
			for _, c := range cols[1:] {
				acc = acc.Add(snowpark.Coalesce(c, snowpark.LitInt(0)))
			}
			return acc, cur, nil
		}
	}

	// sum/avg/min/max over an array: wrap into `for $#x in arg return $#x`.
	v := tr.fresh("agg")
	synth := &jsoniq.FLWOR{
		Clauses: []jsoniq.Clause{&jsoniq.ForClause{Var: v, In: arg}},
		Return:  &jsoniq.VarRef{Name: v},
	}
	col, df2, err := tr.nestedQuery(df, synth, kind)
	if err != nil {
		return snowpark.Column{}, nil, err
	}
	return finishAggregate(x.Name, col), df2, nil
}

// finishAggregate applies the final adjustment per JSONiq semantics:
// exists/empty compare the count, sum of the empty sequence is 0.
func finishAggregate(name string, col snowpark.Column) snowpark.Column {
	switch name {
	case "exists":
		return col.Gt(snowpark.LitInt(0))
	case "empty":
		return col.Eq(snowpark.LitInt(0))
	case "sum":
		return snowpark.Coalesce(col, snowpark.LitInt(0))
	}
	return col
}
