package core

import (
	"fmt"
	"strings"

	"jsonpark/internal/jsoniq"
	"jsonpark/internal/snowpark"
)

// clauseContext threads the DataFrame through the outermost FLWOR's clause
// chain (§III-B2): each clause iterator consumes the DataFrame of the
// preceding clause (left child) and the Column of its subexpression (right
// child), producing the next DataFrame.
type clauseContext struct {
	tr      *translator
	df      *snowpark.DataFrame
	vars    []string        // JSONiq variables currently in scope (column names)
	nonNull map[string]bool // variables that can never be NULL
}

func (ctx *clauseContext) bind(name string) {
	for _, v := range ctx.vars {
		if v == name {
			return
		}
	}
	ctx.vars = append(ctx.vars, name)
}

func (ctx *clauseContext) markNonNull(name string) {
	if ctx.nonNull == nil {
		ctx.nonNull = make(map[string]bool)
	}
	ctx.nonNull[name] = true
}

func (ctx *clauseContext) apply(c jsoniq.Clause) error {
	switch cl := c.(type) {
	case *jsoniq.ForClause:
		return ctx.applyFor(cl)
	case *jsoniq.LetClause:
		col, df, err := ctx.tr.expr(ctx.df, cl.Expr)
		if err != nil {
			return err
		}
		ctx.df = df.WithColumn(cl.Var, col)
		ctx.bind(cl.Var)
		return nil
	case *jsoniq.WhereClause:
		col, df, err := ctx.tr.expr(ctx.df, cl.Cond)
		if err != nil {
			return err
		}
		ctx.df = df.Where(col)
		return nil
	case *jsoniq.OrderByClause:
		specs := make([]snowpark.OrderSpec, 0, len(cl.Keys))
		df := ctx.df
		for _, k := range cl.Keys {
			var col snowpark.Column
			var err error
			col, df, err = ctx.tr.expr(df, k.Expr)
			if err != nil {
				return err
			}
			if k.Descending {
				specs = append(specs, snowpark.Desc(col))
			} else {
				specs = append(specs, snowpark.Asc(col))
			}
		}
		ctx.df = df.Sort(specs...)
		return nil
	case *jsoniq.CountClause:
		if ctx.df == nil {
			return fmt.Errorf("core: count clause before any for clause")
		}
		// The engine's projection preserves row order, so a sequence column
		// yields 1-based positions of the current tuple stream.
		ctx.df = ctx.df.WithColumn(cl.Var, snowpark.Seq8().Add(snowpark.LitInt(1)))
		ctx.bind(cl.Var)
		return nil
	}
	return fmt.Errorf("core: unsupported clause %T", c)
}

func (ctx *clauseContext) applyFor(cl *jsoniq.ForClause) error {
	if coll, ok := cl.In.(*jsoniq.Collection); ok {
		objDF, err := ctx.tr.collectionFrame(coll.Name, cl.Var)
		if err != nil {
			return err
		}
		if ctx.df == nil {
			ctx.df = objDF
		} else {
			// Successive for clauses over different collections express
			// joins (§II-E); the optimizer turns the cross join plus a
			// where-equality into a hash equi-join.
			joined, err := ctx.df.CrossJoin(objDF)
			if err != nil {
				return err
			}
			ctx.df = joined
		}
		ctx.bind(cl.Var)
		ctx.markNonNull(cl.Var)
		if cl.PosVar != "" {
			ctx.df = ctx.df.WithColumn(cl.PosVar, snowpark.Seq8().Add(snowpark.LitInt(1)))
			ctx.bind(cl.PosVar)
			ctx.markNonNull(cl.PosVar)
		}
		return nil
	}
	if ctx.df == nil {
		return fmt.Errorf("core: the first for clause must read a collection")
	}
	col, df, err := ctx.tr.expr(ctx.df, cl.In)
	if err != nil {
		return err
	}
	alias := ctx.tr.fresh("f")
	ctx.df = df.Flatten(col, alias, cl.AllowEmpty)
	ctx.df = ctx.df.WithColumn(cl.Var, snowpark.FlattenValue(alias))
	ctx.bind(cl.Var)
	if !cl.AllowEmpty {
		ctx.markNonNull(cl.Var)
	}
	if cl.PosVar != "" {
		ctx.df = ctx.df.WithColumn(cl.PosVar,
			snowpark.FlattenIndex(alias).Add(snowpark.LitInt(1)))
		ctx.bind(cl.PosVar)
	}
	return nil
}

// collectionFrame wraps a stored table as a DataFrame binding the variable:
// one column holds each row as an object (for whole-item uses such as
// `return $e`), and one passthrough column per table column ("e.Jet")
// serves direct field access prunably. The engine's
// GET(OBJECT_CONSTRUCT(...)) folding covers the remaining object uses.
func (tr *translator) collectionFrame(table, varName string) (*snowpark.DataFrame, error) {
	df, err := tr.sess.Table(table)
	if err != nil {
		return nil, err
	}
	cols := df.Columns()
	items := make([]snowpark.Column, 0, len(cols)+1)
	pairs := make([]any, 0, 2*len(cols))
	for _, c := range cols {
		items = append(items, snowpark.Col(c).As(varName+"."+c))
		pairs = append(pairs, c, snowpark.Col(c))
	}
	items = append(items, snowpark.ObjectConstruct(pairs...).As(varName))
	if tr.tableVars == nil {
		tr.tableVars = make(map[string][]string)
	}
	tr.tableVars[varName] = cols
	return df.Select(items...)
}

// applyGroupBy translates a group by clause. Grouping keys become columns;
// aggregate calls over non-grouping variables in the remaining clauses and
// the return expression are detected and mapped to native SQL aggregates;
// any other referenced non-grouping variable is re-aggregated with
// ARRAY_AGG, per JSONiq's sequence semantics.
func (ctx *clauseContext) applyGroupBy(gb *jsoniq.GroupByClause, rest []jsoniq.Clause, ret jsoniq.Expr) ([]jsoniq.Clause, jsoniq.Expr, error) {
	if ctx.df == nil {
		return nil, nil, fmt.Errorf("core: group by before any for clause")
	}
	tr := ctx.tr
	df := ctx.df

	keyCols := make([]snowpark.Column, 0, len(gb.Keys))
	grouped := make(map[string]bool, len(gb.Keys))
	for _, k := range gb.Keys {
		grouped[k.Var] = true
		if k.Expr == nil {
			keyCols = append(keyCols, snowpark.Col(k.Var).As(k.Var))
			continue
		}
		col, ndf, err := tr.expr(df, k.Expr)
		if err != nil {
			return nil, nil, err
		}
		df = ndf
		keyCols = append(keyCols, col.As(k.Var))
	}

	nonGrouping := make(map[string]bool)
	for _, v := range ctx.vars {
		if !grouped[v] {
			nonGrouping[v] = true
		}
	}

	// Aggregate detection: rewrite count($v...)/sum/avg/min/max into
	// synthetic variables backed by SQL aggregates.
	rw := &groupAggRewriter{tr: tr, nonGrouping: nonGrouping, nonNull: ctx.nonNull}
	newRest := make([]jsoniq.Clause, len(rest))
	for i, c := range rest {
		nc, err := rw.rewriteClause(c)
		if err != nil {
			return nil, nil, err
		}
		newRest[i] = nc
	}
	newRet, err := rw.rewriteExpr(ret)
	if err != nil {
		return nil, nil, err
	}

	var aggCols []snowpark.Column
	for _, spec := range rw.specs {
		if spec.star {
			aggCols = append(aggCols, snowpark.CountStar().As(spec.name))
			continue
		}
		argCol, ndf, err := tr.expr(df, spec.arg)
		if err != nil {
			return nil, nil, err
		}
		df = ndf
		col, err := applyGlobalAggregate(spec.agg, argCol)
		if err != nil {
			return nil, nil, err
		}
		aggCols = append(aggCols, col.As(spec.name))
	}

	// Non-grouping variables still referenced after the rewrite become
	// arrays of their per-tuple values.
	var arrayVars []string
	for v := range nonGrouping {
		used := false
		for _, c := range newRest {
			if clauseUsesVar(c, v) {
				used = true
				break
			}
		}
		if !used {
			used = exprUsesVar(newRet, v)
		}
		if used {
			arrayVars = append(arrayVars, v)
		}
	}
	// Deterministic ordering for stable SQL output.
	sortStrings(arrayVars)
	for _, v := range arrayVars {
		aggCols = append(aggCols, snowpark.ArrayAgg(colByName(v)).As(v))
	}
	if len(aggCols) == 0 {
		aggCols = append(aggCols, snowpark.CountStar().As(tr.fresh("cnt")))
	}

	out, err := df.GroupBy(keyCols...).Agg(aggCols...)
	if err != nil {
		return nil, nil, err
	}
	ctx.df = out
	ctx.vars = nil
	for _, k := range gb.Keys {
		ctx.bind(k.Var)
	}
	for _, v := range arrayVars {
		ctx.bind(v)
		// Grouped variables now hold arrays; their passthrough columns are
		// gone, so field access must fall back to GET semantics.
		delete(tr.tableVars, v)
	}
	for v := range nonGrouping {
		delete(tr.tableVars, v)
	}
	return newRest, newRet, nil
}

// colByName rebuilds a column reference, restoring the qualification of
// flatten pseudo-columns like "f3.VALUE".
func colByName(name string) snowpark.Column {
	if strings.HasSuffix(name, ".VALUE") {
		return snowpark.FlattenValue(strings.TrimSuffix(name, ".VALUE"))
	}
	if strings.HasSuffix(name, ".INDEX") {
		return snowpark.FlattenIndex(strings.TrimSuffix(name, ".INDEX"))
	}
	return snowpark.Col(name)
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func clauseUsesVar(c jsoniq.Clause, name string) bool {
	switch cl := c.(type) {
	case *jsoniq.ForClause:
		return exprUsesVar(cl.In, name)
	case *jsoniq.LetClause:
		return exprUsesVar(cl.Expr, name)
	case *jsoniq.WhereClause:
		return exprUsesVar(cl.Cond, name)
	case *jsoniq.GroupByClause:
		for _, k := range cl.Keys {
			if k.Expr == nil && k.Var == name {
				return true
			}
			if k.Expr != nil && exprUsesVar(k.Expr, name) {
				return true
			}
		}
	case *jsoniq.OrderByClause:
		for _, k := range cl.Keys {
			if exprUsesVar(k.Expr, name) {
				return true
			}
		}
	}
	return false
}

func exprUsesVar(e jsoniq.Expr, name string) bool {
	found := false
	jsoniq.Walk(e, func(n jsoniq.Expr) bool {
		if v, ok := n.(*jsoniq.VarRef); ok && v.Name == name {
			found = true
			return false
		}
		return !found
	})
	return found
}
