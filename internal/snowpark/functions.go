package snowpark

import (
	"jsonpark/internal/sqlast"
	"jsonpark/internal/variant"
)

// Functions mirrors Snowpark's static Functions class: free constructors
// composing Columns (Table I of the paper).

// Call invokes any scalar function by name.
func Call(name string, args ...Column) Column {
	exprs := make([]sqlast.Expr, len(args))
	for i, a := range args {
		exprs[i] = a.expr
	}
	return Column{expr: sqlast.F(name, exprs...)}
}

// Math.
func Abs(c Column) Column          { return Call("ABS", c) }
func Sqrt(c Column) Column         { return Call("SQRT", c) }
func Exp(c Column) Column          { return Call("EXP", c) }
func Ln(c Column) Column           { return Call("LN", c) }
func Floor(c Column) Column        { return Call("FLOOR", c) }
func Ceil(c Column) Column         { return Call("CEIL", c) }
func Round(c Column) Column        { return Call("ROUND", c) }
func Sin(c Column) Column          { return Call("SIN", c) }
func Cos(c Column) Column          { return Call("COS", c) }
func Tan(c Column) Column          { return Call("TAN", c) }
func Asin(c Column) Column         { return Call("ASIN", c) }
func Acos(c Column) Column         { return Call("ACOS", c) }
func Atan(c Column) Column         { return Call("ATAN", c) }
func Atan2(y, x Column) Column     { return Call("ATAN2", y, x) }
func Sinh(c Column) Column         { return Call("SINH", c) }
func Cosh(c Column) Column         { return Call("COSH", c) }
func Power(base, p Column) Column  { return Call("POWER", base, p) }
func Square(c Column) Column       { return Call("SQUARE", c) }
func Pi() Column                   { return Call("PI") }
func Greatest(cs ...Column) Column { return Call("GREATEST", cs...) }
func Least(cs ...Column) Column    { return Call("LEAST", cs...) }

// Conditionals and NULL handling.
func Iff(cond, then, els Column) Column { return Call("IFF", cond, then, els) }
func Coalesce(cs ...Column) Column      { return Call("COALESCE", cs...) }
func EqualNull(a, b Column) Column      { return Call("EQUAL_NULL", a, b) }

// CaseWhen starts a searched CASE expression builder.
func CaseWhen(cond, result Column) *CaseBuilder {
	return &CaseBuilder{expr: &sqlast.CaseWhen{
		Whens: []sqlast.WhenClause{{Cond: cond.expr, Result: result.expr}},
	}}
}

// CaseBuilder accumulates WHEN arms.
type CaseBuilder struct {
	expr *sqlast.CaseWhen
}

// When adds another arm.
func (b *CaseBuilder) When(cond, result Column) *CaseBuilder {
	b.expr.Whens = append(b.expr.Whens, sqlast.WhenClause{Cond: cond.expr, Result: result.expr})
	return b
}

// Else finalizes the CASE with a default.
func (b *CaseBuilder) Else(result Column) Column {
	out := *b.expr
	out.Else = result.expr
	return Column{expr: &out}
}

// End finalizes the CASE without a default (NULL otherwise).
func (b *CaseBuilder) End() Column {
	out := *b.expr
	return Column{expr: &out}
}

// Semi-structured constructors and accessors.

// ObjectConstruct builds an object from alternating name literals and value
// columns: ObjectConstruct("a", x, "b", y).
func ObjectConstruct(pairs ...any) Column {
	if len(pairs)%2 != 0 {
		panic("snowpark: ObjectConstruct requires key/value pairs")
	}
	args := make([]sqlast.Expr, 0, len(pairs))
	for i := 0; i < len(pairs); i += 2 {
		key, ok := pairs[i].(string)
		if !ok {
			panic("snowpark: ObjectConstruct keys must be strings")
		}
		val, ok := pairs[i+1].(Column)
		if !ok {
			panic("snowpark: ObjectConstruct values must be Columns")
		}
		args = append(args, sqlast.L(variant.String(key)), val.expr)
	}
	return Column{expr: sqlast.F("OBJECT_CONSTRUCT", args...)}
}

// ArrayConstruct builds an array from columns.
func ArrayConstruct(cs ...Column) Column { return Call("ARRAY_CONSTRUCT", cs...) }

// ArraySize, ArrayCat, ArrayCompact, ArrayRange, ArraySlice wrap the array
// functions.
func ArraySize(c Column) Column            { return Call("ARRAY_SIZE", c) }
func ArrayCat(a, b Column) Column          { return Call("ARRAY_CAT", a, b) }
func ArrayCompact(c Column) Column         { return Call("ARRAY_COMPACT", c) }
func ArrayRange(lo, hi Column) Column      { return Call("ARRAY_RANGE", lo, hi) }
func ArraySlice(c, from, to Column) Column { return Call("ARRAY_SLICE", c, from, to) }

// Get is GET(v, key): field by string, element by 0-based index.
func Get(v, key Column) Column { return Call("GET", v, key) }

// Conversions.
func ToDouble(c Column) Column  { return Call("TO_DOUBLE", c) }
func ToNumber(c Column) Column  { return Call("TO_NUMBER", c) }
func ToVarchar(c Column) Column { return Call("TO_VARCHAR", c) }

// Seq8 yields a distinct integer per row — the row-ID injection primitive
// for nested query handling (§IV-B).
func Seq8() Column { return Call("SEQ8") }

// Aggregates (valid inside GroupBy().Agg or global Agg).

func CountStar() Column {
	return Column{expr: &sqlast.FuncCall{Name: "COUNT", Args: []sqlast.Expr{&sqlast.Star{}}}}
}
func Count(c Column) Column { return Call("COUNT", c) }
func CountDistinct(c Column) Column {
	return Column{expr: &sqlast.FuncCall{Name: "COUNT", Args: []sqlast.Expr{c.expr}, Distinct: true}}
}
func Sum(c Column) Column        { return Call("SUM", c) }
func Avg(c Column) Column        { return Call("AVG", c) }
func Min(c Column) Column        { return Call("MIN", c) }
func Max(c Column) Column        { return Call("MAX", c) }
func AnyValue(c Column) Column   { return Call("ANY_VALUE", c) }
func BoolAndAgg(c Column) Column { return Call("BOOLAND_AGG", c) }
func BoolOrAgg(c Column) Column  { return Call("BOOLOR_AGG", c) }
func CountIf(c Column) Column    { return Call("COUNT_IF", c) }

// ArrayAgg collects non-NULL values into an array.
func ArrayAgg(c Column) Column { return Call("ARRAY_AGG", c) }

// ArrayAggOrdered is ARRAY_AGG(v) WITHIN GROUP (ORDER BY keys...).
func ArrayAggOrdered(c Column, keys ...OrderSpec) Column {
	call := &sqlast.FuncCall{Name: "ARRAY_AGG", Args: []sqlast.Expr{c.expr}}
	for _, k := range keys {
		call.WithinOrder = append(call.WithinOrder, sqlast.OrderItem{Expr: k.col.expr, Desc: k.desc})
	}
	return Column{expr: call}
}

// OrderSpec pairs a sort column with a direction.
type OrderSpec struct {
	col  Column
	desc bool
}

// Asc and Desc build order specifications.
func Asc(c Column) OrderSpec  { return OrderSpec{col: c} }
func Desc(c Column) OrderSpec { return OrderSpec{col: c, desc: true} }
