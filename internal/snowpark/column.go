// Package snowpark is a data-frame client library for the embedded engine,
// modeled on the Snowpark API (§II-D of the paper): DataFrame objects
// lazily encapsulate a fully executable SQL query, Column objects represent
// partial query logic (subexpressions), and the Functions constructors
// compose Columns. No execution happens until Collect; the composed query
// renders to a single native SQL string.
package snowpark

import (
	"jsonpark/internal/sqlast"
	"jsonpark/internal/variant"
)

// Column is a lazily composed SQL subexpression, optionally aliased.
// Column values are immutable: every method returns a new Column.
type Column struct {
	expr  sqlast.Expr
	alias string
}

// Expr exposes the underlying SQL expression.
func (c Column) Expr() sqlast.Expr { return c.expr }

// Name returns the column's alias ("" if unaliased).
func (c Column) Name() string { return c.alias }

// As returns the column with an output alias.
func (c Column) As(alias string) Column { return Column{expr: c.expr, alias: alias} }

// Col references a column of the enclosing DataFrame by name.
func Col(name string) Column { return Column{expr: sqlast.C(name)} }

// Lit embeds a constant.
func Lit(v variant.Value) Column { return Column{expr: sqlast.L(v)} }

// LitInt, LitFloat, LitString and LitBool are convenience literals.
func LitInt(i int64) Column     { return Lit(variant.Int(i)) }
func LitFloat(f float64) Column { return Lit(variant.Float(f)) }
func LitString(s string) Column { return Lit(variant.String(s)) }
func LitBool(b bool) Column     { return Lit(variant.Bool(b)) }
func LitNull() Column           { return Lit(variant.Null) }

// FlattenValue references the VALUE pseudo-column of a FLATTEN alias.
func FlattenValue(alias string) Column {
	return Column{expr: &sqlast.ColRef{Table: alias, Name: "VALUE"}}
}

// FlattenIndex references the INDEX pseudo-column of a FLATTEN alias.
func FlattenIndex(alias string) Column {
	return Column{expr: &sqlast.ColRef{Table: alias, Name: "INDEX"}}
}

func bin(op string, l, r Column) Column {
	return Column{expr: sqlast.B(op, l.expr, r.expr)}
}

// Arithmetic composition.
func (c Column) Add(o Column) Column { return bin("+", c, o) }
func (c Column) Sub(o Column) Column { return bin("-", c, o) }
func (c Column) Mul(o Column) Column { return bin("*", c, o) }
func (c Column) Div(o Column) Column { return bin("/", c, o) }
func (c Column) Mod(o Column) Column { return bin("%", c, o) }

// Comparisons.
func (c Column) Eq(o Column) Column { return bin("=", c, o) }
func (c Column) Ne(o Column) Column { return bin("<>", c, o) }
func (c Column) Lt(o Column) Column { return bin("<", c, o) }
func (c Column) Le(o Column) Column { return bin("<=", c, o) }
func (c Column) Gt(o Column) Column { return bin(">", c, o) }
func (c Column) Ge(o Column) Column { return bin(">=", c, o) }

// Between is lower <= c AND c <= upper.
func (c Column) Between(lower, upper Column) Column {
	return c.Ge(lower).And(c.Le(upper))
}

// Logic.
func (c Column) And(o Column) Column { return bin("AND", c, o) }
func (c Column) Or(o Column) Column  { return bin("OR", c, o) }
func (c Column) Not() Column         { return Column{expr: &sqlast.Unary{Op: "NOT", Operand: c.expr}} }
func (c Column) Neg() Column         { return Column{expr: &sqlast.Unary{Op: "-", Operand: c.expr}} }

// NULL tests.
func (c Column) IsNull() Column { return Column{expr: &sqlast.IsNull{Operand: c.expr}} }
func (c Column) IsNotNull() Column {
	return Column{expr: &sqlast.IsNull{Operand: c.expr, Negate: true}}
}

// SubField accesses a VARIANT object field: GET(c, 'name').
func (c Column) SubField(name string) Column {
	return Column{expr: sqlast.F("GET", c.expr, sqlast.L(variant.String(name)))}
}

// Index accesses a VARIANT array element (0-based): GET(c, i).
func (c Column) Index(i Column) Column {
	return Column{expr: sqlast.F("GET", c.expr, i.expr)}
}

// Cast renders `c :: type`.
func (c Column) Cast(sqlType string) Column {
	return Column{expr: &sqlast.Cast{Operand: c.expr, Type: sqlType}}
}

// Concat is string concatenation `||`.
func (c Column) Concat(o Column) Column { return bin("||", c, o) }
