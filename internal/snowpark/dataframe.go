package snowpark

import (
	"context"
	"fmt"

	"jsonpark/internal/engine"
	"jsonpark/internal/obsv"
	"jsonpark/internal/sqlast"
)

// Session binds DataFrames to an engine instance, mirroring Snowpark's
// Session class.
type Session struct {
	eng *engine.Engine
}

// NewSession wraps an engine.
func NewSession(eng *engine.Engine) *Session { return &Session{eng: eng} }

// Engine exposes the underlying engine (for loading data in tests/tools).
func (s *Session) Engine() *engine.Engine { return s.eng }

// Table returns a DataFrame over a stored table. The session resolves the
// table's column names from the catalog, as Snowpark does.
func (s *Session) Table(name string) (*DataFrame, error) {
	t, err := s.eng.Catalog().Table(name)
	if err != nil {
		return nil, err
	}
	items := make([]sqlast.SelectItem, len(t.Columns))
	for i, c := range t.Columns {
		items[i] = sqlast.SelectItem{Expr: sqlast.C(c), Alias: c}
	}
	return &DataFrame{
		session: s,
		query:   &sqlast.Select{Items: items, From: &sqlast.TableRef{Name: name}},
		cols:    append([]string(nil), t.Columns...),
	}, nil
}

// DataFrame lazily encapsulates a fully executable SQL query (§II-D).
// Transformations return new DataFrames; nothing executes until Collect.
type DataFrame struct {
	session *Session
	query   sqlast.Query
	cols    []string
}

// Columns returns the output column names.
func (df *DataFrame) Columns() []string { return append([]string(nil), df.cols...) }

// SQL renders the single native SQL query this DataFrame represents.
func (df *DataFrame) SQL() string { return sqlast.Render(df.query) }

// Query exposes the underlying SQL AST.
func (df *DataFrame) Query() sqlast.Query { return df.query }

func (df *DataFrame) subquery() *sqlast.SubqueryRef {
	return &sqlast.SubqueryRef{Query: df.query}
}

func (df *DataFrame) derive(q sqlast.Query, cols []string) *DataFrame {
	return &DataFrame{session: df.session, query: q, cols: cols}
}

// outName derives the output name of a projected column.
func outName(c Column) (string, error) {
	if c.alias != "" {
		return c.alias, nil
	}
	if cr, ok := c.expr.(*sqlast.ColRef); ok {
		if cr.Table != "" {
			return cr.Table + "." + cr.Name, nil
		}
		return cr.Name, nil
	}
	return "", fmt.Errorf("snowpark: derived column %s requires an alias (use .As)", sqlast.RenderExpr(c.expr))
}

// Select projects the given columns, like DataFrame.select().
func (df *DataFrame) Select(cols ...Column) (*DataFrame, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("snowpark: Select requires at least one column")
	}
	items := make([]sqlast.SelectItem, len(cols))
	names := make([]string, len(cols))
	for i, c := range cols {
		name, err := outName(c)
		if err != nil {
			return nil, err
		}
		items[i] = sqlast.SelectItem{Expr: c.expr, Alias: name}
		names[i] = name
	}
	return df.derive(&sqlast.Select{Items: items, From: df.subquery()}, names), nil
}

// Where filters rows, like DataFrame.where()/filter().
func (df *DataFrame) Where(cond Column) *DataFrame {
	q := &sqlast.Select{
		Items: []sqlast.SelectItem{{Star: true}},
		From:  df.subquery(),
		Where: cond.expr,
	}
	return df.derive(q, df.cols)
}

// WithColumn appends (or replaces) one derived column, like
// DataFrame.withColumn(). Replacement re-projects explicitly.
func (df *DataFrame) WithColumn(name string, c Column) *DataFrame {
	for _, existing := range df.cols {
		if existing == name {
			// Re-project every column, substituting the replaced one.
			items := make([]sqlast.SelectItem, len(df.cols))
			for i, col := range df.cols {
				if col == name {
					items[i] = sqlast.SelectItem{Expr: c.expr, Alias: name}
				} else {
					items[i] = sqlast.SelectItem{Expr: colRefByName(col), Alias: col}
				}
			}
			return df.derive(&sqlast.Select{Items: items, From: df.subquery()}, df.cols)
		}
	}
	items := []sqlast.SelectItem{{Star: true}, {Expr: c.expr, Alias: name}}
	cols := append(append([]string(nil), df.cols...), name)
	return df.derive(&sqlast.Select{Items: items, From: df.subquery()}, cols)
}

// Drop removes columns, like DataFrame.drop().
func (df *DataFrame) Drop(names ...string) (*DataFrame, error) {
	dropped := make(map[string]bool, len(names))
	for _, n := range names {
		dropped[n] = true
	}
	var items []sqlast.SelectItem
	var cols []string
	for _, c := range df.cols {
		if dropped[c] {
			continue
		}
		items = append(items, sqlast.SelectItem{Expr: colRefByName(c), Alias: c})
		cols = append(cols, c)
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("snowpark: Drop would remove every column")
	}
	return df.derive(&sqlast.Select{Items: items, From: df.subquery()}, cols), nil
}

// colRefByName rebuilds a reference, restoring flatten qualification.
func colRefByName(name string) sqlast.Expr {
	for _, suffix := range []string{".VALUE", ".INDEX"} {
		if len(name) > len(suffix) && name[len(name)-len(suffix):] == suffix {
			return &sqlast.ColRef{Table: name[:len(name)-len(suffix)], Name: suffix[1:]}
		}
	}
	return sqlast.C(name)
}

// Flatten applies LATERAL FLATTEN(INPUT => input [, OUTER => TRUE]) AS alias,
// the array-unboxing primitive (§IV-A). The result gains the pseudo-columns
// "<alias>.VALUE" and "<alias>.INDEX"; reference them with FlattenValue /
// FlattenIndex.
func (df *DataFrame) Flatten(input Column, alias string, outer bool) *DataFrame {
	q := &sqlast.Select{
		Items: []sqlast.SelectItem{{Star: true}},
		From: &sqlast.Flatten{
			Source: df.subquery(),
			Input:  input.expr,
			Outer:  outer,
			Alias:  alias,
		},
	}
	cols := append(append([]string(nil), df.cols...), alias+".VALUE", alias+".INDEX")
	return df.derive(q, cols)
}

// GroupBy starts a grouped aggregation, like DataFrame.groupBy(). Each key
// must be aliasable (plain column or aliased expression).
func (df *DataFrame) GroupBy(keys ...Column) *GroupedFrame {
	return &GroupedFrame{df: df, keys: keys}
}

// GroupedFrame is the intermediate of GroupBy awaiting Agg.
type GroupedFrame struct {
	df   *DataFrame
	keys []Column
}

// Agg finalizes the aggregation: output columns are the keys then the
// aggregates. Every aggregate must be aliased.
func (g *GroupedFrame) Agg(aggs ...Column) (*DataFrame, error) {
	if len(aggs) == 0 {
		return nil, fmt.Errorf("snowpark: Agg requires at least one aggregate")
	}
	var items []sqlast.SelectItem
	var groupBy []sqlast.Expr
	var names []string
	for _, k := range g.keys {
		name, err := outName(k)
		if err != nil {
			return nil, err
		}
		items = append(items, sqlast.SelectItem{Expr: k.expr, Alias: name})
		groupBy = append(groupBy, k.expr)
		names = append(names, name)
	}
	for _, a := range aggs {
		name, err := outName(a)
		if err != nil {
			return nil, err
		}
		items = append(items, sqlast.SelectItem{Expr: a.expr, Alias: name})
		names = append(names, name)
	}
	q := &sqlast.Select{Items: items, From: g.df.subquery(), GroupBy: groupBy}
	return g.df.derive(q, names), nil
}

// Agg performs a global (ungrouped) aggregation.
func (df *DataFrame) Agg(aggs ...Column) (*DataFrame, error) {
	return df.GroupBy().Agg(aggs...)
}

// Join kinds.
const (
	JoinInner     = "INNER"
	JoinLeftOuter = "LEFT OUTER"
	JoinCross     = "CROSS"
)

// Join combines two DataFrames, like DataFrame.join(). For JoinCross, on
// may be the zero Column.
func (df *DataFrame) Join(other *DataFrame, on Column, kind string) (*DataFrame, error) {
	for _, c := range other.cols {
		for _, l := range df.cols {
			if c == l {
				return nil, fmt.Errorf("snowpark: join sides share column name %q; rename before joining", c)
			}
		}
	}
	j := &sqlast.Join{Kind: kind, Left: df.subquery(), Right: other.subquery()}
	if on.expr != nil {
		if kind == JoinCross {
			return nil, fmt.Errorf("snowpark: CROSS join takes no ON condition")
		}
		j.On = on.expr
	} else if kind != JoinCross {
		return nil, fmt.Errorf("snowpark: %s join requires an ON condition", kind)
	}
	q := &sqlast.Select{Items: []sqlast.SelectItem{{Star: true}}, From: j}
	cols := append(append([]string(nil), df.cols...), other.cols...)
	return df.derive(q, cols), nil
}

// CrossJoin is Join with JoinCross and no condition.
func (df *DataFrame) CrossJoin(other *DataFrame) (*DataFrame, error) {
	return df.Join(other, Column{}, JoinCross)
}

// UnionAll concatenates two DataFrames positionally.
func (df *DataFrame) UnionAll(other *DataFrame) (*DataFrame, error) {
	if len(df.cols) != len(other.cols) {
		return nil, fmt.Errorf("snowpark: UNION ALL arity mismatch (%d vs %d)", len(df.cols), len(other.cols))
	}
	return df.derive(&sqlast.SetOp{Op: "UNION ALL", Left: df.query, Right: other.query}, df.cols), nil
}

// Sort orders rows, like DataFrame.sort().
func (df *DataFrame) Sort(keys ...OrderSpec) *DataFrame {
	q := &sqlast.Select{Items: []sqlast.SelectItem{{Star: true}}, From: df.subquery()}
	for _, k := range keys {
		q.OrderBy = append(q.OrderBy, sqlast.OrderItem{Expr: k.col.expr, Desc: k.desc})
	}
	return df.derive(q, df.cols)
}

// Limit truncates the result.
func (df *DataFrame) Limit(n int64) *DataFrame {
	q := &sqlast.Select{Items: []sqlast.SelectItem{{Star: true}}, From: df.subquery(), Limit: &n}
	return df.derive(q, df.cols)
}

// Collect triggers execution of the composed SQL query in the engine and
// returns the full result with metrics.
func (df *DataFrame) Collect() (*engine.Result, error) {
	res, _, err := df.CollectTraced(nil, false)
	return res, err
}

// CollectTraced is Collect with observability: the span (may be nil)
// receives the engine's compile-stage children plus an engine.execute span,
// and analyze enables per-operator metering, returning the annotated plan
// tree alongside the result (nil when analyze is false).
func (df *DataFrame) CollectTraced(sp *obsv.Span, analyze bool) (*engine.Result, *engine.PlanStats, error) {
	return df.CollectTracedCtx(context.Background(), sp, analyze)
}

// CollectTracedCtx is CollectTraced under a cancellation context: a cancel
// or deadline aborts execution promptly with an error satisfying
// errors.Is(err, context.Canceled) / context.DeadlineExceeded.
func (df *DataFrame) CollectTracedCtx(ctx context.Context, sp *obsv.Span, analyze bool) (*engine.Result, *engine.PlanStats, error) {
	return df.CollectOpts(ctx, CollectOptions{Span: sp, Analyze: analyze})
}

// CollectOptions parameterizes CollectOpts: an optional compile-stage span,
// per-operator metering, and the trace ID labelling the query's live
// progress entry in the engine's ProgressSnapshot.
type CollectOptions struct {
	Span    *obsv.Span
	Analyze bool
	TraceID string
}

// CollectOpts is the fully-parameterized Collect all other variants reduce
// to.
func (df *DataFrame) CollectOpts(ctx context.Context, opts CollectOptions) (*engine.Result, *engine.PlanStats, error) {
	p, err := df.session.eng.PrepareOpts(df.SQL(), engine.PrepareOptions{
		Span:    opts.Span,
		Analyze: opts.Analyze,
		TraceID: opts.TraceID,
	})
	if err != nil {
		return nil, nil, err
	}
	esp := opts.Span.Child("engine.execute")
	res, err := p.RunCtx(ctx)
	esp.End()
	if err != nil {
		return nil, nil, err
	}
	return res, p.PlanStats(), nil
}
