package snowpark

import (
	"strings"
	"testing"

	"jsonpark/internal/engine"
	"jsonpark/internal/variant"
)

func testSession(t *testing.T) *Session {
	t.Helper()
	eng := engine.New()
	orders, err := eng.Catalog().CreateTable("orders", []string{"o_id", "o_totalprice", "o_clerk"})
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]variant.Value{
		{variant.Int(1), variant.Float(95000), variant.String("alice")},
		{variant.Int(2), variant.Float(50000), variant.String("bob")},
		{variant.Int(3), variant.Float(110000), variant.String("alice")},
		{variant.Int(4), variant.Float(115000), variant.String("carol")},
	}
	for _, r := range rows {
		if err := orders.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	adl, err := eng.Catalog().CreateTable("adl", []string{"EVENT", "Muon"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []string{
		`{"EVENT": 1, "Muon": [{"pt": 30.0}, {"pt": 5.0}]}`,
		`{"EVENT": 2, "Muon": []}`,
	} {
		if err := adl.AppendObject(variant.MustParseJSON(r)); err != nil {
			t.Fatal(err)
		}
	}
	return NewSession(eng)
}

// TestFig2aProgram reproduces the paper's Figure 2a Snowpark program and
// checks both the generated SQL shape and the result.
func TestFig2aProgram(t *testing.T) {
	s := testSession(t)
	df, err := s.Table("orders")
	if err != nil {
		t.Fatal(err)
	}
	lower := LitInt(90000)
	upper := LitInt(120000)
	totalPrice := Col("o_totalprice")
	clerks := Col("o_clerk")
	out, err := df.Where(totalPrice.Between(lower, upper)).
		Select(CountDistinct(clerks).As("n"))
	if err != nil {
		t.Fatal(err)
	}
	sql := out.SQL()
	if !strings.Contains(sql, "COUNT(DISTINCT ") {
		t.Errorf("sql = %s", sql)
	}
	if !strings.Contains(sql, "WHERE") || strings.Count(sql, "SELECT") < 2 {
		t.Errorf("expected nested SELECTs like Fig 2b, got %s", sql)
	}
	res, err := out.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 2 {
		t.Errorf("distinct clerks = %v", res.Rows[0][0])
	}
}

func TestLazyNoExecutionBeforeCollect(t *testing.T) {
	s := testSession(t)
	df, err := s.Table("orders")
	if err != nil {
		t.Fatal(err)
	}
	// Composing against a dropped table must not fail until Collect.
	chain := df.Where(Col("o_id").Gt(LitInt(0))).Limit(10)
	s.Engine().Catalog().DropTable("orders")
	if _, err := chain.Collect(); err == nil {
		t.Error("collect after drop should fail, proving execution is lazy")
	}
}

func TestWithColumnAndDrop(t *testing.T) {
	s := testSession(t)
	df, _ := s.Table("orders")
	df2 := df.WithColumn("doubled", Col("o_totalprice").Mul(LitInt(2)))
	if len(df2.Columns()) != 4 {
		t.Fatalf("cols = %v", df2.Columns())
	}
	df3, err := df2.Drop("o_clerk", "o_totalprice")
	if err != nil {
		t.Fatal(err)
	}
	res, err := df3.Sort(Asc(Col("o_id"))).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 2 || res.Rows[0][1].AsFloat() != 190000 {
		t.Errorf("res = %v %v", res.Columns, res.Rows[0])
	}
}

func TestWithColumnReplaceExisting(t *testing.T) {
	s := testSession(t)
	df, _ := s.Table("orders")
	df2 := df.WithColumn("o_totalprice", LitInt(1))
	if len(df2.Columns()) != 3 {
		t.Fatalf("cols = %v", df2.Columns())
	}
	res, err := df2.Collect()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row[1].AsInt() != 1 {
			t.Errorf("replaced column = %v", row[1])
		}
	}
}

func TestFlattenAndRegroup(t *testing.T) {
	s := testSession(t)
	df, _ := s.Table("adl")
	withID := df.WithColumn("rid", Seq8())
	flat := withID.Flatten(Col("Muon"), "f", true)
	if flat.Columns()[len(flat.Columns())-2] != "f.VALUE" {
		t.Fatalf("cols = %v", flat.Columns())
	}
	regrouped, err := flat.GroupBy(Col("rid")).Agg(
		AnyValue(Col("EVENT")).As("ev"),
		ArrayAgg(FlattenValue("f")).As("muons"),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := regrouped.Sort(Asc(Col("ev"))).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Output columns are the group keys then the aggregates: rid, ev, muons.
	if res.Rows[0][2].Len() != 2 || res.Rows[1][2].Len() != 0 {
		t.Errorf("muon arrays = %v / %v", res.Rows[0][2], res.Rows[1][2])
	}
}

func TestJoinRequiresDistinctColumns(t *testing.T) {
	s := testSession(t)
	a, _ := s.Table("orders")
	b, _ := s.Table("orders")
	if _, err := a.Join(b, Col("o_id").Eq(Col("o_id")), JoinInner); err == nil {
		t.Error("join with shared column names should fail")
	}
}

func TestJoinAndUnion(t *testing.T) {
	s := testSession(t)
	a, _ := s.Table("orders")
	aSel, err := a.Select(Col("o_id").As("left_id"), Col("o_clerk").As("left_clerk"))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := s.Table("orders")
	bSel, err := b.Select(Col("o_id").As("right_id"))
	if err != nil {
		t.Fatal(err)
	}
	joined, err := aSel.Join(bSel, Col("left_id").Eq(Col("right_id")), JoinInner)
	if err != nil {
		t.Fatal(err)
	}
	res, err := joined.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("join rows = %d", len(res.Rows))
	}
	u, err := aSel.UnionAll(aSel)
	if err != nil {
		t.Fatal(err)
	}
	ur, err := u.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(ur.Rows) != 8 {
		t.Errorf("union rows = %d", len(ur.Rows))
	}
}

func TestGroupByExpressionKey(t *testing.T) {
	s := testSession(t)
	df, _ := s.Table("orders")
	g, err := df.GroupBy(Floor(Col("o_totalprice").Div(LitFloat(100000))).As("bucket")).
		Agg(CountStar().As("n"), Sum(Col("o_totalprice")).As("total"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Sort(Asc(Col("bucket"))).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][1].AsInt() != 2 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestDerivedColumnNeedsAlias(t *testing.T) {
	s := testSession(t)
	df, _ := s.Table("orders")
	if _, err := df.Select(Col("o_id").Add(LitInt(1))); err == nil {
		t.Error("unaliased derived column should error")
	}
}

func TestCaseBuilder(t *testing.T) {
	s := testSession(t)
	df, _ := s.Table("orders")
	sel, err := df.Select(
		Col("o_id").As("id"),
		CaseWhen(Col("o_totalprice").Gt(LitInt(100000)), LitString("big")).
			When(Col("o_totalprice").Gt(LitInt(60000)), LitString("mid")).
			Else(LitString("small")).As("size"),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sel.Sort(Asc(Col("id"))).Collect()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"mid", "small", "big", "big"}
	for i, w := range want {
		if res.Rows[i][1].AsString() != w {
			t.Errorf("row %d size = %v, want %s", i, res.Rows[i][1], w)
		}
	}
}

func TestSQLIsSingleQueryRoundTrippable(t *testing.T) {
	s := testSession(t)
	df, _ := s.Table("adl")
	flat := df.WithColumn("rid", Seq8()).Flatten(Col("Muon"), "f", true)
	g, err := flat.GroupBy(Col("rid")).Agg(ArrayAgg(FlattenValue("f")).As("ms"))
	if err != nil {
		t.Fatal(err)
	}
	final := g.Sort(Asc(Col("rid"))).Limit(10)
	sql := final.SQL()
	// The engine parses and runs this exact text — one native SQL query.
	if _, err := s.Engine().Query(sql); err != nil {
		t.Fatalf("engine rejected generated SQL: %v\n%s", err, sql)
	}
}

func TestArrayAggOrderedGeneratesWithinGroup(t *testing.T) {
	s := testSession(t)
	df, _ := s.Table("orders")
	g, err := df.Agg(ArrayAggOrdered(Col("o_id"), Desc(Col("o_totalprice"))).As("ids"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(g.SQL(), "WITHIN GROUP") {
		t.Errorf("sql = %s", g.SQL())
	}
	res, err := g.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Index(0).AsInt() != 4 {
		t.Errorf("ids = %v", res.Rows[0][0])
	}
}
