package snowpark

import (
	"strings"
	"testing"

	"jsonpark/internal/sqlast"
	"jsonpark/internal/variant"
)

func exprText(c Column) string { return sqlast.RenderExpr(c.Expr()) }

func TestColumnComposition(t *testing.T) {
	cases := []struct {
		col  Column
		want string
	}{
		{Col("a").Add(LitInt(1)), `("a" + 1)`},
		{Col("a").Sub(Col("b")).Mul(LitFloat(2)), `(("a" - "b") * 2.0)`},
		{Col("a").Eq(LitString("x")), `("a" = 'x')`},
		{Col("a").Ne(LitNull()), `("a" <> NULL)`},
		{Col("a").Between(LitInt(1), LitInt(5)), `(("a" >= 1) AND ("a" <= 5))`},
		{Col("a").And(Col("b").Not()), `("a" AND (NOT "b"))`},
		{Col("a").IsNull(), `("a" IS NULL)`},
		{Col("a").IsNotNull(), `("a" IS NOT NULL)`},
		{Col("v").SubField("pt"), `GET("v", 'pt')`},
		{Col("v").Index(LitInt(0)), `GET("v", 0)`},
		{Col("a").Cast("DOUBLE"), `("a" :: DOUBLE)`},
		{Col("a").Concat(LitString("!")), `("a" || '!')`},
		{Col("a").Neg(), `(- "a")`},
		{FlattenValue("f"), `"f".VALUE`},
		{FlattenIndex("f"), `"f".INDEX`},
	}
	for _, c := range cases {
		if got := exprText(c.col); got != c.want {
			t.Errorf("rendered %q, want %q", got, c.want)
		}
	}
}

func TestFunctionConstructors(t *testing.T) {
	cases := []struct {
		col  Column
		want string
	}{
		{Abs(Col("x")), `ABS("x")`},
		{Atan2(Col("y"), Col("x")), `ATAN2("y", "x")`},
		{Power(LitInt(2), LitInt(10)), `POWER(2, 10)`},
		{Iff(Col("c"), LitInt(1), LitInt(0)), `IFF("c", 1, 0)`},
		{Coalesce(Col("a"), LitInt(0)), `COALESCE("a", 0)`},
		{ObjectConstruct("k", Col("v")), `OBJECT_CONSTRUCT('k', "v")`},
		{ArrayConstruct(LitInt(1), LitInt(2)), `ARRAY_CONSTRUCT(1, 2)`},
		{ArrayRange(LitInt(1), LitInt(4)), `ARRAY_RANGE(1, 4)`},
		{CountStar(), `COUNT(*)`},
		{CountDistinct(Col("a")), `COUNT(DISTINCT "a")`},
		{Seq8(), `SEQ8()`},
		{BoolAndAgg(Col("p")), `BOOLAND_AGG("p")`},
	}
	for _, c := range cases {
		if got := exprText(c.col); got != c.want {
			t.Errorf("rendered %q, want %q", got, c.want)
		}
	}
}

func TestObjectConstructPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("odd pair count should panic")
		}
	}()
	ObjectConstruct("only-key")
}

func TestLitKinds(t *testing.T) {
	if exprText(Lit(variant.Array(variant.Int(1)))) != "ARRAY_CONSTRUCT(1)" {
		t.Error("array literal")
	}
	if exprText(LitBool(true)) != "TRUE" {
		t.Error("bool literal")
	}
}

func TestAliasCarriesThrough(t *testing.T) {
	c := Col("a").Add(LitInt(1)).As("b")
	if c.Name() != "b" {
		t.Errorf("alias = %q", c.Name())
	}
	// As does not mutate the receiver.
	base := Col("a")
	_ = base.As("x")
	if base.Name() != "" {
		t.Error("As must not mutate")
	}
}

func TestCaseBuilderReusable(t *testing.T) {
	b := CaseWhen(Col("a").Gt(LitInt(0)), LitString("pos"))
	withElse := b.Else(LitString("neg"))
	if !strings.Contains(exprText(withElse), "ELSE") {
		t.Errorf("else missing: %s", exprText(withElse))
	}
}
