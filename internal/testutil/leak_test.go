package testutil

import (
	"strings"
	"testing"
	"time"
)

// fakeTB captures CheckLeaks failures instead of failing the real test.
type fakeTB struct {
	cleanups []func()
	failures []string
}

func (f *fakeTB) Helper() {}
func (f *fakeTB) Errorf(format string, args ...any) {
	f.failures = append(f.failures, format)
}
func (f *fakeTB) Cleanup(fn func()) { f.cleanups = append(f.cleanups, fn) }

func (f *fakeTB) runCleanups() {
	for i := len(f.cleanups) - 1; i >= 0; i-- {
		f.cleanups[i]()
	}
}

func TestCheckLeaksPassesWhenGoroutinesExit(t *testing.T) {
	ft := &fakeTB{}
	CheckLeaks(ft)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	ft.runCleanups()
	if len(ft.failures) != 0 {
		t.Fatalf("unexpected failures: %v", ft.failures)
	}
}

func TestCheckLeaksFlagsSurvivingGoroutine(t *testing.T) {
	ft := &fakeTB{}
	CheckLeaks(ft)
	stop := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-stop
	}()
	<-started
	ft.runCleanups() // waits leakGrace, then reports
	close(stop)
	if len(ft.failures) == 0 {
		t.Fatal("expected a leak report for the blocked goroutine")
	}
	if !strings.Contains(ft.failures[0], "goroutine leak") {
		t.Fatalf("unexpected failure text: %q", ft.failures[0])
	}
}

func TestCheckLeaksWaitsOutSlowExits(t *testing.T) {
	ft := &fakeTB{}
	CheckLeaks(ft)
	go func() { time.Sleep(150 * time.Millisecond) }()
	ft.runCleanups()
	if len(ft.failures) != 0 {
		t.Fatalf("goroutine exiting within the grace period was flagged: %v", ft.failures)
	}
}

func TestNormalizeStackCollapsesIdentity(t *testing.T) {
	a := "goroutine 7 [chan receive]:\nmain.worker(0xc000010a, 0x2)\n\tmain.go:10 +0x45"
	b := "goroutine 99 [chan receive]:\nmain.worker(0xc0aa0000, 0x7)\n\tmain.go:10 +0x1b"
	if normalizeStack(a) != normalizeStack(b) {
		t.Fatalf("stacks differing only in IDs/args should normalize equal:\n%s\n%s",
			normalizeStack(a), normalizeStack(b))
	}
}
