// Package testutil holds small test-only helpers shared across packages.
package testutil

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"
)

// leakGrace bounds how long CheckLeaks waits for goroutines that are
// legitimately still winding down (worker pools joining after Close).
const leakGrace = 2 * time.Second

// TB is the subset of testing.TB CheckLeaks needs, so the package has no
// testing import in its API (usable from TestMain too).
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Cleanup(func())
}

// CheckLeaks snapshots the live goroutines and registers a cleanup that
// fails the test if goroutines created during the test are still running
// when it ends. Call it first in the test body:
//
//	func TestSomethingStress(t *testing.T) {
//	    testutil.CheckLeaks(t)
//	    ...
//	}
//
// Goroutines present before the test (other tests' leftovers, the run
// harness) are excluded by stack identity; freshly created ones get
// leakGrace to exit before the failure is reported. The check is built on
// runtime.Stack only, so it needs no dependencies and runs under -race.
func CheckLeaks(t TB) {
	t.Helper()
	before := goroutineStacks()
	t.Cleanup(func() {
		deadline := time.Now().Add(leakGrace)
		var leaked []string
		for {
			leaked = leakedSince(before)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d goroutine(s) survived the test:\n%s",
			len(leaked), strings.Join(leaked, "\n---\n"))
	})
}

// leakedSince returns the interesting goroutine stacks running now that
// were not in the "before" snapshot.
func leakedSince(before map[string]int) []string {
	now := goroutineStacks()
	var leaked []string
	for stack, n := range now {
		if ignoredStack(stack) {
			continue
		}
		if extra := n - before[stack]; extra > 0 {
			leaked = append(leaked, fmt.Sprintf("%d x %s", extra, stack))
		}
	}
	sort.Strings(leaked)
	return leaked
}

// goroutineStacks returns every live goroutine's stack keyed by its text
// with the goroutine ID and argument addresses normalized out, counting
// duplicates — N identical workers collapse into one key with count N.
func goroutineStacks() map[string]int {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	stacks := make(map[string]int)
	for _, g := range strings.Split(string(buf), "\n\n") {
		if g == "" {
			continue
		}
		stacks[normalizeStack(g)]++
	}
	return stacks
}

// normalizeStack strips the parts of a goroutine dump that vary between
// otherwise-identical goroutines: the header's goroutine ID, argument
// hex values, and +0x offsets.
func normalizeStack(g string) string {
	lines := strings.Split(g, "\n")
	for i, ln := range lines {
		if i == 0 {
			// "goroutine 42 [chan receive]:" → "goroutine [chan receive]:"
			if rest, ok := strings.CutPrefix(ln, "goroutine "); ok {
				if sp := strings.IndexByte(rest, ' '); sp >= 0 {
					lines[i] = "goroutine " + rest[sp+1:]
				}
			}
			continue
		}
		if j := strings.LastIndex(ln, " +0x"); j >= 0 {
			ln = ln[:j]
		}
		if j := strings.IndexByte(ln, '('); j >= 0 && strings.HasSuffix(ln, ")") && strings.Contains(ln[j:], "0x") {
			ln = ln[:j] + "(...)"
		}
		lines[i] = ln
	}
	return strings.Join(lines, "\n")
}

// ignoredStack reports stacks that are expected to appear and disappear
// outside the test's control: the runtime's own helpers and the testing
// harness machinery.
func ignoredStack(stack string) bool {
	for _, frame := range []string{
		"testing.(*T).Run",
		"testing.tRunner",
		"testing.runTests",
		"testing.(*M).",
		"runtime.goexit",
		"runtime.gc",
		"runtime.bgsweep",
		"runtime.bgscavenge",
		"runtime.forcegchelper",
		"runtime.ReadTrace",
		"signal.signal_recv",
		"runtime/trace",
		"testutil.goroutineStacks",
	} {
		if strings.Contains(stack, frame) {
			return true
		}
	}
	return false
}
