package vector

import (
	"testing"

	"jsonpark/internal/variant"
)

func intBatch(vals ...int64) *Batch {
	col := make([]variant.Value, len(vals))
	for i, v := range vals {
		col[i] = variant.Int(v)
	}
	return &Batch{Cols: [][]variant.Value{col}}
}

func TestBatchCounts(t *testing.T) {
	b := intBatch(1, 2, 3, 4, 5)
	if b.Width() != 1 || b.Len() != 5 || b.NumRows() != 5 {
		t.Fatalf("width=%d len=%d rows=%d", b.Width(), b.Len(), b.NumRows())
	}
	v := b.WithSel([]int{1, 3})
	if v.Len() != 5 || v.NumRows() != 2 {
		t.Fatalf("view len=%d rows=%d", v.Len(), v.NumRows())
	}
	// The view shares columns with the parent.
	if &v.Cols[0][0] != &b.Cols[0][0] {
		t.Fatal("WithSel copied columns")
	}
}

func TestBatchForEachAndAppendRows(t *testing.T) {
	b := intBatch(10, 11, 12, 13).WithSel([]int{0, 2, 3})
	var got []int64
	b.ForEach(func(i int) { got = append(got, b.Cols[0][i].AsInt()) })
	want := []int64{10, 12, 13}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	rows := b.AppendRows(nil)
	if len(rows) != 3 || rows[1][0].AsInt() != 12 {
		t.Fatalf("AppendRows = %v", rows)
	}
}

func TestBatchTruncate(t *testing.T) {
	b := intBatch(1, 2, 3, 4)
	b.Truncate(2)
	if b.NumRows() != 2 {
		t.Fatalf("rows=%d after truncate", b.NumRows())
	}
	sel := b.WithSel([]int{1, 2, 3})
	sel.Truncate(1)
	if sel.NumRows() != 1 || sel.Sel[0] != 1 {
		t.Fatalf("sel truncate: rows=%d sel=%v", sel.NumRows(), sel.Sel)
	}
	// Truncating beyond the active count is a no-op.
	sel.Truncate(10)
	if sel.NumRows() != 1 {
		t.Fatalf("over-truncate changed rows: %d", sel.NumRows())
	}
}

func TestActiveSelDense(t *testing.T) {
	b := intBatch(1, 2, 3)
	sel := b.ActiveSel()
	if len(sel) != 3 || sel[0] != 0 || sel[2] != 2 {
		t.Fatalf("dense sel = %v", sel)
	}
	view := b.WithSel([]int{2})
	if got := view.ActiveSel(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("view sel = %v", got)
	}
}

func TestBuilderEmitsFixedSizeBatches(t *testing.T) {
	bu := NewBuilder(2, 3)
	for i := 0; i < 7; i++ {
		bu.Append([]variant.Value{variant.Int(int64(i)), variant.String("x")})
	}
	var sizes []int
	for b := bu.Pop(); b != nil; b = bu.Pop() {
		sizes = append(sizes, b.NumRows())
	}
	if len(sizes) != 2 || sizes[0] != 3 || sizes[1] != 3 {
		t.Fatalf("full batches = %v", sizes)
	}
	tail := bu.Flush()
	if tail == nil || tail.NumRows() != 1 || tail.Cols[0][0].AsInt() != 6 {
		t.Fatalf("flush = %+v", tail)
	}
	if bu.Flush() != nil {
		t.Fatal("second flush not nil")
	}
}

func TestBuilderRowOrderPreserved(t *testing.T) {
	bu := NewBuilder(1, 4)
	for i := 0; i < 10; i++ {
		bu.Append([]variant.Value{variant.Int(int64(i))})
	}
	var got []int64
	drain := func(b *Batch) {
		if b == nil {
			return
		}
		b.ForEach(func(i int) { got = append(got, b.Cols[0][i].AsInt()) })
	}
	for b := bu.Pop(); b != nil; b = bu.Pop() {
		drain(b)
	}
	drain(bu.Flush())
	for i, v := range got {
		if int64(i) != v {
			t.Fatalf("order broken at %d: %v", i, got)
		}
	}
	if len(got) != 10 {
		t.Fatalf("lost rows: %v", got)
	}
}
