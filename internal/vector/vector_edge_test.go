package vector

import (
	"testing"

	"jsonpark/internal/variant"
)

// An empty (non-nil) selection vector means zero active rows — distinct
// from nil, which means all rows active. Every accessor must honor the
// difference.
func TestEmptySelectionVector(t *testing.T) {
	b := &Batch{
		Cols: [][]variant.Value{{variant.Int(1), variant.Int(2)}},
		Sel:  []int{},
	}
	if b.Len() != 2 {
		t.Errorf("Len = %d, want 2 (physical rows unaffected by Sel)", b.Len())
	}
	if b.NumRows() != 0 {
		t.Errorf("NumRows = %d, want 0", b.NumRows())
	}
	calls := 0
	b.ForEach(func(int) { calls++ })
	if calls != 0 {
		t.Errorf("ForEach visited %d rows, want 0", calls)
	}
	if rows := b.AppendRows(nil); len(rows) != 0 {
		t.Errorf("AppendRows produced %d rows, want 0", len(rows))
	}
	if sel := b.ActiveSel(); len(sel) != 0 {
		t.Errorf("ActiveSel = %v, want empty", sel)
	}
	b.Truncate(0)
	if b.NumRows() != 0 {
		t.Errorf("NumRows after Truncate(0) = %d, want 0", b.NumRows())
	}
}

// A nil column vector is a zero-row column; batches built around one must
// not panic and must report zero rows consistently.
func TestNilColumnVector(t *testing.T) {
	b := &Batch{Cols: [][]variant.Value{nil}}
	if b.Len() != 0 || b.NumRows() != 0 {
		t.Errorf("Len/NumRows = %d/%d, want 0/0", b.Len(), b.NumRows())
	}
	b.ForEach(func(int) { t.Error("ForEach visited a row of a nil column") })
	if rows := b.AppendRows(nil); len(rows) != 0 {
		t.Errorf("AppendRows produced %d rows, want 0", len(rows))
	}

	empty := &Batch{}
	if empty.Width() != 0 || empty.Len() != 0 || empty.NumRows() != 0 {
		t.Errorf("zero batch Width/Len/NumRows = %d/%d/%d, want zeros",
			empty.Width(), empty.Len(), empty.NumRows())
	}
	if sel := empty.ActiveSel(); len(sel) != 0 {
		t.Errorf("zero batch ActiveSel = %v, want empty", sel)
	}
}

func TestTruncateBeyondActiveRowsIsNoop(t *testing.T) {
	b := &Batch{
		Cols: [][]variant.Value{{variant.Int(1), variant.Int(2), variant.Int(3)}},
		Sel:  []int{0, 2},
	}
	b.Truncate(5)
	if b.NumRows() != 2 {
		t.Errorf("NumRows = %d, want 2", b.NumRows())
	}
	dense := &Batch{Cols: [][]variant.Value{{variant.Int(1), variant.Int(2), variant.Int(3)}}}
	dense.Truncate(1)
	if dense.NumRows() != 1 || dense.Sel == nil || dense.Sel[0] != 0 {
		t.Errorf("dense Truncate(1): NumRows=%d Sel=%v, want 1 row at phys 0", dense.NumRows(), dense.Sel)
	}
}

// A Builder must be reusable after Flush drains its partial batch: the next
// Append starts a fresh accumulation that shares nothing with emitted
// batches.
func TestBuilderReuseAfterFlush(t *testing.T) {
	bu := NewBuilder(1, 4)
	if b := bu.Flush(); b != nil {
		t.Fatalf("Flush on a fresh builder = %v, want nil", b)
	}
	if b := bu.Pop(); b != nil {
		t.Fatalf("Pop on a fresh builder = %v, want nil", b)
	}

	bu.Append([]variant.Value{variant.Int(1)})
	first := bu.Flush()
	if first == nil || first.Len() != 1 {
		t.Fatalf("first Flush = %v, want a 1-row batch", first)
	}

	for i := 2; i <= 6; i++ {
		bu.Append([]variant.Value{variant.Int(int64(i))})
	}
	full := bu.Pop()
	if full == nil || full.Len() != 4 {
		t.Fatalf("Pop after refill = %v, want a full 4-row batch", full)
	}
	rest := bu.Flush()
	if rest == nil || rest.Len() != 1 {
		t.Fatalf("second Flush = %v, want a 1-row batch", rest)
	}
	if b := bu.Flush(); b != nil {
		t.Fatalf("Flush after drain = %v, want nil", b)
	}

	// The flushed batches own their columns: filling the builder again must
	// not mutate them.
	if got := first.Cols[0][0].JSON(); got != "1" {
		t.Errorf("earlier batch mutated by reuse: row 0 = %s, want 1", got)
	}
}

// A zero-width builder (degenerate but reachable from width-0 schemas) must
// not panic or emit phantom batches.
func TestBuilderZeroWidth(t *testing.T) {
	bu := NewBuilder(0, 4)
	bu.Append(nil)
	if b := bu.Pop(); b != nil {
		t.Errorf("Pop = %v, want nil", b)
	}
	if b := bu.Flush(); b != nil && b.Len() != 0 {
		t.Errorf("Flush = %d rows, want none", b.Len())
	}
}
