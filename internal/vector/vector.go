// Package vector defines the columnar batch that flows between the engine's
// executor operators. A Batch is a fixed-capacity slice of column vectors of
// variant values plus an optional selection vector: filters shrink the
// selection instead of copying survivors, and scans hand out zero-copy views
// of the micro-partitions' column chunks. The layout follows the vectorized
// execution model of MonetDB/X100 and DuckDB, scaled to the embedded engine.
package vector

import "jsonpark/internal/variant"

// DefaultBatchSize is the number of rows one batch targets. 1024 keeps a
// batch's column vectors comfortably inside the L2 cache for typical variant
// widths while amortizing per-batch operator overhead over ~1000 rows.
const DefaultBatchSize = 1024

// Batch is one unit of columnar data flow. Cols holds the column vectors,
// all of equal length (the physical row count). Sel, when non-nil, lists the
// physical indices of the active (surviving) rows in increasing order;
// a nil Sel means every physical row is active.
//
// Typed, when non-nil, carries per-column typed views (parallel to Cols):
// Typed[c] non-nil means column c has a monomorphic encoding that typed
// expression kernels can run over directly, and Cols[c] may be nil until a
// consumer asks for the variant representation through Column — the
// materialize-to-variant escape hatch that keeps every row-oriented
// consumer working unchanged.
//
// Column vectors may alias storage owned by others (scan batches alias the
// micro-partition chunks; projections alias their inputs), so consumers must
// never mutate Cols in place — operators produce new vectors instead.
type Batch struct {
	Cols  [][]variant.Value
	Sel   []int
	Typed []*TypedCol
}

// Width returns the number of columns.
func (b *Batch) Width() int { return len(b.Cols) }

// Len returns the physical row count (including filtered-out rows).
func (b *Batch) Len() int {
	for c, col := range b.Cols {
		if col != nil {
			return len(col)
		}
		if c < len(b.Typed) && b.Typed[c] != nil {
			return b.Typed[c].Len()
		}
	}
	return 0
}

// TypedCol returns column c's typed view, or nil when the column only has a
// variant representation.
func (b *Batch) TypedCol(c int) *TypedCol {
	if c < len(b.Typed) {
		return b.Typed[c]
	}
	return nil
}

// Column returns column c as variants, materializing a typed-only column on
// first access. The materialized vector is cached in Cols, so repeated reads
// (and views created by WithSel, which share the Cols backing array) pay the
// conversion once. The result must be treated as read-only like any column.
func (b *Batch) Column(c int) []variant.Value {
	if b.Cols[c] == nil {
		if tc := b.TypedCol(c); tc != nil {
			b.Cols[c] = tc.Materialize(make([]variant.Value, 0, tc.Len()))
		}
	}
	return b.Cols[c]
}

// Value returns the variant at (column c, physical row i). A typed-only
// column converts the single row in place instead of materializing the whole
// vector — the right trade for row-wise consumers (join probe, sort and
// spill row assembly, flatten) that read each row at most once.
func (b *Batch) Value(c, i int) variant.Value {
	if b.Cols[c] != nil {
		return b.Cols[c][i]
	}
	if tc := b.TypedCol(c); tc != nil {
		return tc.ValueAt(i)
	}
	return variant.Null
}

// NumRows returns the active row count.
func (b *Batch) NumRows() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.Len()
}

// WithSel returns a view of the batch restricted to the given physical
// indices. The column vectors (and typed views) are shared, so the view is
// free to construct; a materialization through either view is visible to
// both, since they share the Cols backing array.
func (b *Batch) WithSel(sel []int) *Batch { return &Batch{Cols: b.Cols, Sel: sel, Typed: b.Typed} }

// ForEach calls fn with the physical index of every active row, in order.
func (b *Batch) ForEach(fn func(phys int)) {
	if b.Sel != nil {
		for _, i := range b.Sel {
			fn(i)
		}
		return
	}
	n := b.Len()
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// ActiveSel returns the active physical indices as a slice. When Sel is nil
// a fresh dense selection is allocated, otherwise Sel itself is returned;
// callers must treat the result as read-only.
func (b *Batch) ActiveSel() []int {
	if b.Sel != nil {
		return b.Sel
	}
	n := b.Len()
	sel := make([]int, n)
	for i := range sel {
		sel[i] = i
	}
	return sel
}

// Row gathers the physical row i into buf (grown as needed) and returns it.
func (b *Batch) Row(i int, buf []variant.Value) []variant.Value {
	if cap(buf) < len(b.Cols) {
		buf = make([]variant.Value, len(b.Cols))
	}
	buf = buf[:len(b.Cols)]
	for c := range b.Cols {
		buf[c] = b.Column(c)[i]
	}
	return buf
}

// AppendRows materializes every active row and appends them to rows.
func (b *Batch) AppendRows(rows [][]variant.Value) [][]variant.Value {
	for c := range b.Cols {
		b.Column(c)
	}
	b.ForEach(func(i int) {
		row := make([]variant.Value, len(b.Cols))
		for c := range b.Cols {
			row[c] = b.Cols[c][i]
		}
		rows = append(rows, row)
	})
	return rows
}

// ColumnizeRows converts rows[lo:hi] from row-major to a dense column-major
// batch of the given width. Materializing operators (aggregate merge, sort
// output) emit their result rows through it.
func ColumnizeRows(rows [][]variant.Value, width, lo, hi int) *Batch {
	cols := make([][]variant.Value, width)
	for c := range cols {
		col := make([]variant.Value, hi-lo)
		for k := range col {
			col[k] = rows[lo+k][c]
		}
		cols[c] = col
	}
	return &Batch{Cols: cols}
}

// Truncate drops all but the first n active rows.
func (b *Batch) Truncate(n int) {
	if n >= b.NumRows() {
		return
	}
	if b.Sel == nil {
		b.Sel = b.ActiveSel()
	}
	b.Sel = b.Sel[:n]
}

// Builder accumulates rows into fixed-size batches. Operators that expand or
// recombine rows (flatten, join, aggregate, sort) feed it row-wise and emit
// dense batches of the configured size.
type Builder struct {
	width int
	size  int
	cols  [][]variant.Value
	ready []*Batch
}

// NewBuilder returns a builder producing batches of the given width and row
// capacity.
func NewBuilder(width, size int) *Builder {
	if size <= 0 {
		size = DefaultBatchSize
	}
	return &Builder{width: width, size: size}
}

// Append adds one row (len must equal the builder width).
func (bu *Builder) Append(row []variant.Value) {
	if bu.cols == nil {
		bu.cols = make([][]variant.Value, bu.width)
		for i := range bu.cols {
			bu.cols[i] = make([]variant.Value, 0, bu.size)
		}
	}
	for i, v := range row {
		bu.cols[i] = append(bu.cols[i], v)
	}
	if bu.width > 0 && len(bu.cols[0]) >= bu.size {
		bu.ready = append(bu.ready, &Batch{Cols: bu.cols})
		bu.cols = nil
	}
}

// Pop returns the next completed batch, or nil if none is full yet.
func (bu *Builder) Pop() *Batch {
	if len(bu.ready) == 0 {
		return nil
	}
	b := bu.ready[0]
	bu.ready = bu.ready[1:]
	return b
}

// Flush returns any buffered partial batch (nil when empty). Call after the
// input is exhausted and Pop returned nil.
func (bu *Builder) Flush() *Batch {
	if bu.cols == nil || (bu.width > 0 && len(bu.cols[0]) == 0) {
		return nil
	}
	b := &Batch{Cols: bu.cols}
	bu.cols = nil
	return b
}
