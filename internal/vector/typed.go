package vector

import "jsonpark/internal/variant"

// TypedKind enumerates the monomorphic physical encodings a shredded column
// can take. A typed column holds exactly one scalar kind plus NULLs; any
// other mix stays on the variant representation.
type TypedKind uint8

// The typed encodings.
const (
	TypedInt64 TypedKind = iota
	TypedFloat64
	TypedString
	TypedBool
)

// String names the kind for diagnostics and the partition file format docs.
func (k TypedKind) String() string {
	switch k {
	case TypedInt64:
		return "int64"
	case TypedFloat64:
		return "float64"
	case TypedString:
		return "string"
	case TypedBool:
		return "bool"
	}
	return "typed?"
}

// TypedCol is a read-only typed view of one column: a flat Go slice of one
// scalar type plus a null bitmap, as produced by micro-partition sealing.
// Expression kernels run tight monomorphic loops over the value slice
// (Ints/Floats/Strs/Bools) instead of dispatching on variant.Value per row;
// Materialize is the escape hatch back to variants for operators that need
// them. Views are cheap: Slice re-slices the value storage in place and the
// null bitmap is shared with a bit offset, so a scan batch aliases its
// chunk's arrays with zero copying (same contract as Batch.Cols).
//
// A value slice position i is only meaningful when Null(i) is false; null
// positions hold the zero value of the element type.
type TypedCol struct {
	kind TypedKind
	n    int

	// nulls is the full-chunk null bitmap (bit set = NULL), shared across
	// views; nullOff is this view's starting bit. nil means no nulls.
	nulls   []uint64
	nullOff int

	ints   []int64
	floats []float64
	// strs holds per-row strings for the plain encoding; under dictionary
	// encoding it is nil and codes indexes into dict.
	strs  []string
	dict  []string
	codes []uint32
	bools []bool
}

// NewInt64Col wraps an int64 slice (and optional null bitmap over [0,
// len(vals))) as a typed column.
func NewInt64Col(vals []int64, nulls []uint64) *TypedCol {
	return &TypedCol{kind: TypedInt64, n: len(vals), ints: vals, nulls: nulls}
}

// NewFloat64Col wraps a float64 slice as a typed column.
func NewFloat64Col(vals []float64, nulls []uint64) *TypedCol {
	return &TypedCol{kind: TypedFloat64, n: len(vals), floats: vals, nulls: nulls}
}

// NewStringCol wraps a per-row string slice as a typed column.
func NewStringCol(vals []string, nulls []uint64) *TypedCol {
	return &TypedCol{kind: TypedString, n: len(vals), strs: vals, nulls: nulls}
}

// NewDictCol wraps a dictionary-encoded string column: codes[i] indexes into
// dict for every non-null row.
func NewDictCol(dict []string, codes []uint32, nulls []uint64) *TypedCol {
	return &TypedCol{kind: TypedString, n: len(codes), dict: dict, codes: codes, nulls: nulls}
}

// NewBoolCol wraps a bool slice as a typed column.
func NewBoolCol(vals []bool, nulls []uint64) *TypedCol {
	return &TypedCol{kind: TypedBool, n: len(vals), bools: vals, nulls: nulls}
}

// Kind reports the column's scalar encoding.
func (t *TypedCol) Kind() TypedKind { return t.kind }

// Len returns the view's row count.
func (t *TypedCol) Len() int { return t.n }

// HasNulls reports whether the column carries a null bitmap at all. A false
// return lets kernels skip the per-row null test entirely.
func (t *TypedCol) HasNulls() bool { return t.nulls != nil }

// Null reports whether row i of the view is NULL.
func (t *TypedCol) Null(i int) bool {
	if t.nulls == nil {
		return false
	}
	bit := t.nullOff + i
	return t.nulls[bit>>6]&(1<<(bit&63)) != 0
}

// Ints returns the view's int64 values; valid only for TypedInt64.
func (t *TypedCol) Ints() []int64 { return t.ints }

// Floats returns the view's float64 values; valid only for TypedFloat64.
func (t *TypedCol) Floats() []float64 { return t.floats }

// Bools returns the view's bool values; valid only for TypedBool.
func (t *TypedCol) Bools() []bool { return t.bools }

// Strs returns the per-row strings of a plain string column, or nil when the
// column is dictionary-encoded (use Dict/Codes or StringAt).
func (t *TypedCol) Strs() []string { return t.strs }

// Dict returns the dictionary of a dictionary-encoded string column (nil for
// plain string columns).
func (t *TypedCol) Dict() []string { return t.dict }

// Codes returns the per-row dictionary codes (nil for plain string columns).
func (t *TypedCol) Codes() []uint32 { return t.codes }

// StringAt returns row i's string through either string representation; the
// row must be non-null.
func (t *TypedCol) StringAt(i int) string {
	if t.codes != nil {
		return t.dict[t.codes[i]]
	}
	return t.strs[i]
}

// Slice returns the [lo,hi) view of the column. Value storage is re-sliced
// in place and the null bitmap is shared with an adjusted bit offset, so a
// slice never copies.
func (t *TypedCol) Slice(lo, hi int) *TypedCol {
	out := &TypedCol{kind: t.kind, n: hi - lo, nulls: t.nulls, nullOff: t.nullOff + lo, dict: t.dict}
	switch t.kind {
	case TypedInt64:
		out.ints = t.ints[lo:hi:hi]
	case TypedFloat64:
		out.floats = t.floats[lo:hi:hi]
	case TypedString:
		if t.codes != nil {
			out.codes = t.codes[lo:hi:hi]
		} else {
			out.strs = t.strs[lo:hi:hi]
		}
	case TypedBool:
		out.bools = t.bools[lo:hi:hi]
	}
	return out
}

// Materialize appends the view's rows as variants to dst (allocated when
// nil) and returns it — the escape hatch for consumers that need the variant
// representation. The result is freshly built, so callers own it.
func (t *TypedCol) Materialize(dst []variant.Value) []variant.Value {
	if dst == nil {
		dst = make([]variant.Value, 0, t.n)
	}
	// Kind-specialized loops keep the hot path branch-light; the null test
	// is a bitmap probe either way.
	switch t.kind {
	case TypedInt64:
		for i, v := range t.ints {
			if t.Null(i) {
				dst = append(dst, variant.Null)
			} else {
				dst = append(dst, variant.Int(v))
			}
		}
	case TypedFloat64:
		for i, v := range t.floats {
			if t.Null(i) {
				dst = append(dst, variant.Null)
			} else {
				dst = append(dst, variant.Float(v))
			}
		}
	case TypedString:
		for i := 0; i < t.n; i++ {
			if t.Null(i) {
				dst = append(dst, variant.Null)
			} else {
				dst = append(dst, variant.String(t.StringAt(i)))
			}
		}
	case TypedBool:
		for i, v := range t.bools {
			if t.Null(i) {
				dst = append(dst, variant.Null)
			} else {
				dst = append(dst, variant.Bool(v))
			}
		}
	}
	return dst
}

// ValueAt converts row i of the view to a variant. Single-row reads never
// allocate, so row-at-a-time consumers that touch each row once are better
// served here than by materializing the whole column.
func (t *TypedCol) ValueAt(i int) variant.Value {
	if t.Null(i) {
		return variant.Null
	}
	switch t.kind {
	case TypedInt64:
		return variant.Int(t.ints[i])
	case TypedFloat64:
		return variant.Float(t.floats[i])
	case TypedString:
		return variant.String(t.StringAt(i))
	case TypedBool:
		return variant.Bool(t.bools[i])
	}
	return variant.Null
}

// SetNullBit marks bit i of a null bitmap sized for n rows; a helper for
// bitmap builders (storage sealing, the partition file reader).
func SetNullBit(bitmap []uint64, i int) { bitmap[i>>6] |= 1 << (i & 63) }

// NullBitmapWords returns the []uint64 word count needed for n bits.
func NullBitmapWords(n int) int { return (n + 63) / 64 }
