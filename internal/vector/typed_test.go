package vector

import (
	"testing"

	"jsonpark/internal/variant"
)

func intColWithNulls(vals []int64, nullAt ...int) *TypedCol {
	bm := make([]uint64, NullBitmapWords(len(vals)))
	for _, i := range nullAt {
		SetNullBit(bm, i)
	}
	return NewInt64Col(vals, bm)
}

func TestTypedColSliceAndNulls(t *testing.T) {
	tc := intColWithNulls([]int64{10, 20, 30, 40, 50, 60, 70}, 1, 5)
	if tc.Len() != 7 || tc.Kind() != TypedInt64 || !tc.HasNulls() {
		t.Fatalf("bad col: len=%d kind=%v", tc.Len(), tc.Kind())
	}
	view := tc.Slice(3, 7) // rows 40,50,60(null),70
	if view.Len() != 4 {
		t.Fatalf("view len = %d", view.Len())
	}
	wantNull := []bool{false, false, true, false}
	for i, w := range wantNull {
		if view.Null(i) != w {
			t.Errorf("view.Null(%d) = %v, want %v", i, view.Null(i), w)
		}
	}
	if got := view.Ints()[0]; got != 40 {
		t.Errorf("view.Ints()[0] = %d", got)
	}
	got := view.Materialize(nil)
	want := []variant.Value{variant.Int(40), variant.Int(50), variant.Null, variant.Int(70)}
	for i := range want {
		if !variant.BinaryEqual(got[i], want[i]) {
			t.Errorf("materialized[%d] = %s, want %s", i, got[i].JSON(), want[i].JSON())
		}
	}
}

func TestTypedColKinds(t *testing.T) {
	f := NewFloat64Col([]float64{1.5, 2.5}, nil)
	if f.HasNulls() || f.Null(1) {
		t.Error("nil bitmap must mean no nulls")
	}
	if got := f.Materialize(nil); !variant.BinaryEqual(got[1], variant.Float(2.5)) {
		t.Errorf("float materialize = %s", got[1].JSON())
	}
	s := NewStringCol([]string{"a", "b"}, nil)
	if s.StringAt(1) != "b" {
		t.Errorf("StringAt = %q", s.StringAt(1))
	}
	d := NewDictCol([]string{"x", "y"}, []uint32{1, 0, 1}, nil)
	if d.Kind() != TypedString || d.Len() != 3 || d.StringAt(0) != "y" || d.Strs() != nil {
		t.Errorf("dict col: kind=%v len=%d at0=%q", d.Kind(), d.Len(), d.StringAt(0))
	}
	dv := d.Slice(1, 3)
	if dv.StringAt(1) != "y" || len(dv.Dict()) != 2 {
		t.Errorf("dict slice: at1=%q dict=%v", dv.StringAt(1), dv.Dict())
	}
	bc := NewBoolCol([]bool{true, false}, nil)
	if got := bc.Materialize(nil); !variant.BinaryEqual(got[0], variant.Bool(true)) {
		t.Errorf("bool materialize = %s", got[0].JSON())
	}
}

func TestBatchTypedColumnMaterializeCaches(t *testing.T) {
	tc := intColWithNulls([]int64{1, 2, 3}, 1)
	b := &Batch{Cols: make([][]variant.Value, 1), Typed: []*TypedCol{tc}}
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3 from the typed view", b.Len())
	}
	if b.TypedCol(0) != tc {
		t.Fatal("TypedCol(0) lost the view")
	}
	col := b.Column(0)
	if len(col) != 3 || !col[1].IsNull() || col[2].AsInt() != 3 {
		t.Fatalf("materialized column = %v", col)
	}
	if &b.Column(0)[0] != &col[0] {
		t.Error("second Column call re-materialized instead of caching")
	}
	// Views share the Cols backing array, so materialization through a view
	// is seen by the parent and vice versa.
	view := b.WithSel([]int{0, 2})
	if &view.Column(0)[0] != &col[0] {
		t.Error("view materialized its own copy")
	}
	rows := view.AppendRows(nil)
	if len(rows) != 2 || rows[1][0].AsInt() != 3 {
		t.Fatalf("AppendRows over typed batch = %v", rows)
	}
}

func TestBatchRowOverTypedColumn(t *testing.T) {
	b := &Batch{
		Cols:  make([][]variant.Value, 2),
		Typed: []*TypedCol{NewInt64Col([]int64{7, 8}, nil), nil},
	}
	b.Cols[1] = []variant.Value{variant.String("a"), variant.String("b")}
	row := b.Row(1, nil)
	if row[0].AsInt() != 8 || row[1].AsString() != "b" {
		t.Fatalf("Row = %v", row)
	}
}
