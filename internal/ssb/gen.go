// Package ssb implements the Star Schema Benchmark workload (§V-G of the
// paper): a deterministic generator for the lineorder fact table and the
// customer/supplier/part/date dimensions with the standard value domains,
// the thirteen queries (Q1.1–Q4.3) expressed both in JSONiq and as
// handwritten SQL, and execution helpers. Scale factors are re-based to
// laptop scale: SF1 ≡ 6 000 lineorders (the official 6 M divided by 1000).
package ssb

import (
	"fmt"
	"math/rand"

	"jsonpark/internal/engine"
	"jsonpark/internal/runtime"
	"jsonpark/internal/variant"
)

// LineordersPerSF is the fact-table cardinality at scale factor 1.
const LineordersPerSF = 6000

// Sizes describes a generated database.
type Sizes struct {
	Lineorders int
	Customers  int
	Suppliers  int
	Parts      int
	Dates      int
}

// SizesForScaleFactor derives laptop-scale table sizes from an SSB scale
// factor, preserving the official ratios (customer 30 k·SF, supplier
// 2 k·SF, part ~200 k, date fixed at 7 years).
func SizesForScaleFactor(sf float64) Sizes {
	lo := int(sf * LineordersPerSF)
	if lo < 64 {
		lo = 64
	}
	c := int(sf * 300)
	if c < 40 {
		c = 40
	}
	s := int(sf * 100)
	if s < 15 {
		s = 15
	}
	p := int(sf * 400)
	if p < 80 {
		p = 80
	}
	return Sizes{Lineorders: lo, Customers: c, Suppliers: s, Parts: p, Dates: 7 * 365}
}

var regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var nationsByRegion = map[string][]string{
	"AFRICA":      {"ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE"},
	"AMERICA":     {"ARGENTINA", "BRAZIL", "CANADA", "PERU", "UNITED STATES"},
	"ASIA":        {"CHINA", "INDIA", "INDONESIA", "JAPAN", "VIETNAM"},
	"EUROPE":      {"FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM"},
	"MIDDLE EAST": {"EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA"},
}

var mktSegments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}

var monthNames = []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}

// city derives an SSB-style city name: nation prefix plus a digit.
func city(nation string, i int) string {
	p := nation
	if len(p) > 9 {
		p = p[:9]
	}
	return fmt.Sprintf("%s%d", p, i%10)
}

// Tables holds a generated database as in-memory rows, loadable into both
// the columnar engine and the interpreted runtime.
type Tables struct {
	Lineorder []variant.Value
	Customer  []variant.Value
	Supplier  []variant.Value
	Part      []variant.Value
	Date      []variant.Value
}

// Generate builds a deterministic SSB database.
func Generate(seed int64, sz Sizes) *Tables {
	rng := rand.New(rand.NewSource(seed))
	t := &Tables{}

	// Date dimension: 7 years starting 1992, 365 days each (SSB convention).
	// Smaller date tables spread evenly across the full range so every year
	// remains represented.
	nd := sz.Dates
	span := 7 * 365
	for i := 0; i < nd; i++ {
		idx := i
		if nd < span {
			idx = i * span / nd
		}
		year := 1992 + idx/365
		dayOfYear := idx % 365
		month := dayOfYear / 31
		if month > 11 {
			month = 11
		}
		day := dayOfYear - month*31 + 1
		key := year*10000 + (month+1)*100 + day
		o := variant.NewObject()
		o.Set("d_datekey", variant.Int(int64(key)))
		o.Set("d_date", variant.String(fmt.Sprintf("%04d-%02d-%02d", year, month+1, day)))
		o.Set("d_year", variant.Int(int64(year)))
		o.Set("d_month", variant.String(monthNames[month]))
		o.Set("d_yearmonthnum", variant.Int(int64(year*100+month+1)))
		o.Set("d_yearmonth", variant.String(fmt.Sprintf("%s%d", monthNames[month], year)))
		o.Set("d_weeknuminyear", variant.Int(int64(dayOfYear/7+1)))
		o.Set("d_daynuminweek", variant.Int(int64(i%7+1)))
		t.Date = append(t.Date, variant.ObjectValue(o))
	}

	for i := 0; i < sz.Customers; i++ {
		region := regions[rng.Intn(len(regions))]
		nation := nationsByRegion[region][rng.Intn(5)]
		o := variant.NewObject()
		o.Set("c_custkey", variant.Int(int64(i+1)))
		o.Set("c_name", variant.String(fmt.Sprintf("Customer#%09d", i+1)))
		o.Set("c_city", variant.String(city(nation, rng.Intn(10))))
		o.Set("c_nation", variant.String(nation))
		o.Set("c_region", variant.String(region))
		o.Set("c_mktsegment", variant.String(mktSegments[rng.Intn(len(mktSegments))]))
		t.Customer = append(t.Customer, variant.ObjectValue(o))
	}

	for i := 0; i < sz.Suppliers; i++ {
		region := regions[rng.Intn(len(regions))]
		nation := nationsByRegion[region][rng.Intn(5)]
		o := variant.NewObject()
		o.Set("s_suppkey", variant.Int(int64(i+1)))
		o.Set("s_name", variant.String(fmt.Sprintf("Supplier#%09d", i+1)))
		o.Set("s_city", variant.String(city(nation, rng.Intn(10))))
		o.Set("s_nation", variant.String(nation))
		o.Set("s_region", variant.String(region))
		t.Supplier = append(t.Supplier, variant.ObjectValue(o))
	}

	for i := 0; i < sz.Parts; i++ {
		mfgr := rng.Intn(5) + 1
		cat := rng.Intn(5) + 1
		brand := rng.Intn(40) + 1
		o := variant.NewObject()
		o.Set("p_partkey", variant.Int(int64(i+1)))
		o.Set("p_name", variant.String(fmt.Sprintf("part %d", i+1)))
		o.Set("p_mfgr", variant.String(fmt.Sprintf("MFGR#%d", mfgr)))
		o.Set("p_category", variant.String(fmt.Sprintf("MFGR#%d%d", mfgr, cat)))
		o.Set("p_brand1", variant.String(fmt.Sprintf("MFGR#%d%d%02d", mfgr, cat, brand)))
		o.Set("p_size", variant.Int(int64(rng.Intn(50)+1)))
		t.Part = append(t.Part, variant.ObjectValue(o))
	}

	for i := 0; i < sz.Lineorders; i++ {
		quantity := int64(rng.Intn(50) + 1)
		discount := int64(rng.Intn(11))
		extended := int64(rng.Intn(550000) + 90000)
		revenue := extended * (100 - discount) / 100
		o := variant.NewObject()
		o.Set("lo_orderkey", variant.Int(int64(i/4+1)))
		o.Set("lo_linenumber", variant.Int(int64(i%4+1)))
		o.Set("lo_custkey", variant.Int(int64(rng.Intn(sz.Customers)+1)))
		o.Set("lo_partkey", variant.Int(int64(rng.Intn(sz.Parts)+1)))
		o.Set("lo_suppkey", variant.Int(int64(rng.Intn(sz.Suppliers)+1)))
		o.Set("lo_orderdate", t.Date[rng.Intn(len(t.Date))].Field("d_datekey"))
		o.Set("lo_quantity", variant.Int(quantity))
		o.Set("lo_extendedprice", variant.Int(extended))
		o.Set("lo_discount", variant.Int(discount))
		o.Set("lo_revenue", variant.Int(revenue))
		o.Set("lo_supplycost", variant.Int(extended*6/10))
		o.Set("lo_tax", variant.Int(int64(rng.Intn(9))))
		t.Lineorder = append(t.Lineorder, variant.ObjectValue(o))
	}
	return t
}

// tableColumns lists each table's staging schema in order.
var tableColumns = map[string][]string{
	"lineorder": {"lo_orderkey", "lo_linenumber", "lo_custkey", "lo_partkey", "lo_suppkey", "lo_orderdate", "lo_quantity", "lo_extendedprice", "lo_discount", "lo_revenue", "lo_supplycost", "lo_tax"},
	"customer":  {"c_custkey", "c_name", "c_city", "c_nation", "c_region", "c_mktsegment"},
	"supplier":  {"s_suppkey", "s_name", "s_city", "s_nation", "s_region"},
	"part":      {"p_partkey", "p_name", "p_mfgr", "p_category", "p_brand1", "p_size"},
	"date":      {"d_datekey", "d_date", "d_year", "d_month", "d_yearmonthnum", "d_yearmonth", "d_weeknuminyear", "d_daynuminweek"},
}

// Load stages the generated tables into a columnar engine.
func (t *Tables) Load(eng *engine.Engine) error {
	for name, docs := range map[string][]variant.Value{
		"lineorder": t.Lineorder, "customer": t.Customer,
		"supplier": t.Supplier, "part": t.Part, "date": t.Date,
	} {
		tab, err := eng.Catalog().CreateTable(name, tableColumns[name])
		if err != nil {
			return err
		}
		for _, d := range docs {
			if err := tab.AppendObject(d); err != nil {
				return err
			}
		}
		tab.Seal()
	}
	return nil
}

// LoadRuntime stages the tables into an interpreted engine.
func (t *Tables) LoadRuntime(rt *runtime.Engine) {
	rt.LoadCollection("lineorder", t.Lineorder)
	rt.LoadCollection("customer", t.Customer)
	rt.LoadCollection("supplier", t.Supplier)
	rt.LoadCollection("part", t.Part)
	rt.LoadCollection("date", t.Date)
}
