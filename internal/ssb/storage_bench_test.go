package ssb

import (
	"fmt"
	"testing"

	"jsonpark/internal/engine"
	"jsonpark/internal/snowpark"
)

// BenchmarkSSBTypedVsVariant runs the scan-heavy SSB flight-1 queries (one
// fact-table filter + SUM each) single-threaded against typed shredded
// chunks and the variant-only v1 layout. SSB is where storage v2 engages
// fully: every lineorder column is a uniform scalar, so the date/discount/
// quantity predicates and the revenue arithmetic all run typed, and the
// zone maps on the typed arrays prune whole partitions of the year filters.
func BenchmarkSSBTypedVsVariant(b *testing.B) {
	const seed, sf = 7, 0.2
	ids := []string{"q1.1", "q1.2", "q1.3"}
	for _, mode := range []struct {
		name  string
		typed bool
	}{{"typed", true}, {"variant", false}} {
		opts := []engine.Option{engine.WithParallelism(1)}
		if !mode.typed {
			opts = append(opts, engine.WithTypedColumns(false))
		}
		eng := engine.New(opts...)
		if err := Generate(seed, SizesForScaleFactor(sf)).Load(eng); err != nil {
			b.Fatal(err)
		}
		sess := snowpark.NewSession(eng)
		for _, id := range ids {
			var q Query
			for _, cand := range Queries() {
				if cand.ID == id {
					q = cand
				}
			}
			b.Run(fmt.Sprintf("%s/mode=%s", id, mode.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := RunTranslated(sess, q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
