package ssb

import (
	"fmt"
	"io"
	"time"

	"jsonpark/internal/bench"
	"jsonpark/internal/engine"
	"jsonpark/internal/snowpark"
)

// ReportConfig parameterizes the SSB figure regeneration.
type ReportConfig struct {
	Seed         int64
	ScaleFactor  float64   // Fig 11a dataset size
	ScaleFactors []float64 // Fig 11b sweep
	Warmups      int
	Runs         int
	Out          io.Writer
	// Recorder, when non-nil, accumulates every data point in machine-
	// readable form alongside the text tables (ssbbench -json).
	Recorder *bench.Recorder
	// BatchSize and Parallelism configure the vectorized executor; zero
	// values take the engine defaults (1024 rows, NumCPU workers).
	BatchSize   int
	Parallelism int
	// MemLimit caps the pipeline breakers' retained bytes per query;
	// overflow spills to disk with byte-identical results. 0 = unlimited.
	MemLimit int64
	// Repeat, when > 0, selects the hot-query repeat experiment (ssbbench
	// -repeat N): each Fig 11b query runs N times against a plan-cached
	// engine and an uncached one.
	Repeat int
}

// DefaultConfig returns laptop-scale defaults (the paper uses SF 1000 for
// Fig 11a and {1,10,100,1000} for Fig 11b; re-based per DESIGN.md).
func DefaultConfig(out io.Writer) ReportConfig {
	return ReportConfig{
		Seed:         7,
		ScaleFactor:  4,
		ScaleFactors: []float64{0.5, 1, 2, 4},
		Warmups:      1,
		Runs:         3,
		Out:          out,
	}
}

// SetupSF loads one SSB database at the given scale factor.
func SetupSF(seed int64, sf float64) (*snowpark.Session, error) {
	return SetupSFOpts(seed, sf, 0, 0)
}

// SetupSFOpts is SetupSF with explicit executor settings; zero values take
// the engine defaults.
func SetupSFOpts(seed int64, sf float64, batchSize, parallelism int) (*snowpark.Session, error) {
	return SetupSFMemOpts(seed, sf, batchSize, parallelism, 0)
}

// SetupSFMemOpts is SetupSFOpts with a pipeline-breaker memory budget
// (0 = unlimited; overflow spills to disk, results stay byte-identical).
// The prepared-plan cache is pinned off so repeated measurement runs keep
// paying real compilation; ReportRepeat compares cached vs uncached
// explicitly.
func SetupSFMemOpts(seed int64, sf float64, batchSize, parallelism int, memLimit int64) (*snowpark.Session, error) {
	eng := engine.New(
		engine.WithBatchSize(batchSize),
		engine.WithParallelism(parallelism),
		engine.WithMemLimit(memLimit),
		engine.WithPlanCacheSize(-1),
	)
	tabs := Generate(seed, SizesForScaleFactor(sf))
	if err := tabs.Load(eng); err != nil {
		return nil, err
	}
	return snowpark.NewSession(eng), nil
}

func measureTotal(fn func() (*engine.Result, error), cfg ReportConfig) (time.Duration, engine.Metrics, error) {
	var total time.Duration
	var n int
	var last engine.Metrics
	_, err := bench.Measure(cfg.Warmups, cfg.Runs, func() error {
		res, err := fn()
		if err != nil {
			return err
		}
		total += res.Metrics.Total()
		last = res.Metrics
		n++
		return nil
	})
	if err != nil {
		return 0, last, err
	}
	return total / time.Duration(n), last, nil
}

// memFields copies a run's memory-governance metrics into the record so
// the -json output carries peak/spill data alongside the timings.
func memFields(rec bench.Record, m engine.Metrics) bench.Record {
	rec.MemPeakBytes = m.MemPeakBytes
	rec.MemLimitBytes = m.MemLimitBytes
	rec.Spills = m.Spills
	rec.SpillBytes = m.SpillBytes
	return rec
}

// ReportRepeat measures the serving fast path on SSB (ssbbench -repeat N):
// the Fig 11b representative queries run N times end-to-end on a
// plan-cached engine vs an uncached one at the configured scale factor,
// reporting per-iteration time and the amortized speedup. Results are
// checked identical between the two engines before timing.
func ReportRepeat(cfg ReportConfig) error {
	repeat := cfg.Repeat
	if repeat <= 0 {
		repeat = 50
	}
	mk := func(cacheSize int) (*engine.Engine, error) {
		eng := engine.New(
			engine.WithBatchSize(cfg.BatchSize),
			engine.WithParallelism(cfg.Parallelism),
			engine.WithMemLimit(cfg.MemLimit),
			engine.WithPlanCacheSize(cacheSize),
		)
		tabs := Generate(cfg.Seed, SizesForScaleFactor(cfg.ScaleFactor))
		if err := tabs.Load(eng); err != nil {
			return nil, err
		}
		return eng, nil
	}
	cached, err := mk(0)
	if err != nil {
		return err
	}
	uncached, err := mk(-1)
	if err != nil {
		return err
	}
	t := bench.NewTable(
		fmt.Sprintf("Hot-query repeat (SF %g × %d runs): plan cache on vs off", cfg.ScaleFactor, repeat),
		"Query", "Uncached/iter", "Cached/iter", "Speedup")
	for _, id := range Fig11bQueries {
		q, ok := ByID(id)
		if !ok {
			return fmt.Errorf("ssb: unknown query %s", id)
		}
		warmC, err := cached.Query(q.SQL)
		if err != nil {
			return err
		}
		warmU, err := uncached.Query(q.SQL)
		if err != nil {
			return err
		}
		if fmt.Sprint(warmC.Rows) != fmt.Sprint(warmU.Rows) {
			return fmt.Errorf("%s: cached results diverge from uncached", id)
		}
		runTotal := func(eng *engine.Engine) (time.Duration, error) {
			start := time.Now()
			for i := 0; i < repeat; i++ {
				if _, err := eng.Query(q.SQL); err != nil {
					return 0, err
				}
			}
			return time.Since(start), nil
		}
		uTotal, err := runTotal(uncached)
		if err != nil {
			return err
		}
		cTotal, err := runTotal(cached)
		if err != nil {
			return err
		}
		uIter := uTotal / time.Duration(repeat)
		cIter := cTotal / time.Duration(repeat)
		speedup := float64(uTotal) / float64(cTotal)
		cfg.Recorder.Add(bench.Record{Experiment: "repeat", Query: id, System: "uncached", Scale: cfg.ScaleFactor, MeanMicros: uIter.Microseconds(), Runs: repeat})
		cfg.Recorder.Add(bench.Record{Experiment: "repeat", Query: id, System: "cached", Scale: cfg.ScaleFactor, MeanMicros: cIter.Microseconds(), Runs: repeat})
		t.AddRow(id, bench.FormatDuration(uIter), bench.FormatDuration(cIter), fmt.Sprintf("%.2fx", speedup))
	}
	hits, misses, _, _ := cached.PlanCacheStats()
	t.Render(cfg.Out)
	fmt.Fprintf(cfg.Out, "plan cache: %d hits, %d misses\n\n", hits, misses)
	return nil
}

// ReportFig11a regenerates Figure 11a: total (compile + execution) time for
// all thirteen SSB queries, generated vs handwritten, at one scale factor.
func ReportFig11a(cfg ReportConfig) error {
	sess, err := SetupSFMemOpts(cfg.Seed, cfg.ScaleFactor, cfg.BatchSize, cfg.Parallelism, cfg.MemLimit)
	if err != nil {
		return err
	}
	t := bench.NewTable(
		fmt.Sprintf("Fig 11a analogue: SSB total time at SF %g", cfg.ScaleFactor),
		"Query", "Generated", "Handwritten")
	for _, q := range Queries() {
		q := q
		gen, genM, err := measureTotal(func() (*engine.Result, error) {
			_, res, err := RunTranslated(sess, q)
			return res, err
		}, cfg)
		if err != nil {
			return err
		}
		hand, handM, err := measureTotal(func() (*engine.Result, error) {
			_, res, err := RunHandwritten(sess.Engine(), q)
			return res, err
		}, cfg)
		if err != nil {
			return err
		}
		cfg.Recorder.Add(memFields(bench.Record{Experiment: "fig11a", Query: q.ID, System: "generated", Scale: cfg.ScaleFactor, MeanMicros: gen.Microseconds(), Runs: cfg.Runs, BytesScanned: genM.BytesScanned}, genM))
		cfg.Recorder.Add(memFields(bench.Record{Experiment: "fig11a", Query: q.ID, System: "handwritten", Scale: cfg.ScaleFactor, MeanMicros: hand.Microseconds(), Runs: cfg.Runs, BytesScanned: handM.BytesScanned}, handM))
		t.AddRow(q.ID, bench.FormatDuration(gen), bench.FormatDuration(hand))
	}
	t.Render(cfg.Out)
	return nil
}

// Fig11bQueries is the subset the paper plots across scale factors.
var Fig11bQueries = []string{"q1.1", "q2.1", "q3.1", "q4.1"}

// ReportFig11b regenerates Figure 11b: runtime vs scale factor for the
// representative query of each flight.
func ReportFig11b(cfg ReportConfig) error {
	set := bench.NewSeriesSet("Fig 11b analogue: SSB runtime vs scale factor", "SF")
	series := map[string]*bench.Series{}
	for _, id := range Fig11bQueries {
		series[id+" gen"] = set.Add(id + " gen")
		series[id+" hand"] = set.Add(id + " hand")
	}
	for _, sf := range cfg.ScaleFactors {
		sess, err := SetupSFMemOpts(cfg.Seed, sf, cfg.BatchSize, cfg.Parallelism, cfg.MemLimit)
		if err != nil {
			return err
		}
		for _, id := range Fig11bQueries {
			q, ok := ByID(id)
			if !ok {
				return fmt.Errorf("ssb: unknown query %s", id)
			}
			gen, genM, err := measureTotal(func() (*engine.Result, error) {
				_, res, err := RunTranslated(sess, q)
				return res, err
			}, cfg)
			if err != nil {
				return err
			}
			hand, handM, err := measureTotal(func() (*engine.Result, error) {
				_, res, err := RunHandwritten(sess.Engine(), q)
				return res, err
			}, cfg)
			if err != nil {
				return err
			}
			cfg.Recorder.Add(memFields(bench.Record{Experiment: "fig11b", Query: id, System: "generated", Scale: sf, MeanMicros: gen.Microseconds(), Runs: cfg.Runs, BytesScanned: genM.BytesScanned}, genM))
			cfg.Recorder.Add(memFields(bench.Record{Experiment: "fig11b", Query: id, System: "handwritten", Scale: sf, MeanMicros: hand.Microseconds(), Runs: cfg.Runs, BytesScanned: handM.BytesScanned}, handM))
			series[id+" gen"].Points[sf] = bench.FormatDuration(gen)
			series[id+" hand"].Points[sf] = bench.FormatDuration(hand)
		}
	}
	set.Render(cfg.Out)
	return nil
}
