package ssb

import (
	"strings"
	"testing"

	"jsonpark/internal/engine"
	"jsonpark/internal/runtime"
	"jsonpark/internal/snowpark"
)

// testTables generates a small database with a reduced date dimension so the
// interpreted runtime's materialized cross products stay tractable.
func testTables(t *testing.T) *Tables {
	t.Helper()
	sz := Sizes{Lineorders: 2500, Customers: 60, Suppliers: 25, Parts: 120, Dates: 84}
	return Generate(77, sz)
}

func testEngines(t *testing.T) (*snowpark.Session, *runtime.Engine) {
	t.Helper()
	tab := testTables(t)
	eng := engine.New()
	if err := tab.Load(eng); err != nil {
		t.Fatal(err)
	}
	rt := runtime.New(runtime.ProfileDefault)
	tab.LoadRuntime(rt)
	return snowpark.NewSession(eng), rt
}

// TestSSBBackendsAgree differentially tests every SSB query across the
// translator, the handwritten SQL and the interpreted runtime.
func TestSSBBackendsAgree(t *testing.T) {
	sess, rt := testEngines(t)
	nonEmpty := 0
	for _, q := range Queries() {
		q := q
		t.Run(q.ID, func(t *testing.T) {
			want, err := RunInterpreted(rt, q)
			if err != nil {
				t.Fatal(err)
			}
			if len(want) > 0 {
				nonEmpty++
			}
			hand, _, err := RunHandwritten(sess.Engine(), q)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := RunTranslated(sess, q)
			if err != nil {
				t.Fatal(err)
			}
			// Q1.x: SUM over zero rows is NULL in SQL but 0 in JSONiq; treat
			// those as equivalent empties.
			if isScalarQuery(q.ID) && len(hand) == 1 && len(want) == 1 {
				if hand[0] != want[0] && strings.HasPrefix(hand[0], "n") && want[0] == "d0" {
					hand = want
				}
			}
			if !hand.Equal(want) {
				t.Errorf("handwritten mismatch\nhand: %v\nwant: %v", hand, want)
			}
			if !got.Equal(want) {
				t.Errorf("translated mismatch\ngot:  %v\nwant: %v", got, want)
			}
		})
	}
}

func isScalarQuery(id string) bool { return strings.HasPrefix(id, "q1.") }

// TestSSBSelectivity ensures the generated data actually exercises the
// filters (a query matching nothing would vacuously "agree").
func TestSSBSelectivity(t *testing.T) {
	sess, _ := testEngines(t)
	for _, id := range []string{"q1.1", "q2.1", "q3.1", "q4.1"} {
		q, _ := ByID(id)
		rows, _, err := RunTranslated(sess, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) == 0 {
			t.Errorf("%s returned no rows; generator selectivity broken", id)
		}
		if id == "q1.1" && rows[0] == "d0" {
			t.Errorf("%s revenue is zero", id)
		}
	}
}

// TestSSBJoinsAreHashJoins verifies the optimizer turns the translated
// cross-join-plus-equality pattern into hash equi-joins (otherwise SSB
// would be quadratic and the Fig 11 comparison meaningless).
func TestSSBJoinsAreHashJoins(t *testing.T) {
	sess, _ := testEngines(t)
	q, _ := ByID("q3.1")
	res, err := RunTranslatedPlan(sess, q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res, "CROSS Join") {
		t.Errorf("plan still contains a cross join:\n%s", res)
	}
	if strings.Count(res, "INNER Join") < 3 {
		t.Errorf("expected at least 3 hash joins:\n%s", res)
	}
}

// RunTranslatedPlan returns the engine plan of the translated query.
func RunTranslatedPlan(sess *snowpark.Session, q Query) (string, error) {
	sql, err := TranslateSQL(sess, q)
	if err != nil {
		return "", err
	}
	return sess.Engine().Explain(sql)
}

func TestGeneratorDeterminismAndDomains(t *testing.T) {
	a := Generate(5, SizesForScaleFactor(0.01))
	b := Generate(5, SizesForScaleFactor(0.01))
	if len(a.Lineorder) != len(b.Lineorder) {
		t.Fatal("non-deterministic sizes")
	}
	for i := range a.Lineorder {
		if a.Lineorder[i].HashKey() != b.Lineorder[i].HashKey() {
			t.Fatal("non-deterministic rows")
		}
	}
	years := map[int64]bool{}
	for _, d := range a.Date {
		years[d.Field("d_year").AsInt()] = true
	}
	for y := int64(1992); y <= 1998; y++ {
		if !years[y] {
			t.Errorf("year %d missing from reduced date dimension", y)
		}
	}
	for _, c := range a.Customer {
		r := c.Field("c_region").AsString()
		found := false
		for _, known := range regions {
			if known == r {
				found = true
			}
		}
		if !found {
			t.Fatalf("unknown region %q", r)
		}
	}
}

func TestSizesForScaleFactor(t *testing.T) {
	s := SizesForScaleFactor(1)
	if s.Lineorders != LineordersPerSF {
		t.Errorf("SF1 lineorders = %d", s.Lineorders)
	}
	tiny := SizesForScaleFactor(0.0001)
	if tiny.Lineorders < 64 || tiny.Customers < 40 {
		t.Errorf("tiny sizes not floored: %+v", tiny)
	}
}
