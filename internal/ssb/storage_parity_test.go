package ssb

import (
	"testing"

	"jsonpark/internal/engine"
	"jsonpark/internal/snowpark"
)

// TestSSBStorageParity runs all thirteen SSB queries across the storage
// dimension: variant-only chunks (the v1 layout, the oracle), typed
// shredded chunks, and typed chunks persisted to disk and reloaded into a
// fresh engine. All cells must render byte-identical rows for both the
// translated and handwritten pipelines. SSB is the relational stress for
// typed encodings — the flat scalar columns shred typed almost everywhere.
func TestSSBStorageParity(t *testing.T) {
	const seed, sf = 7, 0.2
	mkSession := func(opts ...engine.Option) *snowpark.Session {
		eng := engine.New(opts...)
		if err := Generate(seed, SizesForScaleFactor(sf)).Load(eng); err != nil {
			t.Fatal(err)
		}
		return snowpark.NewSession(eng)
	}
	reload := func() *snowpark.Session {
		dir := t.TempDir()
		eng := engine.New(engine.WithDataDir(dir), engine.WithParallelism(1))
		if err := Generate(seed, SizesForScaleFactor(sf)).Load(eng); err != nil {
			t.Fatal(err)
		}
		if err := eng.Catalog().Flush(); err != nil {
			t.Fatal(err)
		}
		return snowpark.NewSession(engine.New(engine.WithDataDir(dir), engine.WithParallelism(1)))
	}

	cells := []struct {
		name string
		sess *snowpark.Session
	}{
		{"variant-only", mkSession(engine.WithTypedColumns(false), engine.WithParallelism(1))},
		{"typed", mkSession(engine.WithParallelism(1))},
		{"typed-par4", mkSession(engine.WithParallelism(4))},
		{"typed-persist-reload", reload()},
	}

	type ref struct{ translated, handwritten string }
	var want map[string]ref
	for _, cell := range cells {
		got := make(map[string]ref)
		for _, q := range Queries() {
			_, tres, err := RunTranslated(cell.sess, q)
			if err != nil {
				t.Fatalf("%s [%s]: %v", q.ID, cell.name, err)
			}
			_, hres, err := RunHandwritten(cell.sess.Engine(), q)
			if err != nil {
				t.Fatalf("%s [%s]: %v", q.ID, cell.name, err)
			}
			got[q.ID] = ref{renderResult(tres), renderResult(hres)}
		}
		if want == nil {
			want = got // variant-only is the oracle
			continue
		}
		for _, q := range Queries() {
			if got[q.ID].translated != want[q.ID].translated {
				t.Errorf("%s translated: %s diverges from variant-only", q.ID, cell.name)
			}
			if got[q.ID].handwritten != want[q.ID].handwritten {
				t.Errorf("%s handwritten: %s diverges from variant-only", q.ID, cell.name)
			}
		}
	}
}
