package ssb

import (
	"strings"
	"testing"
)

func TestReportFig11aSmoke(t *testing.T) {
	var sb strings.Builder
	cfg := DefaultConfig(&sb)
	cfg.ScaleFactor = 0.02
	cfg.Warmups = 0
	cfg.Runs = 1
	if err := ReportFig11a(cfg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{"Fig 11a", "q1.1", "q4.3", "Generated", "Handwritten"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q:\n%s", frag, out)
		}
	}
}

func TestReportFig11bSmoke(t *testing.T) {
	var sb strings.Builder
	cfg := DefaultConfig(&sb)
	cfg.ScaleFactors = []float64{0.02, 0.04}
	cfg.Warmups = 0
	cfg.Runs = 1
	if err := ReportFig11b(cfg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{"Fig 11b", "q1.1 gen", "q4.1 hand", "0.02", "0.04"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q:\n%s", frag, out)
		}
	}
}
