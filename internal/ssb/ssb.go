package ssb

import (
	"fmt"
	"sort"

	"jsonpark/internal/core"
	"jsonpark/internal/engine"
	"jsonpark/internal/jsoniq"
	"jsonpark/internal/runtime"
	"jsonpark/internal/snowpark"
	"jsonpark/internal/variant"
)

// Rows is a canonical, order-insensitive query result: one JSON object per
// row, sorted by serialized form.
type Rows []string

// Equal compares two canonical results.
func (r Rows) Equal(o Rows) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if r[i] != o[i] {
			return false
		}
	}
	return true
}

func canonItems(items []variant.Value) Rows {
	out := make(Rows, len(items))
	for i, it := range items {
		out[i] = it.HashKey()
	}
	sort.Strings(out)
	return out
}

// canonResult converts a relational result to objects keyed by column name,
// so handwritten SQL rows compare against JSONiq objects.
func canonResult(res *engine.Result) Rows {
	out := make(Rows, len(res.Rows))
	for i, row := range res.Rows {
		if len(row) == 1 {
			out[i] = row[0].HashKey()
			continue
		}
		o := variant.NewObject()
		for c, name := range res.Columns {
			o.Set(name, row[c])
		}
		out[i] = variant.ObjectValue(o).HashKey()
	}
	sort.Strings(out)
	return out
}

// RunTranslated translates and executes one query.
func RunTranslated(sess *snowpark.Session, q Query) (Rows, *engine.Result, error) {
	res, err := core.Translate(sess, q.JSONiq, core.Options{})
	if err != nil {
		return nil, nil, fmt.Errorf("ssb %s: translate: %w", q.ID, err)
	}
	out, err := res.DataFrame.Collect()
	if err != nil {
		return nil, nil, fmt.Errorf("ssb %s: execute: %w", q.ID, err)
	}
	items := make([]variant.Value, len(out.Rows))
	for i, row := range out.Rows {
		items[i] = row[0]
	}
	return canonItems(items), out, nil
}

// TranslateSQL returns the translated SQL text without executing it.
func TranslateSQL(sess *snowpark.Session, q Query) (string, error) {
	res, err := core.Translate(sess, q.JSONiq, core.Options{})
	if err != nil {
		return "", fmt.Errorf("ssb %s: translate: %w", q.ID, err)
	}
	return res.SQL, nil
}

// RunHandwritten executes the handwritten SQL reference.
func RunHandwritten(eng *engine.Engine, q Query) (Rows, *engine.Result, error) {
	out, err := eng.Query(q.SQL)
	if err != nil {
		return nil, nil, fmt.Errorf("ssb %s: handwritten: %w", q.ID, err)
	}
	return canonResult(out), out, nil
}

// RunInterpreted executes the JSONiq query on the interpreted runtime.
func RunInterpreted(rt *runtime.Engine, q Query) (Rows, error) {
	expr, err := jsoniq.Parse(q.JSONiq)
	if err != nil {
		return nil, fmt.Errorf("ssb %s: parse: %w", q.ID, err)
	}
	items, err := rt.Run(jsoniq.Rewrite(expr))
	if err != nil {
		return nil, fmt.Errorf("ssb %s: interpret: %w", q.ID, err)
	}
	return canonItems(items), nil
}
