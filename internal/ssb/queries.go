package ssb

// The thirteen SSB queries. The JSONiq formulations express the star joins
// as successive for clauses with where equalities (§II-E of the paper); the
// handwritten SQL uses explicit INNER JOINs. Both produce identical rows:
// flight Q1.x returns a single revenue value, flights Q2–Q4 return grouped
// rows whose object keys match the SQL output column names. As the paper
// notes for SSB (§V-G), the JSONiq version returns a single object per row,
// which adds an OBJECT_CONSTRUCT to the plan.

// Query is one SSB query in both languages.
type Query struct {
	ID     string
	JSONiq string
	SQL    string
}

// Queries returns Q1.1–Q4.3 in flight order.
func Queries() []Query {
	return []Query{
		{"q1.1", q11JSONiq, q11SQL},
		{"q1.2", q12JSONiq, q12SQL},
		{"q1.3", q13JSONiq, q13SQL},
		{"q2.1", q21JSONiq, q21SQL},
		{"q2.2", q22JSONiq, q22SQL},
		{"q2.3", q23JSONiq, q23SQL},
		{"q3.1", q31JSONiq, q31SQL},
		{"q3.2", q32JSONiq, q32SQL},
		{"q3.3", q33JSONiq, q33SQL},
		{"q3.4", q34JSONiq, q34SQL},
		{"q4.1", q41JSONiq, q41SQL},
		{"q4.2", q42JSONiq, q42SQL},
		{"q4.3", q43JSONiq, q43SQL},
	}
}

// ByID returns one query.
func ByID(id string) (Query, bool) {
	for _, q := range Queries() {
		if q.ID == id {
			return q, true
		}
	}
	return Query{}, false
}

const q11JSONiq = `
sum(
  for $l in collection("lineorder")
  for $d in collection("date")
  where $l.lo_orderdate eq $d.d_datekey
  where $d.d_year eq 1993 and $l.lo_discount ge 1 and $l.lo_discount le 3 and $l.lo_quantity lt 25
  return $l.lo_extendedprice * $l.lo_discount
)`

const q11SQL = `
SELECT SUM(lo_extendedprice * lo_discount) AS revenue
FROM lineorder INNER JOIN date ON lo_orderdate = d_datekey
WHERE d_year = 1993 AND lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25`

const q12JSONiq = `
sum(
  for $l in collection("lineorder")
  for $d in collection("date")
  where $l.lo_orderdate eq $d.d_datekey
  where $d.d_yearmonthnum eq 199401 and $l.lo_discount ge 4 and $l.lo_discount le 6 and $l.lo_quantity ge 26 and $l.lo_quantity le 35
  return $l.lo_extendedprice * $l.lo_discount
)`

const q12SQL = `
SELECT SUM(lo_extendedprice * lo_discount) AS revenue
FROM lineorder INNER JOIN date ON lo_orderdate = d_datekey
WHERE d_yearmonthnum = 199401 AND lo_discount BETWEEN 4 AND 6 AND lo_quantity BETWEEN 26 AND 35`

const q13JSONiq = `
sum(
  for $l in collection("lineorder")
  for $d in collection("date")
  where $l.lo_orderdate eq $d.d_datekey
  where $d.d_weeknuminyear eq 6 and $d.d_year eq 1994 and $l.lo_discount ge 5 and $l.lo_discount le 7 and $l.lo_quantity ge 26 and $l.lo_quantity le 35
  return $l.lo_extendedprice * $l.lo_discount
)`

const q13SQL = `
SELECT SUM(lo_extendedprice * lo_discount) AS revenue
FROM lineorder INNER JOIN date ON lo_orderdate = d_datekey
WHERE d_weeknuminyear = 6 AND d_year = 1994 AND lo_discount BETWEEN 5 AND 7 AND lo_quantity BETWEEN 26 AND 35`

const q21JSONiq = `
for $l in collection("lineorder")
for $d in collection("date")
where $l.lo_orderdate eq $d.d_datekey
for $p in collection("part")
where $l.lo_partkey eq $p.p_partkey and $p.p_category eq "MFGR#12"
for $s in collection("supplier")
where $l.lo_suppkey eq $s.s_suppkey and $s.s_region eq "AMERICA"
group by $year := $d.d_year, $brand := $p.p_brand1
order by $year, $brand
return {"d_year": $year, "p_brand1": $brand, "revenue": sum($l.lo_revenue)}`

const q21SQL = `
SELECT d_year, p_brand1, SUM(lo_revenue) AS revenue
FROM lineorder
  INNER JOIN date ON lo_orderdate = d_datekey
  INNER JOIN part ON lo_partkey = p_partkey
  INNER JOIN supplier ON lo_suppkey = s_suppkey
WHERE p_category = 'MFGR#12' AND s_region = 'AMERICA'
GROUP BY d_year, p_brand1
ORDER BY d_year ASC, p_brand1 ASC`

const q22JSONiq = `
for $l in collection("lineorder")
for $d in collection("date")
where $l.lo_orderdate eq $d.d_datekey
for $p in collection("part")
where $l.lo_partkey eq $p.p_partkey and $p.p_brand1 ge "MFGR#2221" and $p.p_brand1 le "MFGR#2228"
for $s in collection("supplier")
where $l.lo_suppkey eq $s.s_suppkey and $s.s_region eq "ASIA"
group by $year := $d.d_year, $brand := $p.p_brand1
order by $year, $brand
return {"d_year": $year, "p_brand1": $brand, "revenue": sum($l.lo_revenue)}`

const q22SQL = `
SELECT d_year, p_brand1, SUM(lo_revenue) AS revenue
FROM lineorder
  INNER JOIN date ON lo_orderdate = d_datekey
  INNER JOIN part ON lo_partkey = p_partkey
  INNER JOIN supplier ON lo_suppkey = s_suppkey
WHERE p_brand1 BETWEEN 'MFGR#2221' AND 'MFGR#2228' AND s_region = 'ASIA'
GROUP BY d_year, p_brand1
ORDER BY d_year ASC, p_brand1 ASC`

const q23JSONiq = `
for $l in collection("lineorder")
for $d in collection("date")
where $l.lo_orderdate eq $d.d_datekey
for $p in collection("part")
where $l.lo_partkey eq $p.p_partkey and $p.p_brand1 eq "MFGR#2239"
for $s in collection("supplier")
where $l.lo_suppkey eq $s.s_suppkey and $s.s_region eq "EUROPE"
group by $year := $d.d_year, $brand := $p.p_brand1
order by $year, $brand
return {"d_year": $year, "p_brand1": $brand, "revenue": sum($l.lo_revenue)}`

const q23SQL = `
SELECT d_year, p_brand1, SUM(lo_revenue) AS revenue
FROM lineorder
  INNER JOIN date ON lo_orderdate = d_datekey
  INNER JOIN part ON lo_partkey = p_partkey
  INNER JOIN supplier ON lo_suppkey = s_suppkey
WHERE p_brand1 = 'MFGR#2239' AND s_region = 'EUROPE'
GROUP BY d_year, p_brand1
ORDER BY d_year ASC, p_brand1 ASC`

const q31JSONiq = `
for $c in collection("customer")
for $l in collection("lineorder")
where $l.lo_custkey eq $c.c_custkey and $c.c_region eq "ASIA"
for $s in collection("supplier")
where $l.lo_suppkey eq $s.s_suppkey and $s.s_region eq "ASIA"
for $d in collection("date")
where $l.lo_orderdate eq $d.d_datekey and $d.d_year ge 1992 and $d.d_year le 1997
group by $cn := $c.c_nation, $sn := $s.s_nation, $year := $d.d_year
order by $year ascending, sum($l.lo_revenue) descending
return {"c_nation": $cn, "s_nation": $sn, "d_year": $year, "revenue": sum($l.lo_revenue)}`

const q31SQL = `
SELECT c_nation, s_nation, d_year, SUM(lo_revenue) AS revenue
FROM customer
  INNER JOIN lineorder ON lo_custkey = c_custkey
  INNER JOIN supplier ON lo_suppkey = s_suppkey
  INNER JOIN date ON lo_orderdate = d_datekey
WHERE c_region = 'ASIA' AND s_region = 'ASIA' AND d_year BETWEEN 1992 AND 1997
GROUP BY c_nation, s_nation, d_year
ORDER BY d_year ASC, SUM(lo_revenue) DESC`

const q32JSONiq = `
for $c in collection("customer")
for $l in collection("lineorder")
where $l.lo_custkey eq $c.c_custkey and $c.c_nation eq "UNITED STATES"
for $s in collection("supplier")
where $l.lo_suppkey eq $s.s_suppkey and $s.s_nation eq "UNITED STATES"
for $d in collection("date")
where $l.lo_orderdate eq $d.d_datekey and $d.d_year ge 1992 and $d.d_year le 1997
group by $cc := $c.c_city, $sc := $s.s_city, $year := $d.d_year
order by $year ascending, sum($l.lo_revenue) descending
return {"c_city": $cc, "s_city": $sc, "d_year": $year, "revenue": sum($l.lo_revenue)}`

const q32SQL = `
SELECT c_city, s_city, d_year, SUM(lo_revenue) AS revenue
FROM customer
  INNER JOIN lineorder ON lo_custkey = c_custkey
  INNER JOIN supplier ON lo_suppkey = s_suppkey
  INNER JOIN date ON lo_orderdate = d_datekey
WHERE c_nation = 'UNITED STATES' AND s_nation = 'UNITED STATES' AND d_year BETWEEN 1992 AND 1997
GROUP BY c_city, s_city, d_year
ORDER BY d_year ASC, SUM(lo_revenue) DESC`

const q33JSONiq = `
for $c in collection("customer")
for $l in collection("lineorder")
where $l.lo_custkey eq $c.c_custkey and ($c.c_city eq "UNITED KI1" or $c.c_city eq "UNITED KI5")
for $s in collection("supplier")
where $l.lo_suppkey eq $s.s_suppkey and ($s.s_city eq "UNITED KI1" or $s.s_city eq "UNITED KI5")
for $d in collection("date")
where $l.lo_orderdate eq $d.d_datekey and $d.d_year ge 1992 and $d.d_year le 1997
group by $cc := $c.c_city, $sc := $s.s_city, $year := $d.d_year
order by $year ascending, sum($l.lo_revenue) descending
return {"c_city": $cc, "s_city": $sc, "d_year": $year, "revenue": sum($l.lo_revenue)}`

const q33SQL = `
SELECT c_city, s_city, d_year, SUM(lo_revenue) AS revenue
FROM customer
  INNER JOIN lineorder ON lo_custkey = c_custkey
  INNER JOIN supplier ON lo_suppkey = s_suppkey
  INNER JOIN date ON lo_orderdate = d_datekey
WHERE (c_city = 'UNITED KI1' OR c_city = 'UNITED KI5')
  AND (s_city = 'UNITED KI1' OR s_city = 'UNITED KI5')
  AND d_year BETWEEN 1992 AND 1997
GROUP BY c_city, s_city, d_year
ORDER BY d_year ASC, SUM(lo_revenue) DESC`

const q34JSONiq = `
for $c in collection("customer")
for $l in collection("lineorder")
where $l.lo_custkey eq $c.c_custkey and ($c.c_city eq "UNITED KI1" or $c.c_city eq "UNITED KI5")
for $s in collection("supplier")
where $l.lo_suppkey eq $s.s_suppkey and ($s.s_city eq "UNITED KI1" or $s.s_city eq "UNITED KI5")
for $d in collection("date")
where $l.lo_orderdate eq $d.d_datekey and $d.d_yearmonth eq "Dec1997"
group by $cc := $c.c_city, $sc := $s.s_city, $year := $d.d_year
order by $year ascending, sum($l.lo_revenue) descending
return {"c_city": $cc, "s_city": $sc, "d_year": $year, "revenue": sum($l.lo_revenue)}`

const q34SQL = `
SELECT c_city, s_city, d_year, SUM(lo_revenue) AS revenue
FROM customer
  INNER JOIN lineorder ON lo_custkey = c_custkey
  INNER JOIN supplier ON lo_suppkey = s_suppkey
  INNER JOIN date ON lo_orderdate = d_datekey
WHERE (c_city = 'UNITED KI1' OR c_city = 'UNITED KI5')
  AND (s_city = 'UNITED KI1' OR s_city = 'UNITED KI5')
  AND d_yearmonth = 'Dec1997'
GROUP BY c_city, s_city, d_year
ORDER BY d_year ASC, SUM(lo_revenue) DESC`

const q41JSONiq = `
for $c in collection("customer")
for $l in collection("lineorder")
where $l.lo_custkey eq $c.c_custkey and $c.c_region eq "AMERICA"
for $s in collection("supplier")
where $l.lo_suppkey eq $s.s_suppkey and $s.s_region eq "AMERICA"
for $p in collection("part")
where $l.lo_partkey eq $p.p_partkey and ($p.p_mfgr eq "MFGR#1" or $p.p_mfgr eq "MFGR#2")
for $d in collection("date")
where $l.lo_orderdate eq $d.d_datekey
group by $year := $d.d_year, $cn := $c.c_nation
order by $year, $cn
return {"d_year": $year, "c_nation": $cn, "profit": sum($l.lo_revenue) - sum($l.lo_supplycost)}`

const q41SQL = `
SELECT d_year, c_nation, SUM(lo_revenue) - SUM(lo_supplycost) AS profit
FROM customer
  INNER JOIN lineorder ON lo_custkey = c_custkey
  INNER JOIN supplier ON lo_suppkey = s_suppkey
  INNER JOIN part ON lo_partkey = p_partkey
  INNER JOIN date ON lo_orderdate = d_datekey
WHERE c_region = 'AMERICA' AND s_region = 'AMERICA' AND (p_mfgr = 'MFGR#1' OR p_mfgr = 'MFGR#2')
GROUP BY d_year, c_nation
ORDER BY d_year ASC, c_nation ASC`

const q42JSONiq = `
for $c in collection("customer")
for $l in collection("lineorder")
where $l.lo_custkey eq $c.c_custkey and $c.c_region eq "AMERICA"
for $s in collection("supplier")
where $l.lo_suppkey eq $s.s_suppkey and $s.s_region eq "AMERICA"
for $p in collection("part")
where $l.lo_partkey eq $p.p_partkey and ($p.p_mfgr eq "MFGR#1" or $p.p_mfgr eq "MFGR#2")
for $d in collection("date")
where $l.lo_orderdate eq $d.d_datekey and ($d.d_year eq 1997 or $d.d_year eq 1998)
group by $year := $d.d_year, $sn := $s.s_nation, $cat := $p.p_category
order by $year, $sn, $cat
return {"d_year": $year, "s_nation": $sn, "p_category": $cat, "profit": sum($l.lo_revenue) - sum($l.lo_supplycost)}`

const q42SQL = `
SELECT d_year, s_nation, p_category, SUM(lo_revenue) - SUM(lo_supplycost) AS profit
FROM customer
  INNER JOIN lineorder ON lo_custkey = c_custkey
  INNER JOIN supplier ON lo_suppkey = s_suppkey
  INNER JOIN part ON lo_partkey = p_partkey
  INNER JOIN date ON lo_orderdate = d_datekey
WHERE c_region = 'AMERICA' AND s_region = 'AMERICA'
  AND (p_mfgr = 'MFGR#1' OR p_mfgr = 'MFGR#2')
  AND (d_year = 1997 OR d_year = 1998)
GROUP BY d_year, s_nation, p_category
ORDER BY d_year ASC, s_nation ASC, p_category ASC`

const q43JSONiq = `
for $c in collection("customer")
for $l in collection("lineorder")
where $l.lo_custkey eq $c.c_custkey and $c.c_region eq "AMERICA"
for $s in collection("supplier")
where $l.lo_suppkey eq $s.s_suppkey and $s.s_nation eq "UNITED STATES"
for $p in collection("part")
where $l.lo_partkey eq $p.p_partkey and $p.p_category eq "MFGR#14"
for $d in collection("date")
where $l.lo_orderdate eq $d.d_datekey and ($d.d_year eq 1997 or $d.d_year eq 1998)
group by $year := $d.d_year, $sc := $s.s_city, $brand := $p.p_brand1
order by $year, $sc, $brand
return {"d_year": $year, "s_city": $sc, "p_brand1": $brand, "profit": sum($l.lo_revenue) - sum($l.lo_supplycost)}`

const q43SQL = `
SELECT d_year, s_city, p_brand1, SUM(lo_revenue) - SUM(lo_supplycost) AS profit
FROM customer
  INNER JOIN lineorder ON lo_custkey = c_custkey
  INNER JOIN supplier ON lo_suppkey = s_suppkey
  INNER JOIN part ON lo_partkey = p_partkey
  INNER JOIN date ON lo_orderdate = d_datekey
WHERE c_region = 'AMERICA' AND s_nation = 'UNITED STATES'
  AND p_category = 'MFGR#14'
  AND (d_year = 1997 OR d_year = 1998)
GROUP BY d_year, s_city, p_brand1
ORDER BY d_year ASC, s_city ASC, p_brand1 ASC`
