package bench

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestMeasureAveragesAndWarmups(t *testing.T) {
	calls := 0
	m, err := Measure(2, 3, func() error {
		calls++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 5 {
		t.Errorf("calls = %d, want 5 (2 warmups + 3 runs)", calls)
	}
	if m.Runs != 3 {
		t.Errorf("runs = %d", m.Runs)
	}
}

func TestMeasurePropagatesError(t *testing.T) {
	boom := errors.New("boom")
	if _, err := Measure(0, 1, func() error { return boom }); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestMeasureWithCutoff(t *testing.T) {
	m, err := MeasureWithCutoff(0, 3, time.Nanosecond, func() error {
		time.Sleep(2 * time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.TimedOut {
		t.Error("expected timeout")
	}
	m, err = MeasureWithCutoff(1, 2, time.Minute, func() error { return nil })
	if err != nil || m.TimedOut {
		t.Errorf("fast fn should not time out: %+v %v", m, err)
	}
}

func TestTableRenderAligned(t *testing.T) {
	tb := NewTable("demo", "Query", "Time")
	tb.AddRow("q1", "5ms")
	tb.AddRow("q10", "123.45ms")
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "## demo") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[3], "q1 ") {
		t.Errorf("row not aligned: %q", lines[3])
	}
}

func TestSeriesSetRender(t *testing.T) {
	set := NewSeriesSet("scaling", "SF")
	a := set.Add("gen")
	b := set.Add("hand")
	a.Points[1] = "10ms"
	a.Points[2] = "20ms"
	b.Points[2] = "15ms"
	var sb strings.Builder
	set.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "gen") || !strings.Contains(out, "hand") {
		t.Errorf("missing series labels:\n%s", out)
	}
	// Missing point renders as "-".
	if !strings.Contains(out, "-") {
		t.Errorf("missing placeholder:\n%s", out)
	}
	// X values sorted: line for SF 1 precedes SF 2.
	if strings.Index(out, "\n1 ") > strings.Index(out, "\n2 ") {
		t.Errorf("x values unsorted:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	if got := FormatDuration(1500 * time.Millisecond); got != "1.500s" {
		t.Errorf("duration = %q", got)
	}
	if got := FormatDuration(2500 * time.Microsecond); got != "2.50ms" {
		t.Errorf("duration = %q", got)
	}
	if got := FormatDuration(900 * time.Nanosecond); got != "0µs" {
		t.Errorf("duration = %q", got)
	}
	if got := FormatBytes(3 << 20); got != "3.00MiB" {
		t.Errorf("bytes = %q", got)
	}
	if got := FormatBytes(512); got != "512B" {
		t.Errorf("bytes = %q", got)
	}
	if got := FormatBytes(2 << 30); got != "2.00GiB" {
		t.Errorf("bytes = %q", got)
	}
}
