package bench

import (
	"encoding/json"
	"os"
	"time"
)

// Record is one measured data point of a benchmark run, machine-readable so
// runs can be diffed and plotted without re-parsing the text tables.
type Record struct {
	Experiment   string  `json:"experiment"`
	Query        string  `json:"query"`
	System       string  `json:"system,omitempty"`
	Scale        float64 `json:"scale,omitempty"`
	MeanMicros   int64   `json:"mean_us"`
	Runs         int     `json:"runs,omitempty"`
	TimedOut     bool    `json:"timed_out,omitempty"`
	BytesScanned int64   `json:"bytes_scanned,omitempty"`
}

// Recorder accumulates Records alongside the text report. A nil *Recorder is
// valid and drops everything, so report code records unconditionally.
type Recorder struct {
	Label   string
	records []Record
}

// NewRecorder creates an empty recorder labeled with the benchmark name.
func NewRecorder(label string) *Recorder { return &Recorder{Label: label} }

// Add appends one record; no-op on a nil receiver.
func (r *Recorder) Add(rec Record) {
	if r == nil {
		return
	}
	r.records = append(r.records, rec)
}

// AddMeasurement records a Measurement under an experiment/query/system key.
func (r *Recorder) AddMeasurement(experiment, query, system string, m Measurement) {
	r.Add(Record{
		Experiment: experiment,
		Query:      query,
		System:     system,
		MeanMicros: m.Mean.Microseconds(),
		Runs:       m.Runs,
		TimedOut:   m.TimedOut,
	})
}

// Records returns the accumulated records (nil-safe).
func (r *Recorder) Records() []Record {
	if r == nil {
		return nil
	}
	return r.records
}

// runFile is the serialized shape of one benchmark run.
type runFile struct {
	Label       string   `json:"label"`
	GeneratedAt string   `json:"generated_at"`
	Records     []Record `json:"records"`
}

// WriteFile writes the run as indented JSON; no-op on a nil receiver.
func (r *Recorder) WriteFile(path string) error {
	if r == nil {
		return nil
	}
	data, err := json.MarshalIndent(runFile{
		Label:       r.Label,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Records:     r.records,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
