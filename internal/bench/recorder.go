package bench

import (
	"encoding/json"
	"os"
	"time"

	"jsonpark/internal/obsv/qlog"
)

// Record is one measured data point of a benchmark run, machine-readable so
// runs can be diffed and plotted without re-parsing the text tables.
type Record struct {
	Experiment   string  `json:"experiment"`
	Query        string  `json:"query"`
	System       string  `json:"system,omitempty"`
	Scale        float64 `json:"scale,omitempty"`
	MeanMicros   int64   `json:"mean_us"`
	Runs         int     `json:"runs,omitempty"`
	TimedOut     bool    `json:"timed_out,omitempty"`
	BytesScanned int64   `json:"bytes_scanned,omitempty"`
	// Memory governance of the measured run: peak accounted bytes, the
	// configured budget, and how often / how much the breakers spilled.
	MemPeakBytes  int64 `json:"mem_peak_bytes,omitempty"`
	MemLimitBytes int64 `json:"mem_limit_bytes,omitempty"`
	Spills        int64 `json:"spills,omitempty"`
	SpillBytes    int64 `json:"spill_bytes,omitempty"`
}

// Recorder accumulates Records alongside the text report. A nil *Recorder is
// valid and drops everything, so report code records unconditionally.
type Recorder struct {
	Label   string
	records []Record
	sink    *qlog.Logger
}

// NewRecorder creates an empty recorder labeled with the benchmark name.
func NewRecorder(label string) *Recorder { return &Recorder{Label: label} }

// SetSink attaches a structured logger: every Add is also emitted as one
// "bench_point" JSON line the moment it is measured, so long runs can be
// tailed live instead of waiting for WriteFile. Nil detaches.
func (r *Recorder) SetSink(l *qlog.Logger) {
	if r == nil {
		return
	}
	r.sink = l
}

// Add appends one record; no-op on a nil receiver.
func (r *Recorder) Add(rec Record) {
	if r == nil {
		return
	}
	r.records = append(r.records, rec)
	r.sink.Log(qlog.LevelInfo, "bench_point",
		qlog.F("label", r.Label),
		qlog.F("experiment", rec.Experiment),
		qlog.F("query", rec.Query),
		qlog.F("system", rec.System),
		qlog.F("scale", rec.Scale),
		qlog.F("mean_us", rec.MeanMicros),
		qlog.F("runs", rec.Runs),
		qlog.F("timed_out", rec.TimedOut),
		qlog.F("bytes_scanned", rec.BytesScanned),
		qlog.F("mem_peak_bytes", rec.MemPeakBytes),
		qlog.F("mem_limit_bytes", rec.MemLimitBytes),
		qlog.F("spills", rec.Spills),
		qlog.F("spill_bytes", rec.SpillBytes),
	)
}

// AddMeasurement records a Measurement under an experiment/query/system key.
func (r *Recorder) AddMeasurement(experiment, query, system string, m Measurement) {
	r.Add(Record{
		Experiment: experiment,
		Query:      query,
		System:     system,
		MeanMicros: m.Mean.Microseconds(),
		Runs:       m.Runs,
		TimedOut:   m.TimedOut,
	})
}

// Records returns the accumulated records (nil-safe).
func (r *Recorder) Records() []Record {
	if r == nil {
		return nil
	}
	return r.records
}

// OpenLogSink opens path as a structured-log sink ("-" = stderr). The
// returned closer is a no-op for stderr.
func OpenLogSink(path string) (*qlog.Logger, func(), error) {
	if path == "-" {
		return qlog.New(os.Stderr), func() {}, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return qlog.New(f), func() { _ = f.Close() }, nil
}

// runFile is the serialized shape of one benchmark run.
type runFile struct {
	Label       string   `json:"label"`
	GeneratedAt string   `json:"generated_at"`
	Records     []Record `json:"records"`
}

// WriteFile writes the run as indented JSON; no-op on a nil receiver.
func (r *Recorder) WriteFile(path string) error {
	if r == nil {
		return nil
	}
	data, err := json.MarshalIndent(runFile{
		Label:       r.Label,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Records:     r.records,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
