// Package bench provides the measurement harness for regenerating the
// paper's tables and figures: warmup-then-average timing (the paper
// averages 3 runs after 3 warmups for engine experiments and 100 runs for
// translation timing, §V-A), cutoff handling for the scalability sweeps,
// and text renderers for table- and series-shaped results.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Measurement is one averaged timing.
type Measurement struct {
	Mean     time.Duration
	Runs     int
	TimedOut bool
}

// Measure runs fn warmups times unmeasured, then runs times measured, and
// returns the mean duration.
func Measure(warmups, runs int, fn func() error) (Measurement, error) {
	for i := 0; i < warmups; i++ {
		if err := fn(); err != nil {
			return Measurement{}, err
		}
	}
	var total time.Duration
	for i := 0; i < runs; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return Measurement{}, err
		}
		total += time.Since(start)
	}
	return Measurement{Mean: total / time.Duration(runs), Runs: runs}, nil
}

// MeasureWithCutoff is Measure with a per-run time limit (the paper's
// 10-minute cap, re-based). A run exceeding the cutoff marks the
// measurement as timed out; no further runs execute.
func MeasureWithCutoff(warmups, runs int, cutoff time.Duration, fn func() error) (Measurement, error) {
	probe := func() (time.Duration, error) {
		start := time.Now()
		err := fn()
		return time.Since(start), err
	}
	for i := 0; i < warmups; i++ {
		d, err := probe()
		if err != nil {
			return Measurement{}, err
		}
		if d > cutoff {
			return Measurement{Mean: d, Runs: 1, TimedOut: true}, nil
		}
	}
	var total time.Duration
	for i := 0; i < runs; i++ {
		d, err := probe()
		if err != nil {
			return Measurement{}, err
		}
		if d > cutoff {
			return Measurement{Mean: d, Runs: i + 1, TimedOut: true}, nil
		}
		total += d
	}
	return Measurement{Mean: total / time.Duration(runs), Runs: runs}, nil
}

// Table is a labeled grid of cells for figure-style text output.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row of formatted cells.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// Render writes an aligned text table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	fmt.Fprintf(w, "## %s\n", t.Title)
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is one labeled line of (x, y) points for scalability plots.
type Series struct {
	Label  string
	Points map[float64]string
}

// SeriesSet renders several series against a shared x axis, mirroring the
// paper's per-query scalability plots.
type SeriesSet struct {
	Title  string
	XLabel string
	series []*Series
}

// NewSeriesSet creates an empty plot.
func NewSeriesSet(title, xlabel string) *SeriesSet {
	return &SeriesSet{Title: title, XLabel: xlabel}
}

// Add registers a series.
func (s *SeriesSet) Add(label string) *Series {
	ser := &Series{Label: label, Points: make(map[float64]string)}
	s.series = append(s.series, ser)
	return ser
}

// Render writes the series as a grid: one row per x value, one column per
// series.
func (s *SeriesSet) Render(w io.Writer) {
	xs := map[float64]bool{}
	for _, ser := range s.series {
		for x := range ser.Points {
			xs[x] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	cols := []string{s.XLabel}
	for _, ser := range s.series {
		cols = append(cols, ser.Label)
	}
	t := NewTable(s.Title, cols...)
	for _, x := range sorted {
		row := []string{fmt.Sprintf("%g", x)}
		for _, ser := range s.series {
			v, ok := ser.Points[x]
			if !ok {
				v = "-"
			}
			row = append(row, v)
		}
		t.AddRow(row...)
	}
	t.Render(w)
}

// FormatDuration renders a duration with fixed precision for tables.
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	}
	return fmt.Sprintf("%dµs", d.Microseconds())
}

// FormatBytes renders a byte count in binary units.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
