package engine

// Regression tests for governance defects surfaced by the dataflow-aware
// jsqlint analyzers (memcharge, ctxpoll): the CROSS-join build side was
// retained without ever charging the memory budget, and the spilled-agg
// merge and deferred-tuple replay loops drained whole runs without polling
// cancellation.

import (
	"context"
	"errors"
	"strings"
	"testing"

	"jsonpark/internal/storage"
	"jsonpark/internal/variant"
)

// TestCrossJoinBuildCharged: drainBuild used to skip charging entirely for
// unkeyed joins, so a CROSS join's whole build side escaped the budget and
// MemPeakBytes read 0. The build side must now be charged (and released on
// Close) while output stays identical — CROSS joins still never spill.
func TestCrossJoinBuildCharged(t *testing.T) {
	mk := func(opts ...Option) *Engine {
		e := New(opts...)
		tab, err := e.Catalog().CreateTable("n", []string{"a"})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 400; i++ {
			if err := tab.Append([]variant.Value{variant.Int(int64(i))}); err != nil {
				t.Fatal(err)
			}
		}
		return e
	}
	sql := `SELECT "a", "b" FROM (SELECT "a" FROM "n" WHERE "a" < 3) CROSS JOIN (SELECT "a" AS "b" FROM "n") ORDER BY "a", "b"`
	ref, err := mk().Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mk(WithMemLimit(1 << 20)).Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderRows(res), renderRows(ref); got != want {
		t.Fatalf("limited CROSS join changed rows:\n got %s\nwant %s", got, want)
	}
	if res.Metrics.MemPeakBytes == 0 {
		t.Fatal("CROSS join build side was never charged: MemPeakBytes = 0")
	}
}

// cancelledExecCtx returns an execContext whose query context is already
// cancelled.
func cancelledExecCtx() *execContext {
	qctx, cancel := context.WithCancel(context.Background())
	cancel()
	return &execContext{acct: newMemAccountant(0), qctx: qctx}
}

// junkRun writes one opaque record to a spill run; cancellation must fire
// before the record is ever decoded.
func junkRun(t *testing.T) *storage.SpillRun {
	t.Helper()
	w, err := storage.NewRunWriter("cancel-regress")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteRecord([]byte("never decoded")); err != nil {
		w.Abort()
		t.Fatal(err)
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// TestSpillMergeCancelled: mergeSpilledAgg drained every state run to
// completion with no cancellation poll; a cancelled query now aborts
// before decoding a single spilled group.
func TestSpillMergeCancelled(t *testing.T) {
	run := junkRun(t)
	defer run.Close()
	_, err := mergeSpilledAgg(cancelledExecCtx(), []*storage.SpillRun{run}, nil, nil)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not unwrap to context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "query interrupted") {
		t.Fatalf("error %q is not classified as a query interruption", err)
	}
}

// TestDeferredReplayCancelled: replayTuples folded the entire deferral run
// with no poll; a cancelled query now aborts before touching a tuple.
func TestDeferredReplayCancelled(t *testing.T) {
	run := junkRun(t)
	defer run.Close()
	err := (&aggEval{}).replayTuples(cancelledExecCtx(), run, nil)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not unwrap to context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "query interrupted") {
		t.Fatalf("error %q is not classified as a query interruption", err)
	}
}
