package engine

import (
	"strings"
	"sync"
	"testing"

	"jsonpark/internal/variant"
)

// A query paused mid-flight via the exec batch hook must be visible in
// ProgressSnapshot with non-zero per-operator row counts, and must vanish
// once it completes.
func TestProgressSnapshotMidFlight(t *testing.T) {
	e := New(WithBatchSize(1), WithParallelism(1))
	seedProgressTable(t, e)

	paused := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	e.SetExecBatchHook(func() {
		once.Do(func() {
			close(paused)
			<-release
		})
	})

	type outcome struct {
		rows int
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := e.Query("SELECT o_id FROM progress_orders WHERE o_id > 0")
		var n int
		if res != nil {
			n = len(res.Rows)
		}
		done <- outcome{rows: n, err: err}
	}()

	<-paused
	snaps := e.ProgressSnapshot()
	if len(snaps) != 1 {
		t.Fatalf("want 1 in-flight query, got %d", len(snaps))
	}
	qp := snaps[0]
	if !strings.Contains(qp.SQL, "progress_orders") {
		t.Errorf("snapshot SQL = %q, want the running statement", qp.SQL)
	}
	if len(qp.Operators) == 0 {
		t.Fatal("snapshot has no operators")
	}
	var sawRows bool
	for _, op := range qp.Operators {
		if op.Rows > 0 && op.Batches > 0 {
			sawRows = true
		}
	}
	if !sawRows {
		t.Errorf("no operator shows progress mid-flight: %+v", qp.Operators)
	}

	close(release)
	out := <-done
	if out.err != nil {
		t.Fatalf("query failed: %v", out.err)
	}
	if out.rows != 8 {
		t.Fatalf("rows = %d, want 8", out.rows)
	}
	if after := e.ProgressSnapshot(); len(after) != 0 {
		t.Errorf("finished query still listed: %+v", after)
	}
}

// Successive snapshots of a running query must only grow.
func TestProgressCountersMonotonic(t *testing.T) {
	e := New(WithBatchSize(1), WithParallelism(1))
	seedProgressTable(t, e)

	step := make(chan struct{})
	resume := make(chan struct{})
	hits := 0
	e.SetExecBatchHook(func() {
		hits++
		if hits <= 2 {
			step <- struct{}{}
			<-resume
		}
	})
	done := make(chan error, 1)
	go func() {
		_, err := e.Query("SELECT o_id FROM progress_orders")
		done <- err
	}()

	rowsAt := func() int64 {
		snaps := e.ProgressSnapshot()
		if len(snaps) != 1 {
			t.Fatalf("want 1 in-flight query, got %d", len(snaps))
		}
		var total int64
		for _, op := range snaps[0].Operators {
			total += op.Rows
		}
		return total
	}

	<-step
	first := rowsAt()
	resume <- struct{}{}
	<-step
	second := rowsAt()
	resume <- struct{}{}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if first <= 0 || second <= first {
		t.Errorf("counters not monotonic: first=%d second=%d", first, second)
	}
}

func seedProgressTable(t *testing.T, e *Engine) {
	t.Helper()
	tab, err := e.Catalog().CreateTable("progress_orders", []string{"o_id"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		if err := tab.Append([]variant.Value{variant.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
}
