package engine

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"jsonpark/internal/sqlast"
	"jsonpark/internal/storage"
	"jsonpark/internal/variant"
	"jsonpark/internal/vector"
)

// prepareScan builds a table scan. With parallelism > 1 and more than one
// micro-partition the scan is morsel-driven: workers claim partitions from a
// shared counter and materialize them concurrently. Unless the planner proved
// the consumers order-insensitive, worker output merges back in partition
// order so results stay identical to the sequential scan.
func prepareScan(x *ScanNode, ctx *execContext) (batchIter, error) {
	colIdx := make([]int, len(x.Columns))
	for i, c := range x.Columns {
		idx := x.Table.ColumnIndex(c)
		if idx < 0 {
			return nil, fmt.Errorf("engine: table %q has no column %q", x.Table.Name, c)
		}
		colIdx[i] = idx
	}
	var filter vecFn
	if x.Filter != nil {
		fn, err := compileVec(ctx, x.Schema(), x.Filter)
		if err != nil {
			return nil, err
		}
		filter = fn
	}
	parts := ctx.pinSnapshot(x.Table).Parts
	// A stateful pushed-down filter (SEQ8) must see rows in order; fall back
	// to the sequential scan rather than give each worker its own counter.
	if ctx.parallelism > 1 && len(parts) > 1 && !exprStateful(x.Filter) {
		return &morselScan{
			node: x, ctx: ctx, st: ctx.statsFor(x), colIdx: colIdx,
			parts: parts, ordered: !ctx.unorderedScans[x],
		}, nil
	}
	return &scanIter{
		node: x, ctx: ctx, st: ctx.statsFor(x), filter: filter,
		colIdx: colIdx, parts: parts,
	}, nil
}

// partitionPruned reports whether the zone maps rule out every row of p.
func partitionPruned(x *ScanNode, p *storage.Partition) bool {
	for _, pred := range x.Prunes {
		idx := x.Table.ColumnIndex(pred.Column)
		if idx < 0 {
			continue
		}
		if !p.MayMatch(idx, pred) {
			return true
		}
	}
	return false
}

// scanPartition cuts one partition's projected column chunks into batches of
// at most batchSize rows. Typed chunks hand out typed views (Slice) with a
// nil variant column — the typed fast path — and variant chunks alias the
// chunk storage as before; either way the batch is zero-copy against the
// partition. A persisted partition is cold-loaded here on first touch
// (EnsureLoaded), after pruning already had its say from the header zone
// maps. The pushed-down filter shrinks each batch's selection, and fully
// filtered batches are dropped. Returns the surviving batches and the chunk
// bytes read.
func scanPartition(ctx *execContext, p *storage.Partition, colIdx []int, filter vecFn, batchSize int) ([]*vector.Batch, int64, error) {
	read, err := p.EnsureLoaded()
	if err != nil {
		return nil, 0, err
	}
	if read {
		ctx.countDiskRead()
	}
	rows := p.NumRows()
	cols := make([][]variant.Value, len(colIdx))
	typed := make([]*vector.TypedCol, len(colIdx))
	anyTyped := false
	var bytes int64
	for i, idx := range colIdx {
		chunk := p.Column(idx)
		if tc := chunk.Typed(); tc != nil {
			typed[i] = tc
			anyTyped = true
		} else {
			cols[i] = chunk.Values()
		}
		bytes += chunk.Bytes()
	}
	var out []*vector.Batch
	for lo := 0; lo < rows; lo += batchSize {
		hi := lo + batchSize
		if hi > rows {
			hi = rows
		}
		bcols := make([][]variant.Value, len(cols))
		var btyped []*vector.TypedCol
		if anyTyped {
			btyped = make([]*vector.TypedCol, len(cols))
		}
		for c := range cols {
			if typed[c] != nil {
				btyped[c] = typed[c].Slice(lo, hi)
			} else {
				bcols[c] = cols[c][lo:hi:hi]
			}
		}
		b := &vector.Batch{Cols: bcols, Typed: btyped}
		if filter != nil {
			keep, err := filter(b)
			if err != nil {
				return nil, bytes, err
			}
			sel := selTruthy(b, keep)
			if len(sel) == 0 {
				continue
			}
			b = b.WithSel(sel)
		}
		out = append(out, b)
	}
	return out, bytes, nil
}

// --- sequential scan ----------------------------------------------------------

type scanIter struct {
	node    *ScanNode
	ctx     *execContext
	st      *OpStats
	filter  vecFn
	colIdx  []int
	parts   []*storage.Partition
	started bool
	pi      int // next partition to open
	pending []*vector.Batch
}

func (s *scanIter) NextBatch() (*vector.Batch, error) {
	if !s.started {
		s.started = true
		s.ctx.addScanCounts(s.st, len(s.parts), 0, 0)
	}
	for {
		if len(s.pending) > 0 {
			b := s.pending[0]
			s.pending = s.pending[1:]
			return b, nil
		}
		if s.pi >= len(s.parts) {
			return nil, nil
		}
		// One NextBatch call can chew through many pruned partitions before
		// producing a batch; the cancelIter wrap only polls between calls.
		if err := s.ctx.cancelled(); err != nil {
			return nil, err
		}
		p := s.parts[s.pi]
		s.pi++
		if partitionPruned(s.node, p) {
			s.ctx.addScanCounts(s.st, 0, 1, 0)
			continue
		}
		batches, bytes, err := scanPartition(s.ctx, p, s.colIdx, s.filter, s.ctx.batchSize)
		s.ctx.addScanCounts(s.st, 0, 0, bytes)
		if err != nil {
			return nil, err
		}
		s.pending = batches
	}
}

func (s *scanIter) Close() {}

// --- morsel-driven parallel scan ---------------------------------------------

// scanMsg is one partition's result, produced by a morsel worker.
type scanMsg struct {
	part    int
	batches []*vector.Batch
	err     error
}

// morselScan fans a scan's micro-partitions out to a worker pool. Each worker
// repeatedly claims the next partition index from an atomic counter (the
// morsel dispatch), prunes or materializes it, and sends the resulting
// batches to the driver. In ordered mode the driver holds a reorder buffer
// and releases partitions strictly in index order — byte-identical to the
// sequential scan; in unordered mode (consumers proved order-insensitive)
// partitions stream out as they complete, exchange-style.
type morselScan struct {
	node    *ScanNode
	ctx     *execContext
	st      *OpStats
	colIdx  []int
	parts   []*storage.Partition
	ordered bool

	started   bool
	results   chan scanMsg
	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	nextPart int // ordered: next partition index to release
	consumed int // messages taken off the channel or buffer
	buffered map[int]scanMsg
	pending  []*vector.Batch
}

func (m *morselScan) start() {
	m.started = true
	m.ctx.addScanCounts(m.st, len(m.parts), 0, 0)
	workers := m.ctx.parallelism
	if workers > len(m.parts) {
		workers = len(m.parts)
	}
	m.results = make(chan scanMsg, workers)
	m.stop = make(chan struct{})
	m.buffered = make(map[int]scanMsg)
	var claim int64
	m.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer m.wg.Done()
			// Each worker compiles its own filter: compiled expressions may
			// hold state, so they must not be shared across goroutines.
			var filter vecFn
			if m.node.Filter != nil {
				fn, err := compileVec(m.ctx, m.node.Schema(), m.node.Filter)
				if err != nil {
					select {
					case m.results <- scanMsg{part: -1, err: err}:
					case <-m.stop:
					}
					return
				}
				filter = fn
			}
			for {
				i := int(atomic.AddInt64(&claim, 1) - 1)
				if i >= len(m.parts) {
					return
				}
				msg := scanMsg{part: i}
				p := m.parts[i]
				if partitionPruned(m.node, p) {
					m.ctx.addScanCounts(m.st, 0, 1, 0)
				} else {
					batches, bytes, err := scanPartition(m.ctx, p, m.colIdx, filter, m.ctx.batchSize)
					m.ctx.addScanCounts(m.st, 0, 0, bytes)
					msg.batches, msg.err = batches, err
				}
				select {
				case m.results <- msg:
				case <-m.stop:
					return
				}
			}
		}()
	}
}

func (m *morselScan) NextBatch() (*vector.Batch, error) {
	if !m.started {
		m.start()
	}
	for {
		if len(m.pending) > 0 {
			b := m.pending[0]
			m.pending = m.pending[1:]
			return b, nil
		}
		if m.consumed >= len(m.parts) {
			return nil, nil
		}
		var msg scanMsg
		if m.ordered {
			buf, ok := m.buffered[m.nextPart]
			if ok {
				delete(m.buffered, m.nextPart)
				msg = buf
			} else {
				var err error
				if msg, err = m.recv(); err != nil {
					return nil, err
				}
				if msg.part >= 0 && msg.part != m.nextPart {
					m.buffered[msg.part] = msg
					continue
				}
			}
			m.nextPart++
		} else {
			var err error
			if msg, err = m.recv(); err != nil {
				return nil, err
			}
		}
		m.consumed++
		if msg.err != nil {
			return nil, msg.err
		}
		m.pending = msg.batches
	}
}

// recv blocks on the next worker message unless the query context is
// cancelled first — the driver's only blocking point, so a cancelled query
// never hangs here while workers drain into a full channel. (Close still
// releases the workers through the stop channel.)
func (m *morselScan) recv() (scanMsg, error) {
	select {
	case msg := <-m.results:
		return msg, nil
	case <-m.ctx.queryCtx().Done():
		return scanMsg{}, m.ctx.cancelled()
	}
}

// Close stops the worker pool and waits for the goroutines to exit; safe to
// call multiple times and before the first NextBatch.
func (m *morselScan) Close() {
	if !m.started {
		return
	}
	m.closeOnce.Do(func() { close(m.stop) })
	m.wg.Wait()
}

// --- order-sensitivity analysis ----------------------------------------------

// collectUnorderedScans marks the scans whose row order provably cannot
// affect the query result, allowing their morsel workers to skip the ordered
// merge. The analysis is conservative: scan order matters at the root (result
// rows come back in stream order) and the flag is only cleared by a global
// aggregate whose aggregates are all order-insensitive.
func collectUnorderedScans(n Node) map[Node]bool {
	m := make(map[Node]bool)
	markOrdered(n, true, m)
	return m
}

func markOrdered(n Node, orderMatters bool, m map[Node]bool) {
	switch x := n.(type) {
	case *ScanNode:
		if !orderMatters && !exprStateful(x.Filter) {
			m[x] = true
		}
	case *FilterNode:
		markOrdered(x.Input, orderMatters || exprStateful(x.Cond), m)
	case *ProjectNode:
		om := orderMatters
		for _, e := range x.Exprs {
			om = om || exprStateful(e)
		}
		markOrdered(x.Input, om, m)
	case *FlattenNode:
		markOrdered(x.Input, orderMatters || exprStateful(x.Expr), m)
	case *AggregateNode:
		// A global aggregate over order-insensitive accumulators erases its
		// input order entirely. Grouped aggregates keep order: output groups
		// appear in first-seen order.
		om := true
		if len(x.GroupBy) == 0 && aggsOrderInsensitive(x.Aggs) {
			om = false
		}
		for _, spec := range x.Aggs {
			om = om || exprStateful(spec.Arg)
		}
		for _, g := range x.GroupBy {
			om = om || exprStateful(g)
		}
		markOrdered(x.Input, om, m)
	case *ParallelAggNode:
		// The parallel aggregate claims storage partitions itself; its subtree
		// is replayed per partition by the phase-1 workers, never executed as a
		// streaming pipeline, so no scan below it may run as a morsel exchange.
		markOrdered(x.Input, true, m)
	case *JoinNode:
		// Probe order fixes output order; build-row insertion order fixes
		// match order within a key. Both sides inherit the parent's need.
		markOrdered(x.Left, true, m)
		markOrdered(x.Right, true, m)
	case *ParallelJoinNode:
		// The parallel build chunks the materialized build rows by input
		// index, so the build side must still arrive in order; probe order
		// fixes output order as in the sequential join.
		markOrdered(x.Left, true, m)
		markOrdered(x.Right, true, m)
	case *SortNode:
		// Stable sort: tied rows keep input order, so the input stays ordered
		// whenever the output order is observed.
		markOrdered(x.Input, orderMatters, m)
	case *ParallelSortNode:
		// The parallel sort's run split + stable merge preserves input order
		// among ties exactly like the sequential stable sort.
		markOrdered(x.Input, orderMatters, m)
	case *LimitNode:
		markOrdered(x.Input, true, m)
	case *UnionNode:
		markOrdered(x.Left, orderMatters, m)
		markOrdered(x.Right, orderMatters, m)
	}
}

// aggsOrderInsensitive reports whether every aggregate yields the same result
// for any permutation of its input. SUM/AVG over floats are excluded: float
// addition is not associative, so a different accumulation order can change
// low-order bits. DISTINCT and WITHIN GROUP specs are conservatively treated
// as order-sensitive.
func aggsOrderInsensitive(specs []AggSpec) bool {
	for _, s := range specs {
		if s.Distinct || len(s.OrderBy) > 0 {
			return false
		}
		switch s.Name {
		case "COUNT", "COUNT_IF", "MIN", "MAX", "BOOLAND_AGG", "BOOLOR_AGG":
		default:
			return false
		}
	}
	return true
}

// exprStateful reports whether evaluating e has side effects that make its
// result depend on evaluation order (the SEQ8/SEQ4 row-number counters).
// nil expressions are stateless.
func exprStateful(e sqlast.Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case *sqlast.Lit, *sqlast.ColRef, *sqlast.Star:
		return false
	case *sqlast.FuncCall:
		name := strings.ToUpper(x.Name)
		if name == "SEQ8" || name == "SEQ4" {
			return true
		}
		for _, a := range x.Args {
			if exprStateful(a) {
				return true
			}
		}
		return false
	case *sqlast.Binary:
		return exprStateful(x.Left) || exprStateful(x.Right)
	case *sqlast.Unary:
		return exprStateful(x.Operand)
	case *sqlast.IsNull:
		return exprStateful(x.Operand)
	case *sqlast.Cast:
		return exprStateful(x.Operand)
	case *sqlast.CaseWhen:
		for _, w := range x.Whens {
			if exprStateful(w.Cond) || exprStateful(w.Result) {
				return true
			}
		}
		return exprStateful(x.Else)
	}
	return true // unknown node: assume stateful
}
