package engine

import (
	"math"
	"strings"

	"jsonpark/internal/sqlast"
	"jsonpark/internal/variant"
	"jsonpark/internal/vector"
)

// Typed expression kernels. When a batch column carries a typed view
// (vector.TypedCol aliasing a chunk's typed array), comparisons, arithmetic
// and IS NULL over that column run as tight monomorphic loops — no per-value
// variant dispatch, no materialization. Each compiled kernel keeps the
// generic variant closure as its fallback and re-checks the batch at run
// time, so a mixed-type partition (or an operator that produced plain
// variant columns) silently takes the generic path; results are identical
// either way, bit for bit.
//
// The kernels replicate the exact scalar semantics of scalarBinOp and
// variant/arith.go: NULL propagation, int64 wraparound for + - *, `/` always
// producing a double with int/int division-by-zero errors, `%` keeping ints,
// float comparisons where NaN never orders, and cross-kind comparisons via
// the kind-rank total order.

// colRefIndex resolves e as a bare column reference against sc.
func colRefIndex(sc *Schema, e sqlast.Expr) (int, bool) {
	x, ok := e.(*sqlast.ColRef)
	if !ok {
		return 0, false
	}
	name := x.Name
	if x.Table != "" {
		name = x.Table + "." + x.Name
	}
	return sc.Lookup(name)
}

// litValue resolves e as a literal.
func litValue(e sqlast.Expr) (variant.Value, bool) {
	x, ok := e.(*sqlast.Lit)
	if !ok {
		return variant.Null, false
	}
	return x.Value, true
}

// typedRank mirrors variant's kind-rank order for the kinds a typed column
// can hold (numbers share one rank).
func typedRank(k vector.TypedKind) int {
	switch k {
	case TypedColBool:
		return 1
	case TypedColInt, TypedColFloat:
		return 2
	}
	return 3 // string
}

// Local aliases keep the kernel switch lines readable.
const (
	TypedColInt    = vector.TypedInt64
	TypedColFloat  = vector.TypedFloat64
	TypedColString = vector.TypedString
	TypedColBool   = vector.TypedBool
)

func litRank(v variant.Value) int {
	switch v.Kind() {
	case variant.KindBool:
		return 1
	case variant.KindInt, variant.KindFloat:
		return 2
	case variant.KindString:
		return 3
	case variant.KindArray:
		return 4
	case variant.KindObject:
		return 5
	}
	return 0 // null
}

// cmpBool turns a three-way comparison into the operator's boolean result.
func cmpBool(op string, c int) variant.Value {
	switch op {
	case "=":
		return variant.Bool(c == 0)
	case "<>":
		return variant.Bool(c != 0)
	case "<":
		return variant.Bool(c < 0)
	case "<=":
		return variant.Bool(c <= 0)
	case ">":
		return variant.Bool(c > 0)
	}
	return variant.Bool(c >= 0) // ">="
}

func isCmpOp(op string) bool {
	switch op {
	case "=", "<>", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func isArithOp(op string) bool {
	switch op {
	case "+", "-", "*", "/", "%":
		return true
	}
	return false
}

// compileTypedBinary returns a typed-kernel evaluator for col⊗lit, lit⊗col
// and col⊗col shapes of the comparison and arithmetic operators, or nil when
// the expression shape cannot benefit. The returned closure owns its output
// buffer (overwritten on the next call, per the vecFn contract) and calls
// generic whenever the batch lacks the typed views it needs.
func compileTypedBinary(ctx *execContext, sc *Schema, x *sqlast.Binary, generic vecFn) vecFn {
	if !isCmpOp(x.Op) && !isArithOp(x.Op) {
		return nil
	}
	if li, ok := colRefIndex(sc, x.Left); ok {
		if lit, ok := litValue(x.Right); ok {
			return typedColLitFn(ctx, li, x.Op, lit, false, generic)
		}
		if ri, ok := colRefIndex(sc, x.Right); ok {
			return typedColColFn(ctx, li, ri, x.Op, generic)
		}
		return nil
	}
	if lit, ok := litValue(x.Left); ok {
		if ri, ok := colRefIndex(sc, x.Right); ok {
			return typedColLitFn(ctx, ri, x.Op, lit, true, generic)
		}
	}
	return nil
}

// typedColLitFn evaluates `col op lit` (or `lit op col` when litLeft) against
// the column's typed view.
func typedColLitFn(ctx *execContext, ci int, op string, lit variant.Value, litLeft bool, generic vecFn) vecFn {
	var out []variant.Value
	return func(b *vector.Batch) ([]variant.Value, error) {
		tc := b.TypedCol(ci)
		if tc == nil {
			return generic(b) //jsqlint:ignore kernelalias kernel-to-kernel delegation: the wrapper shares the fallback's buffer contract
		}
		out = growBuf(out, b.Len())
		ok, err := typedColLitKernel(b, tc, op, lit, litLeft, out)
		if err != nil {
			return nil, err
		}
		if !ok {
			return generic(b) //jsqlint:ignore kernelalias kernel-to-kernel delegation: the wrapper shares the fallback's buffer contract
		}
		ctx.countTypedCols(1)
		return out, nil
	}
}

// typedColLitKernel fills out for the batch's active rows; the bool result
// reports whether the (column kind, literal kind, op) combination has a
// typed kernel at all.
func typedColLitKernel(b *vector.Batch, tc *vector.TypedCol, op string, lit variant.Value, litLeft bool, out []variant.Value) (bool, error) {
	// NULL literal: every comparison and arithmetic op yields NULL without
	// reading a single column value.
	if lit.IsNull() {
		b.ForEach(func(i int) { out[i] = variant.Null })
		return true, nil
	}
	if isCmpOp(op) {
		if litLeft {
			op = flipCmp(op)
		}
		cr, lr := typedRank(tc.Kind()), litRank(lit)
		if cr != lr {
			// Cross-rank comparison: the three-way result is a constant for
			// every non-null row (numbers sort below strings, etc.).
			c := cr - lr
			res := cmpBool(op, c)
			b.ForEach(func(i int) {
				if tc.Null(i) {
					out[i] = variant.Null
				} else {
					out[i] = res
				}
			})
			return true, nil
		}
		return typedCmpColLit(b, tc, op, lit, out), nil
	}
	return typedArithColLit(b, tc, op, lit, litLeft, out)
}

// flipCmp mirrors a comparison so `lit op col` becomes `col op' lit`.
func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op // = and <> are symmetric
}

// typedCmpColLit handles same-rank comparisons: numeric column vs numeric
// literal, string vs string, bool vs bool.
func typedCmpColLit(b *vector.Batch, tc *vector.TypedCol, op string, lit variant.Value, out []variant.Value) bool {
	switch tc.Kind() {
	case TypedColInt:
		xs := tc.Ints()
		if lit.Kind() == variant.KindInt {
			y := lit.AsInt()
			b.ForEach(func(i int) {
				if tc.Null(i) {
					out[i] = variant.Null
					return
				}
				out[i] = cmpBool(op, cmp3Int(xs[i], y))
			})
			return true
		}
		y := lit.AsFloat()
		b.ForEach(func(i int) {
			if tc.Null(i) {
				out[i] = variant.Null
				return
			}
			out[i] = cmpBool(op, cmp3Float(float64(xs[i]), y))
		})
		return true
	case TypedColFloat:
		xs := tc.Floats()
		y := lit.AsFloat()
		b.ForEach(func(i int) {
			if tc.Null(i) {
				out[i] = variant.Null
				return
			}
			out[i] = cmpBool(op, cmp3Float(xs[i], y))
		})
		return true
	case TypedColString:
		y := lit.AsString()
		if codes := tc.Codes(); codes != nil {
			// Dictionary fast path: compare each distinct string once.
			dict := tc.Dict()
			res := make([]variant.Value, len(dict))
			for c, s := range dict {
				res[c] = cmpBool(op, strings.Compare(s, y))
			}
			b.ForEach(func(i int) {
				if tc.Null(i) {
					out[i] = variant.Null
					return
				}
				out[i] = res[codes[i]]
			})
			return true
		}
		xs := tc.Strs()
		b.ForEach(func(i int) {
			if tc.Null(i) {
				out[i] = variant.Null
				return
			}
			out[i] = cmpBool(op, strings.Compare(xs[i], y))
		})
		return true
	case TypedColBool:
		xs := tc.Bools()
		y := lit.AsBool()
		b.ForEach(func(i int) {
			if tc.Null(i) {
				out[i] = variant.Null
				return
			}
			out[i] = cmpBool(op, cmp3Bool(xs[i], y))
		})
		return true
	}
	return false
}

func cmp3Int(x, y int64) int {
	switch {
	case x < y:
		return -1
	case x > y:
		return 1
	}
	return 0
}

// cmp3Float matches variant.Compare on doubles: NaN compares equal to
// everything (neither < nor > fires).
func cmp3Float(x, y float64) int {
	switch {
	case x < y:
		return -1
	case x > y:
		return 1
	}
	return 0
}

func cmp3Bool(x, y bool) int {
	switch {
	case x == y:
		return 0
	case !x:
		return -1
	}
	return 1
}

// typedArithColLit handles + - * / % between a numeric typed column and a
// numeric literal, replicating variant/arith.go exactly: int⊗int keeps int64
// (two's-complement wraparound) except `/` which always yields a double,
// int/int division or mod by zero errors, and any float operand promotes to
// float64 arithmetic.
func typedArithColLit(b *vector.Batch, tc *vector.TypedCol, op string, lit variant.Value, litLeft bool, out []variant.Value) (bool, error) {
	if !lit.IsNumber() {
		return false, nil
	}
	intInt := tc.Kind() == TypedColInt && lit.Kind() == variant.KindInt
	switch {
	case intInt && op != "/":
		xs := tc.Ints()
		litI := lit.AsInt()
		var err error
		b.ForEach(func(i int) {
			if err != nil {
				return
			}
			if tc.Null(i) {
				out[i] = variant.Null
				return
			}
			x, y := xs[i], litI
			if litLeft {
				x, y = litI, xs[i]
			}
			switch op {
			case "+":
				out[i] = variant.Int(x + y)
			case "-":
				out[i] = variant.Int(x - y)
			case "*":
				out[i] = variant.Int(x * y)
			case "%":
				if y == 0 {
					_, err = variant.Mod(variant.Int(x), variant.Int(y))
					return
				}
				out[i] = variant.Int(x % y)
			}
		})
		return true, err
	case tc.Kind() == TypedColInt || tc.Kind() == TypedColFloat:
		colF := typedFloatAt(tc)
		litF := lit.AsFloat()
		var err error
		b.ForEach(func(i int) {
			if err != nil {
				return
			}
			if tc.Null(i) {
				out[i] = variant.Null
				return
			}
			x, y := colF(i), litF
			if litLeft {
				x, y = litF, colF(i)
			}
			switch op {
			case "+":
				out[i] = variant.Float(x + y)
			case "-":
				out[i] = variant.Float(x - y)
			case "*":
				out[i] = variant.Float(x * y)
			case "/":
				if intInt && y == 0 {
					// int/int by zero is an error; float division yields ±Inf.
					_, err = variant.Div(variant.Int(int64(x)), variant.Int(0))
					return
				}
				out[i] = variant.Float(x / y)
			case "%":
				out[i] = variant.Float(math.Mod(x, y))
			}
		})
		return true, err
	}
	return false, nil
}

// typedColColFn evaluates `colA op colB` when both columns expose typed
// views of compatible kinds.
func typedColColFn(ctx *execContext, li, ri int, op string, generic vecFn) vecFn {
	var out []variant.Value
	return func(b *vector.Batch) ([]variant.Value, error) {
		lt, rt := b.TypedCol(li), b.TypedCol(ri)
		if lt == nil || rt == nil {
			return generic(b) //jsqlint:ignore kernelalias kernel-to-kernel delegation: the wrapper shares the fallback's buffer contract
		}
		out = growBuf(out, b.Len())
		ok, err := typedColColKernel(b, lt, rt, op, out)
		if err != nil {
			return nil, err
		}
		if !ok {
			return generic(b) //jsqlint:ignore kernelalias kernel-to-kernel delegation: the wrapper shares the fallback's buffer contract
		}
		ctx.countTypedCols(2)
		return out, nil
	}
}

func typedColColKernel(b *vector.Batch, lt, rt *vector.TypedCol, op string, out []variant.Value) (bool, error) {
	lk, rk := lt.Kind(), rt.Kind()
	numL := lk == TypedColInt || lk == TypedColFloat
	numR := rk == TypedColInt || rk == TypedColFloat
	if isCmpOp(op) {
		switch {
		case lk == TypedColInt && rk == TypedColInt:
			xs, ys := lt.Ints(), rt.Ints()
			b.ForEach(func(i int) {
				if lt.Null(i) || rt.Null(i) {
					out[i] = variant.Null
					return
				}
				out[i] = cmpBool(op, cmp3Int(xs[i], ys[i]))
			})
			return true, nil
		case numL && numR:
			lf, rf := typedFloatAt(lt), typedFloatAt(rt)
			b.ForEach(func(i int) {
				if lt.Null(i) || rt.Null(i) {
					out[i] = variant.Null
					return
				}
				out[i] = cmpBool(op, cmp3Float(lf(i), rf(i)))
			})
			return true, nil
		case lk == TypedColString && rk == TypedColString:
			b.ForEach(func(i int) {
				if lt.Null(i) || rt.Null(i) {
					out[i] = variant.Null
					return
				}
				out[i] = cmpBool(op, strings.Compare(lt.StringAt(i), rt.StringAt(i)))
			})
			return true, nil
		case lk == TypedColBool && rk == TypedColBool:
			xs, ys := lt.Bools(), rt.Bools()
			b.ForEach(func(i int) {
				if lt.Null(i) || rt.Null(i) {
					out[i] = variant.Null
					return
				}
				out[i] = cmpBool(op, cmp3Bool(xs[i], ys[i]))
			})
			return true, nil
		case typedRank(lk) != typedRank(rk):
			// Constant three-way result for all non-null row pairs.
			c := typedRank(lk) - typedRank(rk)
			res := cmpBool(op, c)
			b.ForEach(func(i int) {
				if lt.Null(i) || rt.Null(i) {
					out[i] = variant.Null
					return
				}
				out[i] = res
			})
			return true, nil
		}
		return false, nil
	}
	if !numL || !numR {
		return false, nil
	}
	if lk == TypedColInt && rk == TypedColInt && op != "/" {
		xs, ys := lt.Ints(), rt.Ints()
		var err error
		b.ForEach(func(i int) {
			if err != nil {
				return
			}
			if lt.Null(i) || rt.Null(i) {
				out[i] = variant.Null
				return
			}
			switch op {
			case "+":
				out[i] = variant.Int(xs[i] + ys[i])
			case "-":
				out[i] = variant.Int(xs[i] - ys[i])
			case "*":
				out[i] = variant.Int(xs[i] * ys[i])
			case "%":
				if ys[i] == 0 {
					_, err = variant.Mod(variant.Int(xs[i]), variant.Int(0))
					return
				}
				out[i] = variant.Int(xs[i] % ys[i])
			}
		})
		return true, err
	}
	intInt := lk == TypedColInt && rk == TypedColInt
	lf, rf := typedFloatAt(lt), typedFloatAt(rt)
	var err error
	b.ForEach(func(i int) {
		if err != nil {
			return
		}
		if lt.Null(i) || rt.Null(i) {
			out[i] = variant.Null
			return
		}
		x, y := lf(i), rf(i)
		switch op {
		case "+":
			out[i] = variant.Float(x + y)
		case "-":
			out[i] = variant.Float(x - y)
		case "*":
			out[i] = variant.Float(x * y)
		case "/":
			if intInt && y == 0 {
				_, err = variant.Div(variant.Int(int64(x)), variant.Int(0))
				return
			}
			out[i] = variant.Float(x / y)
		case "%":
			out[i] = variant.Float(math.Mod(x, y))
		}
	})
	return true, err
}

// typedFloatAt returns a float64 accessor over a numeric typed column.
func typedFloatAt(tc *vector.TypedCol) func(int) float64 {
	if tc.Kind() == TypedColInt {
		xs := tc.Ints()
		//jsqlint:ignore typedalias accessor is consumed inside the same batch's kernel invocation and never outlives the scan
		return func(i int) float64 { return float64(xs[i]) }
	}
	xs := tc.Floats()
	//jsqlint:ignore typedalias accessor is consumed inside the same batch's kernel invocation and never outlives the scan
	return func(i int) float64 { return xs[i] }
}

// compileTypedIsNull evaluates IS [NOT] NULL straight off the null bitmap
// when the operand is a column with a typed view.
func compileTypedIsNull(ctx *execContext, sc *Schema, x *sqlast.IsNull, generic vecFn) vecFn {
	ci, ok := colRefIndex(sc, x.Operand)
	if !ok {
		return nil
	}
	negate := x.Negate
	var out []variant.Value
	return func(b *vector.Batch) ([]variant.Value, error) {
		tc := b.TypedCol(ci)
		if tc == nil {
			return generic(b) //jsqlint:ignore kernelalias kernel-to-kernel delegation: the wrapper shares the fallback's buffer contract
		}
		out = growBuf(out, b.Len())
		if !tc.HasNulls() {
			res := variant.Bool(negate)
			b.ForEach(func(i int) { out[i] = res })
		} else {
			b.ForEach(func(i int) { out[i] = variant.Bool(tc.Null(i) != negate) })
		}
		ctx.countTypedCols(1)
		return out, nil
	}
}
