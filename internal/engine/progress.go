package engine

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"jsonpark/internal/vector"
)

// Live progress introspection. Every query prepared through PrepareOpts
// registers one queryProgress with its engine for the duration of RunCtx;
// prepare wraps each operator in a progIter bumping lock-free per-operator
// counters, and (*Engine).ProgressSnapshot reads them atomically at any
// moment, so /debug/queries can show per-operator rows/batches/memory for
// queries that are still running. The counters are plain atomics with no
// per-batch allocation — the overhead on the hot path is two atomic adds
// per operator per batch.

// opProgress is one operator's live counters, shared between the executing
// goroutines (writers) and ProgressSnapshot (reader).
type opProgress struct {
	op      string
	detail  string
	depth   int
	rows    atomic.Int64
	batches atomic.Int64
	mem     atomic.Int64
}

func (p *opProgress) addRows(rows int64) {
	if p == nil {
		return
	}
	p.rows.Add(rows)
	p.batches.Add(1)
}

// addMem shifts the operator's currently-charged byte gauge (negative on
// release/spill). Nil-safe so un-tracked operators cost nothing.
func (p *opProgress) addMem(n int64) {
	if p == nil {
		return
	}
	p.mem.Add(n)
}

// queryProgress is one in-flight query's live state: identity plus one
// opProgress per plan operator in pre-order.
type queryProgress struct {
	id      uint64
	traceID string
	sql     string
	start   time.Time
	ops     []*opProgress
	byNode  map[Node]*opProgress
}

// newQueryProgress walks the physical plan pre-order, allocating one
// counter slot per operator.
func newQueryProgress(plan Node, sql, traceID string) *queryProgress {
	qp := &queryProgress{
		traceID: traceID,
		sql:     sql,
		byNode:  make(map[Node]*opProgress),
	}
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		op, detail := describeNode(n)
		slot := &opProgress{op: op, detail: detail, depth: depth}
		qp.ops = append(qp.ops, slot)
		qp.byNode[n] = slot
		for _, c := range planChildren(n) {
			walk(c, depth+1)
		}
	}
	walk(plan, 0)
	return qp
}

// progFor returns the live counter slot for a plan node (nil when the query
// is not progress-tracked or the node is synthetic).
func (c *execContext) progFor(n Node) *opProgress {
	if c == nil || c.prog == nil || n == nil {
		return nil
	}
	return c.prog.byNode[n]
}

// progIter bumps the operator's live counters for every emitted batch.
type progIter struct {
	in batchIter
	p  *opProgress
}

func (pi *progIter) NextBatch() (*vector.Batch, error) {
	b, err := pi.in.NextBatch()
	if b != nil {
		pi.p.addRows(int64(b.NumRows()))
	}
	return b, err
}

func (pi *progIter) Close() { pi.in.Close() }

// OpProgress is the atomic snapshot of one operator's live counters, in
// plan pre-order (Depth reconstructs the tree shape).
type OpProgress struct {
	Op       string `json:"op"`
	Detail   string `json:"detail,omitempty"`
	Depth    int    `json:"depth"`
	Rows     int64  `json:"rows"`
	Batches  int64  `json:"batches"`
	MemBytes int64  `json:"mem_bytes,omitempty"`
}

// QueryProgress is the snapshot of one in-flight query.
type QueryProgress struct {
	TraceID   string       `json:"trace_id,omitempty"`
	SQL       string       `json:"sql"`
	Start     time.Time    `json:"start"`
	ElapsedUS int64        `json:"elapsed_us"`
	Operators []OpProgress `json:"operators"`
}

// progressTable tracks every registered in-flight query of one engine.
type progressTable struct {
	mu   sync.Mutex
	seq  uint64
	live map[uint64]*queryProgress
}

func (t *progressTable) add(qp *queryProgress) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.live == nil {
		t.live = make(map[uint64]*queryProgress)
	}
	t.seq++
	qp.id = t.seq
	qp.start = time.Now()
	t.live[qp.id] = qp
}

func (t *progressTable) remove(qp *queryProgress) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.live, qp.id)
}

// ProgressSnapshot returns the live per-operator counters of every query
// currently executing on this engine, oldest first. Counters are read
// atomically while the queries keep running, so successive snapshots of the
// same query show monotonically growing rows/batches.
func (e *Engine) ProgressSnapshot() []QueryProgress {
	e.progress.mu.Lock()
	qps := make([]*queryProgress, 0, len(e.progress.live))
	for _, qp := range e.progress.live {
		qps = append(qps, qp)
	}
	e.progress.mu.Unlock()
	sort.Slice(qps, func(i, j int) bool { return qps[i].id < qps[j].id })
	out := make([]QueryProgress, len(qps))
	for i, qp := range qps {
		s := QueryProgress{
			TraceID:   qp.traceID,
			SQL:       qp.sql,
			Start:     qp.start,
			ElapsedUS: time.Since(qp.start).Microseconds(),
			Operators: make([]OpProgress, len(qp.ops)),
		}
		for j, op := range qp.ops {
			s.Operators[j] = OpProgress{
				Op:       op.op,
				Detail:   op.detail,
				Depth:    op.depth,
				Rows:     op.rows.Load(),
				Batches:  op.batches.Load(),
				MemBytes: op.mem.Load(),
			}
		}
		out[i] = s
	}
	return out
}
