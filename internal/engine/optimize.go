package engine

import (
	"fmt"
	"strings"

	"jsonpark/internal/obsv"
	"jsonpark/internal/sqlast"
	"jsonpark/internal/storage"
	"jsonpark/internal/variant"
)

// optimize runs the engine's rewrite pipeline: expression simplification
// (including struct-field pushdown through OBJECT_CONSTRUCT), predicate
// pushdown with equi-join detection, projection pruning down to the scans,
// and zone-map prune-predicate derivation.
func optimize(n Node) Node {
	return optimizeTraced(n, nil)
}

// optimizeTraced is optimize with one child span per rewrite rule, each
// annotated with what the rule achieved (projects collapsed, predicates
// sunk into scans, columns pruned, zone-map predicates derived) so a trace
// shows which rules fired on a given query.
func optimizeTraced(n Node, sp *obsv.Span) Node {
	rule := func(name string, fn func(Node) Node, attr func(s *obsv.Span)) {
		s := sp.Child("rule." + name)
		n = fn(n)
		if s != nil && attr != nil {
			attr(s)
		}
		s.End()
	}
	projectAttr := func(before int) func(*obsv.Span) {
		return func(s *obsv.Span) {
			s.SetAttr("projects", fmt.Sprintf("%d->%d", before, countProjects(n)))
		}
	}
	before := 0
	if sp != nil {
		before = countProjects(n)
	}
	rule("simplify", simplifyNode, nil)
	rule("merge-projects", mergeProjects, projectAttr(before))
	// Pushdown substitutes projection definitions into predicates, exposing
	// fresh GET(OBJECT_CONSTRUCT(...)) folding opportunities that projection
	// pruning depends on — simplify again, and re-merge projection pairs
	// that pushdown separated.
	if sp != nil {
		before = countProjects(n)
	}
	rule("pushdown", pushDown, nil)
	rule("simplify", simplifyNode, nil)
	rule("merge-projects", mergeProjects, projectAttr(before))
	rule("prune-columns", func(x Node) Node { return pruneNode(x, nil) }, func(s *obsv.Span) {
		s.SetAttr("scan-columns", countScanColumns(n))
	})
	rule("derive-prunes", func(x Node) Node { deriveScanPrunes(x); return x }, func(s *obsv.Span) {
		s.SetAttr("prune-predicates", countScanPrunes(n))
	})
	return n
}

// physicalizeTraced runs the physical pass (physical.go) with a trace span
// recording how many pipeline breakers went parallel; the count is also
// returned so the metrics layer can report it.
func physicalizeTraced(n Node, par, mergeParts int, sp *obsv.Span) (Node, int) {
	n = physicalize(n, par, mergeParts)
	count := countNodesOf(n, func(x Node) bool {
		switch x.(type) {
		case *ParallelAggNode, *ParallelJoinNode, *ParallelSortNode:
			return true
		}
		return false
	})
	if sp != nil {
		sp.SetAttr("parallel-breakers", count)
	}
	return n, count
}

// countNodesOf counts plan nodes matching the predicate.
func countNodesOf(n Node, match func(Node) bool) int {
	total := 0
	if match(n) {
		total++
	}
	for _, c := range planChildren(n) {
		total += countNodesOf(c, match)
	}
	return total
}

func countProjects(n Node) int {
	return countNodesOf(n, func(x Node) bool { _, ok := x.(*ProjectNode); return ok })
}

func countScanPrunes(n Node) int {
	total := 0
	countNodesOf(n, func(x Node) bool {
		if s, ok := x.(*ScanNode); ok {
			total += len(s.Prunes)
		}
		return false
	})
	return total
}

func countScanColumns(n Node) int {
	total := 0
	countNodesOf(n, func(x Node) bool {
		if s, ok := x.(*ScanNode); ok {
			total += len(s.Columns)
		}
		return false
	})
	return total
}

// mergeProjects collapses Project-over-Project chains — the data-frame
// layer emits one SELECT level per transformation, and executing each level
// copies every row. A definition is inlined into the outer project when it
// is free (a column reference or literal), or used at most once (including
// volatile SEQ8 definitions, whose single use keeps the value sequence
// intact).
func mergeProjects(n Node) Node {
	switch x := n.(type) {
	case *FilterNode:
		x.Input = mergeProjects(x.Input)
	case *ProjectNode:
		x.Input = mergeProjects(x.Input)
		for {
			inner, ok := x.Input.(*ProjectNode)
			if !ok {
				break
			}
			counts := make(map[string]int)
			for _, e := range x.Exprs {
				countRefs(e, counts)
			}
			mergeable := true
			for i, name := range inner.Names {
				c := counts[name]
				if c == 0 {
					continue
				}
				def := inner.Exprs[i]
				if isFreeExpr(def) {
					continue
				}
				if c > 1 {
					mergeable = false
					break
				}
			}
			if !mergeable {
				break
			}
			defs := make(map[string]sqlast.Expr, len(inner.Names))
			for i, name := range inner.Names {
				defs[name] = inner.Exprs[i]
			}
			for i := range x.Exprs {
				x.Exprs[i] = substituteDefs(x.Exprs[i], defs)
			}
			x.Input = inner.Input
		}
	case *FlattenNode:
		x.Input = mergeProjects(x.Input)
	case *AggregateNode:
		x.Input = mergeProjects(x.Input)
	case *JoinNode:
		x.Left = mergeProjects(x.Left)
		x.Right = mergeProjects(x.Right)
	case *SortNode:
		x.Input = mergeProjects(x.Input)
	case *LimitNode:
		x.Input = mergeProjects(x.Input)
	case *UnionNode:
		x.Left = mergeProjects(x.Left)
		x.Right = mergeProjects(x.Right)
	}
	return n
}

func countRefs(e sqlast.Expr, into map[string]int) {
	walkExpr(e, func(n sqlast.Expr) bool {
		if cr, ok := n.(*sqlast.ColRef); ok {
			name := cr.Name
			if cr.Table != "" {
				name = cr.Table + "." + cr.Name
			}
			into[name]++
		}
		return true
	})
}

func isFreeExpr(e sqlast.Expr) bool {
	switch e.(type) {
	case *sqlast.ColRef, *sqlast.Lit:
		return true
	}
	return false
}

// substituteDefs replaces column references with their defining expressions.
func substituteDefs(e sqlast.Expr, defs map[string]sqlast.Expr) sqlast.Expr {
	switch x := e.(type) {
	case *sqlast.ColRef:
		name := x.Name
		if x.Table != "" {
			name = x.Table + "." + x.Name
		}
		if def, ok := defs[name]; ok {
			return def
		}
		return x
	case *sqlast.Lit, *sqlast.Star:
		return e
	case *sqlast.FuncCall:
		args := make([]sqlast.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = substituteDefs(a, defs)
		}
		out := &sqlast.FuncCall{Name: x.Name, Args: args, Distinct: x.Distinct}
		for _, o := range x.WithinOrder {
			out.WithinOrder = append(out.WithinOrder, sqlast.OrderItem{Expr: substituteDefs(o.Expr, defs), Desc: o.Desc})
		}
		return out
	case *sqlast.Binary:
		return &sqlast.Binary{Op: x.Op, Left: substituteDefs(x.Left, defs), Right: substituteDefs(x.Right, defs)}
	case *sqlast.Unary:
		return &sqlast.Unary{Op: x.Op, Operand: substituteDefs(x.Operand, defs)}
	case *sqlast.IsNull:
		return &sqlast.IsNull{Operand: substituteDefs(x.Operand, defs), Negate: x.Negate}
	case *sqlast.CaseWhen:
		out := &sqlast.CaseWhen{}
		for _, w := range x.Whens {
			out.Whens = append(out.Whens, sqlast.WhenClause{
				Cond:   substituteDefs(w.Cond, defs),
				Result: substituteDefs(w.Result, defs),
			})
		}
		if x.Else != nil {
			out.Else = substituteDefs(x.Else, defs)
		}
		return out
	case *sqlast.Cast:
		return &sqlast.Cast{Operand: substituteDefs(x.Operand, defs), Type: x.Type}
	}
	return e
}

// --- expression simplification -------------------------------------------

func simplifyNode(n Node) Node {
	switch x := n.(type) {
	case *ScanNode:
		x.Filter = simplifyExpr(x.Filter)
	case *FilterNode:
		x.Input = simplifyNode(x.Input)
		x.Cond = simplifyExpr(x.Cond)
	case *ProjectNode:
		x.Input = simplifyNode(x.Input)
		for i := range x.Exprs {
			x.Exprs[i] = simplifyExpr(x.Exprs[i])
		}
	case *FlattenNode:
		x.Input = simplifyNode(x.Input)
		x.Expr = simplifyExpr(x.Expr)
	case *AggregateNode:
		x.Input = simplifyNode(x.Input)
		for i := range x.GroupBy {
			x.GroupBy[i] = simplifyExpr(x.GroupBy[i])
		}
		for i := range x.Aggs {
			if x.Aggs[i].Arg != nil {
				x.Aggs[i].Arg = simplifyExpr(x.Aggs[i].Arg)
			}
			for j := range x.Aggs[i].OrderBy {
				x.Aggs[i].OrderBy[j].Expr = simplifyExpr(x.Aggs[i].OrderBy[j].Expr)
			}
		}
	case *JoinNode:
		x.Left = simplifyNode(x.Left)
		x.Right = simplifyNode(x.Right)
		x.On = simplifyExpr(x.On)
	case *SortNode:
		x.Input = simplifyNode(x.Input)
		for i := range x.Keys {
			x.Keys[i].Expr = simplifyExpr(x.Keys[i].Expr)
		}
	case *LimitNode:
		x.Input = simplifyNode(x.Input)
	case *UnionNode:
		x.Left = simplifyNode(x.Left)
		x.Right = simplifyNode(x.Right)
	}
	return n
}

// simplifyExpr folds constants and performs the struct-field pushdown
// rewrite GET(OBJECT_CONSTRUCT('a', x, ...), 'a') → x, which restores
// column-level prunability after the translator wraps table columns into
// per-variable objects.
func simplifyExpr(e sqlast.Expr) sqlast.Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *sqlast.Lit, *sqlast.ColRef, *sqlast.Star:
		return e
	case *sqlast.FuncCall:
		args := make([]sqlast.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = simplifyExpr(a)
		}
		out := &sqlast.FuncCall{Name: x.Name, Args: args, Distinct: x.Distinct, WithinOrder: x.WithinOrder}
		if folded := foldGet(out); folded != nil {
			return folded
		}
		if lit := foldLiteralCall(out); lit != nil {
			return lit
		}
		return out
	case *sqlast.Binary:
		l := simplifyExpr(x.Left)
		r := simplifyExpr(x.Right)
		out := &sqlast.Binary{Op: x.Op, Left: l, Right: r}
		if ll, lok := l.(*sqlast.Lit); lok {
			if rl, rok := r.(*sqlast.Lit); rok {
				if v, ok := evalConst(out); ok {
					return &sqlast.Lit{Value: v}
				}
				_ = ll
				_ = rl
			}
			// Short circuits.
			if x.Op == "AND" && ll.Value.Kind() == variant.KindBool {
				if !ll.Value.AsBool() {
					return &sqlast.Lit{Value: variant.Bool(false)}
				}
				return r
			}
			if x.Op == "OR" && ll.Value.Kind() == variant.KindBool {
				if ll.Value.AsBool() {
					return &sqlast.Lit{Value: variant.Bool(true)}
				}
				return r
			}
		}
		if rl, rok := r.(*sqlast.Lit); rok && rl.Value.Kind() == variant.KindBool {
			if x.Op == "AND" {
				if !rl.Value.AsBool() {
					return &sqlast.Lit{Value: variant.Bool(false)}
				}
				return l
			}
			if x.Op == "OR" {
				if rl.Value.AsBool() {
					return &sqlast.Lit{Value: variant.Bool(true)}
				}
				return l
			}
		}
		return out
	case *sqlast.Unary:
		o := simplifyExpr(x.Operand)
		out := &sqlast.Unary{Op: x.Op, Operand: o}
		if _, ok := o.(*sqlast.Lit); ok {
			if v, folded := evalConst(out); folded {
				return &sqlast.Lit{Value: v}
			}
		}
		return out
	case *sqlast.IsNull:
		o := simplifyExpr(x.Operand)
		if lit, ok := o.(*sqlast.Lit); ok {
			return &sqlast.Lit{Value: variant.Bool(lit.Value.IsNull() != x.Negate)}
		}
		return &sqlast.IsNull{Operand: o, Negate: x.Negate}
	case *sqlast.CaseWhen:
		out := &sqlast.CaseWhen{}
		for _, w := range x.Whens {
			out.Whens = append(out.Whens, sqlast.WhenClause{
				Cond:   simplifyExpr(w.Cond),
				Result: simplifyExpr(w.Result),
			})
		}
		out.Else = simplifyExpr(x.Else)
		// Fold a leading constant condition.
		for len(out.Whens) > 0 {
			lit, ok := out.Whens[0].Cond.(*sqlast.Lit)
			if !ok {
				break
			}
			if !lit.Value.IsNull() && truthySQL(lit.Value) {
				return out.Whens[0].Result
			}
			out.Whens = out.Whens[1:]
		}
		if len(out.Whens) == 0 {
			if out.Else != nil {
				return out.Else
			}
			return &sqlast.Lit{Value: variant.Null}
		}
		return out
	case *sqlast.Cast:
		o := simplifyExpr(x.Operand)
		out := &sqlast.Cast{Operand: o, Type: x.Type}
		if _, ok := o.(*sqlast.Lit); ok {
			if v, folded := evalConst(out); folded {
				return &sqlast.Lit{Value: v}
			}
		}
		return out
	}
	return e
}

// foldGet rewrites GET over constructor calls: struct-field pushdown.
func foldGet(call *sqlast.FuncCall) sqlast.Expr {
	name := strings.ToUpper(call.Name)
	if name != "GET" || len(call.Args) != 2 {
		return nil
	}
	key, ok := call.Args[1].(*sqlast.Lit)
	if !ok {
		return nil
	}
	base, ok := call.Args[0].(*sqlast.FuncCall)
	if !ok {
		return nil
	}
	switch strings.ToUpper(base.Name) {
	case "OBJECT_CONSTRUCT":
		if key.Value.Kind() != variant.KindString || len(base.Args)%2 != 0 {
			return nil
		}
		for i := 0; i < len(base.Args); i += 2 {
			k, ok := base.Args[i].(*sqlast.Lit)
			if !ok || k.Value.Kind() != variant.KindString {
				return nil // non-literal key: cannot fold safely
			}
			if k.Value.AsString() == key.Value.AsString() {
				return base.Args[i+1]
			}
		}
		return &sqlast.Lit{Value: variant.Null}
	case "ARRAY_CONSTRUCT":
		if key.Value.Kind() != variant.KindInt {
			return nil
		}
		i := key.Value.AsInt()
		if i < 0 || i >= int64(len(base.Args)) {
			return &sqlast.Lit{Value: variant.Null}
		}
		return base.Args[i]
	}
	return nil
}

// foldLiteralCall evaluates a pure scalar call whose arguments are all
// literals. Volatile functions (SEQ8) are excluded.
func foldLiteralCall(call *sqlast.FuncCall) sqlast.Expr {
	name := strings.ToUpper(call.Name)
	if name == "SEQ8" || name == "SEQ4" || isAggregateName(name) {
		return nil
	}
	if _, ok := scalarFuncs[name]; !ok {
		return nil
	}
	for _, a := range call.Args {
		if _, ok := a.(*sqlast.Lit); !ok {
			return nil
		}
	}
	if v, ok := evalConst(call); ok {
		return &sqlast.Lit{Value: v}
	}
	return nil
}

// evalConst evaluates an expression with no column references.
func evalConst(e sqlast.Expr) (variant.Value, bool) {
	fn, err := compileExpr(NewSchema(nil), e)
	if err != nil {
		return variant.Null, false
	}
	v, err := fn(nil)
	if err != nil {
		return variant.Null, false
	}
	return v, true
}

// --- predicate pushdown ---------------------------------------------------

func splitConjuncts(e sqlast.Expr) []sqlast.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sqlast.Binary); ok && b.Op == "AND" {
		return append(splitConjuncts(b.Left), splitConjuncts(b.Right)...)
	}
	return []sqlast.Expr{e}
}

func andAll(conjuncts []sqlast.Expr) sqlast.Expr {
	var out sqlast.Expr
	for _, c := range conjuncts {
		if out == nil {
			out = c
		} else {
			out = &sqlast.Binary{Op: "AND", Left: out, Right: c}
		}
	}
	return out
}

// pushDown recursively pushes filter conjuncts toward the scans and converts
// qualifying joins into hash equi-joins.
func pushDown(n Node) Node {
	return pushFilter(n, nil)
}

// pushFilter pushes the given conjuncts into n. Conjuncts that cannot sink
// remain in a FilterNode above the result.
func pushFilter(n Node, conjuncts []sqlast.Expr) Node {
	switch x := n.(type) {
	case *ScanNode:
		all := append(splitConjuncts(x.Filter), conjuncts...)
		x.Filter = andAll(all)
		return x
	case *FilterNode:
		return pushFilter(x.Input, append(conjuncts, splitConjuncts(x.Cond)...))
	case *ProjectNode:
		var below, above []sqlast.Expr
		for _, c := range conjuncts {
			if sub, ok := substituteThroughProject(c, x); ok {
				below = append(below, sub)
			} else {
				above = append(above, c)
			}
		}
		x.Input = pushFilter(x.Input, below)
		return wrapFilter(x, above)
	case *FlattenNode:
		inputSchema := x.Input.Schema()
		var below, above []sqlast.Expr
		for _, c := range conjuncts {
			if exprResolves(inputSchema, c) {
				below = append(below, c)
			} else {
				above = append(above, c)
			}
		}
		x.Input = pushFilter(x.Input, below)
		return wrapFilter(x, above)
	case *JoinNode:
		return pushFilterJoin(x, conjuncts)
	case *AggregateNode:
		x.Input = pushFilter(x.Input, nil)
		return wrapFilter(x, conjuncts)
	case *SortNode:
		x.Input = pushFilter(x.Input, conjuncts)
		return x
	case *LimitNode:
		x.Input = pushFilter(x.Input, nil)
		return wrapFilter(x, conjuncts)
	case *UnionNode:
		// Conjuncts push into both branches only when they resolve by name
		// on each side; otherwise they stay above.
		var pushable, above []sqlast.Expr
		for _, c := range conjuncts {
			if exprResolves(x.Left.Schema(), c) && exprResolves(x.Right.Schema(), c) {
				pushable = append(pushable, c)
			} else {
				above = append(above, c)
			}
		}
		x.Left = pushFilter(x.Left, pushable)
		x.Right = pushFilter(x.Right, pushable)
		return wrapFilter(x, above)
	}
	return wrapFilter(n, conjuncts)
}

func wrapFilter(n Node, conjuncts []sqlast.Expr) Node {
	if len(conjuncts) == 0 {
		return n
	}
	return &FilterNode{Input: n, Cond: andAll(conjuncts)}
}

func pushFilterJoin(j *JoinNode, conjuncts []sqlast.Expr) Node {
	leftSchema := j.Left.Schema()
	rightSchema := j.Right.Schema()

	var leftConj, rightConj, above []sqlast.Expr
	var residual []sqlast.Expr

	classify := func(cs []sqlast.Expr, allowSidePush bool) {
		for _, c := range cs {
			onLeft := exprResolves(leftSchema, c)
			onRight := exprResolves(rightSchema, c)
			switch {
			case onLeft && allowSidePush:
				leftConj = append(leftConj, c)
			case onRight && allowSidePush:
				rightConj = append(rightConj, c)
			default:
				if eq, l, r := equiKey(c, leftSchema, rightSchema); eq {
					j.LeftKeys = append(j.LeftKeys, l)
					j.RightKeys = append(j.RightKeys, r)
				} else {
					residual = append(residual, c)
				}
			}
		}
	}

	switch j.Kind {
	case "CROSS", "INNER":
		// For inner semantics, ON conjuncts and WHERE conjuncts are
		// interchangeable.
		classify(splitConjuncts(j.On), true)
		classify(conjuncts, true)
		j.On = nil
		if len(j.LeftKeys) > 0 {
			j.Kind = "INNER"
		}
		j.Residual = andAll(residual)
	case "LEFT OUTER":
		// ON conjuncts keep join semantics; WHERE conjuncts referencing only
		// the left side can push, the rest stay above.
		classify(splitConjuncts(j.On), false)
		j.On = nil
		j.Residual = andAll(residual)
		for _, c := range conjuncts {
			if exprResolves(leftSchema, c) {
				leftConj = append(leftConj, c)
			} else {
				above = append(above, c)
			}
		}
	default:
		above = append(above, conjuncts...)
	}

	j.Left = pushFilter(j.Left, leftConj)
	j.Right = pushFilter(j.Right, rightConj)
	return wrapFilter(j, above)
}

// equiKey recognizes `l = r` with one side resolving on the left schema and
// the other on the right, returning the per-side key expressions.
func equiKey(c sqlast.Expr, left, right *Schema) (ok bool, l, r sqlast.Expr) {
	b, isBin := c.(*sqlast.Binary)
	if !isBin || b.Op != "=" {
		return false, nil, nil
	}
	if exprResolves(left, b.Left) && exprResolves(right, b.Right) {
		return true, b.Left, b.Right
	}
	if exprResolves(left, b.Right) && exprResolves(right, b.Left) {
		return true, b.Right, b.Left
	}
	return false, nil, nil
}

// --- projection pruning ---------------------------------------------------

type nameSet map[string]bool

func refsOf(e sqlast.Expr, into nameSet) {
	walkExpr(e, func(n sqlast.Expr) bool {
		if cr, ok := n.(*sqlast.ColRef); ok {
			name := cr.Name
			if cr.Table != "" {
				name = cr.Table + "." + cr.Name
			}
			into[name] = true
		}
		return true
	})
}

// pruneNode trims unused columns. needed == nil means "keep every output"
// (used at the root and through union branches).
func pruneNode(n Node, needed nameSet) Node {
	switch x := n.(type) {
	case *ScanNode:
		if needed == nil {
			return x
		}
		req := make(nameSet)
		for k := range needed {
			req[k] = true
		}
		refsOf(x.Filter, req)
		var cols []string
		for _, c := range x.Columns {
			if req[c] {
				cols = append(cols, c)
			}
		}
		if len(cols) == 0 && len(x.Columns) > 0 {
			cols = x.Columns[:1] // keep one column to preserve row count
		}
		x.Columns = cols
		x.schema = nil
		return x
	case *FilterNode:
		var childNeeded nameSet
		if needed != nil {
			childNeeded = make(nameSet)
			for k := range needed {
				childNeeded[k] = true
			}
			refsOf(x.Cond, childNeeded)
		}
		x.Input = pruneNode(x.Input, childNeeded)
		return x
	case *ProjectNode:
		if needed != nil {
			var exprs []sqlast.Expr
			var names []string
			for i, name := range x.Names {
				if needed[name] {
					exprs = append(exprs, x.Exprs[i])
					names = append(names, name)
				}
			}
			if len(exprs) == 0 {
				// Keep one cheap column to preserve cardinality.
				exprs = x.Exprs[:1]
				names = x.Names[:1]
			}
			x.Exprs = exprs
			x.Names = names
			x.schema = nil
		}
		childNeeded := make(nameSet)
		for _, e := range x.Exprs {
			refsOf(e, childNeeded)
		}
		x.Input = pruneNode(x.Input, childNeeded)
		return x
	case *FlattenNode:
		childNeeded := nameSet(nil)
		if needed != nil {
			childNeeded = make(nameSet)
			for k := range needed {
				if k != x.Alias+".VALUE" && k != x.Alias+".INDEX" {
					childNeeded[k] = true
				}
			}
			refsOf(x.Expr, childNeeded)
		}
		x.Input = pruneNode(x.Input, childNeeded)
		x.schema = nil
		return x
	case *AggregateNode:
		// Drop aggregates whose output is never consumed (e.g. ANY_VALUE
		// carry-alongs from nested-query re-aggregation); group keys always
		// stay since they define the output cardinality.
		if needed != nil {
			var aggs []AggSpec
			var names []string
			for i, name := range x.AggNames {
				if needed[name] {
					aggs = append(aggs, x.Aggs[i])
					names = append(names, name)
				}
			}
			x.Aggs = aggs
			x.AggNames = names
			x.schema = nil
		}
		childNeeded := make(nameSet)
		for _, g := range x.GroupBy {
			refsOf(g, childNeeded)
		}
		for _, a := range x.Aggs {
			if a.Arg != nil {
				refsOf(a.Arg, childNeeded)
			}
			for _, o := range a.OrderBy {
				refsOf(o.Expr, childNeeded)
			}
		}
		if len(childNeeded) == 0 {
			childNeeded = nil // COUNT(*) only: any column will do
		}
		x.Input = pruneNode(x.Input, childNeeded)
		return x
	case *JoinNode:
		leftNeeded, rightNeeded := nameSet(nil), nameSet(nil)
		if needed != nil {
			leftNeeded, rightNeeded = make(nameSet), make(nameSet)
			collect := make(nameSet)
			for k := range needed {
				collect[k] = true
			}
			refsOf(x.On, collect)
			refsOf(x.Residual, collect)
			for _, k := range x.LeftKeys {
				refsOf(k, collect)
			}
			for _, k := range x.RightKeys {
				refsOf(k, collect)
			}
			for name := range collect {
				if _, ok := x.Left.Schema().Lookup(name); ok {
					leftNeeded[name] = true
				}
				if _, ok := x.Right.Schema().Lookup(name); ok {
					rightNeeded[name] = true
				}
			}
		}
		x.Left = pruneNode(x.Left, leftNeeded)
		x.Right = pruneNode(x.Right, rightNeeded)
		x.schema = nil
		return x
	case *SortNode:
		var childNeeded nameSet
		if needed != nil {
			childNeeded = make(nameSet)
			for k := range needed {
				childNeeded[k] = true
			}
			for _, key := range x.Keys {
				refsOf(key.Expr, childNeeded)
			}
		}
		x.Input = pruneNode(x.Input, childNeeded)
		return x
	case *LimitNode:
		x.Input = pruneNode(x.Input, needed)
		return x
	case *UnionNode:
		// Positional semantics: pruning either side would misalign columns,
		// so both branches keep their full output.
		x.Left = pruneNode(x.Left, nil)
		x.Right = pruneNode(x.Right, nil)
		return x
	}
	return n
}

// substituteThroughProject rewrites a conjunct over a project's output
// schema into one over its input schema by inlining the defining
// expressions. Volatile definitions (containing SEQ8) block substitution.
func substituteThroughProject(c sqlast.Expr, p *ProjectNode) (sqlast.Expr, bool) {
	defs := make(map[string]sqlast.Expr, len(p.Names))
	for i, name := range p.Names {
		defs[name] = p.Exprs[i]
	}
	ok := true
	var subst func(e sqlast.Expr) sqlast.Expr
	subst = func(e sqlast.Expr) sqlast.Expr {
		switch x := e.(type) {
		case *sqlast.ColRef:
			name := x.Name
			if x.Table != "" {
				name = x.Table + "." + x.Name
			}
			def, found := defs[name]
			if !found || isVolatile(def) {
				ok = false
				return e
			}
			return def
		case *sqlast.Lit, *sqlast.Star:
			return e
		case *sqlast.FuncCall:
			args := make([]sqlast.Expr, len(x.Args))
			for i, a := range x.Args {
				args[i] = subst(a)
			}
			return &sqlast.FuncCall{Name: x.Name, Args: args, Distinct: x.Distinct, WithinOrder: x.WithinOrder}
		case *sqlast.Binary:
			return &sqlast.Binary{Op: x.Op, Left: subst(x.Left), Right: subst(x.Right)}
		case *sqlast.Unary:
			return &sqlast.Unary{Op: x.Op, Operand: subst(x.Operand)}
		case *sqlast.IsNull:
			return &sqlast.IsNull{Operand: subst(x.Operand), Negate: x.Negate}
		case *sqlast.CaseWhen:
			out := &sqlast.CaseWhen{}
			for _, w := range x.Whens {
				out.Whens = append(out.Whens, sqlast.WhenClause{Cond: subst(w.Cond), Result: subst(w.Result)})
			}
			if x.Else != nil {
				out.Else = subst(x.Else)
			}
			return out
		case *sqlast.Cast:
			return &sqlast.Cast{Operand: subst(x.Operand), Type: x.Type}
		}
		ok = false
		return e
	}
	out := subst(c)
	return out, ok
}

func isVolatile(e sqlast.Expr) bool {
	vol := false
	walkExpr(e, func(n sqlast.Expr) bool {
		if fc, ok := n.(*sqlast.FuncCall); ok {
			name := strings.ToUpper(fc.Name)
			if name == "SEQ8" || name == "SEQ4" {
				vol = true
				return false
			}
		}
		return true
	})
	return vol
}

// --- zone-map prune derivation --------------------------------------------

func deriveScanPrunes(n Node) {
	switch x := n.(type) {
	case *ScanNode:
		for _, c := range splitConjuncts(x.Filter) {
			if pred, ok := toPrunePredicate(c); ok {
				x.Prunes = append(x.Prunes, pred)
			}
		}
	case *FilterNode:
		deriveScanPrunes(x.Input)
	case *ProjectNode:
		deriveScanPrunes(x.Input)
	case *FlattenNode:
		deriveScanPrunes(x.Input)
	case *AggregateNode:
		deriveScanPrunes(x.Input)
	case *JoinNode:
		deriveScanPrunes(x.Left)
		deriveScanPrunes(x.Right)
	case *SortNode:
		deriveScanPrunes(x.Input)
	case *LimitNode:
		deriveScanPrunes(x.Input)
	case *UnionNode:
		deriveScanPrunes(x.Left)
		deriveScanPrunes(x.Right)
	}
}

// toPrunePredicate recognizes `path-expr op literal` (or flipped) where
// path-expr is a column or a GET chain with constant string keys.
func toPrunePredicate(c sqlast.Expr) (storage.PrunePredicate, bool) {
	b, ok := c.(*sqlast.Binary)
	if !ok {
		return storage.PrunePredicate{}, false
	}
	var op storage.PruneOp
	flipped := map[storage.PruneOp]storage.PruneOp{
		storage.PruneEq: storage.PruneEq,
		storage.PruneLt: storage.PruneGt,
		storage.PruneLe: storage.PruneGe,
		storage.PruneGt: storage.PruneLt,
		storage.PruneGe: storage.PruneLe,
	}
	switch b.Op {
	case "=":
		op = storage.PruneEq
	case "<":
		op = storage.PruneLt
	case "<=":
		op = storage.PruneLe
	case ">":
		op = storage.PruneGt
	case ">=":
		op = storage.PruneGe
	default:
		return storage.PrunePredicate{}, false
	}
	if col, path, ok := pathOf(b.Left); ok {
		if lit, isLit := b.Right.(*sqlast.Lit); isLit && !lit.Value.IsNull() {
			return storage.PrunePredicate{Column: col, Path: path, Op: op, Value: lit.Value}, true
		}
	}
	if col, path, ok := pathOf(b.Right); ok {
		if lit, isLit := b.Left.(*sqlast.Lit); isLit && !lit.Value.IsNull() {
			return storage.PrunePredicate{Column: col, Path: path, Op: flipped[op], Value: lit.Value}, true
		}
	}
	return storage.PrunePredicate{}, false
}

func pathOf(e sqlast.Expr) (col, path string, ok bool) {
	switch x := e.(type) {
	case *sqlast.ColRef:
		if x.Table != "" {
			return "", "", false
		}
		return x.Name, "", true
	case *sqlast.FuncCall:
		if strings.ToUpper(x.Name) != "GET" || len(x.Args) != 2 {
			return "", "", false
		}
		key, isLit := x.Args[1].(*sqlast.Lit)
		if !isLit || key.Value.Kind() != variant.KindString {
			return "", "", false
		}
		baseCol, basePath, baseOK := pathOf(x.Args[0])
		if !baseOK {
			return "", "", false
		}
		if basePath == "" {
			return baseCol, key.Value.AsString(), true
		}
		return baseCol, basePath + "." + key.Value.AsString(), true
	}
	return "", "", false
}
