package engine

import (
	"fmt"
	"strings"
	"testing"

	"jsonpark/internal/variant"
)

// rcEngine is cacheEngine with the result cache enabled.
func rcEngine(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	return cacheEngine(t, append([]Option{WithResultCacheSize(16)}, opts...)...)
}

func TestResultCacheHitMissAndStats(t *testing.T) {
	e := rcEngine(t)
	const q = `SELECT "k", COUNT(*) AS n FROM "c" GROUP BY "k" ORDER BY "k"`

	r1, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Metrics.ResultCacheHit {
		t.Fatal("first run reported a result-cache hit")
	}
	r2, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Metrics.ResultCacheHit {
		t.Fatal("second run did not report a result-cache hit")
	}
	if renderRows(r1) != renderRows(r2) {
		t.Fatal("cached rows diverge from the executed run")
	}
	if r2.Metrics.ExecTime != 0 {
		t.Fatalf("cache hit reports exec time %v, want 0 (execution skipped)", r2.Metrics.ExecTime)
	}
	hits, misses, evictions, invalidations, entries, bytes := e.ResultCacheStats()
	if hits != 1 || misses != 1 || evictions != 0 || invalidations != 0 || entries != 1 {
		t.Fatalf("stats = %d/%d/%d/%d/%d, want hits=1 misses=1 evictions=0 invalidations=0 entries=1",
			hits, misses, evictions, invalidations, entries)
	}
	if bytes <= 0 {
		t.Fatalf("resident bytes = %d, want > 0", bytes)
	}
}

func TestResultCacheDisabledByDefault(t *testing.T) {
	e := cacheEngine(t)
	const q = `SELECT COUNT(*) AS n FROM "c"`
	for i := 0; i < 3; i++ {
		res, err := e.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Metrics.ResultCacheHit {
			t.Fatalf("run %d hit a result cache that should be off", i+1)
		}
	}
	if h, m, _, _, n, _ := e.ResultCacheStats(); h != 0 || m != 0 || n != 0 {
		t.Fatalf("disabled cache reported activity: %d hits, %d misses, %d entries", h, m, n)
	}
}

// TestResultCacheMutatedRows pins the defensive copy: callers mutating the
// rows of a hit (or of the executed run that populated the cache) must not
// corrupt later hits.
func TestResultCacheMutatedRows(t *testing.T) {
	e := rcEngine(t)
	const q = `SELECT "k", COUNT(*) AS n FROM "c" GROUP BY "k" ORDER BY "k"`
	r1, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want := renderRows(r1)
	r1.Rows[0][0] = variant.Int(999) // caller scribbles on its result
	r2, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if renderRows(r2) != want {
		t.Fatal("mutating a returned row corrupted the cached entry")
	}
	r2.Rows[1][1] = variant.Int(-1)
	r3, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if renderRows(r3) != want {
		t.Fatal("mutating a cache hit's rows corrupted the cached entry")
	}
}

// TestResultCacheByteBudget pins the two capacity bounds: an oversized
// result is never cached, and inserts beyond the byte budget evict LRU
// entries.
func TestResultCacheByteBudget(t *testing.T) {
	// A budget far below any result's footprint: nothing is ever admitted.
	e := rcEngine(t, WithResultCacheBytes(8))
	const q = `SELECT COUNT(*) AS n FROM "c"`
	for i := 0; i < 2; i++ {
		res, err := e.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Metrics.ResultCacheHit {
			t.Fatal("a result larger than the whole budget was cached")
		}
	}
	if _, _, _, _, entries, _ := e.ResultCacheStats(); entries != 0 {
		t.Fatalf("entries = %d, want 0 (oversized results rejected)", entries)
	}

	// A budget that fits roughly one small result: inserting a second evicts
	// the first (LRU), observable via the evictions counter.
	const budget = 150
	e2 := rcEngine(t, WithResultCacheBytes(budget))
	queries := []string{
		`SELECT COUNT(*) AS n FROM "c"`,
		`SELECT MAX("v") AS mx FROM "c"`,
		`SELECT MIN("v") AS mn FROM "c"`,
	}
	for _, q := range queries {
		if _, err := e2.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	_, _, evictions, _, entries, bytes := e2.ResultCacheStats()
	if evictions == 0 {
		t.Fatalf("no evictions under a %d-byte budget after %d inserts", budget, len(queries))
	}
	if bytes > budget {
		t.Fatalf("resident bytes %d exceed the budget", bytes)
	}
	if entries < 1 {
		t.Fatal("byte-budget eviction emptied the cache entirely")
	}
}

// TestResultCacheInvalidationMatrix drives every mutation class through the
// cache and checks each evicts exactly the affected entries — and, for the
// cases the prepared-plan cache fences differently, that the two caches stay
// independently correct: every seal invalidates results for that table,
// while the plan cache only cares about DDL and the 1→2 partition
// transition.
func TestResultCacheInvalidationMatrix(t *testing.T) {
	const q1 = `SELECT COUNT(*) AS n FROM "t1"`
	const q2 = `SELECT COUNT(*) AS n FROM "t2"`

	type step struct {
		name string
		// mutate applies the catalog mutation under test.
		mutate func(t *testing.T, e *Engine)
		// wantQ1Hit/wantQ2Hit: does re-running each query hit the result
		// cache after the mutation?
		wantQ1Hit, wantQ2Hit bool
		// wantPlanHitQ1: does q1 still hit the prepared-plan cache (the
		// catalog-version fence is coarser than result invalidation)?
		wantPlanHitQ1 bool
		// skipQ2 when the mutation removed t2.
		skipQ2 bool
	}
	steps := []step{
		{
			name: "append-and-seal",
			mutate: func(t *testing.T, e *Engine) {
				tab, err := e.Catalog().Table("t1")
				if err != nil {
					t.Fatal(err)
				}
				if err := tab.Append([]variant.Value{variant.Int(7)}); err != nil {
					t.Fatal(err)
				}
				tab.Seal()
			},
			// The seal (2→3 partitions) advances t1's partition-set version:
			// its result is evicted, t2's survives, and the plan cache keeps
			// the template (the fence only bumps on the 1→2 transition).
			wantQ1Hit: false, wantQ2Hit: true, wantPlanHitQ1: true,
		},
		{
			name: "create-table",
			mutate: func(t *testing.T, e *Engine) {
				if _, err := e.Catalog().CreateTable("t3", []string{"x"}); err != nil {
					t.Fatal(err)
				}
			},
			// DDL clears the whole plan cache but no cached result read "t3",
			// so both results survive.
			wantQ1Hit: true, wantQ2Hit: true, wantPlanHitQ1: false,
		},
		{
			name: "drop-table",
			mutate: func(t *testing.T, e *Engine) {
				e.Catalog().DropTable("t2")
			},
			wantQ1Hit: true, wantPlanHitQ1: false, skipQ2: true,
		},
		{
			name: "set-data-dir",
			mutate: func(t *testing.T, e *Engine) {
				e.Catalog().SetDataDir(t.TempDir())
			},
			// A storage-root change invalidates everything in both caches.
			wantQ1Hit: false, wantQ2Hit: false, wantPlanHitQ1: false,
		},
	}

	for _, st := range steps {
		t.Run(st.name, func(t *testing.T) {
			e := New(WithResultCacheSize(16))
			for _, name := range []string{"t1", "t2"} {
				tab, err := e.Catalog().CreateTable(name, []string{"v"})
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 40; i++ {
					if err := tab.Append([]variant.Value{variant.Int(int64(i))}); err != nil {
						t.Fatal(err)
					}
					if i == 19 {
						tab.Seal()
					}
				}
				tab.Seal()
			}
			// Warm both caches: run each query twice.
			for _, q := range []string{q1, q1, q2, q2} {
				if _, err := e.Query(q); err != nil {
					t.Fatal(err)
				}
			}
			if _, _, _, _, entries, _ := e.ResultCacheStats(); entries != 2 {
				t.Fatalf("entries = %d after warmup, want 2", entries)
			}

			st.mutate(t, e)

			r1, err := e.Query(q1)
			if err != nil {
				t.Fatal(err)
			}
			if r1.Metrics.ResultCacheHit != st.wantQ1Hit {
				t.Errorf("q1 result-cache hit = %v, want %v", r1.Metrics.ResultCacheHit, st.wantQ1Hit)
			}
			if r1.Metrics.PlanCacheHit != st.wantPlanHitQ1 {
				t.Errorf("q1 plan-cache hit = %v, want %v", r1.Metrics.PlanCacheHit, st.wantPlanHitQ1)
			}
			if !st.skipQ2 {
				r2, err := e.Query(q2)
				if err != nil {
					t.Fatal(err)
				}
				if r2.Metrics.ResultCacheHit != st.wantQ2Hit {
					t.Errorf("q2 result-cache hit = %v, want %v", r2.Metrics.ResultCacheHit, st.wantQ2Hit)
				}
			}
			// A miss after a mutation must serve fresh data, not stale rows:
			// re-count t1 after the append step.
			if st.name == "append-and-seal" {
				if got := r1.Rows[0][0].AsInt(); got != 41 {
					t.Fatalf("post-append count = %d, want 41 (stale cached rows?)", got)
				}
			}
		})
	}
}

// TestResultCacheParityGrid is the acceptance grid: with the result cache on
// and appends interleaved between runs, every (parallelism × batch × typed)
// cell must render byte-identically to a cold engine that loaded all data up
// front — before the append (partial data), and after it (full data, cache
// invalidated).
func TestResultCacheParityGrid(t *testing.T) {
	queries := []string{
		`SELECT "k", COUNT(*) AS n, MAX("v") AS mx, ARRAY_AGG("v") AS vs FROM "g" GROUP BY "k" ORDER BY "k"`,
		`SELECT "v" FROM "g" WHERE "k" <> 2 ORDER BY "v" DESC LIMIT 50`,
		`SELECT COUNT(*) AS n, MIN("v") AS mn FROM "g"`,
	}
	row := func(i int) []variant.Value {
		return []variant.Value{variant.Int(int64(i % 5)), variant.Int(int64(i))}
	}
	load := func(t *testing.T, e *Engine, lo, hi int) {
		tab, err := e.Catalog().Table("g")
		if err != nil {
			tab, err = e.Catalog().CreateTable("g", []string{"k", "v"})
			if err != nil {
				t.Fatal(err)
			}
		}
		for i := lo; i < hi; i++ {
			if err := tab.Append(row(i)); err != nil {
				t.Fatal(err)
			}
			if (i+1)%37 == 0 {
				tab.Seal()
			}
		}
	}
	// Cold oracles: fresh engines over exactly the partial and full data.
	oracle := func(t *testing.T, n int) []string {
		e := New()
		load(t, e, 0, n)
		out := make([]string, len(queries))
		for i, q := range queries {
			res, err := e.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = renderRows(res)
		}
		return out
	}
	const partial, full = 120, 200
	wantPartial := oracle(t, partial)
	wantFull := oracle(t, full)

	for _, par := range []int{1, 4} {
		for _, batch := range []int{1, 1024} {
			for _, typed := range []bool{true, false} {
				name := fmt.Sprintf("par%d-bs%d-typed%v", par, batch, typed)
				t.Run(name, func(t *testing.T) {
					e := New(WithParallelism(par), WithBatchSize(batch),
						WithTypedColumns(typed), WithResultCacheSize(16))
					load(t, e, 0, partial)
					// Run twice over the partial data: second run must hit and
					// both must match the cold oracle.
					for pass := 0; pass < 2; pass++ {
						for qi, q := range queries {
							res, err := e.Query(q)
							if err != nil {
								t.Fatal(err)
							}
							if got := renderRows(res); got != wantPartial[qi] {
								t.Fatalf("pass %d query %d diverges from partial oracle:\n got %s\nwant %s",
									pass, qi, clipDiff(got), clipDiff(wantPartial[qi]))
							}
							if pass == 1 && !res.Metrics.ResultCacheHit {
								t.Fatalf("query %d second run missed the result cache", qi)
							}
						}
					}
					// Interleaved append: the next runs must see the new rows
					// (exact invalidation) and then hit again.
					load(t, e, partial, full)
					for pass := 0; pass < 2; pass++ {
						for qi, q := range queries {
							res, err := e.Query(q)
							if err != nil {
								t.Fatal(err)
							}
							if got := renderRows(res); got != wantFull[qi] {
								t.Fatalf("post-append pass %d query %d diverges from full oracle:\n got %s\nwant %s",
									pass, qi, clipDiff(got), clipDiff(wantFull[qi]))
							}
							if pass == 0 && res.Metrics.ResultCacheHit {
								t.Fatalf("query %d served stale cached rows across an append", qi)
							}
							if pass == 1 && !res.Metrics.ResultCacheHit {
								t.Fatalf("query %d did not re-cache after the append", qi)
							}
						}
					}
				})
			}
		}
	}
}

// TestResultCacheAnalyzeHit pins that a cache hit under Analyze still
// returns a non-nil (zeroed) plan-stats tree — the slow-query capture path
// relies on it.
func TestResultCacheAnalyzeHit(t *testing.T) {
	e := rcEngine(t)
	const q = `SELECT "k", COUNT(*) AS n FROM "c" GROUP BY "k" ORDER BY "k"`
	if _, err := e.Query(q); err != nil {
		t.Fatal(err)
	}
	p, err := e.PrepareOpts(q, PrepareOptions{Analyze: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Metrics.ResultCacheHit {
		t.Fatal("analyzed run missed the warmed result cache")
	}
	if p.PlanStats() == nil {
		t.Fatal("PlanStats() = nil on an analyzed cache hit")
	}
	if !strings.Contains(p.PlanStats().Render(), "Aggregate") {
		t.Fatal("analyzed cache hit lost the plan tree shape")
	}
}
