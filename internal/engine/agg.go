package engine

import (
	"fmt"
	"sort"

	"jsonpark/internal/variant"
)

// accumulator folds rows of one group for one aggregate. Order keys are
// only supplied for ordered ARRAY_AGG.
type accumulator interface {
	add(v variant.Value, orderKeys []variant.Value) error
	result(descs []bool) variant.Value
}

func newAccumulator(spec AggSpec) accumulator {
	switch spec.Name {
	case "COUNT":
		if spec.Distinct {
			return &countDistinctAcc{seen: make(map[string]bool)}
		}
		return &countAcc{star: spec.Star}
	case "COUNT_IF":
		return &countIfAcc{}
	case "SUM":
		return &sumAcc{}
	case "AVG":
		return &avgAcc{}
	case "MIN":
		return &minMaxAcc{dir: -1}
	case "MAX":
		return &minMaxAcc{dir: 1}
	case "ANY_VALUE":
		return &anyValueAcc{}
	case "ARRAY_AGG":
		return &arrayAggAcc{distinct: spec.Distinct, seen: make(map[string]bool)}
	case "BOOLAND_AGG":
		return &boolAgg{isAnd: true}
	case "BOOLOR_AGG":
		return &boolAgg{}
	}
	return &errAcc{name: spec.Name}
}

type errAcc struct{ name string }

func (a *errAcc) add(variant.Value, []variant.Value) error {
	return fmt.Errorf("engine: unsupported aggregate %s", a.name)
}
func (a *errAcc) result([]bool) variant.Value { return variant.Null }

type countAcc struct {
	star bool
	n    int64
}

func (a *countAcc) add(v variant.Value, _ []variant.Value) error {
	if a.star || !v.IsNull() {
		a.n++
	}
	return nil
}
func (a *countAcc) result([]bool) variant.Value { return variant.Int(a.n) }

// countDistinctAcc dedups on the canonical binary group key (same
// equivalence classes as HashKey, but encoded into a reusable buffer so the
// map lookup on a seen value allocates nothing).
type countDistinctAcc struct {
	seen map[string]bool
	kbuf []byte
}

func (a *countDistinctAcc) add(v variant.Value, _ []variant.Value) error {
	if !v.IsNull() {
		a.kbuf = v.AppendGroupKey(a.kbuf[:0])
		if !a.seen[string(a.kbuf)] {
			a.seen[string(a.kbuf)] = true
		}
	}
	return nil
}
func (a *countDistinctAcc) result([]bool) variant.Value { return variant.Int(int64(len(a.seen))) }

type countIfAcc struct{ n int64 }

func (a *countIfAcc) add(v variant.Value, _ []variant.Value) error {
	if !v.IsNull() && truthySQL(v) {
		a.n++
	}
	return nil
}
func (a *countIfAcc) result([]bool) variant.Value { return variant.Int(a.n) }

type sumAcc struct {
	intSum   int64
	floatSum float64
	anyFloat bool
	n        int64
}

func (a *sumAcc) add(v variant.Value, _ []variant.Value) error {
	switch v.Kind() {
	case variant.KindNull:
		return nil
	case variant.KindInt:
		a.intSum += v.AsInt()
	case variant.KindFloat:
		a.floatSum += v.AsFloat()
		a.anyFloat = true
	default:
		return fmt.Errorf("engine: SUM over non-numeric value of type %s", v.Kind())
	}
	a.n++
	return nil
}

func (a *sumAcc) result([]bool) variant.Value {
	if a.n == 0 {
		return variant.Null
	}
	if a.anyFloat {
		return variant.Float(a.floatSum + float64(a.intSum))
	}
	return variant.Int(a.intSum)
}

type avgAcc struct {
	sum float64
	n   int64
}

func (a *avgAcc) add(v variant.Value, _ []variant.Value) error {
	if v.IsNull() {
		return nil
	}
	if !v.IsNumber() {
		return fmt.Errorf("engine: AVG over non-numeric value of type %s", v.Kind())
	}
	a.sum += v.AsFloat()
	a.n++
	return nil
}

func (a *avgAcc) result([]bool) variant.Value {
	if a.n == 0 {
		return variant.Null
	}
	return variant.Float(a.sum / float64(a.n))
}

type minMaxAcc struct {
	dir  int
	best variant.Value
	any  bool
}

func (a *minMaxAcc) add(v variant.Value, _ []variant.Value) error {
	if v.IsNull() {
		return nil
	}
	if !a.any || a.dir*variant.Compare(v, a.best) > 0 {
		a.best = v
		a.any = true
	}
	return nil
}

func (a *minMaxAcc) result([]bool) variant.Value {
	if !a.any {
		return variant.Null
	}
	return a.best
}

type anyValueAcc struct {
	v   variant.Value
	any bool
}

func (a *anyValueAcc) add(v variant.Value, _ []variant.Value) error {
	if !a.any {
		a.v = v
		a.any = true
	}
	return nil
}

func (a *anyValueAcc) result([]bool) variant.Value {
	if !a.any {
		return variant.Null
	}
	return a.v
}

// arrayAggAcc collects non-NULL values, optionally de-duplicating, and sorts
// by the WITHIN GROUP order keys at finalization. NULL inputs are skipped —
// the property the paper's KEEP-flag strategy relies on (§IV-C1).
type arrayAggAcc struct {
	distinct bool
	seen     map[string]bool
	kbuf     []byte
	vals     []variant.Value
	orders   [][]variant.Value
}

func (a *arrayAggAcc) add(v variant.Value, orderKeys []variant.Value) error {
	if v.IsNull() {
		return nil
	}
	if a.distinct {
		a.kbuf = v.AppendGroupKey(a.kbuf[:0])
		if a.seen[string(a.kbuf)] {
			return nil
		}
		a.seen[string(a.kbuf)] = true
	}
	a.vals = append(a.vals, v)
	if orderKeys != nil {
		a.orders = append(a.orders, orderKeys)
	}
	return nil
}

func (a *arrayAggAcc) result(descs []bool) variant.Value {
	if len(a.orders) == len(a.vals) && len(a.orders) > 0 {
		idx := make([]int, len(a.vals))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(x, y int) bool {
			ka, kb := a.orders[idx[x]], a.orders[idx[y]]
			for k := range ka {
				c := variant.Compare(ka[k], kb[k])
				if k < len(descs) && descs[k] {
					c = -c
				}
				if c != 0 {
					return c < 0
				}
			}
			return false
		})
		sorted := make([]variant.Value, len(a.vals))
		for i, j := range idx {
			sorted[i] = a.vals[j]
		}
		return variant.ArrayOf(sorted)
	}
	return variant.ArrayOf(append([]variant.Value(nil), a.vals...))
}

// boolAgg implements BOOLAND_AGG / BOOLOR_AGG over non-NULL inputs.
type boolAgg struct {
	isAnd bool
	acc   bool
	any   bool
}

func (a *boolAgg) add(v variant.Value, _ []variant.Value) error {
	if v.IsNull() {
		return nil
	}
	b := truthySQL(v)
	if !a.any {
		a.acc = b
		a.any = true
		return nil
	}
	if a.isAnd {
		a.acc = a.acc && b
	} else {
		a.acc = a.acc || b
	}
	return nil
}

func (a *boolAgg) result([]bool) variant.Value {
	if !a.any {
		return variant.Null
	}
	return variant.Bool(a.acc)
}

// mergeAccumulators folds src into dst. The parallel aggregate merges
// partial states in storage-partition index order, which equals input row
// order, so every merge below reproduces the sequential fold exactly.
// Only the aggregates admitted by aggsMergeable ever reach this function;
// anything else (SUM/AVG float folds, unknown aggregates) is rejected at
// physicalization and errors here as a guard.
func mergeAccumulators(dst, src accumulator) error {
	switch s := src.(type) {
	case *countAcc:
		d := dst.(*countAcc)
		d.n += s.n
	case *countIfAcc:
		d := dst.(*countIfAcc)
		d.n += s.n
	case *countDistinctAcc:
		d := dst.(*countDistinctAcc)
		for k := range s.seen {
			d.seen[k] = true
		}
	case *minMaxAcc:
		d := dst.(*minMaxAcc)
		if s.any {
			if err := d.add(s.best, nil); err != nil {
				return err
			}
		}
	case *anyValueAcc:
		d := dst.(*anyValueAcc)
		if !d.any && s.any {
			d.v = s.v
			d.any = true
		}
	case *boolAgg:
		d := dst.(*boolAgg)
		if s.any {
			if err := d.add(variant.Bool(s.acc), nil); err != nil {
				return err
			}
		}
	case *arrayAggAcc:
		d := dst.(*arrayAggAcc)
		if !d.distinct {
			d.vals = append(d.vals, s.vals...)
			d.orders = append(d.orders, s.orders...)
			break
		}
		// DISTINCT: re-check each later-partition value against the merged
		// seen set so first-occurrence dedup matches the sequential order.
		for i, v := range s.vals {
			var ord []variant.Value
			if len(s.orders) == len(s.vals) {
				ord = s.orders[i]
			}
			if err := d.add(v, ord); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("engine: aggregate %T is not mergeable", src)
	}
	return nil
}
