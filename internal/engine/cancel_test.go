package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"jsonpark/internal/testutil"
	"jsonpark/internal/variant"
)

// cancelEngine builds a dataset big enough that every query shape below
// runs long enough to be caught mid-flight by a cancel.
func cancelEngine(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	e := New(opts...)
	tab, err := e.Catalog().CreateTable("events", []string{"id", "grp", "val", "items"})
	if err != nil {
		t.Fatal(err)
	}
	tab.SetTargetPartitionBytes(4096)
	for i := 0; i < 20000; i++ {
		doc := fmt.Sprintf(`{"id": %d, "grp": %d, "val": %g, "items": [%d, %d]}`,
			i, i%101, float64(i%997)/7.0, i, i*2)
		if err := tab.AppendObject(variant.MustParseJSON(doc)); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

var cancelQueries = []string{
	`SELECT "grp", COUNT(*), MIN("val"), MAX("val") FROM "events" GROUP BY "grp"`,
	`SELECT "id", "val" FROM "events" ORDER BY "val" DESC, "id"`,
	`SELECT COUNT(*) FROM (SELECT "grp" AS "g" FROM "events") INNER JOIN (SELECT * FROM "events") ON "g" = "grp"`,
	`SELECT "id", "f".VALUE FROM (SELECT * FROM "events"), LATERAL FLATTEN(INPUT => "items") AS "f"`,
}

// TestCancelAlreadyCancelled: a context cancelled before Run must abort
// before any work and return a context-classified error.
func TestCancelAlreadyCancelled(t *testing.T) {
	e := cancelEngine(t, WithParallelism(4))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, sql := range cancelQueries {
		_, err := e.QueryCtx(ctx, sql)
		if err == nil {
			t.Fatalf("%s: expected cancellation error", sql)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: error %v does not unwrap to context.Canceled", sql, err)
		}
	}
}

// TestCancelDeadlineClassification: a deadline hit mid-query unwraps to
// context.DeadlineExceeded.
func TestCancelDeadlineClassification(t *testing.T) {
	e := cancelEngine(t, WithParallelism(4))
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	_, err := e.QueryCtx(ctx, cancelQueries[0])
	if err == nil {
		t.Skip("query finished inside 1µs; nothing to classify")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not unwrap to context.DeadlineExceeded", err)
	}
}

// TestCancelMidQueryStress fires cancels at random points of every query
// shape (scan, group, sort, join, flatten) under parallel execution and
// requires: RunCtx returns within 100ms of the cancel, the error is
// context-classified, and no worker goroutine survives (CheckLeaks). Named
// *Stress so `make stress` runs it with -race -count 2.
func TestCancelMidQueryStress(t *testing.T) {
	testutil.CheckLeaks(t)
	e := cancelEngine(t, WithBatchSize(64), WithParallelism(8))
	for i := 0; i < 40; i++ {
		sql := cancelQueries[i%len(cancelQueries)]
		// Sweep the cancel point across the query's lifetime, from
		// before-the-first-batch to deep into the drain.
		delay := time.Duration(i%8) * 200 * time.Microsecond
		p, err := e.Prepare(sql)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(delay)
			cancel()
		}()
		start := time.Now()
		_, err = p.RunCtx(ctx)
		elapsed := time.Since(start)
		cancel()
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("iteration %d %s: error %v is not context.Canceled", i, sql, err)
			}
			// The abort must be prompt: within one batch of work anywhere in
			// the pipeline, far under the 100ms governance bound.
			if elapsed > delay+100*time.Millisecond {
				t.Fatalf("iteration %d %s: cancel took %s (delay %s)", i, sql, elapsed, delay)
			}
		}
	}
}

// TestCancelMemLimitStress is the cancel storm with spilling active: the
// breakers are mid-spill when the context fires, so spill files must be
// cleaned up and no goroutine may survive.
func TestCancelMemLimitStress(t *testing.T) {
	testutil.CheckLeaks(t)
	e := cancelEngine(t, WithBatchSize(64), WithParallelism(8), WithMemLimit(32*1024))
	for i := 0; i < 30; i++ {
		sql := cancelQueries[i%len(cancelQueries)]
		delay := time.Duration(i%6) * 300 * time.Microsecond
		ctx, cancel := context.WithTimeout(context.Background(), delay)
		_, err := e.QueryCtx(ctx, sql)
		cancel()
		if err != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d %s: %v", i, sql, err)
		}
	}
}

// TestCancelErrorMessage: the wrapped error names the engine and keeps the
// cause visible for operators.
func TestCancelErrorMessage(t *testing.T) {
	e := cancelEngine(t, WithParallelism(2))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.QueryCtx(ctx, cancelQueries[0])
	if err == nil {
		t.Fatal("expected error")
	}
	if got := err.Error(); got != "engine: query interrupted: context canceled" {
		t.Fatalf("unexpected message %q", got)
	}
}
