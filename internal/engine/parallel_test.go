package engine

import (
	"strings"
	"testing"

	"jsonpark/internal/variant"
)

// breakerQueries exercise every parallel pipeline breaker: partitioned hash
// aggregation (with ARRAY_AGG concatenation, DISTINCT dedup, ANY_VALUE
// first-wins and WITHIN GROUP ordering — the order-sensitive merges), the
// parallel hash-join build, and the parallel sort.
var breakerQueries = []string{
	// Grouped aggregation, mergeable accumulators only.
	`SELECT grp, COUNT(*), MIN(val), MAX(val) FROM events GROUP BY grp`,
	`SELECT grp, COUNT(DISTINCT val), ANY_VALUE(id) FROM events GROUP BY grp`,
	`SELECT "grp", ARRAY_AGG("id") FROM "events" GROUP BY "grp"`,
	`SELECT "grp", ARRAY_AGG(DISTINCT "val") FROM "events" GROUP BY "grp"`,
	`SELECT "grp", ARRAY_AGG("id") WITHIN GROUP (ORDER BY "val" DESC, "id") FROM "events" GROUP BY "grp"`,
	// Global aggregation.
	`SELECT COUNT(*), MIN(val), MAX(id) FROM events`,
	`SELECT COUNT(*) FROM events WHERE val > 1000`, // empty after filter
	// Aggregation over a flatten chain (the paper's re-aggregation shape).
	`SELECT "id", ARRAY_AGG("f".VALUE), ANY_VALUE("grp") FROM (SELECT * FROM "events"), LATERAL FLATTEN(INPUT => "items") AS "f" GROUP BY "id"`,
	// Non-mergeable aggregates: must fall back and still agree byte-for-byte.
	`SELECT grp, SUM(val), AVG(val) FROM events GROUP BY grp`,
	// Joins: equi-join (parallel build) and LEFT OUTER.
	`SELECT COUNT(*) FROM (SELECT "grp" AS "g" FROM "events" WHERE "id" < 100) INNER JOIN (SELECT * FROM "events") ON "g" = "grp"`,
	`SELECT "id", "oid" FROM (SELECT "id", "grp" FROM "events" WHERE "id" < 25) LEFT OUTER JOIN (SELECT "id" AS "oid", "grp" AS "g2" FROM "events" WHERE "val" > 12) ON "grp" = "g2"`,
	// Sorts: duplicate keys probe the stable multiway merge.
	`SELECT id, grp, val FROM events ORDER BY grp, val DESC`,
	`SELECT id FROM events ORDER BY val DESC LIMIT 31`,
}

// TestParallelBreakerParity is the core regression of the parallel pipeline
// breakers: parallelism {1,4} × batch size {1,1024}, planck enabled, every
// configuration byte-identical.
func TestParallelBreakerParity(t *testing.T) {
	configs := []struct {
		name string
		opts []Option
	}{
		{"par1-bs1", []Option{WithParallelism(1), WithBatchSize(1), WithPlanCheck(true)}},
		{"par1-bs1024", []Option{WithParallelism(1), WithBatchSize(1024), WithPlanCheck(true)}},
		{"par4-bs1", []Option{WithParallelism(4), WithBatchSize(1), WithPlanCheck(true)}},
		{"par4-bs1024", []Option{WithParallelism(4), WithBatchSize(1024), WithPlanCheck(true)}},
	}
	engines := make([]*Engine, len(configs))
	for i, c := range configs {
		engines[i] = multiPartEngine(t, c.opts...)
	}
	for _, sql := range breakerQueries {
		var want string
		for i, c := range configs {
			res, err := engines[i].Query(sql)
			if err != nil {
				t.Fatalf("%s [%s]: %v", sql, c.name, err)
			}
			got := renderRows(res)
			if i == 0 {
				want = got
				continue
			}
			if got != want {
				t.Errorf("%s: config %s diverges from %s\ngot:\n%s\nwant:\n%s",
					sql, c.name, configs[0].name, got, want)
			}
		}
	}
}

// TestParallelAggExplainAnalyze pins the observability contract: an analyzed
// parallel aggregation reports the ParallelAggregate operator with its
// per-phase stats, and the stats are internally consistent.
func TestParallelAggExplainAnalyze(t *testing.T) {
	e := multiPartEngine(t, WithParallelism(4), WithPlanCheck(true))
	res, ps, err := e.QueryAnalyze(`SELECT grp, COUNT(*), MIN(val) FROM events GROUP BY grp`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("expected 7 groups, got %d", len(res.Rows))
	}
	rendered := ps.Render()
	if !strings.Contains(rendered, "ParallelAggregate") {
		t.Fatalf("EXPLAIN ANALYZE does not show the parallel aggregate:\n%s", rendered)
	}
	if !strings.Contains(rendered, "par[pipelines=") {
		t.Fatalf("EXPLAIN ANALYZE missing the parallel phase stats:\n%s", rendered)
	}
	var agg *PlanStats
	ps.Walk(func(_ int, n *PlanStats) {
		if n.Op == "ParallelAggregate" {
			agg = n
		}
	})
	if agg == nil {
		t.Fatal("no ParallelAggregate node in PlanStats")
	}
	if agg.Pipelines < 1 || agg.MergeParts < 1 {
		t.Fatalf("phase stats not recorded: %+v", agg)
	}
	if agg.MergedGroups != 7 {
		t.Fatalf("merged groups = %d, want 7", agg.MergedGroups)
	}
	if agg.LocalRows != 500 {
		t.Fatalf("local rows = %d, want 500", agg.LocalRows)
	}
	if agg.LocalGroups < agg.MergedGroups {
		t.Fatalf("local groups %d < merged groups %d", agg.LocalGroups, agg.MergedGroups)
	}
	if agg.MaxWorkerRows < 1 || agg.MaxWorkerRows > agg.LocalRows {
		t.Fatalf("implausible max worker rows %d (local %d)", agg.MaxWorkerRows, agg.LocalRows)
	}
	if agg.RowsIn != agg.Children[0].RowsOut {
		t.Fatalf("rows_in %d does not match child rows_out %d", agg.RowsIn, agg.Children[0].RowsOut)
	}
}

// TestOrderSensitiveAggStaysSequential pins the fallback rule: SUM and AVG
// fold floats in input order (addition is not associative), and stateful
// SEQ8 arguments observe evaluation order, so those plans keep the
// sequential Aggregate operator even at high parallelism.
func TestOrderSensitiveAggStaysSequential(t *testing.T) {
	e := multiPartEngine(t, WithParallelism(8), WithPlanCheck(true))
	for _, sql := range []string{
		`SELECT grp, SUM(val) FROM events GROUP BY grp`,
		`SELECT grp, AVG(val) FROM events GROUP BY grp`,
		`SELECT grp, MIN(SEQ8()) FROM events GROUP BY grp`,
	} {
		_, ps, err := e.QueryAnalyze(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		found := false
		ps.Walk(func(_ int, n *PlanStats) {
			if n.Op == "ParallelAggregate" {
				found = true
			}
		})
		if found {
			t.Errorf("%s: order-sensitive aggregate went parallel", sql)
		}
	}
}

// TestParallelJoinAndSortAnalyze checks that the join build and sort report
// their parallel phase stats.
func TestParallelJoinAndSortAnalyze(t *testing.T) {
	e := multiPartEngine(t, WithParallelism(4), WithPlanCheck(true))
	_, ps, err := e.QueryAnalyze(
		`SELECT COUNT(*) FROM (SELECT "grp" AS "g" FROM "events") INNER JOIN (SELECT * FROM "events") ON "g" = "grp"`)
	if err != nil {
		t.Fatal(err)
	}
	var join *PlanStats
	ps.Walk(func(_ int, n *PlanStats) {
		if strings.Contains(n.Op, "Join") {
			join = n
		}
	})
	if join == nil {
		t.Fatal("no join in plan")
	}
	if join.Pipelines < 1 || join.LocalRows != 500 {
		t.Fatalf("join build phase stats not recorded: %+v", join)
	}

	_, ps, err = e.QueryAnalyze(`SELECT id FROM events ORDER BY val DESC, id`)
	if err != nil {
		t.Fatal(err)
	}
	var srt *PlanStats
	ps.Walk(func(_ int, n *PlanStats) {
		if n.Op == "Sort" {
			srt = n
		}
	})
	if srt == nil {
		t.Fatal("no sort in plan")
	}
	// 500 rows clears minParallelSortRows only when lowered; at the default
	// threshold the run stays sequential and the stats stay zero — both are
	// legal, but the operator must report sort_workers in its detail.
	if !strings.Contains(srt.Detail, "sort_workers=4") {
		t.Fatalf("sort detail missing worker count: %q", srt.Detail)
	}
}

// TestWithMergePartitions pins the merge-partition option: results stay
// byte-identical and the configured partition count shows up in the stats.
func TestWithMergePartitions(t *testing.T) {
	base := multiPartEngine(t, WithParallelism(1))
	tuned := multiPartEngine(t, WithParallelism(4), WithMergePartitions(2), WithPlanCheck(true))
	sql := `SELECT "grp", ARRAY_AGG("id"), COUNT(*) FROM "events" GROUP BY "grp"`
	want, err := base.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	got, ps, err := tuned.QueryAnalyze(sql)
	if err != nil {
		t.Fatal(err)
	}
	if renderRows(got) != renderRows(want) {
		t.Fatal("merge-partition tuning changed the result")
	}
	var agg *PlanStats
	ps.Walk(func(_ int, n *PlanStats) {
		if n.Op == "ParallelAggregate" {
			agg = n
		}
	})
	if agg == nil {
		t.Fatal("no ParallelAggregate node")
	}
	if agg.MergeParts != 2 {
		t.Fatalf("merge parts = %d, want 2", agg.MergeParts)
	}
}

// TestParallelAggSinglePartitionFallsBack: a table with one micro-partition
// has nothing to split; the plan keeps the sequential Aggregate.
func TestParallelAggSinglePartitionFallsBack(t *testing.T) {
	e := New(WithParallelism(4), WithPlanCheck(true))
	tab, err := e.Catalog().CreateTable("one", []string{"k", "v"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		row := []variant.Value{variant.Int(int64(i % 3)), variant.Int(int64(i))}
		if err := tab.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	_, ps, err := e.QueryAnalyze(`SELECT k, COUNT(*) FROM one GROUP BY k`)
	if err != nil {
		t.Fatal(err)
	}
	ps.Walk(func(_ int, n *PlanStats) {
		if n.Op == "ParallelAggregate" {
			t.Error("single-partition table should not aggregate in parallel")
		}
	})
}
