package engine

import (
	"fmt"
	"testing"
	"testing/quick"

	"jsonpark/internal/variant"
)

// Property: ORDER BY produces exactly the variant total order over random
// integer datasets, across partition boundaries.
func TestOrderByMatchesReferenceSortProperty(t *testing.T) {
	f := func(vals []int64) bool {
		if len(vals) == 0 {
			return true
		}
		e := New()
		tab, err := e.Catalog().CreateTable("t", []string{"v"})
		if err != nil {
			return false
		}
		tab.SetTargetPartitionBytes(64)
		for _, v := range vals {
			if err := tab.Append([]variant.Value{variant.Int(v)}); err != nil {
				return false
			}
		}
		res, err := e.Query(`SELECT "v" FROM "t" ORDER BY "v" ASC`)
		if err != nil {
			return false
		}
		if len(res.Rows) != len(vals) {
			return false
		}
		prev := res.Rows[0][0]
		for _, row := range res.Rows[1:] {
			if variant.Compare(prev, row[0]) > 0 {
				return false
			}
			prev = row[0]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: GROUP BY sums agree with a map-based reference implementation
// for random (key, value) pairs.
func TestGroupBySumMatchesReferenceProperty(t *testing.T) {
	f := func(keys []uint8, vals []int64) bool {
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		if n == 0 {
			return true
		}
		e := New()
		tab, err := e.Catalog().CreateTable("t", []string{"k", "v"})
		if err != nil {
			return false
		}
		want := map[int64]int64{}
		for i := 0; i < n; i++ {
			k := int64(keys[i] % 7)
			if err := tab.Append([]variant.Value{variant.Int(k), variant.Int(vals[i])}); err != nil {
				return false
			}
			want[k] += vals[i]
		}
		res, err := e.Query(`SELECT "k", SUM("v") AS "s" FROM "t" GROUP BY "k"`)
		if err != nil {
			return false
		}
		if len(res.Rows) != len(want) {
			return false
		}
		for _, row := range res.Rows {
			if want[row[0].AsInt()] != row[1].AsInt() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: LATERAL FLATTEN then ARRAY_AGG by row id reconstructs the
// original arrays (the §IV-B round trip) for random array shapes.
func TestFlattenRegroupRoundTripProperty(t *testing.T) {
	f := func(lens []uint8) bool {
		if len(lens) == 0 || len(lens) > 40 {
			return true
		}
		e := New()
		tab, err := e.Catalog().CreateTable("t", []string{"id", "arr"})
		if err != nil {
			return false
		}
		original := make([]variant.Value, len(lens))
		for i, l := range lens {
			elems := make([]variant.Value, int(l)%5)
			for j := range elems {
				elems[j] = variant.Int(int64(i*10 + j))
			}
			original[i] = variant.ArrayOf(elems)
			if err := tab.Append([]variant.Value{variant.Int(int64(i)), original[i]}); err != nil {
				return false
			}
		}
		res, err := e.Query(`SELECT "id", ARRAY_AGG("f".VALUE) WITHIN GROUP (ORDER BY "f".INDEX ASC) AS "r"
			FROM (SELECT * FROM "t"), LATERAL FLATTEN(INPUT => "arr", OUTER => TRUE) AS "f"
			GROUP BY "id" ORDER BY "id" ASC`)
		if err != nil {
			return false
		}
		if len(res.Rows) != len(lens) {
			return false
		}
		for i, row := range res.Rows {
			if !variant.Equal(row[1], original[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Failure injection: runtime errors inside operators surface as errors, not
// panics or silent wrong answers.
func TestRuntimeErrorsSurfaceFromOperators(t *testing.T) {
	e := testEngine(t)
	cases := []string{
		`SELECT "o_id" + "o_clerk" FROM "orders"`,       // string arithmetic in project
		`SELECT * FROM "orders" WHERE "o_id" % 0 = 1`,   // mod by zero in filter
		`SELECT SUM("o_clerk") FROM "orders"`,           // SUM over strings
		`SELECT AVG("Muon") FROM "adl"`,                 // AVG over arrays
		`SELECT ARRAY_RANGE(0, 99999999) FROM "orders"`, // range guard
	}
	for _, sql := range cases {
		if _, err := e.Query(sql); err == nil {
			t.Errorf("Query(%q) should fail at runtime", sql)
		}
	}
}

func TestNullHandlingInAggregates(t *testing.T) {
	e := New()
	tab, err := e.Catalog().CreateTable("t", []string{"v"})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []variant.Value{variant.Int(1), variant.Null, variant.Int(3), variant.Null} {
		if err := tab.Append([]variant.Value{v}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := e.Query(`SELECT COUNT(*), COUNT("v"), SUM("v"), AVG("v"), MIN("v"), ARRAY_AGG("v") FROM "t"`)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	checks := []struct {
		i    int
		want string
	}{
		{0, "4"}, {1, "2"}, {2, "4"}, {3, "2.0"}, {4, "1"}, {5, "[1,3]"},
	}
	for _, c := range checks {
		if got := row[c.i].JSON(); got != c.want {
			t.Errorf("col %d = %s, want %s", c.i, got, c.want)
		}
	}
}

func TestLargeMultiPartitionAggregation(t *testing.T) {
	e := New()
	tab, err := e.Catalog().CreateTable("t", []string{"k", "v"})
	if err != nil {
		t.Fatal(err)
	}
	tab.SetTargetPartitionBytes(1 << 10)
	const n = 5000
	var want int64
	for i := 0; i < n; i++ {
		if err := tab.Append([]variant.Value{variant.Int(int64(i % 10)), variant.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
		want += int64(i)
	}
	if parts := len(tab.Partitions()); parts < 10 {
		t.Fatalf("expected many partitions, got %d", parts)
	}
	res, err := e.Query(`SELECT SUM("v") FROM "t"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != want {
		t.Errorf("sum = %v, want %d", res.Rows[0][0], want)
	}
	res, err = e.Query(fmt.Sprintf(`SELECT COUNT(*) FROM "t" WHERE "v" >= %d`, n-100))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 100 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
	if res.Metrics.PartitionsPruned == 0 {
		t.Error("selective predicate should prune partitions")
	}
}
