package engine

import (
	"fmt"
	"strings"
	"time"

	"jsonpark/internal/sqlast"
	"jsonpark/internal/sqlparse"
	"jsonpark/internal/storage"
	"jsonpark/internal/variant"
)

// Engine is one embedded database instance: a catalog of micro-partitioned
// tables plus the query pipeline (parse → plan → optimize → execute).
type Engine struct {
	catalog *storage.Catalog
}

// New returns an empty engine.
func New() *Engine {
	return &Engine{catalog: storage.NewCatalog()}
}

// Catalog exposes the engine's table catalog for loading data.
func (e *Engine) Catalog() *storage.Catalog { return e.catalog }

// Metrics reports per-query costs, mirroring the measurements of §V:
// compile time (parse + plan + optimize + operator preparation), execution
// time, bytes scanned (per touched column chunk), and partition pruning.
type Metrics struct {
	CompileTime      time.Duration
	ExecTime         time.Duration
	BytesScanned     int64
	PartitionsTotal  int
	PartitionsPruned int
	RowsReturned     int64
}

// Total returns compile + execution time (the paper's "total time").
func (m Metrics) Total() time.Duration { return m.CompileTime + m.ExecTime }

// Result is a completed query: column names, rows, and metrics.
type Result struct {
	Columns []string
	Rows    [][]variant.Value
	Metrics Metrics
}

// Prepared is a compiled query ready to execute once.
type Prepared struct {
	plan    Node
	iter    rowIter
	ctx     *execContext
	columns []string
	metrics Metrics
}

// Prepare compiles SQL text into an executable plan, reporting compile time.
func (e *Engine) Prepare(sql string) (*Prepared, error) {
	start := time.Now()
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	pl := &planner{catalog: e.catalog}
	plan, err := pl.Build(q)
	if err != nil {
		return nil, err
	}
	plan = optimize(plan)
	ctx := &execContext{metrics: &Metrics{}}
	iter, err := prepare(plan, ctx)
	if err != nil {
		return nil, err
	}
	p := &Prepared{plan: plan, iter: iter, ctx: ctx, columns: plan.Schema().Names}
	p.metrics.CompileTime = time.Since(start)
	return p, nil
}

// Run executes the prepared query to completion. A Prepared is single-use.
func (p *Prepared) Run() (*Result, error) {
	start := time.Now()
	rows, err := drain(p.iter)
	if err != nil {
		return nil, err
	}
	m := *p.ctx.metrics
	m.CompileTime = p.metrics.CompileTime
	m.ExecTime = time.Since(start)
	m.RowsReturned = int64(len(rows))
	return &Result{Columns: p.columns, Rows: rows, Metrics: m}, nil
}

// Query compiles and executes SQL text in one call.
func (e *Engine) Query(sql string) (*Result, error) {
	p, err := e.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return p.Run()
}

// Explain returns a textual rendering of the optimized plan.
func (e *Engine) Explain(sql string) (string, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return "", err
	}
	pl := &planner{catalog: e.catalog}
	plan, err := pl.Build(q)
	if err != nil {
		return "", err
	}
	plan = optimize(plan)
	var b strings.Builder
	explainNode(&b, plan, 0)
	return b.String(), nil
}

func explainNode(b *strings.Builder, n Node, depth int) {
	indent := strings.Repeat("  ", depth)
	switch x := n.(type) {
	case *ScanNode:
		fmt.Fprintf(b, "%sScan %s cols=%v", indent, x.Table.Name, x.Columns)
		if x.Filter != nil {
			fmt.Fprintf(b, " filter=%s", sqlast.RenderExpr(x.Filter))
		}
		if len(x.Prunes) > 0 {
			fmt.Fprintf(b, " prunes=%d", len(x.Prunes))
		}
		b.WriteByte('\n')
	case *FilterNode:
		fmt.Fprintf(b, "%sFilter %s\n", indent, sqlast.RenderExpr(x.Cond))
		explainNode(b, x.Input, depth+1)
	case *ProjectNode:
		fmt.Fprintf(b, "%sProject %v\n", indent, x.Names)
		explainNode(b, x.Input, depth+1)
	case *FlattenNode:
		outer := ""
		if x.Outer {
			outer = " outer"
		}
		fmt.Fprintf(b, "%sFlatten%s %s as %s\n", indent, outer, sqlast.RenderExpr(x.Expr), x.Alias)
		explainNode(b, x.Input, depth+1)
	case *AggregateNode:
		fmt.Fprintf(b, "%sAggregate groups=%d aggs=%d\n", indent, len(x.GroupBy), len(x.Aggs))
		explainNode(b, x.Input, depth+1)
	case *JoinNode:
		fmt.Fprintf(b, "%s%s Join keys=%d\n", indent, x.Kind, len(x.LeftKeys))
		explainNode(b, x.Left, depth+1)
		explainNode(b, x.Right, depth+1)
	case *SortNode:
		fmt.Fprintf(b, "%sSort keys=%d\n", indent, len(x.Keys))
		explainNode(b, x.Input, depth+1)
	case *LimitNode:
		fmt.Fprintf(b, "%sLimit %d\n", indent, x.N)
		explainNode(b, x.Input, depth+1)
	case *UnionNode:
		fmt.Fprintf(b, "%sUnionAll\n", indent)
		explainNode(b, x.Left, depth+1)
		explainNode(b, x.Right, depth+1)
	default:
		fmt.Fprintf(b, "%s%T\n", indent, n)
	}
}
