package engine

import (
	"context"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"jsonpark/internal/obsv"
	"jsonpark/internal/sqlparse"
	"jsonpark/internal/storage"
	"jsonpark/internal/variant"
	"jsonpark/internal/vector"
)

// Engine is one embedded database instance: a catalog of micro-partitioned
// tables plus the query pipeline (parse → plan → optimize → execute).
type Engine struct {
	catalog     *storage.Catalog
	batchSize   int
	parallelism int
	mergeParts  int
	memLimit    int64
	planCheck   bool
	dataDir     string
	typedOff    bool
	// progress tracks every in-flight query for ProgressSnapshot.
	progress progressTable
	// batchHook, when set, runs after every root batch the executor drains.
	// Tests use it to hold a query mid-flight deterministically.
	batchHook func()
}

// Option configures an Engine.
type Option func(*Engine)

// WithBatchSize sets the number of rows per vector batch flowing between
// operators. Values < 1 fall back to vector.DefaultBatchSize.
func WithBatchSize(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.batchSize = n
		}
	}
}

// WithParallelism caps the worker pool of every parallel operator: morsel
// table scans and the pipeline-breaker phases (partitioned hash aggregation,
// hash-join build, sort-run sorting). 1 runs everything sequentially; values
// < 1 fall back to runtime.NumCPU(). Results are byte-identical at every
// setting — operators whose parallel execution could change output (float
// SUM/AVG folds, stateful SEQ expressions, unknown aggregates) stay on the
// sequential path.
func WithParallelism(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.parallelism = n
		}
	}
}

// WithMergePartitions sets the number of disjoint hash partitions the
// parallel aggregate's thread-local tables split into for the merge phase.
// Values < 1 (the default) follow the parallelism setting.
func WithMergePartitions(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.mergeParts = n
		}
	}
}

// WithMemLimit caps the bytes of retained state the pipeline breakers (hash
// aggregation, join build, sort) may hold per query, measured by a
// conservative deep-size accountant. Crossing the limit never fails the
// query: the charging operator spills to temp-file runs and the output stays
// byte-identical to the unlimited run. Values <= 0 (the default) disable
// accounting entirely.
func WithMemLimit(n int64) Option {
	return func(e *Engine) {
		if n > 0 {
			e.memLimit = n
		}
	}
}

// WithDataDir makes the catalog persistent: sealed partitions are written
// as micro-partition files under dir (one subdirectory per table), and
// tables already on disk are rediscovered lazily on first catalog access.
// Loading is two-phase — headers (schema + zone maps) at open, data
// sections on first scan — so pruning never touches cold data.
func WithDataDir(dir string) Option {
	return func(e *Engine) { e.dataDir = dir }
}

// WithTypedColumns toggles typed shredding at partition seal (on by
// default): uniform scalar leaf columns are stored as typed arrays
// (int64/float64/string/bool + null bitmap, dictionary-encoded strings)
// that the expression kernels read without variant materialization.
// Results are byte-identical either way; false keeps every column as
// variant values (the v1 layout).
func WithTypedColumns(on bool) Option {
	return func(e *Engine) { e.typedOff = !on }
}

// WithPlanCheck enables the planck debug pass: every prepared plan is
// cross-checked for unordered-exchange eligibility and declared
// selection-vector contracts, and every operator is wrapped to validate the
// batches it emits (see planck.go). Intended for tests and debugging — the
// per-batch validation costs a scan over each selection vector.
func WithPlanCheck(on bool) Option {
	return func(e *Engine) { e.planCheck = on }
}

// New returns an empty engine.
func New(opts ...Option) *Engine {
	e := &Engine{
		catalog:     storage.NewCatalog(),
		batchSize:   vector.DefaultBatchSize,
		parallelism: runtime.NumCPU(),
	}
	for _, o := range opts {
		o(e)
	}
	if e.typedOff {
		e.catalog.SetTypedShredding(false)
	}
	if e.dataDir != "" {
		e.catalog.SetDataDir(e.dataDir)
	}
	return e
}

// BatchSize reports the configured rows-per-batch.
func (e *Engine) BatchSize() int { return e.batchSize }

// Parallelism reports the configured scan worker cap.
func (e *Engine) Parallelism() int { return e.parallelism }

// Catalog exposes the engine's table catalog for loading data.
func (e *Engine) Catalog() *storage.Catalog { return e.catalog }

// SetExecBatchHook installs a callback invoked after every root-level batch
// a query drains. Intended for tests that need to observe a query
// mid-flight (pause in the hook, read ProgressSnapshot, release); install
// it before issuing queries — the hook is captured at Prepare time.
func (e *Engine) SetExecBatchHook(fn func()) { e.batchHook = fn }

// Metrics reports per-query costs, mirroring the measurements of §V:
// compile time (parse + plan + optimize + operator preparation), execution
// time, bytes scanned (per touched column chunk), and partition pruning.
type Metrics struct {
	CompileTime      time.Duration
	ExecTime         time.Duration
	BytesScanned     int64
	PartitionsTotal  int
	PartitionsPruned int
	RowsReturned     int64
	// ParallelBreakers is the number of pipeline breakers (aggregates, join
	// builds, sorts) the physical plan runs with parallel phases.
	ParallelBreakers int
	// Memory governance (WithMemLimit): peak accounted bytes, the configured
	// limit, and how often / how much the breakers spilled to disk.
	MemPeakBytes  int64
	MemLimitBytes int64
	Spills        int64
	SpillBytes    int64
	// Storage v2: column reads served by typed kernels, typed columns that
	// fell back to variant materialization, and partition data sections
	// cold-loaded from disk during this query.
	TypedCols    int64
	FallbackCols int64
	DiskReads    int64
}

// Total returns compile + execution time (the paper's "total time").
func (m Metrics) Total() time.Duration { return m.CompileTime + m.ExecTime }

// Result is a completed query: column names, rows, and metrics.
type Result struct {
	Columns []string
	Rows    [][]variant.Value
	Metrics Metrics
}

// Prepared is a compiled query ready to execute once.
type Prepared struct {
	eng     *Engine
	plan    Node
	iter    batchIter
	ctx     *execContext
	columns []string
	metrics Metrics
}

// PrepareOptions customizes compilation: an optional parent span that
// receives one child per compile stage (sql.parse, plan.build,
// engine.optimize with one grandchild per rule, engine.prepare), Analyze
// to meter every operator (rows, wall time, scan bytes) during execution,
// and TraceID to label the query's live-progress entry so /debug/queries
// can correlate in-flight progress with the finished trace.
type PrepareOptions struct {
	Span    *obsv.Span
	Analyze bool
	TraceID string
}

// Prepare compiles SQL text into an executable plan, reporting compile time.
func (e *Engine) Prepare(sql string) (*Prepared, error) {
	return e.PrepareOpts(sql, PrepareOptions{})
}

// PrepareOpts is Prepare with tracing and per-operator analysis.
func (e *Engine) PrepareOpts(sql string, po PrepareOptions) (*Prepared, error) {
	start := time.Now()
	psp := po.Span.Child("sql.parse")
	q, err := sqlparse.Parse(sql)
	psp.End()
	if err != nil {
		return nil, err
	}
	bsp := po.Span.Child("plan.build")
	pl := &planner{catalog: e.catalog}
	plan, err := pl.Build(q)
	bsp.End()
	if err != nil {
		return nil, err
	}
	osp := po.Span.Child("engine.optimize")
	plan = optimizeTraced(plan, osp)
	osp.End()
	par := e.parallelism
	if par <= 0 {
		par = runtime.NumCPU()
	}
	mergeParts := e.mergeParts
	if mergeParts <= 0 {
		mergeParts = par
	}
	physp := po.Span.Child("engine.physicalize")
	var breakers int
	plan, breakers = physicalizeTraced(plan, par, mergeParts, physp)
	physp.End()
	ctx := &execContext{
		metrics:     &Metrics{ParallelBreakers: breakers},
		batchSize:   e.batchSize,
		parallelism: par,
		mergeParts:  mergeParts,
		acct:        newMemAccountant(e.memLimit),
		prog:        newQueryProgress(plan, sql, po.TraceID),
		batchHook:   e.batchHook,
	}
	if ctx.batchSize <= 0 {
		ctx.batchSize = vector.DefaultBatchSize
	}
	if ctx.parallelism > 1 {
		ctx.unorderedScans = collectUnorderedScans(plan)
	}
	if e.planCheck {
		ctx.planCheck = true
		unordered := ctx.unorderedScans
		if unordered == nil {
			unordered = collectUnorderedScans(plan)
		}
		if err := checkPlan(plan, unordered); err != nil {
			return nil, err
		}
	}
	if po.Analyze {
		ctx.stats = make(map[Node]*OpStats)
	}
	prsp := po.Span.Child("engine.prepare")
	iter, err := prepare(plan, ctx)
	prsp.End()
	if err != nil {
		return nil, err
	}
	p := &Prepared{eng: e, plan: plan, iter: iter, ctx: ctx, columns: plan.Schema().Names}
	p.metrics.CompileTime = time.Since(start)
	return p, nil
}

// Run executes the prepared query to completion. A Prepared is single-use.
func (p *Prepared) Run() (*Result, error) {
	return p.RunCtx(context.Background())
}

// RunCtx executes the prepared query under ctx: a cancel or deadline aborts
// the query within one batch of work on any pipeline (every operator and
// every parallel worker polls it), the error satisfies
// errors.Is(err, context.Canceled) / context.DeadlineExceeded, and every
// worker goroutine has exited by the time RunCtx returns.
func (p *Prepared) RunCtx(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Installed before the first NextBatch; workers inherit visibility through
	// their spawning goroutine.
	p.ctx.qctx = ctx
	if p.eng != nil && p.ctx.prog != nil {
		p.eng.progress.add(p.ctx.prog)
		defer p.eng.progress.remove(p.ctx.prog)
	}
	start := time.Now()
	rows, err := drainRowsHooked(p.iter, p.ctx.batchHook)
	p.iter.Close()
	if err != nil {
		return nil, err
	}
	m := *p.ctx.metrics
	m.TypedCols = atomic.LoadInt64(&p.ctx.typedCols)
	m.FallbackCols = atomic.LoadInt64(&p.ctx.fallbackCols)
	m.DiskReads = atomic.LoadInt64(&p.ctx.diskReads)
	m.CompileTime = p.metrics.CompileTime
	m.ExecTime = time.Since(start)
	m.RowsReturned = int64(len(rows))
	m.MemPeakBytes, m.Spills, m.SpillBytes = p.ctx.acct.snapshot()
	if p.ctx.acct.enabled() {
		m.MemLimitBytes = p.ctx.acct.limit
	}
	return &Result{Columns: p.columns, Rows: rows, Metrics: m}, nil
}

// PlanStats returns the annotated operator tree of a query prepared with
// Analyze and executed with Run; nil otherwise. Stats reflect execution so
// far, so call it after Run completes.
func (p *Prepared) PlanStats() *PlanStats {
	if p.ctx.stats == nil {
		return nil
	}
	ps := buildPlanStats(p.plan, p.ctx.stats)
	ps.TypedCols = atomic.LoadInt64(&p.ctx.typedCols)
	ps.FallbackCols = atomic.LoadInt64(&p.ctx.fallbackCols)
	ps.DiskReads = atomic.LoadInt64(&p.ctx.diskReads)
	return ps
}

// QueryAnalyze compiles with per-operator metering, executes, and returns
// the result together with the annotated plan tree (EXPLAIN ANALYZE).
func (e *Engine) QueryAnalyze(sql string) (*Result, *PlanStats, error) {
	p, err := e.PrepareOpts(sql, PrepareOptions{Analyze: true})
	if err != nil {
		return nil, nil, err
	}
	res, err := p.Run()
	if err != nil {
		return nil, nil, err
	}
	return res, p.PlanStats(), nil
}

// Query compiles and executes SQL text in one call.
func (e *Engine) Query(sql string) (*Result, error) {
	return e.QueryCtx(context.Background(), sql)
}

// QueryCtx compiles and executes SQL text under a cancellation context.
func (e *Engine) QueryCtx(ctx context.Context, sql string) (*Result, error) {
	p, err := e.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return p.RunCtx(ctx)
}

// Explain returns a textual rendering of the optimized plan.
func (e *Engine) Explain(sql string) (string, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return "", err
	}
	pl := &planner{catalog: e.catalog}
	plan, err := pl.Build(q)
	if err != nil {
		return "", err
	}
	plan = optimize(plan)
	var b strings.Builder
	explainNode(&b, plan, 0)
	return b.String(), nil
}

func explainNode(b *strings.Builder, n Node, depth int) {
	op, detail := describeNode(n)
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(op)
	if detail != "" {
		b.WriteByte(' ')
		b.WriteString(detail)
	}
	b.WriteByte('\n')
	for _, c := range planChildren(n) {
		explainNode(b, c, depth+1)
	}
}
