package engine

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"jsonpark/internal/obsv"
	"jsonpark/internal/sqlparse"
	"jsonpark/internal/storage"
	"jsonpark/internal/variant"
	"jsonpark/internal/vector"
)

// Engine is one embedded database instance: a catalog of micro-partitioned
// tables plus the query pipeline (parse → plan → optimize → execute).
type Engine struct {
	catalog     *storage.Catalog
	batchSize   int
	parallelism int
	mergeParts  int
	memLimit    int64
	planCheck   bool
	dataDir     string
	typedOff    bool
	// planCacheSize is the requested cache bound (0 = default, < 0 = off);
	// planCache is the live cache, nil when disabled.
	planCacheSize int
	planCache     *planCache
	// resultCacheSize/resultCacheBytes bound the partition-versioned result
	// cache (off unless WithResultCacheSize enables it); resultCache is the
	// live cache, nil when disabled.
	resultCacheSize  int
	resultCacheBytes int64
	resultCache      *resultCache
	// views is the registry of incrementally maintained materialized views.
	views viewRegistry
	// governor, when set, is the server-wide admission gate and shared
	// memory pool every query's accountant draws from.
	governor *Governor
	// progress tracks every in-flight query for ProgressSnapshot.
	progress progressTable
	// batchHook, when set, runs after every root batch the executor drains.
	// Tests use it to hold a query mid-flight deterministically.
	batchHook func()
}

// Option configures an Engine.
type Option func(*Engine)

// WithBatchSize sets the number of rows per vector batch flowing between
// operators. Values < 1 fall back to vector.DefaultBatchSize.
func WithBatchSize(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.batchSize = n
		}
	}
}

// WithParallelism caps the worker pool of every parallel operator: morsel
// table scans and the pipeline-breaker phases (partitioned hash aggregation,
// hash-join build, sort-run sorting). 1 runs everything sequentially; values
// < 1 fall back to runtime.NumCPU(). Results are byte-identical at every
// setting — operators whose parallel execution could change output (float
// SUM/AVG folds, stateful SEQ expressions, unknown aggregates) stay on the
// sequential path.
func WithParallelism(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.parallelism = n
		}
	}
}

// WithMergePartitions sets the number of disjoint hash partitions the
// parallel aggregate's thread-local tables split into for the merge phase.
// Values < 1 (the default) follow the parallelism setting.
func WithMergePartitions(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.mergeParts = n
		}
	}
}

// WithMemLimit caps the bytes of retained state the pipeline breakers (hash
// aggregation, join build, sort) may hold per query, measured by a
// conservative deep-size accountant. Crossing the limit never fails the
// query: the charging operator spills to temp-file runs and the output stays
// byte-identical to the unlimited run. Values <= 0 (the default) disable
// accounting entirely.
func WithMemLimit(n int64) Option {
	return func(e *Engine) {
		if n > 0 {
			e.memLimit = n
		}
	}
}

// WithDataDir makes the catalog persistent: sealed partitions are written
// as micro-partition files under dir (one subdirectory per table), and
// tables already on disk are rediscovered lazily on first catalog access.
// Loading is two-phase — headers (schema + zone maps) at open, data
// sections on first scan — so pruning never touches cold data.
func WithDataDir(dir string) Option {
	return func(e *Engine) { e.dataDir = dir }
}

// WithTypedColumns toggles typed shredding at partition seal (on by
// default): uniform scalar leaf columns are stored as typed arrays
// (int64/float64/string/bool + null bitmap, dictionary-encoded strings)
// that the expression kernels read without variant materialization.
// Results are byte-identical either way; false keeps every column as
// variant values (the v1 layout).
func WithTypedColumns(on bool) Option {
	return func(e *Engine) { e.typedOff = !on }
}

// WithPlanCheck enables the planck debug pass: every prepared plan is
// cross-checked for unordered-exchange eligibility and declared
// selection-vector contracts, and every operator is wrapped to validate the
// batches it emits (see planck.go). Intended for tests and debugging — the
// per-batch validation costs a scan over each selection vector.
func WithPlanCheck(on bool) Option {
	return func(e *Engine) { e.planCheck = on }
}

// WithPlanCacheSize bounds the prepared-plan cache: n > 0 sets the entry
// cap, n == 0 (the default) keeps the default size, and n < 0 disables
// caching entirely — every Prepare recompiles from scratch.
func WithPlanCacheSize(n int) Option {
	return func(e *Engine) { e.planCacheSize = n }
}

// WithResultCacheSize enables the partition-versioned result cache with an
// entry cap: repeated queries over unchanged pinned partition sets return
// their rows without executing. n <= 0 (the default) keeps the cache off —
// results are served straight from storage every run. Invalidation is exact:
// any seal, DDL, or data-dir change on a table a cached result read evicts
// that result (and only that result).
func WithResultCacheSize(n int) Option {
	return func(e *Engine) { e.resultCacheSize = n }
}

// WithResultCacheBytes bounds the result cache's resident row bytes
// (default 64 MiB when the cache is enabled). Results larger than the budget
// are never cached; smaller ones evict LRU entries until they fit.
func WithResultCacheBytes(n int64) Option {
	return func(e *Engine) {
		if n > 0 {
			e.resultCacheBytes = n
		}
	}
}

// WithGovernor attaches a server-wide resource governor: every query's
// memory accountant draws from the governor's shared pool (pool pressure
// triggers spills exactly like WithMemLimit), and callers holding the
// governor can gate admission with Admit. One governor may be shared by
// several engines.
func WithGovernor(g *Governor) Option {
	return func(e *Engine) { e.governor = g }
}

// New returns an empty engine.
func New(opts ...Option) *Engine {
	e := &Engine{
		catalog:     storage.NewCatalog(),
		batchSize:   vector.DefaultBatchSize,
		parallelism: runtime.NumCPU(),
	}
	for _, o := range opts {
		o(e)
	}
	if e.typedOff {
		e.catalog.SetTypedShredding(false)
	}
	if e.dataDir != "" {
		e.catalog.SetDataDir(e.dataDir)
	}
	size := e.planCacheSize
	if size == 0 {
		size = defaultPlanCacheSize
	}
	if size > 0 {
		e.planCache = newPlanCache(size)
	}
	if e.resultCacheSize > 0 {
		bytes := e.resultCacheBytes
		if bytes <= 0 {
			bytes = defaultResultCacheBytes
		}
		e.resultCache = newResultCache(e.resultCacheSize, bytes)
		// Precise eviction: every seal/DDL/data-dir change drops exactly the
		// entries that read the mutated table.
		e.catalog.SetMutationHook(e.resultCache.invalidate)
	}
	return e
}

// BatchSize reports the configured rows-per-batch.
func (e *Engine) BatchSize() int { return e.batchSize }

// Parallelism reports the configured scan worker cap.
func (e *Engine) Parallelism() int { return e.parallelism }

// Catalog exposes the engine's table catalog for loading data.
func (e *Engine) Catalog() *storage.Catalog { return e.catalog }

// Governor returns the attached resource governor, nil when ungoverned.
func (e *Engine) Governor() *Governor { return e.governor }

// SetExecBatchHook installs a callback invoked after every root-level batch
// a query drains. Intended for tests that need to observe a query
// mid-flight (pause in the hook, read ProgressSnapshot, release); install
// it before issuing queries — the hook is captured at Prepare time.
func (e *Engine) SetExecBatchHook(fn func()) { e.batchHook = fn }

// Metrics reports per-query costs, mirroring the measurements of §V:
// compile time (parse + plan + optimize + operator preparation), execution
// time, bytes scanned (per touched column chunk), and partition pruning.
type Metrics struct {
	CompileTime      time.Duration
	ExecTime         time.Duration
	BytesScanned     int64
	PartitionsTotal  int
	PartitionsPruned int
	RowsReturned     int64
	// ParallelBreakers is the number of pipeline breakers (aggregates, join
	// builds, sorts) the physical plan runs with parallel phases.
	ParallelBreakers int
	// Memory governance (WithMemLimit): peak accounted bytes, the configured
	// limit, and how often / how much the breakers spilled to disk.
	MemPeakBytes  int64
	MemLimitBytes int64
	Spills        int64
	SpillBytes    int64
	// Storage v2: column reads served by typed kernels, typed columns that
	// fell back to variant materialization, and partition data sections
	// cold-loaded from disk during this query.
	TypedCols    int64
	FallbackCols int64
	DiskReads    int64
	// PlanCacheHit reports that compilation was served from the prepared-plan
	// cache — the query skipped parse/plan/optimize/physicalize and paid only
	// the per-run bind cost.
	PlanCacheHit bool
	// ResultCacheHit reports that the rows were served from the
	// partition-versioned result cache — the query skipped execution
	// entirely because an identical plan ran before over the same pinned
	// partition sets.
	ResultCacheHit bool
}

// Total returns compile + execution time (the paper's "total time").
func (m Metrics) Total() time.Duration { return m.CompileTime + m.ExecTime }

// Result is a completed query: column names, rows, and metrics.
type Result struct {
	Columns []string
	Rows    [][]variant.Value
	Metrics Metrics
}

// ErrPreparedConsumed reports a second Run/RunCtx on the same Prepared:
// per-run iterator state is single-use, so reuse would replay half-drained
// iterators. Re-Prepare instead — with the plan cache on, that costs only
// the bind phase.
var ErrPreparedConsumed = errors.New("prepared: already consumed")

// Prepared is a compiled query ready to execute once.
type Prepared struct {
	eng     *Engine
	plan    Node
	iter    batchIter
	ctx     *execContext
	columns []string
	metrics Metrics
	// sql is the original query text; with the result cache on, RunCtx keys
	// on (plan key, pinned partition versions) and the text guards against
	// fingerprint collisions.
	sql string
	// used enforces the single-use contract (see ErrPreparedConsumed).
	used atomic.Bool
}

// PrepareOptions customizes compilation: an optional parent span that
// receives one child per compile stage (sql.parse, plan.build,
// engine.optimize with one grandchild per rule, engine.prepare), Analyze
// to meter every operator (rows, wall time, scan bytes) during execution,
// and TraceID to label the query's live-progress entry so /debug/queries
// can correlate in-flight progress with the finished trace.
type PrepareOptions struct {
	Span    *obsv.Span
	Analyze bool
	TraceID string
}

// Prepare compiles SQL text into an executable plan, reporting compile time.
func (e *Engine) Prepare(sql string) (*Prepared, error) {
	return e.PrepareOpts(sql, PrepareOptions{})
}

// PrepareOpts is Prepare with tracing and per-operator analysis. It splits
// into two phases: compile (parse → plan → optimize → physicalize —
// everything derivable from SQL text plus engine knobs, served from the
// prepared-plan cache on repeats) and bind (fresh per-run iterator state
// over the shared template).
func (e *Engine) PrepareOpts(sql string, po PrepareOptions) (*Prepared, error) {
	start := time.Now()
	cp, hit, err := e.compiledFor(sql, po)
	if err != nil {
		return nil, err
	}
	p, err := e.bind(cp, po)
	if err != nil {
		return nil, err
	}
	p.sql = sql
	p.metrics.PlanCacheHit = hit
	p.metrics.CompileTime = time.Since(start)
	return p, nil
}

// compile runs every per-query-text stage and returns the immutable plan
// template. Nothing in the result may depend on per-run state: schemas are
// pre-materialized so concurrent binds never race on the lazy memos.
func (e *Engine) compile(sql string, po PrepareOptions) (*compiledPlan, error) {
	psp := po.Span.Child("sql.parse")
	q, err := sqlparse.Parse(sql)
	psp.End()
	if err != nil {
		return nil, err
	}
	bsp := po.Span.Child("plan.build")
	pl := &planner{catalog: e.catalog}
	plan, err := pl.Build(q)
	bsp.End()
	if err != nil {
		return nil, err
	}
	osp := po.Span.Child("engine.optimize")
	plan = optimizeTraced(plan, osp)
	osp.End()
	par := e.parallelism
	if par <= 0 {
		par = runtime.NumCPU()
	}
	mergeParts := e.mergeParts
	if mergeParts <= 0 {
		mergeParts = par
	}
	physp := po.Span.Child("engine.physicalize")
	var breakers int
	plan, breakers = physicalizeTraced(plan, par, mergeParts, physp)
	physp.End()
	var unordered map[Node]bool
	if par > 1 {
		unordered = collectUnorderedScans(plan)
	}
	if e.planCheck {
		u := unordered
		if u == nil {
			u = collectUnorderedScans(plan)
		}
		if err := checkPlan(plan, u); err != nil {
			return nil, err
		}
	}
	materializeSchemas(plan)
	return &compiledPlan{
		sql:            sql,
		plan:           plan,
		columns:        plan.Schema().Names,
		breakers:       breakers,
		par:            par,
		mergeParts:     mergeParts,
		unorderedScans: unordered,
	}, nil
}

// materializeSchemas forces every node's lazy schema memo while the plan is
// still private to one goroutine; cached templates are then read-only under
// concurrent binds.
func materializeSchemas(n Node) {
	n.Schema()
	for _, c := range planChildren(n) {
		materializeSchemas(c)
	}
}

// bind builds the cheap per-run state over a compiled template: execution
// context, memory accountant (wired to the governor pool when one is
// attached), progress entry, and the operator iterator tree. The template
// itself is only read — scans re-read their table's partition list here, so
// data appended after compile is visible on every run.
func (e *Engine) bind(cp *compiledPlan, po PrepareOptions) (*Prepared, error) {
	acct := newMemAccountant(e.memLimit)
	if e.governor.memLimited() {
		acct.pool = e.governor
	}
	ctx := &execContext{
		metrics:        &Metrics{ParallelBreakers: cp.breakers},
		batchSize:      e.batchSize,
		parallelism:    cp.par,
		mergeParts:     cp.mergeParts,
		acct:           acct,
		prog:           newQueryProgress(cp.plan, cp.sql, po.TraceID),
		batchHook:      e.batchHook,
		unorderedScans: cp.unorderedScans,
	}
	if ctx.batchSize <= 0 {
		ctx.batchSize = vector.DefaultBatchSize
	}
	if e.planCheck {
		ctx.planCheck = true
	}
	if po.Analyze {
		ctx.stats = make(map[Node]*OpStats)
	}
	prsp := po.Span.Child("engine.prepare")
	iter, err := prepare(cp.plan, ctx)
	prsp.End()
	if err != nil {
		return nil, err
	}
	return &Prepared{eng: e, plan: cp.plan, iter: iter, ctx: ctx, columns: cp.columns}, nil
}

// Run executes the prepared query to completion. A Prepared is single-use.
func (p *Prepared) Run() (*Result, error) {
	return p.RunCtx(context.Background())
}

// RunCtx executes the prepared query under ctx: a cancel or deadline aborts
// the query within one batch of work on any pipeline (every operator and
// every parallel worker polls it), the error satisfies
// errors.Is(err, context.Canceled) / context.DeadlineExceeded, and every
// worker goroutine has exited by the time RunCtx returns.
func (p *Prepared) RunCtx(ctx context.Context) (*Result, error) {
	if p.used.Swap(true) {
		return nil, ErrPreparedConsumed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Installed before the first NextBatch; workers inherit visibility through
	// their spawning goroutine.
	p.ctx.qctx = ctx
	// Backstop: whatever the operators still hold charged goes back to the
	// governor pool even on error paths.
	defer p.ctx.acct.drain()
	// Result-cache fast path: the bind phase pinned every scanned table's
	// partition-set version, so an exact (plan key, version vector) match
	// means the cached rows are byte-identical to what execution would
	// produce. The batch-hook instrumentation path always executes.
	var rc *resultCache
	var rcKey planKey
	var rcDeps []resultDep
	if p.eng != nil && p.eng.resultCache != nil && p.ctx.batchHook == nil {
		rc = p.eng.resultCache
		rcKey = p.eng.planKeyFor(p.sql)
		rcDeps = p.ctx.snapshotDeps()
		if cols, rows, ok := rc.lookup(rcKey, p.sql, rcDeps); ok {
			p.iter.Close()
			m := Metrics{
				CompileTime:    p.metrics.CompileTime,
				PlanCacheHit:   p.metrics.PlanCacheHit,
				ResultCacheHit: true,
				RowsReturned:   int64(len(rows)),
			}
			return &Result{Columns: cols, Rows: rows, Metrics: m}, nil
		}
	}
	if p.eng != nil && p.ctx.prog != nil {
		p.eng.progress.add(p.ctx.prog)
		defer p.eng.progress.remove(p.ctx.prog)
	}
	start := time.Now()
	rows, err := drainRowsHooked(p.iter, p.ctx.batchHook)
	p.iter.Close()
	if err != nil {
		return nil, err
	}
	m := *p.ctx.metrics
	m.TypedCols = atomic.LoadInt64(&p.ctx.typedCols)
	m.FallbackCols = atomic.LoadInt64(&p.ctx.fallbackCols)
	m.DiskReads = atomic.LoadInt64(&p.ctx.diskReads)
	m.CompileTime = p.metrics.CompileTime
	m.PlanCacheHit = p.metrics.PlanCacheHit
	m.ExecTime = time.Since(start)
	m.RowsReturned = int64(len(rows))
	m.MemPeakBytes, m.Spills, m.SpillBytes = p.ctx.acct.snapshot()
	if p.ctx.acct.enabled() {
		m.MemLimitBytes = p.ctx.acct.limit
	}
	if rc != nil {
		rc.insert(rcKey, p.sql, rcDeps, p.columns, rows)
	}
	return &Result{Columns: p.columns, Rows: rows, Metrics: m}, nil
}

// PlanStats returns the annotated operator tree of a query prepared with
// Analyze and executed with Run; nil otherwise. Stats reflect execution so
// far, so call it after Run completes.
func (p *Prepared) PlanStats() *PlanStats {
	if p.ctx.stats == nil {
		return nil
	}
	ps := buildPlanStats(p.plan, p.ctx.stats)
	ps.TypedCols = atomic.LoadInt64(&p.ctx.typedCols)
	ps.FallbackCols = atomic.LoadInt64(&p.ctx.fallbackCols)
	ps.DiskReads = atomic.LoadInt64(&p.ctx.diskReads)
	return ps
}

// QueryAnalyze compiles with per-operator metering, executes, and returns
// the result together with the annotated plan tree (EXPLAIN ANALYZE).
func (e *Engine) QueryAnalyze(sql string) (*Result, *PlanStats, error) {
	p, err := e.PrepareOpts(sql, PrepareOptions{Analyze: true})
	if err != nil {
		return nil, nil, err
	}
	res, err := p.Run()
	if err != nil {
		return nil, nil, err
	}
	return res, p.PlanStats(), nil
}

// Query compiles and executes SQL text in one call.
func (e *Engine) Query(sql string) (*Result, error) {
	return e.QueryCtx(context.Background(), sql)
}

// QueryCtx compiles and executes SQL text under a cancellation context.
func (e *Engine) QueryCtx(ctx context.Context, sql string) (*Result, error) {
	p, err := e.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return p.RunCtx(ctx)
}

// Explain returns a textual rendering of the optimized plan.
func (e *Engine) Explain(sql string) (string, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return "", err
	}
	pl := &planner{catalog: e.catalog}
	plan, err := pl.Build(q)
	if err != nil {
		return "", err
	}
	plan = optimize(plan)
	var b strings.Builder
	explainNode(&b, plan, 0)
	return b.String(), nil
}

func explainNode(b *strings.Builder, n Node, depth int) {
	op, detail := describeNode(n)
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(op)
	if detail != "" {
		b.WriteByte(' ')
		b.WriteString(detail)
	}
	b.WriteByte('\n')
	for _, c := range planChildren(n) {
		explainNode(b, c, depth+1)
	}
}
