package engine

// Incrementally maintained materialized views. A view is registered from SQL
// text whose plan is a mergeable aggregation — the same fragment the
// parallel aggregate admits (aggsMergeable accumulators, stateless grouping,
// a stateless Filter/Project/Flatten pipeline over one scan) — optionally
// under a stateless Project/Sort/Limit/Filter suffix. The view retains the
// aggregation's accumulator state between queries; a refresh scans only the
// storage partitions sealed since the last refresh (partitions are immutable
// and the partition list is append-only, so "new data" is exactly a suffix
// of the pinned partition list) and folds the delta state in with
// mergeAccumulators.
//
// Correctness mirrors the parallel aggregate's proof: delta partitions come
// strictly after every previously absorbed partition, so merging delta
// partials into the retained state in delta first-seen order reproduces the
// sequential row-order fold exactly — which is why SUM/AVG (non-associative
// float folds) are rejected along with everything else aggsMergeable
// excludes. First-seen group output order is preserved by stamping each new
// group with (absorbed-partition watermark << 32 | delta insertion seq):
// watermarks grow monotonically across refreshes, so appending new groups
// keeps the retained order sorted without re-sorting old groups.
//
// The suffix above the aggregate is replayed from scratch on every query —
// it is cheap (it runs over groups, not rows) and keeps ORDER BY / LIMIT /
// HAVING semantics byte-identical to the cold query.

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"jsonpark/internal/sqlparse"
	"jsonpark/internal/variant"
	"jsonpark/internal/vector"
)

// viewRowsNode replays a view's aggregate output rows so the stateless
// suffix executes through the ordinary operators.
type viewRowsNode struct {
	schema *Schema
	rows   [][]variant.Value
}

func (n *viewRowsNode) Schema() *Schema { return n.schema }

// matView is one registered materialized view: the decomposed plan plus the
// retained accumulator state. All fields past the immutable header are
// guarded by mu — refresh and emit run under it.
type matView struct {
	name    string
	sql     string
	eng     *Engine
	columns []string

	// Decomposed plan: suffix is the stateless operator chain above the
	// aggregate in root-first order; scan/stages are the aggregate's input
	// pipeline (execution order), shared with the parallel aggregate's
	// decomposition.
	suffix []Node
	agg    *AggregateNode
	scan   *ScanNode
	stages []Node

	mu sync.Mutex
	// groups/order are the retained merged accumulator state, order sorted by
	// stamp (sequential first-seen output order).
	groups map[string]*aggGroup
	order  []*aggGroup
	// emitAggs carries the aggregate descriptors for finalization; compiled
	// once at registration (expressions hold state, but descs are static).
	emitAggs []compiledAgg
	// partsDone is the absorbed-partition watermark into the table's
	// append-only partition list; version the table version last observed.
	partsDone int
	version   int64
	// Refresh accounting for introspection.
	refreshes  int64
	deltaParts int64
}

// viewRegistry holds an engine's materialized views by name.
type viewRegistry struct {
	mu    sync.Mutex
	views map[string]*matView
}

// ViewInfo describes one registered view for introspection (jsqd's /views).
type ViewInfo struct {
	Name    string   `json:"name"`
	SQL     string   `json:"sql"`
	Table   string   `json:"table"`
	Columns []string `json:"columns"`
	// Groups is the retained group count; PartsDone the absorbed-partition
	// watermark; Refreshes how many refreshes ran; DeltaParts the total
	// partitions scanned incrementally (vs. Refreshes*PartsDone for full
	// recomputation).
	Groups     int   `json:"groups"`
	PartsDone  int   `json:"parts_done"`
	Refreshes  int64 `json:"refreshes"`
	DeltaParts int64 `json:"delta_parts"`
}

// CreateView registers a materialized view over the SQL query. The query's
// optimized logical plan must be a mergeable aggregation (the
// parallelAggEligible fragment: COUNT/COUNT_IF/MIN/MAX/ANY_VALUE/
// BOOLAND_AGG/BOOLOR_AGG/ARRAY_AGG with stateless arguments and grouping,
// over a stateless Filter/Project/Flatten pipeline on one table) optionally
// under stateless Project/Sort/Limit/Filter operators. Anything else —
// SUM/AVG (float folds don't merge exactly), joins, unions, stateful
// expressions — is rejected so incremental results stay byte-identical to
// full recomputation.
func (e *Engine) CreateView(name, sql string) error {
	if name == "" {
		return fmt.Errorf("engine: view name must not be empty")
	}
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return err
	}
	pl := &planner{catalog: e.catalog}
	plan, err := pl.Build(q)
	if err != nil {
		return err
	}
	plan = optimize(plan)
	v, err := e.decomposeView(name, sql, plan)
	if err != nil {
		return err
	}
	e.views.mu.Lock()
	defer e.views.mu.Unlock()
	if _, exists := e.views.views[name]; exists {
		return fmt.Errorf("engine: view %q already exists", name)
	}
	if e.views.views == nil {
		e.views.views = make(map[string]*matView)
	}
	e.views.views[name] = v
	return nil
}

// decomposeView splits the optimized plan into suffix + aggregate + input
// pipeline and validates mergeability.
func (e *Engine) decomposeView(name, sql string, plan Node) (*matView, error) {
	var suffix []Node
	n := plan
walk:
	for {
		switch x := n.(type) {
		case *ProjectNode:
			if anyExprStateful(x.Exprs) {
				return nil, fmt.Errorf("engine: view %q: stateful projection above the aggregate", name)
			}
			suffix = append(suffix, x)
			n = x.Input
		case *FilterNode:
			if exprStateful(x.Cond) {
				return nil, fmt.Errorf("engine: view %q: stateful filter above the aggregate", name)
			}
			suffix = append(suffix, x)
			n = x.Input
		case *SortNode:
			for _, k := range x.Keys {
				if exprStateful(k.Expr) {
					return nil, fmt.Errorf("engine: view %q: stateful sort key above the aggregate", name)
				}
			}
			suffix = append(suffix, x)
			n = x.Input
		case *LimitNode:
			suffix = append(suffix, x)
			n = x.Input
		case *AggregateNode:
			break walk
		default:
			return nil, fmt.Errorf("engine: view %q: plan node %T is not incrementally maintainable (need a mergeable aggregation)", name, n)
		}
	}
	agg := n.(*AggregateNode)
	if !aggsMergeable(agg.Aggs) {
		return nil, fmt.Errorf("engine: view %q: aggregates are not mergeable (SUM/AVG and unknown aggregates cannot delta-merge exactly)", name)
	}
	if anyExprStateful(agg.GroupBy) {
		return nil, fmt.Errorf("engine: view %q: stateful grouping expression", name)
	}
	scan, stages, ok := pipelineStages(agg.Input)
	if !ok {
		return nil, fmt.Errorf("engine: view %q: aggregate input is not a stateless single-table pipeline", name)
	}
	// Compile once against a throwaway context: validates every expression at
	// registration time and yields the static aggregate descriptors emit needs
	// before the first refresh.
	vctx := &execContext{metrics: &Metrics{}, batchSize: e.batchSize, parallelism: 1, mergeParts: 1, acct: newMemAccountant(0)}
	if vctx.batchSize <= 0 {
		vctx.batchSize = 1024
	}
	ev, err := compileAggEval(vctx, agg)
	if err != nil {
		return nil, err
	}
	if scan.Filter != nil {
		if _, err := compileVec(vctx, scan.Schema(), scan.Filter); err != nil {
			return nil, err
		}
	}
	if _, err := compileStages(vctx, stages); err != nil {
		return nil, err
	}
	materializeSchemas(plan)
	return &matView{
		name: name, sql: sql, eng: e,
		columns: plan.Schema().Names,
		suffix:  suffix, agg: agg, scan: scan, stages: stages,
		groups: make(map[string]*aggGroup), emitAggs: ev.aggs,
	}, nil
}

// DropView removes a view, reporting whether it existed.
func (e *Engine) DropView(name string) bool {
	e.views.mu.Lock()
	defer e.views.mu.Unlock()
	_, ok := e.views.views[name]
	delete(e.views.views, name)
	return ok
}

// ViewNames lists the registered views in name order.
func (e *Engine) ViewNames() []string {
	e.views.mu.Lock()
	defer e.views.mu.Unlock()
	names := make([]string, 0, len(e.views.views))
	for n := range e.views.views {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ViewInfos describes every registered view in name order.
func (e *Engine) ViewInfos() []ViewInfo {
	e.views.mu.Lock()
	vs := make([]*matView, 0, len(e.views.views))
	for _, v := range e.views.views {
		vs = append(vs, v)
	}
	e.views.mu.Unlock()
	sort.Slice(vs, func(i, j int) bool { return vs[i].name < vs[j].name })
	infos := make([]ViewInfo, len(vs))
	for i, v := range vs {
		v.mu.Lock()
		infos[i] = ViewInfo{
			Name: v.name, SQL: v.sql, Table: v.scan.Table.Name,
			Columns: append([]string(nil), v.columns...),
			Groups:  len(v.order), PartsDone: v.partsDone,
			Refreshes: v.refreshes, DeltaParts: v.deltaParts,
		}
		v.mu.Unlock()
	}
	return infos
}

// QueryView refreshes the named view incrementally and returns its rows.
// Metrics report the refresh cost: partitions scanned counts only the delta.
func (e *Engine) QueryView(qctx context.Context, name string) (*Result, error) {
	e.views.mu.Lock()
	v := e.views.views[name]
	e.views.mu.Unlock()
	if v == nil {
		return nil, fmt.Errorf("engine: unknown view %q", name)
	}
	return v.query(qctx)
}

func (v *matView) query(qctx context.Context) (*Result, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	ctx := &execContext{
		metrics:     &Metrics{},
		batchSize:   v.eng.batchSize,
		parallelism: 1, mergeParts: 1,
		acct: newMemAccountant(0),
		qctx: qctx,
	}
	if ctx.batchSize <= 0 {
		ctx.batchSize = 1024
	}
	if err := v.refreshLocked(ctx); err != nil {
		return nil, err
	}
	rows, err := v.emitLocked(ctx)
	if err != nil {
		return nil, err
	}
	m := *ctx.metrics
	m.RowsReturned = int64(len(rows))
	return &Result{Columns: append([]string(nil), v.columns...), Rows: rows, Metrics: m}, nil
}

// refreshLocked absorbs the partitions sealed since the last refresh into
// the retained state. The snapshot seals buffered rows first, so a refresh
// observes everything appended before it, exactly like a query.
func (v *matView) refreshLocked(ctx *execContext) error {
	snap := v.scan.Table.Snapshot()
	delta := snap.Parts[v.partsDone:]
	if len(delta) == 0 {
		v.version = snap.Version
		return nil
	}
	eval, err := compileAggEval(ctx, v.agg)
	if err != nil {
		return err
	}
	var filter vecFn
	if v.scan.Filter != nil {
		if filter, err = compileVec(ctx, v.scan.Schema(), v.scan.Filter); err != nil {
			return err
		}
	}
	cs, err := compileStages(ctx, v.stages)
	if err != nil {
		return err
	}
	colIdx := make([]int, len(v.scan.Columns))
	for i, c := range v.scan.Columns {
		idx := v.scan.Table.ColumnIndex(c)
		if idx < 0 {
			return fmt.Errorf("engine: table %q has no column %q", v.scan.Table.Name, c)
		}
		colIdx[i] = idx
	}

	// Fold the delta into a fresh table: the delta partitions are scanned in
	// ascending partition order, so the fresh table's insertion order is the
	// delta's first-seen order.
	dt := newAggTable(eval.aggs, 1)
	for _, part := range delta {
		if err := ctx.cancelled(); err != nil {
			return err
		}
		if partitionPruned(v.scan, part) {
			ctx.addScanCounts(nil, 0, 1, 0)
			continue
		}
		batches, bytes, err := scanPartition(ctx, part, colIdx, filter, ctx.batchSize)
		ctx.addScanCounts(nil, 1, 0, bytes)
		if err != nil {
			return err
		}
		it := batchIter(&staticBatches{batches: batches})
		for si := range cs {
			s := &cs[si]
			switch {
			case s.filter != nil:
				it = &filterIter{in: it, cond: s.cond}
			case s.project != nil:
				it = &projectIter{in: it, fns: s.fns, alias: s.alias}
			case s.flatten != nil:
				it = &flattenIter{in: it, input: s.input, outer: s.flatten.Outer, width: s.width,
					bld: vector.NewBuilder(s.width+2, ctx.batchSize)}
			}
		}
		for {
			if err := ctx.cancelled(); err != nil {
				it.Close()
				return err
			}
			b, err := it.NextBatch()
			if err != nil {
				it.Close()
				return err
			}
			if b == nil {
				break
			}
			if err := eval.absorb(dt, b); err != nil {
				it.Close()
				return err
			}
		}
		it.Close()
	}

	// Merge the delta state in: every delta row comes after every previously
	// absorbed row (partition order = input row order), so folding delta
	// partials into the retained accumulators reproduces the sequential fold.
	// New groups are stamped with the pre-refresh watermark as the major key —
	// strictly larger than every earlier stamp — so appending them in delta
	// first-seen order keeps v.order sorted by stamp.
	base := int64(v.partsDone)
	for _, g := range dt.order {
		dst, ok := v.groups[g.key]
		if !ok {
			g.stamp = base<<32 | int64(g.seq)
			v.groups[g.key] = g
			v.order = append(v.order, g)
			continue
		}
		for a := range dst.accs {
			if err := mergeAccumulators(dst.accs[a], g.accs[a]); err != nil {
				return err
			}
		}
	}
	v.emitAggs = eval.aggs
	v.partsDone = len(snap.Parts)
	v.version = snap.Version
	v.refreshes++
	v.deltaParts += int64(len(delta))
	return nil
}

// emitLocked finalizes the retained groups and replays the suffix.
func (v *matView) emitLocked(ctx *execContext) ([][]variant.Value, error) {
	groups := v.order
	// Global aggregation over an empty input yields one row, applied at emit
	// so the synthetic group never pollutes the retained state.
	if len(v.agg.GroupBy) == 0 && len(groups) == 0 {
		t := newAggTable(v.emitAggs, 1)
		t.insert(nil, nil)
		groups = t.order
	}
	rows := emitGroupRows(groups, v.emitAggs)
	if len(v.suffix) == 0 {
		return rows, nil
	}
	// Rebuild the suffix over the materialized aggregate rows with shallow
	// clones: the shared expression trees are stateless (checked at
	// registration) and schema memos recompute per clone.
	node := Node(&viewRowsNode{schema: v.agg.Schema(), rows: rows})
	for i := len(v.suffix) - 1; i >= 0; i-- {
		switch s := v.suffix[i].(type) {
		case *ProjectNode:
			node = &ProjectNode{Input: node, Exprs: s.Exprs, Names: s.Names}
		case *FilterNode:
			node = &FilterNode{Input: node, Cond: s.Cond}
		case *SortNode:
			node = &SortNode{Input: node, Keys: s.Keys}
		case *LimitNode:
			node = &LimitNode{Input: node, N: s.N}
		}
	}
	it, err := prepare(node, ctx)
	if err != nil {
		return nil, err
	}
	out, err := drainRows(it)
	it.Close()
	return out, err
}

var _ Node = (*viewRowsNode)(nil)
