package engine

import (
	"fmt"
	"sync"
	"testing"

	"jsonpark/internal/testutil"
	"jsonpark/internal/variant"
)

// TestMVCCAppendReadStress races concurrent appenders against concurrent
// readers under -race (named *Stress* so `make stress` picks it up). Each
// appender writes rows (appender-id, 0), (appender-id, 1), ... in order and
// seals periodically; each reader runs a grouped aggregate with both caches
// enabled. Because every reader pins a partition snapshot at bind time and a
// row only becomes visible once its partition seals, a reader must observe a
// *prefix* of each appender's sequence: for every group,
// COUNT(*) == MAX(seq)+1. A torn snapshot (rows visible out of order, or a
// partition list mutating mid-scan) breaks the invariant.
func TestMVCCAppendReadStress(t *testing.T) {
	testutil.CheckLeaks(t)
	const (
		appenders    = 4
		readers      = 4
		rowsPerApp   = 400
		sealEvery    = 23
		readsPerSpin = 30
	)
	e := New(WithParallelism(2), WithResultCacheSize(32))
	tab, err := e.Catalog().CreateTable("t", []string{"a", "s"})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errc := make(chan error, appenders+readers)
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for s := 0; s < rowsPerApp; s++ {
				row := []variant.Value{variant.Int(int64(id)), variant.Int(int64(s))}
				if err := tab.Append(row); err != nil {
					errc <- err
					return
				}
				if (s+1)%sealEvery == 0 {
					tab.Seal()
				}
			}
			tab.Seal()
		}(a)
	}
	const q = `SELECT "a", COUNT(*) AS n, MAX("s") AS mx FROM "t" GROUP BY "a" ORDER BY "a"`
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < readsPerSpin; i++ {
				res, err := e.Query(q)
				if err != nil {
					errc <- err
					return
				}
				for _, row := range res.Rows {
					a, n, mx := row[0].AsInt(), row[1].AsInt(), row[2].AsInt()
					if n != mx+1 {
						errc <- fmt.Errorf("appender %d: count %d != max-seq+1 %d (torn snapshot)", a, n, mx+1)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Quiesced final state: every appender's full sequence is visible.
	res, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != appenders {
		t.Fatalf("final groups = %d, want %d", len(res.Rows), appenders)
	}
	for _, row := range res.Rows {
		if n := row[1].AsInt(); n != rowsPerApp {
			t.Fatalf("appender %d final count = %d, want %d", row[0].AsInt(), n, rowsPerApp)
		}
	}
}

// TestMVCCSnapshotStressWithViews mixes incremental view refreshes into the
// same append race: a view refresh pins its own snapshot and must absorb
// whole sealed partitions exactly once, so its count/max invariant matches
// the readers'.
func TestMVCCSnapshotStressWithViews(t *testing.T) {
	testutil.CheckLeaks(t)
	const (
		appenders  = 3
		rowsPerApp = 300
		refreshes  = 25
	)
	e := New(WithResultCacheSize(16))
	tab, err := e.Catalog().CreateTable("t", []string{"a", "s"})
	if err != nil {
		t.Fatal(err)
	}
	const q = `SELECT "a", COUNT(*) AS n, MAX("s") AS mx FROM "t" GROUP BY "a" ORDER BY "a"`
	if err := e.CreateView("byapp", q); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errc := make(chan error, appenders+1)
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for s := 0; s < rowsPerApp; s++ {
				row := []variant.Value{variant.Int(int64(id)), variant.Int(int64(s))}
				if err := tab.Append(row); err != nil {
					errc <- err
					return
				}
				if (s+1)%17 == 0 {
					tab.Seal()
				}
			}
			tab.Seal()
		}(a)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < refreshes; i++ {
			res, err := e.QueryView(t.Context(), "byapp")
			if err != nil {
				errc <- err
				return
			}
			for _, row := range res.Rows {
				a, n, mx := row[0].AsInt(), row[1].AsInt(), row[2].AsInt()
				if n != mx+1 {
					errc <- fmt.Errorf("view: appender %d count %d != max-seq+1 %d", a, n, mx+1)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	got, err := e.QueryView(t.Context(), "byapp")
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if renderRows(got) != renderRows(want) {
		t.Fatalf("quiesced view diverges from cold query:\n got %s\nwant %s",
			renderRows(got), renderRows(want))
	}
}
