package engine

import (
	"fmt"
	"testing"

	"jsonpark/internal/bench"
	"jsonpark/internal/variant"
)

// benchParallelisms sweeps the worker pool shared by the morsel scan and the
// pipeline breakers (partitioned aggregation, join build, sort runs).
var benchParallelisms = []int{1, 2, 4, 8}

// benchParEngine builds an engine whose "bpar" fact table seals a partition
// every ~16KiB, so the scan pool and the partitioned pipeline breakers have
// dozens of morsels to distribute, plus a small "bdim" dimension table whose
// keys cover every "grp" value for join probes.
func benchParEngine(b *testing.B, parallelism, rows int) *Engine {
	b.Helper()
	e := New(WithBatchSize(1024), WithParallelism(parallelism))
	tab, err := e.Catalog().CreateTable("bpar", []string{"id", "grp", "val", "items"})
	if err != nil {
		b.Fatal(err)
	}
	tab.SetTargetPartitionBytes(16 << 10)
	for i := 0; i < rows; i++ {
		doc := fmt.Sprintf(`{"id": %d, "grp": %d, "val": %d, "items": [%d, %d, %d, %d]}`,
			i, i%401, i%97, i, i+1, i+2, i+3)
		if err := tab.AppendObject(variant.MustParseJSON(doc)); err != nil {
			b.Fatal(err)
		}
	}
	dim, err := e.Catalog().CreateTable("bdim", []string{"k", "name"})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 401; i++ {
		doc := fmt.Sprintf(`{"k": %d, "name": "dim-%d"}`, i, i)
		if err := dim.AppendObject(variant.MustParseJSON(doc)); err != nil {
			b.Fatal(err)
		}
	}
	return e
}

func runParallelBench(b *testing.B, name, sql string, rows int) {
	for _, par := range benchParallelisms {
		par := par
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			e := benchParEngine(b, par, rows)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Query(sql); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			benchRecorder.Add(bench.Record{
				Experiment: name,
				Query:      sql,
				System:     fmt.Sprintf("par=%d", par),
				Scale:      float64(rows),
				MeanMicros: b.Elapsed().Microseconds() / int64(b.N),
				Runs:       b.N,
			})
		})
	}
}

// BenchmarkGroupAgg measures grouped aggregation over a multi-partition scan:
// the shape where the partitioned two-phase aggregate replaces the single
// pipeline-breaker thread.
func BenchmarkGroupAgg(b *testing.B) {
	runParallelBench(b, "group-agg",
		`SELECT "grp", COUNT(*), MIN("val"), MAX("val") FROM "bpar" GROUP BY "grp"`,
		40000)
}

// BenchmarkReaggParallel measures the paper's flatten → re-aggregate nesting
// pattern (ARRAY_AGG + ANY_VALUE grouped by row ID) with the aggregation
// running above a parallel flatten pipeline.
func BenchmarkReaggParallel(b *testing.B) {
	runParallelBench(b, "reagg-parallel",
		`SELECT "id", ARRAY_AGG("v"), ANY_VALUE("grp") FROM (SELECT "id", "grp", "f".VALUE AS "v" FROM (SELECT * FROM "bpar"), LATERAL FLATTEN(INPUT => "items") AS "f") GROUP BY "id"`,
		8000)
}

// BenchmarkJoinBuild measures hash-join build cost: the probe side is a tiny
// dimension table, so nearly all the time is building the hash table over the
// fact rows.
func BenchmarkJoinBuild(b *testing.B) {
	runParallelBench(b, "join-build",
		`SELECT COUNT(*) FROM "bdim" INNER JOIN "bpar" ON "k" = "grp"`,
		40000)
}

// BenchmarkParSort measures a full-table sort (per-worker runs + multiway
// merge when parallel).
func BenchmarkParSort(b *testing.B) {
	runParallelBench(b, "par-sort",
		`SELECT "id", "val" FROM "bpar" ORDER BY "val" DESC, "id"`,
		40000)
}
