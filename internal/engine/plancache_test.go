package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"jsonpark/internal/variant"
)

// cacheEngine builds a small two-partition table so cached plans exercise
// scans, filters, aggregation and sort.
func cacheEngine(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	e := New(opts...)
	tab, err := e.Catalog().CreateTable("c", []string{"k", "v"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := tab.Append([]variant.Value{
			variant.Int(int64(i % 7)),
			variant.Int(int64(i)),
		}); err != nil {
			t.Fatal(err)
		}
		if i == 99 {
			tab.Seal()
		}
	}
	tab.Seal()
	return e
}

func TestPlanCacheHitMissAndStats(t *testing.T) {
	e := cacheEngine(t)
	const q = `SELECT "k", COUNT(*) AS n FROM "c" GROUP BY "k" ORDER BY "k"`

	r1, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Metrics.PlanCacheHit {
		t.Fatal("first run reported a plan-cache hit")
	}
	r2, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Metrics.PlanCacheHit {
		t.Fatal("second run did not report a plan-cache hit")
	}
	if renderRows(r1) != renderRows(r2) {
		t.Fatal("cached run diverges from the compile run")
	}
	hits, misses, evictions, entries := e.PlanCacheStats()
	if hits != 1 || misses != 1 || evictions != 0 || entries != 1 {
		t.Fatalf("stats = %d hits, %d misses, %d evictions, %d entries; want 1/1/0/1",
			hits, misses, evictions, entries)
	}

	// Prepare alone (no run) also hits: the cache serves compilation, not
	// execution.
	if _, err := e.PrepareOpts(q, PrepareOptions{}); err != nil {
		t.Fatal(err)
	}
	hits, _, _, _ = e.PlanCacheStats()
	if hits != 2 {
		t.Fatalf("hits = %d after third prepare, want 2", hits)
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	e := cacheEngine(t, WithPlanCacheSize(-1))
	const q = `SELECT COUNT(*) AS n FROM "c"`
	for i := 0; i < 3; i++ {
		res, err := e.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Metrics.PlanCacheHit {
			t.Fatalf("run %d hit a cache that should be disabled", i+1)
		}
	}
	if hits, misses, _, entries := e.PlanCacheStats(); hits != 0 || misses != 0 || entries != 0 {
		t.Fatalf("disabled cache reported activity: %d hits, %d misses, %d entries", hits, misses, entries)
	}
}

// TestPlanCacheCatalogInvalidation pins the version fence: DDL and the
// 1 → 2 partition transition (which flips parallel-aggregation
// eligibility) must drop cached plans, while plain scans and further
// partition growth must not.
func TestPlanCacheCatalogInvalidation(t *testing.T) {
	e := cacheEngine(t)
	const q = `SELECT COUNT(*) AS n FROM "c"`
	if _, err := e.Query(q); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(q); err != nil {
		t.Fatal(err)
	}
	if hits, _, _, _ := e.PlanCacheStats(); hits != 1 {
		t.Fatalf("hits = %d before DDL, want 1", hits)
	}

	// DDL bumps the catalog version and clears the cache.
	if _, err := e.Catalog().CreateTable("other", []string{"x"}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.PlanCacheHit {
		t.Fatal("plan survived a CreateTable")
	}
	e.Catalog().DropTable("other")
	res, err = e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.PlanCacheHit {
		t.Fatal("plan survived a DropTable")
	}

	// Appended rows must be visible through a cached plan without any
	// invalidation: scans re-read Partitions() at bind time.
	tab, err := e.Catalog().Table("c")
	if err != nil {
		t.Fatal(err)
	}
	before, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Append([]variant.Value{variant.Int(1), variant.Int(999)}); err != nil {
		t.Fatal(err)
	}
	after, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !after.Metrics.PlanCacheHit {
		t.Fatal("append invalidated the cached plan")
	}
	if renderRows(before) == renderRows(after) {
		t.Fatal("cached plan did not observe the appended row")
	}
}

// TestPlanCacheSealTransition pins the single invalidating seal: a table
// crossing from one sealed partition to two changes plan shape, so exactly
// that seal must evict cached plans.
func TestPlanCacheSealTransition(t *testing.T) {
	e := New()
	tab, err := e.Catalog().CreateTable("s", []string{"v"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Append([]variant.Value{variant.Int(1)}); err != nil {
		t.Fatal(err)
	}
	const q = `SELECT COUNT(*) AS n FROM "s"`
	// First query seals partition #1 while executing; the cached plan must
	// survive that seal or a fresh server would never hit on its second
	// query.
	if _, err := e.Query(q); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Metrics.PlanCacheHit {
		t.Fatal("first-scan seal of a single-partition table evicted the plan")
	}
	// Sealing partition #2 flips parallel-agg eligibility: must invalidate.
	if err := tab.Append([]variant.Value{variant.Int(2)}); err != nil {
		t.Fatal(err)
	}
	tab.Seal()
	res, err = e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.PlanCacheHit {
		t.Fatal("plan survived the 1 → 2 partition transition")
	}
	// Partition #3 does not change eligibility: must keep the plan.
	if err := tab.Append([]variant.Value{variant.Int(3)}); err != nil {
		t.Fatal(err)
	}
	tab.Seal()
	res, err = e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Metrics.PlanCacheHit {
		t.Fatal("plan did not survive the 2 → 3 partition transition")
	}
}

func TestPlanCacheBoundedWithEvictions(t *testing.T) {
	e := cacheEngine(t, WithPlanCacheSize(4))
	for i := 0; i < 20; i++ {
		q := fmt.Sprintf(`SELECT COUNT(*) AS n FROM "c" WHERE "v" > %d`, i)
		if _, err := e.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses, evictions, entries := e.PlanCacheStats()
	if entries > 4 {
		t.Fatalf("cache holds %d entries, cap is 4", entries)
	}
	if evictions != misses-entries {
		t.Fatalf("evictions = %d, want misses-entries = %d", evictions, misses-entries)
	}
	if hits != 0 {
		t.Fatalf("hits = %d for 20 distinct queries, want 0", hits)
	}
	// LRU: the most recent distinct query must still be resident.
	res, err := e.Query(`SELECT COUNT(*) AS n FROM "c" WHERE "v" > 19`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Metrics.PlanCacheHit {
		t.Fatal("most recently inserted plan was evicted")
	}
}

func TestPreparedSingleUse(t *testing.T) {
	e := cacheEngine(t)
	p, err := e.Prepare(`SELECT COUNT(*) AS n FROM "c"`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); !errors.Is(err, ErrPreparedConsumed) {
		t.Fatalf("second Run error = %v, want ErrPreparedConsumed", err)
	}
}

// TestPlanCacheStress runs a hot/cold query mix from many goroutines under
// -race (make stress): every result must match the uncached reference
// byte-for-byte, and the cache must stay within its bound throughout.
func TestPlanCacheStress(t *testing.T) {
	cached := cacheEngine(t, WithPlanCacheSize(8), WithParallelism(2))
	uncached := cacheEngine(t, WithPlanCacheSize(-1), WithParallelism(2))
	queries := []string{
		`SELECT "k", COUNT(*) AS n, MIN("v") AS mn FROM "c" GROUP BY "k" ORDER BY "k"`,
		`SELECT "v" FROM "c" WHERE "k" = 3 ORDER BY "v" DESC`,
		`SELECT COUNT(*) AS n FROM "c" WHERE "v" > 50`,
		`SELECT "k", MAX("v") AS mx FROM "c" WHERE "v" < 150 GROUP BY "k" ORDER BY "k"`,
	}
	want := make([]string, len(queries))
	for i, q := range queries {
		res, err := uncached.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = renderRows(res)
	}
	const workers = 8
	const iters = 30
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Hot mix plus per-worker cold queries that churn the LRU
				// past its bound while hot entries keep hitting.
				var q string
				var ref string
				if i%3 == 0 {
					q = fmt.Sprintf(`SELECT COUNT(*) AS n FROM "c" WHERE "v" >= %d`, w*100+i)
					ref = ""
				} else {
					q = queries[(w+i)%len(queries)]
					ref = want[(w+i)%len(queries)]
				}
				res, err := cached.Query(q)
				if err != nil {
					errc <- fmt.Errorf("worker %d: %s: %w", w, q, err)
					return
				}
				if ref != "" && renderRows(res) != ref {
					errc <- fmt.Errorf("worker %d: %s: rows diverge from uncached reference", w, q)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if _, _, _, entries := cached.PlanCacheStats(); entries > 8 {
		t.Fatalf("cache grew to %d entries under stress, cap is 8", entries)
	}
	if hits, _, _, _ := cached.PlanCacheStats(); hits == 0 {
		t.Fatal("stress mix never hit the cache")
	}
}
