package engine

import (
	"jsonpark/internal/sqlast"
)

// The physical pass. After the logical optimizer runs, physicalize walks
// the plan and wraps each pipeline breaker that can execute its blocking
// phase in parallel without changing a single output byte:
//
//   - AggregateNode → ParallelAggNode when the input is a straight
//     stateless Filter/Project/Flatten chain over a multi-partition scan
//     and every aggregate merges exactly (see aggsMergeable). Workers claim
//     storage partitions morsel-style, aggregate each into a thread-local
//     table, and the locals merge in parallel across disjoint hash
//     partitions — in storage-partition order, which equals input row
//     order, so first-seen group order, ANY_VALUE, ARRAY_AGG concatenation
//     and DISTINCT first-occurrence dedup all reproduce the sequential
//     result exactly.
//
//   - JoinNode → ParallelJoinNode when it is an equi-join with stateless
//     build keys: the build side partitions across workers into disjoint
//     per-bucket hash tables probed lock-free.
//
//   - SortNode → ParallelSortNode always: sort keys evaluate sequentially
//     during materialization (so even stateful keys see input order); only
//     the comparison-sorting of precomputed keys fans out into per-worker
//     runs joined by a stability-preserving multiway merge.
//
// Everything order-sensitive stays on the sequential operators: SUM and AVG
// fold floats in input order (addition is not associative), stateful (SEQ)
// arguments observe evaluation order, and unknown aggregates must keep
// their lazy error behavior. planck certifies the contracts of the new
// nodes in planck.go.

// ParallelAggNode executes its embedded aggregate as a two-phase
// partitioned hash aggregation over the pipeline below it.
type ParallelAggNode struct {
	*AggregateNode
	// Pipelines caps the phase-1 workers (each runs the scan→…→pre-aggregate
	// pipeline over whole storage partitions).
	Pipelines int
	// MergeParts is the number of disjoint hash partitions the thread-local
	// tables split into for the parallel merge.
	MergeParts int
}

// ParallelJoinNode executes its embedded join with a partitioned parallel
// build phase.
type ParallelJoinNode struct {
	*JoinNode
	// BuildWorkers caps the key-encoding workers; the build side also
	// partitions into BuildWorkers disjoint hash tables.
	BuildWorkers int
}

// ParallelSortNode executes its embedded sort as per-worker sorted runs
// joined by a stable multiway merge.
type ParallelSortNode struct {
	*SortNode
	SortWorkers int
}

// physicalize rewrites the optimized logical plan into its physical form
// for the given parallelism. With parallelism <= 1 the plan is returned
// untouched, so sequential engines never see the parallel nodes.
func physicalize(n Node, par, mergeParts int) Node {
	if par <= 1 {
		return n
	}
	if mergeParts <= 0 {
		mergeParts = par
	}
	switch x := n.(type) {
	case *FilterNode:
		x.Input = physicalize(x.Input, par, mergeParts)
	case *ProjectNode:
		x.Input = physicalize(x.Input, par, mergeParts)
	case *FlattenNode:
		x.Input = physicalize(x.Input, par, mergeParts)
	case *LimitNode:
		x.Input = physicalize(x.Input, par, mergeParts)
	case *UnionNode:
		x.Left = physicalize(x.Left, par, mergeParts)
		x.Right = physicalize(x.Right, par, mergeParts)
	case *AggregateNode:
		x.Input = physicalize(x.Input, par, mergeParts)
		if parallelAggEligible(x) {
			return &ParallelAggNode{AggregateNode: x, Pipelines: par, MergeParts: mergeParts}
		}
	case *JoinNode:
		x.Left = physicalize(x.Left, par, mergeParts)
		x.Right = physicalize(x.Right, par, mergeParts)
		if len(x.RightKeys) > 0 && !anyExprStateful(x.RightKeys) {
			return &ParallelJoinNode{JoinNode: x, BuildWorkers: par}
		}
	case *SortNode:
		x.Input = physicalize(x.Input, par, mergeParts)
		return &ParallelSortNode{SortNode: x, SortWorkers: par}
	}
	return n
}

// parallelAggEligible reports whether the aggregate can run as a two-phase
// partitioned aggregation with byte-identical output: mergeable-exact
// accumulators, stateless grouping, and a pipelineable input over more than
// one storage partition.
func parallelAggEligible(x *AggregateNode) bool {
	if !aggsMergeable(x.Aggs) {
		return false
	}
	if anyExprStateful(x.GroupBy) {
		return false
	}
	scan, _, ok := pipelineStages(x.Input)
	return ok && len(scan.Table.Partitions()) > 1
}

// aggsMergeable reports whether every aggregate's partial states combine
// exactly when partials are folded in input (partition index) order.
// SUM and AVG are excluded — float addition is not associative, so merging
// per-partition partial sums changes low-order bits versus the sequential
// row-order fold. Unknown aggregates must keep their lazy add-time error.
func aggsMergeable(specs []AggSpec) bool {
	for _, s := range specs {
		switch s.Name {
		case "COUNT", "COUNT_IF", "MIN", "MAX", "ANY_VALUE",
			"BOOLAND_AGG", "BOOLOR_AGG", "ARRAY_AGG":
		default:
			return false
		}
		if exprStateful(s.Arg) {
			return false
		}
		for _, o := range s.OrderBy {
			if exprStateful(o.Expr) {
				return false
			}
		}
	}
	return true
}

// pipelineStages decomposes an aggregate input into the operator chain the
// phase-1 workers replay per storage partition: a straight
// Filter/Project/Flatten chain (stateless expressions only, so replaying a
// partition in isolation yields exactly the rows the sequential pipeline
// would derive from it) over a scan with a stateless pushed-down filter.
// Returns the scan, the intermediate stages in execution order (scan side
// first), and whether the subtree qualifies.
func pipelineStages(n Node) (*ScanNode, []Node, bool) {
	var stages []Node
	for {
		switch x := n.(type) {
		case *ScanNode:
			if exprStateful(x.Filter) {
				return nil, nil, false
			}
			// Reverse into execution order: the walk collected root-side first.
			for i, j := 0, len(stages)-1; i < j; i, j = i+1, j-1 {
				stages[i], stages[j] = stages[j], stages[i]
			}
			return x, stages, true
		case *FilterNode:
			if exprStateful(x.Cond) {
				return nil, nil, false
			}
			stages = append(stages, x)
			n = x.Input
		case *ProjectNode:
			if anyExprStateful(x.Exprs) {
				return nil, nil, false
			}
			stages = append(stages, x)
			n = x.Input
		case *FlattenNode:
			if exprStateful(x.Expr) {
				return nil, nil, false
			}
			stages = append(stages, x)
			n = x.Input
		default:
			return nil, nil, false
		}
	}
}

func anyExprStateful(exprs []sqlast.Expr) bool {
	for _, e := range exprs {
		if exprStateful(e) {
			return true
		}
	}
	return false
}
