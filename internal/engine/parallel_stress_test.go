package engine

import (
	"sync"
	"testing"

	"jsonpark/internal/testutil"
)

// TestParallelAggEarlyCloseStress hammers the parallel aggregate's
// lifecycle the way scan_stress_test.go hammers the morsel pool: LIMIT
// cuts consumption short after the blocking phase, prepared queries are
// abandoned before or mid-drain, and concurrent consumers share one
// engine. Both phases join their workers before run() returns, so the
// invariant under -race is simply that no goroutine outlives its query and
// no abandoned Prepared leaks a worker.
func TestParallelAggEarlyCloseStress(t *testing.T) {
	testutil.CheckLeaks(t)
	e := multiPartEngine(t, WithBatchSize(4), WithParallelism(8))
	queries := []string{
		`SELECT grp, COUNT(*), MIN(val) FROM events GROUP BY grp LIMIT 2`,
		`SELECT "grp", ARRAY_AGG("id") FROM "events" GROUP BY "grp" LIMIT 1`,
		`SELECT "id", ARRAY_AGG("f".VALUE) FROM (SELECT * FROM "events"), LATERAL FLATTEN(INPUT => "items") AS "f" GROUP BY "id" LIMIT 3`,
		`SELECT id, grp, val FROM events ORDER BY val DESC, id LIMIT 5`,
		`SELECT COUNT(*) FROM (SELECT "grp" AS "g" FROM "events") INNER JOIN (SELECT * FROM "events") ON "g" = "grp" LIMIT 1`,
	}
	for i := 0; i < 50; i++ {
		sql := queries[i%len(queries)]
		res, err := e.Query(sql)
		if err != nil {
			t.Fatalf("iteration %d %s: %v", i, sql, err)
		}
		if len(res.Rows) == 0 {
			t.Fatalf("iteration %d %s: no rows", i, sql)
		}
	}

	// Abandoned prepared queries: closed before the first batch and after a
	// partial drain (the blocking phase runs inside the first NextBatch).
	for i := 0; i < 50; i++ {
		p, err := e.Prepare(queries[i%len(queries)])
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if _, err := p.iter.NextBatch(); err != nil {
				t.Fatal(err)
			}
		}
		p.iter.Close()
		p.iter.Close() // Close must be idempotent
	}

	// Concurrent consumers sharing the engine.
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				if _, err := e.Query(queries[(g+i)%len(queries)]); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
