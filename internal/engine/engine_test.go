package engine

import (
	"strings"
	"testing"

	"jsonpark/internal/variant"
)

// testEngine builds an engine with a small nested "adl"-like table and a
// relational "orders" table.
func testEngine(t *testing.T) *Engine {
	t.Helper()
	e := New()
	adl, err := e.Catalog().CreateTable("adl", []string{"EVENT", "MET", "Muon"})
	if err != nil {
		t.Fatal(err)
	}
	rows := []string{
		`{"EVENT": 1, "MET": {"pt": 10.5}, "Muon": [{"pt": 30.0, "charge": 1}, {"pt": 5.0, "charge": -1}]}`,
		`{"EVENT": 2, "MET": {"pt": 20.0}, "Muon": []}`,
		`{"EVENT": 3, "MET": {"pt": 35.5}, "Muon": [{"pt": 50.0, "charge": -1}]}`,
		`{"EVENT": 4, "MET": {"pt": 40.0}, "Muon": [{"pt": 8.0, "charge": 1}, {"pt": 9.0, "charge": 1}, {"pt": 60.0, "charge": -1}]}`,
	}
	for _, r := range rows {
		if err := adl.AppendObject(variant.MustParseJSON(r)); err != nil {
			t.Fatal(err)
		}
	}
	orders, err := e.Catalog().CreateTable("orders", []string{"o_id", "o_custkey", "o_totalprice", "o_clerk"})
	if err != nil {
		t.Fatal(err)
	}
	data := [][]variant.Value{
		{variant.Int(1), variant.Int(10), variant.Float(95000), variant.String("alice")},
		{variant.Int(2), variant.Int(10), variant.Float(50000), variant.String("bob")},
		{variant.Int(3), variant.Int(20), variant.Float(110000), variant.String("alice")},
		{variant.Int(4), variant.Int(30), variant.Float(115000), variant.String("carol")},
	}
	for _, r := range data {
		if err := orders.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	cust, err := e.Catalog().CreateTable("customer", []string{"c_custkey", "c_name"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][]variant.Value{
		{variant.Int(10), variant.String("ten")},
		{variant.Int(20), variant.String("twenty")},
	} {
		if err := cust.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func mustQuery(t *testing.T, e *Engine, sql string) *Result {
	t.Helper()
	r, err := e.Query(sql)
	if err != nil {
		t.Fatalf("Query(%s): %v", sql, err)
	}
	return r
}

func TestSelectStar(t *testing.T) {
	e := testEngine(t)
	r := mustQuery(t, e, `SELECT * FROM "adl"`)
	if len(r.Rows) != 4 || len(r.Columns) != 3 {
		t.Fatalf("rows=%d cols=%v", len(r.Rows), r.Columns)
	}
}

func TestWhereAndProjection(t *testing.T) {
	e := testEngine(t)
	r := mustQuery(t, e, `SELECT "EVENT" FROM "adl" WHERE GET("MET", 'pt') > 20`)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	got := map[int64]bool{}
	for _, row := range r.Rows {
		got[row[0].AsInt()] = true
	}
	if !got[3] || !got[4] {
		t.Errorf("events = %v", got)
	}
}

func TestFig2CountDistinct(t *testing.T) {
	e := testEngine(t)
	r := mustQuery(t, e, `SELECT COUNT(DISTINCT "o_clerk") FROM (
		SELECT * FROM (SELECT * FROM "orders")
		WHERE (("o_totalprice" >= 90000 :: INT) AND ("o_totalprice" <= 120000 :: INT)))`)
	if len(r.Rows) != 1 || r.Rows[0][0].AsInt() != 2 {
		t.Fatalf("count distinct = %v", r.Rows)
	}
}

func TestFlattenInner(t *testing.T) {
	e := testEngine(t)
	r := mustQuery(t, e, `SELECT "EVENT", "f".VALUE AS "m", "f".INDEX AS "i" FROM (SELECT * FROM "adl"), LATERAL FLATTEN(INPUT => "Muon") AS "f"`)
	// 2 + 0 + 1 + 3 = 6 muons; event 2 disappears (inner flatten).
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row[0].AsInt() == 2 {
			t.Error("event 2 should be eliminated by inner flatten")
		}
	}
}

func TestFlattenOuterKeepsEmpty(t *testing.T) {
	e := testEngine(t)
	r := mustQuery(t, e, `SELECT "EVENT", "f".VALUE AS "m" FROM (SELECT * FROM "adl"), LATERAL FLATTEN(INPUT => "Muon", OUTER => TRUE) AS "f"`)
	if len(r.Rows) != 7 { // 6 muons + 1 null row for event 2
		t.Fatalf("rows = %d", len(r.Rows))
	}
	foundNull := false
	for _, row := range r.Rows {
		if row[0].AsInt() == 2 {
			if !row[1].IsNull() {
				t.Error("outer flatten VALUE should be NULL for empty array")
			}
			foundNull = true
		}
	}
	if !foundNull {
		t.Error("event 2 missing from outer flatten")
	}
}

func TestNestedQueryReaggregationPattern(t *testing.T) {
	// The full §IV-B pattern: rowid + flatten + filter + group-by rowid with
	// ARRAY_AGG and ANY_VALUE.
	e := testEngine(t)
	sql := `SELECT ANY_VALUE("EVENT") AS "ev", ARRAY_AGG(CASE WHEN "f".VALUE IS NOT NULL AND GET("f".VALUE, 'pt') > 10 THEN "f".VALUE ELSE NULL END) AS "filtered"
		FROM (SELECT *, SEQ8() AS "rid" FROM "adl"), LATERAL FLATTEN(INPUT => "Muon", OUTER => TRUE) AS "f"
		GROUP BY "rid" ORDER BY "ev" ASC`
	r := mustQuery(t, e, sql)
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (no object elimination)", len(r.Rows))
	}
	wantLens := map[int64]int{1: 1, 2: 0, 3: 1, 4: 1}
	for _, row := range r.Rows {
		ev := row[0].AsInt()
		if row[1].Kind() != variant.KindArray {
			t.Fatalf("filtered not an array: %v", row[1])
		}
		if got := row[1].Len(); got != wantLens[ev] {
			t.Errorf("event %d filtered len = %d, want %d", ev, got, wantLens[ev])
		}
	}
}

func TestGroupByWithAggregates(t *testing.T) {
	e := testEngine(t)
	r := mustQuery(t, e, `SELECT "o_custkey", COUNT(*) AS "n", SUM("o_totalprice") AS "s", AVG("o_totalprice") AS "a", MIN("o_totalprice") AS "lo", MAX("o_totalprice") AS "hi"
		FROM "orders" GROUP BY "o_custkey" ORDER BY "o_custkey" ASC`)
	if len(r.Rows) != 3 {
		t.Fatalf("groups = %d", len(r.Rows))
	}
	first := r.Rows[0]
	if first[0].AsInt() != 10 || first[1].AsInt() != 2 || first[2].AsFloat() != 145000 {
		t.Errorf("group 10 = %v", first)
	}
	if first[3].AsFloat() != 72500 || first[4].AsFloat() != 50000 || first[5].AsFloat() != 95000 {
		t.Errorf("avg/min/max = %v", first)
	}
}

func TestGlobalAggregateOverEmptyInput(t *testing.T) {
	e := testEngine(t)
	r := mustQuery(t, e, `SELECT COUNT(*) AS "n", SUM("o_totalprice") AS "s", ARRAY_AGG("o_clerk") AS "arr" FROM "orders" WHERE "o_totalprice" < 0`)
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Rows[0][0].AsInt() != 0 {
		t.Errorf("count = %v", r.Rows[0][0])
	}
	if !r.Rows[0][1].IsNull() {
		t.Errorf("sum = %v, want NULL", r.Rows[0][1])
	}
	if r.Rows[0][2].Kind() != variant.KindArray || r.Rows[0][2].Len() != 0 {
		t.Errorf("array_agg = %v, want []", r.Rows[0][2])
	}
}

func TestArrayAggOrdered(t *testing.T) {
	e := testEngine(t)
	r := mustQuery(t, e, `SELECT ARRAY_AGG("o_id") WITHIN GROUP (ORDER BY "o_totalprice" DESC) AS "ids" FROM "orders"`)
	arr := r.Rows[0][0]
	want := []int64{4, 3, 1, 2}
	for i, w := range want {
		if arr.Index(i).AsInt() != w {
			t.Fatalf("ids = %v, want %v", arr, want)
		}
	}
}

func TestHashJoinFromCrossPlusEquality(t *testing.T) {
	e := testEngine(t)
	sql := `SELECT "o_id", "c_name" FROM (SELECT * FROM "orders") CROSS JOIN (SELECT * FROM "customer") WHERE "o_custkey" = "c_custkey" ORDER BY "o_id" ASC`
	r := mustQuery(t, e, sql)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Rows[0][1].AsString() != "ten" || r.Rows[2][1].AsString() != "twenty" {
		t.Errorf("join result = %v", r.Rows)
	}
	// The optimizer must have converted it into a hash equi-join.
	plan, err := e.Explain(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "INNER Join keys=1") {
		t.Errorf("expected hash join in plan:\n%s", plan)
	}
}

func TestLeftOuterJoin(t *testing.T) {
	e := testEngine(t)
	sql := `SELECT "o_id", "c_name" FROM (SELECT * FROM "orders") LEFT OUTER JOIN (SELECT * FROM "customer") ON "o_custkey" = "c_custkey" ORDER BY "o_id" ASC`
	r := mustQuery(t, e, sql)
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if !r.Rows[3][1].IsNull() { // custkey 30 has no customer
		t.Errorf("unmatched right side should be NULL: %v", r.Rows[3])
	}
}

func TestUnionAll(t *testing.T) {
	e := testEngine(t)
	r := mustQuery(t, e, `(SELECT "o_id" FROM "orders") UNION ALL (SELECT "c_custkey" FROM "customer")`)
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
}

func TestOrderByLimitAndCase(t *testing.T) {
	e := testEngine(t)
	r := mustQuery(t, e, `SELECT "o_id", CASE WHEN "o_totalprice" > 100000 THEN 'big' ELSE 'small' END AS "sz" FROM "orders" ORDER BY "o_totalprice" DESC LIMIT 2`)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Rows[0][0].AsInt() != 4 || r.Rows[0][1].AsString() != "big" {
		t.Errorf("row0 = %v", r.Rows[0])
	}
}

func TestScalarFunctions(t *testing.T) {
	e := testEngine(t)
	r := mustQuery(t, e, `SELECT ABS(-2.5), SQRT(16.0), FLOOR(3.7), GREATEST(1, 5, 3), COALESCE(NULL, 7), IFF(TRUE, 'a', 'b'), ARRAY_SIZE(ARRAY_CONSTRUCT(1,2,3)), POWER(2.0, 10.0) FROM "orders" LIMIT 1`)
	row := r.Rows[0]
	checks := []struct {
		i    int
		want variant.Value
	}{
		{0, variant.Float(2.5)}, {1, variant.Float(4)}, {2, variant.Int(3)},
		{3, variant.Int(5)}, {4, variant.Int(7)}, {5, variant.String("a")},
		{6, variant.Int(3)}, {7, variant.Float(1024)},
	}
	for _, c := range checks {
		if !variant.Equal(row[c.i], c.want) {
			t.Errorf("col %d = %v, want %v", c.i, row[c.i], c.want)
		}
	}
}

func TestObjectConstructFolding(t *testing.T) {
	// GET(OBJECT_CONSTRUCT('a', col), 'a') should fold to col so that column
	// pruning still applies — the struct-field pushdown of the optimizer.
	e := testEngine(t)
	sql := `SELECT GET(OBJECT_CONSTRUCT('ev', "EVENT", 'met', "MET"), 'ev') AS "x" FROM "adl"`
	plan, err := e.Explain(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "cols=[EVENT]") {
		t.Errorf("expected pruned scan of only EVENT:\n%s", plan)
	}
	r := mustQuery(t, e, sql)
	if len(r.Rows) != 4 || r.Rows[0][0].Kind() != variant.KindInt {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestProjectionPruningReducesBytesScanned(t *testing.T) {
	e := testEngine(t)
	all := mustQuery(t, e, `SELECT * FROM "adl"`)
	one := mustQuery(t, e, `SELECT "EVENT" FROM "adl"`)
	if one.Metrics.BytesScanned >= all.Metrics.BytesScanned {
		t.Errorf("pruned scan bytes %d should be < full scan %d",
			one.Metrics.BytesScanned, all.Metrics.BytesScanned)
	}
}

func TestPartitionPruningViaZoneMaps(t *testing.T) {
	e := New()
	tab, err := e.Catalog().CreateTable("t", []string{"v"})
	if err != nil {
		t.Fatal(err)
	}
	tab.SetTargetPartitionBytes(64)
	for i := 0; i < 100; i++ {
		if err := tab.Append([]variant.Value{variant.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	r := mustQuery(t, e, `SELECT "v" FROM "t" WHERE "v" >= 95`)
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Metrics.PartitionsPruned == 0 {
		t.Error("expected zone-map pruning to skip partitions")
	}
	if r.Metrics.PartitionsPruned+5 > r.Metrics.PartitionsTotal {
		// sanity: pruned < total
		t.Logf("pruned=%d total=%d", r.Metrics.PartitionsPruned, r.Metrics.PartitionsTotal)
	}
}

func TestPredicatePushdownThroughProject(t *testing.T) {
	e := testEngine(t)
	sql := `SELECT * FROM (SELECT "EVENT" AS "ev", GET("MET", 'pt') AS "met" FROM "adl") WHERE "met" > 20`
	plan, err := e.Explain(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "Scan adl") || !strings.Contains(plan, "filter=") {
		t.Errorf("expected filter pushed into scan:\n%s", plan)
	}
	r := mustQuery(t, e, sql)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
}

func TestSeq8RowIDsUnique(t *testing.T) {
	e := testEngine(t)
	r := mustQuery(t, e, `SELECT SEQ8() AS "rid", "EVENT" FROM "adl"`)
	seen := map[int64]bool{}
	for _, row := range r.Rows {
		id := row[0].AsInt()
		if seen[id] {
			t.Fatalf("duplicate row id %d", id)
		}
		seen[id] = true
	}
}

func TestThreeValuedLogic(t *testing.T) {
	e := testEngine(t)
	// NULL <> 'x' is NULL, so no rows pass; NOT NULL is NULL too.
	r := mustQuery(t, e, `SELECT "o_id" FROM "orders" WHERE NULL <> 'x'`)
	if len(r.Rows) != 0 {
		t.Errorf("NULL comparison passed rows: %v", r.Rows)
	}
	r = mustQuery(t, e, `SELECT "o_id" FROM "orders" WHERE "o_totalprice" > 100000 OR NULL`)
	if len(r.Rows) != 2 {
		t.Errorf("TRUE OR NULL rows = %d, want 2", len(r.Rows))
	}
}

func TestErrorsSurface(t *testing.T) {
	e := testEngine(t)
	cases := []string{
		`SELECT * FROM "missing"`,
		`SELECT "nope" FROM "orders"`,
		`SELECT UNKNOWN_FUNC("o_id") FROM "orders"`,
		`SELECT "o_id", SUM("o_totalprice") FROM "orders"`, // non-grouped column
		`SELECT`,
	}
	for _, sql := range cases {
		if _, err := e.Query(sql); err == nil {
			t.Errorf("Query(%q) succeeded, want error", sql)
		}
	}
}

func TestHavingClause(t *testing.T) {
	e := testEngine(t)
	r := mustQuery(t, e, `SELECT "o_custkey", COUNT(*) AS "n" FROM "orders" GROUP BY "o_custkey" HAVING COUNT(*) > 1`)
	if len(r.Rows) != 1 || r.Rows[0][0].AsInt() != 10 {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestCompileAndExecTimesPopulated(t *testing.T) {
	e := testEngine(t)
	r := mustQuery(t, e, `SELECT COUNT(*) FROM "orders"`)
	if r.Metrics.CompileTime <= 0 {
		t.Error("compile time not measured")
	}
	if r.Metrics.RowsReturned != 1 {
		t.Errorf("rows returned = %d", r.Metrics.RowsReturned)
	}
}

func TestBoolAndAgg(t *testing.T) {
	e := testEngine(t)
	r := mustQuery(t, e, `SELECT "o_custkey", BOOLAND_AGG("o_totalprice" > 60000) AS "all_big" FROM "orders" GROUP BY "o_custkey" ORDER BY "o_custkey" ASC`)
	if r.Rows[0][1].AsBool() { // custkey 10 has a 50000 order
		t.Error("custkey 10 should not be all_big")
	}
	if !r.Rows[1][1].AsBool() {
		t.Error("custkey 20 should be all_big")
	}
}

func TestGroupByExpression(t *testing.T) {
	e := testEngine(t)
	r := mustQuery(t, e, `SELECT FLOOR("o_totalprice" / 100000.0) AS "bucket", COUNT(*) AS "n" FROM "orders" GROUP BY FLOOR("o_totalprice" / 100000.0) ORDER BY "bucket" ASC`)
	if len(r.Rows) != 2 {
		t.Fatalf("buckets = %v", r.Rows)
	}
	if r.Rows[0][1].AsInt() != 2 || r.Rows[1][1].AsInt() != 2 {
		t.Errorf("counts = %v", r.Rows)
	}
}
