package engine

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"jsonpark/internal/variant"
)

// viewLoad appends rows [lo,hi) into table "g" (k, v), sealing every 31 rows
// so appends span multiple micro-partitions.
func viewLoad(t *testing.T, e *Engine, lo, hi int) {
	t.Helper()
	tab, err := e.Catalog().Table("g")
	if err != nil {
		tab, err = e.Catalog().CreateTable("g", []string{"k", "v"})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := lo; i < hi; i++ {
		row := []variant.Value{variant.Int(int64(i % 7)), variant.Int(int64(i))}
		if err := tab.Append(row); err != nil {
			t.Fatal(err)
		}
		if (i+1)%31 == 0 {
			tab.Seal()
		}
	}
}

// TestViewIncrementalParity is the views half of the acceptance grid: across
// batch sizes and typed storage, an incrementally refreshed view must render
// byte-identically to cold recomputation of the same query, after every
// interleaved append — while scanning only the delta partitions.
func TestViewIncrementalParity(t *testing.T) {
	const q = `SELECT "k", COUNT(*) AS n, MIN("v") AS mn, MAX("v") AS mx, ARRAY_AGG("v") AS vs FROM "g" GROUP BY "k" ORDER BY "k"`
	checkpoints := []int{60, 130, 131, 240}
	for _, batch := range []int{1, 1024} {
		for _, typed := range []bool{true, false} {
			t.Run(fmt.Sprintf("bs%d-typed%v", batch, typed), func(t *testing.T) {
				e := New(WithBatchSize(batch), WithTypedColumns(typed))
				viewLoad(t, e, 0, checkpoints[0])
				if err := e.CreateView("byk", q); err != nil {
					t.Fatal(err)
				}
				prev := checkpoints[0]
				for _, hi := range checkpoints {
					viewLoad(t, e, prev, hi)
					prev = hi
					got, err := e.QueryView(context.Background(), "byk")
					if err != nil {
						t.Fatal(err)
					}
					// Cold oracle: a fresh engine over exactly the same rows.
					cold := New(WithBatchSize(batch), WithTypedColumns(typed))
					viewLoad(t, cold, 0, hi)
					want, err := cold.Query(q)
					if err != nil {
						t.Fatal(err)
					}
					if renderRows(got) != renderRows(want) {
						t.Fatalf("at %d rows: view diverges from cold recompute:\n got %s\nwant %s",
							hi, clipDiff(renderRows(got)), clipDiff(renderRows(want)))
					}
				}
				// Incrementality: the summed delta partitions across refreshes
				// must equal the final partition count — each partition scanned
				// exactly once, never re-scanned.
				info := e.ViewInfos()[0]
				if info.DeltaParts != int64(info.PartsDone) {
					t.Fatalf("delta partitions %d != absorbed watermark %d (partitions re-scanned?)",
						info.DeltaParts, info.PartsDone)
				}
				if info.Refreshes != int64(len(checkpoints)) {
					t.Fatalf("refreshes = %d, want %d", info.Refreshes, len(checkpoints))
				}
			})
		}
	}
}

// TestViewSuffixReplay covers the stateless operator chain above the
// aggregate: a filter + sort + limit suffix must replay byte-identically on
// every query, including after appends shuffle the group contents.
func TestViewSuffixReplay(t *testing.T) {
	const q = `SELECT "k", COUNT(*) AS n FROM "g" WHERE "v" >= 10 GROUP BY "k" ORDER BY n DESC, "k" LIMIT 3`
	e := New()
	viewLoad(t, e, 0, 80)
	if err := e.CreateView("top", q); err != nil {
		t.Fatal(err)
	}
	for _, hi := range []int{80, 150} {
		viewLoad(t, e, 0, 0) // no-op keeps the helper shape
		if hi > 80 {
			viewLoad(t, e, 80, hi)
		}
		got, err := e.QueryView(context.Background(), "top")
		if err != nil {
			t.Fatal(err)
		}
		cold := New()
		viewLoad(t, cold, 0, hi)
		want, err := cold.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if renderRows(got) != renderRows(want) {
			t.Fatalf("at %d rows: suffix replay diverges:\n got %s\nwant %s",
				hi, clipDiff(renderRows(got)), clipDiff(renderRows(want)))
		}
		if len(got.Rows) != 3 {
			t.Fatalf("LIMIT 3 returned %d rows", len(got.Rows))
		}
	}
}

// TestViewEmptyGlobalAggregate pins the one-row rule: a global aggregate
// view over an empty (and then emptied-of-matches) input emits exactly one
// row, same as the cold query.
func TestViewEmptyGlobalAggregate(t *testing.T) {
	e := New()
	if _, err := e.Catalog().CreateTable("g", []string{"k", "v"}); err != nil {
		t.Fatal(err)
	}
	const q = `SELECT COUNT(*) AS n, MAX("v") AS mx FROM "g"`
	if err := e.CreateView("tot", q); err != nil {
		t.Fatal(err)
	}
	got, err := e.QueryView(context.Background(), "tot")
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if renderRows(got) != renderRows(want) {
		t.Fatalf("empty global aggregate:\n got %s\nwant %s", renderRows(got), renderRows(want))
	}
	if len(got.Rows) != 1 || got.Rows[0][0].AsInt() != 0 {
		t.Fatalf("want one zero-count row, got %v", got.Rows)
	}
	// The synthetic emit row must not pollute retained state: appends after
	// the empty emit still merge correctly.
	viewLoad(t, e, 0, 25)
	got2, err := e.QueryView(context.Background(), "tot")
	if err != nil {
		t.Fatal(err)
	}
	if got2.Rows[0][0].AsInt() != 25 || got2.Rows[0][1].AsInt() != 24 {
		t.Fatalf("post-append global aggregate = %v, want [25 24]", got2.Rows[0])
	}
}

// TestViewRejections: everything outside the mergeable fragment must be
// refused at registration, with an error naming the reason.
func TestViewRejections(t *testing.T) {
	e := New()
	viewLoad(t, e, 0, 10)
	if _, err := e.Catalog().CreateTable("h", []string{"k", "w"}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name, sql, wantErr string
	}{
		{"sum", `SELECT "k", SUM("v") AS s FROM "g" GROUP BY "k"`, "mergeable"},
		{"avg", `SELECT AVG("v") AS a FROM "g"`, "mergeable"},
		{"stateful-group", `SELECT SEQ8() AS r, COUNT(*) AS n FROM "g" GROUP BY SEQ8()`, "stateful"},
		{"stateful-suffix", `SELECT SEQ8() AS r, "n" FROM (SELECT COUNT(*) AS n FROM "g")`, "stateful"},
		{"join", `SELECT COUNT(*) AS n FROM (SELECT * FROM "g") LEFT OUTER JOIN (SELECT * FROM "h") ON "k" = "w"`, "single-table"},
		{"plain-scan", `SELECT "v" FROM "g"`, "maintainable"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := e.CreateView("v_"+c.name, c.sql)
			if err == nil {
				t.Fatalf("view over %s was accepted", c.sql)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
	if names := e.ViewNames(); len(names) != 0 {
		t.Fatalf("rejected views leaked into the registry: %v", names)
	}
}

// TestViewRegistry covers the registration lifecycle: duplicate names,
// unknown lookups, introspection, and drop.
func TestViewRegistry(t *testing.T) {
	e := New()
	viewLoad(t, e, 0, 20)
	const q = `SELECT "k", COUNT(*) AS n FROM "g" GROUP BY "k" ORDER BY "k"`
	if err := e.CreateView("a", q); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateView("a", q); err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Fatalf("duplicate registration: err = %v", err)
	}
	if _, err := e.QueryView(context.Background(), "nope"); err == nil {
		t.Fatal("querying an unknown view succeeded")
	}
	if _, err := e.QueryView(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	infos := e.ViewInfos()
	if len(infos) != 1 || infos[0].Name != "a" || infos[0].Table != "g" || infos[0].Groups != 7 {
		t.Fatalf("ViewInfos = %+v", infos)
	}
	if !e.DropView("a") || e.DropView("a") {
		t.Fatal("DropView existence reporting is wrong")
	}
	if names := e.ViewNames(); len(names) != 0 {
		t.Fatalf("views after drop: %v", names)
	}
}

// TestViewQueryCancellation: a cancelled context aborts the refresh.
func TestViewQueryCancellation(t *testing.T) {
	e := New()
	viewLoad(t, e, 0, 200)
	const q = `SELECT "k", COUNT(*) AS n FROM "g" GROUP BY "k"`
	if err := e.CreateView("c", q); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.QueryView(ctx, "c"); err == nil {
		t.Fatal("cancelled refresh succeeded")
	}
	// The failed refresh must not have corrupted the watermark: a live
	// context still produces the right answer.
	got, err := e.QueryView(context.Background(), "c")
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Query(q + ` ORDER BY "k"`)
	if err != nil {
		t.Fatal(err)
	}
	// The view has no ORDER BY; compare as sets via group count and total.
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("post-cancel view has %d groups, want %d", len(got.Rows), len(want.Rows))
	}
	var sum, wantSum int64
	for _, r := range got.Rows {
		sum += r[1].AsInt()
	}
	for _, r := range want.Rows {
		wantSum += r[1].AsInt()
	}
	if sum != wantSum {
		t.Fatalf("post-cancel view total = %d, want %d", sum, wantSum)
	}
}
