package engine

import (
	"strings"
	"testing"

	"jsonpark/internal/sqlast"
	"jsonpark/internal/sqlparse"
	"jsonpark/internal/variant"
	"jsonpark/internal/vector"
)

// buildPlan compiles and optimizes one query against the engine's catalog.
func buildPlan(t *testing.T, e *Engine, sql string) Node {
	t.Helper()
	q, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	pl := &planner{catalog: e.Catalog()}
	plan, err := pl.Build(q)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return optimize(plan)
}

// TestPlanCheckAgreesWithMarkOrdered is planck's core property: the
// bottom-up eligibility derivation must agree with the top-down marking on
// every plan shape the planner produces.
func TestPlanCheckAgreesWithMarkOrdered(t *testing.T) {
	e := multiPartEngine(t)
	queries := append([]string{}, parityQueries...)
	queries = append(queries,
		`SELECT COUNT(*) FROM events`,
		`SELECT MIN(val), MAX(val) FROM events WHERE grp < 4`,
		`SELECT COUNT(*) FROM events WHERE SEQ8() < 10`,
		`SELECT SUM(val) FROM events`,
		`SELECT COUNT(*) FROM (SELECT id FROM events ORDER BY val)`,
		`SELECT COUNT(*) FROM (SELECT id FROM events LIMIT 5)`,
	)
	for _, sql := range queries {
		plan := buildPlan(t, e, sql)
		if err := checkPlan(plan, collectUnorderedScans(plan)); err != nil {
			t.Errorf("%s: %v", sql, err)
		}
	}
}

// TestPlanCheckRejectsWrongMarking feeds checkPlan markings that disagree
// with eligibility in each direction.
func TestPlanCheckRejectsWrongMarking(t *testing.T) {
	e := multiPartEngine(t)

	// Root order is observed: marking this scan unordered is a
	// wrong-results bug and must be caught.
	ordered := buildPlan(t, e, `SELECT id FROM events`)
	var scan *ScanNode
	var find func(Node)
	find = func(n Node) {
		if s, ok := n.(*ScanNode); ok {
			scan = s
			return
		}
		for _, c := range planChildren(n) {
			find(c)
		}
	}
	find(ordered)
	if scan == nil {
		t.Fatal("no scan in plan")
	}
	err := checkPlan(ordered, map[Node]bool{scan: true})
	if err == nil || !strings.Contains(err.Error(), "order-sensitive consumer") {
		t.Errorf("over-marking: got %v, want order-sensitive consumer error", err)
	}

	// A global COUNT erases order: an empty marking means the ordered merge
	// is forced needlessly, which planck also reports.
	erased := buildPlan(t, e, `SELECT COUNT(*) FROM events`)
	err = checkPlan(erased, map[Node]bool{})
	if err == nil || !strings.Contains(err.Error(), "not marked") {
		t.Errorf("under-marking: got %v, want not-marked error", err)
	}
}

// TestUnorderedEligiblePathRules exercises the path classification directly
// on hand-built plans.
func TestUnorderedEligiblePathRules(t *testing.T) {
	e := multiPartEngine(t)
	tab, err := e.Catalog().Table("events")
	if err != nil {
		t.Fatal(err)
	}
	scan := func() *ScanNode { return &ScanNode{Table: tab, Columns: []string{"val"}} }
	global := func(in Node) *AggregateNode {
		return &AggregateNode{Input: in, Aggs: []AggSpec{{Name: "COUNT", Star: true}}, AggNames: []string{"c"}}
	}
	seq := &sqlast.FuncCall{Name: "SEQ8"}

	cases := []struct {
		name     string
		plan     func() (Node, *ScanNode)
		eligible bool
	}{
		{"agg over scan", func() (Node, *ScanNode) {
			s := scan()
			return global(s), s
		}, true},
		{"agg over sort", func() (Node, *ScanNode) {
			s := scan()
			return global(&SortNode{Input: s, Keys: []sqlast.OrderItem{{Expr: seq}}}), s
		}, true},
		{"agg over stateful filter", func() (Node, *ScanNode) {
			s := scan()
			return global(&FilterNode{Input: s, Cond: seq}), s
		}, false},
		{"agg over limit", func() (Node, *ScanNode) {
			s := scan()
			return global(&LimitNode{Input: s, N: 5}), s
		}, false},
		{"grouped agg", func() (Node, *ScanNode) {
			s := scan()
			return &AggregateNode{
				Input: s, GroupBy: []sqlast.Expr{&sqlast.ColRef{Name: "val"}},
				GroupNames: []string{"val"},
				Aggs:       []AggSpec{{Name: "COUNT", Star: true}}, AggNames: []string{"c"},
			}, s
		}, false},
		{"no aggregate", func() (Node, *ScanNode) {
			s := scan()
			return &FilterNode{Input: s, Cond: &sqlast.ColRef{Name: "val"}}, s
		}, false},
	}
	for _, c := range cases {
		root, s := c.plan()
		want := map[Node]bool{}
		if c.eligible {
			want[s] = true
		}
		if err := checkPlan(root, want); err != nil {
			t.Errorf("%s: eligible=%v rejected: %v", c.name, c.eligible, err)
		}
		wrong := map[Node]bool{}
		if !c.eligible {
			wrong[s] = true
		}
		if err := checkPlan(root, wrong); err == nil {
			t.Errorf("%s: inverted marking accepted", c.name)
		}
	}
}

// fakeNode is a plan node planck has no contract for.
type fakeNode struct{}

func (fakeNode) Schema() *Schema { return NewSchema(nil) }

func TestCheckSelContractRejectsUnknownNodes(t *testing.T) {
	err := checkPlan(fakeNode{}, nil)
	if err == nil || !strings.Contains(err.Error(), "unknown plan node") {
		t.Errorf("got %v, want unknown-plan-node error", err)
	}
}

func TestValidateBatch(t *testing.T) {
	col := func(n int) []variant.Value { return make([]variant.Value, n) }
	good := &vector.Batch{Cols: [][]variant.Value{col(4), col(4)}, Sel: []int{0, 2, 3}}
	if err := validateBatch(good); err != nil {
		t.Errorf("good batch rejected: %v", err)
	}
	dense := &vector.Batch{Cols: [][]variant.Value{col(4)}}
	if err := validateBatch(dense); err != nil {
		t.Errorf("dense batch rejected: %v", err)
	}
	nonMono := &vector.Batch{Cols: [][]variant.Value{col(4)}, Sel: []int{2, 1}}
	if err := validateBatch(nonMono); err == nil || !strings.Contains(err.Error(), "strictly increasing") {
		t.Errorf("non-monotone sel: got %v", err)
	}
	oob := &vector.Batch{Cols: [][]variant.Value{col(2)}, Sel: []int{0, 5}}
	if err := validateBatch(oob); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range sel: got %v", err)
	}
	ragged := &vector.Batch{Cols: [][]variant.Value{col(3), col(2)}}
	if err := validateBatch(ragged); err == nil || !strings.Contains(err.Error(), "ragged") {
		t.Errorf("ragged columns: got %v", err)
	}
}

// TestPlanCheckEndToEnd runs the parity battery with planck fully enabled:
// the checks must stay silent and the results must match an unchecked
// engine exactly.
func TestPlanCheckEndToEnd(t *testing.T) {
	checked := multiPartEngine(t, WithPlanCheck(true), WithBatchSize(7), WithParallelism(4))
	plain := multiPartEngine(t, WithBatchSize(7), WithParallelism(4))
	for _, sql := range parityQueries {
		want, err := plain.Query(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		got, err := checked.Query(sql)
		if err != nil {
			t.Fatalf("%s under planck: %v", sql, err)
		}
		if renderRows(got) != renderRows(want) {
			t.Errorf("%s: planck engine diverged", sql)
		}
	}
}
