package engine

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"jsonpark/internal/variant"
)

// FuzzPlanDiff is the differential governance fuzzer: the input bytes seed
// a deterministic generator that produces (a) a nested dataset and (b) one
// query per pipeline shape — scan→filter, group, sort, join, and LATERAL
// FLATTEN, each with randomized predicates, aggregate lists, sort
// directions, and limits. The oracle is the sequential unlimited engine;
// every other (batch size, parallelism, mem-limit) cell must render
// byte-identical rows, and the limited cells must never error. The ingest
// cells add a streaming dimension: they load a prefix of the dataset, warm
// the result cache (and a materialized view when the group query is
// mergeable), append the remaining documents mid-run, and must still match
// the oracle's cold recompute over the full dataset — cached and
// incrementally refreshed results included. Running the seed corpus as a
// plain unit test (`go test`) already covers every shape;
// `go test -fuzz=FuzzPlanDiff` explores the generator space further.
func FuzzPlanDiff(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte("governed"))
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef})
	f.Add([]byte("spill the breakers"))
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7})
	f.Add([]byte("jsoniq on snowpark"))

	f.Fuzz(func(t *testing.T, data []byte) {
		rng := newDiffRNG(data)
		docs := genDiffDocs(rng)
		queries := genDiffQueries(rng)

		// The oracle: one worker, no budget, no typed shredding — the pure
		// variant path. Its rendering is ground truth.
		oracle := diffCell{name: "oracle", batch: 1024, par: 1, typedOff: true}
		cells := []diffCell{
			{name: "bs1-seq-64k", batch: 1, par: 1, limit: 64 * 1024},
			{name: "bs1024-par4-64k", batch: 1024, par: 4, limit: 64 * 1024},
			{name: "bs64-par4-4k", batch: 64, par: 4, limit: 4 * 1024},
			{name: "bs1024-par4-unlimited", batch: 1024, par: 4},
			// Storage dimension: typed kernels sequential, and typed partitions
			// persisted to disk and reloaded into a fresh engine before querying.
			{name: "bs1024-seq-typed", batch: 1024, par: 1},
			{name: "bs1024-par4-persist-reload", batch: 1024, par: 4, persist: true},
			// Ingestion dimension: warm caches over a prefix, append the rest
			// mid-run, and require the post-append (and re-cached) results to
			// match the oracle's full-dataset recompute.
			{name: "bs1-seq-ingest", batch: 1, par: 1, ingest: true},
			{name: "bs1024-par4-ingest", batch: 1024, par: 4, ingest: true},
		}

		want := runDiffCell(t, oracle, docs, queries)
		for _, c := range cells {
			got := runDiffCell(t, c, docs, queries)
			for qi, q := range queries {
				if got[qi] != want[qi] {
					t.Errorf("[%s] diverges from oracle on %s\noracle:\n%s\ngot:\n%s",
						c.name, q, clipDiff(want[qi]), clipDiff(got[qi]))
				}
			}
		}
	})
}

type diffCell struct {
	name       string
	batch, par int
	limit      int64
	// typedOff keeps every column in the variant encoding (the v1 layout);
	// persist writes partitions under a temp data dir and re-opens a fresh
	// engine over it, so queries exercise header pruning + cold loads;
	// ingest splits the load around a warm-up pass with the result cache on
	// (mutually exclusive with persist).
	typedOff bool
	persist  bool
	ingest   bool
}

// runDiffCell loads the dataset into a fresh engine configured for the
// cell and renders every query's rows.
func runDiffCell(t *testing.T, c diffCell, docs []string, queries []string) []string {
	t.Helper()
	opts := []Option{WithBatchSize(c.batch), WithParallelism(c.par)}
	if c.limit > 0 {
		opts = append(opts, WithMemLimit(c.limit))
	}
	if c.typedOff {
		opts = append(opts, WithTypedColumns(false))
	}
	if c.persist {
		opts = append(opts, WithDataDir(t.TempDir()))
	}
	split := len(docs)
	if c.ingest {
		split = len(docs) * 3 / 5
		opts = append(opts, WithResultCacheSize(64))
	}
	e := New(opts...)
	tab, err := e.Catalog().CreateTable("t", []string{"grp", "id", "val", "s", "items"})
	if err != nil {
		t.Fatal(err)
	}
	tab.SetTargetPartitionBytes(2048)
	for _, doc := range docs[:split] {
		if err := tab.AppendObject(variant.MustParseJSON(doc)); err != nil {
			t.Fatalf("[%s] bad generated doc %s: %v", c.name, doc, err)
		}
	}
	if c.persist {
		// Seal everything to disk, then restart: a fresh engine over the same
		// directory must reconstruct the table bit-exactly from headers + data.
		if err := e.Catalog().Flush(); err != nil {
			t.Fatal(err)
		}
		e = New(opts...)
	}
	viewable := false
	if c.ingest {
		// Warm the result cache over the prefix, register a view on the group
		// query when its aggregate list is mergeable (the pool includes
		// SUM/AVG, which are rightly rejected), then stream in the rest.
		for _, q := range queries {
			if _, err := e.Query(q); err != nil {
				t.Fatalf("[%s] warm %s: %v", c.name, q, err)
			}
		}
		viewable = e.CreateView("mv", queries[1]) == nil
		for _, doc := range docs[split:] {
			if err := tab.AppendObject(variant.MustParseJSON(doc)); err != nil {
				t.Fatalf("[%s] bad generated doc %s: %v", c.name, doc, err)
			}
		}
	}
	out := make([]string, len(queries))
	for qi, q := range queries {
		res, err := e.Query(q)
		if err != nil {
			// The generator emits only valid SQL; an error here is an engine
			// bug (or a generator regression), never fuzz noise.
			t.Fatalf("[%s] %s: %v", c.name, q, err)
		}
		out[qi] = renderRows(res)
		if c.ingest {
			// Second run serves from the re-populated result cache; it must be
			// byte-identical to the executed run.
			res2, err := e.Query(q)
			if err != nil {
				t.Fatalf("[%s] reread %s: %v", c.name, q, err)
			}
			if got := renderRows(res2); got != out[qi] {
				t.Fatalf("[%s] cached reread diverges on %s:\n got %s\nwant %s",
					c.name, q, clipDiff(got), clipDiff(out[qi]))
			}
		}
	}
	if viewable {
		res, err := e.QueryView(context.Background(), "mv")
		if err != nil {
			t.Fatalf("[%s] view refresh after append: %v", c.name, err)
		}
		if got := renderRows(res); got != out[1] {
			t.Fatalf("[%s] incremental view diverges from %s:\n got %s\nwant %s",
				c.name, queries[1], clipDiff(got), clipDiff(out[1]))
		}
	}
	return out
}

// genDiffDocs builds a deterministic nested dataset: a handful of group
// keys, unique ids, exact-ratio floats, variable-length pad strings, and
// arrays sized 0..3 for FLATTEN.
func genDiffDocs(r *diffRNG) []string {
	n := 1 + r.n(250)
	groups := 1 + r.n(13)
	docs := make([]string, n)
	for i := 0; i < n; i++ {
		items := make([]string, r.n(4))
		for j := range items {
			items[j] = fmt.Sprint(r.n(50))
		}
		docs[i] = fmt.Sprintf(`{"grp": %d, "id": %d, "val": %g, "s": "p%02d%s", "items": [%s]}`,
			r.n(groups), i, float64(r.n(997))/16.0, r.n(37),
			strings.Repeat("x", r.n(24)), strings.Join(items, ", "))
	}
	return docs
}

// genDiffQueries emits one randomized query per pipeline shape so a single
// fuzz input exercises scan, filter, aggregation, sort, join, and flatten.
// Every query carries an ORDER BY that totally orders its output (unique
// ids or unique group keys break ties), which is what makes byte-for-byte
// comparison across parallelism meaningful.
func genDiffQueries(r *diffRNG) []string {
	where := func() string {
		switch r.n(4) {
		case 0:
			return fmt.Sprintf(` WHERE "val" < %g`, float64(r.n(997))/16.0)
		case 1:
			return fmt.Sprintf(` WHERE "id" >= %d`, r.n(120))
		case 2:
			return fmt.Sprintf(` WHERE "grp" <> %d`, r.n(13))
		default:
			return ""
		}
	}
	limit := func() string {
		if r.n(3) == 0 {
			return fmt.Sprintf(` LIMIT %d`, 1+r.n(40))
		}
		return ""
	}
	dir := func() string {
		if r.n(2) == 0 {
			return " DESC"
		}
		return ""
	}

	// Shape 1: scan → filter → project, totally ordered by the unique id.
	scan := fmt.Sprintf(`SELECT "id", "grp", "val", "s" FROM "t"%s ORDER BY "id"%s%s`,
		where(), dir(), limit())

	// Shape 2: hash aggregation over a random aggregate list; group keys are
	// unique, so ordering by the key is total.
	aggPool := []string{
		`COUNT(*) AS c`, `MIN("val") AS mn`, `MAX("val") AS mx`,
		`SUM("val") AS sv`, `AVG("val") AS av`, `COUNT(DISTINCT "s") AS ds`,
		`MAX("s") AS ms`, `ARRAY_AGG("id") AS ids`,
	}
	naggs := 1 + r.n(4)
	aggs := make([]string, 0, naggs)
	start := r.n(len(aggPool))
	for i := 0; i < naggs; i++ {
		aggs = append(aggs, aggPool[(start+i*3)%len(aggPool)])
	}
	group := fmt.Sprintf(`SELECT "grp", %s FROM "t"%s GROUP BY "grp" ORDER BY "grp"%s%s`,
		strings.Join(aggs, ", "), where(), dir(), limit())

	// Shape 3: sort with a randomized direction on a non-unique prefix,
	// tie-broken by id.
	sort := fmt.Sprintf(`SELECT "s", "val", "id" FROM "t"%s ORDER BY "s"%s, "val", "id"%s`,
		where(), dir(), limit())

	// Shape 4: subquery join on the group key (the dialect has no qualified
	// column refs, so the build side renames its columns), totally ordered
	// by the probe id plus the build columns.
	joinKind := "INNER"
	if r.n(2) == 0 {
		joinKind = "LEFT OUTER"
	}
	join := fmt.Sprintf(
		`SELECT "id", "g2", "s2" FROM (SELECT "id", "grp" FROM "t"%s) %s JOIN `+
			`(SELECT "grp" AS "g2", "s" AS "s2" FROM "t" WHERE "id" < %d) `+
			`ON "grp" = "g2" ORDER BY "id", "s2", "g2"%s`,
		where(), joinKind, 1+r.n(150), limit())

	// Shape 5: LATERAL FLATTEN of the nested array, ordered by the unique
	// (id, INDEX) pair.
	flatten := fmt.Sprintf(
		`SELECT "id", "f".INDEX AS "ix", "f".VALUE AS "item" FROM `+
			`(SELECT * FROM "t"%s), LATERAL FLATTEN(INPUT => "items") AS "f" `+
			`ORDER BY "id", "ix"%s`,
		where(), limit())

	return []string{scan, group, sort, join, flatten}
}

// clipDiff bounds failure output so a divergence on a large dataset stays
// readable.
func clipDiff(s string) string {
	const max = 2048
	if len(s) <= max {
		return s
	}
	return s[:max] + fmt.Sprintf("... (%d bytes total)", len(s))
}

// diffRNG is a self-contained xorshift64* PRNG so fuzz inputs map to
// plans deterministically without math/rand's version-dependent streams.
type diffRNG struct{ s uint64 }

func newDiffRNG(data []byte) *diffRNG {
	s := uint64(0x9e3779b97f4a7c15)
	for _, b := range data {
		s ^= uint64(b)
		s *= 0xbf58476d1ce4e5b9
		s ^= s >> 27
	}
	if s == 0 {
		s = 1
	}
	return &diffRNG{s: s}
}

func (r *diffRNG) next() uint64 {
	x := r.s
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.s = x
	return x * 0x2545f4914f6cdd1d
}

// n returns a deterministic value in [0, m).
func (r *diffRNG) n(m int) int {
	if m <= 0 {
		return 0
	}
	return int(r.next() % uint64(m))
}
