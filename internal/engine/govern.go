package engine

// Server-level resource governance. One Governor arbitrates between every
// concurrent query on an engine: a single global memory pool that each
// query's memAccountant draws from (so total retained breaker state across
// all queries is bounded, not just per-query), and an admission gate that
// bounds per-tenant concurrency. When slots or the pool are exhausted,
// Admit queues the caller briefly and then sheds it with a structured
// AdmissionError carrying a Retry-After hint — the server maps that to
// HTTP 429. Shedding is always preferred over unbounded queueing: the wait
// is capped by QueueTimeout and the queue itself by QueueDepth.
//
// Accounting flow:
//
//	operator charge ─▶ memAccountant (per query) ─▶ Governor pool (global)
//	                     │ over per-query limit?      │ over global limit?
//	                     └───────────── either ──────▶ operator spills
//
// Pool pressure never fails a running query — exactly like the per-query
// limit, crossing it flips charging operators into their byte-identical
// spill paths. Only *new* work is refused, at admission.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTenant is the tenant charged when a request names none.
const DefaultTenant = "default"

// GovernorConfig sizes a Governor.
type GovernorConfig struct {
	// MemLimit caps total accounted breaker-state bytes across all queries;
	// 0 disables pool accounting (admission still applies).
	MemLimit int64
	// TenantSlots caps concurrently admitted queries per tenant; 0 means
	// unlimited concurrency (admission then gates only on the memory pool).
	TenantSlots int
	// QueueTimeout bounds how long Admit blocks before shedding. 0 means
	// one second.
	QueueTimeout time.Duration
	// QueueDepth bounds per-tenant waiters; excess requests shed
	// immediately. 0 means 4×TenantSlots (16 when TenantSlots is 0).
	QueueDepth int
}

// AdmissionError reports a request shed by the Governor. The server maps it
// to HTTP 429 with a Retry-After header.
type AdmissionError struct {
	Tenant     string
	RetryAfter time.Duration
	Reason     string
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("admission: %s (tenant %q, retry after %s)", e.Reason, e.Tenant, e.RetryAfter)
}

// Governor is the shared memory pool plus admission gate. The zero value is
// not usable; construct with NewGovernor. A nil *Governor is safe wherever
// methods are nil-tolerant (reserve, releaseMem, memLimited).
type Governor struct {
	cfg GovernorConfig

	mu      sync.Mutex
	cond    *sync.Cond
	memUsed int64
	memPeak int64
	active  map[string]int
	waiting map[string]int

	admitted atomic.Int64
	shed     atomic.Int64
}

// NewGovernor builds a Governor, applying config defaults.
func NewGovernor(cfg GovernorConfig) *Governor {
	if cfg.MemLimit < 0 {
		cfg.MemLimit = 0
	}
	if cfg.QueueTimeout <= 0 {
		cfg.QueueTimeout = time.Second
	}
	if cfg.QueueDepth <= 0 {
		if cfg.TenantSlots > 0 {
			cfg.QueueDepth = 4 * cfg.TenantSlots
		} else {
			cfg.QueueDepth = 16
		}
	}
	g := &Governor{
		cfg:     cfg,
		active:  make(map[string]int),
		waiting: make(map[string]int),
	}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Config returns the effective (defaulted) configuration.
func (g *Governor) Config() GovernorConfig { return g.cfg }

// memLimited reports whether the global memory pool is in force.
func (g *Governor) memLimited() bool { return g != nil && g.cfg.MemLimit > 0 }

// blockedLocked reports why tenant cannot be admitted right now, or "".
func (g *Governor) blockedLocked(tenant string) string {
	if g.cfg.TenantSlots > 0 && g.active[tenant] >= g.cfg.TenantSlots {
		return "tenant concurrency slots exhausted"
	}
	if g.cfg.MemLimit > 0 && g.memUsed >= g.cfg.MemLimit {
		return "global memory pool exhausted"
	}
	return ""
}

// Admit gates one query for tenant ("" means DefaultTenant). It returns a
// release func the caller must invoke exactly once when the query finishes
// (idempotent — extra calls are no-ops). When slots or the pool stay
// exhausted past QueueTimeout — or the per-tenant queue is already
// QueueDepth deep — Admit returns an *AdmissionError. A ctx cancel or
// deadline while queued returns ctx.Err() so the server's existing 499/504
// mapping applies unchanged.
func (g *Governor) Admit(ctx context.Context, tenant string) (func(), error) {
	if tenant == "" {
		tenant = DefaultTenant
	}
	deadline := time.Now().Add(g.cfg.QueueTimeout)
	// Both the shed timer and ctx cancellation wake every waiter; each
	// re-checks its own deadline/ctx after cond.Wait.
	timer := time.AfterFunc(g.cfg.QueueTimeout, g.broadcast)
	defer timer.Stop()
	stop := context.AfterFunc(ctx, g.broadcast)
	defer stop()

	g.mu.Lock()
	defer g.mu.Unlock()
	if g.waiting[tenant] >= g.cfg.QueueDepth {
		g.shed.Add(1)
		return nil, &AdmissionError{Tenant: tenant, RetryAfter: g.cfg.QueueTimeout, Reason: "admission queue full"}
	}
	g.waiting[tenant]++
	defer func() {
		if g.waiting[tenant]--; g.waiting[tenant] <= 0 {
			delete(g.waiting, tenant)
		}
	}()
	for {
		reason := g.blockedLocked(tenant)
		if reason == "" {
			g.active[tenant]++
			g.admitted.Add(1)
			var once sync.Once
			return func() { once.Do(func() { g.exit(tenant) }) }, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !time.Now().Before(deadline) {
			g.shed.Add(1)
			return nil, &AdmissionError{Tenant: tenant, RetryAfter: g.cfg.QueueTimeout, Reason: reason}
		}
		g.cond.Wait()
	}
}

// exit returns tenant's admission slot and wakes waiters.
func (g *Governor) exit(tenant string) {
	g.mu.Lock()
	if g.active[tenant]--; g.active[tenant] <= 0 {
		delete(g.active, tenant)
	}
	g.mu.Unlock()
	g.cond.Broadcast()
}

func (g *Governor) broadcast() { g.cond.Broadcast() }

// reserve draws n bytes from the global pool on behalf of one query's
// accountant and reports whether the pool is still within its limit. Like
// memAccountant.charge, crossing the limit never refuses the bytes — it
// tells the charging operator to spill.
func (g *Governor) reserve(n int64) bool {
	if !g.memLimited() || n == 0 {
		return true
	}
	g.mu.Lock()
	g.memUsed += n
	if g.memUsed > g.memPeak {
		g.memPeak = g.memUsed
	}
	over := g.memUsed > g.cfg.MemLimit
	g.mu.Unlock()
	return !over
}

// releaseMem returns n bytes to the pool and wakes admission waiters
// blocked on pool pressure.
func (g *Governor) releaseMem(n int64) {
	if !g.memLimited() || n == 0 {
		return
	}
	g.mu.Lock()
	g.memUsed -= n
	if g.memUsed < 0 {
		g.memUsed = 0
	}
	g.mu.Unlock()
	g.cond.Broadcast()
}

// GovernorSnapshot is a point-in-time view of the governor for /debug and
// metrics.
type GovernorSnapshot struct {
	MemUsedBytes  int64          `json:"mem_used_bytes"`
	MemPeakBytes  int64          `json:"mem_peak_bytes"`
	MemLimitBytes int64          `json:"mem_limit_bytes"`
	TenantSlots   int            `json:"tenant_slots"`
	QueueTimeout  string         `json:"queue_timeout"`
	Active        int            `json:"active"`
	Waiting       int            `json:"waiting"`
	ActiveByTen   map[string]int `json:"active_by_tenant,omitempty"`
	WaitingByTen  map[string]int `json:"waiting_by_tenant,omitempty"`
	AdmittedTotal int64          `json:"admitted_total"`
	ShedTotal     int64          `json:"shed_total"`
}

// Snapshot captures current pool usage, per-tenant occupancy, and the
// cumulative admitted/shed counters.
func (g *Governor) Snapshot() GovernorSnapshot {
	g.mu.Lock()
	s := GovernorSnapshot{
		MemUsedBytes:  g.memUsed,
		MemPeakBytes:  g.memPeak,
		MemLimitBytes: g.cfg.MemLimit,
		TenantSlots:   g.cfg.TenantSlots,
		QueueTimeout:  g.cfg.QueueTimeout.String(),
	}
	if len(g.active) > 0 {
		s.ActiveByTen = make(map[string]int, len(g.active))
		for t, n := range g.active {
			s.ActiveByTen[t] = n
			s.Active += n
		}
	}
	if len(g.waiting) > 0 {
		s.WaitingByTen = make(map[string]int, len(g.waiting))
		for t, n := range g.waiting {
			s.WaitingByTen[t] = n
			s.Waiting += n
		}
	}
	g.mu.Unlock()
	s.AdmittedTotal = g.admitted.Load()
	s.ShedTotal = g.shed.Load()
	return s
}
