package engine

import (
	"fmt"
	"os"
	"testing"

	"jsonpark/internal/bench"
	"jsonpark/internal/variant"
)

// benchRecorder collects the microbenchmark timings; set JSQ_BENCH_JSON to a
// path to also write them as a bench.Recorder run file:
//
//	JSQ_BENCH_JSON=/tmp/micro.json go test -bench 'ScanFilterAgg|FlattenReagg' ./internal/engine/
var benchRecorder = bench.NewRecorder("engine-microbench")

func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("JSQ_BENCH_JSON"); path != "" && len(benchRecorder.Records()) > 0 {
		if err := benchRecorder.WriteFile(path); err != nil {
			fmt.Fprintf(os.Stderr, "bench recorder: %v\n", err)
		}
	}
	os.Exit(code)
}

// benchBatchSizes spans the regimes of interest: 1 reproduces row-at-a-time
// dispatch overhead, 64/1024 the cache-friendly sweet spot, 4096 the point
// where vectors outgrow cache.
var benchBatchSizes = []int{1, 64, 1024, 4096}

func benchEngine(b *testing.B, batchSize, parallelism, rows int, extra ...Option) *Engine {
	b.Helper()
	opts := append([]Option{WithBatchSize(batchSize), WithParallelism(parallelism)}, extra...)
	e := New(opts...)
	tab, err := e.Catalog().CreateTable("bench", []string{"id", "grp", "val", "items"})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		doc := fmt.Sprintf(`{"id": %d, "grp": %d, "val": %g, "items": [%d, %d, %d, %d]}`,
			i, i%13, float64(i%97)/7.0, i, i+1, i+2, i+3)
		if err := tab.AppendObject(variant.MustParseJSON(doc)); err != nil {
			b.Fatal(err)
		}
	}
	return e
}

func runQueryBench(b *testing.B, name, sql string, rows int) {
	for _, bs := range benchBatchSizes {
		bs := bs
		b.Run(fmt.Sprintf("batch=%d", bs), func(b *testing.B) {
			e := benchEngine(b, bs, 1, rows)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Query(sql); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			benchRecorder.Add(bench.Record{
				Experiment: name,
				Query:      sql,
				System:     fmt.Sprintf("batch=%d", bs),
				Scale:      float64(rows),
				MeanMicros: b.Elapsed().Microseconds() / int64(b.N),
				Runs:       b.N,
			})
		})
	}
}

// BenchmarkScanFilterAgg measures the scan → filter → grouped-aggregate
// pipeline across batch sizes.
func BenchmarkScanFilterAgg(b *testing.B) {
	runQueryBench(b, "scan-filter-agg",
		`SELECT "grp", COUNT(*), MIN("val"), MAX("val") FROM "bench" WHERE "val" > 3 GROUP BY "grp"`,
		20000)
}

// BenchmarkFlattenReagg measures the flatten → re-aggregate shape at the
// core of the paper's nested-query translation (§IV-B).
func BenchmarkFlattenReagg(b *testing.B) {
	runQueryBench(b, "flatten-reagg",
		`SELECT "id", COUNT(*) FROM (SELECT "id", "f".VALUE AS "v" FROM (SELECT * FROM "bench"), LATERAL FLATTEN(INPUT => "items") AS "f") GROUP BY "id"`,
		5000)
}
