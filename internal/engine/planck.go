package engine

// planck is the plan-check pass: a debug mode (engine.WithPlanCheck) that
// re-verifies, at plan build time and again at run time, the two invariants
// the parallel scan work of PR 2 rests on.
//
//  1. Unordered-exchange eligibility. collectUnorderedScans decides
//     top-down which scans may skip the ordered morsel merge. planck
//     re-derives the same property bottom-up — a scan is eligible exactly
//     when the path from it to the nearest order-erasing aggregate (global,
//     order-insensitive, stateless arguments) consists only of operators
//     that preserve the row multiset independent of order — and fails
//     preparation if the two analyses ever disagree, in either direction. A
//     scan marked unordered but not eligible is a wrong-results bug; a scan
//     eligible but not marked is a silent performance regression.
//
//  2. Selection-vector monotonicity. Every operator's contract is to emit
//     batches whose selection vector is strictly increasing and in bounds
//     (the merge in morselScan and Batch.ForEach both rely on it).
//     checkSelContract asserts statically that every plan node is one whose
//     emitted selection class is known — an unfamiliar node type is an
//     error, forcing new operators to declare their contract here — and the
//     checkIter wrapper verifies each emitted batch dynamically.
//
// Both checks are pure assertions: a passing plan executes identically with
// and without planck, modulo the per-batch validation cost.

import (
	"fmt"

	"jsonpark/internal/vector"
)

// checkPlan runs the build-time half of planck against the marking that the
// executor will actually use.
func checkPlan(root Node, unordered map[Node]bool) error {
	if err := checkUnorderedScans(root, nil, unordered); err != nil {
		return err
	}
	return checkSelContract(root)
}

// checkUnorderedScans walks to every scan carrying the ancestor path and
// diffs bottom-up eligibility against the top-down marking.
func checkUnorderedScans(n Node, path []Node, unordered map[Node]bool) error {
	if s, ok := n.(*ScanNode); ok {
		eligible := unorderedEligible(path, s)
		switch {
		case unordered[s] && !eligible:
			return fmt.Errorf("planck: scan of %s is marked for unordered exchange but an order-sensitive consumer observes it", s.Table.Name)
		case eligible && !unordered[s]:
			return fmt.Errorf("planck: scan of %s is eligible for unordered exchange but not marked (ordered merge forced needlessly)", s.Table.Name)
		}
		return nil
	}
	path = append(path, n)
	for _, c := range planChildren(n) {
		if err := checkUnorderedScans(c, path, unordered); err != nil {
			return err
		}
	}
	return nil
}

// unorderedEligible derives order-insensitivity bottom-up, independently of
// markOrdered's top-down flag propagation: walking from the scan towards
// the root, each operator either passes the row multiset through
// order-independently (continue), erases order entirely (eligible), or
// observes order (ineligible).
func unorderedEligible(path []Node, s *ScanNode) bool {
	// A stateful pushed-down filter (SEQ8/SEQ4) makes the scan's own output
	// depend on evaluation order.
	if exprStateful(s.Filter) {
		return false
	}
	for i := len(path) - 1; i >= 0; i-- {
		switch x := path[i].(type) {
		case *FilterNode:
			// A stateless filter keeps the same rows under any order; a
			// stateful one keeps different rows.
			if exprStateful(x.Cond) {
				return false
			}
		case *ProjectNode:
			for _, e := range x.Exprs {
				if exprStateful(e) {
					return false
				}
			}
		case *FlattenNode:
			if exprStateful(x.Expr) {
				return false
			}
		case *SortNode:
			// A sort re-orders but never changes the row multiset; stateful
			// sort keys alter only the order, which nothing below an erasing
			// aggregate can observe.
		case *UnionNode:
			// Concatenation passes each side through.
		case *AggregateNode:
			// The first aggregate on the path decides: a global aggregate
			// over order-insensitive accumulators with stateless arguments
			// erases its input order; any other aggregate observes it
			// (grouped output order is first-seen, float SUM folds in input
			// order).
			if len(x.GroupBy) > 0 || !aggsOrderInsensitive(x.Aggs) {
				return false
			}
			for _, spec := range x.Aggs {
				if exprStateful(spec.Arg) {
					return false
				}
			}
			return true
		case *JoinNode:
			// Probe order fixes output order, build order fixes match order.
			return false
		case *LimitNode:
			// LIMIT keeps a prefix: which rows survive depends on order.
			return false
		case *ParallelSortNode:
			// Same contract as SortNode: the run split + stable merge is
			// byte-identical to the sequential stable sort, so it re-orders
			// without changing the row multiset.
		case *ParallelAggNode:
			// The parallel aggregate replays its subtree per storage partition
			// itself; the scan below it must never run as a morsel exchange.
			return false
		case *ParallelJoinNode:
			// Build rows chunk by input index, so build order is observed just
			// like the sequential join.
			return false
		default:
			return false
		}
	}
	// Reached the root: result rows come back in stream order.
	return false
}

// checkSelContract asserts that every plan node is an operator whose
// selection-vector contract is declared below. All current operators emit
// batches whose Sel is nil (dense) or strictly increasing: filters build
// selections via Batch.ForEach in physical order, projections carry their
// input's selection through unchanged, and every materializing operator
// (aggregate, join, sort, flatten, scan merge) emits dense batches. A node
// type this switch does not know cannot be certified and fails the check —
// adding an operator means deciding its contract here.
func checkSelContract(n Node) error {
	switch n.(type) {
	case *ScanNode, *FilterNode, *ProjectNode, *FlattenNode,
		*AggregateNode, *JoinNode, *SortNode, *LimitNode, *UnionNode:
	case *ParallelAggNode, *ParallelJoinNode, *ParallelSortNode:
		// The parallel breakers all materialize: the aggregate's merge, the
		// join's builder output and the sort's run merge each emit dense
		// (nil-Sel) batches, trivially satisfying the selection contract.
	default:
		return fmt.Errorf("planck: unknown plan node %T — declare its order and selection-vector contracts in planck.go", n)
	}
	for _, c := range planChildren(n) {
		if err := checkSelContract(c); err != nil {
			return err
		}
	}
	return nil
}

// --- run-time half -----------------------------------------------------------

// checkIter enforces the batch contract on every vector an operator emits:
// equal-length columns and a strictly increasing, in-bounds selection.
type checkIter struct {
	in batchIter
	op string
}

func (c *checkIter) NextBatch() (*vector.Batch, error) {
	b, err := c.in.NextBatch()
	if err != nil || b == nil {
		return b, err
	}
	if verr := validateBatch(b); verr != nil {
		return nil, fmt.Errorf("planck: %s emitted an invalid batch: %w", c.op, verr)
	}
	return b, nil
}

func (c *checkIter) Close() { c.in.Close() }

func validateBatch(b *vector.Batch) error {
	rows := -1
	for i, col := range b.Cols {
		// A typed-only column (nil variant vector, typed view set) is a valid
		// scan-batch representation; a column with neither is a contract bug.
		n := len(col)
		tc := b.TypedCol(i)
		if col == nil {
			if tc == nil {
				return fmt.Errorf("column %d has neither a variant vector nor a typed view", i)
			}
			n = tc.Len()
		} else if tc != nil && tc.Len() != n {
			return fmt.Errorf("column %d typed view has %d rows, variant vector has %d", i, tc.Len(), n)
		}
		if rows == -1 {
			rows = n
		} else if n != rows {
			return fmt.Errorf("ragged columns: column %d has %d rows, column 0 has %d", i, n, rows)
		}
	}
	if rows == -1 {
		rows = 0
	}
	prev := -1
	//jsqlint:ignore selbounds planck validates the raw selection vector itself; helpers would mask the defects it checks for
	for _, s := range b.Sel {
		if s <= prev {
			return fmt.Errorf("selection vector not strictly increasing: %d after %d", s, prev)
		}
		if s >= rows {
			return fmt.Errorf("selection index %d out of range for %d rows", s, rows)
		}
		prev = s
	}
	return nil
}
