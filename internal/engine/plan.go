package engine

import (
	"fmt"
	"strings"

	"jsonpark/internal/sqlast"
	"jsonpark/internal/storage"
)

// Node is a logical plan operator. Schemas are resolved at build time.
type Node interface {
	Schema() *Schema
}

// ScanNode reads a table's micro-partitions. Columns is the projected subset
// (projection pruning rewrites it); Filter is the pushed-down residual
// predicate; Prunes are zone-map predicates for partition pruning.
type ScanNode struct {
	Table   *storage.Table
	Columns []string
	Filter  sqlast.Expr
	Prunes  []storage.PrunePredicate
	schema  *Schema
}

// FilterNode keeps rows whose condition is TRUE.
type FilterNode struct {
	Input Node
	Cond  sqlast.Expr
}

// ProjectNode computes one output column per expression.
type ProjectNode struct {
	Input  Node
	Exprs  []sqlast.Expr
	Names  []string
	schema *Schema
}

// FlattenNode is LATERAL FLATTEN: per input row it emits one row per element
// of the array-valued Expr, appending columns "<Alias>.VALUE" and
// "<Alias>.INDEX". With Outer, rows whose input is empty or not an array
// still emit one row with NULLs.
type FlattenNode struct {
	Input  Node
	Expr   sqlast.Expr
	Outer  bool
	Alias  string
	schema *Schema
}

// AggSpec is one aggregate computation.
type AggSpec struct {
	Name     string // upper-case function name
	Arg      sqlast.Expr
	Star     bool // COUNT(*)
	Distinct bool
	OrderBy  []sqlast.OrderItem // ARRAY_AGG ... WITHIN GROUP
}

// AggregateNode hash-groups by the GroupBy expressions and computes Aggs.
// Output schema: GroupNames then AggNames.
type AggregateNode struct {
	Input      Node
	GroupBy    []sqlast.Expr
	GroupNames []string
	Aggs       []AggSpec
	AggNames   []string
	schema     *Schema
}

// JoinNode joins two inputs. The optimizer may extract hash keys from an
// INNER/CROSS join's conjuncts (LeftKeys/RightKeys) leaving Residual; a
// LEFT OUTER join always requires keys (the translation only emits
// equi-joins on row IDs).
type JoinNode struct {
	Kind      string // INNER, LEFT OUTER, CROSS
	Left      Node
	Right     Node
	On        sqlast.Expr
	LeftKeys  []sqlast.Expr
	RightKeys []sqlast.Expr
	Residual  sqlast.Expr
	schema    *Schema
}

// SortNode orders rows by its keys using the variant total order.
type SortNode struct {
	Input Node
	Keys  []sqlast.OrderItem
}

// LimitNode truncates the stream.
type LimitNode struct {
	Input Node
	N     int64
}

// UnionNode concatenates two inputs (UNION ALL); schemas align by position.
type UnionNode struct {
	Left  Node
	Right Node
}

func (n *ScanNode) Schema() *Schema {
	if n.schema == nil {
		n.schema = NewSchema(n.Columns)
	}
	return n.schema
}
func (n *FilterNode) Schema() *Schema { return n.Input.Schema() }
func (n *ProjectNode) Schema() *Schema {
	if n.schema == nil {
		n.schema = NewSchema(n.Names)
	}
	return n.schema
}
func (n *FlattenNode) Schema() *Schema {
	if n.schema == nil {
		n.schema = n.Input.Schema().Extend(n.Alias+".VALUE", n.Alias+".INDEX")
	}
	return n.schema
}
func (n *AggregateNode) Schema() *Schema {
	if n.schema == nil {
		n.schema = NewSchema(append(append([]string(nil), n.GroupNames...), n.AggNames...))
	}
	return n.schema
}
func (n *JoinNode) Schema() *Schema {
	if n.schema == nil {
		n.schema = NewSchema(append(append([]string(nil), n.Left.Schema().Names...), n.Right.Schema().Names...))
	}
	return n.schema
}
func (n *SortNode) Schema() *Schema  { return n.Input.Schema() }
func (n *LimitNode) Schema() *Schema { return n.Input.Schema() }
func (n *UnionNode) Schema() *Schema { return n.Left.Schema() }

// planner builds logical plans from parsed SQL.
type planner struct {
	catalog *storage.Catalog
}

// Build converts a parsed query into an unoptimized logical plan.
func (p *planner) Build(q sqlast.Query) (Node, error) {
	switch x := q.(type) {
	case *sqlast.Select:
		return p.buildSelect(x)
	case *sqlast.SetOp:
		left, err := p.Build(x.Left)
		if err != nil {
			return nil, err
		}
		right, err := p.Build(x.Right)
		if err != nil {
			return nil, err
		}
		if len(left.Schema().Names) != len(right.Schema().Names) {
			return nil, fmt.Errorf("engine: UNION ALL arity mismatch: %d vs %d columns",
				len(left.Schema().Names), len(right.Schema().Names))
		}
		return &UnionNode{Left: left, Right: right}, nil
	}
	return nil, fmt.Errorf("engine: unknown query node %T", q)
}

func (p *planner) buildSelect(s *sqlast.Select) (Node, error) {
	var node Node
	if s.From == nil {
		return nil, fmt.Errorf("engine: SELECT without FROM is not supported")
	}
	node, err := p.buildFrom(s.From)
	if err != nil {
		return nil, err
	}
	if s.Where != nil {
		node = &FilterNode{Input: node, Cond: s.Where}
	}

	// Expand stars in the select list against the pre-aggregate schema.
	items, err := expandStars(s.Items, node.Schema())
	if err != nil {
		return nil, err
	}

	// Aggregate detection: GROUP BY present, or any aggregate call in the
	// select list / HAVING / ORDER BY.
	hasAgg := len(s.GroupBy) > 0 || s.Having != nil
	for _, it := range items {
		if containsAggregate(it.Expr) {
			hasAgg = true
		}
	}
	for _, o := range s.OrderBy {
		if containsAggregate(o.Expr) {
			hasAgg = true
		}
	}

	having := s.Having
	orderBy := append([]sqlast.OrderItem(nil), s.OrderBy...)

	// Output names are needed up front so ORDER BY can resolve select-list
	// aliases without being rewritten through the aggregate.
	names := make([]string, len(items))
	for i, it := range items {
		names[i] = it.Alias
		if names[i] == "" {
			if cr, ok := it.Expr.(*sqlast.ColRef); ok && cr.Table == "" {
				names[i] = cr.Name
			} else {
				names[i] = sqlast.RenderExpr(it.Expr)
			}
		}
	}

	if hasAgg {
		agg := &AggregateNode{Input: node, GroupBy: append([]sqlast.Expr(nil), s.GroupBy...)}
		for i := range agg.GroupBy {
			agg.GroupNames = append(agg.GroupNames, fmt.Sprintf("__g%d", i))
		}
		// Select-list aliases may appear in ORDER BY; remember the original
		// defining expressions so ORDER BY "alias" and ORDER BY SUM(x) both
		// resolve against the aggregate output.
		aliasDefs := make(map[string]sqlast.Expr, len(items))
		for i, it := range items {
			aliasDefs[names[i]] = it.Expr
		}
		rw := &aggRewriter{agg: agg}
		for i := range items {
			items[i].Expr, err = rw.rewrite(items[i].Expr)
			if err != nil {
				return nil, err
			}
		}
		if having != nil {
			having, err = rw.rewrite(having)
			if err != nil {
				return nil, err
			}
		}
		for i := range orderBy {
			key := substituteAliases(orderBy[i].Expr, aliasDefs)
			orderBy[i].Expr, err = rw.rewrite(key)
			if err != nil {
				return nil, fmt.Errorf("engine: ORDER BY key %s: %w", sqlast.RenderExpr(orderBy[i].Expr), err)
			}
		}
		node = agg
		if having != nil {
			node = &FilterNode{Input: node, Cond: having}
		}
		// Sort on the aggregate output, before projection (which preserves
		// row order).
		if len(orderBy) > 0 {
			node = &SortNode{Input: node, Keys: orderBy}
			orderBy = nil
		}
	}

	exprs := make([]sqlast.Expr, len(items))
	for i, it := range items {
		exprs[i] = it.Expr
	}
	proj := &ProjectNode{Input: node, Exprs: exprs, Names: names}

	var out Node = proj
	if len(orderBy) > 0 {
		// ORDER BY may reference select aliases (post-projection schema) or
		// input columns (pre-projection). Prefer the projected schema.
		if exprsResolve(proj.Schema(), orderBy) {
			out = &SortNode{Input: proj, Keys: orderBy}
		} else if exprsResolve(node.Schema(), orderBy) {
			proj.Input = &SortNode{Input: node, Keys: orderBy}
			out = proj
		} else {
			return nil, fmt.Errorf("engine: ORDER BY references unknown columns")
		}
	}
	if s.Limit != nil {
		out = &LimitNode{Input: out, N: *s.Limit}
	}
	return out, nil
}

func (p *planner) buildFrom(f sqlast.FromItem) (Node, error) {
	switch x := f.(type) {
	case *sqlast.TableRef:
		t, err := p.catalog.Table(x.Name)
		if err != nil {
			return nil, err
		}
		return &ScanNode{Table: t, Columns: append([]string(nil), t.Columns...)}, nil
	case *sqlast.SubqueryRef:
		return p.Build(x.Query)
	case *sqlast.Join:
		left, err := p.buildFrom(x.Left)
		if err != nil {
			return nil, err
		}
		right, err := p.buildFrom(x.Right)
		if err != nil {
			return nil, err
		}
		return &JoinNode{Kind: x.Kind, Left: left, Right: right, On: x.On}, nil
	case *sqlast.Flatten:
		src, err := p.buildFrom(x.Source)
		if err != nil {
			return nil, err
		}
		return &FlattenNode{Input: src, Expr: x.Input, Outer: x.Outer, Alias: x.Alias}, nil
	}
	return nil, fmt.Errorf("engine: unknown from node %T", f)
}

func expandStars(items []sqlast.SelectItem, sc *Schema) ([]sqlast.SelectItem, error) {
	out := make([]sqlast.SelectItem, 0, len(items))
	for _, it := range items {
		if !it.Star {
			out = append(out, it)
			continue
		}
		for _, name := range sc.Names {
			ref := colRefFor(name)
			out = append(out, sqlast.SelectItem{Expr: ref, Alias: name})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("engine: empty select list")
	}
	return out, nil
}

// colRefFor rebuilds a ColRef from a schema name, restoring the
// "alias.VALUE" qualification of flatten pseudo-columns.
func colRefFor(name string) *sqlast.ColRef {
	if i := strings.LastIndex(name, "."); i > 0 {
		suffix := name[i+1:]
		if suffix == "VALUE" || suffix == "INDEX" {
			return &sqlast.ColRef{Table: name[:i], Name: suffix}
		}
	}
	return &sqlast.ColRef{Name: name}
}

func containsAggregate(e sqlast.Expr) bool {
	found := false
	walkExpr(e, func(n sqlast.Expr) bool {
		if fc, ok := n.(*sqlast.FuncCall); ok && isAggregateName(fc.Name) {
			found = true
			return false
		}
		return true
	})
	return found
}

// walkExpr visits an expression tree pre-order while fn returns true.
func walkExpr(e sqlast.Expr, fn func(sqlast.Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *sqlast.FuncCall:
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
		for _, o := range x.WithinOrder {
			walkExpr(o.Expr, fn)
		}
	case *sqlast.Binary:
		walkExpr(x.Left, fn)
		walkExpr(x.Right, fn)
	case *sqlast.Unary:
		walkExpr(x.Operand, fn)
	case *sqlast.IsNull:
		walkExpr(x.Operand, fn)
	case *sqlast.CaseWhen:
		for _, w := range x.Whens {
			walkExpr(w.Cond, fn)
			walkExpr(w.Result, fn)
		}
		walkExpr(x.Else, fn)
	case *sqlast.Cast:
		walkExpr(x.Operand, fn)
	}
}

// substituteAliases replaces unqualified column references that name a
// select-list alias with the alias's defining expression, leaving everything
// else untouched.
func substituteAliases(e sqlast.Expr, defs map[string]sqlast.Expr) sqlast.Expr {
	switch x := e.(type) {
	case *sqlast.ColRef:
		if x.Table == "" {
			if def, ok := defs[x.Name]; ok {
				return def
			}
		}
		return x
	case *sqlast.FuncCall:
		args := make([]sqlast.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = substituteAliases(a, defs)
		}
		return &sqlast.FuncCall{Name: x.Name, Args: args, Distinct: x.Distinct, WithinOrder: x.WithinOrder}
	case *sqlast.Binary:
		return &sqlast.Binary{Op: x.Op, Left: substituteAliases(x.Left, defs), Right: substituteAliases(x.Right, defs)}
	case *sqlast.Unary:
		return &sqlast.Unary{Op: x.Op, Operand: substituteAliases(x.Operand, defs)}
	case *sqlast.IsNull:
		return &sqlast.IsNull{Operand: substituteAliases(x.Operand, defs), Negate: x.Negate}
	case *sqlast.CaseWhen:
		out := &sqlast.CaseWhen{}
		for _, w := range x.Whens {
			out.Whens = append(out.Whens, sqlast.WhenClause{
				Cond:   substituteAliases(w.Cond, defs),
				Result: substituteAliases(w.Result, defs),
			})
		}
		if x.Else != nil {
			out.Else = substituteAliases(x.Else, defs)
		}
		return out
	case *sqlast.Cast:
		return &sqlast.Cast{Operand: substituteAliases(x.Operand, defs), Type: x.Type}
	}
	return e
}

// aggRewriter replaces aggregate calls and group-by expressions inside
// post-aggregation expressions with references to the AggregateNode's output
// columns, registering each distinct aggregate once.
type aggRewriter struct {
	agg *AggregateNode
}

func (rw *aggRewriter) rewrite(e sqlast.Expr) (sqlast.Expr, error) {
	// Whole-expression match against a GROUP BY key.
	for i, g := range rw.agg.GroupBy {
		if exprEqual(e, g) {
			return sqlast.C(rw.agg.GroupNames[i]), nil
		}
	}
	switch x := e.(type) {
	case *sqlast.FuncCall:
		if isAggregateName(x.Name) {
			return rw.registerAgg(x)
		}
		args := make([]sqlast.Expr, len(x.Args))
		for i, a := range x.Args {
			na, err := rw.rewrite(a)
			if err != nil {
				return nil, err
			}
			args[i] = na
		}
		return &sqlast.FuncCall{Name: x.Name, Args: args, Distinct: x.Distinct, WithinOrder: x.WithinOrder}, nil
	case *sqlast.Binary:
		l, err := rw.rewrite(x.Left)
		if err != nil {
			return nil, err
		}
		r, err := rw.rewrite(x.Right)
		if err != nil {
			return nil, err
		}
		return &sqlast.Binary{Op: x.Op, Left: l, Right: r}, nil
	case *sqlast.Unary:
		o, err := rw.rewrite(x.Operand)
		if err != nil {
			return nil, err
		}
		return &sqlast.Unary{Op: x.Op, Operand: o}, nil
	case *sqlast.IsNull:
		o, err := rw.rewrite(x.Operand)
		if err != nil {
			return nil, err
		}
		return &sqlast.IsNull{Operand: o, Negate: x.Negate}, nil
	case *sqlast.CaseWhen:
		out := &sqlast.CaseWhen{}
		for _, w := range x.Whens {
			c, err := rw.rewrite(w.Cond)
			if err != nil {
				return nil, err
			}
			r, err := rw.rewrite(w.Result)
			if err != nil {
				return nil, err
			}
			out.Whens = append(out.Whens, sqlast.WhenClause{Cond: c, Result: r})
		}
		if x.Else != nil {
			e2, err := rw.rewrite(x.Else)
			if err != nil {
				return nil, err
			}
			out.Else = e2
		}
		return out, nil
	case *sqlast.Cast:
		o, err := rw.rewrite(x.Operand)
		if err != nil {
			return nil, err
		}
		return &sqlast.Cast{Operand: o, Type: x.Type}, nil
	case *sqlast.Lit:
		return x, nil
	case *sqlast.ColRef:
		return nil, fmt.Errorf("engine: column %q must appear in GROUP BY or inside an aggregate", sqlast.RenderExpr(x))
	}
	return e, nil
}

func (rw *aggRewriter) registerAgg(call *sqlast.FuncCall) (sqlast.Expr, error) {
	spec := AggSpec{Name: strings.ToUpper(call.Name), Distinct: call.Distinct, OrderBy: call.WithinOrder}
	switch len(call.Args) {
	case 0:
		return nil, fmt.Errorf("engine: %s requires an argument", spec.Name)
	case 1:
		if _, ok := call.Args[0].(*sqlast.Star); ok {
			if spec.Name != "COUNT" {
				return nil, fmt.Errorf("engine: only COUNT accepts '*'")
			}
			spec.Star = true
		} else {
			spec.Arg = call.Args[0]
		}
	default:
		return nil, fmt.Errorf("engine: %s accepts exactly one argument", spec.Name)
	}
	// Reuse identical aggregates.
	key := renderAggSpec(spec)
	for i, existing := range rw.agg.Aggs {
		if renderAggSpec(existing) == key {
			return sqlast.C(rw.agg.AggNames[i]), nil
		}
	}
	name := fmt.Sprintf("__a%d", len(rw.agg.Aggs))
	rw.agg.Aggs = append(rw.agg.Aggs, spec)
	rw.agg.AggNames = append(rw.agg.AggNames, name)
	return sqlast.C(name), nil
}

func renderAggSpec(s AggSpec) string {
	var b strings.Builder
	b.WriteString(s.Name)
	if s.Distinct {
		b.WriteString(" DISTINCT")
	}
	if s.Star {
		b.WriteString(" *")
	}
	if s.Arg != nil {
		b.WriteString(" ")
		b.WriteString(sqlast.RenderExpr(s.Arg))
	}
	for _, o := range s.OrderBy {
		b.WriteString(" O:")
		b.WriteString(sqlast.RenderExpr(o.Expr))
		if o.Desc {
			b.WriteString(" DESC")
		}
	}
	return b.String()
}

// exprEqual compares expressions structurally via their rendering.
func exprEqual(a, b sqlast.Expr) bool {
	if a == nil || b == nil {
		return a == b
	}
	return sqlast.RenderExpr(a) == sqlast.RenderExpr(b)
}

// exprsResolve reports whether every order key compiles against the schema.
func exprsResolve(sc *Schema, keys []sqlast.OrderItem) bool {
	for _, k := range keys {
		if !exprResolves(sc, k.Expr) {
			return false
		}
	}
	return true
}

func exprResolves(sc *Schema, e sqlast.Expr) bool {
	ok := true
	walkExpr(e, func(n sqlast.Expr) bool {
		if cr, isRef := n.(*sqlast.ColRef); isRef {
			name := cr.Name
			if cr.Table != "" {
				name = cr.Table + "." + cr.Name
			}
			if _, found := sc.Lookup(name); !found {
				ok = false
				return false
			}
		}
		return true
	})
	return ok
}
