package engine

import "sync"

// Memory governance. One memAccountant per query charges the state every
// pipeline breaker retains — pre-aggregation tables, the join build side,
// buffered sort input — against the engine's WithMemLimit budget. Charging
// is deliberately conservative: operators charge the deep byte size of the
// rows they retain (an upper bound on what the tables built from those rows
// hold), so a query never under-reports. Crossing the limit does not fail
// the query; it flips the charging operator into its spill path (spill.go),
// which is byte-identical to the in-memory path at any trigger point — the
// accountant only decides *when* operators spill, never *what* they output.
type memAccountant struct {
	limit int64 // 0 = unlimited per-query budget
	// pool, when set, is the server-wide Governor memory pool this query
	// also draws from: every charge is mirrored into the pool, and pool
	// pressure triggers spills exactly like the per-query limit.
	pool       *Governor
	mu         sync.Mutex
	used       int64
	peak       int64
	spills     int64
	spillBytes int64
}

func newMemAccountant(limit int64) *memAccountant {
	if limit < 0 {
		limit = 0
	}
	return &memAccountant{limit: limit}
}

// enabled reports whether any limit — per-query or pool — is in force. With
// neither, operators skip charging entirely and the unlimited path stays
// zero-overhead.
func (a *memAccountant) enabled() bool { return a != nil && (a.limit > 0 || a.pool != nil) }

// charge adds n retained bytes and reports whether the query is now over
// budget — its own limit or the shared pool's, whichever trips first. Safe
// for concurrent use (parallel breaker workers share one accountant).
func (a *memAccountant) charge(n int64) bool {
	if !a.enabled() || n == 0 {
		return false
	}
	a.mu.Lock()
	a.used += n
	if a.used > a.peak {
		a.peak = a.used
	}
	over := a.limit > 0 && a.used > a.limit
	a.mu.Unlock()
	if !a.pool.reserve(n) {
		over = true
	}
	return over
}

// release returns n previously charged bytes to the budget (and the pool).
func (a *memAccountant) release(n int64) {
	if !a.enabled() || n == 0 {
		return
	}
	a.mu.Lock()
	a.used -= n
	if a.used < 0 {
		a.used = 0
	}
	a.mu.Unlock()
	a.pool.releaseMem(n)
}

// drain returns any residual charged bytes to the shared pool after the
// query's iterators have closed — a backstop so an operator that died
// without releasing can never leak pool capacity across queries.
func (a *memAccountant) drain() {
	if a == nil || a.pool == nil {
		return
	}
	a.mu.Lock()
	n := a.used
	a.used = 0
	a.mu.Unlock()
	if n > 0 {
		a.pool.releaseMem(n)
	}
}

// noteSpill records one spill of b on-disk bytes.
func (a *memAccountant) noteSpill(b int64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.spills++
	a.spillBytes += b
	a.mu.Unlock()
}

// snapshot returns (peak, spills, spillBytes) for the metrics copy-out.
func (a *memAccountant) snapshot() (int64, int64, int64) {
	if a == nil {
		return 0, 0, 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak, a.spills, a.spillBytes
}

// opMem is one operator's view of the shared accountant: it tracks what this
// operator charged (for release on spill or Close) and mirrors peak/spill
// counts into the operator's EXPLAIN ANALYZE stats slot.
type opMem struct {
	ctx     *execContext
	st      *OpStats
	prog    *opProgress
	charged int64
}

func (c *execContext) opMemFor(n Node, st *OpStats) *opMem {
	return &opMem{ctx: c, st: st, prog: c.progFor(n)}
}

// enabled reports whether this query runs under a memory limit.
func (m *opMem) enabled() bool { return m.ctx.acct.enabled() }

// charge records n retained bytes against the query budget and reports
// whether the operator should spill.
func (m *opMem) charge(n int64) bool {
	over := m.ctx.acct.charge(n)
	m.charged += n
	m.prog.addMem(n)
	if m.st != nil {
		m.ctx.mu.Lock()
		if m.st.MemPeakBytes < m.charged {
			m.st.MemPeakBytes = m.charged
		}
		m.st.MemLimitBytes = m.ctx.acct.limit
		m.ctx.mu.Unlock()
	}
	return over
}

// releaseAll returns everything this operator still holds; called when the
// retained state moves to disk or the operator closes.
func (m *opMem) releaseAll() {
	m.ctx.acct.release(m.charged)
	m.prog.addMem(-m.charged)
	m.charged = 0
}

// noteSpill records one spill of b on-disk bytes against the query and the
// operator's stats slot.
func (m *opMem) noteSpill(b int64) {
	m.ctx.acct.noteSpill(b)
	if m.st != nil {
		m.ctx.mu.Lock()
		m.st.Spills++
		m.st.SpillBytes += b
		m.ctx.mu.Unlock()
	}
}
