package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"jsonpark/internal/storage"
	"jsonpark/internal/variant"
	"jsonpark/internal/vector"
)

// Parallel pipeline breakers. The morsel-driven scan of PR 2 parallelizes
// the streaming half of a pipeline; this file parallelizes the blocking
// half — the hash-aggregation build, the hash-join build and the sort —
// while keeping every output byte identical to the sequential operators.
// The ordering argument each one rests on is spelled out at its
// implementation; physical.go decides which plans qualify, planck.go
// certifies the contracts.

// Minimum input sizes below which the parallel phases fall back to the
// sequential code path: worker startup and merge bookkeeping cost more than
// they save on small inputs.
const (
	minParallelBuildRows = 256
	minParallelSortRows  = 1024
)

// aggSpanFanout is the number of phase-1 claims per aggregation worker. Each
// claim is a contiguous span of storage partitions sharing one local table:
// contiguity keeps the ordering proof (span-index order = input row order),
// while spanning several partitions amortizes the per-table group-insert
// cost — one table per storage partition degenerates into insert-per-row
// whenever partitions hold fewer rows than the group cardinality. A few
// spans per worker keeps claims balanced without shrinking the tables much.
const aggSpanFanout = 2

// bucketOfKey hashes a canonical binary group key onto one of parts
// disjoint merge partitions (FNV-1a).
func bucketOfKey(key []byte, parts int) int32 {
	if parts <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return int32(h % uint64(parts))
}

// bucketGroups returns the table's groups assigned to merge partition b, in
// insertion order. A single-bucket table holds everything in its global
// insertion order.
func (t *aggTable) bucketGroups(b int) []*aggGroup {
	if t.buckets > 1 {
		return t.byBucket[b]
	}
	return t.order
}

// staticBatches replays a pre-materialized batch list; the per-partition
// pipeline chains of the parallel aggregate source from it.
type staticBatches struct {
	batches []*vector.Batch
	pos     int
}

func (s *staticBatches) NextBatch() (*vector.Batch, error) {
	if s.pos >= len(s.batches) {
		return nil, nil
	}
	b := s.batches[s.pos]
	s.pos++
	return b, nil
}

func (s *staticBatches) Close() {}

// chainCounts accumulates one operator's row/batch counters inside one
// worker, flushed into the shared stats slot once at worker exit. Wall time
// is deliberately not metered on worker chains: the workers run
// concurrently, so their summed time is not wall time, and the parallel
// operator's own (driver-side) inclusive time already covers the phase.
type chainCounts struct {
	st      *OpStats
	rows    int64
	batches int64
	calls   int64
}

func (c *chainCounts) flush(ctx *execContext) {
	if c == nil || c.st == nil {
		return
	}
	ctx.mu.Lock()
	c.st.RowsOut += c.rows
	c.st.Batches += c.batches
	c.st.Calls += c.calls
	ctx.mu.Unlock()
}

// countIter meters rows/batches/calls into a worker-local chainCounts.
type countIter struct {
	in batchIter
	c  *chainCounts
}

func (ci *countIter) NextBatch() (*vector.Batch, error) {
	b, err := ci.in.NextBatch()
	ci.c.calls++
	if b != nil {
		ci.c.batches++
		ci.c.rows += int64(b.NumRows())
	}
	return b, err
}

func (ci *countIter) Close() { ci.in.Close() }

// --- two-phase partitioned hash aggregation ----------------------------------

// compiledStage is one pipeline stage's compiled expressions, owned by one
// worker (compiled expressions hold state) and shared across that worker's
// partitions.
type compiledStage struct {
	op      string
	filter  *FilterNode
	project *ProjectNode
	flatten *FlattenNode
	cond    vecFn
	fns     []vecFn
	alias   []int
	input   vecFn
	width   int
}

// compileStages compiles the Filter/Project/Flatten chain (execution order)
// for one worker.
func compileStages(ctx *execContext, stages []Node) ([]compiledStage, error) {
	out := make([]compiledStage, 0, len(stages))
	for _, n := range stages {
		op, _ := describeNode(n)
		switch x := n.(type) {
		case *FilterNode:
			cond, err := compileVec(ctx, x.Input.Schema(), x.Cond)
			if err != nil {
				return nil, err
			}
			out = append(out, compiledStage{op: op, filter: x, cond: cond})
		case *ProjectNode:
			fns, err := compileVecs(ctx, x.Input.Schema(), x.Exprs)
			if err != nil {
				return nil, err
			}
			out = append(out, compiledStage{op: op, project: x, fns: fns,
				alias: colRefIndexes(x.Input.Schema(), x.Exprs)})
		case *FlattenNode:
			input, err := compileVec(ctx, x.Input.Schema(), x.Expr)
			if err != nil {
				return nil, err
			}
			out = append(out, compiledStage{
				op: op, flatten: x, input: input,
				width: len(x.Input.Schema().Names),
			})
		default:
			return nil, fmt.Errorf("engine: node %T cannot run in a parallel aggregation pipeline", n)
		}
	}
	return out, nil
}

// prepareParallelAgg builds the two-phase partitioned hash aggregation.
// Compilation of every expression in the subtree happens here once so
// compile errors still surface at Prepare time; the workers recompile their
// own copies at run time (compiled expressions hold state).
func prepareParallelAgg(x *ParallelAggNode, ctx *execContext) (batchIter, error) {
	scan, stages, ok := pipelineStages(x.Input)
	if !ok {
		return nil, fmt.Errorf("engine: parallel aggregate over a non-pipelineable input (physicalize bug)")
	}
	colIdx := make([]int, len(scan.Columns))
	for i, c := range scan.Columns {
		idx := scan.Table.ColumnIndex(c)
		if idx < 0 {
			return nil, fmt.Errorf("engine: table %q has no column %q", scan.Table.Name, c)
		}
		colIdx[i] = idx
	}
	if scan.Filter != nil {
		if _, err := compileVec(ctx, scan.Schema(), scan.Filter); err != nil {
			return nil, err
		}
	}
	if _, err := compileStages(ctx, stages); err != nil {
		return nil, err
	}
	eval, err := compileAggEval(ctx, x.AggregateNode)
	if err != nil {
		return nil, err
	}
	return &paggIter{
		node: x, scan: scan, stages: stages, ctx: ctx,
		st: ctx.statsFor(x), eval: eval, colIdx: colIdx,
		width: len(x.Schema().Names),
		parts: ctx.pinSnapshot(scan.Table).Parts,
	}, nil
}

// paggIter runs the aggregation on first NextBatch:
//
//	phase 1 (local): workers claim contiguous spans of storage partitions
//	from an atomic counter, replay the stateless Filter/Project/Flatten
//	chain over each partition in ascending order, and fold the rows into a
//	span-local aggTable whose groups are also bucketed into MergeParts
//	disjoint hash partitions.
//
//	phase 2 (merge): workers claim hash buckets; within a bucket the local
//	tables fold together in span index order, which equals input row order
//	(spans are disjoint ascending partition ranges) — so MIN/MAX/COUNT
//	partials combine exactly, ARRAY_AGG partials concatenate in input
//	order, DISTINCT dedup sees first occurrences first, and ANY_VALUE
//	adopts the earliest span's value. The first table that carries a group
//	stamps it with (span index << 32 | local insertion seq); sorting the
//	merged groups by stamp is exactly the sequential first-seen output
//	order.
//
// Both phases run synchronously inside NextBatch and join their workers
// before returning, so Close has nothing to interrupt.
type paggIter struct {
	node   *ParallelAggNode
	scan   *ScanNode
	stages []Node
	ctx    *execContext
	st     *OpStats
	eval   *aggEval // driver-side copy (empty-input fallback only)
	colIdx []int
	width  int
	// parts is the table's partition set pinned at bind time (the query's
	// MVCC snapshot); the workers claim spans of it, never re-reading the
	// live table.
	parts []*storage.Partition
	out   *rowsIter
}

func (p *paggIter) NextBatch() (*vector.Batch, error) {
	if p.out == nil {
		rows, err := p.run()
		if err != nil {
			return nil, err
		}
		p.out = &rowsIter{rows: rows, width: p.width, size: p.ctx.batchSize}
	}
	return p.out.NextBatch()
}

func (p *paggIter) Close() {}

func (p *paggIter) run() ([][]variant.Value, error) {
	parts := p.parts
	spanCount := p.node.Pipelines * aggSpanFanout
	if spanCount > len(parts) {
		spanCount = len(parts)
	}
	if spanCount < 1 {
		spanCount = 1
	}
	spans := make([][2]int, 0, spanCount)
	chunk := (len(parts) + spanCount - 1) / spanCount
	for lo := 0; lo < len(parts); lo += chunk {
		hi := lo + chunk
		if hi > len(parts) {
			hi = len(parts)
		}
		spans = append(spans, [2]int{lo, hi})
	}
	workers := p.node.Pipelines
	if workers > len(spans) {
		workers = len(spans)
	}
	if workers < 1 {
		workers = 1
	}
	mergeParts := p.node.MergeParts
	if mergeParts < 1 {
		mergeParts = 1
	}

	// Pre-create every stats slot on the driver: statsFor mutates the stats
	// map and must not race with worker flushes.
	scanSt := p.ctx.statsFor(p.scan)
	stageSts := make([]*OpStats, len(p.stages))
	for i, s := range p.stages {
		stageSts[i] = p.ctx.statsFor(s)
	}
	p.ctx.addScanCounts(scanSt, len(parts), 0, 0)

	locals := make([]*aggTable, len(spans))
	spanRuns := make([][]*storage.SpillRun, len(spans))
	defer func() {
		for _, rs := range spanRuns {
			for _, r := range rs {
				r.Close()
			}
		}
	}()
	workerRows := make([]int64, workers)
	acct := p.ctx.acct
	// Shared operator-level accounting, updated atomically by the workers and
	// copied into the stats slot at the end.
	var opCharged, opPeak, opHeld int64
	var opSpills, opSpillBytes int64
	var spilledRows, spilledGroups int64
	// prog mirrors the held-bytes gauge into the live-progress slot so
	// /debug/queries shows the breaker's current memory while it runs.
	prog := p.ctx.progFor(p.node)
	defer func() {
		held := atomic.LoadInt64(&opHeld)
		acct.release(held)
		prog.addMem(-held)
	}()
	var claim int64
	var stop int32
	var errOnce sync.Once
	var firstErr error
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		atomic.StoreInt32(&stop, 1)
	}
	// checkCancel lets every worker loop abort within one morsel of a
	// cancelled query context.
	checkCancel := func() bool {
		if err := p.ctx.cancelled(); err != nil {
			fail(err)
			return true
		}
		return false
	}

	localStart := time.Now()
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			// Per-worker compilation: compiled expressions hold state
			// (reusable buffers), so nothing compiled is shared across
			// goroutines.
			eval, err := compileAggEval(p.ctx, p.node.AggregateNode)
			if err != nil {
				fail(err)
				return
			}
			var filter vecFn
			if p.scan.Filter != nil {
				filter, err = compileVec(p.ctx, p.scan.Schema(), p.scan.Filter)
				if err != nil {
					fail(err)
					return
				}
			}
			cs, err := compileStages(p.ctx, p.stages)
			if err != nil {
				fail(err)
				return
			}
			counts := p.newChainCounts(scanSt, stageSts)
			defer func() {
				for _, c := range counts {
					c.flush(p.ctx)
				}
			}()
			// spillSpan moves one span table's state to disk mid-stream; the
			// merge phase folds the runs back in (span, run) order.
			spillSpan := func(si int, table *aggTable, spanCharged *int64) (*aggTable, error) {
				run, serr := spillAggTable(table, "pagg")
				if serr != nil {
					return nil, serr
				}
				spanRuns[si] = append(spanRuns[si], run)
				acct.noteSpill(run.Bytes())
				atomic.AddInt64(&opSpills, 1)
				atomic.AddInt64(&opSpillBytes, run.Bytes())
				atomic.AddInt64(&spilledRows, table.rows)
				atomic.AddInt64(&spilledGroups, int64(len(table.order)))
				workerRows[w] += table.rows
				acct.release(*spanCharged)
				atomic.AddInt64(&opHeld, -*spanCharged)
				prog.addMem(-*spanCharged)
				*spanCharged = 0
				return newAggTable(eval.aggs, mergeParts), nil
			}
			for {
				if atomic.LoadInt32(&stop) != 0 || checkCancel() {
					return
				}
				si := int(atomic.AddInt64(&claim, 1) - 1)
				if si >= len(spans) {
					return
				}
				var spanBatches []*vector.Batch
				for i := spans[si][0]; i < spans[si][1]; i++ {
					if atomic.LoadInt32(&stop) != 0 || checkCancel() {
						return
					}
					part := parts[i]
					if partitionPruned(p.scan, part) {
						p.ctx.addScanCounts(scanSt, 0, 1, 0)
						continue
					}
					batches, bytes, err := scanPartition(p.ctx, part, p.colIdx, filter, p.ctx.batchSize)
					p.ctx.addScanCounts(scanSt, 0, 0, bytes)
					if err != nil {
						fail(err)
						return
					}
					spanBatches = append(spanBatches, batches...)
				}
				// One operator chain per span: the batches are already in
				// ascending partition order, so a single replay preserves
				// input row order.
				table := newAggTable(eval.aggs, mergeParts)
				var spanCharged int64
				it := p.instantiate(&staticBatches{batches: spanBatches}, cs, counts)
				for {
					b, berr := it.NextBatch()
					if berr != nil {
						it.Close()
						fail(berr)
						return
					}
					if b == nil {
						break
					}
					if aerr := eval.absorb(table, b); aerr != nil {
						it.Close()
						fail(aerr)
						return
					}
					if acct.enabled() {
						nb := activeRowsBytes(b)
						spanCharged += nb
						atomic.AddInt64(&opHeld, nb)
						prog.addMem(nb)
						cur := atomic.AddInt64(&opCharged, nb)
						for {
							pk := atomic.LoadInt64(&opPeak)
							if cur <= pk || atomic.CompareAndSwapInt64(&opPeak, pk, cur) {
								break
							}
						}
						if acct.charge(nb) {
							var serr error
							table, serr = spillSpan(si, table, &spanCharged)
							if serr != nil {
								it.Close()
								fail(serr)
								return
							}
						}
					}
				}
				it.Close()
				locals[si] = table
				workerRows[w] += table.rows
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	localWall := time.Since(localStart)

	// Compact the phase-1 output into merge sources: for each span, its spill
	// runs in spill (= input) order, then its final live table. Source index
	// order therefore equals input row order, so it serves as the stamp's
	// major key exactly as the table index did before spilling existed.
	type aggSource struct {
		run   *storage.SpillRun
		table *aggTable
	}
	var sources []aggSource
	var localRows, localGroups int64
	for si, t := range locals {
		for _, r := range spanRuns[si] {
			sources = append(sources, aggSource{run: r})
		}
		if t != nil && t.rows > 0 {
			sources = append(sources, aggSource{table: t})
			localRows += t.rows
			localGroups += int64(len(t.order))
		}
	}
	localRows += atomic.LoadInt64(&spilledRows)
	localGroups += atomic.LoadInt64(&spilledGroups)

	mergeStart := time.Now()
	merged := make([][]*aggGroup, mergeParts)
	mergeWorkers := workers
	if mergeWorkers > mergeParts {
		mergeWorkers = mergeParts
	}
	if mergeWorkers < 1 {
		mergeWorkers = 1
	}
	var bclaim int64
	var mwg sync.WaitGroup
	mwg.Add(mergeWorkers)
	for w := 0; w < mergeWorkers; w++ {
		go func() {
			defer mwg.Done()
			for {
				if atomic.LoadInt32(&stop) != 0 || checkCancel() {
					return
				}
				b := int(atomic.AddInt64(&bclaim, 1) - 1)
				if b >= mergeParts {
					return
				}
				seen := make(map[string]*aggGroup)
				var out []*aggGroup
				fold := func(srcIdx int, g *aggGroup) error {
					dst, ok := seen[g.key]
					if !ok {
						g.stamp = int64(srcIdx)<<32 | int64(g.seq)
						seen[g.key] = g
						out = append(out, g)
						return nil
					}
					for a := range dst.accs {
						if err := mergeAccumulators(dst.accs[a], g.accs[a]); err != nil {
							return err
						}
					}
					return nil
				}
				for srcIdx, src := range sources {
					if src.table != nil {
						for _, g := range src.table.bucketGroups(b) {
							if err := fold(srcIdx, g); err != nil {
								fail(err)
								return
							}
						}
						continue
					}
					// Each merge worker opens its own reader: SpillRun reads
					// go through ReadAt and are concurrency-safe.
					rr := src.run.NewReader()
					for {
						if atomic.LoadInt32(&stop) != 0 || checkCancel() {
							return
						}
						rec, err := rr.Next()
						if err != nil {
							fail(err)
							return
						}
						if rec == nil {
							break
						}
						g, err := decodeSpilledGroup(rec, p.eval.aggs, int32(b), mergeParts)
						if err != nil {
							fail(err)
							return
						}
						if g == nil {
							continue // other merge partition
						}
						if err := fold(srcIdx, g); err != nil {
							fail(err)
							return
						}
					}
				}
				merged[b] = out
			}
		}()
	}
	mwg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	total := 0
	for _, g := range merged {
		total += len(g)
	}
	all := make([]*aggGroup, 0, total)
	for _, g := range merged {
		all = append(all, g...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].stamp < all[j].stamp })

	// Global aggregation over an empty input yields one row, exactly like
	// the sequential operator.
	if len(p.eval.groupFns) == 0 && len(all) == 0 {
		t := newAggTable(p.eval.aggs, 1)
		t.insert(nil, nil)
		all = t.order
	}
	mergeWall := time.Since(mergeStart)

	if p.st != nil {
		var maxRows int64
		for _, r := range workerRows {
			if r > maxRows {
				maxRows = r
			}
		}
		p.ctx.mu.Lock()
		p.st.Pipelines = workers
		p.st.MergeParts = mergeParts
		p.st.LocalRows = localRows
		p.st.LocalGroups = localGroups
		p.st.MergedGroups = int64(len(all))
		p.st.MaxWorkerRows = maxRows
		p.st.LocalWallUS = localWall.Microseconds()
		p.st.MergeWallUS = mergeWall.Microseconds()
		if acct.enabled() {
			p.st.MemPeakBytes = atomic.LoadInt64(&opPeak)
			p.st.MemLimitBytes = acct.limit
			p.st.Spills = atomic.LoadInt64(&opSpills)
			p.st.SpillBytes = atomic.LoadInt64(&opSpillBytes)
		}
		p.ctx.mu.Unlock()
	}
	return emitGroupRows(all, p.eval.aggs), nil
}

// newChainCounts allocates the worker-local counters, index 0 for the scan
// and i+1 for stage i; nil slots when the query is not analyzed.
func (p *paggIter) newChainCounts(scanSt *OpStats, stageSts []*OpStats) []*chainCounts {
	counts := make([]*chainCounts, len(p.stages)+1)
	if p.ctx.stats == nil {
		return counts
	}
	counts[0] = &chainCounts{st: scanSt}
	for i := range p.stages {
		counts[i+1] = &chainCounts{st: stageSts[i]}
	}
	return counts
}

// instantiate assembles one partition's operator chain from the worker's
// compiled stages, with planck checking and count metering mirroring what
// prepare applies to the streaming pipeline.
func (p *paggIter) instantiate(src batchIter, cs []compiledStage, counts []*chainCounts) batchIter {
	it := src
	if p.ctx.planCheck {
		it = &checkIter{in: it, op: "Scan"}
	}
	if counts[0] != nil {
		it = &countIter{in: it, c: counts[0]}
	}
	for i, s := range cs {
		switch {
		case s.filter != nil:
			it = &filterIter{in: it, cond: s.cond}
		case s.project != nil:
			it = &projectIter{in: it, fns: s.fns, alias: s.alias}
		case s.flatten != nil:
			it = &flattenIter{
				in: it, input: s.input, outer: s.flatten.Outer, width: s.width,
				bld: vector.NewBuilder(s.width+2, p.ctx.batchSize),
			}
		}
		if p.ctx.planCheck {
			it = &checkIter{in: it, op: s.op}
		}
		if counts[i+1] != nil {
			it = &countIter{in: it, c: counts[i+1]}
		}
	}
	return it
}

// --- parallel hash-join build ------------------------------------------------

// encRef locates one encoded build key in its chunk's arena.
type encRef struct {
	row    int32
	lo, hi int32
	bucket int32
}

// encChunk is one worker's contiguous share of the build rows: a key arena
// plus the refs of the non-NULL-key rows, in row order.
type encChunk struct {
	arena []byte
	refs  []encRef
}

// buildParallel constructs the partitioned hash table in two phases:
//
//	phase A: workers take contiguous row chunks, evaluate the build keys
//	(each worker compiles its own copy — compiled expressions hold state,
//	and physicalize admitted only stateless keys) and encode them into a
//	per-chunk byte arena, bucketing each by hash.
//
//	phase B: workers claim buckets and build each bucket's map by walking
//	the chunks in index order. Chunks are contiguous ascending row ranges
//	and refs within a chunk are in row order, so every key's candidate
//	list comes out in build-input order — the property probe emission and
//	LEFT OUTER semantics observe.
func (j *joinIter) buildParallel(rows [][]variant.Value) error {
	parts := j.buildWorkers
	workers := j.buildWorkers
	if workers > len(rows) {
		workers = len(rows)
	}
	chunkLen := (len(rows) + workers - 1) / workers
	var spans [][2]int
	for lo := 0; lo < len(rows); lo += chunkLen {
		hi := lo + chunkLen
		if hi > len(rows) {
			hi = len(rows)
		}
		spans = append(spans, [2]int{lo, hi})
	}

	chunks := make([]encChunk, len(spans))
	var stop int32
	var errOnce sync.Once
	var firstErr error
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		atomic.StoreInt32(&stop, 1)
	}
	checkCancel := func() bool {
		if err := j.ectx.cancelled(); err != nil {
			fail(err)
			return true
		}
		return false
	}

	localStart := time.Now()
	var wg sync.WaitGroup
	wg.Add(len(spans))
	for si, span := range spans {
		go func(si, lo, hi int) {
			defer wg.Done()
			fns := make([]evalFn, len(j.rightKeyExprs))
			for i, k := range j.rightKeyExprs {
				fn, err := compileExpr(j.rightSchema, k)
				if err != nil {
					fail(err)
					return
				}
				fns[i] = fn
			}
			var arena []byte
			refs := make([]encRef, 0, hi-lo)
			for r := lo; r < hi; r++ {
				if atomic.LoadInt32(&stop) != 0 {
					return
				}
				if (r-lo)%256 == 0 && checkCancel() {
					return
				}
				start := len(arena)
				skip := false
				for _, fn := range fns {
					v, err := fn(rows[r])
					if err != nil {
						fail(err)
						return
					}
					if v.IsNull() {
						skip = true // NULL keys never match in equi-joins
						break
					}
					arena = v.AppendGroupKey(arena)
				}
				if skip {
					arena = arena[:start]
					continue
				}
				refs = append(refs, encRef{
					row: int32(r), lo: int32(start), hi: int32(len(arena)),
					bucket: bucketOfKey(arena[start:], parts),
				})
			}
			chunks[si] = encChunk{arena: arena, refs: refs}
		}(si, span[0], span[1])
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	localWall := time.Since(localStart)

	mergeStart := time.Now()
	j.parts = make([]map[string]*buildList, parts)
	var bclaim int64
	var mwg sync.WaitGroup
	mwg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer mwg.Done()
			for {
				if atomic.LoadInt32(&stop) != 0 || checkCancel() {
					return
				}
				b := int(atomic.AddInt64(&bclaim, 1) - 1)
				if b >= parts {
					return
				}
				m := make(map[string]*buildList)
				for _, c := range chunks {
					for _, ref := range c.refs {
						if int(ref.bucket) != b {
							continue
						}
						key := c.arena[ref.lo:ref.hi]
						e, ok := m[string(key)]
						if !ok {
							e = &buildList{}
							m[string(key)] = e
						}
						e.rows = append(e.rows, rows[ref.row])
					}
				}
				j.parts[b] = m
			}
		}()
	}
	mwg.Wait()
	if firstErr != nil {
		return firstErr
	}
	mergeWall := time.Since(mergeStart)

	if j.st != nil {
		var keys int64
		for _, m := range j.parts {
			keys += int64(len(m))
		}
		var maxChunk int64
		for _, s := range spans {
			if n := int64(s[1] - s[0]); n > maxChunk {
				maxChunk = n
			}
		}
		j.st.Pipelines = len(spans)
		j.st.MergeParts = parts
		j.st.LocalRows = int64(len(rows))
		j.st.MergedGroups = keys
		j.st.MaxWorkerRows = maxChunk
		j.st.LocalWallUS = localWall.Microseconds()
		j.st.MergeWallUS = mergeWall.Microseconds()
	}
	return nil
}

// --- parallel sort -----------------------------------------------------------

// parallelSortRefs sorts the ref slice with per-worker sorted runs joined by
// a stability-preserving multiway merge. Runs are contiguous ascending
// spans, each stably sorted in place; the merge picks the smallest head,
// breaking ties toward the earliest run — which holds the earliest input
// indices — so the result is exactly the global stable sort. less must be
// pure (the sort keys are pre-evaluated), which lets every worker share it.
// The driver-side merge loop polls the query context so a cancelled sort
// aborts promptly.
func parallelSortRefs(ctx *execContext, refs []sortRef, less func(a, b sortRef) bool, workers int, st *OpStats) ([]sortRef, error) {
	n := len(refs)
	if workers > n {
		workers = n
	}
	chunkLen := (n + workers - 1) / workers
	var runs [][]sortRef
	for lo := 0; lo < n; lo += chunkLen {
		hi := lo + chunkLen
		if hi > n {
			hi = n
		}
		runs = append(runs, refs[lo:hi:hi])
	}

	localStart := time.Now()
	var wg sync.WaitGroup
	wg.Add(len(runs))
	for _, run := range runs {
		go func(run []sortRef) {
			defer wg.Done()
			sort.SliceStable(run, func(a, b int) bool { return less(run[a], run[b]) })
		}(run)
	}
	wg.Wait()
	localWall := time.Since(localStart)

	mergeStart := time.Now()
	out := make([]sortRef, 0, n)
	idx := make([]int, len(runs))
	for len(out) < n {
		if len(out)%4096 == 0 {
			if err := ctx.cancelled(); err != nil {
				return nil, err
			}
		}
		best := -1
		for r := range runs {
			if idx[r] >= len(runs[r]) {
				continue
			}
			// Strict less: on ties the earliest run wins, preserving
			// stability across runs.
			if best < 0 || less(runs[r][idx[r]], runs[best][idx[best]]) {
				best = r
			}
		}
		out = append(out, runs[best][idx[best]])
		idx[best]++
	}
	mergeWall := time.Since(mergeStart)

	if st != nil {
		var maxRun int64
		for _, run := range runs {
			if int64(len(run)) > maxRun {
				maxRun = int64(len(run))
			}
		}
		st.Pipelines = len(runs)
		st.MergeParts = len(runs)
		st.LocalRows = int64(n)
		st.MaxWorkerRows = maxRun
		st.LocalWallUS = localWall.Microseconds()
		st.MergeWallUS = mergeWall.Microseconds()
	}
	return out, nil
}
