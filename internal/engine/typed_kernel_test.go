package engine

import (
	"fmt"
	"strings"
	"testing"

	"jsonpark/internal/variant"
)

// typedKernelEngine loads a table whose columns hit every typed encoding:
// i int64 (with NULLs), f float64, s low-cardinality string (dictionary),
// u unique string (plain), b bool, and m a nested object (variant). Small
// partitions force multiple chunks so kernels see partition boundaries.
func typedKernelEngine(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	e := New(opts...)
	tab, err := e.Catalog().CreateTable("tk", []string{"i", "f", "s", "u", "b", "m"})
	if err != nil {
		t.Fatal(err)
	}
	tab.SetTargetPartitionBytes(512)
	for k := 0; k < 120; k++ {
		row := []variant.Value{
			variant.Int(int64(k - 10)),
			variant.Float(float64(k) / 4.0),
			variant.String(fmt.Sprintf("tag%d", k%3)),
			variant.String(fmt.Sprintf("u%03d", k)),
			variant.Bool(k%2 == 0),
			variant.ObjectFromPairs("x", variant.Int(int64(k))),
		}
		if k%11 == 0 {
			row[0] = variant.Null
		}
		if k%13 == 0 {
			row[4] = variant.Null
		}
		if err := tab.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// typedKernelQueries exercise every kernel shape: comparisons col⊗lit in
// both orders, col⊗col (same and mixed numeric ranks, dict and plain
// strings), cross-rank constants, arithmetic with a left-hand literal (the
// operand-order regression), division's always-float contract, IS [NOT]
// NULL off the bitmap, and kernels under AND-restricted selections.
var typedKernelQueries = []string{
	`SELECT "i" FROM "tk" WHERE "i" > 50`,
	`SELECT "i" FROM "tk" WHERE "i" >= 50`,
	`SELECT "i" FROM "tk" WHERE "i" < 0`,
	`SELECT "i" FROM "tk" WHERE "i" <= 0`,
	`SELECT "i" FROM "tk" WHERE "i" = 42`,
	`SELECT "i" FROM "tk" WHERE "i" <> 42`,
	`SELECT "i" FROM "tk" WHERE 50 > "i"`,
	`SELECT "i" FROM "tk" WHERE "i" > 2.5`,
	`SELECT "f" FROM "tk" WHERE "f" > 14.25`,
	`SELECT "f" FROM "tk" WHERE 14.25 >= "f"`,
	`SELECT "u" FROM "tk" WHERE "s" = 'tag1'`,
	`SELECT "u" FROM "tk" WHERE "s" <> 'tag2'`,
	`SELECT "u" FROM "tk" WHERE "u" < 'u010'`,
	`SELECT "u" FROM "tk" WHERE 'u100' <= "u"`,
	`SELECT "i" FROM "tk" WHERE "b" = TRUE`,
	`SELECT "i" FROM "tk" WHERE "b" <> FALSE`,
	`SELECT "i" FROM "tk" WHERE "i" < "f"`,
	`SELECT "i" FROM "tk" WHERE "i" = "i"`,
	`SELECT "i" FROM "tk" WHERE "s" = "u"`,
	`SELECT "i" FROM "tk" WHERE "i" < "s"`,
	`SELECT "i" FROM "tk" WHERE "s" < 5`,
	`SELECT "i" FROM "tk" WHERE "i" IS NULL`,
	`SELECT "i" FROM "tk" WHERE "i" IS NOT NULL`,
	`SELECT "b" FROM "tk" WHERE "b" IS NULL`,
	`SELECT "u" FROM "tk" WHERE "m" IS NOT NULL`,
	`SELECT "i" + 1 FROM "tk"`,
	`SELECT "i" - 2 FROM "tk"`,
	`SELECT "i" * 3 FROM "tk"`,
	`SELECT "i" / 2 FROM "tk"`,
	`SELECT "i" % 7 FROM "tk"`,
	`SELECT 10 - "i" FROM "tk"`,
	`SELECT 100 / "f" FROM "tk" WHERE "f" > 0`,
	`SELECT "i" + "f" FROM "tk"`,
	`SELECT "i" * "i" FROM "tk"`,
	`SELECT "f" - "i" FROM "tk"`,
	`SELECT "i" FROM "tk" WHERE "i" > 2 AND "f" < 20`,
	`SELECT "i" FROM "tk" WHERE "i" > 100 OR "s" = 'tag0'`,
	`SELECT SUM("i"), MIN("f"), MAX("u") FROM "tk"`,
	`SELECT "s", COUNT(*) FROM "tk" GROUP BY "s" ORDER BY "s"`,
}

// TestTypedKernelParity is the typed-vs-variant oracle: every query must
// render byte-identically with typed shredding on (kernels live), off
// (pure variant path), and on with parallel morsel scans.
func TestTypedKernelParity(t *testing.T) {
	oracle := typedKernelEngine(t, WithTypedColumns(false), WithParallelism(1))
	cells := map[string]*Engine{
		"typed-seq":  typedKernelEngine(t, WithParallelism(1)),
		"typed-par4": typedKernelEngine(t, WithParallelism(4)),
		"typed-bs7":  typedKernelEngine(t, WithParallelism(1), WithBatchSize(7)),
	}
	for _, q := range typedKernelQueries {
		want := renderRows(mustQuery(t, oracle, q))
		for name, e := range cells {
			got := renderRows(mustQuery(t, e, q))
			if got != want {
				t.Errorf("[%s] %s\nvariant oracle:\n%s\ntyped:\n%s", name, q, want, got)
			}
		}
	}
}

// TestTypedKernelErrorParity: runtime errors (integer division/mod by
// zero) must carry the exact variant-path message through the typed path.
func TestTypedKernelErrorParity(t *testing.T) {
	variantEng := typedKernelEngine(t, WithTypedColumns(false))
	typedEng := typedKernelEngine(t)
	for _, q := range []string{
		`SELECT "i" / 0 FROM "tk"`,
		`SELECT "i" % 0 FROM "tk"`,
		`SELECT 5 % ("i" - "i") FROM "tk"`,
	} {
		_, verr := variantEng.Query(q)
		_, terr := typedEng.Query(q)
		if verr == nil || terr == nil {
			t.Fatalf("%s: variant err=%v typed err=%v (want both non-nil)", q, verr, terr)
		}
		if verr.Error() != terr.Error() {
			t.Errorf("%s: error mismatch\nvariant: %v\ntyped:   %v", q, verr, terr)
		}
	}
	// Float division by zero is NOT an error on either path.
	for _, e := range []*Engine{variantEng, typedEng} {
		if _, err := e.Query(`SELECT "f" / 0 FROM "tk" LIMIT 1`); err != nil {
			t.Errorf("float div by zero should not error: %v", err)
		}
	}
}

// TestTypedKernelMetrics checks the typed/fallback accounting: a pushed-down
// comparison runs typed (TypedCols > 0, no fallback), while grouping by a
// typed column materializes it through the ColRef expression
// (FallbackCols > 0) — plain projection does NOT, since projectIter passes
// typed views through untouched. In-memory tables never read from disk.
func TestTypedKernelMetrics(t *testing.T) {
	e := typedKernelEngine(t, WithParallelism(1))
	r := mustQuery(t, e, `SELECT COUNT(*) FROM "tk" WHERE "i" > 50`)
	if r.Metrics.TypedCols == 0 {
		t.Errorf("comparison over a typed column reported TypedCols = 0")
	}
	if r.Metrics.DiskReads != 0 {
		t.Errorf("in-memory scan reported DiskReads = %d", r.Metrics.DiskReads)
	}

	r = mustQuery(t, e, `SELECT "u" FROM "tk" WHERE "i" > 100`)
	if r.Metrics.FallbackCols != 0 {
		t.Errorf("pass-through projection reported FallbackCols = %d, want 0", r.Metrics.FallbackCols)
	}

	r = mustQuery(t, e, `SELECT "u", COUNT(*) FROM "tk" GROUP BY "u"`)
	if r.Metrics.FallbackCols == 0 {
		t.Errorf("grouping by a typed column reported FallbackCols = 0")
	}

	off := typedKernelEngine(t, WithTypedColumns(false))
	r = mustQuery(t, off, `SELECT COUNT(*) FROM "tk" WHERE "i" > 50`)
	if r.Metrics.TypedCols != 0 || r.Metrics.FallbackCols != 0 {
		t.Errorf("typed-off engine reported typed=%d fallback=%d",
			r.Metrics.TypedCols, r.Metrics.FallbackCols)
	}
}

// TestTypedStorageAnalyzeClause: EXPLAIN ANALYZE's root carries the
// query-global storage[...] clause when the typed path was exercised.
func TestTypedStorageAnalyzeClause(t *testing.T) {
	e := typedKernelEngine(t)
	p, err := e.PrepareOpts(`SELECT COUNT(*) FROM "tk" WHERE "i" > 50`, PrepareOptions{Analyze: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	ps := p.PlanStats()
	if ps == nil || ps.TypedCols == 0 {
		t.Fatalf("PlanStats root missing typed counters: %+v", ps)
	}
	if !strings.Contains(ps.Render(), "storage[typed=") {
		t.Errorf("Render lacks storage clause:\n%s", ps.Render())
	}
}

// TestEngineDataDirRestart: a WithDataDir engine's tables survive a
// restart; the first query cold-loads partitions (DiskReads > 0), repeat
// queries serve from memory, and rows come back byte-identical.
func TestEngineDataDirRestart(t *testing.T) {
	dir := t.TempDir()
	e1 := typedKernelEngine(t, WithDataDir(dir))
	want := renderRows(mustQuery(t, e1, `SELECT * FROM "tk" ORDER BY "u"`))
	if err := e1.Catalog().Flush(); err != nil {
		t.Fatal(err)
	}

	e2 := New(WithDataDir(dir))
	r, err := e2.Query(`SELECT * FROM "tk" ORDER BY "u"`)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderRows(r); got != want {
		t.Errorf("restarted rows differ\nwant:\n%s\ngot:\n%s", want, got)
	}
	if r.Metrics.DiskReads == 0 {
		t.Errorf("restarted scan reported DiskReads = 0")
	}
	r2 := mustQuery(t, e2, `SELECT * FROM "tk" ORDER BY "u"`)
	if r2.Metrics.DiskReads != 0 {
		t.Errorf("second scan re-read %d partitions from disk", r2.Metrics.DiskReads)
	}
	// Header zone maps prune cold partitions without loading them.
	r3 := New(WithDataDir(dir))
	res3, err := r3.Query(`SELECT COUNT(*) FROM "tk" WHERE "i" > 1000000`)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Metrics.PartitionsPruned == 0 {
		t.Errorf("header zone maps pruned nothing")
	}
	if res3.Metrics.DiskReads != 0 {
		t.Errorf("pruned-out query still read %d partitions", res3.Metrics.DiskReads)
	}
}
