package engine

import (
	"strings"
	"testing"

	"jsonpark/internal/sqlast"
	"jsonpark/internal/sqlparse"
	"jsonpark/internal/variant"
)

func planOf(t *testing.T, e *Engine, sql string) string {
	t.Helper()
	plan, err := e.Explain(sql)
	if err != nil {
		t.Fatalf("Explain(%s): %v", sql, err)
	}
	return plan
}

func TestProjectMergingCollapsesWithColumnChains(t *testing.T) {
	e := testEngine(t)
	// Three stacked derived-column SELECTs must merge into few projections.
	sql := `SELECT "c" FROM (
		SELECT *, "b" + 1 AS "c" FROM (
			SELECT *, "a" * 2 AS "b" FROM (
				SELECT "o_id" AS "a" FROM "orders")))`
	plan := planOf(t, e, sql)
	if got := strings.Count(plan, "Project"); got > 2 {
		t.Errorf("expected merged projections, got %d:\n%s", got, plan)
	}
	r := mustQuery(t, e, sql+` ORDER BY "c" ASC`)
	if r.Rows[0][0].AsInt() != 1*2+1 {
		t.Errorf("rows = %v", r.Rows)
	}
}

func TestProjectMergingPreservesSeq8Uniqueness(t *testing.T) {
	e := testEngine(t)
	// SEQ8 referenced once may inline; values must stay unique per row.
	r := mustQuery(t, e, `SELECT "rid" + 100 AS "x" FROM (SELECT *, SEQ8() AS "rid" FROM "orders")`)
	seen := map[int64]bool{}
	for _, row := range r.Rows {
		v := row[0].AsInt()
		if seen[v] {
			t.Fatalf("duplicate seq value %d", v)
		}
		seen[v] = true
	}
}

func TestProjectMergingDoesNotDuplicateSeq8(t *testing.T) {
	e := testEngine(t)
	// SEQ8 referenced twice must NOT inline (two evaluations would yield
	// different values); x - y must be 0 on every row.
	r := mustQuery(t, e, `SELECT "rid" - "rid" AS "z" FROM (SELECT *, SEQ8() AS "rid" FROM "orders")`)
	for _, row := range r.Rows {
		if row[0].AsInt() != 0 {
			t.Fatalf("seq8 evaluated twice after merge: %v", row)
		}
	}
}

func TestProjectMergingKeepsExpensiveSharedDefs(t *testing.T) {
	e := testEngine(t)
	// A computed definition used twice stays materialized (one level kept),
	// and results remain correct.
	r := mustQuery(t, e, `SELECT "m" + "m" AS "s" FROM (SELECT *, "o_totalprice" * 2 AS "m" FROM "orders") ORDER BY "s" ASC`)
	if r.Rows[0][0].AsFloat() != 50000*4 {
		t.Errorf("rows = %v", r.Rows)
	}
}

func TestPushdownThroughFlattenStopsAtAliasRefs(t *testing.T) {
	e := testEngine(t)
	sql := `SELECT "EVENT" FROM (SELECT * FROM "adl"), LATERAL FLATTEN(INPUT => "Muon") AS "f"
		WHERE "EVENT" > 1 AND GET("f".VALUE, 'pt') > 10`
	plan := planOf(t, e, sql)
	// The EVENT conjunct sinks into the scan; the VALUE conjunct stays above
	// the flatten.
	if !strings.Contains(plan, `filter=("EVENT" > 1)`) {
		t.Errorf("EVENT predicate not pushed:\n%s", plan)
	}
	if !strings.Contains(plan, "Filter") {
		t.Errorf("flatten predicate should remain as filter:\n%s", plan)
	}
	r := mustQuery(t, e, sql)
	if len(r.Rows) != 2 { // events 3 and 4 have muons with pt>10
		t.Errorf("rows = %v", r.Rows)
	}
}

func TestPushdownIntoUnionBranches(t *testing.T) {
	e := testEngine(t)
	sql := `SELECT * FROM ((SELECT "o_id" AS "v" FROM "orders") UNION ALL (SELECT "o_custkey" AS "v" FROM "orders")) WHERE "v" > 5`
	r := mustQuery(t, e, sql)
	if len(r.Rows) != 4 { // custkeys 10, 10, 20, 30; no o_id exceeds 5
		t.Errorf("rows = %v", r.Rows)
	}
	plan := planOf(t, e, sql)
	if strings.Count(plan, "filter=") != 2 {
		t.Errorf("predicate should sink into both branches:\n%s", plan)
	}
}

func TestNoPushdownThroughLimit(t *testing.T) {
	e := testEngine(t)
	// Filtering after LIMIT differs from filtering before it.
	sql := `SELECT * FROM (SELECT "o_id" FROM "orders" ORDER BY "o_id" ASC LIMIT 2) WHERE "o_id" > 1`
	r := mustQuery(t, e, sql)
	if len(r.Rows) != 1 || r.Rows[0][0].AsInt() != 2 {
		t.Errorf("rows = %v", r.Rows)
	}
}

func TestLeftOuterJoinWhereOnLeftPushes(t *testing.T) {
	e := testEngine(t)
	sql := `SELECT "o_id", "c_name" FROM (SELECT * FROM "orders") LEFT OUTER JOIN (SELECT * FROM "customer") ON "o_custkey" = "c_custkey" WHERE "o_totalprice" > 100000 ORDER BY "o_id" ASC`
	r := mustQuery(t, e, sql)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if !r.Rows[1][1].IsNull() {
		t.Errorf("order 4 should keep NULL customer: %v", r.Rows[1])
	}
}

func TestSimplifyFoldsConstants(t *testing.T) {
	e := testEngine(t)
	plan := planOf(t, e, `SELECT "o_id" FROM "orders" WHERE 1 + 1 = 2 AND "o_id" > 0`)
	if strings.Contains(plan, "1 + 1") {
		t.Errorf("constant arithmetic not folded:\n%s", plan)
	}
	r := mustQuery(t, e, `SELECT "o_id" FROM "orders" WHERE 1 = 2`)
	if len(r.Rows) != 0 {
		t.Errorf("contradiction returned rows: %v", r.Rows)
	}
}

func TestGetArrayConstructFolding(t *testing.T) {
	e := testEngine(t)
	r := mustQuery(t, e, `SELECT GET(ARRAY_CONSTRUCT("o_id", "o_custkey"), 1) AS "x" FROM "orders" ORDER BY "x" ASC LIMIT 1`)
	if r.Rows[0][0].AsInt() != 10 {
		t.Errorf("rows = %v", r.Rows)
	}
	// Out-of-range index folds to NULL.
	r = mustQuery(t, e, `SELECT GET(ARRAY_CONSTRUCT("o_id"), 5) AS "x" FROM "orders" LIMIT 1`)
	if !r.Rows[0][0].IsNull() {
		t.Errorf("rows = %v", r.Rows)
	}
}

func TestPrunePredicateFromNestedGet(t *testing.T) {
	e := New()
	tab, err := e.Catalog().CreateTable("t", []string{"v"})
	if err != nil {
		t.Fatal(err)
	}
	tab.SetTargetPartitionBytes(128)
	for i := 0; i < 64; i++ {
		obj := variant.ObjectFromPairs("a", variant.ObjectFromPairs("b", variant.Int(int64(i))))
		if err := tab.Append([]variant.Value{obj}); err != nil {
			t.Fatal(err)
		}
	}
	r := mustQuery(t, e, `SELECT "v" FROM "t" WHERE GET(GET("v", 'a'), 'b') >= 60`)
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Metrics.PartitionsPruned == 0 {
		t.Error("nested GET path should derive a zone-map prune predicate")
	}
}

func TestToPrunePredicateShapes(t *testing.T) {
	mk := func(sql string) sqlast.Expr {
		q, err := sqlparse.Parse("SELECT * FROM t WHERE " + sql)
		if err != nil {
			t.Fatal(err)
		}
		return q.(*sqlast.Select).Where
	}
	cases := []struct {
		cond string
		ok   bool
		path string
	}{
		{`"c" > 5`, true, ""},
		{`5 < "c"`, true, ""},
		{`GET("c", 'x') = 1`, true, "x"},
		{`GET(GET("c", 'x'), 'y') <= 2`, true, "x.y"},
		{`"a" <> 1`, false, ""},
		{`"a" > "b"`, false, ""},
		{`GET("c", "k") = 1`, false, ""}, // non-literal key
		{`"a" = NULL`, false, ""},
	}
	for _, c := range cases {
		pred, ok := toPrunePredicate(mk(c.cond))
		if ok != c.ok {
			t.Errorf("toPrunePredicate(%s) ok = %v, want %v", c.cond, ok, c.ok)
			continue
		}
		if ok && pred.Path != c.path {
			t.Errorf("toPrunePredicate(%s) path = %q, want %q", c.cond, pred.Path, c.path)
		}
	}
}

func TestPruningKeepsAtLeastOneColumn(t *testing.T) {
	e := testEngine(t)
	// COUNT(*) needs no columns, but the scan must still produce rows.
	r := mustQuery(t, e, `SELECT COUNT(*) FROM "adl"`)
	if r.Rows[0][0].AsInt() != 4 {
		t.Errorf("count = %v", r.Rows[0][0])
	}
}

func TestUnusedAggregatesPruned(t *testing.T) {
	e := testEngine(t)
	// ANY_VALUE("Muon") is computed in the subquery but never consumed; the
	// scan must not read the Muon column.
	sql := `SELECT "n" FROM (SELECT "o" AS "o", ANY_VALUE("Muon") AS "m", COUNT(*) AS "n" FROM (SELECT "EVENT" AS "o", "Muon" FROM "adl") GROUP BY "o")`
	plan := planOf(t, e, sql)
	if strings.Contains(plan, "Muon") {
		t.Errorf("unused aggregate input not pruned:\n%s", plan)
	}
}
