// Package engine implements the embedded columnar SQL engine standing in
// for Snowflake: it parses SQL text (via sqlparse), builds and optimizes a
// logical plan (predicate pushdown, projection pruning, equi-join detection,
// struct-field folding, zone-map partition pruning), and executes it with
// row-iterator operators over micro-partitioned storage. Compilation and
// execution times, bytes scanned and partition-pruning counts are reported
// per query (§V-C/D/E of the paper).
package engine

import (
	"fmt"
	"math"
	"strings"

	"jsonpark/internal/variant"
)

// scalarFunc evaluates one scalar SQL function over already-evaluated
// arguments. NULL handling is function-specific; most propagate NULL.
type scalarFunc func(args []variant.Value) (variant.Value, error)

var scalarFuncs = map[string]scalarFunc{}

func init() {
	reg := func(name string, fn scalarFunc) { scalarFuncs[name] = fn }

	reg("GET", fnGet)
	reg("GET_PATH", fnGetPath)
	reg("OBJECT_CONSTRUCT", fnObjectConstruct)
	reg("ARRAY_CONSTRUCT", func(args []variant.Value) (variant.Value, error) {
		return variant.ArrayOf(append([]variant.Value(nil), args...)), nil
	})
	reg("ARRAY_SIZE", func(args []variant.Value) (variant.Value, error) {
		if err := arity("ARRAY_SIZE", args, 1); err != nil {
			return variant.Null, err
		}
		if args[0].Kind() != variant.KindArray {
			return variant.Null, nil
		}
		return variant.Int(int64(args[0].Len())), nil
	})
	reg("ARRAY_CAT", func(args []variant.Value) (variant.Value, error) {
		if err := arity("ARRAY_CAT", args, 2); err != nil {
			return variant.Null, err
		}
		if args[0].Kind() != variant.KindArray || args[1].Kind() != variant.KindArray {
			return variant.Null, nil
		}
		out := make([]variant.Value, 0, args[0].Len()+args[1].Len())
		out = append(out, args[0].AsArray()...)
		out = append(out, args[1].AsArray()...)
		return variant.ArrayOf(out), nil
	})
	reg("ARRAY_COMPACT", func(args []variant.Value) (variant.Value, error) {
		if err := arity("ARRAY_COMPACT", args, 1); err != nil {
			return variant.Null, err
		}
		if args[0].Kind() != variant.KindArray {
			return variant.Null, nil
		}
		var out []variant.Value
		for _, e := range args[0].AsArray() {
			if !e.IsNull() {
				out = append(out, e)
			}
		}
		return variant.ArrayOf(out), nil
	})
	reg("ARRAY_RANGE", func(args []variant.Value) (variant.Value, error) {
		// ARRAY_RANGE(lo, hi) returns [lo, hi) of integers, mirroring
		// Snowflake's ARRAY_GENERATE_RANGE.
		if err := arity("ARRAY_RANGE", args, 2); err != nil {
			return variant.Null, err
		}
		if args[0].IsNull() || args[1].IsNull() {
			return variant.Null, nil
		}
		lo, err := variant.ToInt(args[0])
		if err != nil {
			return variant.Null, err
		}
		hi, err := variant.ToInt(args[1])
		if err != nil {
			return variant.Null, err
		}
		if hi < lo {
			return variant.ArrayOf(nil), nil
		}
		if hi-lo > 1<<22 {
			return variant.Null, fmt.Errorf("engine: ARRAY_RANGE span too large (%d)", hi-lo)
		}
		out := make([]variant.Value, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, variant.Int(i))
		}
		return variant.ArrayOf(out), nil
	})
	reg("ARRAY_SLICE", func(args []variant.Value) (variant.Value, error) {
		if err := arity("ARRAY_SLICE", args, 3); err != nil {
			return variant.Null, err
		}
		if args[0].Kind() != variant.KindArray {
			return variant.Null, nil
		}
		from, err := variant.ToInt(args[1])
		if err != nil {
			return variant.Null, err
		}
		to, err := variant.ToInt(args[2])
		if err != nil {
			return variant.Null, err
		}
		arr := args[0].AsArray()
		if from < 0 {
			from = 0
		}
		if to > int64(len(arr)) {
			to = int64(len(arr))
		}
		if from >= to {
			return variant.ArrayOf(nil), nil
		}
		return variant.ArrayOf(arr[from:to]), nil
	})

	reg("ABS", numeric1("ABS", math.Abs))
	reg("SQRT", numeric1("SQRT", math.Sqrt))
	reg("EXP", numeric1("EXP", math.Exp))
	reg("LN", numeric1("LN", math.Log))
	reg("SIN", numeric1("SIN", math.Sin))
	reg("COS", numeric1("COS", math.Cos))
	reg("TAN", numeric1("TAN", math.Tan))
	reg("ASIN", numeric1("ASIN", math.Asin))
	reg("ACOS", numeric1("ACOS", math.Acos))
	reg("ATAN", numeric1("ATAN", math.Atan))
	reg("SINH", numeric1("SINH", math.Sinh))
	reg("COSH", numeric1("COSH", math.Cosh))
	reg("TANH", numeric1("TANH", math.Tanh))
	reg("ATAN2", numeric2("ATAN2", math.Atan2))
	reg("POWER", numeric2("POWER", math.Pow))
	reg("POW", numeric2("POW", math.Pow))
	reg("MOD", func(args []variant.Value) (variant.Value, error) {
		if err := arity("MOD", args, 2); err != nil {
			return variant.Null, err
		}
		return variant.Mod(args[0], args[1])
	})
	reg("FLOOR", numeric1Int("FLOOR", math.Floor))
	reg("CEIL", numeric1Int("CEIL", math.Ceil))
	reg("ROUND", numeric1Int("ROUND", math.Round))
	reg("TRUNC", numeric1Int("TRUNC", math.Trunc))
	reg("PI", func(args []variant.Value) (variant.Value, error) {
		if err := arity("PI", args, 0); err != nil {
			return variant.Null, err
		}
		return variant.Float(math.Pi), nil
	})
	reg("GREATEST", func(args []variant.Value) (variant.Value, error) {
		return extremum(args, 1)
	})
	reg("LEAST", func(args []variant.Value) (variant.Value, error) {
		return extremum(args, -1)
	})
	reg("COALESCE", func(args []variant.Value) (variant.Value, error) {
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return variant.Null, nil
	})
	reg("IFF", func(args []variant.Value) (variant.Value, error) {
		if err := arity("IFF", args, 3); err != nil {
			return variant.Null, err
		}
		if !args[0].IsNull() && args[0].Kind() == variant.KindBool && args[0].AsBool() {
			return args[1], nil
		}
		return args[2], nil
	})
	reg("NULLIF", func(args []variant.Value) (variant.Value, error) {
		if err := arity("NULLIF", args, 2); err != nil {
			return variant.Null, err
		}
		if variant.Equal(args[0], args[1]) {
			return variant.Null, nil
		}
		return args[0], nil
	})
	reg("EQUAL_NULL", func(args []variant.Value) (variant.Value, error) {
		if err := arity("EQUAL_NULL", args, 2); err != nil {
			return variant.Null, err
		}
		return variant.Bool(variant.Equal(args[0], args[1])), nil
	})
	reg("TO_DOUBLE", func(args []variant.Value) (variant.Value, error) {
		if err := arity("TO_DOUBLE", args, 1); err != nil {
			return variant.Null, err
		}
		if args[0].IsNull() {
			return variant.Null, nil
		}
		f, err := variant.ToFloat(args[0])
		if err != nil {
			return variant.Null, err
		}
		return variant.Float(f), nil
	})
	reg("TO_NUMBER", func(args []variant.Value) (variant.Value, error) {
		if err := arity("TO_NUMBER", args, 1); err != nil {
			return variant.Null, err
		}
		if args[0].IsNull() {
			return variant.Null, nil
		}
		i, err := variant.ToInt(args[0])
		if err != nil {
			return variant.Null, err
		}
		return variant.Int(i), nil
	})
	reg("TO_VARCHAR", func(args []variant.Value) (variant.Value, error) {
		if err := arity("TO_VARCHAR", args, 1); err != nil {
			return variant.Null, err
		}
		if args[0].IsNull() {
			return variant.Null, nil
		}
		if args[0].Kind() == variant.KindString {
			return args[0], nil
		}
		return variant.String(args[0].JSON()), nil
	})
	reg("CONCAT", func(args []variant.Value) (variant.Value, error) {
		var b strings.Builder
		for _, a := range args {
			if a.IsNull() {
				return variant.Null, nil
			}
			if a.Kind() == variant.KindString {
				b.WriteString(a.AsString())
			} else {
				b.WriteString(a.JSON())
			}
		}
		return variant.String(b.String()), nil
	})
	reg("TYPEOF", func(args []variant.Value) (variant.Value, error) {
		if err := arity("TYPEOF", args, 1); err != nil {
			return variant.Null, err
		}
		return variant.String(args[0].Kind().String()), nil
	})
	reg("IS_ARRAY", func(args []variant.Value) (variant.Value, error) {
		if err := arity("IS_ARRAY", args, 1); err != nil {
			return variant.Null, err
		}
		return variant.Bool(args[0].Kind() == variant.KindArray), nil
	})
	reg("SQUARE", func(args []variant.Value) (variant.Value, error) {
		if err := arity("SQUARE", args, 1); err != nil {
			return variant.Null, err
		}
		if args[0].IsNull() {
			return variant.Null, nil
		}
		f, err := variant.ToFloat(args[0])
		if err != nil {
			return variant.Null, err
		}
		return variant.Float(f * f), nil
	})
}

func arity(name string, args []variant.Value, n int) error {
	if len(args) != n {
		return fmt.Errorf("engine: %s expects %d arguments, got %d", name, n, len(args))
	}
	return nil
}

func numeric1(name string, fn func(float64) float64) scalarFunc {
	return func(args []variant.Value) (variant.Value, error) {
		if err := arity(name, args, 1); err != nil {
			return variant.Null, err
		}
		if args[0].IsNull() {
			return variant.Null, nil
		}
		f, err := variant.ToFloat(args[0])
		if err != nil {
			return variant.Null, fmt.Errorf("engine: %s: %w", name, err)
		}
		return variant.Float(fn(f)), nil
	}
}

// numeric1Int keeps integer inputs integral (FLOOR(7) = 7, not 7.0).
func numeric1Int(name string, fn func(float64) float64) scalarFunc {
	return func(args []variant.Value) (variant.Value, error) {
		if err := arity(name, args, 1); err != nil {
			return variant.Null, err
		}
		if args[0].IsNull() {
			return variant.Null, nil
		}
		if args[0].Kind() == variant.KindInt {
			return args[0], nil
		}
		f, err := variant.ToFloat(args[0])
		if err != nil {
			return variant.Null, fmt.Errorf("engine: %s: %w", name, err)
		}
		r := fn(f)
		if r == math.Trunc(r) && !math.IsInf(r, 0) {
			return variant.Int(int64(r)), nil
		}
		return variant.Float(r), nil
	}
}

func numeric2(name string, fn func(a, b float64) float64) scalarFunc {
	return func(args []variant.Value) (variant.Value, error) {
		if err := arity(name, args, 2); err != nil {
			return variant.Null, err
		}
		if args[0].IsNull() || args[1].IsNull() {
			return variant.Null, nil
		}
		x, err := variant.ToFloat(args[0])
		if err != nil {
			return variant.Null, fmt.Errorf("engine: %s: %w", name, err)
		}
		y, err := variant.ToFloat(args[1])
		if err != nil {
			return variant.Null, fmt.Errorf("engine: %s: %w", name, err)
		}
		return variant.Float(fn(x, y)), nil
	}
}

func extremum(args []variant.Value, dir int) (variant.Value, error) {
	if len(args) == 0 {
		return variant.Null, fmt.Errorf("engine: GREATEST/LEAST need at least one argument")
	}
	best := variant.Null
	for _, a := range args {
		if a.IsNull() {
			return variant.Null, nil // Snowflake: NULL argument yields NULL
		}
		if best.IsNull() || dir*variant.Compare(a, best) > 0 {
			best = a
		}
	}
	return best, nil
}

// fnGet implements Snowflake's GET: field access with a string key, element
// access with an integer index (0-based). Misses return NULL.
func fnGet(args []variant.Value) (variant.Value, error) {
	if err := arity("GET", args, 2); err != nil {
		return variant.Null, err
	}
	v, key := args[0], args[1]
	switch key.Kind() {
	case variant.KindString:
		return v.Field(key.AsString()), nil
	case variant.KindInt:
		return v.Index(int(key.AsInt())), nil
	case variant.KindFloat:
		return v.Index(int(key.AsFloat())), nil
	}
	return variant.Null, nil
}

// fnGetPath walks a dotted path: GET_PATH(v, 'a.b.c').
func fnGetPath(args []variant.Value) (variant.Value, error) {
	if err := arity("GET_PATH", args, 2); err != nil {
		return variant.Null, err
	}
	if args[1].Kind() != variant.KindString {
		return variant.Null, nil
	}
	v := args[0]
	for _, part := range strings.Split(args[1].AsString(), ".") {
		v = v.Field(part)
	}
	return v, nil
}

// fnObjectConstruct builds an object from alternating key/value arguments.
func fnObjectConstruct(args []variant.Value) (variant.Value, error) {
	if len(args)%2 != 0 {
		return variant.Null, fmt.Errorf("engine: OBJECT_CONSTRUCT expects an even number of arguments")
	}
	o := variant.NewObject()
	for i := 0; i < len(args); i += 2 {
		if args[i].Kind() != variant.KindString {
			return variant.Null, fmt.Errorf("engine: OBJECT_CONSTRUCT key %d is not a string", i/2)
		}
		o.Set(args[i].AsString(), args[i+1])
	}
	return variant.ObjectValue(o), nil
}

// Aggregate function names recognized by the planner.
var aggregateNames = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"ANY_VALUE": true, "ARRAY_AGG": true, "BOOLAND_AGG": true,
	"BOOLOR_AGG": true, "COUNT_IF": true, "MEDIAN": false,
}

func isAggregateName(name string) bool { return aggregateNames[strings.ToUpper(name)] }
