package engine

import (
	"strings"
	"testing"
	"time"
)

func mustAnalyze(t *testing.T, e *Engine, sql string) (*Result, *PlanStats) {
	t.Helper()
	res, plan, err := e.QueryAnalyze(sql)
	if err != nil {
		t.Fatalf("QueryAnalyze(%s): %v", sql, err)
	}
	if plan == nil {
		t.Fatalf("QueryAnalyze(%s): nil plan", sql)
	}
	return res, plan
}

func TestAnalyzeRootRowsMatchResult(t *testing.T) {
	e := testEngine(t)
	for _, sql := range []string{
		`SELECT "EVENT" FROM "adl" WHERE GET("MET", 'pt') > 20`,
		`SELECT "o_clerk", SUM("o_totalprice") AS t FROM "orders" GROUP BY "o_clerk"`,
		`SELECT * FROM "orders" ORDER BY "o_totalprice" DESC LIMIT 2`,
	} {
		res, plan := mustAnalyze(t, e, sql)
		if plan.RowsOut != int64(len(res.Rows)) {
			t.Errorf("%s: root rows_out=%d, result rows=%d", sql, plan.RowsOut, len(res.Rows))
		}
	}
}

func TestAnalyzeRowFlowIsConsistent(t *testing.T) {
	e := testEngine(t)
	_, plan := mustAnalyze(t, e,
		`SELECT "o_clerk", COUNT(*) AS n FROM "orders" WHERE "o_totalprice" > 60000 GROUP BY "o_clerk"`)
	plan.Walk(func(depth int, n *PlanStats) {
		var childSum int64
		for _, c := range n.Children {
			childSum += c.RowsOut
		}
		if n.RowsIn != childSum {
			t.Errorf("%s: rows_in=%d, sum(children rows_out)=%d", n.Op, n.RowsIn, childSum)
		}
		// Filter and Aggregate can only shrink their input.
		if (n.Op == "Filter" || n.Op == "Aggregate") && n.RowsOut > n.RowsIn {
			t.Errorf("%s: rows_out=%d > rows_in=%d", n.Op, n.RowsOut, n.RowsIn)
		}
	})
}

func TestAnalyzeSelfTimesSumWithinExecTime(t *testing.T) {
	e := testEngine(t)
	res, plan := mustAnalyze(t, e, `SELECT "EVENT" FROM "adl" WHERE GET("MET", 'pt') > 20`)
	var selfSum time.Duration
	plan.Walk(func(depth int, n *PlanStats) { selfSum += n.SelfTime() })
	// Self times partition the root's inclusive time (modulo µs truncation),
	// and the root iterator runs inside the measured execution window.
	if selfSum > plan.Time()+time.Millisecond {
		t.Errorf("sum(self)=%v exceeds root inclusive %v", selfSum, plan.Time())
	}
	if plan.Time() > res.Metrics.ExecTime+time.Millisecond {
		t.Errorf("root inclusive %v exceeds ExecTime %v", plan.Time(), res.Metrics.ExecTime)
	}
}

func TestAnalyzeScanAccounting(t *testing.T) {
	e := testEngine(t)
	_, plan := mustAnalyze(t, e, `SELECT "EVENT" FROM "adl"`)
	var scans int
	plan.Walk(func(depth int, n *PlanStats) {
		if n.Op != "Scan" {
			return
		}
		scans++
		if n.BytesScanned <= 0 {
			t.Errorf("scan bytes=%d", n.BytesScanned)
		}
		if n.PartitionsTotal <= 0 || n.Batches <= 0 {
			t.Errorf("scan partitions=%d batches=%d", n.PartitionsTotal, n.Batches)
		}
		if n.PartitionsPruned > n.PartitionsTotal {
			t.Errorf("pruned=%d > total=%d", n.PartitionsPruned, n.PartitionsTotal)
		}
	})
	if scans == 0 {
		t.Fatal("no Scan node in plan")
	}
}

func TestAnalyzeRenderShowsStats(t *testing.T) {
	e := testEngine(t)
	_, plan := mustAnalyze(t, e, `SELECT "EVENT" FROM "adl" WHERE GET("MET", 'pt') > 20`)
	out := plan.Render()
	for _, want := range []string{"Scan", "in=", "out=", "time=", "self=", "bytes=", "partitions="} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestAnalyzeOffHasNoPlan pins that the default path never pays for metering.
func TestAnalyzeOffHasNoPlan(t *testing.T) {
	e := testEngine(t)
	p, err := e.Prepare(`SELECT * FROM "orders"`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if p.PlanStats() != nil {
		t.Error("unanalyzed query returned plan stats")
	}
}
