package engine

// Partition-versioned result cache. A query's rows are fully determined by
// its compiled plan (fingerprint + knob set, the same planKey the plan cache
// uses) and the data it read — and under MVCC-by-partition-snapshot the data
// is identified exactly by the pinned (table, partition-set version) pairs
// the bind phase recorded. The cache therefore keys on the plan key and
// stores the pinned version vector with each entry: a lookup hits only when
// every pinned version matches, so an append (whose seal advances the
// table's version before the reader pins) misses precisely, with no
// TTLs and no whole-cache flushes.
//
// Invalidation is two-layered. Lazily, a lookup whose pinned versions differ
// from the entry's drops the superseded entry. Eagerly, the storage catalog's
// mutation hook (every seal, CreateTable, DropTable, SetDataDir) evicts
// exactly the entries depending on the changed table — "" meaning all —
// so stale rows never linger behind a version fence waiting for LRU
// pressure. Capacity is bounded twice: an entry cap and a byte budget
// measured over the stored rows' deep size.
//
// Rows are defensively copied on both insert and hit: variant.Values are
// immutable so sharing them is safe, but the row and row-list slices are
// caller-visible and must not alias cache state.

import (
	"container/list"
	"sort"
	"sync"
	"sync/atomic"

	"jsonpark/internal/variant"
)

// Result-cache defaults when enabled without explicit bounds.
const (
	defaultResultCacheEntries = 256
	defaultResultCacheBytes   = 64 << 20
)

// resultDep records one table the cached query read and the partition-set
// version pinned while computing it.
type resultDep struct {
	table   string
	version int64
}

type resultCacheEntry struct {
	key     planKey
	sql     string // fingerprint-collision guard, as in the plan cache
	deps    []resultDep
	columns []string
	rows    [][]variant.Value
	bytes   int64
}

// dependsOn reports whether the entry read the named table ("" matches every
// entry, including zero-table queries).
func (e *resultCacheEntry) dependsOn(table string) bool {
	if table == "" {
		return true
	}
	for _, d := range e.deps {
		if d.table == table {
			return true
		}
	}
	return false
}

func depsEqual(a, b []resultDep) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// resultCache is a bounded LRU of completed query results keyed on
// (plan key, pinned partition-set versions).
type resultCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	curBytes   int64
	entries    map[planKey]*list.Element
	lru        *list.List // front = most recently used

	hits          atomic.Int64
	misses        atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
}

func newResultCache(maxEntries int, maxBytes int64) *resultCache {
	return &resultCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		entries:    make(map[planKey]*list.Element),
		lru:        list.New(),
	}
}

// lookup returns a copy of the cached rows when an entry matches the key,
// the query text, and the caller's pinned version vector exactly. An entry
// with a stale version vector is dropped on the spot (version-advance
// invalidation observed lazily).
func (c *resultCache) lookup(key planKey, sql string, deps []resultDep) ([]string, [][]variant.Value, bool) {
	c.mu.Lock()
	el, ok := c.entries[key]
	if ok {
		ent := el.Value.(*resultCacheEntry)
		if ent.sql == sql && depsEqual(ent.deps, deps) {
			c.lru.MoveToFront(el)
			rows := copyRows(ent.rows)
			c.mu.Unlock()
			c.hits.Add(1)
			return ent.columns, rows, true
		}
		c.removeLocked(el)
		c.invalidations.Add(1)
	}
	c.mu.Unlock()
	c.misses.Add(1)
	return nil, nil, false
}

// insert stores one completed result, copying the rows. Entries larger than
// the whole byte budget are not cached.
func (c *resultCache) insert(key planKey, sql string, deps []resultDep, columns []string, rows [][]variant.Value) {
	bytes := rowsBytes(rows)
	c.mu.Lock()
	defer c.mu.Unlock()
	if bytes > c.maxBytes {
		return
	}
	if el, ok := c.entries[key]; ok {
		c.removeLocked(el)
	}
	ent := &resultCacheEntry{
		key: key, sql: sql,
		deps:    append([]resultDep(nil), deps...),
		columns: columns,
		rows:    copyRows(rows),
		bytes:   bytes,
	}
	c.entries[key] = c.lru.PushFront(ent)
	c.curBytes += bytes
	for c.lru.Len() > c.maxEntries || c.curBytes > c.maxBytes {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.removeLocked(back)
		c.evictions.Add(1)
	}
}

// invalidate evicts every entry depending on the named table; "" evicts all.
// Wired as the storage catalog's mutation hook, so it runs on every seal,
// CreateTable, DropTable and SetDataDir.
func (c *resultCache) invalidate(table string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.lru.Front(); el != nil; el = next {
		next = el.Next()
		if el.Value.(*resultCacheEntry).dependsOn(table) {
			c.removeLocked(el)
			c.invalidations.Add(1)
		}
	}
}

func (c *resultCache) removeLocked(el *list.Element) {
	ent := el.Value.(*resultCacheEntry)
	c.lru.Remove(el)
	delete(c.entries, ent.key)
	c.curBytes -= ent.bytes
}

// stats returns cumulative hits, misses, evictions (capacity), and
// invalidations (version advance), plus the current entry count and resident
// bytes.
func (c *resultCache) stats() (hits, misses, evictions, invalidations, entries, bytes int64) {
	if c == nil {
		return 0, 0, 0, 0, 0, 0
	}
	c.mu.Lock()
	entries = int64(c.lru.Len())
	bytes = c.curBytes
	c.mu.Unlock()
	return c.hits.Load(), c.misses.Load(), c.evictions.Load(), c.invalidations.Load(), entries, bytes
}

// ResultCacheStats reports the engine's result-cache counters: cumulative
// hits, misses, capacity evictions and version-advance invalidations, plus
// the current resident entries and bytes. All zeros when the cache is
// disabled.
func (e *Engine) ResultCacheStats() (hits, misses, evictions, invalidations, entries, bytes int64) {
	return e.resultCache.stats()
}

// snapshotDeps flattens the bind-time pinned snapshots into the cache's
// canonical (table, version) vector, sorted by table name.
func (c *execContext) snapshotDeps() []resultDep {
	deps := make([]resultDep, 0, len(c.snapshots))
	for t, s := range c.snapshots {
		deps = append(deps, resultDep{table: t.Name, version: s.Version})
	}
	sort.Slice(deps, func(i, j int) bool { return deps[i].table < deps[j].table })
	return deps
}

// copyRows clones the row list and each row; the variant values themselves
// are immutable and shared.
func copyRows(rows [][]variant.Value) [][]variant.Value {
	out := make([][]variant.Value, len(rows))
	for i, r := range rows {
		out[i] = append([]variant.Value(nil), r...)
	}
	return out
}

// rowsBytes is the byte-budget measure of one result: the deep size of every
// value plus slice overhead per row.
func rowsBytes(rows [][]variant.Value) int64 {
	var n int64
	for _, r := range rows {
		n += 48 // row slice header + bookkeeping
		for _, v := range r {
			n += v.DeepSizeBytes()
		}
	}
	return n
}
