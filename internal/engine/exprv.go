package engine

import (
	"fmt"
	"strings"

	"jsonpark/internal/sqlast"
	"jsonpark/internal/variant"
	"jsonpark/internal/vector"
)

// vecFn evaluates one compiled expression over a batch, returning a vector
// of results aligned with the batch's physical rows. Only the positions in
// the batch's selection are computed (and valid); the returned slice may
// alias a column of the input batch or a buffer owned by the closure that
// is overwritten on its next call, so callers must not mutate it and must
// copy anything they retain past the next evaluation.
type vecFn func(b *vector.Batch) ([]variant.Value, error)

// growBuf returns a length-n buffer, reusing buf's capacity when it fits.
// Stale values at inactive positions are fine: vecFn results are only
// defined at the batch's active positions.
func growBuf(buf []variant.Value, n int) []variant.Value {
	if cap(buf) < n {
		return make([]variant.Value, n)
	}
	return buf[:n]
}

// compileVec binds a SQL expression to a schema, producing a batch
// evaluator. It mirrors compileExpr case for case; lazily evaluated
// constructs (AND/OR/CASE) restrict the selection before evaluating their
// conditional operands, preserving the row-at-a-time short-circuit
// semantics (a division that the row engine never reached is not evaluated
// here either). ctx (nil-safe) receives the typed-kernel vs variant-fallback
// column-read counters; comparison, arithmetic and IS NULL shapes over
// column references get typed kernels (exprt.go) with the generic closure as
// their run-time fallback.
func compileVec(ctx *execContext, sc *Schema, e sqlast.Expr) (vecFn, error) {
	switch x := e.(type) {
	case *sqlast.Lit:
		v := x.Value
		var out []variant.Value
		return func(b *vector.Batch) ([]variant.Value, error) {
			out = growBuf(out, b.Len())
			b.ForEach(func(i int) { out[i] = v })
			return out, nil
		}, nil
	case *sqlast.ColRef:
		name := x.Name
		if x.Table != "" {
			name = x.Table + "." + x.Name
		}
		i, ok := sc.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("engine: unknown column %q (have %v)", name, sc.Names)
		}
		var out []variant.Value
		return func(b *vector.Batch) ([]variant.Value, error) {
			if b.Cols[i] == nil {
				if tc := b.TypedCol(i); tc != nil {
					// A typed column is leaving the typed fast path. Materialize
					// into the closure buffer — the vecFn contract lets the
					// output alias storage reused on the next call — rather
					// than through Column's per-batch cache, which would
					// allocate a fresh variant slice for every batch.
					ctx.countFallbackCols(1)
					out = tc.Materialize(out[:0])
					return out, nil
				}
			}
			return b.Column(i), nil
		}, nil
	case *sqlast.Star:
		return nil, fmt.Errorf("engine: '*' is only valid in COUNT(*) or a select list")
	case *sqlast.FuncCall:
		return compileVecFuncCall(ctx, sc, x)
	case *sqlast.Binary:
		return compileVecBinary(ctx, sc, x)
	case *sqlast.Unary:
		operand, err := compileVec(ctx, sc, x.Operand)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "-":
			return mapVec(operand, variant.Neg), nil
		case "NOT":
			return mapVec(operand, func(v variant.Value) (variant.Value, error) {
				if v.IsNull() {
					return variant.Null, nil
				}
				return variant.Bool(!truthySQL(v)), nil
			}), nil
		}
		return nil, fmt.Errorf("engine: unknown unary operator %q", x.Op)
	case *sqlast.IsNull:
		operand, err := compileVec(ctx, sc, x.Operand)
		if err != nil {
			return nil, err
		}
		negate := x.Negate
		generic := mapVec(operand, func(v variant.Value) (variant.Value, error) {
			return variant.Bool(v.IsNull() != negate), nil
		})
		if typed := compileTypedIsNull(ctx, sc, x, generic); typed != nil {
			return typed, nil
		}
		return generic, nil
	case *sqlast.CaseWhen:
		return compileVecCase(ctx, sc, x)
	case *sqlast.Cast:
		operand, err := compileVec(ctx, sc, x.Operand)
		if err != nil {
			return nil, err
		}
		typ := strings.ToUpper(x.Type)
		return mapVec(operand, func(v variant.Value) (variant.Value, error) {
			if v.IsNull() {
				return v, nil
			}
			return castValue(typ, v)
		}), nil
	}
	return nil, fmt.Errorf("engine: cannot compile expression %T", e)
}

// mapVec lifts an elementwise kernel over the active rows of a batch.
func mapVec(in vecFn, fn func(variant.Value) (variant.Value, error)) vecFn {
	var out []variant.Value
	return func(b *vector.Batch) ([]variant.Value, error) {
		vals, err := in(b)
		if err != nil {
			return nil, err
		}
		out = growBuf(out, b.Len())
		var ferr error
		b.ForEach(func(i int) {
			if ferr != nil {
				return
			}
			out[i], ferr = fn(vals[i])
		})
		if ferr != nil {
			return nil, ferr
		}
		return out, nil
	}
}

func compileVecFuncCall(ctx *execContext, sc *Schema, x *sqlast.FuncCall) (vecFn, error) {
	name := strings.ToUpper(x.Name)
	if isAggregateName(name) {
		return nil, fmt.Errorf("engine: aggregate %s outside GROUP BY context", name)
	}
	if name == "SEQ8" || name == "SEQ4" {
		// Monotone per-operator sequence (row-ID injection, §IV-B). The
		// counter advances in active-row order, so with the ordered scan
		// merge the assigned IDs match the row engine's.
		var counter int64
		var out []variant.Value
		return func(b *vector.Batch) ([]variant.Value, error) {
			out = growBuf(out, b.Len())
			b.ForEach(func(i int) {
				out[i] = variant.Int(counter)
				counter++
			})
			return out, nil
		}, nil
	}
	fn, ok := scalarFuncs[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown function %s", name)
	}
	args := make([]vecFn, len(x.Args))
	for i, a := range x.Args {
		c, err := compileVec(ctx, sc, a)
		if err != nil {
			return nil, err
		}
		args[i] = c
	}
	cols := make([][]variant.Value, len(args))
	argBuf := make([]variant.Value, len(args))
	var out []variant.Value
	return func(b *vector.Batch) ([]variant.Value, error) {
		for i, a := range args {
			vals, err := a(b)
			if err != nil {
				return nil, err
			}
			// The argument buffers are fully consumed by fn within this call,
			// before any argument kernel runs again.
			cols[i] = vals //jsqlint:ignore kernelalias cols is scratch; read out below before the kernels' next call
		}
		out = growBuf(out, b.Len())
		var ferr error
		b.ForEach(func(i int) {
			if ferr != nil {
				return
			}
			for c := range cols {
				argBuf[c] = cols[c][i]
			}
			out[i], ferr = fn(argBuf)
		})
		if ferr != nil {
			return nil, ferr
		}
		return out, nil
	}, nil
}

func compileVecBinary(ctx *execContext, sc *Schema, x *sqlast.Binary) (vecFn, error) {
	left, err := compileVec(ctx, sc, x.Left)
	if err != nil {
		return nil, err
	}
	right, err := compileVec(ctx, sc, x.Right)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "AND":
		var out []variant.Value
		var need []int
		return func(b *vector.Batch) ([]variant.Value, error) {
			l, err := left(b)
			if err != nil {
				return nil, err
			}
			out = growBuf(out, b.Len())
			// Rows whose left side is definitively FALSE never evaluate the
			// right side, matching row-engine short-circuiting.
			need = need[:0]
			b.ForEach(func(i int) {
				if !l[i].IsNull() && !truthySQL(l[i]) {
					out[i] = variant.Bool(false)
				} else {
					need = append(need, i)
				}
			})
			if len(need) == 0 {
				return out, nil
			}
			r, err := right(b.WithSel(need))
			if err != nil {
				return nil, err
			}
			for _, i := range need {
				switch {
				case !r[i].IsNull() && !truthySQL(r[i]):
					out[i] = variant.Bool(false)
				case l[i].IsNull() || r[i].IsNull():
					out[i] = variant.Null
				default:
					out[i] = variant.Bool(true)
				}
			}
			return out, nil
		}, nil
	case "OR":
		var out []variant.Value
		var need []int
		return func(b *vector.Batch) ([]variant.Value, error) {
			l, err := left(b)
			if err != nil {
				return nil, err
			}
			out = growBuf(out, b.Len())
			need = need[:0]
			b.ForEach(func(i int) {
				if !l[i].IsNull() && truthySQL(l[i]) {
					out[i] = variant.Bool(true)
				} else {
					need = append(need, i)
				}
			})
			if len(need) == 0 {
				return out, nil
			}
			r, err := right(b.WithSel(need))
			if err != nil {
				return nil, err
			}
			for _, i := range need {
				switch {
				case !r[i].IsNull() && truthySQL(r[i]):
					out[i] = variant.Bool(true)
				case l[i].IsNull() || r[i].IsNull():
					out[i] = variant.Null
				default:
					out[i] = variant.Bool(false)
				}
			}
			return out, nil
		}, nil
	}
	fn, err := scalarBinOp(x.Op)
	if err != nil {
		return nil, err
	}
	var out []variant.Value
	generic := func(b *vector.Batch) ([]variant.Value, error) {
		l, err := left(b)
		if err != nil {
			return nil, err
		}
		r, err := right(b)
		if err != nil {
			return nil, err
		}
		out = growBuf(out, b.Len())
		var ferr error
		b.ForEach(func(i int) {
			if ferr != nil {
				return
			}
			out[i], ferr = fn(l[i], r[i])
		})
		if ferr != nil {
			return nil, ferr
		}
		return out, nil
	}
	if typed := compileTypedBinary(ctx, sc, x, generic); typed != nil {
		return typed, nil
	}
	return generic, nil
}

func compileVecCase(ctx *execContext, sc *Schema, x *sqlast.CaseWhen) (vecFn, error) {
	type arm struct{ cond, result vecFn }
	arms := make([]arm, len(x.Whens))
	for i, w := range x.Whens {
		c, err := compileVec(ctx, sc, w.Cond)
		if err != nil {
			return nil, err
		}
		r, err := compileVec(ctx, sc, w.Result)
		if err != nil {
			return nil, err
		}
		arms[i] = arm{c, r}
	}
	var els vecFn
	if x.Else != nil {
		var err error
		els, err = compileVec(ctx, sc, x.Else)
		if err != nil {
			return nil, err
		}
	}
	var out []variant.Value
	return func(b *vector.Batch) ([]variant.Value, error) {
		out = growBuf(out, b.Len())
		// Arms evaluate on progressively restricted selections so a row only
		// ever evaluates the conditions up to its first match, and only the
		// matching arm's result — the lazy CASE semantics of the row engine.
		remaining := b.ActiveSel()
		for _, a := range arms {
			if len(remaining) == 0 {
				break
			}
			cvals, err := a.cond(b.WithSel(remaining))
			if err != nil {
				return nil, err
			}
			var matched, rest []int
			for _, i := range remaining {
				if !cvals[i].IsNull() && truthySQL(cvals[i]) {
					matched = append(matched, i)
				} else {
					rest = append(rest, i)
				}
			}
			if len(matched) > 0 {
				rvals, err := a.result(b.WithSel(matched))
				if err != nil {
					return nil, err
				}
				for _, i := range matched {
					out[i] = rvals[i]
				}
			}
			remaining = rest
		}
		if len(remaining) > 0 {
			if els != nil {
				evals, err := els(b.WithSel(remaining))
				if err != nil {
					return nil, err
				}
				for _, i := range remaining {
					out[i] = evals[i]
				}
			} else {
				for _, i := range remaining {
					out[i] = variant.Null
				}
			}
		}
		return out, nil
	}, nil
}

// compileVecs compiles a list of expressions against one schema.
func compileVecs(ctx *execContext, sc *Schema, exprs []sqlast.Expr) ([]vecFn, error) {
	fns := make([]vecFn, len(exprs))
	for i, e := range exprs {
		fn, err := compileVec(ctx, sc, e)
		if err != nil {
			return nil, err
		}
		fns[i] = fn
	}
	return fns, nil
}
