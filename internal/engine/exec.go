package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"jsonpark/internal/sqlast"
	"jsonpark/internal/variant"
	"jsonpark/internal/vector"
)

// execContext carries per-query runtime state shared by all operators.
// Scan workers run on multiple goroutines, so the shared metrics (and the
// scan operators' stats slots) are updated under mu.
type execContext struct {
	metrics *Metrics
	mu      sync.Mutex
	// stats, when non-nil, enables per-operator metering (EXPLAIN ANALYZE):
	// prepare wraps every operator in a statIter writing into its node's slot.
	stats map[Node]*OpStats
	// batchSize is the target row count of one vector.Batch.
	batchSize int
	// parallelism caps the morsel worker pool of each scan.
	parallelism int
	// unorderedScans marks scans whose consumers are provably insensitive to
	// row order; their morsel workers emit batches as they complete instead
	// of merging in partition order.
	unorderedScans map[Node]bool
	// planCheck wraps every operator in a checkIter validating the batch
	// contract at run time (the planck debug pass).
	planCheck bool
}

// addScanCounts merges one partition's accounting into the shared metrics
// and the scan's stats slot. Called concurrently by morsel workers.
func (c *execContext) addScanCounts(st *OpStats, totalParts, pruned int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.metrics.PartitionsTotal += totalParts
	c.metrics.PartitionsPruned += pruned
	c.metrics.BytesScanned += bytes
	if st != nil {
		st.PartitionsTotal += totalParts
		st.PartitionsPruned += pruned
		st.BytesScanned += bytes
	}
}

// batchIter is the vectorized executor interface: operators exchange
// columnar batches instead of single rows. A nil batch signals end of
// stream. Close releases operator resources (morsel worker pools); it must
// be safe to call more than once and after EOF.
type batchIter interface {
	NextBatch() (*vector.Batch, error)
	Close()
}

// prepare compiles a logical plan into an executable operator tree, wrapping
// each operator with a metering iterator when the query is analyzed. All
// expression compilation happens here, so preparation cost is part of the
// measured compile phase.
func prepare(n Node, ctx *execContext) (batchIter, error) {
	it, err := prepareNode(n, ctx)
	if err != nil {
		return it, err
	}
	if ctx.planCheck {
		op, _ := describeNode(n)
		it = &checkIter{in: it, op: op}
	}
	if ctx.stats == nil {
		return it, nil
	}
	return &statIter{in: it, st: ctx.statsFor(n)}, nil
}

// prepareNode builds the operator for one plan node; children are built via
// prepare so they get metered too.
func prepareNode(n Node, ctx *execContext) (batchIter, error) {
	switch x := n.(type) {
	case *ScanNode:
		return prepareScan(x, ctx)
	case *FilterNode:
		in, err := prepare(x.Input, ctx)
		if err != nil {
			return nil, err
		}
		cond, err := compileVec(x.Input.Schema(), x.Cond)
		if err != nil {
			in.Close()
			return nil, err
		}
		return &filterIter{in: in, cond: cond}, nil
	case *ProjectNode:
		in, err := prepare(x.Input, ctx)
		if err != nil {
			return nil, err
		}
		fns, err := compileVecs(x.Input.Schema(), x.Exprs)
		if err != nil {
			in.Close()
			return nil, err
		}
		// Plain column references alias the (stable) input column; computed
		// expressions return closure-owned buffers and must be copied into the
		// output batch, which downstream operators may retain.
		alias := make([]bool, len(x.Exprs))
		for i, e := range x.Exprs {
			_, alias[i] = e.(*sqlast.ColRef)
		}
		return &projectIter{in: in, fns: fns, alias: alias}, nil
	case *FlattenNode:
		in, err := prepare(x.Input, ctx)
		if err != nil {
			return nil, err
		}
		input, err := compileVec(x.Input.Schema(), x.Expr)
		if err != nil {
			in.Close()
			return nil, err
		}
		width := len(x.Input.Schema().Names)
		return &flattenIter{
			in: in, input: input, outer: x.Outer, width: width,
			bld: vector.NewBuilder(width+2, ctx.batchSize),
		}, nil
	case *AggregateNode:
		return prepareAggregate(x, ctx)
	case *JoinNode:
		return prepareJoin(x, ctx)
	case *SortNode:
		in, err := prepare(x.Input, ctx)
		if err != nil {
			return nil, err
		}
		keys := make([]vecFn, len(x.Keys))
		descs := make([]bool, len(x.Keys))
		for i, k := range x.Keys {
			fn, err := compileVec(x.Input.Schema(), k.Expr)
			if err != nil {
				in.Close()
				return nil, err
			}
			keys[i] = fn
			descs[i] = k.Desc
		}
		return &sortIter{
			in: in, keys: keys, descs: descs,
			width: len(x.Input.Schema().Names), bsize: ctx.batchSize,
		}, nil
	case *LimitNode:
		in, err := prepare(x.Input, ctx)
		if err != nil {
			return nil, err
		}
		return &limitIter{in: in, remaining: x.N}, nil
	case *UnionNode:
		left, err := prepare(x.Left, ctx)
		if err != nil {
			return nil, err
		}
		right, err := prepare(x.Right, ctx)
		if err != nil {
			left.Close()
			return nil, err
		}
		return &unionIter{iters: []batchIter{left, right}}, nil
	}
	return nil, fmt.Errorf("engine: cannot prepare node %T", n)
}

// drainRows pulls every batch from an iterator and materializes the active
// rows.
func drainRows(it batchIter) ([][]variant.Value, error) {
	var out [][]variant.Value
	for {
		b, err := it.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		out = b.AppendRows(out)
	}
}

// selTruthy returns the physical indices of the active rows whose value is
// non-NULL and SQL-true.
func selTruthy(b *vector.Batch, vals []variant.Value) []int {
	var sel []int
	b.ForEach(func(i int) {
		if !vals[i].IsNull() && truthySQL(vals[i]) {
			sel = append(sel, i)
		}
	})
	return sel
}

// --- filter / project / flatten ---------------------------------------------

type filterIter struct {
	in   batchIter
	cond vecFn
}

func (f *filterIter) NextBatch() (*vector.Batch, error) {
	for {
		b, err := f.in.NextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		keep, err := f.cond(b)
		if err != nil {
			return nil, err
		}
		sel := selTruthy(b, keep)
		if len(sel) == 0 {
			continue
		}
		return b.WithSel(sel), nil
	}
}

func (f *filterIter) Close() { f.in.Close() }

type projectIter struct {
	in    batchIter
	fns   []vecFn
	alias []bool
}

func (p *projectIter) NextBatch() (*vector.Batch, error) {
	b, err := p.in.NextBatch()
	if err != nil || b == nil {
		return nil, err
	}
	cols := make([][]variant.Value, len(p.fns))
	for i, fn := range p.fns {
		vals, err := fn(b)
		if err != nil {
			return nil, err
		}
		if p.alias[i] {
			cols[i] = vals
		} else {
			// Copy out of the expression's reusable buffer: the emitted batch
			// must stay valid until Close (sort and join retain batches).
			c := make([]variant.Value, len(vals))
			copy(c, vals)
			cols[i] = c
		}
	}
	// The projected vectors are aligned with the input's physical rows, so
	// the selection carries over unchanged.
	//jsqlint:ignore kernelalias alias[i] columns are stable input vectors, not reused kernel buffers; the rest are copied above
	return &vector.Batch{Cols: cols, Sel: b.Sel}, nil
}

func (p *projectIter) Close() { p.in.Close() }

type flattenIter struct {
	in     batchIter
	input  vecFn
	outer  bool
	width  int // input width; output adds VALUE and INDEX
	bld    *vector.Builder
	inDone bool
}

func (f *flattenIter) NextBatch() (*vector.Batch, error) {
	for {
		if b := f.bld.Pop(); b != nil {
			return b, nil
		}
		if f.inDone {
			return f.bld.Flush(), nil
		}
		b, err := f.in.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			f.inDone = true
			continue
		}
		vals, err := f.input(b)
		if err != nil {
			return nil, err
		}
		b.ForEach(func(i int) {
			v := vals[i]
			var elems []variant.Value
			if v.Kind() == variant.KindArray {
				elems = v.AsArray()
			}
			if len(elems) == 0 {
				if f.outer {
					// OUTER flatten keeps the row with NULL VALUE/INDEX.
					row := make([]variant.Value, f.width+2)
					for c := range b.Cols {
						row[c] = b.Cols[c][i]
					}
					row[f.width] = variant.Null
					row[f.width+1] = variant.Null
					f.bld.Append(row)
				}
				return
			}
			for k, e := range elems {
				row := make([]variant.Value, f.width+2)
				for c := range b.Cols {
					row[c] = b.Cols[c][i]
				}
				row[f.width] = e
				row[f.width+1] = variant.Int(int64(k))
				f.bld.Append(row)
			}
		})
	}
}

func (f *flattenIter) Close() { f.in.Close() }

// --- aggregation --------------------------------------------------------------

// rowsIter emits pre-materialized rows as dense batches (aggregate and sort
// outputs).
type rowsIter struct {
	rows  [][]variant.Value
	width int
	size  int
	pos   int
}

func (r *rowsIter) NextBatch() (*vector.Batch, error) {
	if r.pos >= len(r.rows) {
		return nil, nil
	}
	hi := r.pos + r.size
	if hi > len(r.rows) {
		hi = len(r.rows)
	}
	cols := make([][]variant.Value, r.width)
	for c := range cols {
		col := make([]variant.Value, hi-r.pos)
		for k := range col {
			col[k] = r.rows[r.pos+k][c]
		}
		cols[c] = col
	}
	r.pos = hi
	return &vector.Batch{Cols: cols}, nil
}

func (r *rowsIter) Close() {}

func prepareAggregate(x *AggregateNode, ctx *execContext) (batchIter, error) {
	in, err := prepare(x.Input, ctx)
	if err != nil {
		return nil, err
	}
	inSchema := x.Input.Schema()
	groupFns, err := compileVecs(inSchema, x.GroupBy)
	if err != nil {
		in.Close()
		return nil, err
	}
	type compiledAgg struct {
		spec     AggSpec
		arg      vecFn // nil for COUNT(*)
		orderFns []vecFn
		descs    []bool
	}
	aggs := make([]compiledAgg, len(x.Aggs))
	for i, spec := range x.Aggs {
		ca := compiledAgg{spec: spec}
		if spec.Arg != nil {
			fn, err := compileVec(inSchema, spec.Arg)
			if err != nil {
				in.Close()
				return nil, err
			}
			ca.arg = fn
		}
		for _, o := range spec.OrderBy {
			fn, err := compileVec(inSchema, o.Expr)
			if err != nil {
				in.Close()
				return nil, err
			}
			ca.orderFns = append(ca.orderFns, fn)
			ca.descs = append(ca.descs, o.Desc)
		}
		aggs[i] = ca
	}
	width := len(x.Schema().Names)

	run := func() ([][]variant.Value, error) {
		defer in.Close()
		type group struct {
			keys []variant.Value
			accs []accumulator
		}
		groups := make(map[string]*group)
		var order []string

		newGroup := func(keys []variant.Value) *group {
			g := &group{keys: keys, accs: make([]accumulator, len(aggs))}
			for i, ca := range aggs {
				g.accs[i] = newAccumulator(ca.spec)
			}
			return g
		}

		var kb strings.Builder
		for {
			b, err := in.NextBatch()
			if err != nil {
				return nil, err
			}
			if b == nil {
				break
			}
			// Evaluate the group keys, aggregate arguments and order keys
			// once per batch, then fold row-wise into the accumulators.
			gvals := make([][]variant.Value, len(groupFns))
			for i, fn := range groupFns {
				gvals[i], err = fn(b)
				if err != nil {
					return nil, err
				}
			}
			avals := make([][]variant.Value, len(aggs))
			ovals := make([][][]variant.Value, len(aggs))
			for i, ca := range aggs {
				if ca.arg != nil {
					avals[i], err = ca.arg(b)
					if err != nil {
						return nil, err
					}
				}
				if len(ca.orderFns) > 0 {
					ovals[i] = make([][]variant.Value, len(ca.orderFns))
					for j, fn := range ca.orderFns {
						ovals[i][j], err = fn(b)
						if err != nil {
							return nil, err
						}
					}
				}
			}
			var rowErr error
			b.ForEach(func(i int) {
				if rowErr != nil {
					return
				}
				kb.Reset()
				var keys []variant.Value
				if len(groupFns) > 0 {
					keys = make([]variant.Value, len(groupFns))
					for k := range groupFns {
						keys[k] = gvals[k][i]
						kb.WriteString(keys[k].HashKey())
						kb.WriteByte('|')
					}
				}
				hk := kb.String()
				g, ok := groups[hk]
				if !ok {
					g = newGroup(keys)
					groups[hk] = g
					order = append(order, hk)
				}
				for a := range aggs {
					var v variant.Value
					if avals[a] != nil {
						v = avals[a][i]
					}
					var ord []variant.Value
					if ovals[a] != nil {
						ord = make([]variant.Value, len(ovals[a]))
						for j := range ovals[a] {
							ord[j] = ovals[a][j][i]
						}
					}
					if err := g.accs[a].add(v, ord); err != nil {
						rowErr = err
						return
					}
				}
			})
			if rowErr != nil {
				return nil, rowErr
			}
		}

		// Global aggregation over an empty input yields one row.
		if len(groupFns) == 0 && len(groups) == 0 {
			g := newGroup(nil)
			groups[""] = g
			order = append(order, "")
		}

		out := make([][]variant.Value, 0, len(order))
		for _, hk := range order {
			g := groups[hk]
			row := make([]variant.Value, 0, len(g.keys)+len(g.accs))
			row = append(row, g.keys...)
			for i, acc := range g.accs {
				row = append(row, acc.result(aggs[i].descs))
			}
			out = append(out, row)
		}
		return out, nil
	}

	return &aggIter{run: run, in: in, width: width, bsize: ctx.batchSize}, nil
}

// aggIter materializes its groups on first NextBatch.
type aggIter struct {
	run   func() ([][]variant.Value, error)
	in    batchIter
	width int
	bsize int
	out   *rowsIter
}

func (a *aggIter) NextBatch() (*vector.Batch, error) {
	if a.out == nil {
		rows, err := a.run()
		if err != nil {
			return nil, err
		}
		a.out = &rowsIter{rows: rows, width: a.width, size: a.bsize}
	}
	return a.out.NextBatch()
}

func (a *aggIter) Close() { a.in.Close() }

// --- joins -------------------------------------------------------------------

func prepareJoin(x *JoinNode, ctx *execContext) (batchIter, error) {
	left, err := prepare(x.Left, ctx)
	if err != nil {
		return nil, err
	}
	right, err := prepare(x.Right, ctx)
	if err != nil {
		left.Close()
		return nil, err
	}
	// Both children are live from here on; every compile failure below must
	// release them before bailing out.
	fail := func(err error) (batchIter, error) {
		left.Close()
		right.Close()
		return nil, err
	}
	combined := x.Schema()
	var residual evalFn
	if x.Residual != nil {
		residual, err = compileExpr(combined, x.Residual)
		if err != nil {
			return fail(err)
		}
	}
	var onFn evalFn
	if x.On != nil {
		onFn, err = compileExpr(combined, x.On)
		if err != nil {
			return fail(err)
		}
	}
	// Probe keys evaluate vectorized over the streamed left batches; build
	// keys evaluate row-wise over the materialized right side.
	leftKeys := make([]vecFn, len(x.LeftKeys))
	for i, k := range x.LeftKeys {
		leftKeys[i], err = compileVec(x.Left.Schema(), k)
		if err != nil {
			return fail(err)
		}
	}
	rightKeys := make([]evalFn, len(x.RightKeys))
	for i, k := range x.RightKeys {
		rightKeys[i], err = compileExpr(x.Right.Schema(), k)
		if err != nil {
			return fail(err)
		}
	}
	leftWidth := len(x.Left.Schema().Names)
	rightWidth := len(x.Right.Schema().Names)
	return &joinIter{
		kind: x.Kind, left: left, right: right,
		leftKeys: leftKeys, rightKeys: rightKeys,
		residual: residual, on: onFn,
		leftWidth: leftWidth, rightWidth: rightWidth,
		bld: vector.NewBuilder(leftWidth+rightWidth, ctx.batchSize),
	}, nil
}

type joinIter struct {
	kind       string
	left       batchIter
	right      batchIter
	leftKeys   []vecFn
	rightKeys  []evalFn
	residual   evalFn
	on         evalFn
	leftWidth  int
	rightWidth int
	bld        *vector.Builder

	built     bool
	hash      map[string][][]variant.Value
	rightRows [][]variant.Value // CROSS mode
	inDone    bool
}

func (j *joinIter) build() error {
	rows, err := drainRows(j.right)
	j.right.Close()
	if err != nil {
		return err
	}
	if len(j.rightKeys) == 0 {
		j.rightRows = rows
	} else {
		j.hash = make(map[string][][]variant.Value)
		var kb strings.Builder
		for _, row := range rows {
			kb.Reset()
			skip := false
			for _, fn := range j.rightKeys {
				v, err := fn(row)
				if err != nil {
					return err
				}
				if v.IsNull() {
					skip = true // NULL keys never match in equi-joins
					break
				}
				kb.WriteString(v.HashKey())
				kb.WriteByte('|')
			}
			if skip {
				continue
			}
			k := kb.String()
			j.hash[k] = append(j.hash[k], row)
		}
	}
	j.built = true
	return nil
}

func (j *joinIter) NextBatch() (*vector.Batch, error) {
	if !j.built {
		if err := j.build(); err != nil {
			return nil, err
		}
	}
	for {
		if b := j.bld.Pop(); b != nil {
			return b, nil
		}
		if j.inDone {
			return j.bld.Flush(), nil
		}
		b, err := j.left.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			j.inDone = true
			continue
		}
		if err := j.probeBatch(b); err != nil {
			return nil, err
		}
	}
}

// probeBatch joins every active left row of one batch against the built
// right side, appending output rows to the builder.
func (j *joinIter) probeBatch(b *vector.Batch) error {
	var kcols [][]variant.Value
	if j.hash != nil {
		kcols = make([][]variant.Value, len(j.leftKeys))
		for i, fn := range j.leftKeys {
			vals, err := fn(b)
			if err != nil {
				return err
			}
			kcols[i] = vals
		}
	}
	combined := make([]variant.Value, j.leftWidth+j.rightWidth)
	var kb strings.Builder
	var rowErr error
	b.ForEach(func(i int) {
		if rowErr != nil {
			return
		}
		candidates := j.rightRows
		if j.hash != nil {
			kb.Reset()
			nullKey := false
			for k := range kcols {
				v := kcols[k][i]
				if v.IsNull() {
					nullKey = true
					break
				}
				kb.WriteString(v.HashKey())
				kb.WriteByte('|')
			}
			if nullKey {
				candidates = nil
			} else {
				candidates = j.hash[kb.String()]
			}
		}
		for c := range b.Cols {
			combined[c] = b.Cols[c][i]
		}
		emitted := false
		for _, rightRow := range candidates {
			copy(combined[j.leftWidth:], rightRow)
			ok, err := j.matches(combined)
			if err != nil {
				rowErr = err
				return
			}
			if ok {
				emitted = true
				j.bld.Append(append([]variant.Value(nil), combined...))
			}
		}
		if !emitted && j.kind == "LEFT OUTER" {
			for c := j.leftWidth; c < len(combined); c++ {
				combined[c] = variant.Null
			}
			j.bld.Append(append([]variant.Value(nil), combined...))
		}
	})
	return rowErr
}

func (j *joinIter) matches(combined []variant.Value) (bool, error) {
	for _, cond := range []evalFn{j.residual, j.on} {
		if cond == nil {
			continue
		}
		v, err := cond(combined)
		if err != nil {
			return false, err
		}
		if v.IsNull() || !truthySQL(v) {
			return false, nil
		}
	}
	return true, nil
}

func (j *joinIter) Close() {
	j.left.Close()
	j.right.Close()
}

// --- sort / limit / union -----------------------------------------------------

type sortIter struct {
	in    batchIter
	keys  []vecFn
	descs []bool
	width int
	bsize int
	out   *rowsIter
}

func (s *sortIter) NextBatch() (*vector.Batch, error) {
	if s.out == nil {
		if err := s.materialize(); err != nil {
			return nil, err
		}
	}
	return s.out.NextBatch()
}

// materialize drains the input, evaluates the sort keys batch-wise, and
// stably sorts the global row index — ties keep their input order even when
// the rows arrived from a parallel scan's ordered merge.
func (s *sortIter) materialize() error {
	defer s.in.Close()
	var batches []*vector.Batch
	var keyCols [][][]variant.Value // [batch][key] -> physical-aligned values
	type ref struct{ b, i int }
	var refs []ref
	for {
		b, err := s.in.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		kc := make([][]variant.Value, len(s.keys))
		for k, fn := range s.keys {
			vals, err := fn(b)
			if err != nil {
				return err
			}
			// Key vectors outlive the batch loop (the global sort reads them
			// at the end), so detach them from the expressions' reusable
			// buffers.
			kc[k] = append([]variant.Value(nil), vals...)
		}
		bi := len(batches)
		batches = append(batches, b)
		keyCols = append(keyCols, kc)
		b.ForEach(func(i int) {
			refs = append(refs, ref{b: bi, i: i})
		})
	}
	sort.SliceStable(refs, func(a, b int) bool {
		ra, rb := refs[a], refs[b]
		for k := range s.keys {
			c := variant.Compare(keyCols[ra.b][k][ra.i], keyCols[rb.b][k][rb.i])
			if s.descs[k] {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	rows := make([][]variant.Value, len(refs))
	for n, r := range refs {
		row := make([]variant.Value, s.width)
		for c := 0; c < s.width; c++ {
			row[c] = batches[r.b].Cols[c][r.i]
		}
		rows[n] = row
	}
	s.out = &rowsIter{rows: rows, width: s.width, size: s.bsize}
	return nil
}

func (s *sortIter) Close() { s.in.Close() }

type limitIter struct {
	in        batchIter
	remaining int64
}

func (l *limitIter) NextBatch() (*vector.Batch, error) {
	if l.remaining <= 0 {
		return nil, nil
	}
	b, err := l.in.NextBatch()
	if err != nil || b == nil {
		return nil, err
	}
	n := int64(b.NumRows())
	if n > l.remaining {
		b.Truncate(int(l.remaining))
		n = l.remaining
	}
	l.remaining -= n
	return b, nil
}

func (l *limitIter) Close() { l.in.Close() }

type unionIter struct {
	iters []batchIter
	idx   int
}

func (u *unionIter) NextBatch() (*vector.Batch, error) {
	for u.idx < len(u.iters) {
		b, err := u.iters[u.idx].NextBatch()
		if err != nil {
			return nil, err
		}
		if b != nil {
			return b, nil
		}
		u.idx++
	}
	return nil, nil
}

func (u *unionIter) Close() {
	for _, it := range u.iters {
		it.Close()
	}
}
