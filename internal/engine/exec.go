package engine

import (
	"fmt"
	"sort"
	"strings"

	"jsonpark/internal/variant"
)

// execContext carries per-query runtime state shared by all operators.
type execContext struct {
	metrics *Metrics
	// stats, when non-nil, enables per-operator metering (EXPLAIN ANALYZE):
	// prepare wraps every operator in a statIter writing into its node's slot.
	stats map[Node]*OpStats
}

// rowIter produces rows; a nil row signals end of stream.
type rowIter interface {
	Next() ([]variant.Value, error)
}

// prepare compiles a logical plan into an executable iterator tree, wrapping
// each operator with a metering iterator when the query is analyzed. All
// expression compilation happens here, so preparation cost is part of the
// measured compile phase.
func prepare(n Node, ctx *execContext) (rowIter, error) {
	it, err := prepareNode(n, ctx)
	if err != nil || ctx.stats == nil {
		return it, err
	}
	return &statIter{in: it, st: ctx.statsFor(n)}, nil
}

// prepareNode builds the operator for one plan node; children are built via
// prepare so they get metered too.
func prepareNode(n Node, ctx *execContext) (rowIter, error) {
	switch x := n.(type) {
	case *ScanNode:
		return prepareScan(x, ctx)
	case *FilterNode:
		in, err := prepare(x.Input, ctx)
		if err != nil {
			return nil, err
		}
		cond, err := compileExpr(x.Input.Schema(), x.Cond)
		if err != nil {
			return nil, err
		}
		return &filterIter{in: in, cond: cond}, nil
	case *ProjectNode:
		in, err := prepare(x.Input, ctx)
		if err != nil {
			return nil, err
		}
		fns := make([]evalFn, len(x.Exprs))
		for i, e := range x.Exprs {
			fn, err := compileExpr(x.Input.Schema(), e)
			if err != nil {
				return nil, err
			}
			fns[i] = fn
		}
		return &projectIter{in: in, fns: fns}, nil
	case *FlattenNode:
		in, err := prepare(x.Input, ctx)
		if err != nil {
			return nil, err
		}
		input, err := compileExpr(x.Input.Schema(), x.Expr)
		if err != nil {
			return nil, err
		}
		return &flattenIter{in: in, input: input, outer: x.Outer}, nil
	case *AggregateNode:
		return prepareAggregate(x, ctx)
	case *JoinNode:
		return prepareJoin(x, ctx)
	case *SortNode:
		in, err := prepare(x.Input, ctx)
		if err != nil {
			return nil, err
		}
		keys := make([]evalFn, len(x.Keys))
		descs := make([]bool, len(x.Keys))
		for i, k := range x.Keys {
			fn, err := compileExpr(x.Input.Schema(), k.Expr)
			if err != nil {
				return nil, err
			}
			keys[i] = fn
			descs[i] = k.Desc
		}
		return &sortIter{in: in, keys: keys, descs: descs}, nil
	case *LimitNode:
		in, err := prepare(x.Input, ctx)
		if err != nil {
			return nil, err
		}
		return &limitIter{in: in, remaining: x.N}, nil
	case *UnionNode:
		left, err := prepare(x.Left, ctx)
		if err != nil {
			return nil, err
		}
		right, err := prepare(x.Right, ctx)
		if err != nil {
			return nil, err
		}
		return &unionIter{iters: []rowIter{left, right}}, nil
	}
	return nil, fmt.Errorf("engine: cannot prepare node %T", n)
}

// drain pulls every row from an iterator.
func drain(it rowIter) ([][]variant.Value, error) {
	var out [][]variant.Value
	for {
		row, err := it.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			return out, nil
		}
		out = append(out, row)
	}
}

// --- scan -------------------------------------------------------------------

type scanIter struct {
	node    *ScanNode
	ctx     *execContext
	st      *OpStats // per-operator scan accounting; nil unless analyzed
	filter  evalFn   // may be nil
	colIdx  []int
	parts   int // next partition to open
	current [][]variant.Value
	pos     int
	started bool
}

func prepareScan(x *ScanNode, ctx *execContext) (rowIter, error) {
	colIdx := make([]int, len(x.Columns))
	for i, c := range x.Columns {
		idx := x.Table.ColumnIndex(c)
		if idx < 0 {
			return nil, fmt.Errorf("engine: table %q has no column %q", x.Table.Name, c)
		}
		colIdx[i] = idx
	}
	var filter evalFn
	if x.Filter != nil {
		fn, err := compileExpr(x.Schema(), x.Filter)
		if err != nil {
			return nil, err
		}
		filter = fn
	}
	return &scanIter{node: x, ctx: ctx, st: ctx.statsFor(x), filter: filter, colIdx: colIdx}, nil
}

func (s *scanIter) Next() ([]variant.Value, error) {
	for {
		if s.pos < len(s.current) {
			row := s.current[s.pos]
			s.pos++
			if s.filter != nil {
				keep, err := s.filter(row)
				if err != nil {
					return nil, err
				}
				if keep.IsNull() || !truthySQL(keep) {
					continue
				}
			}
			return row, nil
		}
		if !s.loadNextPartition() {
			return nil, nil
		}
	}
}

// loadNextPartition advances to the next unpruned partition and materializes
// its projected rows, updating scan metrics.
func (s *scanIter) loadNextPartition() bool {
	parts := s.node.Table.Partitions()
	if !s.started {
		s.started = true
		s.ctx.metrics.PartitionsTotal += len(parts)
		if s.st != nil {
			s.st.PartitionsTotal += len(parts)
		}
	}
	for s.parts < len(parts) {
		p := parts[s.parts]
		s.parts++
		pruned := false
		for _, pred := range s.node.Prunes {
			idx := s.node.Table.ColumnIndex(pred.Column)
			if idx < 0 {
				continue
			}
			if !p.MayMatch(idx, pred) {
				pruned = true
				break
			}
		}
		if pruned {
			s.ctx.metrics.PartitionsPruned++
			if s.st != nil {
				s.st.PartitionsPruned++
			}
			continue
		}
		rows := p.NumRows()
		if s.st != nil {
			s.st.Batches++
		}
		s.current = make([][]variant.Value, rows)
		cols := make([][]variant.Value, len(s.colIdx))
		for i, idx := range s.colIdx {
			chunk := p.Column(idx)
			cols[i] = chunk.Values()
			s.ctx.metrics.BytesScanned += chunk.Bytes()
			if s.st != nil {
				s.st.BytesScanned += chunk.Bytes()
			}
		}
		for r := 0; r < rows; r++ {
			row := make([]variant.Value, len(cols))
			for c := range cols {
				row[c] = cols[c][r]
			}
			s.current[r] = row
		}
		s.pos = 0
		if rows > 0 {
			return true
		}
	}
	return false
}

// --- filter / project / flatten ---------------------------------------------

type filterIter struct {
	in   rowIter
	cond evalFn
}

func (f *filterIter) Next() ([]variant.Value, error) {
	for {
		row, err := f.in.Next()
		if err != nil || row == nil {
			return row, err
		}
		keep, err := f.cond(row)
		if err != nil {
			return nil, err
		}
		if !keep.IsNull() && truthySQL(keep) {
			return row, nil
		}
	}
}

type projectIter struct {
	in  rowIter
	fns []evalFn
}

func (p *projectIter) Next() ([]variant.Value, error) {
	row, err := p.in.Next()
	if err != nil || row == nil {
		return nil, err
	}
	out := make([]variant.Value, len(p.fns))
	for i, fn := range p.fns {
		v, err := fn(row)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

type flattenIter struct {
	in      rowIter
	input   evalFn
	outer   bool
	baseRow []variant.Value
	elems   []variant.Value
	pos     int
}

func (f *flattenIter) Next() ([]variant.Value, error) {
	for {
		if f.baseRow != nil && f.pos < len(f.elems) {
			out := make([]variant.Value, len(f.baseRow)+2)
			copy(out, f.baseRow)
			out[len(f.baseRow)] = f.elems[f.pos]
			out[len(f.baseRow)+1] = variant.Int(int64(f.pos))
			f.pos++
			return out, nil
		}
		row, err := f.in.Next()
		if err != nil || row == nil {
			return nil, err
		}
		v, err := f.input(row)
		if err != nil {
			return nil, err
		}
		var elems []variant.Value
		if v.Kind() == variant.KindArray {
			elems = v.AsArray()
		}
		if len(elems) == 0 {
			if f.outer {
				// OUTER flatten keeps the row with NULL VALUE/INDEX.
				out := make([]variant.Value, len(row)+2)
				copy(out, row)
				out[len(row)] = variant.Null
				out[len(row)+1] = variant.Null
				return out, nil
			}
			continue
		}
		f.baseRow = row
		f.elems = elems
		f.pos = 0
	}
}

// --- aggregation --------------------------------------------------------------

type aggIter struct {
	rows [][]variant.Value
	pos  int
}

func (a *aggIter) Next() ([]variant.Value, error) {
	if a.pos >= len(a.rows) {
		return nil, nil
	}
	row := a.rows[a.pos]
	a.pos++
	return row, nil
}

func prepareAggregate(x *AggregateNode, ctx *execContext) (rowIter, error) {
	in, err := prepare(x.Input, ctx)
	if err != nil {
		return nil, err
	}
	inSchema := x.Input.Schema()
	groupFns := make([]evalFn, len(x.GroupBy))
	for i, g := range x.GroupBy {
		fn, err := compileExpr(inSchema, g)
		if err != nil {
			return nil, err
		}
		groupFns[i] = fn
	}
	type compiledAgg struct {
		spec     AggSpec
		arg      evalFn // nil for COUNT(*)
		orderFns []evalFn
		descs    []bool
	}
	aggs := make([]compiledAgg, len(x.Aggs))
	for i, spec := range x.Aggs {
		ca := compiledAgg{spec: spec}
		if spec.Arg != nil {
			fn, err := compileExpr(inSchema, spec.Arg)
			if err != nil {
				return nil, err
			}
			ca.arg = fn
		}
		for _, o := range spec.OrderBy {
			fn, err := compileExpr(inSchema, o.Expr)
			if err != nil {
				return nil, err
			}
			ca.orderFns = append(ca.orderFns, fn)
			ca.descs = append(ca.descs, o.Desc)
		}
		aggs[i] = ca
	}

	return &deferredAgg{
		run: func() ([][]variant.Value, error) {
			type group struct {
				keys []variant.Value
				accs []accumulator
			}
			groups := make(map[string]*group)
			var order []string

			newGroup := func(keys []variant.Value) *group {
				g := &group{keys: keys, accs: make([]accumulator, len(aggs))}
				for i, ca := range aggs {
					g.accs[i] = newAccumulator(ca.spec)
				}
				return g
			}

			for {
				row, err := in.Next()
				if err != nil {
					return nil, err
				}
				if row == nil {
					break
				}
				keys := make([]variant.Value, len(groupFns))
				var kb strings.Builder
				for i, fn := range groupFns {
					v, err := fn(row)
					if err != nil {
						return nil, err
					}
					keys[i] = v
					kb.WriteString(v.HashKey())
					kb.WriteByte('|')
				}
				hk := kb.String()
				g, ok := groups[hk]
				if !ok {
					g = newGroup(keys)
					groups[hk] = g
					order = append(order, hk)
				}
				for i, ca := range aggs {
					var v variant.Value
					if ca.arg != nil {
						v, err = ca.arg(row)
						if err != nil {
							return nil, err
						}
					}
					var ord []variant.Value
					if len(ca.orderFns) > 0 {
						ord = make([]variant.Value, len(ca.orderFns))
						for j, fn := range ca.orderFns {
							ov, err := fn(row)
							if err != nil {
								return nil, err
							}
							ord[j] = ov
						}
					}
					if err := g.accs[i].add(v, ord); err != nil {
						return nil, err
					}
				}
			}

			// Global aggregation over an empty input yields one row.
			if len(groupFns) == 0 && len(groups) == 0 {
				g := newGroup(nil)
				groups[""] = g
				order = append(order, "")
			}

			out := make([][]variant.Value, 0, len(order))
			for _, hk := range order {
				g := groups[hk]
				row := make([]variant.Value, 0, len(g.keys)+len(g.accs))
				row = append(row, g.keys...)
				for i, acc := range g.accs {
					row = append(row, acc.result(aggs[i].descs))
				}
				out = append(out, row)
			}
			return out, nil
		},
	}, nil
}

// deferredAgg materializes its groups on first Next.
type deferredAgg struct {
	run  func() ([][]variant.Value, error)
	iter *aggIter
}

func (d *deferredAgg) Next() ([]variant.Value, error) {
	if d.iter == nil {
		rows, err := d.run()
		if err != nil {
			return nil, err
		}
		d.iter = &aggIter{rows: rows}
	}
	return d.iter.Next()
}

// --- joins -------------------------------------------------------------------

func prepareJoin(x *JoinNode, ctx *execContext) (rowIter, error) {
	left, err := prepare(x.Left, ctx)
	if err != nil {
		return nil, err
	}
	right, err := prepare(x.Right, ctx)
	if err != nil {
		return nil, err
	}
	combined := x.Schema()
	var residual evalFn
	if x.Residual != nil {
		residual, err = compileExpr(combined, x.Residual)
		if err != nil {
			return nil, err
		}
	}
	var onFn evalFn
	if x.On != nil {
		onFn, err = compileExpr(combined, x.On)
		if err != nil {
			return nil, err
		}
	}
	leftKeys := make([]evalFn, len(x.LeftKeys))
	for i, k := range x.LeftKeys {
		leftKeys[i], err = compileExpr(x.Left.Schema(), k)
		if err != nil {
			return nil, err
		}
	}
	rightKeys := make([]evalFn, len(x.RightKeys))
	for i, k := range x.RightKeys {
		rightKeys[i], err = compileExpr(x.Right.Schema(), k)
		if err != nil {
			return nil, err
		}
	}
	return &joinIter{
		kind: x.Kind, left: left, right: right,
		leftKeys: leftKeys, rightKeys: rightKeys,
		residual: residual, on: onFn,
		rightWidth: len(x.Right.Schema().Names),
	}, nil
}

type joinIter struct {
	kind       string
	left       rowIter
	right      rowIter
	leftKeys   []evalFn
	rightKeys  []evalFn
	residual   evalFn
	on         evalFn
	rightWidth int

	built      bool
	hash       map[string][][]variant.Value
	rightRows  [][]variant.Value // CROSS mode
	leftRow    []variant.Value
	candidates [][]variant.Value
	candPos    int
	emitted    bool // LEFT OUTER: matched at least one candidate
}

func (j *joinIter) build() error {
	rows, err := drain(j.right)
	if err != nil {
		return err
	}
	if len(j.rightKeys) == 0 {
		j.rightRows = rows
	} else {
		j.hash = make(map[string][][]variant.Value)
		for _, row := range rows {
			var kb strings.Builder
			skip := false
			for _, fn := range j.rightKeys {
				v, err := fn(row)
				if err != nil {
					return err
				}
				if v.IsNull() {
					skip = true // NULL keys never match in equi-joins
					break
				}
				kb.WriteString(v.HashKey())
				kb.WriteByte('|')
			}
			if skip {
				continue
			}
			k := kb.String()
			j.hash[k] = append(j.hash[k], row)
		}
	}
	j.built = true
	return nil
}

func (j *joinIter) Next() ([]variant.Value, error) {
	if !j.built {
		if err := j.build(); err != nil {
			return nil, err
		}
	}
	for {
		// Emit pending candidates for the current left row.
		for j.leftRow != nil && j.candPos < len(j.candidates) {
			rightRow := j.candidates[j.candPos]
			j.candPos++
			out := make([]variant.Value, 0, len(j.leftRow)+j.rightWidth)
			out = append(out, j.leftRow...)
			out = append(out, rightRow...)
			ok, err := j.matches(out)
			if err != nil {
				return nil, err
			}
			if ok {
				j.emitted = true
				return out, nil
			}
		}
		if j.leftRow != nil && j.kind == "LEFT OUTER" && !j.emitted {
			out := make([]variant.Value, 0, len(j.leftRow)+j.rightWidth)
			out = append(out, j.leftRow...)
			for i := 0; i < j.rightWidth; i++ {
				out = append(out, variant.Null)
			}
			j.leftRow = nil
			return out, nil
		}
		// Advance to the next left row.
		row, err := j.left.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			return nil, nil
		}
		j.leftRow = row
		j.emitted = false
		j.candPos = 0
		if j.hash != nil {
			var kb strings.Builder
			nullKey := false
			for _, fn := range j.leftKeys {
				v, err := fn(row)
				if err != nil {
					return nil, err
				}
				if v.IsNull() {
					nullKey = true
					break
				}
				kb.WriteString(v.HashKey())
				kb.WriteByte('|')
			}
			if nullKey {
				j.candidates = nil
			} else {
				j.candidates = j.hash[kb.String()]
			}
		} else {
			j.candidates = j.rightRows
		}
	}
}

func (j *joinIter) matches(combined []variant.Value) (bool, error) {
	for _, cond := range []evalFn{j.residual, j.on} {
		if cond == nil {
			continue
		}
		v, err := cond(combined)
		if err != nil {
			return false, err
		}
		if v.IsNull() || !truthySQL(v) {
			return false, nil
		}
	}
	return true, nil
}

// --- sort / limit / union -----------------------------------------------------

type sortIter struct {
	in     rowIter
	keys   []evalFn
	descs  []bool
	sorted [][]variant.Value
	pos    int
	done   bool
}

func (s *sortIter) Next() ([]variant.Value, error) {
	if !s.done {
		rows, err := drain(s.in)
		if err != nil {
			return nil, err
		}
		type keyed struct {
			row  []variant.Value
			keys []variant.Value
		}
		ks := make([]keyed, len(rows))
		for i, row := range rows {
			kv := make([]variant.Value, len(s.keys))
			for k, fn := range s.keys {
				v, err := fn(row)
				if err != nil {
					return nil, err
				}
				kv[k] = v
			}
			ks[i] = keyed{row: row, keys: kv}
		}
		sort.SliceStable(ks, func(a, b int) bool {
			for k := range s.keys {
				c := variant.Compare(ks[a].keys[k], ks[b].keys[k])
				if s.descs[k] {
					c = -c
				}
				if c != 0 {
					return c < 0
				}
			}
			return false
		})
		s.sorted = make([][]variant.Value, len(ks))
		for i := range ks {
			s.sorted[i] = ks[i].row
		}
		s.done = true
	}
	if s.pos >= len(s.sorted) {
		return nil, nil
	}
	row := s.sorted[s.pos]
	s.pos++
	return row, nil
}

type limitIter struct {
	in        rowIter
	remaining int64
}

func (l *limitIter) Next() ([]variant.Value, error) {
	if l.remaining <= 0 {
		return nil, nil
	}
	row, err := l.in.Next()
	if err != nil || row == nil {
		return nil, err
	}
	l.remaining--
	return row, nil
}

type unionIter struct {
	iters []rowIter
	idx   int
}

func (u *unionIter) Next() ([]variant.Value, error) {
	for u.idx < len(u.iters) {
		row, err := u.iters[u.idx].Next()
		if err != nil {
			return nil, err
		}
		if row != nil {
			return row, nil
		}
		u.idx++
	}
	return nil, nil
}
