package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"jsonpark/internal/sqlast"
	"jsonpark/internal/storage"
	"jsonpark/internal/variant"
	"jsonpark/internal/vector"
)

// execContext carries per-query runtime state shared by all operators.
// Scan workers run on multiple goroutines, so the shared metrics (and the
// scan operators' stats slots) are updated under mu.
type execContext struct {
	metrics *Metrics
	mu      sync.Mutex
	// stats, when non-nil, enables per-operator metering (EXPLAIN ANALYZE):
	// prepare wraps every operator in a statIter writing into its node's slot.
	stats map[Node]*OpStats
	// batchSize is the target row count of one vector.Batch.
	batchSize int
	// parallelism caps the morsel worker pool of each scan and the worker
	// pools of the parallel pipeline breakers.
	parallelism int
	// mergeParts is the hash-partition count of the parallel aggregate's
	// merge phase (defaults to parallelism).
	mergeParts int
	// unorderedScans marks scans whose consumers are provably insensitive to
	// row order; their morsel workers emit batches as they complete instead
	// of merging in partition order.
	unorderedScans map[Node]bool
	// planCheck wraps every operator in a checkIter validating the batch
	// contract at run time (the planck debug pass).
	planCheck bool
	// qctx is the query's cancellation context, installed by Prepared.RunCtx
	// before the first NextBatch. Every operator is wrapped in a cancelIter
	// checking it, and the parallel workers poll it between morsels.
	qctx context.Context
	// acct is the query's shared memory accountant (mem.go); the pipeline
	// breakers charge retained bytes against it and spill on overflow.
	acct *memAccountant
	// prog, when non-nil, carries the query's live per-operator counters
	// (progress.go): prepare wraps each operator in a progIter and the
	// memory-governed breakers mirror their charges into it.
	prog *queryProgress
	// batchHook, when non-nil, runs after every root batch RunCtx drains
	// (test instrumentation for observing queries mid-flight).
	batchHook func()
	// snapshots pins each scanned table's partition set for the whole query:
	// the first pin (at bind) seals buffered rows and fixes the MVCC read
	// view, and every later scan of the same table — including the parallel
	// aggregate's partition claims — reuses the pinned set, so one query can
	// never observe a torn snapshot across concurrent appends. Pins happen
	// on the driver goroutine only (prepare and the breaker drivers), so the
	// map needs no lock. The pinned versions also key the result cache.
	snapshots map[*storage.Table]storage.TableSnapshot
	// Storage-path counters (atomic; see countTypedCols and friends below).
	typedCols    int64
	fallbackCols int64
	diskReads    int64
}

// pinSnapshot returns the query's pinned snapshot of t, taking it on first
// use. Driver-goroutine only (see the snapshots field).
func (c *execContext) pinSnapshot(t *storage.Table) storage.TableSnapshot {
	if s, ok := c.snapshots[t]; ok {
		return s
	}
	if c.snapshots == nil {
		c.snapshots = make(map[*storage.Table]storage.TableSnapshot)
	}
	s := t.Snapshot()
	c.snapshots[t] = s
	return s
}

// queryCtx returns the query's cancellation context (never nil).
func (c *execContext) queryCtx() context.Context {
	if c.qctx == nil {
		return context.Background()
	}
	return c.qctx
}

// cancelled returns the context error, wrapped so callers can still match
// context.Canceled / context.DeadlineExceeded with errors.Is.
func (c *execContext) cancelled() error {
	if err := c.queryCtx().Err(); err != nil {
		return fmt.Errorf("engine: query interrupted: %w", err)
	}
	return nil
}

// addScanCounts merges one partition's accounting into the shared metrics
// and the scan's stats slot. Called concurrently by morsel workers.
func (c *execContext) addScanCounts(st *OpStats, totalParts, pruned int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.metrics.PartitionsTotal += totalParts
	c.metrics.PartitionsPruned += pruned
	c.metrics.BytesScanned += bytes
	if st != nil {
		st.PartitionsTotal += totalParts
		st.PartitionsPruned += pruned
		st.BytesScanned += bytes
	}
}

// Storage-path counters, updated atomically: expression kernels run on
// morsel workers and the parallel breakers' goroutines. All three methods
// are nil-safe so compiled expressions also work without an execContext
// (benchmarks, tests).

// countTypedCols records n column reads served by typed kernels.
func (c *execContext) countTypedCols(n int) {
	if c != nil {
		atomic.AddInt64(&c.typedCols, int64(n))
	}
}

// countFallbackCols records n typed columns materialized to variants.
func (c *execContext) countFallbackCols(n int) {
	if c != nil {
		atomic.AddInt64(&c.fallbackCols, int64(n))
	}
}

// countDiskRead records one partition data section loaded from disk.
func (c *execContext) countDiskRead() {
	if c != nil {
		atomic.AddInt64(&c.diskReads, 1)
	}
}

// batchIter is the vectorized executor interface: operators exchange
// columnar batches instead of single rows. A nil batch signals end of
// stream. Close releases operator resources (morsel worker pools); it must
// be safe to call more than once and after EOF.
type batchIter interface {
	NextBatch() (*vector.Batch, error)
	Close()
}

// prepare compiles a logical plan into an executable operator tree, wrapping
// each operator with a metering iterator when the query is analyzed. All
// expression compilation happens here, so preparation cost is part of the
// measured compile phase.
func prepare(n Node, ctx *execContext) (batchIter, error) {
	it, err := prepareNode(n, ctx)
	if err != nil {
		return it, err
	}
	// Every operator checks the query context once per batch, so a cancel or
	// deadline surfaces within one batch of work on any pipeline.
	it = &cancelIter{in: it, c: ctx}
	if ctx.planCheck {
		op, _ := describeNode(n)
		it = &checkIter{in: it, op: op}
	}
	if ctx.stats != nil {
		it = &statIter{in: it, st: ctx.statsFor(n)}
	}
	if slot := ctx.progFor(n); slot != nil {
		it = &progIter{in: it, p: slot}
	}
	return it, nil
}

// cancelIter propagates query cancellation through the operator tree. The
// raw context error stays the error chain's root, so callers can match
// context.Canceled / context.DeadlineExceeded end to end.
type cancelIter struct {
	in batchIter
	c  *execContext
}

func (ci *cancelIter) NextBatch() (*vector.Batch, error) {
	if err := ci.c.cancelled(); err != nil {
		return nil, err
	}
	return ci.in.NextBatch()
}

func (ci *cancelIter) Close() { ci.in.Close() }

// prepareNode builds the operator for one plan node; children are built via
// prepare so they get metered too.
func prepareNode(n Node, ctx *execContext) (batchIter, error) {
	switch x := n.(type) {
	case *ScanNode:
		return prepareScan(x, ctx)
	case *FilterNode:
		in, err := prepare(x.Input, ctx)
		if err != nil {
			return nil, err
		}
		cond, err := compileVec(ctx, x.Input.Schema(), x.Cond)
		if err != nil {
			in.Close()
			return nil, err
		}
		return &filterIter{in: in, cond: cond}, nil
	case *ProjectNode:
		in, err := prepare(x.Input, ctx)
		if err != nil {
			return nil, err
		}
		fns, err := compileVecs(ctx, x.Input.Schema(), x.Exprs)
		if err != nil {
			in.Close()
			return nil, err
		}
		return &projectIter{in: in, fns: fns, alias: colRefIndexes(x.Input.Schema(), x.Exprs)}, nil
	case *FlattenNode:
		in, err := prepare(x.Input, ctx)
		if err != nil {
			return nil, err
		}
		input, err := compileVec(ctx, x.Input.Schema(), x.Expr)
		if err != nil {
			in.Close()
			return nil, err
		}
		width := len(x.Input.Schema().Names)
		return &flattenIter{
			in: in, input: input, outer: x.Outer, width: width,
			bld: vector.NewBuilder(width+2, ctx.batchSize),
		}, nil
	case *AggregateNode:
		return prepareAggregate(x, ctx)
	case *ParallelAggNode:
		return prepareParallelAgg(x, ctx)
	case *JoinNode:
		return prepareJoin(x, ctx, 1, x)
	case *ParallelJoinNode:
		return prepareJoin(x.JoinNode, ctx, x.BuildWorkers, x)
	case *SortNode:
		return prepareSort(x, ctx, 1, x)
	case *ParallelSortNode:
		return prepareSort(x.SortNode, ctx, x.SortWorkers, x)
	case *LimitNode:
		in, err := prepare(x.Input, ctx)
		if err != nil {
			return nil, err
		}
		return &limitIter{in: in, remaining: x.N}, nil
	case *viewRowsNode:
		// Materialized-view suffix replay: the aggregate's finalized rows feed
		// the stateless operators above it (views.go).
		return &rowsIter{rows: x.rows, width: len(x.schema.Names), size: ctx.batchSize}, nil
	case *UnionNode:
		left, err := prepare(x.Left, ctx)
		if err != nil {
			return nil, err
		}
		right, err := prepare(x.Right, ctx)
		if err != nil {
			left.Close()
			return nil, err
		}
		return &unionIter{iters: []batchIter{left, right}}, nil
	}
	return nil, fmt.Errorf("engine: cannot prepare node %T", n)
}

// drainRows pulls every batch from an iterator and materializes the active
// rows.
func drainRows(it batchIter) ([][]variant.Value, error) {
	return drainRowsHooked(it, nil)
}

// drainRowsHooked is drainRows with an optional per-batch callback, run
// after each non-nil batch is materialized (test instrumentation).
func drainRowsHooked(it batchIter, hook func()) ([][]variant.Value, error) {
	var out [][]variant.Value
	for {
		b, err := it.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		//jsqlint:ignore memcharge result rows are the query's output handed to the caller, not operator-retained state; the governance budget covers breaker state, not the client result set
		out = b.AppendRows(out)
		if hook != nil {
			hook()
		}
	}
}

// selTruthy returns the physical indices of the active rows whose value is
// non-NULL and SQL-true.
func selTruthy(b *vector.Batch, vals []variant.Value) []int {
	var sel []int
	b.ForEach(func(i int) {
		if !vals[i].IsNull() && truthySQL(vals[i]) {
			sel = append(sel, i)
		}
	})
	return sel
}

// --- filter / project / flatten ---------------------------------------------

type filterIter struct {
	in   batchIter
	cond vecFn
}

func (f *filterIter) NextBatch() (*vector.Batch, error) {
	for {
		b, err := f.in.NextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		keep, err := f.cond(b)
		if err != nil {
			return nil, err
		}
		sel := selTruthy(b, keep)
		if len(sel) == 0 {
			continue
		}
		return b.WithSel(sel), nil
	}
}

func (f *filterIter) Close() { f.in.Close() }

// colRefIndexes maps each projection expression to its input-schema column
// index when it is a plain column reference (resolvable via Lookup exactly
// as compileVec resolves it), or -1 for computed expressions. Pass-through
// columns skip evaluation entirely: the input representation — variant
// vector or typed view — carries over into the output batch unchanged.
func colRefIndexes(sc *Schema, exprs []sqlast.Expr) []int {
	idx := make([]int, len(exprs))
	for i, e := range exprs {
		idx[i] = -1
		if cr, ok := e.(*sqlast.ColRef); ok {
			name := cr.Name
			if cr.Table != "" {
				name = cr.Table + "." + cr.Name
			}
			if j, ok := sc.Lookup(name); ok {
				idx[i] = j
			}
		}
	}
	return idx
}

type projectIter struct {
	in    batchIter
	fns   []vecFn
	alias []int // input column index for pass-through, -1 for computed
}

func (p *projectIter) NextBatch() (*vector.Batch, error) {
	b, err := p.in.NextBatch()
	if err != nil || b == nil {
		return nil, err
	}
	cols := make([][]variant.Value, len(p.fns))
	var typed []*vector.TypedCol
	for i, fn := range p.fns {
		if src := p.alias[i]; src >= 0 {
			// Pass-through: alias the input column's representation. The
			// variant vector is stable (chunk storage or the batch's cached
			// materialization); a typed view stays typed, so downstream
			// kernels keep the fast path without a variant conversion.
			cols[i] = b.Cols[src]
			if cols[i] == nil {
				if tc := b.TypedCol(src); tc != nil {
					if typed == nil {
						typed = make([]*vector.TypedCol, len(p.fns))
					}
					typed[i] = tc
				}
			}
			continue
		}
		vals, err := fn(b)
		if err != nil {
			return nil, err
		}
		// Copy out of the expression's reusable buffer: the emitted batch
		// must stay valid until Close (sort and join retain batches).
		c := make([]variant.Value, len(vals))
		copy(c, vals)
		cols[i] = c
	}
	// The projected vectors are aligned with the input's physical rows, so
	// the selection carries over unchanged.
	//jsqlint:ignore kernelalias pass-through columns alias stable input vectors or typed views, never reused kernel buffers; computed columns are copied above
	return &vector.Batch{Cols: cols, Sel: b.Sel, Typed: typed}, nil
}

func (p *projectIter) Close() { p.in.Close() }

type flattenIter struct {
	in     batchIter
	input  vecFn
	outer  bool
	width  int // input width; output adds VALUE and INDEX
	bld    *vector.Builder
	inDone bool
}

func (f *flattenIter) NextBatch() (*vector.Batch, error) {
	for {
		if b := f.bld.Pop(); b != nil {
			return b, nil
		}
		if f.inDone {
			return f.bld.Flush(), nil
		}
		b, err := f.in.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			f.inDone = true
			continue
		}
		vals, err := f.input(b)
		if err != nil {
			return nil, err
		}
		b.ForEach(func(i int) {
			v := vals[i]
			var elems []variant.Value
			if v.Kind() == variant.KindArray {
				elems = v.AsArray()
			}
			if len(elems) == 0 {
				if f.outer {
					// OUTER flatten keeps the row with NULL VALUE/INDEX.
					row := make([]variant.Value, f.width+2)
					for c := range b.Cols {
						row[c] = b.Value(c, i)
					}
					row[f.width] = variant.Null
					row[f.width+1] = variant.Null
					f.bld.Append(row)
				}
				return
			}
			for k, e := range elems {
				row := make([]variant.Value, f.width+2)
				for c := range b.Cols {
					row[c] = b.Value(c, i)
				}
				row[f.width] = e
				row[f.width+1] = variant.Int(int64(k))
				f.bld.Append(row)
			}
		})
	}
}

func (f *flattenIter) Close() { f.in.Close() }

// --- aggregation --------------------------------------------------------------

// rowsIter emits pre-materialized rows as dense batches (aggregate and sort
// outputs).
type rowsIter struct {
	rows  [][]variant.Value
	width int
	size  int
	pos   int
}

func (r *rowsIter) NextBatch() (*vector.Batch, error) {
	if r.pos >= len(r.rows) {
		return nil, nil
	}
	hi := r.pos + r.size
	if hi > len(r.rows) {
		hi = len(r.rows)
	}
	b := vector.ColumnizeRows(r.rows, r.width, r.pos, hi)
	r.pos = hi
	return b, nil
}

func (r *rowsIter) Close() {}

// compiledAgg is one aggregate's compiled evaluation functions.
type compiledAgg struct {
	spec     AggSpec
	arg      vecFn // nil for COUNT(*)
	orderFns []vecFn
	descs    []bool
}

// aggEval holds the compiled grouping and aggregate expressions of one
// aggregation. Compiled expressions may hold state (reusable output
// buffers, SEQ counters), so an aggEval must only ever be used by one
// goroutine — the parallel aggregate compiles one per worker.
type aggEval struct {
	groupFns []vecFn
	aggs     []compiledAgg
}

// compileAggEval compiles an aggregate's expressions against its input
// schema.
func compileAggEval(ctx *execContext, x *AggregateNode) (*aggEval, error) {
	inSchema := x.Input.Schema()
	groupFns, err := compileVecs(ctx, inSchema, x.GroupBy)
	if err != nil {
		return nil, err
	}
	aggs := make([]compiledAgg, len(x.Aggs))
	for i, spec := range x.Aggs {
		ca := compiledAgg{spec: spec}
		if spec.Arg != nil {
			fn, err := compileVec(ctx, inSchema, spec.Arg)
			if err != nil {
				return nil, err
			}
			ca.arg = fn
		}
		for _, o := range spec.OrderBy {
			fn, err := compileVec(ctx, inSchema, o.Expr)
			if err != nil {
				return nil, err
			}
			ca.orderFns = append(ca.orderFns, fn)
			ca.descs = append(ca.descs, o.Desc)
		}
		aggs[i] = ca
	}
	return &aggEval{groupFns: groupFns, aggs: aggs}, nil
}

// aggGroup is one group's accumulated state.
type aggGroup struct {
	key  string // canonical binary group key (retained for the merge map)
	keys []variant.Value
	accs []accumulator
	// seq is the group's insertion rank within its table; bucket its merge
	// partition. Together with the table's storage-partition index they form
	// the stamp that reproduces sequential first-seen output order after a
	// parallel merge.
	seq    int32
	bucket int32
	stamp  int64
}

// aggTable is one hash-aggregation table keyed by the canonical binary
// group key. Lookups reuse keyBuf and only allocate the key string on first
// insertion, so steady-state grouping is allocation-free per row.
type aggTable struct {
	aggs     []compiledAgg
	buckets  int // > 1: thread-local mode, groups also index into byBucket
	groups   map[string]*aggGroup
	order    []*aggGroup   // insertion order
	byBucket [][]*aggGroup // per merge partition, insertion order
	keyBuf   []byte
	rows     int64 // input rows folded (parallel-phase accounting)
}

func newAggTable(aggs []compiledAgg, buckets int) *aggTable {
	t := &aggTable{aggs: aggs, buckets: buckets, groups: make(map[string]*aggGroup)}
	if buckets > 1 {
		t.byBucket = make([][]*aggGroup, buckets)
	}
	return t
}

func (t *aggTable) insert(keyBytes []byte, keys []variant.Value) *aggGroup {
	g := &aggGroup{key: string(keyBytes), keys: keys, accs: make([]accumulator, len(t.aggs))}
	for i := range t.aggs {
		g.accs[i] = newAccumulator(t.aggs[i].spec)
	}
	g.seq = int32(len(t.order))
	t.groups[g.key] = g
	t.order = append(t.order, g)
	if t.buckets > 1 {
		g.bucket = bucketOfKey(keyBytes, t.buckets)
		t.byBucket[g.bucket] = append(t.byBucket[g.bucket], g)
	}
	return g
}

// absorb folds one batch into the table: group keys, aggregate arguments
// and order keys evaluate once per batch, then fold row-wise into the
// accumulators.
func (e *aggEval) absorb(t *aggTable, b *vector.Batch) error {
	gvals, avals, ovals, err := e.evalBatch(b)
	if err != nil {
		return err
	}
	rowG := make([]variant.Value, len(e.groupFns))
	rowA := make([]variant.Value, len(e.aggs))
	rowO := make([][]variant.Value, len(e.aggs))
	var rowErr error
	b.ForEach(func(i int) {
		if rowErr != nil {
			return
		}
		for k := range e.groupFns {
			rowG[k] = gvals[k][i]
		}
		for a := range e.aggs {
			var v variant.Value
			if avals[a] != nil {
				v = avals[a][i]
			}
			rowA[a] = v
			rowO[a] = nil
			if ovals[a] != nil {
				// Freshly allocated per row: ARRAY_AGG retains the slice.
				ord := make([]variant.Value, len(ovals[a]))
				for j := range ovals[a] {
					ord[j] = ovals[a][j][i]
				}
				rowO[a] = ord
			}
		}
		rowErr = e.foldRow(t, rowG, rowA, rowO)
	})
	return rowErr
}

// foldRow folds one row's evaluated values into the table. It is the shared
// per-row body of the streaming absorb and the spill-replay path, so both
// issue the identical insert/add sequence — the replay of deferred tuples
// reproduces the in-memory fold bit for bit.
func (e *aggEval) foldRow(t *aggTable, gv, av []variant.Value, ov [][]variant.Value) error {
	t.rows++
	t.keyBuf = t.keyBuf[:0]
	for k := range gv {
		t.keyBuf = gv[k].AppendGroupKey(t.keyBuf)
	}
	g, ok := t.groups[string(t.keyBuf)]
	if !ok {
		var keys []variant.Value
		if len(gv) > 0 {
			keys = append([]variant.Value(nil), gv...)
		}
		g = t.insert(t.keyBuf, keys)
	}
	for a := range g.accs {
		if err := g.accs[a].add(av[a], ov[a]); err != nil {
			return err
		}
	}
	return nil
}

// emitGroupRows finalizes a list of groups into output rows.
func emitGroupRows(groups []*aggGroup, aggs []compiledAgg) [][]variant.Value {
	out := make([][]variant.Value, 0, len(groups))
	for _, g := range groups {
		row := make([]variant.Value, 0, len(g.keys)+len(g.accs))
		row = append(row, g.keys...)
		for i, acc := range g.accs {
			row = append(row, acc.result(aggs[i].descs))
		}
		out = append(out, row)
	}
	return out
}

func prepareAggregate(x *AggregateNode, ctx *execContext) (batchIter, error) {
	in, err := prepare(x.Input, ctx)
	if err != nil {
		return nil, err
	}
	eval, err := compileAggEval(ctx, x)
	if err != nil {
		in.Close()
		return nil, err
	}
	width := len(x.Schema().Names)

	mergeable := aggsMergeable(x.Aggs)

	run := func() ([][]variant.Value, error) {
		defer in.Close()
		mem := ctx.opMemFor(x, ctx.statsFor(x))
		ext := &extAgg{mem: mem, mergeable: mergeable, eval: eval}
		defer ext.discard()
		table := newAggTable(eval.aggs, 1)
		for {
			b, err := in.NextBatch()
			if err != nil {
				return nil, err
			}
			if b == nil {
				break
			}
			if ext.deferring() {
				if err := ext.deferBatch(b); err != nil {
					return nil, err
				}
				continue
			}
			if err := eval.absorb(table, b); err != nil {
				return nil, err
			}
			if mem.enabled() && mem.charge(activeRowsBytes(b)) {
				if table, err = ext.overflow(table); err != nil {
					return nil, err
				}
			}
		}
		groups, err := ext.finish(table)
		if err != nil {
			return nil, err
		}
		// Global aggregation over an empty input yields one row. (An empty
		// input never spills, so the fresh insert covers the external path.)
		if len(eval.groupFns) == 0 && len(groups) == 0 {
			table.insert(nil, nil)
			groups = table.order
		}
		return emitGroupRows(groups, eval.aggs), nil
	}

	return &aggIter{run: run, in: in, width: width, bsize: ctx.batchSize}, nil
}

// aggIter materializes its groups on first NextBatch. run closes the input
// as soon as materialization finishes (success or error), releasing morsel
// scan workers promptly; the iterator drops its reference so consumer Close
// does not touch the input again.
type aggIter struct {
	run   func() ([][]variant.Value, error)
	in    batchIter
	width int
	bsize int
	out   *rowsIter
}

func (a *aggIter) NextBatch() (*vector.Batch, error) {
	if a.out == nil {
		rows, err := a.run()
		a.in = nil // run closed it
		if err != nil {
			return nil, err
		}
		a.out = &rowsIter{rows: rows, width: a.width, size: a.bsize}
	}
	return a.out.NextBatch()
}

func (a *aggIter) Close() {
	if a.in != nil {
		a.in.Close()
		a.in = nil
	}
}

// --- joins -------------------------------------------------------------------

// prepareJoin builds a hash join. buildWorkers > 1 (the ParallelJoinNode
// path) partitions the build side across workers; statNode names the plan
// node whose stats slot receives the build-phase accounting.
func prepareJoin(x *JoinNode, ctx *execContext, buildWorkers int, statNode Node) (batchIter, error) {
	left, err := prepare(x.Left, ctx)
	if err != nil {
		return nil, err
	}
	right, err := prepare(x.Right, ctx)
	if err != nil {
		left.Close()
		return nil, err
	}
	// Both children are live from here on; every compile failure below must
	// release them before bailing out.
	fail := func(err error) (batchIter, error) {
		left.Close()
		right.Close()
		return nil, err
	}
	combined := x.Schema()
	var residual evalFn
	if x.Residual != nil {
		residual, err = compileExpr(combined, x.Residual)
		if err != nil {
			return fail(err)
		}
	}
	var onFn evalFn
	if x.On != nil {
		onFn, err = compileExpr(combined, x.On)
		if err != nil {
			return fail(err)
		}
	}
	// Probe keys evaluate vectorized over the streamed left batches; build
	// keys evaluate row-wise over the materialized right side.
	leftKeys := make([]vecFn, len(x.LeftKeys))
	for i, k := range x.LeftKeys {
		leftKeys[i], err = compileVec(ctx, x.Left.Schema(), k)
		if err != nil {
			return fail(err)
		}
	}
	rightKeys := make([]evalFn, len(x.RightKeys))
	for i, k := range x.RightKeys {
		rightKeys[i], err = compileExpr(x.Right.Schema(), k)
		if err != nil {
			return fail(err)
		}
	}
	leftWidth := len(x.Left.Schema().Names)
	rightWidth := len(x.Right.Schema().Names)
	st := ctx.statsFor(statNode)
	return &joinIter{
		kind: x.Kind, left: left, right: right,
		leftKeys: leftKeys, rightKeys: rightKeys,
		rightKeyExprs: x.RightKeys, rightSchema: x.Right.Schema(),
		residual: residual, on: onFn,
		leftWidth: leftWidth, rightWidth: rightWidth,
		buildWorkers: buildWorkers, st: st,
		ectx: ctx, mem: ctx.opMemFor(statNode, st),
		bld: vector.NewBuilder(leftWidth+rightWidth, ctx.batchSize),
	}, nil
}

// buildList is one join key's build rows in input order. Entries are held
// by pointer so appending to a hot key never re-allocates its map key. When
// the build side spilled, offs holds the rows' spill-file offsets instead.
type buildList struct {
	rows [][]variant.Value
	offs []int64
}

type joinIter struct {
	kind          string
	left          batchIter
	right         batchIter
	leftKeys      []vecFn
	rightKeys     []evalFn
	rightKeyExprs []sqlast.Expr // recompiled per build worker
	rightSchema   *Schema
	residual      evalFn
	on            evalFn
	leftWidth     int
	rightWidth    int
	buildWorkers  int
	st            *OpStats
	ectx          *execContext
	mem           *opMem
	bld           *vector.Builder

	built     bool
	parts     []map[string]*buildList // disjoint hash partitions of the build side
	rightRows [][]variant.Value       // CROSS mode
	spillRun  *storage.SpillRun       // non-nil once the build side spilled
	buildRows int64
	keyBuf    []byte
	inDone    bool
}

// build drains and closes the build side, then constructs the partitioned
// hash table — in parallel when the join was physicalized with build
// workers and the build side is large enough to amortize them. The build
// side is closed exactly once here (and nilled so Close stays idempotent).
func (j *joinIter) build() error {
	rows, err := j.drainBuild()
	j.right.Close()
	j.right = nil
	if err != nil {
		return err
	}
	switch {
	case len(j.rightKeys) == 0:
		j.rightRows = rows
	case j.spillRun != nil:
		// The offset index was built incrementally during the spilling drain.
		if j.st != nil {
			j.st.Pipelines = 1
			j.st.MergeParts = 1
			j.st.LocalRows = j.buildRows
			j.st.MergedGroups = int64(len(j.parts[0]))
		}
	case j.buildWorkers > 1 && len(rows) >= minParallelBuildRows:
		if err := j.buildParallel(rows); err != nil {
			return err
		}
	default:
		if err := j.buildSequential(rows); err != nil {
			return err
		}
	}
	j.built = true
	return nil
}

// drainBuild materializes the build side under the memory budget. Once the
// budget trips (and the join is keyed), the drain switches to spilling:
// every surviving build row goes to an offset-indexed run and the hash index
// maps key bytes to file offsets, appended in input order — exactly the
// candidate order buildSequential produces in memory. CROSS joins have no
// key to index by and always stay in memory.
func (j *joinIter) drainBuild() ([][]variant.Value, error) {
	var rows [][]variant.Value
	var w *storage.RunWriter
	var enc []byte
	for {
		b, err := j.right.NextBatch()
		if err != nil {
			if w != nil {
				w.Abort()
			}
			return nil, err
		}
		if b == nil {
			break
		}
		if w == nil {
			rows = b.AppendRows(rows)
			// Charge unconditionally so CROSS builds count against the budget
			// and show up in MemPeakBytes; only keyed joins can act on the
			// overflow by spilling (a CROSS join has no key to index runs by).
			over := j.mem.enabled() && j.mem.charge(activeRowsBytes(b))
			if over && len(j.rightKeys) > 0 {
				if w, err = j.startBuildSpill(rows); err != nil {
					return nil, err
				}
				rows = nil
				j.mem.releaseAll()
			}
			continue
		}
		var rowBuf []variant.Value
		var rowErr error
		b.ForEach(func(i int) {
			if rowErr != nil {
				return
			}
			rowBuf = b.Row(i, rowBuf)
			rowErr = j.spillBuildRow(w, rowBuf, &enc)
		})
		if rowErr != nil {
			w.Abort()
			return nil, rowErr
		}
	}
	if w != nil {
		run, err := w.Finish()
		if err != nil {
			return nil, err
		}
		j.spillRun = run
		j.mem.noteSpill(run.Bytes())
	}
	return rows, nil
}

// startBuildSpill opens the build spill run and replays the rows drained so
// far through the same per-row path the rest of the stream will take, so the
// file and index hold the full build side in input order.
func (j *joinIter) startBuildSpill(rows [][]variant.Value) (*storage.RunWriter, error) {
	w, err := storage.NewRunWriter("join")
	if err != nil {
		return nil, err
	}
	j.parts = []map[string]*buildList{make(map[string]*buildList)}
	var enc []byte
	for _, row := range rows {
		if err := j.spillBuildRow(w, row, &enc); err != nil {
			w.Abort()
			return nil, err
		}
	}
	return w, nil
}

// spillBuildRow indexes and writes one build row. NULL-key rows are dropped
// entirely — they can never match an equi-join probe, exactly as
// buildSequential skips them.
func (j *joinIter) spillBuildRow(w *storage.RunWriter, row []variant.Value, enc *[]byte) error {
	j.buildRows++
	j.keyBuf = j.keyBuf[:0]
	for _, fn := range j.rightKeys {
		v, err := fn(row)
		if err != nil {
			return err
		}
		if v.IsNull() {
			return nil
		}
		j.keyBuf = v.AppendGroupKey(j.keyBuf)
	}
	*enc = encodeRowValues((*enc)[:0], row)
	off, err := w.WriteRecord(*enc)
	if err != nil {
		return err
	}
	m := j.parts[0]
	e, ok := m[string(j.keyBuf)]
	if !ok {
		e = &buildList{}
		m[string(j.keyBuf)] = e
	}
	e.offs = append(e.offs, off)
	return nil
}

// fetchSpilled materializes one candidate list from the build spill file, in
// the stored (input) order.
func (j *joinIter) fetchSpilled(offs []int64) ([][]variant.Value, error) {
	rows := make([][]variant.Value, len(offs))
	for i, off := range offs {
		rec, err := j.spillRun.ReadRecordAt(off)
		if err != nil {
			return nil, err
		}
		row, err := decodeRowValues(rec, j.rightWidth)
		if err != nil {
			return nil, err
		}
		rows[i] = row
	}
	return rows, nil
}

func (j *joinIter) buildSequential(rows [][]variant.Value) error {
	m := make(map[string]*buildList)
	j.parts = []map[string]*buildList{m}
	var kb []byte
	for _, row := range rows {
		kb = kb[:0]
		skip := false
		for _, fn := range j.rightKeys {
			v, err := fn(row)
			if err != nil {
				return err
			}
			if v.IsNull() {
				skip = true // NULL keys never match in equi-joins
				break
			}
			kb = v.AppendGroupKey(kb)
		}
		if skip {
			continue
		}
		e, ok := m[string(kb)]
		if !ok {
			e = &buildList{}
			m[string(kb)] = e
		}
		e.rows = append(e.rows, row)
	}
	if j.st != nil {
		j.st.Pipelines = 1
		j.st.MergeParts = 1
		j.st.LocalRows = int64(len(rows))
		j.st.MergedGroups = int64(len(m))
	}
	return nil
}

func (j *joinIter) NextBatch() (*vector.Batch, error) {
	if !j.built {
		if err := j.build(); err != nil {
			return nil, err
		}
	}
	for {
		if b := j.bld.Pop(); b != nil {
			return b, nil
		}
		if j.inDone {
			return j.bld.Flush(), nil
		}
		b, err := j.left.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			j.inDone = true
			continue
		}
		if err := j.probeBatch(b); err != nil {
			return nil, err
		}
	}
}

// probeBatch joins every active left row of one batch against the built
// right side, appending output rows to the builder. Probing is lock-free:
// the partitioned tables are read-only after build.
func (j *joinIter) probeBatch(b *vector.Batch) error {
	var kcols [][]variant.Value
	if j.parts != nil {
		kcols = make([][]variant.Value, len(j.leftKeys))
		for i, fn := range j.leftKeys {
			vals, err := fn(b)
			if err != nil {
				return err
			}
			kcols[i] = vals
		}
	}
	combined := make([]variant.Value, j.leftWidth+j.rightWidth)
	var rowErr error
	b.ForEach(func(i int) {
		if rowErr != nil {
			return
		}
		candidates := j.rightRows
		if j.parts != nil {
			j.keyBuf = j.keyBuf[:0]
			nullKey := false
			for k := range kcols {
				v := kcols[k][i]
				if v.IsNull() {
					nullKey = true
					break
				}
				j.keyBuf = v.AppendGroupKey(j.keyBuf)
			}
			candidates = nil
			if !nullKey {
				m := j.parts[bucketOfKey(j.keyBuf, len(j.parts))]
				if e, ok := m[string(j.keyBuf)]; ok {
					if j.spillRun != nil {
						candidates, rowErr = j.fetchSpilled(e.offs)
						if rowErr != nil {
							return
						}
					} else {
						candidates = e.rows
					}
				}
			}
		}
		for c := range b.Cols {
			combined[c] = b.Value(c, i)
		}
		emitted := false
		for _, rightRow := range candidates {
			copy(combined[j.leftWidth:], rightRow)
			ok, err := j.matches(combined)
			if err != nil {
				rowErr = err
				return
			}
			if ok {
				emitted = true
				j.bld.Append(append([]variant.Value(nil), combined...))
			}
		}
		if !emitted && j.kind == "LEFT OUTER" {
			for c := j.leftWidth; c < len(combined); c++ {
				combined[c] = variant.Null
			}
			j.bld.Append(append([]variant.Value(nil), combined...))
		}
	})
	return rowErr
}

func (j *joinIter) matches(combined []variant.Value) (bool, error) {
	for _, cond := range []evalFn{j.residual, j.on} {
		if cond == nil {
			continue
		}
		v, err := cond(combined)
		if err != nil {
			return false, err
		}
		if v.IsNull() || !truthySQL(v) {
			return false, nil
		}
	}
	return true, nil
}

// Close is idempotent: build already closed (and nilled) the right side, so
// closing a drained join must not touch it again — see the execclose lint
// fixture's earlyCloser pattern and TestJoinCloseIdempotent.
func (j *joinIter) Close() {
	if j.left != nil {
		j.left.Close()
		j.left = nil
	}
	if j.right != nil {
		j.right.Close()
		j.right = nil
	}
	j.spillRun.Close()
	if j.mem != nil {
		j.mem.releaseAll()
	}
}

// --- sort / limit / union -----------------------------------------------------

// prepareSort builds a sort. workers > 1 (the ParallelSortNode path) sorts
// per-worker runs merged stably; statNode receives the phase accounting.
func prepareSort(x *SortNode, ctx *execContext, workers int, statNode Node) (batchIter, error) {
	in, err := prepare(x.Input, ctx)
	if err != nil {
		return nil, err
	}
	keys := make([]vecFn, len(x.Keys))
	descs := make([]bool, len(x.Keys))
	for i, k := range x.Keys {
		fn, err := compileVec(ctx, x.Input.Schema(), k.Expr)
		if err != nil {
			in.Close()
			return nil, err
		}
		keys[i] = fn
		descs[i] = k.Desc
	}
	st := ctx.statsFor(statNode)
	return &sortIter{
		in: in, keys: keys, descs: descs,
		width: len(x.Input.Schema().Names), bsize: ctx.batchSize,
		workers: workers, st: st, ectx: ctx, mem: ctx.opMemFor(statNode, st),
	}, nil
}

type sortIter struct {
	in      batchIter
	keys    []vecFn
	descs   []bool
	width   int
	bsize   int
	workers int
	st      *OpStats
	ectx    *execContext
	mem     *opMem
	runs    []*storage.SpillRun // sorted on-disk chunks, in input order
	out     batchIter
}

func (s *sortIter) NextBatch() (*vector.Batch, error) {
	if s.out == nil {
		err := s.materialize()
		s.in = nil // materialize closed it
		if err != nil {
			return nil, err
		}
	}
	return s.out.NextBatch()
}

// sortRef addresses one row of the drained input: batch index + physical
// row index.
type sortRef struct{ b, i int }

// materialize drains the input (closing it as soon as the drain finishes,
// so morsel scan workers release promptly), evaluates the sort keys
// batch-wise, and stably sorts the global row index — ties keep their input
// order even when the rows arrived from a parallel scan's ordered merge.
// With workers > 1 the comparison sort fans out into per-worker runs joined
// by a stability-preserving multiway merge; key evaluation stays sequential
// in input order either way.
//
// Under a memory limit the buffered chunk spills: it is stably sorted and
// written (rows plus their already-evaluated keys — stateful key expressions
// must evaluate exactly once, in input order) as one on-disk run. Runs are
// consecutive input chunks, so the final earliest-run-tiebreak k-way merge
// equals the global stable sort byte for byte.
func (s *sortIter) materialize() error {
	defer s.in.Close()
	var batches []*vector.Batch
	var keyCols [][][]variant.Value // [batch][key] -> physical-aligned values
	var refs []sortRef
	// less is pure (reads only the detached key vectors), so parallel run
	// sorting shares it safely across workers.
	less := func(ra, rb sortRef) bool {
		for k := range s.keys {
			c := variant.Compare(keyCols[ra.b][k][ra.i], keyCols[rb.b][k][rb.i])
			if s.descs[k] {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	}
	sortChunk := func() error {
		if s.workers > 1 && len(refs) >= minParallelSortRows {
			var err error
			refs, err = parallelSortRefs(s.ectx, refs, less, s.workers, s.st)
			return err
		}
		sort.SliceStable(refs, func(a, b int) bool { return less(refs[a], refs[b]) })
		return nil
	}
	flushRun := func() error {
		if err := sortChunk(); err != nil {
			return err
		}
		run, err := writeSortRun(batches, keyCols, refs, s.width)
		if err != nil {
			return err
		}
		s.runs = append(s.runs, run)
		s.mem.noteSpill(run.Bytes())
		s.mem.releaseAll()
		batches, keyCols, refs = nil, nil, nil
		return nil
	}
	for {
		b, err := s.in.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		kc := make([][]variant.Value, len(s.keys))
		for k, fn := range s.keys {
			vals, err := fn(b)
			if err != nil {
				return err
			}
			// Key vectors outlive the batch loop (the global sort reads them
			// at the end), so detach them from the expressions' reusable
			// buffers.
			kc[k] = append([]variant.Value(nil), vals...)
		}
		bi := len(batches)
		batches = append(batches, b)
		keyCols = append(keyCols, kc)
		b.ForEach(func(i int) {
			refs = append(refs, sortRef{b: bi, i: i})
		})
		if s.mem.enabled() && s.mem.charge(activeRowsBytes(b)) {
			if err := flushRun(); err != nil {
				return err
			}
		}
	}
	if len(s.runs) == 0 {
		if err := sortChunk(); err != nil {
			return err
		}
		rows := make([][]variant.Value, len(refs))
		for n, r := range refs {
			row := make([]variant.Value, s.width)
			for c := 0; c < s.width; c++ {
				row[c] = batches[r.b].Value(c, r.i)
			}
			rows[n] = row
		}
		s.out = &rowsIter{rows: rows, width: s.width, size: s.bsize}
		return nil
	}
	if len(refs) > 0 {
		if err := flushRun(); err != nil {
			return err
		}
	}
	s.out = newSortRunMerge(s.runs, s.descs, s.width, s.bsize)
	return nil
}

func (s *sortIter) Close() {
	if s.in != nil {
		s.in.Close()
		s.in = nil
	}
	if s.out != nil {
		s.out.Close()
	}
	for _, r := range s.runs {
		r.Close()
	}
	s.runs = nil
	if s.mem != nil {
		s.mem.releaseAll()
	}
}

type limitIter struct {
	in        batchIter
	remaining int64
}

func (l *limitIter) NextBatch() (*vector.Batch, error) {
	if l.remaining <= 0 {
		return nil, nil
	}
	b, err := l.in.NextBatch()
	if err != nil || b == nil {
		return nil, err
	}
	n := int64(b.NumRows())
	if n > l.remaining {
		b.Truncate(int(l.remaining))
		n = l.remaining
	}
	l.remaining -= n
	return b, nil
}

func (l *limitIter) Close() { l.in.Close() }

type unionIter struct {
	iters []batchIter
	idx   int
}

func (u *unionIter) NextBatch() (*vector.Batch, error) {
	for u.idx < len(u.iters) {
		b, err := u.iters[u.idx].NextBatch()
		if err != nil {
			return nil, err
		}
		if b != nil {
			return b, nil
		}
		u.idx++
	}
	return nil, nil
}

func (u *unionIter) Close() {
	for _, it := range u.iters {
		it.Close()
	}
}
