package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestGovernedSpillParity pins the pool accounting end to end: queries run
// under a saturated global pool must spill instead of failing, produce rows
// byte-identical to an ungoverned engine, and return every reserved byte to
// the pool when they finish.
func TestGovernedSpillParity(t *testing.T) {
	ref := spillEngine(t)
	gov := NewGovernor(GovernorConfig{MemLimit: 64 * 1024})
	governed := spillEngine(t, WithGovernor(gov))

	var spills int64
	for _, q := range spillParityQueries {
		want, err := ref.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := governed.Query(q)
		if err != nil {
			t.Fatalf("governed %s: %v", q, err)
		}
		if renderRows(got) != renderRows(want) {
			t.Errorf("%s: governed rows diverge from ungoverned reference", q)
		}
		spills += got.Metrics.Spills
	}
	if spills == 0 {
		t.Error("no query spilled under a 64KiB global pool")
	}
	snap := gov.Snapshot()
	if snap.MemUsedBytes != 0 {
		t.Errorf("pool holds %d bytes after all queries finished, want 0", snap.MemUsedBytes)
	}
	if snap.MemPeakBytes == 0 {
		t.Error("pool peak is 0; queries never drew from the pool")
	}
}

// TestGovernedConcurrentPool runs governed queries concurrently: the pool is
// shared, results stay correct, and usage drains to zero afterwards.
func TestGovernedConcurrentPool(t *testing.T) {
	gov := NewGovernor(GovernorConfig{MemLimit: 96 * 1024})
	e := spillEngine(t, WithGovernor(gov), WithParallelism(2))
	ref := spillEngine(t, WithParallelism(2))
	want := make(map[string]string)
	for _, q := range spillParityQueries {
		res, err := ref.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want[q] = renderRows(res)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				q := spillParityQueries[(w+i)%len(spillParityQueries)]
				res, err := e.Query(q)
				if err != nil {
					errc <- err
					return
				}
				if renderRows(res) != want[q] {
					errc <- errors.New(q + ": rows diverge under shared pool")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if used := gov.Snapshot().MemUsedBytes; used != 0 {
		t.Errorf("pool holds %d bytes after concurrent queries, want 0", used)
	}
}

func TestAdmitSlotExhaustionSheds(t *testing.T) {
	g := NewGovernor(GovernorConfig{TenantSlots: 1, QueueTimeout: 20 * time.Millisecond})
	release, err := g.Admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	// Same tenant, slot held: sheds after the queue timeout.
	start := time.Now()
	_, err = g.Admit(context.Background(), "a")
	var aerr *AdmissionError
	if !errors.As(err, &aerr) {
		t.Fatalf("second Admit error = %v, want *AdmissionError", err)
	}
	if aerr.Tenant != "a" || aerr.RetryAfter <= 0 {
		t.Fatalf("AdmissionError = %+v, want tenant a with positive RetryAfter", aerr)
	}
	if waited := time.Since(start); waited < 20*time.Millisecond {
		t.Fatalf("shed after %s, before the queue timeout", waited)
	}
	// Other tenants are unaffected by tenant a's saturation.
	r2, err := g.Admit(context.Background(), "b")
	if err != nil {
		t.Fatalf("tenant b blocked by tenant a: %v", err)
	}
	r2()
	// Releasing the slot lets the tenant back in; release is idempotent.
	release()
	release()
	r3, err := g.Admit(context.Background(), "a")
	if err != nil {
		t.Fatalf("Admit after release: %v", err)
	}
	r3()
	snap := g.Snapshot()
	if snap.ShedTotal != 1 || snap.AdmittedTotal != 3 || snap.Active != 0 {
		t.Fatalf("snapshot = %+v, want 1 shed, 3 admitted, 0 active", snap)
	}
}

func TestAdmitQueueDepthShedsImmediately(t *testing.T) {
	g := NewGovernor(GovernorConfig{TenantSlots: 1, QueueTimeout: time.Second, QueueDepth: 1})
	release, err := g.Admit(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	// Fill the single queue slot with a blocked waiter.
	waiting := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(waiting)
		_, err := g.Admit(context.Background(), "")
		done <- err
	}()
	<-waiting
	for g.Snapshot().Waiting == 0 {
		time.Sleep(time.Millisecond)
	}
	// The next request must shed instantly — no QueueTimeout wait.
	start := time.Now()
	_, err = g.Admit(context.Background(), "")
	var aerr *AdmissionError
	if !errors.As(err, &aerr) {
		t.Fatalf("over-depth Admit error = %v, want *AdmissionError", err)
	}
	if aerr.Reason != "admission queue full" {
		t.Fatalf("reason = %q, want admission queue full", aerr.Reason)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("queue-full shed waited instead of failing fast")
	}
	// Unblock the queued waiter and let it through.
	release()
	if err := <-done; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
}

func TestAdmitContextCancelWhileQueued(t *testing.T) {
	g := NewGovernor(GovernorConfig{TenantSlots: 1, QueueTimeout: 5 * time.Second})
	release, err := g.Admit(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := g.Admit(ctx, "")
		done <- err
	}()
	for g.Snapshot().Waiting == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("queued Admit error = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter never woke")
	}
	if w := g.Snapshot().Waiting; w != 0 {
		t.Fatalf("%d waiters left after cancel, want 0", w)
	}
}

// TestAdmitPoolPressureRecovers pins pool-based admission: a saturated pool
// blocks new admissions, and returning bytes wakes the queued waiter.
func TestAdmitPoolPressureRecovers(t *testing.T) {
	g := NewGovernor(GovernorConfig{MemLimit: 1024, QueueTimeout: 5 * time.Second})
	if ok := g.reserve(2048); ok {
		t.Fatal("reserve over the limit reported in-budget")
	}
	done := make(chan error, 1)
	go func() {
		release, err := g.Admit(context.Background(), "")
		if err == nil {
			release()
		}
		done <- err
	}()
	for g.Snapshot().Waiting == 0 {
		time.Sleep(time.Millisecond)
	}
	g.releaseMem(2048)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Admit after pool drain: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pool drain never woke the admission waiter")
	}
}
