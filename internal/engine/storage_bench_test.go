package engine

import (
	"fmt"
	"testing"

	"jsonpark/internal/bench"
)

// BenchmarkTypedVsVariantScan measures the storage-v2 typed kernels against
// the variant fallback on scan-heavy single-threaded pipelines. The same
// dataset is loaded twice — once with typed shredding (the default) and once
// with WithTypedColumns(false), which keeps every chunk in the v1 variant
// layout — so the delta isolates the encoding + kernel path. Queries are
// chosen so the hot loop is the scan/filter/arithmetic, not the aggregate.
func BenchmarkTypedVsVariantScan(b *testing.B) {
	const rows = 20000
	queries := []struct{ name, sql string }{
		{"filter-count", `SELECT COUNT(*) FROM "bench" WHERE "val" > 3`},
		{"filter-agg", `SELECT "grp", COUNT(*), MIN("val"), MAX("val") FROM "bench" WHERE "val" > 3 GROUP BY "grp"`},
		{"arith-filter", `SELECT COUNT(*) FROM "bench" WHERE "id" % 7 = 0 AND "id" * 2 < 30000`},
		{"colcol-filter", `SELECT COUNT(*) FROM "bench" WHERE "id" > "grp"`},
	}
	for _, mode := range []struct {
		name  string
		typed bool
	}{{"typed", true}, {"variant", false}} {
		for _, q := range queries {
			b.Run(fmt.Sprintf("%s/mode=%s", q.name, mode.name), func(b *testing.B) {
				var extra []Option
				if !mode.typed {
					extra = append(extra, WithTypedColumns(false))
				}
				e := benchEngine(b, 1024, 1, rows, extra...)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := e.Query(q.sql); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				benchRecorder.Add(bench.Record{
					Experiment: "typed-vs-variant",
					Query:      q.sql,
					System:     fmt.Sprintf("%s/batch=1024", mode.name),
					Scale:      float64(rows),
					MeanMicros: b.Elapsed().Microseconds() / int64(b.N),
					Runs:       b.N,
				})
			})
		}
	}
}
