package engine

import (
	"fmt"
	"strings"

	"jsonpark/internal/sqlast"
	"jsonpark/internal/variant"
)

// Schema names the columns of a row stream. Later duplicates shadow earlier
// ones, matching SELECT-list alias behaviour.
type Schema struct {
	Names []string
	index map[string]int
}

// NewSchema builds a schema from column names.
func NewSchema(names []string) *Schema {
	s := &Schema{Names: append([]string(nil), names...), index: make(map[string]int, len(names))}
	for i, n := range names {
		s.index[n] = i
	}
	return s
}

// Lookup returns the position of a column.
func (s *Schema) Lookup(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Extend returns a new schema with extra columns appended.
func (s *Schema) Extend(names ...string) *Schema {
	return NewSchema(append(append([]string(nil), s.Names...), names...))
}

// evalFn evaluates one compiled expression against a row.
type evalFn func(row []variant.Value) (variant.Value, error)

// compileExpr binds a SQL expression to a schema, producing an evaluator.
// Flatten pseudo-columns resolve as "<alias>.VALUE" / "<alias>.INDEX".
func compileExpr(sc *Schema, e sqlast.Expr) (evalFn, error) {
	switch x := e.(type) {
	case *sqlast.Lit:
		v := x.Value
		return func([]variant.Value) (variant.Value, error) { return v, nil }, nil
	case *sqlast.ColRef:
		name := x.Name
		if x.Table != "" {
			name = x.Table + "." + x.Name
		}
		i, ok := sc.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("engine: unknown column %q (have %v)", name, sc.Names)
		}
		return func(row []variant.Value) (variant.Value, error) { return row[i], nil }, nil
	case *sqlast.Star:
		return nil, fmt.Errorf("engine: '*' is only valid in COUNT(*) or a select list")
	case *sqlast.FuncCall:
		return compileFuncCall(sc, x)
	case *sqlast.Binary:
		return compileBinary(sc, x)
	case *sqlast.Unary:
		operand, err := compileExpr(sc, x.Operand)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "-":
			return func(row []variant.Value) (variant.Value, error) {
				v, err := operand(row)
				if err != nil {
					return variant.Null, err
				}
				return variant.Neg(v)
			}, nil
		case "NOT":
			return func(row []variant.Value) (variant.Value, error) {
				v, err := operand(row)
				if err != nil {
					return variant.Null, err
				}
				if v.IsNull() {
					return variant.Null, nil
				}
				return variant.Bool(!truthySQL(v)), nil
			}, nil
		}
		return nil, fmt.Errorf("engine: unknown unary operator %q", x.Op)
	case *sqlast.IsNull:
		operand, err := compileExpr(sc, x.Operand)
		if err != nil {
			return nil, err
		}
		negate := x.Negate
		return func(row []variant.Value) (variant.Value, error) {
			v, err := operand(row)
			if err != nil {
				return variant.Null, err
			}
			return variant.Bool(v.IsNull() != negate), nil
		}, nil
	case *sqlast.CaseWhen:
		type arm struct{ cond, result evalFn }
		arms := make([]arm, len(x.Whens))
		for i, w := range x.Whens {
			c, err := compileExpr(sc, w.Cond)
			if err != nil {
				return nil, err
			}
			r, err := compileExpr(sc, w.Result)
			if err != nil {
				return nil, err
			}
			arms[i] = arm{c, r}
		}
		var els evalFn
		if x.Else != nil {
			var err error
			els, err = compileExpr(sc, x.Else)
			if err != nil {
				return nil, err
			}
		}
		return func(row []variant.Value) (variant.Value, error) {
			for _, a := range arms {
				c, err := a.cond(row)
				if err != nil {
					return variant.Null, err
				}
				if !c.IsNull() && truthySQL(c) {
					return a.result(row)
				}
			}
			if els != nil {
				return els(row)
			}
			return variant.Null, nil
		}, nil
	case *sqlast.Cast:
		operand, err := compileExpr(sc, x.Operand)
		if err != nil {
			return nil, err
		}
		typ := strings.ToUpper(x.Type)
		return func(row []variant.Value) (variant.Value, error) {
			v, err := operand(row)
			if err != nil || v.IsNull() {
				return v, err
			}
			return castValue(typ, v)
		}, nil
	}
	return nil, fmt.Errorf("engine: cannot compile expression %T", e)
}

func compileFuncCall(sc *Schema, x *sqlast.FuncCall) (evalFn, error) {
	name := strings.ToUpper(x.Name)
	if isAggregateName(name) {
		return nil, fmt.Errorf("engine: aggregate %s outside GROUP BY context", name)
	}
	if name == "SEQ8" || name == "SEQ4" {
		// Monotone per-operator sequence, used for row-ID injection (§IV-B).
		var counter int64
		return func([]variant.Value) (variant.Value, error) {
			v := variant.Int(counter)
			counter++
			return v, nil
		}, nil
	}
	fn, ok := scalarFuncs[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown function %s", name)
	}
	args := make([]evalFn, len(x.Args))
	for i, a := range x.Args {
		c, err := compileExpr(sc, a)
		if err != nil {
			return nil, err
		}
		args[i] = c
	}
	return func(row []variant.Value) (variant.Value, error) {
		vals := make([]variant.Value, len(args))
		for i, a := range args {
			v, err := a(row)
			if err != nil {
				return variant.Null, err
			}
			vals[i] = v
		}
		return fn(vals)
	}, nil
}

func compileBinary(sc *Schema, x *sqlast.Binary) (evalFn, error) {
	left, err := compileExpr(sc, x.Left)
	if err != nil {
		return nil, err
	}
	right, err := compileExpr(sc, x.Right)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "AND":
		return func(row []variant.Value) (variant.Value, error) {
			l, err := left(row)
			if err != nil {
				return variant.Null, err
			}
			if !l.IsNull() && !truthySQL(l) {
				return variant.Bool(false), nil
			}
			r, err := right(row)
			if err != nil {
				return variant.Null, err
			}
			if !r.IsNull() && !truthySQL(r) {
				return variant.Bool(false), nil
			}
			if l.IsNull() || r.IsNull() {
				return variant.Null, nil
			}
			return variant.Bool(true), nil
		}, nil
	case "OR":
		return func(row []variant.Value) (variant.Value, error) {
			l, err := left(row)
			if err != nil {
				return variant.Null, err
			}
			if !l.IsNull() && truthySQL(l) {
				return variant.Bool(true), nil
			}
			r, err := right(row)
			if err != nil {
				return variant.Null, err
			}
			if !r.IsNull() && truthySQL(r) {
				return variant.Bool(true), nil
			}
			if l.IsNull() || r.IsNull() {
				return variant.Null, nil
			}
			return variant.Bool(false), nil
		}, nil
	}
	fn, err := scalarBinOp(x.Op)
	if err != nil {
		return nil, err
	}
	return func(row []variant.Value) (variant.Value, error) {
		l, err := left(row)
		if err != nil {
			return variant.Null, err
		}
		r, err := right(row)
		if err != nil {
			return variant.Null, err
		}
		return fn(l, r)
	}, nil
}

// scalarBinOp returns the elementwise kernel of a non-logical binary
// operator, shared by the row and batch expression compilers.
func scalarBinOp(op string) (func(l, r variant.Value) (variant.Value, error), error) {
	switch op {
	case "+":
		return variant.Add, nil
	case "-":
		return variant.Sub, nil
	case "*":
		return variant.Mul, nil
	case "/":
		return variant.Div, nil
	case "%":
		return variant.Mod, nil
	case "||":
		return func(l, r variant.Value) (variant.Value, error) {
			if l.IsNull() || r.IsNull() {
				return variant.Null, nil
			}
			ls, rs := l, r
			if ls.Kind() != variant.KindString {
				ls = variant.String(ls.JSON())
			}
			if rs.Kind() != variant.KindString {
				rs = variant.String(rs.JSON())
			}
			return variant.String(ls.AsString() + rs.AsString()), nil
		}, nil
	case "=", "<>", "<", "<=", ">", ">=":
		return func(l, r variant.Value) (variant.Value, error) {
			if l.IsNull() || r.IsNull() {
				return variant.Null, nil
			}
			c := variant.Compare(l, r)
			switch op {
			case "=":
				return variant.Bool(c == 0), nil
			case "<>":
				return variant.Bool(c != 0), nil
			case "<":
				return variant.Bool(c < 0), nil
			case "<=":
				return variant.Bool(c <= 0), nil
			case ">":
				return variant.Bool(c > 0), nil
			}
			return variant.Bool(c >= 0), nil
		}, nil
	}
	return nil, fmt.Errorf("engine: unknown binary operator %q", op)
}

// castValue applies a CAST to a non-NULL value; typ is already upper-cased.
// Shared by the row and batch expression compilers.
func castValue(typ string, v variant.Value) (variant.Value, error) {
	switch typ {
	case "INT", "INTEGER", "NUMBER", "BIGINT":
		i, err := variant.ToInt(v)
		if err != nil {
			return variant.Null, err
		}
		return variant.Int(i), nil
	case "DOUBLE", "FLOAT", "REAL":
		f, err := variant.ToFloat(v)
		if err != nil {
			return variant.Null, err
		}
		return variant.Float(f), nil
	case "VARCHAR", "STRING", "TEXT":
		if v.Kind() == variant.KindString {
			return v, nil
		}
		return variant.String(v.JSON()), nil
	case "BOOLEAN":
		return variant.Bool(truthySQL(v)), nil
	case "VARIANT":
		return v, nil
	}
	return variant.Null, fmt.Errorf("engine: unsupported cast type %q", typ)
}

// truthySQL reports SQL boolean truth: only boolean TRUE is true; numbers
// are true when non-zero (Snowflake-style implicit boolean coercion).
func truthySQL(v variant.Value) bool {
	switch v.Kind() {
	case variant.KindBool:
		return v.AsBool()
	case variant.KindInt, variant.KindFloat:
		return v.AsFloat() != 0
	}
	return false
}
