package engine

import (
	"encoding/binary"
	"fmt"

	"jsonpark/internal/storage"
	"jsonpark/internal/variant"
	"jsonpark/internal/vector"
)

// Spill-to-disk for the three pipeline breakers. Every format here round-
// trips through the exact binary variant codec (variant/serial.go), so a
// value read back from disk is bit-identical to the value that was written —
// the foundation of the byte-identical-output guarantee at any memory limit.
//
// Three spill strategies, one per breaker:
//
//   - Hash aggregation, mergeable aggregates: the whole table spills as one
//     run of exact partial states (group key, insertion rank, key values,
//     accumulator states). Runs plus the final live table are folded back in
//     spill order, which is input order, so mergeAccumulators reproduces the
//     sequential fold exactly (the aggsMergeable proof).
//   - Hash aggregation, order-exact aggregates (float SUM/AVG, unknown
//     names): partial states do not merge exactly, so after overflow the
//     remaining input tuples are deferred to disk — already evaluated, in
//     input order — and replayed through the very same foldRow at the end.
//     The pre-overflow table stays in memory (a documented floor on the
//     effective limit); the fold sequence is identical, hence so is every
//     accumulator bit.
//   - Sort: the buffered chunk is stably sorted and written (rows plus their
//     evaluated keys) as one run; consecutive runs are consecutive input
//     chunks, so the earliest-run-tiebreak k-way merge equals the global
//     stable sort.
//   - Join build: rows go to an offset-indexed run, the in-memory hash index
//     maps key bytes to offsets in input order, and probes fetch candidates
//     by offset — same candidates, same order, as the in-memory build.

// activeRowsBytes is the conservative retained-bytes charge for one batch:
// the deep size of every active row. Operators charge it per absorbed batch;
// it is an upper bound on what the structures built from those rows retain,
// so overcharging can only spill earlier, never change output.
func activeRowsBytes(b *vector.Batch) int64 {
	var n int64
	b.ForEach(func(i int) {
		for c := range b.Cols {
			n += b.Value(c, i).DeepSizeBytes()
		}
	})
	return n
}

// --- generic row codec --------------------------------------------------------

// encodeRowValues appends every column value of one row with the exact codec.
func encodeRowValues(dst []byte, row []variant.Value) []byte {
	for _, v := range row {
		dst = v.AppendBinary(dst)
	}
	return dst
}

// decodeRowValues decodes a width-column row written by encodeRowValues.
func decodeRowValues(rec []byte, width int) ([]variant.Value, error) {
	row := make([]variant.Value, width)
	var err error
	for c := 0; c < width; c++ {
		row[c], rec, err = variant.DecodeBinary(rec)
		if err != nil {
			return nil, err
		}
	}
	if len(rec) != 0 {
		return nil, fmt.Errorf("engine: spilled row has %d trailing bytes", len(rec))
	}
	return row, nil
}

// --- accumulator partial-state codec ------------------------------------------

// Tags keep decode strict: a state decoded under the wrong spec fails fast
// instead of silently mis-folding.
const (
	accStateCount         = 'c'
	accStateCountIf       = 'i'
	accStateCountDistinct = 'd'
	accStateMinMax        = 'm'
	accStateAnyValue      = 'v'
	accStateBool          = 'b'
	accStateArrayAgg      = 'a'
)

// encodeAccState appends acc's exact partial state. Only the aggregates
// admitted by aggsMergeable are encodable — the aggregation spill path picks
// the tuple-replay strategy for everything else before ever getting here.
func encodeAccState(dst []byte, acc accumulator) ([]byte, error) {
	switch a := acc.(type) {
	case *countAcc:
		dst = append(dst, accStateCount)
		dst = binary.AppendVarint(dst, a.n)
	case *countIfAcc:
		dst = append(dst, accStateCountIf)
		dst = binary.AppendVarint(dst, a.n)
	case *countDistinctAcc:
		// Map iteration order is nondeterministic, which only affects file
		// bytes: the restored set is equal, and COUNT(DISTINCT) reads its size.
		dst = append(dst, accStateCountDistinct)
		dst = binary.AppendUvarint(dst, uint64(len(a.seen)))
		for k := range a.seen {
			dst = binary.AppendUvarint(dst, uint64(len(k)))
			dst = append(dst, k...)
		}
	case *minMaxAcc:
		dst = append(dst, accStateMinMax)
		dst = appendSpillBool(dst, a.any)
		if a.any {
			dst = a.best.AppendBinary(dst)
		}
	case *anyValueAcc:
		dst = append(dst, accStateAnyValue)
		dst = appendSpillBool(dst, a.any)
		if a.any {
			dst = a.v.AppendBinary(dst)
		}
	case *boolAgg:
		dst = append(dst, accStateBool)
		dst = appendSpillBool(dst, a.any)
		dst = appendSpillBool(dst, a.acc)
	case *arrayAggAcc:
		dst = append(dst, accStateArrayAgg)
		dst = binary.AppendUvarint(dst, uint64(len(a.vals)))
		for _, v := range a.vals {
			dst = v.AppendBinary(dst)
		}
		// orders is either empty or aligned with vals.
		dst = binary.AppendUvarint(dst, uint64(len(a.orders)))
		for _, ord := range a.orders {
			dst = binary.AppendUvarint(dst, uint64(len(ord)))
			for _, k := range ord {
				dst = k.AppendBinary(dst)
			}
		}
	default:
		return nil, fmt.Errorf("engine: aggregate %T has no spillable partial state", acc)
	}
	return dst, nil
}

// decodeAccState restores one partial state into a fresh accumulator built
// from spec (which re-supplies the static config: star, dir, isAnd,
// distinct). Returns the accumulator and the remaining bytes.
func decodeAccState(spec AggSpec, src []byte) (accumulator, []byte, error) {
	if len(src) == 0 {
		return nil, nil, fmt.Errorf("engine: truncated accumulator state")
	}
	tag := src[0]
	src = src[1:]
	acc := newAccumulator(spec)
	var err error
	switch a := acc.(type) {
	case *countAcc:
		if tag != accStateCount {
			return nil, nil, fmt.Errorf("engine: accumulator state tag %q for COUNT", tag)
		}
		a.n, src, err = readSpillVarint(src)
	case *countIfAcc:
		if tag != accStateCountIf {
			return nil, nil, fmt.Errorf("engine: accumulator state tag %q for COUNT_IF", tag)
		}
		a.n, src, err = readSpillVarint(src)
	case *countDistinctAcc:
		if tag != accStateCountDistinct {
			return nil, nil, fmt.Errorf("engine: accumulator state tag %q for COUNT DISTINCT", tag)
		}
		var n uint64
		n, src, err = readSpillUvarint(src)
		for i := uint64(0); err == nil && i < n; i++ {
			var kl uint64
			kl, src, err = readSpillUvarint(src)
			if err != nil {
				break
			}
			if uint64(len(src)) < kl {
				err = fmt.Errorf("engine: truncated distinct key")
				break
			}
			a.seen[string(src[:kl])] = true
			src = src[kl:]
		}
	case *minMaxAcc:
		if tag != accStateMinMax {
			return nil, nil, fmt.Errorf("engine: accumulator state tag %q for MIN/MAX", tag)
		}
		a.any, src, err = readSpillBool(src)
		if err == nil && a.any {
			a.best, src, err = variant.DecodeBinary(src)
		}
	case *anyValueAcc:
		if tag != accStateAnyValue {
			return nil, nil, fmt.Errorf("engine: accumulator state tag %q for ANY_VALUE", tag)
		}
		a.any, src, err = readSpillBool(src)
		if err == nil && a.any {
			a.v, src, err = variant.DecodeBinary(src)
		}
	case *boolAgg:
		if tag != accStateBool {
			return nil, nil, fmt.Errorf("engine: accumulator state tag %q for BOOL agg", tag)
		}
		a.any, src, err = readSpillBool(src)
		if err == nil {
			a.acc, src, err = readSpillBool(src)
		}
	case *arrayAggAcc:
		if tag != accStateArrayAgg {
			return nil, nil, fmt.Errorf("engine: accumulator state tag %q for ARRAY_AGG", tag)
		}
		var n uint64
		n, src, err = readSpillUvarint(src)
		for i := uint64(0); err == nil && i < n; i++ {
			var v variant.Value
			v, src, err = variant.DecodeBinary(src)
			if err != nil {
				break
			}
			a.vals = append(a.vals, v)
			if a.distinct {
				// The seen set is exactly the group keys of the kept values.
				a.kbuf = v.AppendGroupKey(a.kbuf[:0])
				a.seen[string(a.kbuf)] = true
			}
		}
		if err == nil {
			var no uint64
			no, src, err = readSpillUvarint(src)
			for i := uint64(0); err == nil && i < no; i++ {
				var nk uint64
				nk, src, err = readSpillUvarint(src)
				if err != nil {
					break
				}
				ord := make([]variant.Value, nk)
				for k := uint64(0); k < nk; k++ {
					ord[k], src, err = variant.DecodeBinary(src)
					if err != nil {
						break
					}
				}
				if err == nil {
					a.orders = append(a.orders, ord)
				}
			}
		}
	default:
		return nil, nil, fmt.Errorf("engine: aggregate %T has no spillable partial state", acc)
	}
	if err != nil {
		return nil, nil, err
	}
	return acc, src, nil
}

func appendSpillBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func readSpillBool(src []byte) (bool, []byte, error) {
	if len(src) == 0 {
		return false, nil, fmt.Errorf("engine: truncated spill bool")
	}
	return src[0] != 0, src[1:], nil
}

func readSpillVarint(src []byte) (int64, []byte, error) {
	v, n := binary.Varint(src)
	if n <= 0 {
		return 0, nil, fmt.Errorf("engine: truncated spill varint")
	}
	return v, src[n:], nil
}

func readSpillUvarint(src []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, nil, fmt.Errorf("engine: truncated spill uvarint")
	}
	return v, src[n:], nil
}

// --- aggregation table state spill --------------------------------------------

// spillAggTable serializes t's groups, in insertion order, as one run.
// Record: key bytes, insertion rank, key values, one partial state per
// aggregate.
func spillAggTable(t *aggTable, tag string) (*storage.SpillRun, error) {
	w, err := storage.NewRunWriter(tag)
	if err != nil {
		return nil, err
	}
	var rec []byte
	for _, g := range t.order {
		rec = rec[:0]
		rec = binary.AppendUvarint(rec, uint64(len(g.key)))
		rec = append(rec, g.key...)
		rec = binary.AppendUvarint(rec, uint64(g.seq))
		rec = binary.AppendUvarint(rec, uint64(len(g.keys)))
		for _, kv := range g.keys {
			rec = kv.AppendBinary(rec)
		}
		for _, acc := range g.accs {
			rec, err = encodeAccState(rec, acc)
			if err != nil {
				w.Abort()
				return nil, err
			}
		}
		if _, err := w.WriteRecord(rec); err != nil {
			w.Abort()
			return nil, err
		}
	}
	return w.Finish()
}

// decodeSpilledGroup restores one group record. When wantBucket >= 0 the
// record is parsed only as far as its key; records hashing to a different
// merge partition return (nil, nil) so concurrent merge workers can scan one
// run cheaply.
func decodeSpilledGroup(rec []byte, aggs []compiledAgg, wantBucket int32, parts int) (*aggGroup, error) {
	kl, rec, err := readSpillUvarint(rec)
	if err != nil {
		return nil, err
	}
	if uint64(len(rec)) < kl {
		return nil, fmt.Errorf("engine: truncated spilled group key")
	}
	keyBytes := rec[:kl]
	rec = rec[kl:]
	bucket := int32(0)
	if parts > 1 {
		bucket = bucketOfKey(keyBytes, parts)
	}
	if wantBucket >= 0 && bucket != wantBucket {
		return nil, nil
	}
	seq, rec, err := readSpillUvarint(rec)
	if err != nil {
		return nil, err
	}
	nk, rec, err := readSpillUvarint(rec)
	if err != nil {
		return nil, err
	}
	g := &aggGroup{key: string(keyBytes), seq: int32(seq), bucket: bucket}
	if nk > 0 {
		g.keys = make([]variant.Value, nk)
		for i := uint64(0); i < nk; i++ {
			g.keys[i], rec, err = variant.DecodeBinary(rec)
			if err != nil {
				return nil, err
			}
		}
	}
	g.accs = make([]accumulator, len(aggs))
	for i := range aggs {
		g.accs[i], rec, err = decodeAccState(aggs[i].spec, rec)
		if err != nil {
			return nil, err
		}
	}
	if len(rec) != 0 {
		return nil, fmt.Errorf("engine: spilled group has %d trailing bytes", len(rec))
	}
	return g, nil
}

// mergeSpilledAgg folds the spill runs (in spill order) and then the final
// live table into one group list. Spill order is input order, so merging a
// group's partials in source order reproduces the sequential fold; a group's
// first source is where it was globally first seen, so appending on first
// sight reproduces sequential first-seen output order.
func mergeSpilledAgg(ectx *execContext, runs []*storage.SpillRun, final *aggTable, aggs []compiledAgg) ([]*aggGroup, error) {
	seen := make(map[string]*aggGroup)
	var out []*aggGroup
	fold := func(g *aggGroup) error {
		dst, ok := seen[g.key]
		if !ok {
			seen[g.key] = g
			out = append(out, g)
			return nil
		}
		for a := range dst.accs {
			if err := mergeAccumulators(dst.accs[a], g.accs[a]); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range runs {
		rr := r.NewReader()
		for {
			// The runs can hold far more groups than any one batch; a
			// cancelled query must not replay them all before noticing.
			if err := ectx.cancelled(); err != nil {
				return nil, err
			}
			rec, err := rr.Next()
			if err != nil {
				return nil, err
			}
			if rec == nil {
				break
			}
			g, err := decodeSpilledGroup(rec, aggs, -1, 1)
			if err != nil {
				return nil, err
			}
			if err := fold(g); err != nil {
				return nil, err
			}
		}
	}
	for _, g := range final.order {
		if err := fold(g); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// --- sequential aggregation governance ----------------------------------------

// extAgg is the external (memory-governed) state of one sequential
// aggregation: either a list of whole-table state runs (mergeable
// aggregates) or a deferred-tuple run (order-exact aggregates).
type extAgg struct {
	mem       *opMem
	mergeable bool
	eval      *aggEval
	runs      []*storage.SpillRun
	tw        *storage.RunWriter
}

// deferring reports whether the aggregation switched to deferring raw input
// tuples to disk.
func (x *extAgg) deferring() bool { return x.tw != nil }

// overflow moves state out of memory after the budget tripped. Mergeable
// aggregates serialize the whole table and continue into a fresh one;
// order-exact aggregates switch to deferring tuples (the current table stays
// resident — its fold must resume bit-exactly at replay).
func (x *extAgg) overflow(t *aggTable) (*aggTable, error) {
	if x.mergeable {
		run, err := spillAggTable(t, "agg")
		if err != nil {
			return nil, err
		}
		x.runs = append(x.runs, run)
		x.mem.noteSpill(run.Bytes())
		x.mem.releaseAll()
		return newAggTable(x.eval.aggs, t.buckets), nil
	}
	w, err := storage.NewRunWriter("aggdefer")
	if err != nil {
		return nil, err
	}
	x.tw = w
	return t, nil
}

// deferBatch evaluates one batch exactly like absorb and writes each active
// row's tuple to the deferral run instead of folding it.
func (x *extAgg) deferBatch(b *vector.Batch) error {
	return x.eval.spillTuples(x.tw, b)
}

// finish produces the final group list: replaying deferred tuples into the
// live table, merging state runs, or just handing back the table.
func (x *extAgg) finish(t *aggTable) ([]*aggGroup, error) {
	if x.tw != nil {
		run, err := x.tw.Finish()
		x.tw = nil
		if err != nil {
			return nil, err
		}
		x.runs = append(x.runs, run) // discard() will remove it
		x.mem.noteSpill(run.Bytes())
		if err := x.eval.replayTuples(x.mem.ctx, run, t); err != nil {
			return nil, err
		}
		return t.order, nil
	}
	if len(x.runs) == 0 {
		return t.order, nil
	}
	return mergeSpilledAgg(x.mem.ctx, x.runs, t, x.eval.aggs)
}

// discard releases every on-disk and accounted resource; safe after finish.
func (x *extAgg) discard() {
	if x.tw != nil {
		x.tw.Abort()
		x.tw = nil
	}
	for _, r := range x.runs {
		r.Close()
	}
	x.runs = nil
	x.mem.releaseAll()
}

// --- deferred tuple spill / replay --------------------------------------------

// evalBatch evaluates the grouping, argument and order expressions over one
// batch — the shared column phase of absorb and spillTuples.
func (e *aggEval) evalBatch(b *vector.Batch) (gvals, avals [][]variant.Value, ovals [][][]variant.Value, err error) {
	gvals = make([][]variant.Value, len(e.groupFns))
	for i, fn := range e.groupFns {
		gvals[i], err = fn(b) //jsqlint:ignore kernelalias each fn is a distinct closure with its own buffer; callers consume all vectors before the next batch
		if err != nil {
			return nil, nil, nil, err
		}
	}
	avals = make([][]variant.Value, len(e.aggs))
	ovals = make([][][]variant.Value, len(e.aggs))
	for i, ca := range e.aggs {
		if ca.arg != nil {
			avals[i], err = ca.arg(b) //jsqlint:ignore kernelalias each arg is a distinct closure with its own buffer; callers consume all vectors before the next batch
			if err != nil {
				return nil, nil, nil, err
			}
		}
		if len(ca.orderFns) > 0 {
			ovals[i] = make([][]variant.Value, len(ca.orderFns))
			for j, fn := range ca.orderFns {
				ovals[i][j], err = fn(b)
				if err != nil {
					return nil, nil, nil, err
				}
			}
		}
	}
	return gvals, avals, ovals, nil
}

// spillTuples writes each active row's evaluated tuple (group values,
// argument values, order values — in that fixed shape) to the deferral run.
// Evaluating here keeps expression call order identical to the in-memory
// path, so stateful expressions (SEQ) see the same sequence either way.
func (e *aggEval) spillTuples(w *storage.RunWriter, b *vector.Batch) error {
	gvals, avals, ovals, err := e.evalBatch(b)
	if err != nil {
		return err
	}
	var rec []byte
	var rowErr error
	b.ForEach(func(i int) {
		if rowErr != nil {
			return
		}
		rec = rec[:0]
		for k := range gvals {
			rec = gvals[k][i].AppendBinary(rec)
		}
		for a := range e.aggs {
			if avals[a] != nil {
				rec = avals[a][i].AppendBinary(rec)
			}
			for j := range ovals[a] {
				rec = ovals[a][j][i].AppendBinary(rec)
			}
		}
		_, rowErr = w.WriteRecord(rec)
	})
	return rowErr
}

// replayTuples folds the deferred tuples back through foldRow, in run
// (input) order — the identical fold sequence the in-memory path would have
// issued.
func (e *aggEval) replayTuples(ectx *execContext, run *storage.SpillRun, t *aggTable) error {
	rowG := make([]variant.Value, len(e.groupFns))
	rowA := make([]variant.Value, len(e.aggs))
	rowO := make([][]variant.Value, len(e.aggs))
	rr := run.NewReader()
	for {
		// Deferred runs replay the whole input; poll per tuple so a cancel
		// lands within one record, not after the full replay.
		if err := ectx.cancelled(); err != nil {
			return err
		}
		rec, err := rr.Next()
		if err != nil {
			return err
		}
		if rec == nil {
			return nil
		}
		for k := range rowG {
			rowG[k], rec, err = variant.DecodeBinary(rec)
			if err != nil {
				return err
			}
		}
		for a, ca := range e.aggs {
			rowA[a] = variant.Value{}
			if ca.arg != nil {
				rowA[a], rec, err = variant.DecodeBinary(rec)
				if err != nil {
					return err
				}
			}
			rowO[a] = nil
			if len(ca.orderFns) > 0 {
				ord := make([]variant.Value, len(ca.orderFns))
				for j := range ca.orderFns {
					ord[j], rec, err = variant.DecodeBinary(rec)
					if err != nil {
						return err
					}
				}
				rowO[a] = ord
			}
		}
		if len(rec) != 0 {
			return fmt.Errorf("engine: deferred tuple has %d trailing bytes", len(rec))
		}
		if err := e.foldRow(t, rowG, rowA, rowO); err != nil {
			return err
		}
	}
}

// --- sort runs ----------------------------------------------------------------

// writeSortRun writes the buffered chunk's rows, in sorted (refs) order,
// with their evaluated key values. Record: width row values, then one value
// per sort key.
func writeSortRun(batches []*vector.Batch, keyCols [][][]variant.Value, refs []sortRef, width int) (*storage.SpillRun, error) {
	w, err := storage.NewRunWriter("sort")
	if err != nil {
		return nil, err
	}
	var rec []byte
	for _, r := range refs {
		rec = rec[:0]
		for c := 0; c < width; c++ {
			rec = batches[r.b].Value(c, r.i).AppendBinary(rec)
		}
		for k := range keyCols[r.b] {
			rec = keyCols[r.b][k][r.i].AppendBinary(rec)
		}
		if _, err := w.WriteRecord(rec); err != nil {
			w.Abort()
			return nil, err
		}
	}
	return w.Finish()
}

// sortRunCursor streams one sorted run during the merge.
type sortRunCursor struct {
	rr    *storage.RunReader
	width int
	nkeys int
	row   []variant.Value
	keys  []variant.Value
	done  bool
}

func (c *sortRunCursor) advance() error {
	rec, err := c.rr.Next()
	if err != nil {
		return err
	}
	if rec == nil {
		c.done = true
		c.row, c.keys = nil, nil
		return nil
	}
	row := make([]variant.Value, c.width)
	for i := 0; i < c.width; i++ {
		row[i], rec, err = variant.DecodeBinary(rec)
		if err != nil {
			return err
		}
	}
	keys := make([]variant.Value, c.nkeys)
	for k := 0; k < c.nkeys; k++ {
		keys[k], rec, err = variant.DecodeBinary(rec)
		if err != nil {
			return err
		}
	}
	if len(rec) != 0 {
		return fmt.Errorf("engine: sort run record has %d trailing bytes", len(rec))
	}
	c.row, c.keys = row, keys
	return nil
}

// sortRunMerge is the k-way streaming merge of the sorted runs. Runs hold
// consecutive input chunks in spill order, so breaking key ties toward the
// earliest run reproduces the global stable sort exactly. The run files
// themselves are owned (and removed) by the sortIter.
type sortRunMerge struct {
	cursors []*sortRunCursor
	descs   []bool
	bld     *vector.Builder
	started bool
	drained bool
}

func newSortRunMerge(runs []*storage.SpillRun, descs []bool, width, bsize int) *sortRunMerge {
	cursors := make([]*sortRunCursor, len(runs))
	for i, r := range runs {
		cursors[i] = &sortRunCursor{rr: r.NewReader(), width: width, nkeys: len(descs)}
	}
	return &sortRunMerge{
		cursors: cursors, descs: descs,
		bld: vector.NewBuilder(width, bsize),
	}
}

func (m *sortRunMerge) lessKeys(a, b []variant.Value) bool {
	for k := range m.descs {
		c := variant.Compare(a[k], b[k])
		if m.descs[k] {
			c = -c
		}
		if c != 0 {
			return c < 0
		}
	}
	return false
}

func (m *sortRunMerge) NextBatch() (*vector.Batch, error) {
	if !m.started {
		m.started = true
		for _, c := range m.cursors {
			if err := c.advance(); err != nil {
				return nil, err
			}
		}
	}
	for {
		if b := m.bld.Pop(); b != nil {
			return b, nil
		}
		if m.drained {
			return m.bld.Flush(), nil
		}
		// Strict less over ascending cursor index keeps ties on the earliest
		// run, i.e. the earliest input chunk.
		best := -1
		for ci, c := range m.cursors {
			if c.done {
				continue
			}
			if best < 0 || m.lessKeys(c.keys, m.cursors[best].keys) {
				best = ci
			}
		}
		if best < 0 {
			m.drained = true
			continue
		}
		c := m.cursors[best]
		m.bld.Append(c.row)
		if err := c.advance(); err != nil {
			return nil, err
		}
	}
}

// Close is a no-op: the sortIter owns the run files and removes them.
func (m *sortRunMerge) Close() {}
