package engine

import (
	"fmt"
	"strings"
	"testing"

	"jsonpark/internal/sqlparse"
	"jsonpark/internal/variant"
)

// multiPartEngine builds an engine whose "events" table spans many small
// micro-partitions, so parallel morsel scans have real work to split.
func multiPartEngine(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	e := New(opts...)
	tab, err := e.Catalog().CreateTable("events", []string{"id", "grp", "val", "items"})
	if err != nil {
		t.Fatal(err)
	}
	tab.SetTargetPartitionBytes(512) // force frequent sealing
	for i := 0; i < 500; i++ {
		items := "[]"
		if i%3 != 0 {
			items = fmt.Sprintf("[%d, %d, %d]", i, i*2, i*3)
		}
		doc := fmt.Sprintf(`{"id": %d, "grp": %d, "val": %g, "items": %s}`,
			i, i%7, float64(i%50)/3.0, items)
		if err := tab.AppendObject(variant.MustParseJSON(doc)); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func renderRows(res *Result) string {
	var b strings.Builder
	for _, row := range res.Rows {
		for _, v := range row {
			b.WriteString(v.JSON())
			b.WriteByte('\t')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

var parityQueries = []string{
	`SELECT id, val FROM events WHERE grp = 3`,
	`SELECT grp, COUNT(*), MIN(val), MAX(val) FROM events GROUP BY grp`,
	`SELECT COUNT(*) FROM events WHERE val > 10`,
	`SELECT SUM(val) FROM events`,
	`SELECT "id", "f".VALUE FROM (SELECT * FROM "events" WHERE "grp" < 3), LATERAL FLATTEN(INPUT => "items") AS "f"`,
	`SELECT "id", "f".VALUE FROM (SELECT * FROM "events"), LATERAL FLATTEN(INPUT => "items", OUTER => TRUE) AS "f" WHERE "id" < 20`,
	`SELECT id FROM events ORDER BY val DESC LIMIT 17`,
	`SELECT grp, SUM(val) FROM events GROUP BY grp ORDER BY grp`,
	`SELECT "id", "oid" FROM (SELECT * FROM "events" WHERE "id" < 7) CROSS JOIN (SELECT "id" AS "oid", "grp" AS "ogrp" FROM "events") WHERE "id" = "ogrp"`,
	`SELECT CASE WHEN val > 0 THEN 100 / val ELSE -1 END FROM events WHERE id < 40`,
}

// TestBatchSizeAndParallelismParity is the core regression for the
// vectorized executor: every configuration (batch size 1, 7, 1024; scans
// sequential and parallel) must return rows byte-identical to every other.
func TestBatchSizeAndParallelismParity(t *testing.T) {
	type config struct {
		name string
		opts []Option
	}
	configs := []config{
		{"bs1-seq", []Option{WithBatchSize(1), WithParallelism(1)}},
		{"bs7-seq", []Option{WithBatchSize(7), WithParallelism(1)}},
		{"bs1024-seq", []Option{WithBatchSize(1024), WithParallelism(1)}},
		{"bs1024-par4", []Option{WithBatchSize(1024), WithParallelism(4)}},
		{"bs3-par4", []Option{WithBatchSize(3), WithParallelism(4)}},
	}
	engines := make([]*Engine, len(configs))
	for i, c := range configs {
		engines[i] = multiPartEngine(t, c.opts...)
	}
	for _, sql := range parityQueries {
		var want string
		for i, c := range configs {
			res, err := engines[i].Query(sql)
			if err != nil {
				t.Fatalf("%s [%s]: %v", sql, c.name, err)
			}
			got := renderRows(res)
			if i == 0 {
				want = got
				continue
			}
			if got != want {
				t.Errorf("%s: config %s diverges from %s\ngot:\n%s\nwant:\n%s",
					sql, c.name, configs[0].name, got, want)
			}
		}
	}
}

// TestStableOrderByDuplicateKeys pins the ORDER BY tie-breaking contract:
// rows with equal sort keys come back in input order, for every batch size
// and with parallel scans (whose ordered merge must preserve input order).
func TestStableOrderByDuplicateKeys(t *testing.T) {
	for _, opts := range [][]Option{
		{WithBatchSize(1), WithParallelism(1)},
		{WithBatchSize(1024), WithParallelism(1)},
		{WithBatchSize(16), WithParallelism(4)},
	} {
		e := New(opts...)
		tab, err := e.Catalog().CreateTable("t", []string{"id", "k"})
		if err != nil {
			t.Fatal(err)
		}
		tab.SetTargetPartitionBytes(256)
		// Many duplicate keys: k cycles 0,1,2; id records insertion order.
		for i := 0; i < 200; i++ {
			if err := tab.Append([]variant.Value{variant.Int(int64(i)), variant.Int(int64(i % 3))}); err != nil {
				t.Fatal(err)
			}
		}
		res, err := e.Query(`SELECT id, k FROM t ORDER BY k`)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 200 {
			t.Fatalf("rows = %d", len(res.Rows))
		}
		prevK, prevID := int64(-1), int64(-1)
		for _, row := range res.Rows {
			id, k := row[0].AsInt(), row[1].AsInt()
			if k < prevK {
				t.Fatalf("sort order broken: k %d after %d", k, prevK)
			}
			if k == prevK && id < prevID {
				t.Fatalf("stability broken: id %d after %d within k=%d", id, prevID, k)
			}
			if k != prevK {
				prevID = -1
			}
			prevK, prevID = k, id
		}
	}
}

// TestLimitClosesParallelScan exercises early termination: LIMIT stops
// consuming while morsel workers are still producing; Close must shut the
// pool down without deadlock (the race detector guards the rest).
func TestLimitClosesParallelScan(t *testing.T) {
	e := multiPartEngine(t, WithBatchSize(4), WithParallelism(8))
	for i := 0; i < 10; i++ {
		res, err := e.Query(`SELECT id FROM events LIMIT 3`)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 3 {
			t.Fatalf("rows = %d", len(res.Rows))
		}
		// LIMIT over an unsorted scan surfaces stream order: with the
		// ordered merge this is the insertion order, deterministically.
		for j, row := range res.Rows {
			if row[0].AsInt() != int64(j) {
				t.Fatalf("row %d = %v; ordered merge broken", j, row)
			}
		}
	}
}

// TestUnorderedScanAnalysis checks the order-sensitivity analysis: only a
// global aggregate over order-insensitive aggregates may release its scan
// from the ordered merge.
func TestUnorderedScanAnalysis(t *testing.T) {
	e := multiPartEngine(t)
	cases := []struct {
		sql       string
		unordered bool
	}{
		{`SELECT COUNT(*), MIN(val), MAX(val) FROM events`, true},
		{`SELECT SUM(val) FROM events`, false},                   // float addition order matters
		{`SELECT grp, COUNT(*) FROM events GROUP BY grp`, false}, // first-seen group order
		{`SELECT id FROM events`, false},                         // root order observed
		{`SELECT COUNT(*) FROM events WHERE val > 1`, true},
	}
	for _, c := range cases {
		q, err := sqlparse.Parse(c.sql)
		if err != nil {
			t.Fatalf("%s: %v", c.sql, err)
		}
		pl := &planner{catalog: e.Catalog()}
		plan, err := pl.Build(q)
		if err != nil {
			t.Fatalf("%s: %v", c.sql, err)
		}
		plan = optimize(plan)
		m := collectUnorderedScans(plan)
		got := len(m) > 0
		if got != c.unordered {
			t.Errorf("%s: unordered=%v, want %v", c.sql, got, c.unordered)
		}
	}
}
