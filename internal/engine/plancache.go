package engine

// Prepared-plan cache. Compilation (parse → plan → optimize → physicalize)
// produces an immutable plan template; binding attaches the cheap per-run
// iterator state. The cache keeps recently compiled templates in a bounded
// LRU so a hot repeated query skips every compile stage and pays only the
// bind cost.
//
// Key anatomy: the query fingerprint (the same FNV-1a hash qlog records, so
// a cache entry is correlatable with its log lines) × the full knob set that
// shapes a physical plan (batch size, parallelism, merge partitions, memory
// limit, typed columns, plan checking). Entries additionally remember the
// catalog version they were compiled at; any version change — table
// create/drop, data-dir reattachment, partition seal (including the implicit
// seal in Warehouse.Flush) — invalidates the whole cache on the next access.
// Eager whole-cache invalidation keeps the structure trivially bounded: no
// stale entry ever lingers behind a version fence.
//
// Correctness note: a cached template could serve stale *data* only if the
// partition list were baked into it. It is not — bind re-reads
// Table.Partitions() every run — so the version fence exists for plan-shape
// staleness (e.g. parallel-aggregate eligibility counts partitions) and for
// dropped/recreated tables, whose *storage.Table pointer inside a cached
// ScanNode would otherwise dangle.

import (
	"container/list"
	"sync"
	"sync/atomic"

	"jsonpark/internal/obsv/qlog"
)

// defaultPlanCacheSize bounds the cache when WithPlanCacheSize is not given.
const defaultPlanCacheSize = 128

// planKey identifies one compiled plan template: query fingerprint plus
// every engine knob that can change the physical plan.
type planKey struct {
	fingerprint string
	batchSize   int
	parallelism int
	mergeParts  int
	memLimit    int64
	typedOff    bool
	planCheck   bool
}

// compiledPlan is the immutable output of the compile phase — everything
// Prepare produced before per-run iterator state. It is shared across
// concurrent binds, so nothing in it may be mutated after compile
// (physicalize mutates in place, but only during compile; schemas are
// pre-materialized so the lazy memo never races).
type compiledPlan struct {
	sql      string
	plan     Node
	columns  []string
	breakers int
	par      int
	// mergeParts is the resolved merge-partition count (falls back to par).
	mergeParts int
	// unorderedScans marks scans allowed to emit morsels out of order;
	// read-only after compile.
	unorderedScans map[Node]bool
}

type planCacheEntry struct {
	key planKey
	// sql guards against fingerprint collisions: a hit must match the full
	// query text, not just its 64-bit hash.
	sql string
	cp  *compiledPlan
}

// planCache is a bounded LRU of compiled plan templates. All entries belong
// to one catalog version; a version change observed on lookup or insert
// clears the cache.
type planCache struct {
	mu      sync.Mutex
	size    int
	entries map[planKey]*list.Element
	lru     *list.List // front = most recently used
	version int64      // catalog version the resident entries compiled at

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

func newPlanCache(size int) *planCache {
	return &planCache{
		size:    size,
		entries: make(map[planKey]*list.Element),
		lru:     list.New(),
	}
}

// syncVersionLocked drops every resident entry when the catalog has moved
// past the version they were compiled at.
func (c *planCache) syncVersionLocked(version int64) {
	if c.version == version {
		return
	}
	c.version = version
	if len(c.entries) == 0 {
		return
	}
	c.entries = make(map[planKey]*list.Element)
	c.lru.Init()
}

// lookup returns the cached template for (key, sql) at the given catalog
// version, promoting it to most-recently-used.
func (c *planCache) lookup(key planKey, sql string, version int64) (*compiledPlan, bool) {
	c.mu.Lock()
	c.syncVersionLocked(version)
	el, ok := c.entries[key]
	if ok {
		ent := el.Value.(*planCacheEntry)
		if ent.sql == sql {
			c.lru.MoveToFront(el)
			c.mu.Unlock()
			c.hits.Add(1)
			return ent.cp, true
		}
	}
	c.mu.Unlock()
	c.misses.Add(1)
	return nil, false
}

// insert stores a freshly compiled template, evicting the least-recently
// used entry when the cache is full.
func (c *planCache) insert(key planKey, sql string, version int64, cp *compiledPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncVersionLocked(version)
	if el, ok := c.entries[key]; ok {
		el.Value = &planCacheEntry{key: key, sql: sql, cp: cp}
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&planCacheEntry{key: key, sql: sql, cp: cp})
	for c.lru.Len() > c.size {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*planCacheEntry).key)
		c.evictions.Add(1)
	}
}

// stats returns cumulative hits, misses, evictions, and the current entry
// count.
func (c *planCache) stats() (hits, misses, evictions, entries int64) {
	if c == nil {
		return 0, 0, 0, 0
	}
	c.mu.Lock()
	entries = int64(c.lru.Len())
	c.mu.Unlock()
	return c.hits.Load(), c.misses.Load(), c.evictions.Load(), entries
}

// PlanCacheStats reports the engine's prepared-plan cache counters:
// cumulative hits, misses, evictions, and current resident entries. All
// zeros when the cache is disabled.
func (e *Engine) PlanCacheStats() (hits, misses, evictions, entries int64) {
	return e.planCache.stats()
}

// planKeyFor builds the cache key for sql under this engine's knob set.
func (e *Engine) planKeyFor(sql string) planKey {
	return planKey{
		fingerprint: qlog.Fingerprint(sql, ""),
		batchSize:   e.batchSize,
		parallelism: e.parallelism,
		mergeParts:  e.mergeParts,
		memLimit:    e.memLimit,
		typedOff:    e.typedOff,
		planCheck:   e.planCheck,
	}
}

// compiledFor returns a plan template for sql — from the cache when a
// current-version entry exists, else freshly compiled (and cached when the
// catalog did not move mid-compile). The bool reports a cache hit.
func (e *Engine) compiledFor(sql string, po PrepareOptions) (*compiledPlan, bool, error) {
	if e.planCache == nil {
		cp, err := e.compile(sql, po)
		return cp, false, err
	}
	key := e.planKeyFor(sql)
	version := e.catalog.Version()
	if cp, ok := e.planCache.lookup(key, sql, version); ok {
		po.Span.SetAttr("plan_cache", "hit")
		return cp, true, nil
	}
	cp, err := e.compile(sql, po)
	if err != nil {
		return nil, false, err
	}
	// Cache only if the catalog did not change while we compiled; a seal or
	// DDL mid-compile would make the template's physical choices stale.
	if e.catalog.Version() == version {
		e.planCache.insert(key, sql, version, cp)
	}
	return cp, false, nil
}
