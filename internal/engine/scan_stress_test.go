package engine

import (
	"sync"
	"testing"

	"jsonpark/internal/testutil"
)

// TestParallelScanLimitEarlyCloseStress hammers the morsel pool's shutdown
// path: a LIMIT satisfied after a handful of batches closes the scan while
// its workers are still producing, so Close must stop the pool and reap
// every worker goroutine without racing the in-flight sends. Run under
// -race (make race) this is the regression test for the stop-channel
// handshake in morselScan.
func TestParallelScanLimitEarlyCloseStress(t *testing.T) {
	testutil.CheckLeaks(t)
	e := multiPartEngine(t, WithBatchSize(4), WithParallelism(8))
	queries := []string{
		`SELECT id FROM events LIMIT 3`,
		`SELECT id, val FROM events WHERE grp < 5 LIMIT 7`,
		`SELECT id FROM events LIMIT 1`,
	}
	for i := 0; i < 100; i++ {
		sql := queries[i%len(queries)]
		res, err := e.Query(sql)
		if err != nil {
			t.Fatalf("iteration %d %s: %v", i, sql, err)
		}
		if len(res.Rows) == 0 {
			t.Fatalf("iteration %d %s: no rows", i, sql)
		}
	}

	// The same shutdown storm from concurrent consumers sharing the engine.
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := e.Query(queries[(g+i)%len(queries)]); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPreparedCloseWithoutDrain covers the other early-close shape: a
// prepared query abandoned before (or mid-) drain.
func TestPreparedCloseWithoutDrain(t *testing.T) {
	testutil.CheckLeaks(t)
	e := multiPartEngine(t, WithBatchSize(4), WithParallelism(8))
	for i := 0; i < 100; i++ {
		p, err := e.Prepare(`SELECT id, val FROM events WHERE val > 1`)
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if _, err := p.iter.NextBatch(); err != nil {
				t.Fatal(err)
			}
		}
		p.iter.Close()
	}
}
