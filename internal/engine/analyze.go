package engine

import (
	"fmt"
	"strings"
	"time"

	"jsonpark/internal/sqlast"
	"jsonpark/internal/vector"
)

// OpStats accumulates one operator's runtime statistics when a query is
// prepared with Analyze. Scan-only fields (bytes, partitions) stay zero on
// other operators. Stats are written by the driving goroutine (the scan
// operators' partition accounting arrives from morsel workers through the
// execContext mutex); snapshots for reporting are taken after Run.
type OpStats struct {
	RowsOut          int64         // active rows emitted by this operator
	Calls            int64         // NextBatch() invocations (batches + the final EOF)
	WallTime         time.Duration // inclusive: covers all children
	BytesScanned     int64         // scan: column-chunk bytes materialized
	PartitionsTotal  int           // scan: partitions considered
	PartitionsPruned int           // scan: partitions skipped via zone maps
	Batches          int64         // vector batches emitted by this operator

	// Parallel-breaker phase stats (ParallelAgg / ParallelJoin / ParallelSort;
	// zero elsewhere). Pipelines > 0 marks the operator as having run a
	// parallel blocking phase.
	Pipelines     int   // phase-1 workers that ran
	MergeParts    int   // disjoint hash/merge partitions of phase 2
	LocalRows     int64 // rows folded into thread-local state (build rows, run rows)
	LocalGroups   int64 // groups across all thread-local tables (pre-merge)
	MergedGroups  int64 // distinct groups (or build keys) after the merge
	MaxWorkerRows int64 // largest per-worker share of LocalRows (skew indicator)
	LocalWallUS   int64 // wall time of the parallel local phase, microseconds
	MergeWallUS   int64 // wall time of the parallel merge phase, microseconds

	// Memory governance (WithMemLimit; zero when accounting is disabled or the
	// operator retains no accounted state).
	MemPeakBytes  int64 // peak accounted bytes held by this operator
	MemLimitBytes int64 // the query-wide limit in effect
	Spills        int64 // spill-to-disk events by this operator
	SpillBytes    int64 // bytes written to spill runs by this operator
}

// statIter wraps an operator's iterator, metering emitted batches, rows and
// inclusive wall time. Children are wrapped too, so self time is recoverable
// as inclusive minus the children's inclusive times. statIter is the sole
// Batches counter: operators never count their own output.
type statIter struct {
	in batchIter
	st *OpStats
}

func (s *statIter) NextBatch() (*vector.Batch, error) {
	start := time.Now()
	b, err := s.in.NextBatch()
	s.st.WallTime += time.Since(start)
	s.st.Calls++
	if b != nil {
		s.st.Batches++
		s.st.RowsOut += int64(b.NumRows())
	}
	return b, err
}

func (s *statIter) Close() { s.in.Close() }

// statsFor returns the stats slot for a plan node, or nil when the query is
// not being analyzed.
func (c *execContext) statsFor(n Node) *OpStats {
	if c.stats == nil {
		return nil
	}
	st, ok := c.stats[n]
	if !ok {
		st = &OpStats{}
		c.stats[n] = st
	}
	return st
}

// PlanStats is the annotated plan tree of an analyzed query: one node per
// operator carrying its description and runtime statistics. RowsIn is the
// sum of the children's RowsOut; SelfTime subtracts the children's inclusive
// times from this operator's.
type PlanStats struct {
	Op               string `json:"op"`
	Detail           string `json:"detail,omitempty"`
	RowsIn           int64  `json:"rows_in"`
	RowsOut          int64  `json:"rows_out"`
	TimeUS           int64  `json:"time_us"`
	SelfTimeUS       int64  `json:"self_time_us"`
	BytesScanned     int64  `json:"bytes_scanned,omitempty"`
	PartitionsTotal  int    `json:"partitions_total,omitempty"`
	PartitionsPruned int    `json:"partitions_pruned,omitempty"`
	Batches          int64  `json:"batches,omitempty"`
	Pipelines        int    `json:"pipelines,omitempty"`
	MergeParts       int    `json:"merge_parts,omitempty"`
	LocalRows        int64  `json:"local_rows,omitempty"`
	LocalGroups      int64  `json:"local_groups,omitempty"`
	MergedGroups     int64  `json:"merged_groups,omitempty"`
	MaxWorkerRows    int64  `json:"max_worker_rows,omitempty"`
	LocalWallUS      int64  `json:"local_wall_us,omitempty"`
	MergeWallUS      int64  `json:"merge_wall_us,omitempty"`
	MemPeakBytes     int64  `json:"mem_peak_bytes,omitempty"`
	MemLimitBytes    int64  `json:"mem_limit_bytes,omitempty"`
	Spills           int64  `json:"spills,omitempty"`
	SpillBytes       int64  `json:"spill_bytes,omitempty"`
	// Storage v2 counters, query-global (kernels are compiled per worker and
	// batches flow across operators, so the split is not attributable to a
	// single node): set on the root only.
	TypedCols    int64        `json:"typed_cols,omitempty"`
	FallbackCols int64        `json:"fallback_cols,omitempty"`
	DiskReads    int64        `json:"disk_reads,omitempty"`
	Children     []*PlanStats `json:"children,omitempty"`
}

// Time returns the operator's inclusive wall time.
func (ps *PlanStats) Time() time.Duration { return time.Duration(ps.TimeUS) * time.Microsecond }

// SelfTime returns the operator's exclusive wall time.
func (ps *PlanStats) SelfTime() time.Duration { return time.Duration(ps.SelfTimeUS) * time.Microsecond }

// Walk visits the node and every descendant pre-order.
func (ps *PlanStats) Walk(fn func(depth int, n *PlanStats)) { ps.walk(0, fn) }

func (ps *PlanStats) walk(depth int, fn func(int, *PlanStats)) {
	fn(depth, ps)
	for _, c := range ps.Children {
		c.walk(depth+1, fn)
	}
}

// buildPlanStats assembles the annotated tree from the executed plan and the
// per-node stats recorded during Run.
func buildPlanStats(n Node, stats map[Node]*OpStats) *PlanStats {
	op, detail := describeNode(n)
	st := stats[n]
	if st == nil {
		st = &OpStats{}
	}
	out := &PlanStats{
		Op:               op,
		Detail:           detail,
		RowsOut:          st.RowsOut,
		TimeUS:           st.WallTime.Microseconds(),
		BytesScanned:     st.BytesScanned,
		PartitionsTotal:  st.PartitionsTotal,
		PartitionsPruned: st.PartitionsPruned,
		Batches:          st.Batches,
		Pipelines:        st.Pipelines,
		MergeParts:       st.MergeParts,
		LocalRows:        st.LocalRows,
		LocalGroups:      st.LocalGroups,
		MergedGroups:     st.MergedGroups,
		MaxWorkerRows:    st.MaxWorkerRows,
		LocalWallUS:      st.LocalWallUS,
		MergeWallUS:      st.MergeWallUS,
		MemPeakBytes:     st.MemPeakBytes,
		MemLimitBytes:    st.MemLimitBytes,
		Spills:           st.Spills,
		SpillBytes:       st.SpillBytes,
	}
	childTime := time.Duration(0)
	for _, c := range planChildren(n) {
		cs := buildPlanStats(c, stats)
		out.Children = append(out.Children, cs)
		out.RowsIn += cs.RowsOut
		childTime += cs.Time()
	}
	self := st.WallTime - childTime
	if self < 0 {
		self = 0
	}
	out.SelfTimeUS = self.Microseconds()
	return out
}

// Render formats the annotated tree, one operator per line with its stats —
// the EXPLAIN ANALYZE output of cmd/jsq.
func (ps *PlanStats) Render() string {
	var b strings.Builder
	ps.Walk(func(depth int, n *PlanStats) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Op)
		if n.Detail != "" {
			b.WriteByte(' ')
			b.WriteString(n.Detail)
		}
		fmt.Fprintf(&b, "  (in=%d out=%d time=%s self=%s", n.RowsIn, n.RowsOut, n.Time(), n.SelfTime())
		if n.Op == "Scan" {
			fmt.Fprintf(&b, " bytes=%d partitions=%d/%d pruned=%d batches=%d",
				n.BytesScanned, n.PartitionsTotal-n.PartitionsPruned, n.PartitionsTotal,
				n.PartitionsPruned, n.Batches)
		} else {
			fmt.Fprintf(&b, " batches=%d", n.Batches)
		}
		if n.Pipelines > 0 {
			fmt.Fprintf(&b, " par[pipelines=%d merge_parts=%d local_rows=%d local_groups=%d merged=%d max_worker_rows=%d local=%s merge=%s]",
				n.Pipelines, n.MergeParts, n.LocalRows, n.LocalGroups, n.MergedGroups,
				n.MaxWorkerRows,
				time.Duration(n.LocalWallUS)*time.Microsecond,
				time.Duration(n.MergeWallUS)*time.Microsecond)
		}
		if n.Spills > 0 || n.MemPeakBytes > 0 {
			fmt.Fprintf(&b, " mem[peak=%d limit=%d spills=%d spill_bytes=%d]",
				n.MemPeakBytes, n.MemLimitBytes, n.Spills, n.SpillBytes)
		}
		if depth == 0 && (n.TypedCols > 0 || n.FallbackCols > 0 || n.DiskReads > 0) {
			fmt.Fprintf(&b, " storage[typed=%d fallback=%d disk_reads=%d]",
				n.TypedCols, n.FallbackCols, n.DiskReads)
		}
		b.WriteString(")\n")
	})
	return b.String()
}

// describeNode renders an operator's name and detail string, shared by
// EXPLAIN and EXPLAIN ANALYZE.
func describeNode(n Node) (op, detail string) {
	switch x := n.(type) {
	case *ScanNode:
		d := fmt.Sprintf("%s cols=%v", x.Table.Name, x.Columns)
		if x.Filter != nil {
			d += " filter=" + sqlast.RenderExpr(x.Filter)
		}
		if len(x.Prunes) > 0 {
			d += fmt.Sprintf(" prunes=%d", len(x.Prunes))
		}
		return "Scan", d
	case *FilterNode:
		return "Filter", sqlast.RenderExpr(x.Cond)
	case *ProjectNode:
		return "Project", fmt.Sprintf("%v", x.Names)
	case *FlattenNode:
		outer := ""
		if x.Outer {
			outer = "outer "
		}
		return "Flatten", fmt.Sprintf("%s%s as %s", outer, sqlast.RenderExpr(x.Expr), x.Alias)
	case *AggregateNode:
		return "Aggregate", fmt.Sprintf("groups=%d aggs=%d", len(x.GroupBy), len(x.Aggs))
	case *ParallelAggNode:
		return "ParallelAggregate", fmt.Sprintf("groups=%d aggs=%d pipelines=%d merge_parts=%d",
			len(x.GroupBy), len(x.Aggs), x.Pipelines, x.MergeParts)
	case *JoinNode:
		return x.Kind + " Join", fmt.Sprintf("keys=%d", len(x.LeftKeys))
	case *ParallelJoinNode:
		return x.Kind + " Join", fmt.Sprintf("keys=%d build_workers=%d", len(x.LeftKeys), x.BuildWorkers)
	case *SortNode:
		return "Sort", fmt.Sprintf("keys=%d", len(x.Keys))
	case *ParallelSortNode:
		return "Sort", fmt.Sprintf("keys=%d sort_workers=%d", len(x.Keys), x.SortWorkers)
	case *LimitNode:
		return "Limit", fmt.Sprint(x.N)
	case *UnionNode:
		return "UnionAll", ""
	}
	return fmt.Sprintf("%T", n), ""
}

// planChildren lists an operator's inputs in execution order.
func planChildren(n Node) []Node {
	switch x := n.(type) {
	case *FilterNode:
		return []Node{x.Input}
	case *ProjectNode:
		return []Node{x.Input}
	case *FlattenNode:
		return []Node{x.Input}
	case *AggregateNode:
		return []Node{x.Input}
	case *ParallelAggNode:
		return []Node{x.Input}
	case *JoinNode:
		return []Node{x.Left, x.Right}
	case *ParallelJoinNode:
		return []Node{x.Left, x.Right}
	case *SortNode:
		return []Node{x.Input}
	case *ParallelSortNode:
		return []Node{x.Input}
	case *LimitNode:
		return []Node{x.Input}
	case *UnionNode:
		return []Node{x.Left, x.Right}
	}
	return nil
}
