package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jsonpark/internal/variant"
	"jsonpark/internal/vector"
)

// spillEngine builds a dataset sized so every breaker shape below crosses
// the small test budget: many groups, a wide join build side, and enough
// rows that sort input far exceeds 64KiB.
func spillEngine(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	e := New(opts...)
	tab, err := e.Catalog().CreateTable("t", []string{"k", "v", "f", "s"})
	if err != nil {
		t.Fatal(err)
	}
	tab.SetTargetPartitionBytes(8192)
	for i := 0; i < 6000; i++ {
		if err := tab.Append([]variant.Value{
			variant.Int(int64(i % 53)),
			variant.Int(int64(i)),
			variant.Float(float64(i%977) / 13.0),
			variant.String(fmt.Sprintf("pad-%04d-%s", i%311, strings.Repeat("x", i%17))),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// spillParityQueries exercises every spilling code path: mergeable
// aggregate state runs (COUNT/MIN/MAX/ARRAY_AGG/COUNT DISTINCT), the
// deferred-tuple replay path (float SUM/AVG), external sort-run merge,
// and the offset-indexed join-build spill.
var spillParityQueries = []string{
	`SELECT "k", COUNT(*) AS c, MIN("v") AS mn, MAX("s") AS mx FROM "t" GROUP BY "k" ORDER BY "k"`,
	`SELECT "k", COUNT(DISTINCT "s") AS d, ARRAY_AGG("v") AS vs FROM "t" GROUP BY "k" ORDER BY "k"`,
	`SELECT "k", SUM("f") AS sf, AVG("f") AS af FROM "t" GROUP BY "k" ORDER BY "k"`,
	`SELECT "v", "s" FROM "t" ORDER BY "s", "v" DESC`,
	`SELECT "v", "v2", "s2" FROM (SELECT "k", "v" FROM "t" WHERE "k" < 9) INNER JOIN (SELECT "v" AS "v2", "s" AS "s2", "k" AS "k2" FROM "t") ON "v" = "v2" ORDER BY "v"`,
	`SELECT "k2", COUNT(*) AS n FROM (SELECT "k", "v" FROM "t") LEFT OUTER JOIN (SELECT "v" AS "v2", "k" AS "k2" FROM "t" WHERE "k" = 3) ON "v" = "v2" GROUP BY "k2" ORDER BY "k2"`,
}

// TestSpillParityGrid is the governance acceptance grid: every query must
// produce rows byte-identical to the batch-size-1 sequential unlimited
// reference at every parallelism x batch-size x mem-limit combination, and
// the 64KiB column must actually spill somewhere in the suite.
func TestSpillParityGrid(t *testing.T) {
	type cfg struct {
		name       string
		batch, par int
		limit      int64
	}
	grid := []cfg{
		{"bs1-seq-unlimited", 1, 1, 0}, // reference
		{"bs1-seq-64k", 1, 1, 64 * 1024},
		{"bs1024-seq-64k", 1024, 1, 64 * 1024},
		{"bs1-par4-64k", 1, 4, 64 * 1024},
		{"bs1024-par4-64k", 1024, 4, 64 * 1024},
		{"bs1024-par4-unlimited", 1024, 4, 0},
	}
	want := make(map[string]string)
	for gi, g := range grid {
		e := spillEngine(t, WithBatchSize(g.batch), WithParallelism(g.par), WithMemLimit(g.limit))
		var spills int64
		for _, q := range spillParityQueries {
			res, err := e.Query(q)
			if err != nil {
				t.Fatalf("[%s] %s: %v", g.name, q, err)
			}
			spills += res.Metrics.Spills
			got := renderRows(res)
			if gi == 0 {
				want[q] = got
				continue
			}
			if got != want[q] {
				t.Errorf("[%s] %s: rows diverge from %s", g.name, q, grid[0].name)
			}
		}
		if g.limit > 0 && spills == 0 {
			t.Errorf("[%s] no query spilled under the 64KiB budget", g.name)
		}
		if g.limit == 0 && spills != 0 {
			t.Errorf("[%s] unlimited run reported %d spills", g.name, spills)
		}
	}
}

// TestSpillEveryBreakerSpills pins each breaker's spill path individually:
// per query, the operator stats must show Spills > 0 on the breaker the
// query was built to overflow.
func TestSpillEveryBreakerSpills(t *testing.T) {
	cases := []struct {
		sql string
		op  string // substring of the op name expected to spill
	}{
		{`SELECT "k", COUNT(*) AS c FROM "t" GROUP BY "k"`, "Aggregate"},
		{`SELECT "v" FROM "t" ORDER BY "s", "v"`, "Sort"},
		{`SELECT "v" FROM (SELECT "k", "v" FROM "t" WHERE "k" < 2) INNER JOIN (SELECT "v" AS "v2", "s" AS "s2" FROM "t") ON "v" = "v2"`, "Join"},
	}
	for _, par := range []int{1, 4} {
		// 16KiB: small enough that even a single pruned int column (8 bytes
		// per row x 6000 rows) overflows on every breaker at any parallelism.
		e := spillEngine(t, WithParallelism(par), WithMemLimit(16*1024))
		for _, c := range cases {
			p, err := e.PrepareOpts(c.sql, PrepareOptions{Analyze: true})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := p.Run(); err != nil {
				t.Fatalf("par=%d %s: %v", par, c.sql, err)
			}
			var spilled bool
			p.PlanStats().Walk(func(_ int, n *PlanStats) {
				if strings.Contains(n.Op, c.op) && n.Spills > 0 {
					spilled = true
				}
			})
			if !spilled {
				t.Errorf("par=%d %s: no %s operator reported a spill\n%s",
					par, c.sql, c.op, p.PlanStats().Render())
			}
		}
	}
}

// TestSpillAnalyzeRender: EXPLAIN ANALYZE output gains a mem[...] clause on
// spilling operators, and the query metrics aggregate the governance
// counters.
func TestSpillAnalyzeRender(t *testing.T) {
	e := spillEngine(t, WithParallelism(4), WithMemLimit(16*1024))
	res, ps, err := e.QueryAnalyze(`SELECT "k", COUNT(*) AS c FROM "t" GROUP BY "k" ORDER BY "k"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Spills == 0 {
		t.Fatal("expected the 64KiB budget to force a spill")
	}
	if res.Metrics.SpillBytes == 0 {
		t.Fatal("spills reported but no spill bytes accounted")
	}
	if res.Metrics.MemPeakBytes == 0 {
		t.Fatal("no peak memory accounted")
	}
	if res.Metrics.MemLimitBytes != 16*1024 {
		t.Fatalf("limit %d not mirrored into metrics", res.Metrics.MemLimitBytes)
	}
	out := ps.Render()
	if !strings.Contains(out, "mem[peak=") || !strings.Contains(out, "spills=") {
		t.Fatalf("render lacks the mem[...] clause:\n%s", out)
	}
}

// TestSpillCleansTempFiles: every spill run must be unlinked by the time
// the query completes — including queries that error out mid-drain.
func TestSpillCleansTempFiles(t *testing.T) {
	countRuns := func() int {
		m, _ := filepath.Glob(filepath.Join(os.TempDir(), "jsonpark-spill-*"))
		return len(m)
	}
	before := countRuns()
	e := spillEngine(t, WithParallelism(4), WithMemLimit(32*1024))
	for _, q := range spillParityQueries {
		if _, err := e.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	// Abandoned mid-drain: prepared, one batch pulled, closed.
	for i := 0; i < 5; i++ {
		p, err := e.Prepare(spillParityQueries[i%len(spillParityQueries)])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.iter.NextBatch(); err != nil {
			t.Fatal(err)
		}
		p.iter.Close()
	}
	if after := countRuns(); after > before {
		t.Fatalf("spill runs leaked: %d before, %d after", before, after)
	}
}

// countingIter counts Close calls to pin operator lifecycle contracts.
type countingIter struct {
	batches []*vector.Batch
	i       int
	closes  int
}

func (c *countingIter) NextBatch() (*vector.Batch, error) {
	if c.i >= len(c.batches) {
		return nil, nil
	}
	b := c.batches[c.i]
	c.i++
	return b, nil
}

func (c *countingIter) Close() { c.closes++ }

// TestJoinCloseIdempotent is the regression test for the joinIter
// double-close: build() consumes and closes the build side, so a
// subsequent Close (or two — drivers may Close an iterator repeatedly)
// must not close the right side again, and the probe side must be closed
// exactly once.
func TestJoinCloseIdempotent(t *testing.T) {
	mkBatch := func(vals ...int64) *vector.Batch {
		bld := vector.NewBuilder(2, len(vals))
		for _, v := range vals {
			bld.Append([]variant.Value{variant.Int(v), variant.Int(v * 10)})
		}
		return bld.Pop()
	}
	newJoin := func() (*joinIter, *countingIter, *countingIter) {
		ctx := &execContext{acct: newMemAccountant(0), batchSize: 4}
		left := &countingIter{batches: []*vector.Batch{mkBatch(1, 2, 3)}}
		right := &countingIter{batches: []*vector.Batch{mkBatch(2, 3, 4)}}
		j := &joinIter{
			kind:       "CROSS",
			left:       left,
			right:      right,
			leftWidth:  2,
			rightWidth: 2,
			ectx:       ctx,
			mem:        ctx.opMemFor(nil, nil),
			bld:        vector.NewBuilder(4, 4),
		}
		return j, left, right
	}

	// Close before any NextBatch: both sides closed exactly once even when
	// Close is called twice.
	j, left, right := newJoin()
	j.Close()
	j.Close()
	if left.closes != 1 || right.closes != 1 {
		t.Fatalf("pre-build double Close: left=%d right=%d closes, want 1/1", left.closes, right.closes)
	}

	// Build consumed the right side; Close afterwards must not double-close.
	j, left, right = newJoin()
	if err := j.build(); err != nil {
		t.Fatal(err)
	}
	if right.closes != 1 {
		t.Fatalf("build closed right side %d times, want 1", right.closes)
	}
	j.Close()
	j.Close()
	if left.closes != 1 || right.closes != 1 {
		t.Fatalf("post-build double Close: left=%d right=%d closes, want 1/1", left.closes, right.closes)
	}
}
