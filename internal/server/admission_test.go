package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"jsonpark"

	"jsonpark/internal/obsv/qlog"
)

// governedServer boots a server whose warehouse admits one query per tenant
// with a short shed timeout, capturing qlog output.
func governedServer(t *testing.T, buf *syncBuffer) (*jsonpark.Warehouse, *httptest.Server) {
	t.Helper()
	gov := jsonpark.NewGovernor(jsonpark.GovernorConfig{
		TenantSlots:  1,
		QueueTimeout: 50 * time.Millisecond,
	})
	w := jsonpark.Open(jsonpark.WithGovernor(gov))
	s := New(w, WithQueryLog(qlog.New(buf)))
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	loadOrders(t, srv)
	return w, srv
}

// TestAdmissionShedsWith429 saturates the single tenant slot with a query
// held mid-execution, then asserts the next request for the same tenant is
// shed: HTTP 429, a Retry-After header, a machine-readable body, one "shed"
// qlog record — and that the tenant recovers once the slot frees.
func TestAdmissionShedsWith429(t *testing.T) {
	var buf syncBuffer
	w, srv := governedServer(t, &buf)

	paused := make(chan struct{})
	unpause := make(chan struct{})
	// CAS, not sync.Once: Once.Do would block every later query on the
	// hook while the first one is parked inside it.
	var first atomic.Bool
	first.Store(true)
	w.Engine().SetExecBatchHook(func() {
		if first.CompareAndSwap(true, false) {
			close(paused)
			<-unpause
		}
	})

	done := make(chan int, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/query", "application/json", strings.NewReader(ordersQuery))
		if err != nil {
			done <- 0
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	<-paused

	// Slot held: the same tenant's next request must shed with 429.
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/query", strings.NewReader(ordersQuery))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed status = %d, want 429: %s", resp.StatusCode, body)
	}
	retry, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Fatalf("Retry-After = %q, want integer >= 1", resp.Header.Get("Retry-After"))
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("shed body is not JSON: %v\n%s", err, body)
	}
	if out["code"] != "admission_shed" || out["tenant"] != "default" {
		t.Fatalf("shed body = %v", out)
	}

	// A different tenant is not blocked by the default tenant's slot.
	req2, err := http.NewRequest(http.MethodPost, srv.URL+"/query", strings.NewReader(ordersQuery))
	if err != nil {
		t.Fatal(err)
	}
	req2.Header.Set("Content-Type", "application/json")
	req2.Header.Set(TenantHeader, "other")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("other tenant status = %d, want 200", resp2.StatusCode)
	}

	// Free the slot: the held query finishes and the tenant recovers.
	close(unpause)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("held query status = %d, want 200", code)
	}
	w.Engine().SetExecBatchHook(nil)
	code, _ := post(t, srv, "/query", ordersQuery)
	if code != http.StatusOK {
		t.Fatalf("post-recovery status = %d, want 200", code)
	}

	// Exactly one shed record, alongside the three ok records.
	var shed, ok int
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("qlog line is not JSON: %v\n%s", err, line)
		}
		switch rec["status"] {
		case "shed":
			shed++
			if rec["level"] != "warn" {
				t.Errorf("shed record level = %v, want warn", rec["level"])
			}
		case "ok":
			ok++
		}
	}
	if shed != 1 || ok != 3 {
		t.Fatalf("qlog holds %d shed / %d ok records, want 1/3:\n%s", shed, ok, buf.String())
	}

	// The governor snapshot endpoint reflects the episode.
	dresp, err := http.Get(srv.URL + "/debug/governor")
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Active        int   `json:"active"`
		AdmittedTotal int64 `json:"admitted_total"`
		ShedTotal     int64 `json:"shed_total"`
	}
	err = json.NewDecoder(dresp.Body).Decode(&snap)
	dresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if snap.ShedTotal != 1 || snap.AdmittedTotal != 3 || snap.Active != 0 {
		t.Fatalf("snapshot = %+v, want 1 shed, 3 admitted, 0 active", snap)
	}
}

// TestDebugGovernorAbsent pins the ungoverned default: /debug/governor
// answers 404 when no governor is attached.
func TestDebugGovernorAbsent(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/debug/governor")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ungoverned /debug/governor = %d, want 404", resp.StatusCode)
	}
}
