// Package server exposes a warehouse over HTTP, mirroring the client
// interfaces of the paper's system architecture (§III-A1: REPL client,
// command line client, or REST server). Endpoints:
//
//	POST /query      {"query": "...", "strategy": "keep-flag"|"join"|"auto",
//	                  "analyze": true}
//	                 → {"items": [...], "sql": "...", "trace_id": "...",
//	                    "metrics": {...}, "plan": {...}}
//	POST /translate  {"query": "..."} → {"sql": "..."}
//	POST /load       {"collection": "c", "documents": [{...}, ...]}
//	POST /collections {"name": "c", "columns": ["a","b"]}
//	GET  /collections → {"collections": ["c", ...]}
//	POST /views      {"name": "v", "query": "...", "sql": "..."} registers an
//	                 incrementally maintained materialized view (JSONiq via
//	                 "query", or raw SQL via "sql")
//	GET  /views      → {"views": [{...}, ...]} registered views with refresh
//	                 accounting
//	POST /views/query {"name": "v"} → {"items": [...], "metrics": {...}}
//	                 incremental refresh + result of one view
//	GET  /metrics    Prometheus text exposition (query counts, phase/stage
//	                 latency histograms, runtime gauges, scan accounting)
//	GET  /debug/queries[?limit=20] in-flight queries with per-operator
//	                 progress, plus recent finished traces, newest first
//	GET  /debug/slow[?limit=10] slow-query captures: span tree + EXPLAIN
//	                 ANALYZE snapshot of queries over -slow-query-ms
//	GET  /debug/pprof/ Go runtime profiles (CPU, heap, goroutines, ...)
//
// Every /query request emits one structured JSON query-log record (qlog)
// with its trace ID, so a log line, the /debug/queries entry and the
// metrics it contributed to are joinable.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"time"

	"jsonpark"

	"jsonpark/internal/obsv/qlog"
	"jsonpark/internal/variant"
)

// StatusClientClosedRequest is the non-standard 499 status (nginx
// convention) reported when the client goes away mid-query.
const StatusClientClosedRequest = 499

// TenantHeader names the request header carrying the tenant identity for
// admission control; absent or empty means the default tenant.
const TenantHeader = "X-Tenant"

// Server wraps a warehouse with HTTP handlers.
type Server struct {
	w       *jsonpark.Warehouse
	mux     *http.ServeMux
	qlog    *qlog.Logger
	timeout time.Duration
}

// Option configures a Server.
type Option func(*Server)

// WithQueryTimeout bounds each /query request's execution; a query
// exceeding it is cancelled and answered with a structured 504. Values
// <= 0 (the default) disable the bound. The client disconnecting cancels
// the query regardless and is logged as a 499.
func WithQueryTimeout(d time.Duration) Option {
	return func(s *Server) { s.timeout = d }
}

// WithQueryLog routes the structured query log to l (default: a logger on
// os.Stderr). nil discards all query-log output.
func WithQueryLog(l *qlog.Logger) Option {
	return func(s *Server) { s.qlog = l }
}

// New builds a server over an existing warehouse.
func New(w *jsonpark.Warehouse, opts ...Option) *Server {
	s := &Server{w: w, mux: http.NewServeMux(), qlog: qlog.New(os.Stderr)}
	for _, o := range opts {
		o(s)
	}
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/translate", s.handleTranslate)
	s.mux.HandleFunc("/load", s.handleLoad)
	s.mux.HandleFunc("/collections", s.handleCollections)
	s.mux.HandleFunc("/views", s.handleViews)
	s.mux.HandleFunc("/views/query", s.handleViewQuery)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/queries", s.handleDebugQueries)
	s.mux.HandleFunc("/debug/slow", s.handleDebugSlow)
	s.mux.HandleFunc("/debug/governor", s.handleDebugGovernor)
	// Go runtime profiling, mounted explicitly (the server owns its mux, so
	// the net/http/pprof init-time DefaultServeMux registrations don't apply).
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// SetQueryLog replaces the structured query logger (nil discards).
func (s *Server) SetQueryLog(l *qlog.Logger) { s.qlog = l }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

type queryRequest struct {
	Query    string `json:"query"`
	Strategy string `json:"strategy"`
	Analyze  bool   `json:"analyze"`
}

type metricsJSON struct {
	CompileMicros    int64 `json:"compile_us"`
	ExecMicros       int64 `json:"exec_us"`
	BytesScanned     int64 `json:"bytes_scanned"`
	PartitionsTotal  int   `json:"partitions_total"`
	PartitionsPruned int   `json:"partitions_pruned"`
	Rows             int64 `json:"rows"`
}

func metricsOf(res *jsonpark.Result) metricsJSON {
	return metricsJSON{
		CompileMicros:    res.Metrics.CompileTime.Microseconds(),
		ExecMicros:       res.Metrics.ExecTime.Microseconds(),
		BytesScanned:     res.Metrics.BytesScanned,
		PartitionsTotal:  res.Metrics.PartitionsTotal,
		PartitionsPruned: res.Metrics.PartitionsPruned,
		Rows:             res.Metrics.RowsReturned,
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// requireMethod rejects other HTTP methods with 405, a JSON error body and
// an Allow header listing the accepted methods.
func requireMethod(w http.ResponseWriter, r *http.Request, methods ...string) bool {
	for _, m := range methods {
		if r.Method == m {
			return true
		}
	}
	allow := ""
	for i, m := range methods {
		if i > 0 {
			allow += ", "
		}
		allow += m
	}
	w.Header().Set("Allow", allow)
	writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed; use %s", r.Method, allow))
	return false
}

// decodeJSON parses a request body, mapping malformed JSON to a 400 with a
// structured error body.
func decodeJSON(w http.ResponseWriter, r *http.Request, into any) bool {
	if err := json.NewDecoder(r.Body).Decode(into); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed request JSON: %w", err))
		return false
	}
	return true
}

// queryRecord assembles the structured query-log completion record from a
// (possibly partial, on error) query report.
func queryRecord(rep *jsonpark.QueryReport, status string, err error) qlog.QueryRecord {
	return rep.QueryLogRecord(status, err)
}

func strategyOptions(name string) ([]jsonpark.QueryOption, error) {
	switch name {
	case "", "keep-flag":
		return nil, nil
	case "join":
		return []jsonpark.QueryOption{jsonpark.WithStrategy(jsonpark.StrategyJoin)}, nil
	case "auto":
		return []jsonpark.QueryOption{jsonpark.WithStrategy(jsonpark.StrategyAuto)}, nil
	}
	return nil, fmt.Errorf("unknown strategy %q", name)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req queryRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	opts, err := strategyOptions(req.Strategy)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Analyze {
		opts = append(opts, jsonpark.WithAnalyze())
	}
	// The request context covers client disconnects; the optional server
	// timeout layers a deadline on top of it.
	ctx := r.Context()
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	opts = append(opts, jsonpark.WithContext(ctx))
	// Admission: when a governor is attached, the request must win a tenant
	// slot (and the shared memory pool must have headroom) before any
	// translation or execution work starts. Shed requests cost one queue
	// wait, never a compile.
	if gov := s.w.Governor(); gov != nil {
		tenant := r.Header.Get(TenantHeader)
		release, aerr := gov.Admit(ctx, tenant)
		if aerr != nil {
			s.answerAdmission(w, req.Query, aerr)
			return
		}
		defer release()
	}
	rep, err := s.w.QueryTraced(req.Query, opts...)
	if err != nil {
		status := qlog.StatusError
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			status = qlog.StatusTimeout
		case errors.Is(err, context.Canceled):
			status = qlog.StatusCancelled
		}
		s.qlog.LogQuery(queryRecord(rep, status, err))
		switch status {
		case qlog.StatusTimeout:
			writeJSON(w, http.StatusGatewayTimeout, map[string]any{
				"error":      fmt.Sprintf("query exceeded the server time limit of %s", s.timeout),
				"code":       "query_timeout",
				"timeout_ms": s.timeout.Milliseconds(),
			})
		case qlog.StatusCancelled:
			// Best-effort: the client that closed the request will not read
			// this body, but proxies and tests see a definite status.
			writeJSON(w, StatusClientClosedRequest, map[string]any{
				"error": "query cancelled: client closed request",
				"code":  "query_cancelled",
			})
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	res := rep.Result
	s.qlog.LogQuery(queryRecord(rep, qlog.StatusOK, nil))
	items := make([]json.RawMessage, len(res.Rows))
	for i, row := range res.Rows {
		items[i] = json.RawMessage(row[0].JSON())
	}
	out := map[string]any{
		"items":    items,
		"sql":      rep.SQL,
		"trace_id": rep.TraceID,
		"strategy": rep.Strategy,
		"metrics":  metricsOf(res),
	}
	if rep.Plan != nil {
		out["plan"] = rep.Plan
		out["plan_text"] = rep.RenderAnalyze()
	}
	writeJSON(w, http.StatusOK, out)
}

// answerAdmission maps an admission failure onto the wire: shed requests
// become 429 with a Retry-After header and a "shed" qlog record; a client
// disconnect or server timeout while queued reuses the existing 499/504
// machinery.
func (s *Server) answerAdmission(w http.ResponseWriter, query string, err error) {
	var adm *jsonpark.AdmissionError
	if errors.As(err, &adm) {
		s.qlog.LogQuery(qlog.QueryRecord{Query: query, Status: qlog.StatusShed, Error: err.Error()})
		s.w.Observer().CountShed()
		retry := int64(adm.RetryAfter.Round(time.Second) / time.Second)
		if retry < 1 {
			retry = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(retry, 10))
		writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error":         err.Error(),
			"code":          "admission_shed",
			"tenant":        adm.Tenant,
			"retry_after_s": retry,
		})
		return
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.qlog.LogQuery(qlog.QueryRecord{Query: query, Status: qlog.StatusTimeout, Error: err.Error()})
		writeJSON(w, http.StatusGatewayTimeout, map[string]any{
			"error":      fmt.Sprintf("query exceeded the server time limit of %s while queued for admission", s.timeout),
			"code":       "query_timeout",
			"timeout_ms": s.timeout.Milliseconds(),
		})
	default:
		s.qlog.LogQuery(qlog.QueryRecord{Query: query, Status: qlog.StatusCancelled, Error: err.Error()})
		writeJSON(w, StatusClientClosedRequest, map[string]any{
			"error": "query cancelled: client closed request",
			"code":  "query_cancelled",
		})
	}
}

func (s *Server) handleTranslate(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req queryRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	opts, err := strategyOptions(req.Strategy)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sql, err := s.w.Translate(req.Query, opts...)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"sql": sql})
}

type loadRequest struct {
	Collection string            `json:"collection"`
	Documents  []json.RawMessage `json:"documents"`
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req loadRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	for i, raw := range req.Documents {
		v, err := variant.ParseJSON(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("document %d: %w", i, err))
			return
		}
		if err := s.w.LoadObject(req.Collection, v); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]int{"loaded": len(req.Documents)})
}

type createRequest struct {
	Name    string   `json:"name"`
	Columns []string `json:"columns"`
}

func (s *Server) handleCollections(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet, http.MethodPost) {
		return
	}
	if r.Method == http.MethodGet {
		writeJSON(w, http.StatusOK, map[string]any{
			"collections": s.w.Engine().Catalog().TableNames(),
		})
		return
	}
	var req createRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if err := s.w.CreateCollection(req.Name, req.Columns); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"created": req.Name})
}

type viewRequest struct {
	Name  string `json:"name"`
	Query string `json:"query"`
	SQL   string `json:"sql"`
}

// handleViews registers a materialized view (POST, from a JSONiq query or
// raw SQL) or lists the registered views (GET).
func (s *Server) handleViews(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet, http.MethodPost) {
		return
	}
	if r.Method == http.MethodGet {
		writeJSON(w, http.StatusOK, map[string]any{"views": s.w.ListViews()})
		return
	}
	var req viewRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	var err error
	switch {
	case req.Query != "" && req.SQL != "":
		err = fmt.Errorf("give either query or sql, not both")
	case req.Query != "":
		err = s.w.CreateView(req.Name, req.Query)
	case req.SQL != "":
		err = s.w.CreateSQLView(req.Name, req.SQL)
	default:
		err = fmt.Errorf("view needs a query or sql field")
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"created": req.Name})
}

// handleViewQuery incrementally refreshes one view and returns its rows.
func (s *Server) handleViewQuery(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req viewRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	ctx := r.Context()
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	res, err := s.w.ViewResult(ctx, req.Name)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	items := make([][]json.RawMessage, len(res.Rows))
	for i, row := range res.Rows {
		cells := make([]json.RawMessage, len(row))
		for j, v := range row {
			cells[j] = json.RawMessage(v.JSON())
		}
		items[i] = cells
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"columns": res.Columns,
		"items":   items,
		"metrics": metricsOf(res),
	})
}

// handleMetrics serves the Prometheus text exposition of the warehouse's
// metrics registry, refreshing the runtime gauges (goroutines, heap, GC)
// at scrape time.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	s.w.Observer().SampleRuntime()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.w.Observer().Registry.Expose(w)
}

// parseLimit reads the ?limit= bound of a debug endpoint (0 = unbounded;
// "n" is accepted as a legacy alias on /debug/queries). Returns -1 after
// writing a 400 for malformed values.
func parseLimit(w http.ResponseWriter, r *http.Request) int {
	q := r.URL.Query().Get("limit")
	if q == "" {
		q = r.URL.Query().Get("n")
	}
	if q == "" {
		return 0
	}
	v, err := strconv.Atoi(q)
	if err != nil || v < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", q))
		return -1
	}
	return v
}

// noStore marks debug payloads uncacheable: they are point-in-time
// snapshots of live state.
func noStore(w http.ResponseWriter) {
	w.Header().Set("Cache-Control", "no-store")
}

// handleDebugQueries serves live and recent queries: "active" lists every
// in-flight query with per-operator progress (rows, batches, memory),
// "queries" the finished-trace ring (trace ID, attributes, span tree),
// newest first.
func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	n := parseLimit(w, r)
	if n < 0 {
		return
	}
	active := s.w.Engine().ProgressSnapshot()
	if n > 0 && len(active) > n {
		active = active[:n]
	}
	traces := s.w.Observer().Tracer.Recent(n)
	noStore(w)
	writeJSON(w, http.StatusOK, map[string]any{"active": active, "queries": traces})
}

// handleDebugGovernor serves a point-in-time snapshot of the resource
// governor: pool usage, per-tenant occupancy and the admitted/shed totals.
// 404 when the warehouse runs ungoverned.
func (s *Server) handleDebugGovernor(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	gov := s.w.Governor()
	if gov == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no governor attached"))
		return
	}
	noStore(w)
	writeJSON(w, http.StatusOK, gov.Snapshot())
}

// handleDebugSlow serves the slow-query ring: for each captured query the
// full span tree plus the EXPLAIN ANALYZE plan snapshot, newest first.
func (s *Server) handleDebugSlow(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	n := parseLimit(w, r)
	if n < 0 {
		return
	}
	slow := s.w.Observer().Slow.Recent(n)
	noStore(w)
	writeJSON(w, http.StatusOK, map[string]any{"slow": slow})
}
