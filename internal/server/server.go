// Package server exposes a warehouse over HTTP, mirroring the client
// interfaces of the paper's system architecture (§III-A1: REPL client,
// command line client, or REST server). Endpoints:
//
//	POST /query      {"query": "...", "strategy": "keep-flag"|"join"}
//	                 → {"items": [...], "sql": "...", "metrics": {...}}
//	POST /translate  {"query": "..."} → {"sql": "..."}
//	POST /load       {"collection": "c", "documents": [{...}, ...]}
//	POST /collections {"name": "c", "columns": ["a","b"]}
//	GET  /collections → {"collections": ["c", ...]}
package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"jsonpark"

	"jsonpark/internal/variant"
)

// Server wraps a warehouse with HTTP handlers.
type Server struct {
	w   *jsonpark.Warehouse
	mux *http.ServeMux
}

// New builds a server over an existing warehouse.
func New(w *jsonpark.Warehouse) *Server {
	s := &Server{w: w, mux: http.NewServeMux()}
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/translate", s.handleTranslate)
	s.mux.HandleFunc("/load", s.handleLoad)
	s.mux.HandleFunc("/collections", s.handleCollections)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

type queryRequest struct {
	Query    string `json:"query"`
	Strategy string `json:"strategy"`
}

type metricsJSON struct {
	CompileMicros    int64 `json:"compile_us"`
	ExecMicros       int64 `json:"exec_us"`
	BytesScanned     int64 `json:"bytes_scanned"`
	PartitionsTotal  int   `json:"partitions_total"`
	PartitionsPruned int   `json:"partitions_pruned"`
	Rows             int64 `json:"rows"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var opts []jsonpark.QueryOption
	switch req.Strategy {
	case "", "keep-flag":
	case "join":
		opts = append(opts, jsonpark.WithStrategy(jsonpark.StrategyJoin))
	case "auto":
		opts = append(opts, jsonpark.WithStrategy(jsonpark.StrategyAuto))
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown strategy %q", req.Strategy))
		return
	}
	sql, err := s.w.Translate(req.Query, opts...)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.w.Query(req.Query, opts...)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	items := make([]json.RawMessage, len(res.Rows))
	for i, row := range res.Rows {
		items[i] = json.RawMessage(row[0].JSON())
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"items": items,
		"sql":   sql,
		"metrics": metricsJSON{
			CompileMicros:    res.Metrics.CompileTime.Microseconds(),
			ExecMicros:       res.Metrics.ExecTime.Microseconds(),
			BytesScanned:     res.Metrics.BytesScanned,
			PartitionsTotal:  res.Metrics.PartitionsTotal,
			PartitionsPruned: res.Metrics.PartitionsPruned,
			Rows:             res.Metrics.RowsReturned,
		},
	})
}

func (s *Server) handleTranslate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var opts []jsonpark.QueryOption
	if req.Strategy == "join" {
		opts = append(opts, jsonpark.WithStrategy(jsonpark.StrategyJoin))
	}
	sql, err := s.w.Translate(req.Query, opts...)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"sql": sql})
}

type loadRequest struct {
	Collection string            `json:"collection"`
	Documents  []json.RawMessage `json:"documents"`
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req loadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	for i, raw := range req.Documents {
		v, err := variant.ParseJSON(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("document %d: %w", i, err))
			return
		}
		if err := s.w.LoadObject(req.Collection, v); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]int{"loaded": len(req.Documents)})
}

type createRequest struct {
	Name    string   `json:"name"`
	Columns []string `json:"columns"`
}

func (s *Server) handleCollections(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, map[string]any{
			"collections": s.w.Engine().Catalog().TableNames(),
		})
	case http.MethodPost:
		var req createRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if err := s.w.CreateCollection(req.Name, req.Columns); err != nil {
			writeError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"created": req.Name})
	default:
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET or POST required"))
	}
}
