// Package server exposes a warehouse over HTTP, mirroring the client
// interfaces of the paper's system architecture (§III-A1: REPL client,
// command line client, or REST server). Endpoints:
//
//	POST /query      {"query": "...", "strategy": "keep-flag"|"join"|"auto",
//	                  "analyze": true}
//	                 → {"items": [...], "sql": "...", "trace_id": "...",
//	                    "metrics": {...}, "plan": {...}}
//	POST /translate  {"query": "..."} → {"sql": "..."}
//	POST /load       {"collection": "c", "documents": [{...}, ...]}
//	POST /collections {"name": "c", "columns": ["a","b"]}
//	GET  /collections → {"collections": ["c", ...]}
//	GET  /metrics    Prometheus text exposition (query counts, stage
//	                 latency histograms, cumulative scan accounting)
//	GET  /debug/queries[?n=20] recent queries: trace ID, SQL, span tree,
//	                 metrics, newest first
//
// Every /query request is logged with its trace ID, so a log line, the
// /debug/queries entry and the metrics it contributed to are joinable.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"jsonpark"

	"jsonpark/internal/variant"
)

// StatusClientClosedRequest is the non-standard 499 status (nginx
// convention) reported when the client goes away mid-query.
const StatusClientClosedRequest = 499

// Server wraps a warehouse with HTTP handlers.
type Server struct {
	w       *jsonpark.Warehouse
	mux     *http.ServeMux
	logger  *log.Logger
	timeout time.Duration
}

// Option configures a Server.
type Option func(*Server)

// WithQueryTimeout bounds each /query request's execution; a query
// exceeding it is cancelled and answered with a structured 504. Values
// <= 0 (the default) disable the bound. The client disconnecting cancels
// the query regardless and is logged as a 499.
func WithQueryTimeout(d time.Duration) Option {
	return func(s *Server) { s.timeout = d }
}

// New builds a server over an existing warehouse.
func New(w *jsonpark.Warehouse, opts ...Option) *Server {
	s := &Server{w: w, mux: http.NewServeMux(), logger: log.Default()}
	for _, o := range opts {
		o(s)
	}
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/translate", s.handleTranslate)
	s.mux.HandleFunc("/load", s.handleLoad)
	s.mux.HandleFunc("/collections", s.handleCollections)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/queries", s.handleDebugQueries)
	return s
}

// SetLogger replaces the request logger (default log.Default()).
func (s *Server) SetLogger(l *log.Logger) { s.logger = l }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

type queryRequest struct {
	Query    string `json:"query"`
	Strategy string `json:"strategy"`
	Analyze  bool   `json:"analyze"`
}

type metricsJSON struct {
	CompileMicros    int64 `json:"compile_us"`
	ExecMicros       int64 `json:"exec_us"`
	BytesScanned     int64 `json:"bytes_scanned"`
	PartitionsTotal  int   `json:"partitions_total"`
	PartitionsPruned int   `json:"partitions_pruned"`
	Rows             int64 `json:"rows"`
}

func metricsOf(res *jsonpark.Result) metricsJSON {
	return metricsJSON{
		CompileMicros:    res.Metrics.CompileTime.Microseconds(),
		ExecMicros:       res.Metrics.ExecTime.Microseconds(),
		BytesScanned:     res.Metrics.BytesScanned,
		PartitionsTotal:  res.Metrics.PartitionsTotal,
		PartitionsPruned: res.Metrics.PartitionsPruned,
		Rows:             res.Metrics.RowsReturned,
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// requireMethod rejects other HTTP methods with 405, a JSON error body and
// an Allow header listing the accepted methods.
func requireMethod(w http.ResponseWriter, r *http.Request, methods ...string) bool {
	for _, m := range methods {
		if r.Method == m {
			return true
		}
	}
	allow := ""
	for i, m := range methods {
		if i > 0 {
			allow += ", "
		}
		allow += m
	}
	w.Header().Set("Allow", allow)
	writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed; use %s", r.Method, allow))
	return false
}

// decodeJSON parses a request body, mapping malformed JSON to a 400 with a
// structured error body.
func decodeJSON(w http.ResponseWriter, r *http.Request, into any) bool {
	if err := json.NewDecoder(r.Body).Decode(into); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed request JSON: %w", err))
		return false
	}
	return true
}

func strategyOptions(name string) ([]jsonpark.QueryOption, error) {
	switch name {
	case "", "keep-flag":
		return nil, nil
	case "join":
		return []jsonpark.QueryOption{jsonpark.WithStrategy(jsonpark.StrategyJoin)}, nil
	case "auto":
		return []jsonpark.QueryOption{jsonpark.WithStrategy(jsonpark.StrategyAuto)}, nil
	}
	return nil, fmt.Errorf("unknown strategy %q", name)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req queryRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	opts, err := strategyOptions(req.Strategy)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Analyze {
		opts = append(opts, jsonpark.WithAnalyze())
	}
	// The request context covers client disconnects; the optional server
	// timeout layers a deadline on top of it.
	ctx := r.Context()
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	opts = append(opts, jsonpark.WithContext(ctx))
	rep, err := s.w.QueryTraced(req.Query, opts...)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.logger.Printf("query timeout=%s query=%q", s.timeout, req.Query)
			writeJSON(w, http.StatusGatewayTimeout, map[string]any{
				"error":      fmt.Sprintf("query exceeded the server time limit of %s", s.timeout),
				"code":       "query_timeout",
				"timeout_ms": s.timeout.Milliseconds(),
			})
		case errors.Is(err, context.Canceled):
			s.logger.Printf("query cancelled query=%q", req.Query)
			// Best-effort: the client that closed the request will not read
			// this body, but proxies and tests see a definite status.
			writeJSON(w, StatusClientClosedRequest, map[string]any{
				"error": "query cancelled: client closed request",
				"code":  "query_cancelled",
			})
		default:
			s.logger.Printf("query error=%q query=%q", err, req.Query)
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	res := rep.Result
	s.logger.Printf("query trace=%s rows=%d compile=%s exec=%s scanned=%dB pruned=%d/%d strategy=%s",
		rep.TraceID, res.Metrics.RowsReturned, res.Metrics.CompileTime, res.Metrics.ExecTime,
		res.Metrics.BytesScanned, res.Metrics.PartitionsPruned, res.Metrics.PartitionsTotal,
		rep.Strategy)
	items := make([]json.RawMessage, len(res.Rows))
	for i, row := range res.Rows {
		items[i] = json.RawMessage(row[0].JSON())
	}
	out := map[string]any{
		"items":    items,
		"sql":      rep.SQL,
		"trace_id": rep.TraceID,
		"strategy": rep.Strategy,
		"metrics":  metricsOf(res),
	}
	if rep.Plan != nil {
		out["plan"] = rep.Plan
		out["plan_text"] = rep.RenderAnalyze()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleTranslate(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req queryRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	opts, err := strategyOptions(req.Strategy)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sql, err := s.w.Translate(req.Query, opts...)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"sql": sql})
}

type loadRequest struct {
	Collection string            `json:"collection"`
	Documents  []json.RawMessage `json:"documents"`
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req loadRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	for i, raw := range req.Documents {
		v, err := variant.ParseJSON(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("document %d: %w", i, err))
			return
		}
		if err := s.w.LoadObject(req.Collection, v); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]int{"loaded": len(req.Documents)})
}

type createRequest struct {
	Name    string   `json:"name"`
	Columns []string `json:"columns"`
}

func (s *Server) handleCollections(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet, http.MethodPost) {
		return
	}
	if r.Method == http.MethodGet {
		writeJSON(w, http.StatusOK, map[string]any{
			"collections": s.w.Engine().Catalog().TableNames(),
		})
		return
	}
	var req createRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if err := s.w.CreateCollection(req.Name, req.Columns); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"created": req.Name})
}

// handleMetrics serves the Prometheus text exposition of the warehouse's
// metrics registry.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.w.Observer().Registry.Expose(w)
}

// handleDebugQueries serves the recent-query ring: per query the trace ID,
// attributes (JSONiq text, SQL, strategy, rows) and the full span tree.
func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad n %q", q))
			return
		}
		n = v
	}
	traces := s.w.Observer().Tracer.Recent(n)
	writeJSON(w, http.StatusOK, map[string]any{"queries": traces})
}
