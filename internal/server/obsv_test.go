package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"jsonpark"

	"jsonpark/internal/obsv/qlog"
)

// syncBuffer collects qlog output from the handler goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// One /query request must produce exactly one parseable qlog JSON record
// with trace ID, per-phase timings, memory/spill accounting and status.
func TestQueryLogRecordPerQuery(t *testing.T) {
	var buf syncBuffer
	w := jsonpark.Open(jsonpark.WithSlowQueryMillis(0))
	s := New(w, WithQueryLog(qlog.New(&buf)))
	srv := httptest.NewServer(s)
	defer srv.Close()
	loadOrders(t, srv)

	code, out := post(t, srv, "/query", ordersQuery)
	if code != http.StatusOK {
		t.Fatalf("query: %d %v", code, out)
	}
	traceID, _ := out["trace_id"].(string)

	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("want exactly 1 qlog record, got %d:\n%s", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("qlog record is not JSON: %v\n%s", err, lines[0])
	}
	if rec["trace_id"] != traceID {
		t.Errorf("trace_id = %v, want %v", rec["trace_id"], traceID)
	}
	if rec["status"] != "ok" {
		t.Errorf("status = %v", rec["status"])
	}
	for _, k := range []string{"parse_us", "plan_us", "sqlgen_us", "exec_us",
		"total_us", "rows", "mem_peak_bytes", "spill_bytes", "fingerprint"} {
		if _, found := rec[k]; !found {
			t.Errorf("record missing %q: %s", k, lines[0])
		}
	}
	// -slow-query-ms=0 captures every query, so the record is warn + slow.
	if rec["level"] != "warn" || rec["slow"] != true {
		t.Errorf("slow capture at threshold 0: level=%v slow=%v", rec["level"], rec["slow"])
	}
	if rec["rows"].(float64) != 2 {
		t.Errorf("rows = %v, want 2", rec["rows"])
	}
	if total := rec["total_us"].(float64); total <= 0 {
		t.Errorf("total_us = %v, want > 0", total)
	}
}

// A failed query still emits one qlog record, at error level, with the
// trace ID of the failed attempt.
func TestQueryLogErrorRecord(t *testing.T) {
	var buf syncBuffer
	w := jsonpark.Open()
	s := New(w, WithQueryLog(qlog.New(&buf)))
	srv := httptest.NewServer(s)
	defer srv.Close()

	code, _ := post(t, srv, "/query", `{"query": "for $x in"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("code = %d", code)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSuffix(buf.String(), "\n")), &rec); err != nil {
		t.Fatalf("qlog record is not JSON: %v\n%s", err, buf.String())
	}
	if rec["level"] != "error" || rec["status"] != "error" {
		t.Errorf("level=%v status=%v", rec["level"], rec["status"])
	}
	if id, _ := rec["trace_id"].(string); id == "" {
		t.Errorf("error record missing trace_id: %s", buf.String())
	}
	if msg, _ := rec["error"].(string); msg == "" {
		t.Errorf("error record missing error message: %s", buf.String())
	}
}

// /debug/slow serves captured slow queries (span tree + plan snapshot)
// with no-store caching and a working ?limit=.
func TestDebugSlowEndpoint(t *testing.T) {
	w := jsonpark.Open(jsonpark.WithSlowQueryMillis(0))
	s := New(w)
	s.SetQueryLog(nil)
	srv := httptest.NewServer(s)
	defer srv.Close()
	loadOrders(t, srv)
	for i := 0; i < 3; i++ {
		if code, out := post(t, srv, "/query", ordersQuery); code != http.StatusOK {
			t.Fatalf("query: %d %v", code, out)
		}
	}

	resp, err := http.Get(srv.URL + "/debug/slow?limit=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("code = %d", resp.StatusCode)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Errorf("Cache-Control = %q, want no-store", cc)
	}
	var out struct {
		Slow []struct {
			Trace struct {
				TraceID string            `json:"trace_id"`
				Attrs   map[string]string `json:"attrs"`
			} `json:"trace"`
			Plan map[string]any `json:"plan"`
		} `json:"slow"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Slow) != 2 {
		t.Fatalf("limit=2 returned %d captures", len(out.Slow))
	}
	top := out.Slow[0]
	if top.Trace.TraceID == "" {
		t.Error("capture missing trace_id")
	}
	if !strings.HasPrefix(top.Trace.Attrs["sql"], "SELECT") {
		t.Errorf("capture attrs.sql = %q", top.Trace.Attrs["sql"])
	}
	// Slow capture forces analyze on, so the EXPLAIN ANALYZE snapshot rides
	// along even though the client did not request it.
	if _, ok := top.Plan["rows_out"]; !ok {
		t.Errorf("capture lacks plan snapshot: %v", top.Plan)
	}
}

// A warehouse without slow capture armed serves an empty (but valid)
// /debug/slow.
func TestDebugSlowDisabledByDefault(t *testing.T) {
	srv := testServer(t)
	loadOrders(t, srv)
	post(t, srv, "/query", ordersQuery)
	resp, err := http.Get(srv.URL + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if slow, ok := out["slow"].([]any); ok && len(slow) != 0 {
		t.Errorf("slow captures without arming: %v", slow)
	}
}

// /debug/queries must send Cache-Control: no-store and honor ?limit=
// (with ?n= as the legacy alias).
func TestDebugQueriesHeadersAndLimit(t *testing.T) {
	srv := testServer(t)
	loadOrders(t, srv)
	for i := 0; i < 3; i++ {
		post(t, srv, "/query", ordersQuery)
	}
	for _, param := range []string{"limit=2", "n=2"} {
		resp, err := http.Get(srv.URL + "/debug/queries?" + param)
		if err != nil {
			t.Fatal(err)
		}
		if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
			t.Errorf("%s: Cache-Control = %q", param, cc)
		}
		var out struct {
			Queries []any `json:"queries"`
			Active  []any `json:"active"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Queries) != 2 {
			t.Errorf("%s: %d traces, want 2", param, len(out.Queries))
		}
		if out.Active == nil {
			t.Errorf("%s: response lacks active list", param)
		}
	}
	resp, err := http.Get(srv.URL + "/debug/queries?limit=-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative limit code = %d", resp.StatusCode)
	}
}

// A query observed mid-flight must appear in /debug/queries' active list
// with non-zero per-operator row counts.
func TestDebugQueriesShowsInFlightProgress(t *testing.T) {
	w := jsonpark.Open(jsonpark.WithBatchSize(1), jsonpark.WithParallelism(1))
	s := New(w)
	s.SetQueryLog(nil)
	srv := httptest.NewServer(s)
	defer srv.Close()
	loadOrders(t, srv)

	paused := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	w.Engine().SetExecBatchHook(func() {
		once.Do(func() {
			close(paused)
			<-release
		})
	})

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Post(srv.URL+"/query", "application/json", strings.NewReader(ordersQuery))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	<-paused
	resp, err := http.Get(srv.URL + "/debug/queries")
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Active []struct {
			TraceID   string `json:"trace_id"`
			SQL       string `json:"sql"`
			Operators []struct {
				Op   string `json:"op"`
				Rows int64  `json:"rows"`
			} `json:"operators"`
		} `json:"active"`
	}
	err = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	close(release)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Active) != 1 {
		t.Fatalf("active = %d queries, want 1", len(out.Active))
	}
	q := out.Active[0]
	if q.TraceID == "" {
		t.Error("active entry missing trace_id")
	}
	if !strings.HasPrefix(q.SQL, "SELECT") {
		t.Errorf("active entry SQL = %q", q.SQL)
	}
	var sawRows bool
	for _, op := range q.Operators {
		if op.Rows > 0 {
			sawRows = true
		}
	}
	if !sawRows {
		t.Errorf("no operator shows rows mid-flight: %+v", q.Operators)
	}
}

// The pprof surface must be mounted: the index and a short CPU profile
// both answer 200.
func TestPprofEndpoints(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index: code=%d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/debug/pprof/profile?seconds=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof profile: code=%d", resp.StatusCode)
	}
}

// /metrics must include the runtime sampler gauges and the per-phase
// histogram family.
func TestMetricsRuntimeAndPhaseFamilies(t *testing.T) {
	srv := testServer(t)
	loadOrders(t, srv)
	post(t, srv, "/query", ordersQuery)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)
	for _, want := range []string{
		"jsonpark_goroutines",
		"jsonpark_heap_alloc_bytes",
		`jsonpark_query_phase_seconds_count{phase="exec"} 1`,
		`jsonpark_query_status_seconds_count{status="ok"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if strings.Contains(body, "jsonpark_goroutines 0\n") {
		t.Error("runtime gauges not sampled at scrape time")
	}
}
