package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"jsonpark"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	w := jsonpark.Open()
	s := New(w)
	s.SetQueryLog(nil)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return srv
}

func post(t *testing.T, srv *httptest.Server, path, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func TestEndToEndHTTPFlow(t *testing.T) {
	srv := testServer(t)

	code, out := post(t, srv, "/collections", `{"name": "orders", "columns": ["id", "items"]}`)
	if code != http.StatusOK {
		t.Fatalf("create: %d %v", code, out)
	}

	code, out = post(t, srv, "/load", `{"collection": "orders", "documents": [
		{"id": 1, "items": [{"qty": 2}]},
		{"id": 2, "items": []}
	]}`)
	if code != http.StatusOK || out["loaded"].(float64) != 2 {
		t.Fatalf("load: %d %v", code, out)
	}

	code, out = post(t, srv, "/query", `{"query": "for $o in collection(\"orders\") let $n := count(for $i in $o.items[] return $i) order by $o.id return {\"id\": $o.id, \"n\": $n}"}`)
	if code != http.StatusOK {
		t.Fatalf("query: %d %v", code, out)
	}
	items := out["items"].([]any)
	if len(items) != 2 {
		t.Fatalf("items = %v", items)
	}
	first := items[0].(map[string]any)
	if first["n"].(float64) != 1 {
		t.Errorf("first = %v", first)
	}
	if !strings.HasPrefix(out["sql"].(string), "SELECT") {
		t.Errorf("sql = %v", out["sql"])
	}
	metrics := out["metrics"].(map[string]any)
	if metrics["rows"].(float64) != 2 {
		t.Errorf("metrics = %v", metrics)
	}

	// GET /collections lists the created one.
	resp, err := http.Get(srv.URL + "/collections")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listing map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	cols := listing["collections"].([]any)
	if len(cols) != 1 || cols[0] != "orders" {
		t.Errorf("collections = %v", cols)
	}
}

func TestQueryStrategySelection(t *testing.T) {
	srv := testServer(t)
	post(t, srv, "/collections", `{"name": "c", "columns": ["id", "a"]}`)
	post(t, srv, "/load", `{"collection": "c", "documents": [{"id": 1, "a": [1, 2]}]}`)
	q := `{"query": "for $x in collection(\"c\") let $f := (for $v in $x.a[] where $v gt 1 return $v) return size($f)", "strategy": "join"}`
	code, out := post(t, srv, "/query", q)
	if code != http.StatusOK {
		t.Fatalf("join strategy: %d %v", code, out)
	}
	if !strings.Contains(out["sql"].(string), "LEFT OUTER JOIN") {
		t.Errorf("join strategy SQL missing join: %v", out["sql"])
	}
	code, out = post(t, srv, "/query", strings.Replace(q, `"join"`, `"bogus"`, 1))
	if code != http.StatusBadRequest {
		t.Errorf("bogus strategy: %d %v", code, out)
	}
}

func TestHTTPErrors(t *testing.T) {
	srv := testServer(t)
	code, _ := post(t, srv, "/query", `{"query": "for $x in"}`)
	if code != http.StatusBadRequest {
		t.Errorf("syntax error code = %d", code)
	}
	code, _ = post(t, srv, "/load", `{"collection": "missing", "documents": [{}]}`)
	if code != http.StatusBadRequest {
		t.Errorf("missing collection code = %d", code)
	}
	code, _ = post(t, srv, "/collections", `{bad json`)
	if code != http.StatusBadRequest {
		t.Errorf("bad json code = %d", code)
	}
	resp, err := http.Get(srv.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query code = %d", resp.StatusCode)
	}
	// Duplicate collection returns conflict.
	post(t, srv, "/collections", `{"name": "dup", "columns": ["x"]}`)
	code, _ = post(t, srv, "/collections", `{"name": "dup", "columns": ["x"]}`)
	if code != http.StatusConflict {
		t.Errorf("duplicate code = %d", code)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	srv := testServer(t)
	for path, allow := range map[string]string{
		"/query":         "POST",
		"/translate":     "POST",
		"/load":          "POST",
		"/metrics":       "GET",
		"/debug/queries": "GET",
	} {
		var resp *http.Response
		var err error
		if allow == "POST" {
			resp, err = http.Get(srv.URL + path)
		} else {
			resp, err = http.Post(srv.URL+path, "application/json", strings.NewReader("{}"))
		}
		if err != nil {
			t.Fatal(err)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("%s: 405 body is not JSON: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s: code = %d", path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != allow {
			t.Errorf("%s: Allow = %q, want %q", path, got, allow)
		}
		if out["error"] == "" {
			t.Errorf("%s: missing error body", path)
		}
	}
	// /collections takes both methods; a PUT names them all.
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/collections", strings.NewReader("{}"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != "GET, POST" {
		t.Errorf("PUT /collections: code=%d Allow=%q", resp.StatusCode, resp.Header.Get("Allow"))
	}
}

func TestMalformedJSONBody(t *testing.T) {
	srv := testServer(t)
	for _, path := range []string{"/query", "/translate", "/load", "/collections"} {
		code, out := post(t, srv, path, `{"query": `)
		if code != http.StatusBadRequest {
			t.Errorf("%s: code = %d", path, code)
		}
		msg, _ := out["error"].(string)
		if !strings.Contains(msg, "malformed request JSON") {
			t.Errorf("%s: error = %q", path, msg)
		}
	}
}

func loadOrders(t *testing.T, srv *httptest.Server) {
	t.Helper()
	post(t, srv, "/collections", `{"name": "orders", "columns": ["id", "items"]}`)
	code, out := post(t, srv, "/load", `{"collection": "orders", "documents": [
		{"id": 1, "items": [{"qty": 2}]},
		{"id": 2, "items": [{"qty": 5}]}
	]}`)
	if code != http.StatusOK {
		t.Fatalf("load: %d %v", code, out)
	}
}

const ordersQuery = `{"query": "for $o in collection(\"orders\") order by $o.id return $o.id"}`

func TestMetricsEndpoint(t *testing.T) {
	srv := testServer(t)
	loadOrders(t, srv)
	if code, out := post(t, srv, "/query", ordersQuery); code != http.StatusOK {
		t.Fatalf("query: %d %v", code, out)
	}
	post(t, srv, "/query", `{"query": "for $x in"}`) // one failed query

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`jsonpark_queries_total{status="ok"} 1`,
		`jsonpark_queries_total{status="error"} 1`,
		"jsonpark_bytes_scanned_total",
		`jsonpark_query_stage_seconds_count{stage="engine.execute"} 1`,
		"# TYPE jsonpark_query_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
	// Every sample line must parse as `name{labels} value`.
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample %q has no value", line)
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			t.Errorf("sample %q: %v", line, err)
		}
	}
}

func TestDebugQueriesEndpoint(t *testing.T) {
	srv := testServer(t)
	loadOrders(t, srv)
	code, out := post(t, srv, "/query", ordersQuery)
	if code != http.StatusOK {
		t.Fatalf("query: %d %v", code, out)
	}
	traceID, _ := out["trace_id"].(string)
	if traceID == "" {
		t.Fatalf("query response missing trace_id: %v", out)
	}

	resp, err := http.Get(srv.URL + "/debug/queries?n=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dbg struct {
		Queries []struct {
			TraceID string            `json:"trace_id"`
			Attrs   map[string]string `json:"attrs"`
			Spans   struct {
				Name     string `json:"name"`
				Children []struct {
					Name string `json:"name"`
				} `json:"children"`
			} `json:"spans"`
		} `json:"queries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dbg); err != nil {
		t.Fatal(err)
	}
	if len(dbg.Queries) != 1 {
		t.Fatalf("queries = %d", len(dbg.Queries))
	}
	q := dbg.Queries[0]
	if q.TraceID != traceID {
		t.Errorf("trace_id = %q, want %q", q.TraceID, traceID)
	}
	if !strings.HasPrefix(q.Attrs["sql"], "SELECT") {
		t.Errorf("attrs.sql = %q", q.Attrs["sql"])
	}
	stages := map[string]bool{}
	for _, c := range q.Spans.Children {
		stages[c.Name] = true
	}
	for _, want := range []string{"jsoniq.parse", "core.translate", "engine.execute"} {
		if !stages[want] {
			t.Errorf("span tree missing stage %q (got %v)", want, stages)
		}
	}

	if resp, err := http.Get(srv.URL + "/debug/queries?n=bogus"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad n code = %d", resp.StatusCode)
		}
	}
}

func TestQueryAnalyzeOverHTTP(t *testing.T) {
	srv := testServer(t)
	loadOrders(t, srv)
	code, out := post(t, srv, "/query",
		`{"query": "for $o in collection(\"orders\") for $i in $o.items[] return $i.qty", "analyze": true}`)
	if code != http.StatusOK {
		t.Fatalf("query: %d %v", code, out)
	}
	plan, ok := out["plan"].(map[string]any)
	if !ok {
		t.Fatalf("missing plan: %v", out)
	}
	if _, ok := plan["rows_out"]; !ok {
		t.Errorf("plan lacks rows_out: %v", plan)
	}
	text, _ := out["plan_text"].(string)
	if !strings.Contains(text, "Scan") || !strings.Contains(text, "bytes=") {
		t.Errorf("plan_text = %q", text)
	}
}

// TestQueryTimeoutReturns504: a server-side -query-timeout overrun answers
// 504 with a structured body and shows up as a cancelled query in /metrics.
func TestQueryTimeoutReturns504(t *testing.T) {
	w := jsonpark.Open()
	s := New(w, WithQueryTimeout(time.Nanosecond))
	s.SetQueryLog(nil)
	srv := httptest.NewServer(s)
	defer srv.Close()
	loadOrders(t, srv) // only /query is governed by the timeout

	code, out := post(t, srv, "/query", ordersQuery)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("code = %d %v, want 504", code, out)
	}
	if out["code"] != "query_timeout" {
		t.Errorf("body code = %v", out["code"])
	}
	if _, ok := out["timeout_ms"]; !ok {
		t.Errorf("body lacks timeout_ms: %v", out)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		`jsonpark_queries_total{status="cancelled"} 1`,
		"jsonpark_queries_cancelled_total 1",
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestClientDisconnectReturns499: a request whose context is already gone
// (client hung up) maps to the nginx-style 499, not a 4xx/5xx that would
// page on server health dashboards.
func TestClientDisconnectReturns499(t *testing.T) {
	w := jsonpark.Open()
	s := New(w)
	s.SetQueryLog(nil)
	srv := httptest.NewServer(s)
	defer srv.Close()
	loadOrders(t, srv)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(ordersQuery)).WithContext(ctx)
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("code = %d (%s), want 499", rec.Code, rec.Body.String())
	}
	var out map[string]any
	if err := json.NewDecoder(rec.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["code"] != "query_cancelled" {
		t.Errorf("body code = %v", out["code"])
	}
}

// TestConcurrentQueries hammers the shared observer from parallel clients;
// run under -race this pins the registry and trace ring as race-clean.
func TestConcurrentQueries(t *testing.T) {
	srv := testServer(t)
	loadOrders(t, srv)
	const clients, perClient = 8, 10
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := http.Post(srv.URL+"/query", "application/json", strings.NewReader(ordersQuery))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("query status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for i := 0; i < 20; i++ {
			for _, path := range []string{"/metrics", "/debug/queries"} {
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()
	wg.Wait()
	<-scrapeDone
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	want := fmt.Sprintf(`jsonpark_queries_total{status="ok"} %d`, clients*perClient)
	if !strings.Contains(string(raw), want) {
		t.Errorf("/metrics missing %q", want)
	}
}
