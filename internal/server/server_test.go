package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"jsonpark"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	w := jsonpark.Open()
	srv := httptest.NewServer(New(w))
	t.Cleanup(srv.Close)
	return srv
}

func post(t *testing.T, srv *httptest.Server, path, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func TestEndToEndHTTPFlow(t *testing.T) {
	srv := testServer(t)

	code, out := post(t, srv, "/collections", `{"name": "orders", "columns": ["id", "items"]}`)
	if code != http.StatusOK {
		t.Fatalf("create: %d %v", code, out)
	}

	code, out = post(t, srv, "/load", `{"collection": "orders", "documents": [
		{"id": 1, "items": [{"qty": 2}]},
		{"id": 2, "items": []}
	]}`)
	if code != http.StatusOK || out["loaded"].(float64) != 2 {
		t.Fatalf("load: %d %v", code, out)
	}

	code, out = post(t, srv, "/query", `{"query": "for $o in collection(\"orders\") let $n := count(for $i in $o.items[] return $i) order by $o.id return {\"id\": $o.id, \"n\": $n}"}`)
	if code != http.StatusOK {
		t.Fatalf("query: %d %v", code, out)
	}
	items := out["items"].([]any)
	if len(items) != 2 {
		t.Fatalf("items = %v", items)
	}
	first := items[0].(map[string]any)
	if first["n"].(float64) != 1 {
		t.Errorf("first = %v", first)
	}
	if !strings.HasPrefix(out["sql"].(string), "SELECT") {
		t.Errorf("sql = %v", out["sql"])
	}
	metrics := out["metrics"].(map[string]any)
	if metrics["rows"].(float64) != 2 {
		t.Errorf("metrics = %v", metrics)
	}

	// GET /collections lists the created one.
	resp, err := http.Get(srv.URL + "/collections")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listing map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	cols := listing["collections"].([]any)
	if len(cols) != 1 || cols[0] != "orders" {
		t.Errorf("collections = %v", cols)
	}
}

func TestQueryStrategySelection(t *testing.T) {
	srv := testServer(t)
	post(t, srv, "/collections", `{"name": "c", "columns": ["id", "a"]}`)
	post(t, srv, "/load", `{"collection": "c", "documents": [{"id": 1, "a": [1, 2]}]}`)
	q := `{"query": "for $x in collection(\"c\") let $f := (for $v in $x.a[] where $v gt 1 return $v) return size($f)", "strategy": "join"}`
	code, out := post(t, srv, "/query", q)
	if code != http.StatusOK {
		t.Fatalf("join strategy: %d %v", code, out)
	}
	if !strings.Contains(out["sql"].(string), "LEFT OUTER JOIN") {
		t.Errorf("join strategy SQL missing join: %v", out["sql"])
	}
	code, out = post(t, srv, "/query", strings.Replace(q, `"join"`, `"bogus"`, 1))
	if code != http.StatusBadRequest {
		t.Errorf("bogus strategy: %d %v", code, out)
	}
}

func TestHTTPErrors(t *testing.T) {
	srv := testServer(t)
	code, _ := post(t, srv, "/query", `{"query": "for $x in"}`)
	if code != http.StatusBadRequest {
		t.Errorf("syntax error code = %d", code)
	}
	code, _ = post(t, srv, "/load", `{"collection": "missing", "documents": [{}]}`)
	if code != http.StatusBadRequest {
		t.Errorf("missing collection code = %d", code)
	}
	code, _ = post(t, srv, "/collections", `{bad json`)
	if code != http.StatusBadRequest {
		t.Errorf("bad json code = %d", code)
	}
	resp, err := http.Get(srv.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query code = %d", resp.StatusCode)
	}
	// Duplicate collection returns conflict.
	post(t, srv, "/collections", `{"name": "dup", "columns": ["x"]}`)
	code, _ = post(t, srv, "/collections", `{"name": "dup", "columns": ["x"]}`)
	if code != http.StatusConflict {
		t.Errorf("duplicate code = %d", code)
	}
}
