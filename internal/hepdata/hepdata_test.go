package hepdata

import (
	"testing"

	"jsonpark/internal/engine"
	"jsonpark/internal/variant"
)

func TestLoadStagesMultiColumn(t *testing.T) {
	eng := engine.New()
	docs, err := Load(eng, "adl", 3, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 200 {
		t.Fatalf("docs = %d", len(docs))
	}
	tab, err := eng.Catalog().Table("adl")
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 200 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	if len(tab.Columns) != len(Columns()) {
		t.Fatalf("columns = %v", tab.Columns)
	}
	// Staged column contents must equal the returned documents' fields.
	res, err := eng.Query(`SELECT "EVENT" FROM "adl" LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if !variant.Equal(res.Rows[0][0], docs[0].Field("EVENT")) {
		t.Errorf("staged EVENT %v != doc %v", res.Rows[0][0], docs[0].Field("EVENT"))
	}
}

func TestLoadDuplicateTableFails(t *testing.T) {
	eng := engine.New()
	if _, err := Load(eng, "adl", 1, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(eng, "adl", 1, 10); err == nil {
		t.Error("second load into same table should fail")
	}
}

func TestKinematicDomains(t *testing.T) {
	docs := Events(9, 1000)
	var jets, muons int
	for _, d := range docs {
		for _, j := range d.Field("Jet").AsArray() {
			jets++
			pt := j.Field("pt").AsFloat()
			if pt < 15 {
				t.Fatalf("jet pt %v below threshold", pt)
			}
			btag := j.Field("btag").AsFloat()
			if btag < 0 || btag > 1 {
				t.Fatalf("btag %v outside [0,1]", btag)
			}
			if j.Field("mass").AsFloat() < 4 {
				t.Fatalf("jet mass %v below floor", j.Field("mass"))
			}
		}
		for _, m := range d.Field("Muon").AsArray() {
			muons++
			phi := m.Field("phi").AsFloat()
			if phi < -3.15 || phi > 3.15 {
				t.Fatalf("phi %v outside [-pi,pi]", phi)
			}
			if m.Field("mass").AsFloat() != 0.10566 {
				t.Fatalf("muon mass %v", m.Field("mass"))
			}
		}
	}
	// Mean multiplicities near the configured Poisson means.
	if f := float64(jets) / 1000; f < 2.0 || f > 3.2 {
		t.Errorf("mean jets/event = %.2f, want ~2.6", f)
	}
	if f := float64(muons) / 1000; f < 0.5 || f > 1.1 {
		t.Errorf("mean muons/event = %.2f, want ~0.8", f)
	}
}

func TestEventIDsUniqueAndOrdered(t *testing.T) {
	docs := Events(1, 100)
	for i, d := range docs {
		if d.Field("EVENT").AsInt() != int64(100000+i) {
			t.Fatalf("event %d id = %v", i, d.Field("EVENT"))
		}
	}
}
