// Package hepdata generates a deterministic synthetic stand-in for the IRIS
// HEP ADL benchmark dataset (§II-C of the paper): collision events with
// event metadata (EVENT, HLT, MET) and nested particle arrays (Muon,
// Electron, Jet, Photon, Tau). The paper's dataset stems from the 2012 CMS
// open data (54 M events at SF1 ≈ 17 GiB); this generator reproduces its
// structural properties — multiplicities, empty arrays, kinematic ranges,
// charge balance — which are what the ADL queries exercise. Scale factors
// are re-based to laptop scale: SF1 ≡ 54 000 events by default.
package hepdata

import (
	"math"
	"math/rand"

	"jsonpark/internal/engine"
	"jsonpark/internal/runtime"
	"jsonpark/internal/variant"
)

// EventsPerSF is the number of events at scale factor 1 (the paper's 54 M
// divided by 1000).
const EventsPerSF = 54000

// EventsForScaleFactor converts a (possibly fractional) ADL scale factor to
// an event count, with a floor of 8 events.
func EventsForScaleFactor(sf float64) int {
	n := int(math.Round(sf * EventsPerSF))
	if n < 8 {
		n = 8
	}
	return n
}

// Columns is the multi-column staging schema used for the ADL evaluations
// (§III-C): one column per top-level entry.
func Columns() []string {
	return []string{"EVENT", "HLT", "MET", "Muon", "Electron", "Jet", "Photon", "Tau"}
}

// Generator produces events deterministically from a seed.
type Generator struct {
	rng *rand.Rand
}

// NewGenerator returns a seeded generator.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// poisson draws a small Poisson-distributed multiplicity via Knuth's method.
func (g *Generator) poisson(mean float64) int {
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= g.rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 24 {
			return 24
		}
	}
}

// falling draws a falling-spectrum transverse momentum in GeV.
func (g *Generator) falling(base, scale float64) float64 {
	return base + g.rng.ExpFloat64()*scale
}

func (g *Generator) eta() float64 { return g.rng.NormFloat64() * 1.6 }

func (g *Generator) phi() float64 { return (g.rng.Float64()*2 - 1) * math.Pi }

func (g *Generator) charge() int64 {
	if g.rng.Intn(2) == 0 {
		return 1
	}
	return -1
}

func round3(f float64) float64 { return math.Round(f*1000) / 1000 }

func (g *Generator) lepton(mass float64) variant.Value {
	o := variant.NewObject()
	o.Set("pt", variant.Float(round3(g.falling(3, 18))))
	o.Set("eta", variant.Float(round3(g.eta())))
	o.Set("phi", variant.Float(round3(g.phi())))
	o.Set("mass", variant.Float(mass))
	o.Set("charge", variant.Int(g.charge()))
	o.Set("iso", variant.Float(round3(g.rng.Float64()*3)))
	return variant.ObjectValue(o)
}

func (g *Generator) jet() variant.Value {
	o := variant.NewObject()
	o.Set("pt", variant.Float(round3(g.falling(15, 28))))
	o.Set("eta", variant.Float(round3(g.eta())))
	o.Set("phi", variant.Float(round3(g.phi())))
	o.Set("mass", variant.Float(round3(4+g.rng.ExpFloat64()*7)))
	o.Set("btag", variant.Float(round3(g.rng.Float64())))
	return variant.ObjectValue(o)
}

func (g *Generator) photon() variant.Value {
	o := variant.NewObject()
	o.Set("pt", variant.Float(round3(g.falling(2, 12))))
	o.Set("eta", variant.Float(round3(g.eta())))
	o.Set("phi", variant.Float(round3(g.phi())))
	return variant.ObjectValue(o)
}

func (g *Generator) particles(mean float64, mk func() variant.Value) variant.Value {
	n := g.poisson(mean)
	arr := make([]variant.Value, n)
	for i := range arr {
		arr[i] = mk()
	}
	return variant.ArrayOf(arr)
}

// Event generates one event with the given id.
func (g *Generator) Event(id int64) variant.Value {
	hlt := variant.NewObject()
	hlt.Set("IsoMu24", variant.Bool(g.rng.Float64() < 0.3))
	hlt.Set("IsoMu17_eta2p1", variant.Bool(g.rng.Float64() < 0.2))

	met := variant.NewObject()
	met.Set("pt", variant.Float(round3(g.falling(2, 22))))
	met.Set("phi", variant.Float(round3(g.phi())))
	met.Set("sumet", variant.Float(round3(g.falling(80, 220))))

	e := variant.NewObject()
	e.Set("EVENT", variant.Int(id))
	e.Set("HLT", variant.ObjectValue(hlt))
	e.Set("MET", variant.ObjectValue(met))
	e.Set("Muon", g.particles(0.8, func() variant.Value { return g.lepton(0.10566) }))
	e.Set("Electron", g.particles(0.7, func() variant.Value { return g.lepton(0.000511) }))
	e.Set("Jet", g.particles(2.6, g.jet))
	e.Set("Photon", g.particles(0.9, g.photon))
	e.Set("Tau", g.particles(0.3, func() variant.Value { return g.lepton(1.77686) }))
	return variant.ObjectValue(e)
}

// Events generates n deterministic events.
func Events(seed int64, n int) []variant.Value {
	g := NewGenerator(seed)
	out := make([]variant.Value, n)
	for i := range out {
		out[i] = g.Event(int64(100000 + i))
	}
	return out
}

// Load creates the ADL table in an engine and stages n events with the
// multi-column schema. It returns the generated events for reuse by the
// interpreted baselines, ensuring every system sees identical data.
func Load(eng *engine.Engine, table string, seed int64, n int) ([]variant.Value, error) {
	t, err := eng.Catalog().CreateTable(table, Columns())
	if err != nil {
		return nil, err
	}
	docs := Events(seed, n)
	for _, d := range docs {
		if err := t.AppendObject(d); err != nil {
			return nil, err
		}
	}
	t.Seal()
	return docs, nil
}

// LoadRuntime stages events into an interpreted engine under the same
// collection name.
func LoadRuntime(rt *runtime.Engine, collection string, docs []variant.Value) {
	rt.LoadCollection(collection, docs)
}
