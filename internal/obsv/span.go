// Package obsv is the in-process observability substrate: a hierarchical
// span tracer with a ring buffer of recent query traces, and a
// counter/gauge/histogram metrics registry with Prometheus-style text
// exposition. Every layer of the query pipeline (jsoniq, iterplan, core,
// snowpark, sqlparse/engine, storage accounting) reports into it, so the
// paper's §V breakdown — where time and bytes go between translation, SQL
// compilation and execution — is observable on every query, not only in the
// benchmark harness. The package has no dependencies on the rest of the
// repository so any layer may import it.
package obsv

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed stage of a query's lifecycle. Spans form a tree: the
// root covers the whole query and children cover lowering stages
// (jsoniq.parse, core.translate, engine.optimize, ...). All methods are
// nil-safe so call sites can thread an optional *Span without guarding —
// a nil span makes every operation a no-op, keeping the untraced fast path
// allocation-free.
//
// A span tree is built and finished by a single goroutine (the one running
// the query); only the immutable SpanData snapshot taken at Trace.Finish is
// shared across goroutines.
type Span struct {
	name     string
	start    time.Time
	duration time.Duration
	attrs    []Attr
	children []*Span
	ended    bool
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Child starts a nested span. Returns nil when the receiver is nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.children = append(s.children, c)
	return c
}

// End stops the span's clock. Calling End twice keeps the first duration.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.duration = time.Since(s.start)
}

// SetAttr annotates the span; values are rendered with %v.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: fmt.Sprint(value)})
}

// Timed runs fn inside a child span, for stages that are a single call.
func (s *Span) Timed(name string, fn func()) {
	c := s.Child(name)
	fn()
	c.End()
}

// SpanData is the immutable snapshot of a finished span.
type SpanData struct {
	Name       string     `json:"name"`
	DurationUS int64      `json:"duration_us"`
	Attrs      []Attr     `json:"attrs,omitempty"`
	Children   []SpanData `json:"children,omitempty"`
}

// Duration returns the span's wall time.
func (d SpanData) Duration() time.Duration { return time.Duration(d.DurationUS) * time.Microsecond }

func (s *Span) snapshot() SpanData {
	d := s.duration
	if !s.ended {
		d = time.Since(s.start)
	}
	out := SpanData{
		Name:       s.name,
		DurationUS: d.Microseconds(),
		Attrs:      append([]Attr(nil), s.attrs...),
	}
	for _, c := range s.children {
		out.Children = append(out.Children, c.snapshot())
	}
	return out
}

// Walk visits the span and every descendant pre-order.
func (d SpanData) Walk(fn func(depth int, sd SpanData)) { d.walk(0, fn) }

func (d SpanData) walk(depth int, fn func(int, SpanData)) {
	fn(depth, d)
	for _, c := range d.Children {
		c.walk(depth+1, fn)
	}
}

// Render formats the span tree as an indented text block.
func (d SpanData) Render() string {
	var b strings.Builder
	d.Walk(func(depth int, sd SpanData) {
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "%s %s", sd.Name, time.Duration(sd.DurationUS)*time.Microsecond)
		for _, a := range sd.Attrs {
			fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
		}
		b.WriteByte('\n')
	})
	return b.String()
}

// TraceData is the immutable record of one finished query trace, as stored
// in the tracer's ring buffer and served by /debug/queries.
type TraceData struct {
	ID       string            `json:"trace_id"`
	Start    time.Time         `json:"start"`
	DurUS    int64             `json:"duration_us"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Root     SpanData          `json:"spans"`
	Errored  bool              `json:"errored,omitempty"`
	ErrorMsg string            `json:"error,omitempty"`
}

// Duration returns the trace's total wall time.
func (t *TraceData) Duration() time.Duration { return time.Duration(t.DurUS) * time.Microsecond }

// Trace is one in-flight query trace. Obtain via Tracer.Start, attach spans
// under Root, then Finish to snapshot it into the ring buffer.
type Trace struct {
	ID     string
	Root   *Span
	start  time.Time
	attrs  map[string]string
	err    error
	tracer *Tracer
}

// SetAttr annotates the whole trace (query text, SQL, strategy, ...).
func (t *Trace) SetAttr(key, value string) {
	if t == nil {
		return
	}
	t.attrs[key] = value
}

// SetError marks the trace failed.
func (t *Trace) SetError(err error) {
	if t == nil || err == nil {
		return
	}
	t.err = err
}

// Finish ends the root span, snapshots the trace into the tracer's ring
// buffer and returns the immutable record. Safe to call once per trace.
func (t *Trace) Finish() *TraceData {
	if t == nil {
		return nil
	}
	t.Root.End()
	td := &TraceData{
		ID:    t.ID,
		Start: t.start,
		DurUS: t.Root.duration.Microseconds(),
		Attrs: t.attrs,
		Root:  t.Root.snapshot(),
	}
	if t.err != nil {
		td.Errored = true
		td.ErrorMsg = t.err.Error()
	}
	if t.tracer != nil {
		t.tracer.record(td)
	}
	return td
}

// Tracer issues trace IDs and keeps a bounded ring of recent finished
// traces. Safe for concurrent use.
type Tracer struct {
	mu     sync.Mutex
	ring   []*TraceData
	next   int
	filled bool
	seq    atomic.Uint64
	epoch  int64

	expMu    sync.Mutex
	exporter func(*TraceData)
}

// DefaultRingSize bounds the recent-trace buffer of NewTracer(0).
const DefaultRingSize = 128

// NewTracer returns a tracer retaining the last capacity finished traces
// (DefaultRingSize when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultRingSize
	}
	return &Tracer{ring: make([]*TraceData, capacity), epoch: time.Now().UnixNano()}
}

// Start begins a new trace whose root span carries the given name.
func (t *Tracer) Start(name string) *Trace {
	now := time.Now()
	id := fmt.Sprintf("%08x-%06x", uint32(t.epoch), t.seq.Add(1)&0xffffff)
	return &Trace{
		ID:     id,
		Root:   &Span{name: name, start: now},
		start:  now,
		attrs:  make(map[string]string),
		tracer: t,
	}
}

func (t *Tracer) record(td *TraceData) {
	t.mu.Lock()
	t.ring[t.next] = td
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.filled = true
	}
	t.mu.Unlock()
	t.expMu.Lock()
	exp := t.exporter
	if exp != nil {
		// Run under expMu so concurrent Finish calls serialize their writes
		// to the sink (one JSON line per trace, never interleaved).
		exp(td)
	}
	t.expMu.Unlock()
}

// SetExporter installs a callback invoked once per finished trace, after it
// is recorded in the ring. Used by the -trace-out JSONL exporter; nil
// removes the hook. Calls are serialized, so the callback may write to a
// shared sink without its own locking.
func (t *Tracer) SetExporter(fn func(*TraceData)) {
	t.expMu.Lock()
	t.exporter = fn
	t.expMu.Unlock()
}

// Recent returns up to n finished traces, newest first (all retained traces
// when n <= 0).
func (t *Tracer) Recent(n int) []*TraceData {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []*TraceData
	for _, td := range t.ring {
		if td != nil {
			out = append(out, td)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start.Equal(out[j].Start) {
			return out[i].ID > out[j].ID
		}
		return out[i].Start.After(out[j].Start)
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
