package obsv

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSpanIsNoOp(t *testing.T) {
	var s *Span
	c := s.Child("x")
	if c != nil {
		t.Fatalf("nil span Child = %v", c)
	}
	c.End()
	c.SetAttr("k", 1)
	ran := false
	c.Timed("y", func() { ran = true })
	if !ran {
		t.Error("Timed must run fn even on a nil span")
	}
}

func TestSpanTreeSnapshot(t *testing.T) {
	tr := NewTracer(4).Start("query")
	tr.Root.SetAttr("q", "src")
	a := tr.Root.Child("parse")
	a.SetAttr("tokens", 12)
	a.End()
	b := tr.Root.Child("execute")
	b.Child("scan").End()
	b.End()
	td := tr.Finish()

	if td.Root.Name != "query" || len(td.Root.Children) != 2 {
		t.Fatalf("root = %+v", td.Root)
	}
	var names []string
	td.Root.Walk(func(depth int, sd SpanData) {
		names = append(names, fmt.Sprintf("%d:%s", depth, sd.Name))
	})
	want := []string{"0:query", "1:parse", "1:execute", "2:scan"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Errorf("walk order = %v, want %v", names, want)
	}
	if td.Root.Children[0].Attrs[0] != (Attr{Key: "tokens", Value: "12"}) {
		t.Errorf("attrs = %v", td.Root.Children[0].Attrs)
	}
	out := td.Root.Render()
	if !strings.Contains(out, "parse") || !strings.Contains(out, "  execute") {
		t.Errorf("render = %q", out)
	}
}

func TestSpanEndIsIdempotent(t *testing.T) {
	s := &Span{name: "x", start: time.Now().Add(-time.Millisecond)}
	s.End()
	d := s.duration
	time.Sleep(time.Millisecond)
	s.End()
	if s.duration != d {
		t.Errorf("second End changed duration: %v vs %v", s.duration, d)
	}
}

func TestTracerRingEvictsOldest(t *testing.T) {
	tc := NewTracer(3)
	var ids []string
	for i := 0; i < 5; i++ {
		tr := tc.Start("q")
		tr.SetAttr("i", fmt.Sprint(i))
		ids = append(ids, tr.ID)
		tr.Finish()
	}
	got := tc.Recent(0)
	if len(got) != 3 {
		t.Fatalf("retained %d traces, want 3", len(got))
	}
	// Newest first; the two oldest evicted.
	for i, td := range got {
		want := ids[4-i]
		if td.ID != want {
			t.Errorf("recent[%d] = %s, want %s", i, td.ID, want)
		}
	}
	if limited := tc.Recent(2); len(limited) != 2 {
		t.Errorf("Recent(2) returned %d", len(limited))
	}
}

func TestTraceError(t *testing.T) {
	tc := NewTracer(2)
	tr := tc.Start("q")
	tr.SetError(fmt.Errorf("boom"))
	td := tr.Finish()
	if !td.Errored || td.ErrorMsg != "boom" {
		t.Errorf("trace = %+v", td)
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help c")
	c.Inc()
	c.Add(2.5)
	c.Add(-5) // ignored: counters are monotonic
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %v", got)
	}
	g := r.Gauge("g", "help g")
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Errorf("gauge = %v", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "help", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 106.5 {
		t.Fatalf("count=%d sum=%v", h.Count(), h.Sum())
	}
	var sb strings.Builder
	r.Expose(&sb)
	out := sb.String()
	for _, want := range []string{
		`h_seconds_bucket{le="1"} 2`, // Observe(bound) falls into that bucket
		`h_seconds_bucket{le="10"} 3`,
		`h_seconds_bucket{le="+Inf"} 4`,
		`h_seconds_sum 106.5`,
		`h_seconds_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestVecLabels(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("q_total", "help", "status")
	cv.With("ok").Add(2)
	cv.With("error").Inc()
	cv.With("ok").Inc()
	hv := r.HistogramVec("stage_seconds", "help", []float64{1}, "stage")
	hv.With("parse").Observe(0.5)
	var sb strings.Builder
	r.Expose(&sb)
	out := sb.String()
	for _, want := range []string{
		`q_total{status="ok"} 3`,
		`q_total{status="error"} 1`,
		`stage_seconds_bucket{stage="parse",le="1"} 1`,
		`stage_seconds_count{stage="parse"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration must panic")
		}
	}()
	r.Counter("dup", "")
}

// TestExpositionFormat checks the output line by line against the Prometheus
// text format: every non-comment line is `name{labels} value`, every metric
// is preceded by matching # HELP and # TYPE comments.
func TestExpositionFormat(t *testing.T) {
	o := NewObserver()
	tr := o.Tracer.Start("query")
	tr.Root.Child("jsoniq.parse").End()
	td := tr.Finish()
	o.ObserveQuery(QueryObservation{Trace: td, BytesScanned: 4096, RowsReturned: 7, ParallelBreakers: 2})
	o.ObserveQuery(QueryObservation{Errored: true})

	var sb strings.Builder
	o.Registry.Expose(&sb)
	out := sb.String()

	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("bad TYPE line %q", line)
			}
			typed[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line %q has no value", line)
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			t.Fatalf("sample %q: bad value: %v", line, err)
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if trimmed, ok := strings.CutSuffix(name, suffix); ok && typed[trimmed] {
				base = trimmed
				break
			}
		}
		if !typed[base] {
			t.Errorf("sample %q lacks a preceding # TYPE", line)
		}
	}

	for _, want := range []string{
		`jsonpark_queries_total{status="ok"} 1`,
		`jsonpark_queries_total{status="error"} 1`,
		`jsonpark_bytes_scanned_total 4096`,
		`jsonpark_rows_returned_total 7`,
		`jsonpark_parallel_breakers_total 2`,
		`jsonpark_query_stage_seconds_count{stage="jsoniq.parse"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestConcurrentObservations(t *testing.T) {
	o := NewObserver()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr := o.Tracer.Start("query")
				tr.Root.Child("stage").End()
				td := tr.Finish()
				o.ObserveQuery(QueryObservation{Trace: td, BytesScanned: 1, RowsReturned: 1})
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			o.Registry.Expose(&sb)
			o.Tracer.Recent(10)
		}
	}()
	wg.Wait()
	<-done
	var sb strings.Builder
	o.Registry.Expose(&sb)
	if !strings.Contains(sb.String(), `jsonpark_queries_total{status="ok"} 1600`) {
		t.Errorf("lost observations:\n%s", sb.String())
	}
}
