package obsv

import "time"

// Observer bundles the tracer and registry one warehouse (or server) shares
// across queries, pre-registering the standard query-lifecycle metrics:
// query counts by status, per-stage latency histograms (fed from the span
// tree, so the §V translation/compile/execution breakdown is a /metrics
// scrape away), and cumulative scan accounting.
type Observer struct {
	Tracer   *Tracer
	Registry *Registry
	// Slow retains full captures (span tree + EXPLAIN ANALYZE) of queries
	// beyond the configured slow-query threshold, for GET /debug/slow.
	Slow *SlowRing

	queriesTotal     *CounterVec
	stageSeconds     *HistogramVec
	phaseSeconds     *HistogramVec
	statusSeconds    *HistogramVec
	querySeconds     *Histogram
	bytesScanned     *Counter
	rowsReturned     *Counter
	partitionsTotal  *Counter
	partitionsPruned *Counter
	parallelBreakers *Counter
	spillBytes       *Counter
	typedCols        *Counter
	fallbackCols     *Counter
	diskReads        *Counter
	queriesCancelled *Counter
	runtime          *RuntimeSampler
}

// QueryObservation is one finished query's measurements, reported by the
// warehouse façade after the trace ends.
type QueryObservation struct {
	Trace            *TraceData
	Errored          bool
	BytesScanned     int64
	RowsReturned     int64
	PartitionsTotal  int64
	PartitionsPruned int64
	// ParallelBreakers counts the pipeline breakers (aggregates, join
	// builds, sorts) the plan executed with parallel phases.
	ParallelBreakers int64
	// SpillBytes is the bytes the memory-governed breakers wrote to
	// temp-file runs under WithMemLimit.
	SpillBytes int64
	// TypedCols counts column reads served by typed kernels over shredded
	// chunk views; FallbackCols counts typed columns the plan materialized
	// back to variants; DiskReads counts micro-partitions cold-loaded from
	// a persistent warehouse directory.
	TypedCols    int64
	FallbackCols int64
	DiskReads    int64
	// Cancelled marks a query aborted by context cancellation or deadline;
	// such queries count under status="cancelled" rather than "error".
	Cancelled bool
}

// NewObserver builds an observer with the standard metric set registered.
func NewObserver() *Observer {
	r := NewRegistry()
	return &Observer{
		Tracer:   NewTracer(0),
		Registry: r,
		Slow:     NewSlowRing(0),
		queriesTotal: r.CounterVec("jsonpark_queries_total",
			"Queries processed, by final status.", "status"),
		stageSeconds: r.HistogramVec("jsonpark_query_stage_seconds",
			"Per-stage latency of the query lifecycle, from span durations.", nil, "stage"),
		phaseSeconds: r.HistogramVec("jsonpark_query_phase_seconds",
			"Latency rolled up into the four coarse phases (parse, plan, sqlgen, exec).", nil, "phase"),
		statusSeconds: r.HistogramVec("jsonpark_query_status_seconds",
			"End-to-end query latency, by final status.", nil, "status"),
		querySeconds: r.Histogram("jsonpark_query_seconds",
			"End-to-end query latency (translate + compile + execute).", nil),
		bytesScanned: r.Counter("jsonpark_bytes_scanned_total",
			"Cumulative bytes scanned across all queries."),
		rowsReturned: r.Counter("jsonpark_rows_returned_total",
			"Cumulative result rows returned across all queries."),
		partitionsTotal: r.Counter("jsonpark_partitions_considered_total",
			"Cumulative micro-partitions considered by scans."),
		partitionsPruned: r.Counter("jsonpark_partitions_pruned_total",
			"Cumulative micro-partitions pruned via zone maps."),
		parallelBreakers: r.Counter("jsonpark_parallel_breakers_total",
			"Cumulative pipeline breakers (aggregates, join builds, sorts) executed with parallel phases."),
		spillBytes: r.Counter("jsonpark_spill_bytes_total",
			"Cumulative bytes written to spill runs by memory-governed pipeline breakers."),
		typedCols: r.Counter("jsonpark_typed_columns_total",
			"Cumulative column reads served by typed kernels over shredded chunks."),
		fallbackCols: r.Counter("jsonpark_fallback_columns_total",
			"Cumulative typed columns materialized back to variants by expressions."),
		diskReads: r.Counter("jsonpark_disk_partition_reads_total",
			"Cumulative micro-partitions cold-loaded from a persistent data directory."),
		queriesCancelled: r.Counter("jsonpark_queries_cancelled_total",
			"Queries aborted by context cancellation or deadline."),
		runtime: NewRuntimeSampler(r),
	}
}

// RegisterPlanCacheStats exposes the engine's prepared-plan cache counters
// as jsonpark_plan_cache_{hits,misses,evictions}_total and the current
// entry count as jsonpark_plan_cache_entries. stats must be safe for
// concurrent use; call at most once per observer.
func (o *Observer) RegisterPlanCacheStats(stats func() (hits, misses, evictions, entries int64)) {
	if o == nil {
		return
	}
	o.Registry.CounterFunc("jsonpark_plan_cache_hits_total",
		"Prepared-plan cache hits (compile phase skipped).", func() float64 {
			h, _, _, _ := stats()
			return float64(h)
		})
	o.Registry.CounterFunc("jsonpark_plan_cache_misses_total",
		"Prepared-plan cache misses (full compile).", func() float64 {
			_, m, _, _ := stats()
			return float64(m)
		})
	o.Registry.CounterFunc("jsonpark_plan_cache_evictions_total",
		"Prepared-plan cache entries evicted by the LRU bound.", func() float64 {
			_, _, e, _ := stats()
			return float64(e)
		})
	o.Registry.GaugeFunc("jsonpark_plan_cache_entries",
		"Prepared-plan cache resident entries.", func() float64 {
			_, _, _, n := stats()
			return float64(n)
		})
}

// RegisterResultCacheStats exposes the engine's partition-versioned result
// cache counters as jsonpark_result_cache_{hits,misses,evictions,
// invalidations}_total plus resident entries/bytes gauges. stats must be
// safe for concurrent use; call at most once per observer.
func (o *Observer) RegisterResultCacheStats(stats func() (hits, misses, evictions, invalidations, entries, bytes int64)) {
	if o == nil {
		return
	}
	o.Registry.CounterFunc("jsonpark_result_cache_hits_total",
		"Result cache hits (execution skipped).", func() float64 {
			h, _, _, _, _, _ := stats()
			return float64(h)
		})
	o.Registry.CounterFunc("jsonpark_result_cache_misses_total",
		"Result cache misses (query executed).", func() float64 {
			_, m, _, _, _, _ := stats()
			return float64(m)
		})
	o.Registry.CounterFunc("jsonpark_result_cache_evictions_total",
		"Result cache entries evicted by the LRU entry or byte bound.", func() float64 {
			_, _, e, _, _, _ := stats()
			return float64(e)
		})
	o.Registry.CounterFunc("jsonpark_result_cache_invalidations_total",
		"Result cache entries dropped by partition-set version advance (appends, DDL).", func() float64 {
			_, _, _, i, _, _ := stats()
			return float64(i)
		})
	o.Registry.GaugeFunc("jsonpark_result_cache_entries",
		"Result cache resident entries.", func() float64 {
			_, _, _, _, n, _ := stats()
			return float64(n)
		})
	o.Registry.GaugeFunc("jsonpark_result_cache_bytes",
		"Result cache resident row bytes.", func() float64 {
			_, _, _, _, _, b := stats()
			return float64(b)
		})
}

// GovernorStats is the subset of a governor snapshot the metric set samples.
type GovernorStats struct {
	MemUsedBytes  int64
	MemLimitBytes int64
	Active        int64
	Waiting       int64
	AdmittedTotal int64
	ShedTotal     int64
}

// RegisterGovernorStats exposes the resource governor's admission and
// shared-pool state. snap must be safe for concurrent use; call at most
// once per observer.
func (o *Observer) RegisterGovernorStats(snap func() GovernorStats) {
	if o == nil {
		return
	}
	o.Registry.CounterFunc("jsonpark_admission_admitted_total",
		"Queries admitted by the resource governor.", func() float64 {
			return float64(snap().AdmittedTotal)
		})
	o.Registry.CounterFunc("jsonpark_admission_shed_total",
		"Queries shed at admission (HTTP 429).", func() float64 {
			return float64(snap().ShedTotal)
		})
	o.Registry.GaugeFunc("jsonpark_admission_active",
		"Queries currently admitted and running.", func() float64 {
			return float64(snap().Active)
		})
	o.Registry.GaugeFunc("jsonpark_admission_waiting",
		"Queries currently queued at admission.", func() float64 {
			return float64(snap().Waiting)
		})
	o.Registry.GaugeFunc("jsonpark_global_mem_used_bytes",
		"Bytes currently drawn from the governor's shared memory pool.", func() float64 {
			return float64(snap().MemUsedBytes)
		})
	o.Registry.GaugeFunc("jsonpark_global_mem_limit_bytes",
		"Configured size of the governor's shared memory pool.", func() float64 {
			return float64(snap().MemLimitBytes)
		})
}

// CountShed folds one admission-shed request into the status counters.
// Shed requests never reach ObserveQuery (they have no trace or result), so
// the server reports them here.
func (o *Observer) CountShed() {
	if o == nil {
		return
	}
	o.queriesTotal.With("shed").Inc()
}

// SampleRuntime refreshes the runtime gauge set (goroutines, heap, GC);
// the /metrics handler calls it immediately before Registry.Expose.
func (o *Observer) SampleRuntime() {
	if o == nil {
		return
	}
	o.runtime.Sample()
}

// ObserveQuery folds one finished query into the registry: status count,
// end-to-end latency, per-span stage histograms and scan totals.
func (o *Observer) ObserveQuery(q QueryObservation) {
	if o == nil {
		return
	}
	status := "ok"
	switch {
	case q.Cancelled:
		status = "cancelled"
		o.queriesCancelled.Inc()
	case q.Errored:
		status = "error"
	}
	o.queriesTotal.With(status).Inc()
	o.spillBytes.Add(float64(q.SpillBytes))
	o.bytesScanned.Add(float64(q.BytesScanned))
	o.rowsReturned.Add(float64(q.RowsReturned))
	o.partitionsTotal.Add(float64(q.PartitionsTotal))
	o.partitionsPruned.Add(float64(q.PartitionsPruned))
	o.parallelBreakers.Add(float64(q.ParallelBreakers))
	o.typedCols.Add(float64(q.TypedCols))
	o.fallbackCols.Add(float64(q.FallbackCols))
	o.diskReads.Add(float64(q.DiskReads))
	if q.Trace == nil {
		return
	}
	o.querySeconds.Observe(q.Trace.Duration().Seconds())
	o.statusSeconds.With(status).Observe(q.Trace.Duration().Seconds())
	q.Trace.Root.Walk(func(depth int, sd SpanData) {
		if depth == 0 {
			return // the root duplicates jsonpark_query_seconds
		}
		o.stageSeconds.With(sd.Name).Observe(
			(time.Duration(sd.DurationUS) * time.Microsecond).Seconds())
	})
	ph := Phases(q.Trace)
	o.phaseSeconds.With("parse").Observe(ph.Parse.Seconds())
	o.phaseSeconds.With("plan").Observe(ph.Plan.Seconds())
	o.phaseSeconds.With("sqlgen").Observe(ph.SQLGen.Seconds())
	o.phaseSeconds.With("exec").Observe(ph.Exec.Seconds())
}
