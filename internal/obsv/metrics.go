package obsv

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics and renders them in the Prometheus text
// exposition format (version 0.0.4). All operations are safe for concurrent
// use; Expose takes a consistent point-in-time snapshot per metric.
type Registry struct {
	mu      sync.Mutex
	order   []string
	metrics map[string]exposable
}

type exposable interface {
	expose(w io.Writer)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]exposable)}
}

func (r *Registry) register(name string, m exposable) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.metrics[name]; dup {
		panic(fmt.Sprintf("obsv: metric %q registered twice", name))
	}
	r.metrics[name] = m
	r.order = append(r.order, name)
}

// Expose writes every registered metric in Prometheus text format.
func (r *Registry) Expose(w io.Writer) {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	metrics := make([]exposable, len(names))
	for i, n := range names {
		metrics[i] = r.metrics[n]
	}
	r.mu.Unlock()
	for _, m := range metrics {
		m.expose(w)
	}
}

func writeHeader(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	parts := make([]string, len(names))
	for i := range names {
		parts[i] = fmt.Sprintf("%s=%q", names[i], values[i])
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// --- counter ----------------------------------------------------------------

// Counter is a monotonically increasing float64.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; negative deltas are ignored.
func (c *Counter) Add(delta float64) {
	if c == nil || delta < 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current total.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

type namedCounter struct {
	name, help string
	c          Counter
}

func (n *namedCounter) expose(w io.Writer) {
	writeHeader(w, n.name, n.help, "counter")
	fmt.Fprintf(w, "%s %s\n", n.name, formatValue(n.c.Value()))
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	n := &namedCounter{name: name, help: help}
	r.register(name, n)
	return &n.c
}

// --- gauge ------------------------------------------------------------------

// Gauge is a float64 that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the current value by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

type namedGauge struct {
	name, help string
	g          Gauge
}

func (n *namedGauge) expose(w io.Writer) {
	writeHeader(w, n.name, n.help, "gauge")
	fmt.Fprintf(w, "%s %s\n", n.name, formatValue(n.g.Value()))
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	n := &namedGauge{name: name, help: help}
	r.register(name, n)
	return &n.g
}

// --- callback metrics -------------------------------------------------------

// funcMetric samples a callback at exposition time — for values another
// subsystem already tracks (cache counters, pool occupancy) where mirroring
// every change into the registry would duplicate state.
type funcMetric struct {
	name, help, typ string
	fn              func() float64
}

func (n *funcMetric) expose(w io.Writer) {
	writeHeader(w, n.name, n.help, n.typ)
	fmt.Fprintf(w, "%s %s\n", n.name, formatValue(n.fn()))
}

// CounterFunc registers a counter whose value is read from fn at each
// exposition. fn must be monotonic and safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, &funcMetric{name: name, help: help, typ: "counter", fn: fn})
}

// GaugeFunc registers a gauge whose value is read from fn at each
// exposition. fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, &funcMetric{name: name, help: help, typ: "gauge", fn: fn})
}

// --- histogram --------------------------------------------------------------

// Histogram observes float64 samples into cumulative buckets.
type Histogram struct {
	mu      sync.Mutex
	buckets []float64 // upper bounds, ascending; +Inf implicit
	counts  []uint64  // len(buckets)+1, non-cumulative
	sum     float64
	count   uint64
}

// DefaultDurationBuckets spans 10µs..10s in decade-and-half steps, covering
// both sub-millisecond lowering stages and multi-second executions.
var DefaultDurationBuckets = []float64{
	1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1, 5, 10,
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.buckets, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

func (h *Histogram) exposeAs(w io.Writer, name string, labelNames, labelValues []string) {
	h.mu.Lock()
	buckets := append([]float64(nil), h.buckets...)
	counts := append([]uint64(nil), h.counts...)
	sum, count := h.sum, h.count
	h.mu.Unlock()

	cum := uint64(0)
	for i, ub := range buckets {
		cum += counts[i]
		lns := append(append([]string(nil), labelNames...), "le")
		lvs := append(append([]string(nil), labelValues...), strconv.FormatFloat(ub, 'g', -1, 64))
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, formatLabels(lns, lvs), cum)
	}
	cum += counts[len(buckets)]
	lns := append(append([]string(nil), labelNames...), "le")
	lvs := append(append([]string(nil), labelValues...), "+Inf")
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, formatLabels(lns, lvs), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, formatLabels(labelNames, labelValues), formatValue(sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, formatLabels(labelNames, labelValues), count)
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefaultDurationBuckets
	}
	bs := append([]float64(nil), buckets...)
	sort.Float64s(bs)
	return &Histogram{buckets: bs, counts: make([]uint64, len(bs)+1)}
}

type namedHistogram struct {
	name, help string
	h          *Histogram
}

func (n *namedHistogram) expose(w io.Writer) {
	writeHeader(w, n.name, n.help, "histogram")
	n.h.exposeAs(w, n.name, nil, nil)
}

// Histogram registers a histogram with the given upper bounds
// (DefaultDurationBuckets when nil).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	n := &namedHistogram{name: name, help: help, h: newHistogram(buckets)}
	r.register(name, n)
	return n.h
}

// --- labeled vectors --------------------------------------------------------

// CounterVec is a family of counters keyed by label values.
type CounterVec struct {
	name, help string
	labels     []string
	mu         sync.Mutex
	children   map[string]*Counter
	order      []string
}

// With returns (creating on first use) the counter for the label values.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obsv: %s expects %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[key]
	if !ok {
		c = &Counter{}
		v.children[key] = c
		v.order = append(v.order, key)
	}
	return c
}

func (v *CounterVec) expose(w io.Writer) {
	writeHeader(w, v.name, v.help, "counter")
	v.mu.Lock()
	keys := append([]string(nil), v.order...)
	children := make([]*Counter, len(keys))
	for i, k := range keys {
		children[i] = v.children[k]
	}
	v.mu.Unlock()
	for i, k := range keys {
		fmt.Fprintf(w, "%s%s %s\n", v.name,
			formatLabels(v.labels, strings.Split(k, "\x00")), formatValue(children[i].Value()))
	}
}

// CounterVec registers a counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{name: name, help: help, labels: labels, children: make(map[string]*Counter)}
	r.register(name, v)
	return v
}

// HistogramVec is a family of histograms keyed by label values.
type HistogramVec struct {
	name, help string
	labels     []string
	buckets    []float64
	mu         sync.Mutex
	children   map[string]*Histogram
	order      []string
}

// With returns (creating on first use) the histogram for the label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obsv: %s expects %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.children[key]
	if !ok {
		h = newHistogram(v.buckets)
		v.children[key] = h
		v.order = append(v.order, key)
	}
	return h
}

func (v *HistogramVec) expose(w io.Writer) {
	writeHeader(w, v.name, v.help, "histogram")
	v.mu.Lock()
	keys := append([]string(nil), v.order...)
	children := make([]*Histogram, len(keys))
	for i, k := range keys {
		children[i] = v.children[k]
	}
	v.mu.Unlock()
	for i, k := range keys {
		children[i].exposeAs(w, v.name, v.labels, strings.Split(k, "\x00"))
	}
}

// HistogramVec registers a histogram family with the given label names and
// bucket bounds (DefaultDurationBuckets when nil).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	v := &HistogramVec{name: name, help: help, labels: labels, buckets: buckets,
		children: make(map[string]*Histogram)}
	r.register(name, v)
	return v
}
