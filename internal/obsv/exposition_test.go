package obsv

import (
	"strings"
	"testing"
	"time"
)

// A sample landing exactly on a bucket's upper bound must count inside that
// bucket (Prometheus `le` bounds are inclusive).
func TestHistogramBoundaryValueIsInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("boundary_seconds", "boundary semantics", []float64{0.1, 0.5, 1})
	h.Observe(0.5)
	var b strings.Builder
	r.Expose(&b)
	out := b.String()
	for line, want := range map[string]string{
		`boundary_seconds_bucket{le="0.1"} 0`: "below-boundary bucket",
		`boundary_seconds_bucket{le="0.5"} 1`: "inclusive boundary bucket",
		`boundary_seconds_bucket{le="1"} 1`:   "cumulative next bucket",
	} {
		if !strings.Contains(out, line) {
			t.Errorf("%s: missing %q in:\n%s", want, line, out)
		}
	}
}

// The implicit +Inf bucket must render with the full cumulative count, and
// a sample above every bound must land only there.
func TestHistogramInfBucketRendering(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("inf_seconds", "overflow semantics", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(99)
	var b strings.Builder
	r.Expose(&b)
	out := b.String()
	if !strings.Contains(out, `inf_seconds_bucket{le="+Inf"} 2`) {
		t.Errorf("+Inf bucket must carry total count:\n%s", out)
	}
	if !strings.Contains(out, `inf_seconds_bucket{le="2"} 1`) {
		t.Errorf("finite buckets must exclude the overflow sample:\n%s", out)
	}
	if !strings.Contains(out, "inf_seconds_count 2") {
		t.Errorf("missing _count:\n%s", out)
	}
}

// Label values carrying quotes, backslashes and newlines must be escaped so
// the exposition stays one metric per line and parseable.
func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("esc_total", "escaping", "q")
	v.With(`say "hi"\` + "\nbye").Inc()
	var b strings.Builder
	r.Expose(&b)
	out := b.String()
	want := `esc_total{q="say \"hi\"\\\nbye"} 1`
	if !strings.Contains(out, want) {
		t.Errorf("want escaped sample line %q in:\n%s", want, out)
	}
	// No raw newline may survive inside a sample line.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "esc_total{") && !strings.HasSuffix(line, "} 1") {
			t.Errorf("sample line split by unescaped newline: %q", line)
		}
	}
}

// HistogramVec samples on a shared boundary must stay per-label-value.
func TestHistogramVecBoundaryPerLabel(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("phase_seconds", "per-phase", []float64{0.25}, "phase")
	v.With("parse").Observe(0.25)
	v.With("exec").Observe(0.26)
	var b strings.Builder
	r.Expose(&b)
	out := b.String()
	if !strings.Contains(out, `phase_seconds_bucket{phase="parse",le="0.25"} 1`) {
		t.Errorf("boundary sample missing from its labeled bucket:\n%s", out)
	}
	if !strings.Contains(out, `phase_seconds_bucket{phase="exec",le="0.25"} 0`) {
		t.Errorf("above-boundary sample leaked into le bucket:\n%s", out)
	}
}

func TestPhasesRollup(t *testing.T) {
	td := &TraceData{
		Root: SpanData{
			Name: "query",
			Children: []SpanData{
				{Name: "jsoniq.lex", DurationUS: 10},
				{Name: "jsoniq.parse", DurationUS: 20},
				{Name: "iterplan.build", DurationUS: 30},
				{Name: "engine.optimize", DurationUS: 40, Children: []SpanData{
					{Name: "rule.pushdown", DurationUS: 39}, // nested: not re-counted
				}},
				{Name: "snowpark.render", DurationUS: 5},
				{Name: "engine.execute", DurationUS: 1000},
				{Name: "unknown.stage", DurationUS: 7}, // unmapped: ignored
			},
		},
	}
	ph := Phases(td)
	if got, want := ph.Parse, 30*time.Microsecond; got != want {
		t.Errorf("Parse = %v, want %v", got, want)
	}
	if got, want := ph.Plan, 70*time.Microsecond; got != want {
		t.Errorf("Plan = %v, want %v", got, want)
	}
	if got, want := ph.SQLGen, 5*time.Microsecond; got != want {
		t.Errorf("SQLGen = %v, want %v", got, want)
	}
	if got, want := ph.Exec, 1000*time.Microsecond; got != want {
		t.Errorf("Exec = %v, want %v", got, want)
	}
	if got := Phases(nil); got != (PhaseDurations{}) {
		t.Errorf("Phases(nil) = %+v, want zero", got)
	}
}

func TestSlowRingEvictionAndOrder(t *testing.T) {
	r := NewSlowRing(2)
	mk := func(id string) SlowQuery {
		return SlowQuery{Trace: &TraceData{ID: id}}
	}
	r.Record(mk("a"))
	r.Record(mk("b"))
	r.Record(mk("c")) // evicts a
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	got := r.Recent(0)
	if len(got) != 2 || got[0].Trace.ID != "c" || got[1].Trace.ID != "b" {
		t.Fatalf("Recent(0) order wrong: %+v", got)
	}
	if one := r.Recent(1); len(one) != 1 || one[0].Trace.ID != "c" {
		t.Fatalf("Recent(1) = %+v, want newest only", one)
	}
	r.Record(SlowQuery{}) // no trace: dropped
	if r.Len() != 2 {
		t.Fatalf("trace-less capture must be dropped")
	}
	var nilRing *SlowRing
	nilRing.Record(mk("x"))
	if nilRing.Recent(0) != nil || nilRing.Len() != 0 {
		t.Fatal("nil ring must be inert")
	}
}

func TestThreshold(t *testing.T) {
	if _, on := Threshold(-1); on {
		t.Error("negative must disable capture")
	}
	if d, on := Threshold(0); !on || d != 0 {
		t.Errorf("zero must capture everything, got %v %v", d, on)
	}
	if d, on := Threshold(250); !on || d != 250*time.Millisecond {
		t.Errorf("Threshold(250) = %v %v", d, on)
	}
}

func TestTracerExporterSeesFinishedTraces(t *testing.T) {
	tr := NewTracer(4)
	var got []string
	tr.SetExporter(func(td *TraceData) { got = append(got, td.ID) })
	q := tr.Start("query")
	q.Root.Child("jsoniq.parse").End()
	td := q.Finish()
	if len(got) != 1 || got[0] != td.ID {
		t.Fatalf("exporter saw %v, want [%s]", got, td.ID)
	}
	tr.SetExporter(nil)
	tr.Start("query").Finish()
	if len(got) != 1 {
		t.Fatal("cleared exporter must not fire")
	}
}

func TestRuntimeSamplerPublishesGauges(t *testing.T) {
	r := NewRegistry()
	s := NewRuntimeSampler(r)
	s.Sample()
	var b strings.Builder
	r.Expose(&b)
	out := b.String()
	for _, name := range []string{"jsonpark_goroutines", "jsonpark_heap_alloc_bytes", "jsonpark_gc_runs_total"} {
		if !strings.Contains(out, name+" ") {
			t.Errorf("missing %s sample:\n%s", name, out)
		}
	}
	if strings.Contains(out, "jsonpark_goroutines 0\n") {
		t.Error("goroutine gauge still zero after Sample")
	}
	var nilSampler *RuntimeSampler
	nilSampler.Sample()
}
