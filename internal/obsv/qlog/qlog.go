// Package qlog is the structured query log: one JSON line per event on an
// io.Writer sink, with leveled records and ordered, constant field keys.
// Every query the server (or a CLI run with -qlog) completes emits exactly
// one completion record carrying the trace ID, plan fingerprint, per-phase
// timings, row/byte counts, memory peak, spill bytes and final status, so
// the log alone reconstructs what each query cost after the process — and
// the in-memory trace ring — are gone.
//
// Field keys must be constant strings; the jsqlint `logkeys` analyzer
// enforces this so the log schema stays greppable and machine-parseable.
package qlog

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sync"
	"time"
)

// Level orders log records by severity.
type Level int

// Levels, lowest to highest severity.
const (
	LevelInfo Level = iota
	LevelWarn
	LevelError
)

// String renders the level as it appears in the "level" field.
func (l Level) String() string {
	switch l {
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "info"
	}
}

// Field is one key/value pair in a log record. Keys must be constant
// strings (enforced by jsqlint logkeys); values may be any JSON-encodable
// Go value.
type Field struct {
	Key   string
	Value any
}

// F builds a Field. The key must be a constant string.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Logger writes one JSON object per line to a sink. Safe for concurrent
// use; each Log call emits exactly one line. A nil *Logger discards
// everything, so call sites thread an optional logger without guarding.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	min Level
	now func() time.Time
}

// New returns a logger writing to w at LevelInfo and above.
func New(w io.Writer) *Logger {
	return &Logger{w: w, now: time.Now}
}

// SetMinLevel drops records below min. Nil-safe.
func (l *Logger) SetMinLevel(min Level) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.min = min
	l.mu.Unlock()
}

// Log emits one record: {"ts":...,"level":...,"event":...,<fields...>} on a
// single line, preserving field order. The event name and every field key
// must be constant strings. Nil-safe.
func (l *Logger) Log(level Level, event string, fields ...Field) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if level < l.min || l.w == nil {
		return
	}
	buf := make([]byte, 0, 256)
	buf = append(buf, `{"ts":`...)
	buf = appendJSON(buf, l.now().UTC().Format(time.RFC3339Nano))
	buf = append(buf, `,"level":`...)
	buf = appendJSON(buf, level.String())
	buf = append(buf, `,"event":`...)
	buf = appendJSON(buf, event)
	for _, f := range fields {
		buf = append(buf, ',')
		buf = appendJSON(buf, f.Key)
		buf = append(buf, ':')
		buf = appendJSON(buf, f.Value)
	}
	buf = append(buf, '}', '\n')
	l.w.Write(buf)
}

// appendJSON appends the JSON encoding of v, degrading to an encoded error
// string for unmarshalable values so a bad field never loses the record.
func appendJSON(buf []byte, v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal(fmt.Sprintf("!marshal: %v", err))
	}
	return append(buf, b...)
}

// Statuses a query completion record can carry.
const (
	StatusOK        = "ok"
	StatusError     = "error"
	StatusCancelled = "cancelled"
	StatusTimeout   = "timeout"
	// StatusShed marks a request refused at admission (HTTP 429): the
	// governor's tenant slots or memory pool stayed exhausted past the
	// queue timeout, so the query never compiled or executed.
	StatusShed = "shed"
)

// QueryRecord is the fixed schema of one query completion record (see
// DESIGN.md §10 for the field table).
type QueryRecord struct {
	TraceID     string
	Query       string
	Strategy    string
	Fingerprint string
	Status      string // ok | error | cancelled | timeout | shed
	Error       string // empty unless Status != ok
	// CacheHit reports the engine served compilation from the prepared-plan
	// cache: the run skipped parse/plan/optimize/physicalize and paid only
	// the bind cost.
	CacheHit bool
	// ResultCacheHit reports the engine served the rows from the
	// partition-versioned result cache: the run skipped execution entirely.
	ResultCacheHit bool

	ParseUS  int64
	PlanUS   int64
	SQLGenUS int64
	ExecUS   int64
	TotalUS  int64

	Rows             int64
	BytesScanned     int64
	MemPeakBytes     int64
	SpillBytes       int64
	Spills           int64
	ParallelBreakers int64
	// Storage v2 counters: column reads served by typed kernels, typed
	// columns that fell back to variant materialization, and partition data
	// sections cold-loaded from disk.
	TypedCols    int64
	FallbackCols int64
	DiskReads    int64
	Slow         bool
}

// LogQuery emits r as one "query" record. Slow queries and non-ok statuses
// are raised to warn/error so a level-filtered tail still surfaces them.
func (l *Logger) LogQuery(r QueryRecord) {
	level := LevelInfo
	switch r.Status {
	case StatusError:
		level = LevelError
	case StatusCancelled, StatusTimeout, StatusShed:
		level = LevelWarn
	}
	if r.Slow && level == LevelInfo {
		level = LevelWarn
	}
	fields := []Field{
		F("trace_id", r.TraceID),
		F("query", r.Query),
		F("strategy", r.Strategy),
		F("fingerprint", r.Fingerprint),
		F("status", r.Status),
		F("cache_hit", r.CacheHit),
		F("result_cache_hit", r.ResultCacheHit),
		F("parse_us", r.ParseUS),
		F("plan_us", r.PlanUS),
		F("sqlgen_us", r.SQLGenUS),
		F("exec_us", r.ExecUS),
		F("total_us", r.TotalUS),
		F("rows", r.Rows),
		F("bytes_scanned", r.BytesScanned),
		F("mem_peak_bytes", r.MemPeakBytes),
		F("spill_bytes", r.SpillBytes),
		F("spills", r.Spills),
		F("parallel_breakers", r.ParallelBreakers),
		F("typed_cols", r.TypedCols),
		F("fallback_cols", r.FallbackCols),
		F("disk_reads", r.DiskReads),
	}
	if r.Slow {
		fields = append(fields, F("slow", true))
	}
	if r.Error != "" {
		fields = append(fields, F("error", r.Error))
	}
	l.Log(level, "query", fields...)
}

// Fingerprint hashes the generated SQL and strategy into a stable 64-bit
// plan identity (FNV-1a), so the log groups repeated shapes of the same
// query without retaining full SQL text in every aggregation.
func Fingerprint(sql, strategy string) string {
	h := fnv.New64a()
	io.WriteString(h, strategy)
	h.Write([]byte{0})
	io.WriteString(h, sql)
	return fmt.Sprintf("%016x", h.Sum64())
}
