package qlog

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestLogEmitsOneOrderedJSONLine(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf)
	l.Log(LevelInfo, "query", F("trace_id", "abc"), F("rows", int64(7)), F("ok", true))
	line := buf.String()
	if strings.Count(line, "\n") != 1 || !strings.HasSuffix(line, "\n") {
		t.Fatalf("want exactly one newline-terminated line, got %q", line)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("line is not valid JSON: %v\n%s", err, line)
	}
	for _, k := range []string{"ts", "level", "event", "trace_id", "rows", "ok"} {
		if _, found := rec[k]; !found {
			t.Errorf("missing key %q in %s", k, line)
		}
	}
	if rec["level"] != "info" || rec["event"] != "query" {
		t.Errorf("level/event wrong: %s", line)
	}
	// Insertion order is preserved (maps would sort keys alphabetically).
	if ti, ri := strings.Index(line, `"trace_id"`), strings.Index(line, `"rows"`); ti > ri {
		t.Errorf("field order not preserved: %s", line)
	}
}

func TestLogLevelFilter(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf)
	l.SetMinLevel(LevelWarn)
	l.Log(LevelInfo, "dropped")
	l.Log(LevelWarn, "kept")
	if n := strings.Count(buf.String(), "\n"); n != 1 {
		t.Fatalf("want 1 record after filtering, got %d: %q", n, buf.String())
	}
	if !strings.Contains(buf.String(), `"event":"kept"`) {
		t.Fatalf("wrong record survived: %q", buf.String())
	}
}

func TestNilLoggerIsSafe(t *testing.T) {
	var l *Logger
	l.SetMinLevel(LevelError)
	l.Log(LevelInfo, "noop", F("k", "v"))
	l.LogQuery(QueryRecord{Status: StatusOK})
}

func TestLogQuerySchemaAndLevels(t *testing.T) {
	cases := []struct {
		rec       QueryRecord
		wantLevel string
	}{
		{QueryRecord{Status: StatusOK}, "info"},
		{QueryRecord{Status: StatusOK, Slow: true}, "warn"},
		{QueryRecord{Status: StatusCancelled}, "warn"},
		{QueryRecord{Status: StatusTimeout}, "warn"},
		{QueryRecord{Status: StatusError, Error: "boom"}, "error"},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		l := New(&buf)
		c.rec.TraceID = "t-1"
		c.rec.ParseUS, c.rec.PlanUS, c.rec.SQLGenUS, c.rec.ExecUS = 1, 2, 3, 4
		c.rec.MemPeakBytes, c.rec.SpillBytes = 1024, 2048
		l.LogQuery(c.rec)
		var m map[string]any
		if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
			t.Fatalf("%+v: invalid JSON: %v", c.rec, err)
		}
		if m["level"] != c.wantLevel {
			t.Errorf("status %q slow=%v: level = %v, want %v", c.rec.Status, c.rec.Slow, m["level"], c.wantLevel)
		}
		for _, k := range []string{"trace_id", "status", "parse_us", "plan_us",
			"sqlgen_us", "exec_us", "total_us", "rows", "bytes_scanned",
			"mem_peak_bytes", "spill_bytes", "spills", "parallel_breakers"} {
			if _, found := m[k]; !found {
				t.Errorf("record missing %q: %s", k, buf.String())
			}
		}
		if c.rec.Error != "" && m["error"] != c.rec.Error {
			t.Errorf("error field = %v, want %q", m["error"], c.rec.Error)
		}
	}
}

func TestConcurrentLogLinesNeverInterleave(t *testing.T) {
	var buf safeBuffer
	l := New(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				l.Log(LevelInfo, "spin", F("payload", strings.Repeat("x", 100)))
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 400 {
		t.Fatalf("want 400 lines, got %d", len(lines))
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("corrupt line %q: %v", line, err)
		}
	}
}

type safeBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *safeBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *safeBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestFingerprintStableAndDiscriminating(t *testing.T) {
	a := Fingerprint("SELECT 1", "rewrite")
	if a != Fingerprint("SELECT 1", "rewrite") {
		t.Fatal("fingerprint not deterministic")
	}
	if len(a) != 16 {
		t.Fatalf("want 16 hex chars, got %q", a)
	}
	if a == Fingerprint("SELECT 2", "rewrite") {
		t.Error("different SQL collided")
	}
	if a == Fingerprint("SELECT 1", "udf") {
		t.Error("different strategy collided")
	}
}

func TestUnmarshalableFieldDegradesGracefully(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf)
	l.Log(LevelInfo, "bad", F("fn", func() {}))
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("record with unmarshalable value must still be valid JSON: %v\n%s", err, buf.String())
	}
	if s, _ := m["fn"].(string); !strings.HasPrefix(s, "!marshal:") {
		t.Errorf("want !marshal placeholder, got %v", m["fn"])
	}
}
