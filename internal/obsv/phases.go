package obsv

import "time"

// PhaseDurations rolls a finished trace's span tree up into the four
// coarse-grained phases the query log reports: parse (JSONiq lexing through
// rewrite), plan (iterator planning, relational translation, optimization
// and physical preparation), sqlgen (SQL rendering and re-parsing) and exec
// (batch execution). Span names outside the mapping (e.g. per-rule optimizer
// children) contribute nothing, so nested spans are not double counted.
type PhaseDurations struct {
	Parse  time.Duration
	Plan   time.Duration
	SQLGen time.Duration
	Exec   time.Duration
}

// spanPhase maps pipeline span names onto log phases. The names are the ones
// the lowering layers create (see DESIGN.md §10); each appears at most once
// per trace, directly under the root.
var spanPhase = map[string]string{
	"jsoniq.lex":         "parse",
	"jsoniq.parse":       "parse",
	"jsoniq.inline":      "parse",
	"jsoniq.rewrite":     "parse",
	"iterplan.build":     "plan",
	"core.translate":     "plan",
	"plan.build":         "plan",
	"engine.optimize":    "plan",
	"engine.physicalize": "plan",
	"engine.prepare":     "plan",
	"snowpark.render":    "sqlgen",
	"sql.parse":          "sqlgen",
	"engine.execute":     "exec",
}

// Phases computes the phase rollup for a finished trace. A nil trace yields
// the zero value.
func Phases(td *TraceData) PhaseDurations {
	var p PhaseDurations
	if td == nil {
		return p
	}
	td.Root.Walk(func(depth int, sd SpanData) {
		if depth == 0 {
			return
		}
		d := time.Duration(sd.DurationUS) * time.Microsecond
		switch spanPhase[sd.Name] {
		case "parse":
			p.Parse += d
		case "plan":
			p.Plan += d
		case "sqlgen":
			p.SQLGen += d
		case "exec":
			p.Exec += d
		}
	})
	return p
}
