package obsv

import (
	"sync"
	"time"
)

// SlowQuery is one retained slow-query capture: the full span tree plus the
// EXPLAIN ANALYZE snapshot taken at completion. Plan is typed loosely
// (obsv sits below the engine) and in practice holds *engine.PlanStats; it
// is nil for queries that failed before producing a plan.
type SlowQuery struct {
	Trace *TraceData `json:"trace"`
	Plan  any        `json:"plan,omitempty"`
}

// SlowRing retains the most recent slow-query captures in a bounded ring,
// served by GET /debug/slow. Safe for concurrent use.
type SlowRing struct {
	mu     sync.Mutex
	ring   []SlowQuery
	next   int
	filled bool
}

// DefaultSlowRingSize bounds the slow-query buffer of NewSlowRing(0).
const DefaultSlowRingSize = 32

// NewSlowRing returns a ring retaining the last capacity slow queries
// (DefaultSlowRingSize when capacity <= 0).
func NewSlowRing(capacity int) *SlowRing {
	if capacity <= 0 {
		capacity = DefaultSlowRingSize
	}
	return &SlowRing{ring: make([]SlowQuery, capacity)}
}

// Record retains one slow query, evicting the oldest entry when full.
// Nil-safe; entries without a trace are dropped.
func (r *SlowRing) Record(q SlowQuery) {
	if r == nil || q.Trace == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ring[r.next] = q
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.filled = true
	}
}

// Recent returns up to n retained slow queries, newest first (all when
// n <= 0). Nil-safe.
func (r *SlowRing) Recent(n int) []SlowQuery {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []SlowQuery
	// Walk backwards from the most recent write so the result is already
	// newest-first without re-sorting by timestamp (ties are common in
	// tests where traces finish within the same microsecond).
	for i := 0; i < len(r.ring); i++ {
		idx := (r.next - 1 - i + len(r.ring)) % len(r.ring)
		if r.ring[idx].Trace == nil {
			continue
		}
		out = append(out, r.ring[idx])
		if n > 0 && len(out) == n {
			break
		}
	}
	return out
}

// Len reports how many slow queries are currently retained.
func (r *SlowRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.filled {
		return len(r.ring)
	}
	return r.next
}

// Threshold converts a -slow-query-ms style flag value into a capture
// threshold: negative disables capture, zero captures every query, positive
// captures queries at or above that many milliseconds.
func Threshold(ms int64) (time.Duration, bool) {
	if ms < 0 {
		return 0, false
	}
	return time.Duration(ms) * time.Millisecond, true
}
