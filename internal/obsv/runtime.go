package obsv

import "runtime"

// RuntimeSampler publishes Go runtime health (goroutines, heap, GC pauses)
// as gauges in a registry. Sample is called on every /metrics scrape so the
// values are fresh without a background goroutine.
type RuntimeSampler struct {
	goroutines  *Gauge
	heapAlloc   *Gauge
	heapSys     *Gauge
	heapObjects *Gauge
	gcPauseNS   *Gauge
	gcRuns      *Gauge
}

// NewRuntimeSampler registers the runtime gauge set in r.
func NewRuntimeSampler(r *Registry) *RuntimeSampler {
	return &RuntimeSampler{
		goroutines: r.Gauge("jsonpark_goroutines",
			"Current number of goroutines."),
		heapAlloc: r.Gauge("jsonpark_heap_alloc_bytes",
			"Bytes of allocated heap objects."),
		heapSys: r.Gauge("jsonpark_heap_sys_bytes",
			"Bytes of heap memory obtained from the OS."),
		heapObjects: r.Gauge("jsonpark_heap_objects",
			"Number of allocated heap objects."),
		gcPauseNS: r.Gauge("jsonpark_gc_pause_total_ns",
			"Cumulative nanoseconds spent in GC stop-the-world pauses."),
		gcRuns: r.Gauge("jsonpark_gc_runs_total",
			"Completed GC cycles."),
	}
}

// Sample refreshes every gauge from the runtime. Nil-safe.
func (s *RuntimeSampler) Sample() {
	if s == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.goroutines.Set(float64(runtime.NumGoroutine()))
	s.heapAlloc.Set(float64(ms.HeapAlloc))
	s.heapSys.Set(float64(ms.HeapSys))
	s.heapObjects.Set(float64(ms.HeapObjects))
	s.gcPauseNS.Set(float64(ms.PauseTotalNs))
	s.gcRuns.Set(float64(ms.NumGC))
}
