package lint

import "go/types"

// SpanEnd enforces the observability lifecycle: every obsv span started
// (Span.Child) must be ended, and every trace started (Tracer.Start) must
// be finished, on all paths — `defer sp.End()` preferred. An un-ended span
// freezes a stage's clock open and an unfinished trace never reaches the
// ring buffer, so /debug/queries silently loses the query. Passing a span
// to a helper does not discharge the obligation (helpers annotate spans,
// creators end them); capturing it in a closure or storing it does.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc:  "obsv spans must be Ended and traces Finished on all paths; prefer defer sp.End()",
	Run: func(pass *Pass) error {
		runLifecycle(pass, &resourceSpec{
			analyzer: "spanend",
			resourceRelease: func(t types.Type) []string {
				switch {
				case namedIn(t, "internal/obsv", "Span"):
					return []string{"End"}
				case namedIn(t, "internal/obsv", "Trace"):
					return []string{"Finish"}
				}
				return nil
			},
			argTransfer: false,
			verb:        "ended",
		})
		return nil
	},
}
