package lint

import "go/types"

// SpillClose enforces the spill-run lifecycle from PR 6: a
// storage.RunWriter acquired from NewRunWriter must reach Finish (which
// hands the temp file to a SpillRun) or Abort (which closes and removes
// it) on every path, and every SpillRun must reach Close — which unlinks
// the temp file — unless ownership is transferred (stored into an
// operator's run list, returned, captured by a cleanup closure). A leaked
// run handle is a leaked file descriptor AND a leaked temp file; under the
// multi-tenant server every spilling query would grow /tmp until the disk
// fills. This is execclose's discipline applied to the spill files, run on
// the same lifecycle walker with a release *set*: either Finish or Abort
// discharges a writer.
var SpillClose = &Analyzer{
	Name: "spillclose",
	Doc:  "spill run writers must reach Finish or Abort, and spill runs Close, on all paths",
	Run: func(pass *Pass) error {
		runLifecycle(pass, &resourceSpec{
			analyzer: "spillclose",
			resourceRelease: func(t types.Type) []string {
				switch {
				case namedIn(t, "internal/storage", "RunWriter"):
					return []string{"Finish", "Abort"}
				case namedIn(t, "internal/storage", "SpillRun"):
					return []string{"Close"}
				}
				return nil
			},
			argTransfer: true,
			verb:        "closed",
		})
		return nil
	},
}
